#!/bin/sh
# CI entry point: full build + test suite, then a smoke test of the compile
# service's persistence guarantees — a second limec invocation against the
# same --cache-dir must load the kernel from the artifact store and answer
# the sweep from the tunestore instead of re-timing all eight configs.
set -eu

cd "$(dirname "$0")"

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== compile-service smoke test =="
cache_dir=$(mktemp -d)
trap 'rm -rf "$cache_dir"' EXIT

sweep() {
  dune exec --no-build bin/limec.exe -- examples/lime/nbody.lime \
    -w NBody.computeForces --sweep gtx8800 --shape particles=4096x4 \
    --cache-dir "$cache_dir"
}

cold=$(sweep)
echo "$cold" | grep -q "tunestore: miss" \
  || { echo "FAIL: cold run should miss the tunestore"; echo "$cold"; exit 1; }

warm=$(sweep)
echo "$warm" | grep -q "tunestore: hit" \
  || { echo "FAIL: warm run should hit the tunestore"; echo "$warm"; exit 1; }
echo "$warm" | grep -q "kernel cache: hit (disk)" \
  || { echo "FAIL: warm run should load the kernel from disk"; echo "$warm"; exit 1; }
# a tunestore hit times only the stored best: exactly one ranking row
rows=$(echo "$warm" | grep -c " ms$" || true)
[ "$rows" -eq 1 ] \
  || { echo "FAIL: warm sweep should re-time 1 config, got $rows"; echo "$warm"; exit 1; }

echo "== parallel batch smoke test =="
# compile every example program in one --jobs 4 batch, twice against the
# same --cache-dir: the cold run must compile all four, the warm run must
# load all four kernels from the on-disk artifact store
batch_cache="$cache_dir/batch"
manifest="$cache_dir/examples.batch"
cat > "$manifest" <<'EOF'
# every example program: FILE WORKER [CONFIG]
examples/lime/nbody.lime     NBody.computeForces
examples/lime/matmul.lime    MatMul.multiply
examples/lime/saxpy.lime     Saxpy.run
examples/lime/histogram.lime Hist.maxBinCount   all  # trailing comment
EOF

batch() {
  dune exec --no-build bin/limec.exe -- \
    --batch "$manifest" --jobs 4 --cache-dir "$batch_cache" --stats
}

cold_batch=$(batch)
echo "$cold_batch" | grep -q "batch: 4 compiled, 0 failed (jobs 4," \
  || { echo "FAIL: cold batch should compile all 4 examples"; echo "$cold_batch"; exit 1; }
echo "$cold_batch" | grep -q "^lime_kcache_misses 4$" \
  || { echo "FAIL: cold batch should miss 4 times"; echo "$cold_batch"; exit 1; }

warm_batch=$(batch)
echo "$warm_batch" | grep -q "batch: 4 compiled, 0 failed (jobs 4," \
  || { echo "FAIL: warm batch should compile all 4 examples"; echo "$warm_batch"; exit 1; }
echo "$warm_batch" | grep -q "^lime_kcache_disk_hits 4$" \
  || { echo "FAIL: warm batch should load all 4 kernels from disk"; echo "$warm_batch"; exit 1; }
for kernel in NBody.computeForces MatMul.multiply Saxpy.run Hist.maxBinCount; do
  echo "$warm_batch" | grep -q "kernel $kernel" \
    || { echo "FAIL: warm batch missing kernel $kernel"; echo "$warm_batch"; exit 1; }
done

echo "== trace smoke test =="
# a traced run must produce loadable Chrome trace-event JSON covering the
# whole stack: the compile pipeline span and the simulated PCIe leg of a
# device firing
trace_json="$cache_dir/trace.json"
dune exec --no-build bin/limec.exe -- examples/lime/nbody.lime \
  -w NBody.computeForces --run NBodyApp.main --arg 16 --arg 1 \
  --trace "$trace_json" > /dev/null 2>&1

[ -s "$trace_json" ] \
  || { echo "FAIL: --trace wrote nothing"; exit 1; }
case "$(head -c 1 "$trace_json")" in
  "{") ;;
  *) echo "FAIL: trace is not a JSON object"; head -c 200 "$trace_json"; exit 1 ;;
esac
grep -q '"traceEvents"' "$trace_json" \
  || { echo "FAIL: trace lacks a traceEvents array"; exit 1; }
grep -q '"pipeline.compile"' "$trace_json" \
  || { echo "FAIL: trace lacks the pipeline.compile span"; exit 1; }
grep -q '"comm.pcie"' "$trace_json" \
  || { echo "FAIL: trace lacks the comm.pcie firing leg"; exit 1; }
# brackets/braces must balance outside of strings — a cheap well-formedness
# check with no JSON tooling required
cat > "$cache_dir/jsoncheck.ml" <<'EOF'
let () =
  let json = In_channel.with_open_text Sys.argv.(1) In_channel.input_all in
  let depth = ref 0 and in_str = ref false and esc = ref false in
  String.iter
    (fun ch ->
      if !in_str then
        if !esc then esc := false
        else if ch = '\\' then esc := true
        else (if ch = '"' then in_str := false)
      else
        match ch with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then exit 1
        | _ -> ())
    json;
  if !depth <> 0 || !in_str then exit 1
EOF
ocaml "$cache_dir/jsoncheck.ml" "$trace_json" \
  || { echo "FAIL: trace JSON is not well-formed"; exit 1; }

echo "== counters smoke test =="
counters=$(dune exec --no-build bin/limec.exe -- examples/lime/nbody.lime \
  -w NBody.computeForces --counters gtx8800 --shape particles=4096x4)
echo "$counters" | grep -q "roofline: " \
  || { echo "FAIL: --counters lacks a roofline verdict"; echo "$counters"; exit 1; }
echo "$counters" | grep -q "coalesced" \
  || { echo "FAIL: --counters lacks the transaction split"; echo "$counters"; exit 1; }

echo "== compile-daemon smoke test =="
# launch the daemon, compile through it twice (the second request must be
# served from the daemon's warm cache), then SIGTERM it: a graceful drain
# must remove the socket and exit 0
daemon_sock="$cache_dir/limed.sock"
daemon_cache="$cache_dir/daemon"
daemon_log="$cache_dir/limed.log"
dune exec --no-build bin/limec.exe -- --daemon "$daemon_sock" \
  --cache-dir "$daemon_cache" > "$daemon_log" 2>&1 &
daemon_pid=$!

# wait (bounded) for the listening socket to appear
i=0
while [ ! -S "$daemon_sock" ]; do
  i=$((i + 1))
  [ "$i" -le 100 ] \
    || { echo "FAIL: daemon never opened $daemon_sock"; cat "$daemon_log"; exit 1; }
  kill -0 "$daemon_pid" 2>/dev/null \
    || { echo "FAIL: daemon died during startup"; cat "$daemon_log"; exit 1; }
  sleep 0.1
done

connect() {
  dune exec --no-build bin/limec.exe -- --connect "$daemon_sock" \
    examples/lime/nbody.lime -w NBody.computeForces
}

cold_connect=$(connect 2> "$cache_dir/connect1.err")
echo "$cold_connect" | grep -q "kernel NBody.computeForces" \
  || { echo "FAIL: daemon compile missing the kernel"; echo "$cold_connect"; exit 1; }
grep -q "server cache: miss (compiled)" "$cache_dir/connect1.err" \
  || { echo "FAIL: first daemon request should compile"; cat "$cache_dir/connect1.err"; exit 1; }

warm_connect=$(connect 2> "$cache_dir/connect2.err")
grep -q "server cache: hit (memory)" "$cache_dir/connect2.err" \
  || { echo "FAIL: second daemon request should hit the warm cache"; cat "$cache_dir/connect2.err"; exit 1; }
[ "$cold_connect" = "$warm_connect" ] \
  || { echo "FAIL: warm daemon output differs from cold"; exit 1; }

# byte-identical to a local compile of the same program
local_out=$(dune exec --no-build bin/limec.exe -- examples/lime/nbody.lime \
  -w NBody.computeForces)
[ "$local_out" = "$cold_connect" ] \
  || { echo "FAIL: daemon output differs from local compilation"; exit 1; }

kill -TERM "$daemon_pid"
daemon_status=0
wait "$daemon_pid" || daemon_status=$?
[ "$daemon_status" -eq 0 ] \
  || { echo "FAIL: daemon exit $daemon_status after SIGTERM"; cat "$daemon_log"; exit 1; }
[ ! -S "$daemon_sock" ] \
  || { echo "FAIL: drained daemon left its socket behind"; exit 1; }
grep -q "limed: drained" "$daemon_log" \
  || { echo "FAIL: daemon log lacks the drain report"; cat "$daemon_log"; exit 1; }

echo "== observability-plane smoke test =="
# relaunch the daemon with the HTTP plane, an access log and a drain
# grace, run one traced compile through it, and check the whole
# observability surface: /healthz, /metrics, the access log's trace id
# appearing in the merged client trace, and the readiness flip on SIGTERM
obs_sock="$cache_dir/limed-obs.sock"
obs_log="$cache_dir/limed-obs.log"
access_log="$cache_dir/access.jsonl"
obs_trace="$cache_dir/connect-trace.json"
# a fresh cache dir: the traced compile must be cold, so the merged
# trace contains the daemon's pipeline spans, not just a cache hit
obs_cache="$cache_dir/obs-daemon"
flight_dump="$cache_dir/flight.jsonl"
dune exec --no-build bin/limec.exe -- --daemon "$obs_sock" \
  --cache-dir "$obs_cache" --http 0 --access-log "$access_log" \
  --flight-dump "$flight_dump" --slo availability:0.99 \
  --drain-grace 2 > "$obs_log" 2>&1 &
obs_pid=$!

i=0
while [ ! -S "$obs_sock" ]; do
  i=$((i + 1))
  [ "$i" -le 100 ] \
    || { echo "FAIL: observed daemon never opened $obs_sock"; cat "$obs_log"; exit 1; }
  kill -0 "$obs_pid" 2>/dev/null \
    || { echo "FAIL: observed daemon died during startup"; cat "$obs_log"; exit 1; }
  sleep 0.1
done

# the daemon logs the ephemeral port it bound: "limed: http on 127.0.0.1:PORT"
i=0
http_port=""
while [ -z "$http_port" ]; do
  http_port=$(sed -n 's/^limed: http on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' "$obs_log")
  [ -n "$http_port" ] && break
  i=$((i + 1))
  [ "$i" -le 100 ] \
    || { echo "FAIL: daemon never logged its HTTP port"; cat "$obs_log"; exit 1; }
  sleep 0.1
done

health=$(curl -fsS "http://127.0.0.1:$http_port/healthz")
[ "$health" = "ok" ] \
  || { echo "FAIL: /healthz said '$health', wanted 'ok'"; exit 1; }

dune exec --no-build bin/limec.exe -- --connect "$obs_sock" \
  examples/lime/nbody.lime -w NBody.computeForces --trace "$obs_trace" \
  > /dev/null 2> "$cache_dir/connect-trace.err"

[ -s "$obs_trace" ] \
  || { echo "FAIL: traced --connect wrote no trace"; cat "$cache_dir/connect-trace.err"; exit 1; }
ocaml "$cache_dir/jsoncheck.ml" "$obs_trace" \
  || { echo "FAIL: merged trace JSON is not well-formed"; exit 1; }
# the merged timeline spans both processes: client + daemon spans
for span in '"client.request"' '"server.request"' '"pipeline.compile"'; do
  grep -q "$span" "$obs_trace" \
    || { echo "FAIL: merged trace lacks the $span span"; exit 1; }
done

metrics=$(curl -fsS "http://127.0.0.1:$http_port/metrics")
for family in lime_server_requests_total lime_build_info; do
  echo "$metrics" | grep -q "$family" \
    || { echo "FAIL: /metrics lacks $family"; echo "$metrics"; exit 1; }
done

[ -f "$access_log" ] \
  || { echo "FAIL: daemon wrote no access log"; exit 1; }
[ "$(wc -l < "$access_log")" -eq 1 ] \
  || { echo "FAIL: access log should hold exactly 1 record"; cat "$access_log"; exit 1; }
ocaml "$cache_dir/jsoncheck.ml" "$access_log" \
  || { echo "FAIL: access-log record is not well-formed JSON"; cat "$access_log"; exit 1; }
# the record is correlated with the distributed trace we just merged
trace_id=$(sed -n 's/.*"trace_id":"\([0-9a-f]*\)".*/\1/p' "$access_log")
[ -n "$trace_id" ] \
  || { echo "FAIL: access-log record lacks a trace id"; cat "$access_log"; exit 1; }
grep -q "$trace_id" "$obs_trace" \
  || { echo "FAIL: access-log trace id $trace_id not in the merged trace"; exit 1; }

# the SLO plane: after one good request the burn rate is zero and the
# daemon reports itself healthy
alertz=$(curl -fsS "http://127.0.0.1:$http_port/alertz")
echo "$alertz" | grep -q '"healthy":true' \
  || { echo "FAIL: /alertz not healthy after good traffic"; echo "$alertz"; exit 1; }
echo "$alertz" | grep -q '"name":"availability"' \
  || { echo "FAIL: /alertz lacks the availability SLO"; echo "$alertz"; exit 1; }

# induce an error burn: deadline-0 requests are admitted and expire before
# compilation, each counting as a bad event in both burn windows — on a
# freshly started daemon a 6/7 bad fraction trips the fast AND slow
# windows at once, so the availability alert fires immediately
burn=0
while [ "$burn" -lt 6 ]; do
  burn=$((burn + 1))
  if dune exec --no-build bin/limec.exe -- --connect "$obs_sock" \
       examples/lime/nbody.lime -w NBody.computeForces --deadline-ms 0 \
       > /dev/null 2>&1; then
    echo "FAIL: deadline-0 compile #$burn unexpectedly succeeded"; exit 1
  fi
done
i=0
while :; do
  alertz=$(curl -s "http://127.0.0.1:$http_port/alertz" || true)
  echo "$alertz" | grep -q '"healthy":false' && break
  i=$((i + 1))
  [ "$i" -le 100 ] \
    || { echo "FAIL: /alertz never fired under the deadline-0 burn"; echo "$alertz"; exit 1; }
  sleep 0.05
done
echo "$alertz" | grep -q '"state":"firing"' \
  || { echo "FAIL: /alertz is unhealthy but no SLO is firing"; echo "$alertz"; exit 1; }

# the alert doubles as a metric family, and the latency summary carries
# trace-id exemplars on its histogram buckets
metrics=$(curl -fsS "http://127.0.0.1:$http_port/metrics")
for family in lime_slo_state lime_slo_burn_rate \
              lime_server_request_seconds_summary \
              lime_process_start_time_seconds; do
  echo "$metrics" | grep -q "$family" \
    || { echo "FAIL: /metrics lacks $family"; exit 1; }
done
echo "$metrics" | grep -q '# {trace_id=' \
  || { echo "FAIL: /metrics buckets carry no trace exemplar"; exit 1; }

# the flight recorder retained the slowest request (the traced cold
# compile) with its span tree, and the deadline casualties as errors
slow=$(curl -fsS "http://127.0.0.1:$http_port/debug/slow")
echo "$slow" | grep -q "$trace_id" \
  || { echo "FAIL: /debug/slow lost the slowest request's trace"; echo "$slow"; exit 1; }
errors=$(curl -fsS "http://127.0.0.1:$http_port/debug/errors")
echo "$errors" | grep -q '"outcome":"deadline"' \
  || { echo "FAIL: /debug/errors lacks the deadline casualties"; echo "$errors"; exit 1; }
curl -fsS "http://127.0.0.1:$http_port/statusz" | grep -q '"flight":{' \
  || { echo "FAIL: /statusz lacks the flight-recorder block"; exit 1; }

# SIGQUIT: a post-mortem flight dump, while the daemon keeps serving
kill -QUIT "$obs_pid"
i=0
while ! { [ -s "$flight_dump" ] && grep -q "$trace_id" "$flight_dump"; } 2>/dev/null; do
  i=$((i + 1))
  [ "$i" -le 100 ] \
    || { echo "FAIL: SIGQUIT wrote no flight dump holding $trace_id"; cat "$flight_dump" 2>/dev/null; exit 1; }
  sleep 0.05
done
grep '"ring":"slow"' "$flight_dump" | grep -q "$trace_id" \
  || { echo "FAIL: slowest request $trace_id not in the dump's slow ring"; cat "$flight_dump"; exit 1; }
grep -q '"ring":"errors"' "$flight_dump" \
  || { echo "FAIL: flight dump has no errors-ring entries"; cat "$flight_dump"; exit 1; }
grep -q '"server.request"' "$flight_dump" \
  || { echo "FAIL: flight dump entries lack their span trees"; cat "$flight_dump"; exit 1; }
kill -0 "$obs_pid" 2>/dev/null \
  || { echo "FAIL: daemon died on SIGQUIT"; cat "$obs_log"; exit 1; }
post_quit=$(curl -fsS "http://127.0.0.1:$http_port/healthz")
[ "$post_quit" = "ok" ] \
  || { echo "FAIL: daemon not serving after SIGQUIT ('$post_quit')"; exit 1; }

# SIGTERM: the readiness probe must flip to draining within the grace
kill -TERM "$obs_pid"
i=0
drain_health=""
while [ "$drain_health" != "draining" ]; do
  drain_health=$(curl -s "http://127.0.0.1:$http_port/healthz" || true)
  [ "$drain_health" = "draining" ] && break
  i=$((i + 1))
  [ "$i" -le 100 ] \
    || { echo "FAIL: /healthz never flipped to draining (last: '$drain_health')"; cat "$obs_log"; exit 1; }
  sleep 0.02
done
obs_status=0
wait "$obs_pid" || obs_status=$?
[ "$obs_status" -eq 0 ] \
  || { echo "FAIL: observed daemon exit $obs_status after SIGTERM"; cat "$obs_log"; exit 1; }

echo "== bench JSON regression gate =="
# collect a quick perf snapshot, check it is well-formed JSON, then diff a
# fresh collection against it: a self-diff must report zero regressions
bench_json="$cache_dir/BENCH_ci.json"
dune exec --no-build bench/main.exe -- --quick --seed 1 --json "$bench_json" \
  > /dev/null
[ -s "$bench_json" ] \
  || { echo "FAIL: --json wrote nothing"; exit 1; }
grep -q '"schema": "lime-bench"' "$bench_json" \
  || { echo "FAIL: bench JSON lacks the schema header"; exit 1; }
ocaml "$cache_dir/jsoncheck.ml" "$bench_json" \
  || { echo "FAIL: bench JSON is not well-formed"; exit 1; }
dune exec --no-build bench/main.exe -- --quick --seed 1 --baseline "$bench_json" \
  > /dev/null \
  || { echo "FAIL: self-diff against the just-written baseline regressed"; exit 1; }
# the optimizer experiment is its own gate: it exits non-zero if the beam
# ever loses to the best Fig 8 configuration, or merely ties it on TMatMul
dune exec --no-build bench/main.exe -- optimize --quick > /dev/null \
  || { echo "FAIL: optimize experiment gate (beam vs fig8) regressed"; exit 1; }
# so is the multi-device experiment: placed must never lose to the best
# single device, must strictly beat it somewhere, and sinks stay bit-exact
dune exec --no-build bench/main.exe -- multidev --quick > /dev/null \
  || { echo "FAIL: multidev experiment gate (placed vs single) regressed"; exit 1; }

echo "== fuzz smoke test =="
# a fixed-seed budget through the three-way differential oracle: any
# interpreter/engine/OpenCL disagreement fails the build with a shrunk
# counterexample (the long-budget run is `dune build @fuzz`)
fuzz_out=$(dune exec --no-build bin/limefuzz.exe -- --count 40 --seed 1 --schedules 2)
echo "$fuzz_out" | grep -q "40 generated programs, 0 disagreements" \
  || { echo "FAIL: fuzz smoke found a disagreement"; echo "$fuzz_out"; exit 1; }
# the harness-has-teeth check: a deliberately nudged reference must be
# caught and shrunk — if the oracle goes blind, CI fails here, not later
dune exec --no-build bin/limefuzz.exe -- --selftest --count 10 --seed 1 \
  | grep -q "selftest ok" \
  || { echo "FAIL: fuzz oracle did not catch a nudged reference"; exit 1; }
# generated programs double as daemon traffic: a zipf-weighted stream
# must complete without request errors and report its tail latency
fuzz_traffic=$(dune exec --no-build bench/main.exe -- --fuzz 30 --seed 2)
echo "$fuzz_traffic" | grep -q "errors: 0" \
  || { echo "FAIL: fuzz traffic run had request errors"; echo "$fuzz_traffic"; exit 1; }
echo "$fuzz_traffic" | grep -q "p99" \
  || { echo "FAIL: fuzz traffic run reported no tail latency"; echo "$fuzz_traffic"; exit 1; }

echo "== optimizer smoke test =="
# a cold beam search must store its schedule; the warm rerun must replay it
# (not re-search) with identical output; and the beam must never lose to
# the best Fig 8 configuration on the same kernel
opt_cache="$cache_dir/opt"
optimize() {
  dune exec --no-build bin/limec.exe -- examples/lime/matmul.lime \
    -w MatMul.multiply --optimize "$1" --device gtx8800 \
    --shape packed=1024x32 --cache-dir "$opt_cache"
}

cold_opt=$(optimize beam)
echo "$cold_opt" | grep -q "tunestore: miss — searched, stored best schedule" \
  || { echo "FAIL: cold beam run should search and store"; echo "$cold_opt"; exit 1; }

warm_opt=$(optimize beam)
echo "$warm_opt" | grep -q "tunestore: hit — replayed stored schedule" \
  || { echo "FAIL: warm beam run should replay, not re-search"; echo "$warm_opt"; exit 1; }
# modulo provenance (cache lines, eval count vs "replayed"), the warm
# replay must reproduce the cold search byte-for-byte
strip_provenance() {
  grep -v '^tunestore:' | grep -v '^kernel cache:' \
    | sed -e 's/, [0-9]* evaluations)$/)/' -e 's/, replayed)$/)/'
}
[ "$(echo "$cold_opt" | strip_provenance)" = "$(echo "$warm_opt" | strip_provenance)" ] \
  || { echo "FAIL: warm beam output differs from cold"; exit 1; }

fig8_opt=$(optimize fig8)
beam_s=$(echo "$warm_opt" | sed -n 's/^optimize beam on .*: .* (\([0-9.e+-]*\) s modeled.*/\1/p')
fig8_s=$(echo "$fig8_opt" | sed -n 's/^optimize fig8 on .*: winner .* (\([0-9.e+-]*\) s modeled.*/\1/p')
[ -n "$beam_s" ] && [ -n "$fig8_s" ] \
  || { echo "FAIL: could not parse modeled times"; echo "$warm_opt"; echo "$fig8_opt"; exit 1; }
awk "BEGIN { exit !($beam_s <= $fig8_s) }" \
  || { echo "FAIL: beam ($beam_s s) lost to the Fig 8 winner ($fig8_s s)"; exit 1; }

echo "== multi-device smoke test =="
# a cold --multi-device auto run must search placements and store the
# winner; the warm rerun must replay it from the tunestore — and modulo
# provenance lines, reproduce the cold run byte-for-byte
sched_cache="$cache_dir/sched"
multidev() {
  dune exec --no-build bin/limec.exe -- examples/lime/nbody.lime \
    -w NBody.computeForces --run NBodyApp.main --arg 64 --arg 2 \
    --multi-device auto --explain --cache-dir "$sched_cache"
}

cold_md=$(multidev)
echo "$cold_md" | grep -q "tunestore: miss — searched .* placements, stored best" \
  || { echo "FAIL: cold multi-device run should search and store"; echo "$cold_md"; exit 1; }
echo "$cold_md" | grep -q "^placement " \
  || { echo "FAIL: cold multi-device run printed no placement"; echo "$cold_md"; exit 1; }

warm_md=$(multidev)
echo "$warm_md" | grep -q "tunestore: hit — replayed stored placement" \
  || { echo "FAIL: warm multi-device run should replay, not re-search"; echo "$warm_md"; exit 1; }
strip_sched_provenance() {
  grep -v '^tunestore:' | grep -v '^kernel cache:' \
    | grep -v '^placement search:' | grep -v '^placement replay:' \
    | grep -v '^placement '
}
[ "$(echo "$cold_md" | strip_sched_provenance)" = "$(echo "$warm_md" | strip_sched_provenance)" ] \
  || { echo "FAIL: warm multi-device output differs from cold"; exit 1; }

# a pinned SPEC must be honoured verbatim, and --devices must list the
# placement targets the searcher chooses from
spec_md=$(dune exec --no-build bin/limec.exe -- examples/lime/nbody.lime \
  -w NBody.computeForces --run NBodyApp.main --arg 64 --arg 2 \
  --multi-device "NBody.computeForces=gtx580")
echo "$spec_md" | grep -q "placements: .*NBody.computeForces=gtx580" \
  || { echo "FAIL: pinned placement SPEC not honoured"; echo "$spec_md"; exit 1; }
devices_out=$(dune exec --no-build bin/limec.exe -- --devices)
for dev in gtx8800 gtx580 hd5970 corei7; do
  echo "$devices_out" | grep -q "$dev" \
    || { echo "FAIL: --devices lacks $dev"; echo "$devices_out"; exit 1; }
done

echo "ci.sh: OK (cold sweep populated the cache; warm run served from it;"
echo "        --jobs 4 batch recompiled all examples warm from disk;"
echo "        traced run exported well-formed Chrome JSON;"
echo "        daemon served a warm cache hit and drained cleanly on SIGTERM;"
echo "        the observability plane answered /healthz and /metrics, logged"
echo "        one trace-correlated access record, merged the cross-process"
echo "        trace, and flipped readiness while draining;"
echo "        /alertz fired on a deadline-0 burn, the summary exposed"
echo "        exemplars, and SIGQUIT dumped the flight recorder with the"
echo "        slowest request's trace id while the daemon kept serving;"
echo "        bench JSON self-diff and the beam-vs-fig8 gate showed no"
echo "        regressions; the differential fuzz smoke agreed three ways,"
echo "        its selftest caught a nudged reference, and generated traffic"
echo "        drove the daemon cleanly;"
echo "        beam schedule stored cold and replayed warm;"
echo "        multi-device placement stored cold, replayed warm byte-"
echo "        identically, honoured a pinned SPEC, and --devices listed"
echo "        every placement target)"
