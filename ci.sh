#!/bin/sh
# CI entry point: full build + test suite, then a smoke test of the compile
# service's persistence guarantees — a second limec invocation against the
# same --cache-dir must load the kernel from the artifact store and answer
# the sweep from the tunestore instead of re-timing all eight configs.
set -eu

cd "$(dirname "$0")"

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== compile-service smoke test =="
cache_dir=$(mktemp -d)
trap 'rm -rf "$cache_dir"' EXIT

sweep() {
  dune exec --no-build bin/limec.exe -- examples/lime/nbody.lime \
    -w NBody.computeForces --sweep gtx8800 --shape particles=4096x4 \
    --cache-dir "$cache_dir"
}

cold=$(sweep)
echo "$cold" | grep -q "tunestore: miss" \
  || { echo "FAIL: cold run should miss the tunestore"; echo "$cold"; exit 1; }

warm=$(sweep)
echo "$warm" | grep -q "tunestore: hit" \
  || { echo "FAIL: warm run should hit the tunestore"; echo "$warm"; exit 1; }
echo "$warm" | grep -q "kernel cache: hit (disk)" \
  || { echo "FAIL: warm run should load the kernel from disk"; echo "$warm"; exit 1; }
# a tunestore hit times only the stored best: exactly one ranking row
rows=$(echo "$warm" | grep -c " ms$" || true)
[ "$rows" -eq 1 ] \
  || { echo "FAIL: warm sweep should re-time 1 config, got $rows"; echo "$warm"; exit 1; }

echo "ci.sh: OK (cold sweep populated the cache; warm run served from it)"
