(** [limec] — the Lime-for-GPUs command-line compiler.

    Compiles a Lime source file, offloads the requested filter worker, and
    prints any of: the parsed program, the typed summary, the mid-level IR,
    the memory-placement decisions, the generated OpenCL kernel, the host
    glue, or a device-time estimate on one of the Table 2 platforms.

    Examples:

      limec nbody.lime --worker NBody.computeForces --emit-opencl
      limec nbody.lime --worker NBody.computeForces --config local+pad+vec \
            --placements
      limec nbody.lime --worker NBody.computeForces --estimate gtx580 \
            --shape particles=4096x4
*)

module Memopt = Lime_gpu.Memopt
module Pipeline = Lime_gpu.Pipeline

let configs =
  [
    ("global", Memopt.config_global);
    ("global+vec", Memopt.config_global_vector);
    ("local", Memopt.config_local);
    ("local+pad", Memopt.config_local_noconflict);
    ("local+pad+vec", Memopt.config_local_noconflict_vector);
    ("constant", Memopt.config_constant);
    ("constant+vec", Memopt.config_constant_vector);
    ("texture", Memopt.config_image);
    ("all", Memopt.config_all);
  ]

let devices =
  [
    ("gtx8800", Gpusim.Device.gtx8800);
    ("gtx580", Gpusim.Device.gtx580);
    ("hd5970", Gpusim.Device.hd5970);
    ("corei7", Gpusim.Device.core_i7);
  ]

let parse_shape s =
  (* particles=4096x4 *)
  match String.split_on_char '=' s with
  | [ name; dims ] ->
      let shape =
        String.split_on_char 'x' dims |> List.map int_of_string
        |> Array.of_list
      in
      (name, shape)
  | _ -> failwith ("bad --shape (expected name=DIMxDIM...): " ^ s)

let run file worker config_name dump_ast dump_ir placements emit_opencl
    emit_glue estimate sweep shapes =
  let source =
    if file = "-" then In_channel.input_all In_channel.stdin
    else In_channel.with_open_text file In_channel.input_all
  in
  let config =
    match List.assoc_opt config_name configs with
    | Some c -> c
    | None ->
        Printf.eprintf "unknown config %s; available: %s\n" config_name
          (String.concat ", " (List.map fst configs));
        exit 2
  in
  match
    Lime_support.Diag.protect (fun () ->
        Pipeline.compile ~config ~name:file ~worker source)
  with
  | Error d ->
      Printf.eprintf "%s\n" (Lime_support.Diag.to_string d);
      exit 1
  | Ok c ->
      let kernel = c.Pipeline.cp_kernel in
      if dump_ast then
        print_endline
          (Lime_frontend.Ast.program_to_string
             (Lime_frontend.Parser.program_of_string ~name:file source));
      if dump_ir then
        List.iter
          (fun s -> print_endline (Lime_ir.Ir.stmt_str s))
          kernel.Lime_gpu.Kernel.k_body;
      if placements then
        print_endline (Memopt.describe c.Pipeline.cp_decisions);
      if emit_opencl then print_string c.Pipeline.cp_opencl;
      if emit_glue then
        print_string (Lime_gpu.Hostgen.generate kernel);
      (match sweep with
      | None -> ()
      | Some dev_name -> (
          match List.assoc_opt dev_name devices with
          | None ->
              Printf.eprintf "unknown device %s\n" dev_name;
              exit 2
          | Some d ->
              let shapes = List.map parse_shape shapes in
              if shapes = [] then begin
                Printf.eprintf "--sweep requires at least one --shape\n";
                exit 2
              end;
              Printf.printf
                "memory-mapping exploration on %s (fastest first):\n"
                d.Gpusim.Device.name;
              print_endline
                (Gpusim.Autotune.describe
                   (Gpusim.Autotune.sweep d kernel ~shapes ~scalars:[]))));
      (match estimate with
      | None -> ()
      | Some dev_name ->
          let d =
            match List.assoc_opt dev_name devices with
            | Some d -> d
            | None ->
                Printf.eprintf "unknown device %s; available: %s\n" dev_name
                  (String.concat ", " (List.map fst devices));
                exit 2
          in
          let shapes = List.map parse_shape shapes in
          if shapes = [] then begin
            Printf.eprintf
              "--estimate requires at least one --shape name=DIMS\n";
            exit 2
          end;
          let prof =
            Gpusim.Profile.profile kernel c.Pipeline.cp_decisions ~shapes
              ~scalars:[]
          in
          let bindings =
            List.filter_map
              (fun (name, shape) ->
                match List.assoc_opt name kernel.Lime_gpu.Kernel.k_params with
                | Some (Lime_ir.Ir.TArr aty) ->
                    Some
                      (Gpusim.Model.binding_of_shape ~name
                         ~elem:aty.Lime_ir.Ir.elem ~shape
                         (Memopt.placement_for c.Pipeline.cp_decisions name))
                | _ -> None)
              shapes
          in
          let bd = Gpusim.Model.kernel_time d prof bindings in
          Format.printf "device: %s@." d.Gpusim.Device.name;
          Format.printf "profile: %s@." (Gpusim.Profile.to_string prof);
          Format.printf "estimate: %a@." Gpusim.Model.pp_breakdown bd);
      if
        (not dump_ast) && (not dump_ir) && (not placements)
        && (not emit_opencl) && (not emit_glue)
        && estimate = None && sweep = None
      then begin
        Printf.printf "compiled %s: kernel %s (%s)\n" file
          kernel.Lime_gpu.Kernel.k_name
          (if kernel.Lime_gpu.Kernel.k_parallel then "data-parallel"
           else "sequential");
        print_endline (Memopt.describe c.Pipeline.cp_decisions)
      end

open Cmdliner

let file =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Lime source file ('-' for stdin).")

let worker =
  Arg.(
    required
    & opt (some string) None
    & info [ "worker"; "w" ] ~docv:"CLASS.METHOD"
        ~doc:"Filter worker method to offload.")

let config_name =
  Arg.(
    value & opt string "all"
    & info [ "config"; "c" ] ~docv:"CONFIG"
        ~doc:
          "Memory configuration: global, global+vec, local, local+pad, \
           local+pad+vec, constant, constant+vec, texture, all.")

let dump_ast = Arg.(value & flag & info [ "dump-ast" ] ~doc:"Print the parsed program.")
let dump_ir = Arg.(value & flag & info [ "dump-ir" ] ~doc:"Print the extracted kernel IR.")

let placements =
  Arg.(value & flag & info [ "placements" ] ~doc:"Print memory placements.")

let emit_opencl =
  Arg.(value & flag & info [ "emit-opencl" ] ~doc:"Print the OpenCL kernel.")

let emit_glue =
  Arg.(value & flag & info [ "emit-glue" ] ~doc:"Print the host glue C code.")

let estimate =
  Arg.(
    value
    & opt (some string) None
    & info [ "estimate" ] ~docv:"DEVICE"
        ~doc:"Estimate kernel time on a device: gtx8800, gtx580, hd5970, corei7.")

let sweep_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "sweep" ] ~docv:"DEVICE"
        ~doc:
          "Explore all eight memory configurations on a device model and \
           rank them (the paper's §4.2.1 automated exploration).")

let shapes =
  Arg.(
    value & opt_all string []
    & info [ "shape" ] ~docv:"NAME=DIMS"
        ~doc:"Argument shape for --estimate, e.g. particles=4096x4.")

let cmd =
  let doc = "Lime-for-GPUs compiler (PLDI 2012 reproduction)" in
  Cmd.v
    (Cmd.info "limec" ~version:"1.0.0" ~doc)
    Term.(
      const run $ file $ worker $ config_name $ dump_ast $ dump_ir
      $ placements $ emit_opencl $ emit_glue $ estimate $ sweep_arg $ shapes)

let () = exit (Cmd.eval cmd)
