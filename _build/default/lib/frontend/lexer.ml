(** Hand-written lexer for the Lime subset.

    Produces a list of located tokens in one pass.  Menhir/ocamllex are not
    used: a hand-written scanner keeps the front end dependency-free and
    gives precise span information for the double-bracket value-array tokens
    ([\[\[] / [\]\]]), which do not tokenize naturally with longest-match
    generators when mixed with nested index expressions like [a\[b\[i\]\]].

    Disambiguation of [\[\[] is therefore *deferred to the parser*: the lexer
    emits [DLBRACKET]/[DRBRACKET] greedily, and the parser re-splits them when
    the context demands single brackets (this never happens in practice for
    well-formed Lime, because [a\[b\[i\]\]] contains a space-free [\[\[)]...
    To avoid that trap entirely, the lexer only fuses brackets when they are
    *immediately* adjacent AND the preceding token is a type-ish token
    (identifier/primitive keyword/[\]\]]/[\]]), i.e. in type position.  In
    expressions [a\[b\[i\]\]] the preceding token before [\[\[] is an
    identifier too — so instead we use a simpler, fully reliable rule:
    brackets fuse only when adjacent, and the parser accepts both fused and
    split forms everywhere, translating between them as needed. *)

open Lime_support

type located = { tok : Token.t; loc : Loc.t }

type state = {
  src : string;
  name : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let mk_state ?(name = "<inline>") src = { src; name; pos = 0; line = 1; col = 0 }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let peek3 st =
  if st.pos + 2 < String.length st.src then Some st.src.[st.pos + 2] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 0
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let cur_pos st : Loc.pos = { line = st.line; col = st.col; offset = st.pos }

let error st fmt =
  let p = cur_pos st in
  let loc = Loc.make ~source:st.name ~start_pos:p ~end_pos:p in
  Diag.error ~phase:Diag.Lexer ~loc fmt

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '/' when peek2 st = Some '/' ->
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
      advance st;
      advance st;
      let rec to_close () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | None, _ -> error st "unterminated block comment"
        | Some _, _ ->
            advance st;
            to_close ()
      in
      to_close ();
      skip_trivia st
  | _ -> ()

let lex_number st =
  let start = st.pos in
  let is_hex_lit =
    peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X')
  in
  if is_hex_lit then begin
    advance st;
    advance st;
    while (match peek st with Some c -> is_hex c | None -> false) do
      advance st
    done;
    let text = String.sub st.src start (st.pos - start) in
    (* optional long suffix *)
    (match peek st with Some ('l' | 'L') -> advance st | _ -> ());
    Token.INT (Int64.of_string text)
  end
  else begin
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    let is_float = ref false in
    (match (peek st, peek2 st) with
    | Some '.', Some c when is_digit c ->
        is_float := true;
        advance st;
        while (match peek st with Some c -> is_digit c | None -> false) do
          advance st
        done
    | _ -> ());
    (match peek st with
    | Some ('e' | 'E') ->
        is_float := true;
        advance st;
        (match peek st with Some ('+' | '-') -> advance st | _ -> ());
        while (match peek st with Some c -> is_digit c | None -> false) do
          advance st
        done
    | _ -> ());
    let text = String.sub st.src start (st.pos - start) in
    match peek st with
    | Some ('f' | 'F') ->
        advance st;
        Token.FLOAT (float_of_string text)
    | Some ('d' | 'D') ->
        advance st;
        Token.DOUBLE (float_of_string text)
    | Some ('l' | 'L') ->
        advance st;
        Token.INT (Int64.of_string text)
    | _ ->
        if !is_float then Token.DOUBLE (float_of_string text)
        else Token.INT (Int64.of_string text)
  end

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match List.assoc_opt text Token.keyword_table with
  | Some kw -> kw
  | None -> Token.IDENT text

let lex_char_escape st =
  match peek st with
  | Some 'n' -> advance st; '\n'
  | Some 't' -> advance st; '\t'
  | Some 'r' -> advance st; '\r'
  | Some '\\' -> advance st; '\\'
  | Some '\'' -> advance st; '\''
  | Some '"' -> advance st; '"'
  | Some '0' -> advance st; '\000'
  | _ -> error st "unknown escape sequence"

let lex_one st : Token.t =
  let open Token in
  match peek st with
  | None -> EOF
  | Some c when is_digit c -> lex_number st
  | Some c when is_ident_start c -> lex_ident st
  | Some '\'' ->
      advance st;
      let ch =
        match peek st with
        | Some '\\' ->
            advance st;
            lex_char_escape st
        | Some c ->
            advance st;
            c
        | None -> error st "unterminated character literal"
      in
      (match peek st with
      | Some '\'' -> advance st
      | _ -> error st "unterminated character literal");
      CHARLIT ch
  | Some '"' ->
      advance st;
      let buf = Buffer.create 16 in
      let rec go () =
        match peek st with
        | Some '"' -> advance st
        | Some '\\' ->
            advance st;
            Buffer.add_char buf (lex_char_escape st);
            go ()
        | Some c ->
            advance st;
            Buffer.add_char buf c;
            go ()
        | None -> error st "unterminated string literal"
      in
      go ();
      STRINGLIT (Buffer.contents buf)
  | Some '(' -> advance st; LPAREN
  | Some ')' -> advance st; RPAREN
  | Some '{' -> advance st; LBRACE
  | Some '}' -> advance st; RBRACE
  | Some '[' ->
      advance st;
      if peek st = Some '[' then (advance st; DLBRACKET) else LBRACKET
  | Some ']' ->
      advance st;
      if peek st = Some ']' then (advance st; DRBRACKET) else RBRACKET
  | Some ';' -> advance st; SEMI
  | Some ',' -> advance st; COMMA
  | Some '.' -> advance st; DOT
  | Some '?' -> advance st; QUESTION
  | Some ':' -> advance st; COLON
  | Some '@' -> advance st; AT
  | Some '~' -> advance st; TILDE
  | Some '=' ->
      advance st;
      (match peek st with
      | Some '=' -> advance st; EQ
      | Some '>' -> advance st; CONNECT
      | _ -> ASSIGN)
  | Some '!' ->
      advance st;
      if peek st = Some '=' then (advance st; NE) else BANG
  | Some '<' ->
      advance st;
      (match peek st with
      | Some '=' -> advance st; LE
      | Some '<' -> advance st; SHL
      | _ -> LT)
  | Some '>' ->
      advance st;
      (match (peek st, peek2 st) with
      | Some '=', _ -> advance st; GE
      | Some '>', Some '>' ->
          advance st;
          advance st;
          USHR
      | Some '>', _ -> advance st; SHR
      | _ -> GT)
  | Some '+' ->
      advance st;
      (match peek st with
      | Some '+' -> advance st; PLUSPLUS
      | Some '=' -> advance st; PLUS_ASSIGN
      | _ -> PLUS)
  | Some '-' ->
      advance st;
      (match peek st with
      | Some '-' -> advance st; MINUSMINUS
      | Some '=' -> advance st; MINUS_ASSIGN
      | _ -> MINUS)
  | Some '*' ->
      advance st;
      if peek st = Some '=' then (advance st; STAR_ASSIGN) else STAR
  | Some '/' ->
      advance st;
      if peek st = Some '=' then (advance st; SLASH_ASSIGN) else SLASH
  | Some '%' -> advance st; PERCENT
  | Some '&' ->
      advance st;
      if peek st = Some '&' then (advance st; ANDAND) else AMP
  | Some '|' ->
      advance st;
      if peek st = Some '|' then (advance st; OROR) else PIPE
  | Some '^' -> advance st; CARET
  | Some c -> error st "unexpected character %C" c

(** Tokenize a full source string. *)
let tokenize ?(name = "<inline>") src : located list =
  let st = mk_state ~name src in
  let rec go acc =
    skip_trivia st;
    let start = cur_pos st in
    let tok = lex_one st in
    let stop = cur_pos st in
    let loc = Loc.make ~source:name ~start_pos:start ~end_pos:stop in
    let item = { tok; loc } in
    match tok with Token.EOF -> List.rev (item :: acc) | _ -> go (item :: acc)
  in
  go []

(* Quiet the unused warning for peek3 which exists for future lookahead. *)
let _ = peek3
