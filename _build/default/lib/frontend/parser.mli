(** Recursive-descent parser for the Lime subset (see DESIGN.md §5 for the
    grammar).  All entry points raise {!Lime_support.Diag.Error_exn} on
    syntax errors, with precise source spans. *)

val program_of_string : ?name:string -> string -> Ast.program

val expr_of_string : ?name:string -> string -> Ast.expr
(** Parse a single expression (testing/tooling); rejects trailing tokens. *)

val stmt_of_string : ?name:string -> string -> Ast.stmt
(** Parse a single statement (testing/tooling). *)
