(** Tokens produced by the Lime lexer. *)

type t =
  (* literals / identifiers *)
  | INT of int64
  | FLOAT of float  (** literal with [f]/[F] suffix *)
  | DOUBLE of float
  | CHARLIT of char
  | STRINGLIT of string
  | IDENT of string
  (* keywords *)
  | KW_CLASS | KW_VALUE | KW_STATIC | KW_LOCAL | KW_FINAL
  | KW_PUBLIC | KW_PRIVATE
  | KW_NEW | KW_IF | KW_ELSE | KW_WHILE | KW_FOR | KW_RETURN
  | KW_BREAK | KW_CONTINUE | KW_TASK
  | KW_TRUE | KW_FALSE | KW_NULL
  | KW_INT | KW_FLOAT | KW_DOUBLE | KW_BYTE | KW_LONG | KW_BOOLEAN
  | KW_CHAR | KW_VOID
  (* punctuation *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | DLBRACKET | DRBRACKET  (** [[ and ]] *)
  | SEMI | COMMA | DOT | QUESTION | COLON
  | AT  (** [@] map *)
  | BANG  (** [!] reduce / logical not *)
  | CONNECT  (** [=>] *)
  | ASSIGN
  | PLUS_ASSIGN | MINUS_ASSIGN | STAR_ASSIGN | SLASH_ASSIGN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | EQ | NE | LT | LE | GT | GE
  | ANDAND | OROR
  | AMP | PIPE | CARET | TILDE
  | SHL | SHR | USHR
  | PLUSPLUS | MINUSMINUS
  | EOF

let keyword_table : (string * t) list =
  [
    ("class", KW_CLASS); ("value", KW_VALUE); ("static", KW_STATIC);
    ("local", KW_LOCAL); ("final", KW_FINAL); ("public", KW_PUBLIC);
    ("private", KW_PRIVATE); ("new", KW_NEW); ("if", KW_IF);
    ("else", KW_ELSE); ("while", KW_WHILE); ("for", KW_FOR);
    ("return", KW_RETURN); ("break", KW_BREAK); ("continue", KW_CONTINUE);
    ("task", KW_TASK); ("true", KW_TRUE); ("false", KW_FALSE);
    ("null", KW_NULL); ("int", KW_INT); ("float", KW_FLOAT);
    ("double", KW_DOUBLE); ("byte", KW_BYTE); ("long", KW_LONG);
    ("boolean", KW_BOOLEAN); ("char", KW_CHAR); ("void", KW_VOID);
  ]

let to_string = function
  | INT i -> Int64.to_string i
  | FLOAT f -> Printf.sprintf "%gf" f
  | DOUBLE f -> Printf.sprintf "%g" f
  | CHARLIT c -> Printf.sprintf "'%c'" c
  | STRINGLIT s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW_CLASS -> "class" | KW_VALUE -> "value" | KW_STATIC -> "static"
  | KW_LOCAL -> "local" | KW_FINAL -> "final" | KW_PUBLIC -> "public"
  | KW_PRIVATE -> "private" | KW_NEW -> "new" | KW_IF -> "if"
  | KW_ELSE -> "else" | KW_WHILE -> "while" | KW_FOR -> "for"
  | KW_RETURN -> "return" | KW_BREAK -> "break" | KW_CONTINUE -> "continue"
  | KW_TASK -> "task" | KW_TRUE -> "true" | KW_FALSE -> "false"
  | KW_NULL -> "null" | KW_INT -> "int" | KW_FLOAT -> "float"
  | KW_DOUBLE -> "double" | KW_BYTE -> "byte" | KW_LONG -> "long"
  | KW_BOOLEAN -> "boolean" | KW_CHAR -> "char" | KW_VOID -> "void"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | DLBRACKET -> "[[" | DRBRACKET -> "]]"
  | SEMI -> ";" | COMMA -> "," | DOT -> "." | QUESTION -> "?" | COLON -> ":"
  | AT -> "@" | BANG -> "!" | CONNECT -> "=>"
  | ASSIGN -> "="
  | PLUS_ASSIGN -> "+=" | MINUS_ASSIGN -> "-=" | STAR_ASSIGN -> "*="
  | SLASH_ASSIGN -> "/="
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | EQ -> "==" | NE -> "!=" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | ANDAND -> "&&" | OROR -> "||"
  | AMP -> "&" | PIPE -> "|" | CARET -> "^" | TILDE -> "~"
  | SHL -> "<<" | SHR -> ">>" | USHR -> ">>>"
  | PLUSPLUS -> "++" | MINUSMINUS -> "--"
  | EOF -> "<eof>"
