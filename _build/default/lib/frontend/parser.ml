(** Recursive-descent parser for the Lime subset.

    Grammar notes:

    - Value-array dimensions use the paper's double-bracket syntax: the
      double brackets wrap the whole dimension list, so [float[[][4]]] is a
      2-D value array (unbounded outer, bounded-4 inner) and tokenizes as
      [DLBRACKET RBRACKET LBRACKET 4 DRBRACKET].  The lexer fuses adjacent
      brackets greedily; the stream below can virtually re-split a fused
      bracket when the context needs a single one (e.g. in [a\[b\[i\]\]]).

    - The reduce operator [!] is binary-position ([Math.max ! arr]) or takes
      a leading arithmetic operator ([+ ! arr]).  Prefix [!] remains logical
      not.

    - [=>] (connect) has the lowest precedence; [@] (map) and [!] (reduce)
      bind tighter than multiplication. *)

open Lime_support
open Ast

(* ------------------------------------------------------------------ *)
(* Token stream with virtual bracket splitting and backtracking        *)
(* ------------------------------------------------------------------ *)

type stream = {
  toks : Lexer.located array;
  mutable idx : int;
  mutable virtuals : Token.t list;
      (** tokens synthesized by splitting a fused bracket; consumed first *)
}

type mark = int * Token.t list

let of_tokens toks = { toks = Array.of_list toks; idx = 0; virtuals = [] }

let save st : mark = (st.idx, st.virtuals)
let restore st ((i, v) : mark) =
  st.idx <- i;
  st.virtuals <- v

let cur_loc st =
  if st.idx < Array.length st.toks then st.toks.(st.idx).loc else Loc.dummy

let peek st =
  match st.virtuals with
  | t :: _ -> t
  | [] ->
      if st.idx < Array.length st.toks then st.toks.(st.idx).tok else Token.EOF

let next st =
  match st.virtuals with
  | t :: rest ->
      st.virtuals <- rest;
      t
  | [] ->
      let t = peek st in
      if st.idx < Array.length st.toks then st.idx <- st.idx + 1;
      t

let err st fmt =
  Diag.error ~phase:Diag.Parser ~loc:(cur_loc st) fmt

let expect st tok =
  let got = peek st in
  (* Allow a fused double bracket to satisfy a single-bracket expectation. *)
  match (tok, got) with
  | Token.LBRACKET, Token.DLBRACKET when st.virtuals = [] ->
      ignore (next st);
      st.virtuals <- [ Token.LBRACKET ]
  | Token.RBRACKET, Token.DRBRACKET when st.virtuals = [] ->
      ignore (next st);
      st.virtuals <- [ Token.RBRACKET ]
  | _ ->
      if got = tok then ignore (next st)
      else
        err st "expected '%s' but found '%s'" (Token.to_string tok)
          (Token.to_string got)

let accept st tok = if peek st = tok then (ignore (next st); true) else false

let expect_ident st =
  match peek st with
  | Token.IDENT s ->
      ignore (next st);
      s
  | t -> err st "expected identifier but found '%s'" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let prim_of_token = function
  | Token.KW_INT -> Some PInt
  | Token.KW_FLOAT -> Some PFloat
  | Token.KW_DOUBLE -> Some PDouble
  | Token.KW_BYTE -> Some PByte
  | Token.KW_LONG -> Some PLong
  | Token.KW_BOOLEAN -> Some PBoolean
  | Token.KW_CHAR -> Some PChar
  | _ -> None

(** Parse the dimension suffix of a type, returning dims outermost-first.

    Mutable dims: a sequence of [\[\]].  Value dims: [\[\[ d (\]\[ d)* \]\]]
    where each [d] is an optional integer bound. *)
let rec parse_dims st : dim list =
  match peek st with
  | Token.LBRACKET ->
      ignore (next st);
      expect st Token.RBRACKET;
      DimDyn :: parse_dims st
  | Token.DLBRACKET ->
      ignore (next st);
      let rec dims_inside acc =
        let d =
          match peek st with
          | Token.INT n ->
              ignore (next st);
              DimValBounded (Int64.to_int n)
          | _ -> DimValUnbounded
        in
        let acc = d :: acc in
        match peek st with
        | Token.DRBRACKET ->
            ignore (next st);
            List.rev acc
        | Token.RBRACKET ->
            ignore (next st);
            expect st Token.LBRACKET;
            dims_inside acc
        | t -> err st "malformed value-array dimensions near '%s'" (Token.to_string t)
      in
      let vdims = dims_inside [] in
      vdims @ parse_dims st
  | _ -> []

(** Wrap [base] in array types; [dims] is outermost-first, so the head
    dimension becomes the outermost [TArray]. *)
let apply_dims base dims =
  let rec go = function
    | [] -> base
    | d :: rest -> TArray (go rest, d)
  in
  go dims

let parse_base_type st : ty =
  match prim_of_token (peek st) with
  | Some p ->
      ignore (next st);
      TPrim p
  | None -> (
      match peek st with
      | Token.KW_VOID ->
          ignore (next st);
          TVoid
      | Token.IDENT s ->
          ignore (next st);
          TNamed s
      | t -> err st "expected a type but found '%s'" (Token.to_string t))

let parse_type st : ty =
  let base = parse_base_type st in
  let dims = parse_dims st in
  apply_dims base dims

(** Backtracking probe: is a type followed by an identifier next?  Used to
    distinguish local variable declarations from expression statements. *)
let looks_like_vardecl st =
  let m = save st in
  let ok =
    match
      Diag.protect (fun () ->
          let _ty = parse_type st in
          match peek st with Token.IDENT _ -> true | _ -> false)
    with
    | Ok b -> b
    | Error _ -> false
  in
  restore st m;
  ok

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let binop_of_token = function
  | Token.PLUS -> Some Add
  | Token.MINUS -> Some Sub
  | Token.STAR -> Some Mul
  | Token.SLASH -> Some Div
  | Token.PERCENT -> Some Mod
  | Token.LT -> Some Lt
  | Token.LE -> Some Le
  | Token.GT -> Some Gt
  | Token.GE -> Some Ge
  | Token.EQ -> Some Eq
  | Token.NE -> Some Ne
  | Token.ANDAND -> Some And
  | Token.OROR -> Some Or
  | Token.AMP -> Some BitAnd
  | Token.PIPE -> Some BitOr
  | Token.CARET -> Some BitXor
  | Token.SHL -> Some Shl
  | Token.SHR -> Some Shr
  | Token.USHR -> Some Ushr
  | _ -> None

(* Precedence levels, higher binds tighter. *)
let prec_of = function
  | Or -> 10
  | And -> 20
  | BitOr -> 30
  | BitXor -> 40
  | BitAnd -> 50
  | Eq | Ne -> 60
  | Lt | Le | Gt | Ge -> 70
  | Shl | Shr | Ushr -> 80
  | Add | Sub -> 90
  | Mul | Div | Mod -> 100

let _mapred_prec = 110 (* documentation: @ and ! bind tighter than * *)

let rec parse_expr st : expr = parse_connect st

and parse_connect st =
  let lhs = parse_ternary st in
  let rec go lhs =
    if accept st Token.CONNECT then
      let rhs = parse_ternary st in
      go (mk ~loc:(Loc.merge lhs.eloc rhs.eloc) (EConnect (lhs, rhs)))
    else lhs
  in
  go lhs

and parse_ternary st =
  let c = parse_binary st 0 in
  if accept st Token.QUESTION then begin
    let a = parse_ternary st in
    expect st Token.COLON;
    let b = parse_ternary st in
    mk ~loc:(Loc.merge c.eloc b.eloc) (ECond (c, a, b))
  end
  else c

and parse_binary st min_prec =
  let lhs = parse_mapred st in
  let rec go lhs =
    match binop_of_token (peek st) with
    | Some op when prec_of op >= min_prec ->
        ignore (next st);
        let rhs = parse_binary st (prec_of op + 1) in
        go (mk ~loc:(Loc.merge lhs.eloc rhs.eloc) (EBinop (op, lhs, rhs)))
    | _ -> lhs
  in
  go lhs

(** Map [f @ arr] and binary-position reduce [Math.max ! arr]. *)
and parse_mapred st =
  let lhs = parse_unary st in
  let rec go lhs =
    match peek st with
    | Token.AT ->
        ignore (next st);
        let rhs = parse_unary st in
        go (mk ~loc:(Loc.merge lhs.eloc rhs.eloc) (EMap (lhs, rhs)))
    | Token.BANG ->
        (* binary-position '!': the left side must be a method reference *)
        let reducer =
          match lhs.e with
          | EField ({ e = EVar cls; _ }, m) -> RMethod (cls, m)
          | _ ->
              Diag.error ~phase:Diag.Parser ~loc:lhs.eloc
                "the left operand of '!' (reduce) must be a method \
                 reference such as Math.max"
        in
        ignore (next st);
        let rhs = parse_unary st in
        go (mk ~loc:(Loc.merge lhs.eloc rhs.eloc) (EReduce (reducer, rhs)))
    | _ -> lhs
  in
  go lhs

and parse_unary st =
  match peek st with
  (* operator-reduce: '+ ! arr', '* ! arr', 'max'-style handled above *)
  | (Token.PLUS | Token.STAR | Token.AMP | Token.PIPE | Token.CARET) as t
    when
      (let m = save st in
       ignore (next st);
       let is_reduce = peek st = Token.BANG in
       restore st m;
       is_reduce) ->
      let op =
        match t with
        | Token.PLUS -> Add
        | Token.STAR -> Mul
        | Token.AMP -> BitAnd
        | Token.PIPE -> BitOr
        | Token.CARET -> BitXor
        | _ -> assert false
      in
      let l0 = cur_loc st in
      ignore (next st);
      expect st Token.BANG;
      let arr = parse_unary st in
      mk ~loc:(Loc.merge l0 arr.eloc) (EReduce (RBinop op, arr))
  | Token.MINUS ->
      let l0 = cur_loc st in
      ignore (next st);
      let e = parse_unary st in
      mk ~loc:(Loc.merge l0 e.eloc) (EUnop (Neg, e))
  | Token.BANG ->
      let l0 = cur_loc st in
      ignore (next st);
      let e = parse_unary st in
      mk ~loc:(Loc.merge l0 e.eloc) (EUnop (Not, e))
  | Token.TILDE ->
      let l0 = cur_loc st in
      ignore (next st);
      let e = parse_unary st in
      mk ~loc:(Loc.merge l0 e.eloc) (EUnop (BitNot, e))
  | Token.LPAREN
    when
      (let m = save st in
       ignore (next st);
       let is_cast =
         match prim_of_token (peek st) with
         | Some _ ->
             ignore (next st);
             peek st = Token.RPAREN
         | None -> false
       in
       restore st m;
       is_cast) ->
      let l0 = cur_loc st in
      ignore (next st);
      let ty = parse_base_type st in
      expect st Token.RPAREN;
      let e = parse_unary st in
      mk ~loc:(Loc.merge l0 e.eloc) (ECast (ty, e))
  | _ -> parse_postfix st

and parse_postfix st =
  let e = parse_primary st in
  let rec go e =
    match peek st with
    | Token.DOT ->
        ignore (next st);
        let name = expect_ident st in
        if peek st = Token.LPAREN then begin
          let args = parse_args st in
          go (mk ~loc:(Loc.merge e.eloc (cur_loc st)) (ECall (e, name, args)))
        end
        else go (mk ~loc:(Loc.merge e.eloc (cur_loc st)) (EField (e, name)))
    | Token.LBRACKET | Token.DLBRACKET ->
        expect st Token.LBRACKET;
        let i = parse_expr st in
        expect st Token.RBRACKET;
        go (mk ~loc:(Loc.merge e.eloc i.eloc) (EIndex (e, i)))
    | _ -> e
  in
  go e

and parse_args st =
  expect st Token.LPAREN;
  if accept st Token.RPAREN then []
  else begin
    let rec go acc =
      let e = parse_expr st in
      if accept st Token.COMMA then go (e :: acc)
      else begin
        expect st Token.RPAREN;
        List.rev (e :: acc)
      end
    in
    go []
  end

and parse_primary st =
  let loc = cur_loc st in
  match peek st with
  | Token.INT i ->
      ignore (next st);
      mk ~loc (ELit (LInt i))
  | Token.FLOAT f ->
      ignore (next st);
      mk ~loc (ELit (LFloat f))
  | Token.DOUBLE f ->
      ignore (next st);
      mk ~loc (ELit (LDouble f))
  | Token.CHARLIT c ->
      ignore (next st);
      mk ~loc (ELit (LChar c))
  | Token.STRINGLIT s ->
      ignore (next st);
      mk ~loc (ELit (LString s))
  | Token.KW_TRUE ->
      ignore (next st);
      mk ~loc (ELit (LBool true))
  | Token.KW_FALSE ->
      ignore (next st);
      mk ~loc (ELit (LBool false))
  | Token.KW_NULL ->
      ignore (next st);
      mk ~loc (ELit LNull)
  | Token.LPAREN ->
      ignore (next st);
      let e = parse_expr st in
      expect st Token.RPAREN;
      e
  | Token.LBRACE ->
      (* array literal *)
      ignore (next st);
      let rec go acc =
        if peek st = Token.RBRACE then begin
          ignore (next st);
          List.rev acc
        end
        else begin
          let e = parse_expr st in
          if accept st Token.COMMA then go (e :: acc)
          else begin
            expect st Token.RBRACE;
            List.rev (e :: acc)
          end
        end
      in
      mk ~loc (EArrayLit (go []))
  | Token.KW_NEW ->
      ignore (next st);
      let base = parse_base_type st in
      (match (base, peek st) with
      | TNamed cls, Token.LPAREN ->
          let args = parse_args st in
          mk ~loc (ENewObject (cls, args))
      | _, (Token.LBRACKET | Token.DLBRACKET) ->
          (* new T[e1][e2]... (mutable) or new T[[e1]]... (value, with
             runtime sizes); collect leading sizes, keep trailing empty
             dims as part of the type *)
          let sizes = ref [] in
          let dims = ref [] in
          let rec lead () =
            match peek st with
            | Token.LBRACKET ->
                ignore (next st);
                if peek st = Token.RBRACKET then begin
                  ignore (next st);
                  dims := !dims @ [ DimDyn ];
                  trail_dyn ()
                end
                else begin
                  let e = parse_expr st in
                  expect st Token.RBRACKET;
                  sizes := !sizes @ [ e ];
                  dims := !dims @ [ DimDyn ];
                  lead ()
                end
            | Token.DLBRACKET ->
                ignore (next st);
                let rec vdims () =
                  (match peek st with
                  | Token.DRBRACKET | Token.RBRACKET ->
                      dims := !dims @ [ DimValUnbounded ]
                  | _ ->
                      let e = parse_expr st in
                      (match e.e with
                      | ELit (LInt n) ->
                          dims := !dims @ [ DimValBounded (Int64.to_int n) ]
                      | _ -> dims := !dims @ [ DimValUnbounded ]);
                      sizes := !sizes @ [ e ]);
                  match peek st with
                  | Token.DRBRACKET -> ignore (next st)
                  | Token.RBRACKET ->
                      ignore (next st);
                      expect st Token.LBRACKET;
                      vdims ()
                  | t ->
                      err st "malformed value-array dimensions near '%s'"
                        (Token.to_string t)
                in
                vdims ();
                lead ()
            | _ -> ()
          and trail_dyn () =
            match peek st with
            | Token.LBRACKET ->
                ignore (next st);
                expect st Token.RBRACKET;
                dims := !dims @ [ DimDyn ];
                trail_dyn ()
            | _ -> ()
          in
          lead ();
          let ty = apply_dims base !dims in
          mk ~loc (ENewArray (ty, !sizes))
      | TNamed cls, _ ->
          err st "expected '(' or '[' after 'new %s'" cls
      | _ -> err st "expected array dimensions after 'new <primitive>'")
  | Token.KW_TASK ->
      ignore (next st);
      let cls = expect_ident st in
      let ctor_args =
        if peek st = Token.LPAREN then Some (parse_args st) else None
      in
      expect st Token.DOT;
      let meth = expect_ident st in
      mk ~loc (ETask { tr_class = cls; tr_ctor_args = ctor_args; tr_method = meth })
  | Token.IDENT s ->
      ignore (next st);
      if peek st = Token.LPAREN then
        (* unqualified call — to a method of the enclosing class; the type
           checker rewrites this into a qualified call *)
        let args = parse_args st in
        mk ~loc (ECall (mk ~loc (EVar "<this-class>"), s, args))
      else mk ~loc (EVar s)
  | t -> err st "unexpected token '%s' in expression" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

(** Desugar [e++] / [e--] / compound assignment into plain assignment. *)
let incr_decr loc op e =
  let one = mk ~loc (ELit (LInt 1L)) in
  mks ~loc (SAssign (e, mk ~loc (EBinop (op, e, one))))

let rec parse_stmt st : stmt =
  let loc = cur_loc st in
  match peek st with
  | Token.LBRACE ->
      ignore (next st);
      let rec go acc =
        if accept st Token.RBRACE then List.rev acc
        else go (parse_stmt st :: acc)
      in
      mks ~loc (SBlock (go []))
  | Token.KW_IF ->
      ignore (next st);
      expect st Token.LPAREN;
      let c = parse_expr st in
      expect st Token.RPAREN;
      let a = parse_stmt st in
      let b = if accept st Token.KW_ELSE then Some (parse_stmt st) else None in
      mks ~loc (SIf (c, a, b))
  | Token.KW_WHILE ->
      ignore (next st);
      expect st Token.LPAREN;
      let c = parse_expr st in
      expect st Token.RPAREN;
      let b = parse_stmt st in
      mks ~loc (SWhile (c, b))
  | Token.KW_FOR ->
      ignore (next st);
      expect st Token.LPAREN;
      let init =
        if peek st = Token.SEMI then None else Some (parse_simple_stmt st)
      in
      expect st Token.SEMI;
      let cond = if peek st = Token.SEMI then None else Some (parse_expr st) in
      expect st Token.SEMI;
      let step =
        if peek st = Token.RPAREN then None else Some (parse_simple_stmt st)
      in
      expect st Token.RPAREN;
      let body = parse_stmt st in
      mks ~loc (SFor (init, cond, step, body))
  | Token.KW_RETURN ->
      ignore (next st);
      if accept st Token.SEMI then mks ~loc (SReturn None)
      else begin
        let e = parse_expr st in
        expect st Token.SEMI;
        mks ~loc (SReturn (Some e))
      end
  | Token.KW_BREAK ->
      ignore (next st);
      expect st Token.SEMI;
      mks ~loc SBreak
  | Token.KW_CONTINUE ->
      ignore (next st);
      expect st Token.SEMI;
      mks ~loc SContinue
  | _ ->
      let s = parse_simple_stmt st in
      expect st Token.SEMI;
      s

(** A "simple" statement: declaration, assignment, increment or expression —
    the forms allowed in [for] headers (no trailing semicolon). *)
and parse_simple_stmt st : stmt =
  let loc = cur_loc st in
  let is_decl =
    match peek st with
    | t when prim_of_token t <> None -> true
    | Token.IDENT _ -> looks_like_vardecl st
    | _ -> false
  in
  if is_decl then begin
    let ty = parse_type st in
    let name = expect_ident st in
    let init = if accept st Token.ASSIGN then Some (parse_expr st) else None in
    mks ~loc (SVarDecl (ty, name, init))
  end
  else begin
    let e = parse_expr st in
    match peek st with
    | Token.ASSIGN ->
        ignore (next st);
        let r = parse_expr st in
        mks ~loc (SAssign (e, r))
    | Token.PLUS_ASSIGN ->
        ignore (next st);
        let r = parse_expr st in
        mks ~loc (SAssign (e, mk ~loc (EBinop (Add, e, r))))
    | Token.MINUS_ASSIGN ->
        ignore (next st);
        let r = parse_expr st in
        mks ~loc (SAssign (e, mk ~loc (EBinop (Sub, e, r))))
    | Token.STAR_ASSIGN ->
        ignore (next st);
        let r = parse_expr st in
        mks ~loc (SAssign (e, mk ~loc (EBinop (Mul, e, r))))
    | Token.SLASH_ASSIGN ->
        ignore (next st);
        let r = parse_expr st in
        mks ~loc (SAssign (e, mk ~loc (EBinop (Div, e, r))))
    | Token.PLUSPLUS ->
        ignore (next st);
        incr_decr loc Add e
    | Token.MINUSMINUS ->
        ignore (next st);
        incr_decr loc Sub e
    | _ -> mks ~loc (SExpr e)
  end

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let parse_modifiers st : modifier list =
  let rec go acc =
    match peek st with
    | Token.KW_STATIC -> ignore (next st); go (MStatic :: acc)
    | Token.KW_LOCAL -> ignore (next st); go (MLocal :: acc)
    | Token.KW_FINAL -> ignore (next st); go (MFinal :: acc)
    | Token.KW_PUBLIC -> ignore (next st); go (MPublic :: acc)
    | Token.KW_PRIVATE -> ignore (next st); go (MPrivate :: acc)
    | _ -> List.rev acc
  in
  go []

let parse_params st : param list =
  expect st Token.LPAREN;
  if accept st Token.RPAREN then []
  else begin
    let rec go acc =
      let loc = cur_loc st in
      let ty = parse_type st in
      let name = expect_ident st in
      let p = { p_ty = ty; p_name = name; p_loc = loc } in
      if accept st Token.COMMA then go (p :: acc)
      else begin
        expect st Token.RPAREN;
        List.rev (p :: acc)
      end
    in
    go []
  end

let parse_method_tail st ~mods ~ret ~name ~loc =
  let params = parse_params st in
  expect st Token.LBRACE;
  let rec go acc =
    if accept st Token.RBRACE then List.rev acc else go (parse_stmt st :: acc)
  in
  let body = go [] in
  {
    m_mods = mods;
    m_ret = ret;
    m_name = name;
    m_params = params;
    m_body = body;
    m_loc = loc;
  }

let parse_member st : [ `Field of field_decl | `Method of method_decl ] =
  let loc = cur_loc st in
  let mods = parse_modifiers st in
  let ty = parse_type st in
  match (ty, peek st) with
  | TNamed _, Token.LPAREN ->
      (* Constructor: a bare class name directly followed by a parameter
         list; represented as a method named "<init>" returning void. *)
      `Method (parse_method_tail st ~mods ~ret:TVoid ~name:"<init>" ~loc)
  | _ ->
      let name = expect_ident st in
      if peek st = Token.LPAREN then
        `Method (parse_method_tail st ~mods ~ret:ty ~name ~loc)
      else begin
        let init =
          if accept st Token.ASSIGN then Some (parse_expr st) else None
        in
        expect st Token.SEMI;
        `Field
          { f_mods = mods; f_ty = ty; f_name = name; f_init = init; f_loc = loc }
      end

let parse_class st : class_decl =
  let loc = cur_loc st in
  let value = accept st Token.KW_VALUE in
  expect st Token.KW_CLASS;
  let name = expect_ident st in
  expect st Token.LBRACE;
  let fields = ref [] and methods = ref [] in
  let rec go () =
    if accept st Token.RBRACE then ()
    else begin
      (match parse_member st with
      | `Field f -> fields := f :: !fields
      | `Method m -> methods := m :: !methods);
      go ()
    end
  in
  go ();
  {
    c_value = value;
    c_name = name;
    c_fields = List.rev !fields;
    c_methods = List.rev !methods;
    c_loc = loc;
  }

let parse_program st : program =
  let rec go acc =
    if peek st = Token.EOF then List.rev acc else go (parse_class st :: acc)
  in
  go []

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let program_of_string ?(name = "<inline>") src : program =
  let toks = Lexer.tokenize ~name src in
  let st = of_tokens toks in
  parse_program st

let expr_of_string ?(name = "<inline>") src : expr =
  let toks = Lexer.tokenize ~name src in
  let st = of_tokens toks in
  let e = parse_expr st in
  (match peek st with
  | Token.EOF -> ()
  | t -> err st "trailing tokens after expression: '%s'" (Token.to_string t));
  e

let stmt_of_string ?(name = "<inline>") src : stmt =
  let toks = Lexer.tokenize ~name src in
  let st = of_tokens toks in
  parse_stmt st
