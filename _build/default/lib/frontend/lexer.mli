(** Hand-written lexer for the Lime subset.

    Adjacent brackets fuse into the value-array tokens ([\[\[] / [\]\]]);
    the parser re-splits them on demand (e.g. in [a\[b\[i\]\]]). *)

type located = { tok : Token.t; loc : Lime_support.Loc.t }

val tokenize : ?name:string -> string -> located list
(** Tokenize a whole source; the final element is always {!Token.EOF}.
    Raises {!Lime_support.Diag.Error_exn} on lexical errors. *)
