lib/frontend/lexer.ml: Buffer Diag Int64 Lime_support List Loc String Token
