lib/frontend/ast.ml: Buffer Int64 Lime_support List Loc Printf String
