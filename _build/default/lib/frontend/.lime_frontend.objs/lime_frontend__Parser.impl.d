lib/frontend/parser.ml: Array Ast Diag Int64 Lexer Lime_support List Loc Token
