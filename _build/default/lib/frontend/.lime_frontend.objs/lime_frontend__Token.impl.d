lib/frontend/token.ml: Int64 Printf
