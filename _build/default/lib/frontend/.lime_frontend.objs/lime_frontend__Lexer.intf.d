lib/frontend/lexer.mli: Lime_support Token
