(** Abstract syntax for the Lime subset.

    The subset covers everything the paper's nine benchmarks need: Java-like
    classes, methods and statements, plus the Lime extensions — [value]
    (deeply immutable) types, value arrays with bounded dimensions
    ([float[[][4]]]), [local] methods, the [task] operator, the [=>]
    (connect) operator, [@] (map) and [!] (reduce). *)

open Lime_support

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

type prim = PInt | PFloat | PDouble | PByte | PLong | PBoolean | PChar

(** One array dimension.  [DimDyn] is a plain mutable Java array ([T\[\]]);
    the other two are Lime value-array dimensions ([T\[\[\]\]] unbounded and
    [T\[\[n\]\]] bounded to a compile-time size). *)
type dim =
  | DimDyn
  | DimValUnbounded
  | DimValBounded of int

type ty =
  | TPrim of prim
  | TNamed of string  (** class type, resolved during type checking *)
  | TArray of ty * dim
      (** [TArray (elt, d)]: the outermost dimension is [d]; e.g.
          [float[[][4]]] is [TArray (TArray (TPrim PFloat, DimValBounded 4),
          DimValUnbounded)]. *)
  | TVoid
  | TTask of ty * ty
      (** semantic-only type of task-graph expressions: input and output
          port types; never written in source syntax *)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or
  | BitAnd | BitOr | BitXor
  | Shl | Shr | Ushr

type unop = Neg | Not | BitNot

type lit =
  | LInt of int64
  | LFloat of float  (** [float] literal, e.g. [1.0f] *)
  | LDouble of float
  | LBool of bool
  | LChar of char
  | LString of string
  | LNull

(** Reference to a worker method used by [task]: [Class.method] for a
    static worker, [Class(args).method] for an instance worker. *)
type task_ref = {
  tr_class : string;
  tr_ctor_args : expr list option;  (** [Some args] = instance worker *)
  tr_method : string;
}

and expr = { e : expr_kind; eloc : Loc.t }

and expr_kind =
  | ELit of lit
  | EVar of string
  | EBinop of binop * expr * expr
  | EUnop of unop * expr
  | ECond of expr * expr * expr  (** [c ? a : b] *)
  | EIndex of expr * expr  (** [a\[i\]] *)
  | EField of expr * string  (** [e.f]; [Class.f] parses as [EField (EVar _, _)] *)
  | ECall of expr * string * expr list
      (** [ECall (recv, name, args)]: method call [recv.name(args)];
          [recv] may be [EVar "Class"] for static calls — resolution happens
          during type checking. *)
  | ELocalCall of string * string list * expr list
      (** placeholder used by desugaring; not produced by the parser *)
  | ENewArray of ty * expr list
      (** [new T\[e1\]\[e2\]...]; [ty] is the full array type, the list gives
          the sizes of the leading dimensions *)
  | ENewObject of string * expr list  (** [new C(args)] *)
  | EArrayLit of expr list  (** [{ e1, e2, ... }] *)
  | ECast of ty * expr  (** primitive casts only: [(float) x] *)
  | EMap of expr * expr
      (** [f(captured...) @ arr] — the left side is an [ECall] or a method
          reference ([EField]); the element is appended as the final
          argument of the map function *)
  | EReduce of reducer * expr  (** [g ! arr] *)
  | ETask of task_ref  (** [task Class.method] / [task Class(args).method] *)
  | EConnect of expr * expr  (** [a => b] *)

and reducer =
  | RBinop of binop  (** e.g. [+ ! arr] *)
  | RMethod of string * string  (** [Math.max ! arr] *)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

type stmt = { s : stmt_kind; sloc : Loc.t }

and stmt_kind =
  | SVarDecl of ty * string * expr option
  | SAssign of expr * expr  (** lvalue = rvalue (compound ops are desugared) *)
  | SIf of expr * stmt * stmt option
  | SWhile of expr * stmt
  | SFor of stmt option * expr option * stmt option * stmt
      (** [for (init; cond; step) body]; [init]/[step] are restricted to
          declarations/assignments/expressions by the parser *)
  | SReturn of expr option
  | SExpr of expr
  | SBlock of stmt list
  | SBreak
  | SContinue

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

type modifier = MStatic | MLocal | MFinal | MPublic | MPrivate

type param = { p_ty : ty; p_name : string; p_loc : Loc.t }

type method_decl = {
  m_mods : modifier list;
  m_ret : ty;  (** [TVoid] for void methods *)
  m_name : string;
  m_params : param list;
  m_body : stmt list;
  m_loc : Loc.t;
}

type field_decl = {
  f_mods : modifier list;
  f_ty : ty;
  f_name : string;
  f_init : expr option;
  f_loc : Loc.t;
}

type class_decl = {
  c_value : bool;  (** declared with the [value] modifier *)
  c_name : string;
  c_fields : field_decl list;
  c_methods : method_decl list;
  c_loc : Loc.t;
}

type program = class_decl list

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)
(* ------------------------------------------------------------------ *)

let mk ?(loc = Loc.dummy) e = { e; eloc = loc }
let mks ?(loc = Loc.dummy) s = { s; sloc = loc }

let has_mod m mods = List.mem m mods
let is_static mods = has_mod MStatic mods
let is_local mods = has_mod MLocal mods
let is_final mods = has_mod MFinal mods

(* ------------------------------------------------------------------ *)
(* Type predicates and helpers                                         *)
(* ------------------------------------------------------------------ *)

let rec ty_equal a b =
  match (a, b) with
  | TPrim p, TPrim q -> p = q
  | TNamed n, TNamed m -> n = m
  | TArray (t, d), TArray (u, e) -> d = e && ty_equal t u
  | TVoid, TVoid -> true
  | TTask (a, b), TTask (c, d) -> ty_equal a c && ty_equal b d
  | _ -> false

(** Element type after stripping [n] array dimensions. *)
let rec strip_dims n ty =
  if n = 0 then Some ty
  else match ty with TArray (t, _) -> strip_dims (n - 1) t | _ -> None

(** Base scalar type of a (possibly nested) array type. *)
let rec base_ty = function TArray (t, _) -> base_ty t | t -> t

(** Number of array dimensions. *)
let rec rank = function TArray (t, _) -> 1 + rank t | _ -> 0

(** The list of dimensions of an array type, outermost first. *)
let rec dims_of = function
  | TArray (t, d) -> d :: dims_of t
  | _ -> []

(** A type is a value type if it contains no mutable ([DimDyn]) dimension and
    its base is a primitive or a value class (the latter is checked by the
    type checker; syntactically we only rule out [DimDyn]). *)
let rec syntactically_value = function
  | TPrim _ -> true
  | TVoid -> false
  | TTask _ -> false
  | TNamed _ -> true (* refined by the type checker using the class table *)
  | TArray (_, DimDyn) -> false
  | TArray (t, _) -> syntactically_value t

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)
(* ------------------------------------------------------------------ *)

let prim_name = function
  | PInt -> "int"
  | PFloat -> "float"
  | PDouble -> "double"
  | PByte -> "byte"
  | PLong -> "long"
  | PBoolean -> "boolean"
  | PChar -> "char"

let dim_to_string = function
  | DimDyn -> "[]"
  | DimValUnbounded -> "[[]]"
  | DimValBounded n -> Printf.sprintf "[[%d]]" n

(** Print a dimension list in the paper's concrete syntax: consecutive value
    dimensions share one double-bracket group, e.g. [\[\[\]\[4\]\]]. *)
let dims_to_string ds =
  let buf = Buffer.create 16 in
  let rec go = function
    | [] -> ()
    | DimDyn :: rest ->
        Buffer.add_string buf "[]";
        go rest
    | (DimValUnbounded | DimValBounded _) :: _ as l ->
        let rec value_run acc = function
          | DimValUnbounded :: rest -> value_run ("" :: acc) rest
          | DimValBounded n :: rest -> value_run (string_of_int n :: acc) rest
          | rest -> (List.rev acc, rest)
        in
        let run, rest = value_run [] l in
        Buffer.add_string buf "[[";
        Buffer.add_string buf (String.concat "][" run);
        Buffer.add_string buf "]]";
        go rest
  in
  go ds;
  Buffer.contents buf

let rec ty_to_string = function
  | TPrim p -> prim_name p
  | TNamed n -> n
  | TVoid -> "void"
  | TTask (a, b) ->
      Printf.sprintf "task(%s => %s)" (ty_to_string a) (ty_to_string b)
  | TArray _ as t ->
      let b = base_ty t and ds = dims_of t in
      ty_to_string b ^ dims_to_string ds

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | And -> "&&" | Or -> "||"
  | BitAnd -> "&" | BitOr -> "|" | BitXor -> "^"
  | Shl -> "<<" | Shr -> ">>" | Ushr -> ">>>"

let unop_name = function Neg -> "-" | Not -> "!" | BitNot -> "~"

let modifier_name = function
  | MStatic -> "static"
  | MLocal -> "local"
  | MFinal -> "final"
  | MPublic -> "public"
  | MPrivate -> "private"

let lit_to_string = function
  | LInt i -> Int64.to_string i
  | LFloat f -> Printf.sprintf "%gf" f
  | LDouble f -> Printf.sprintf "%g" f
  | LBool b -> string_of_bool b
  | LChar c -> Printf.sprintf "'%c'" c
  | LString s -> Printf.sprintf "%S" s
  | LNull -> "null"

let rec expr_to_string e =
  match e.e with
  | ELit l -> lit_to_string l
  | EVar v -> v
  | EBinop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_name op)
        (expr_to_string b)
  | EUnop (op, a) -> Printf.sprintf "(%s%s)" (unop_name op) (expr_to_string a)
  | ECond (c, a, b) ->
      Printf.sprintf "(%s ? %s : %s)" (expr_to_string c) (expr_to_string a)
        (expr_to_string b)
  | EIndex (a, i) ->
      Printf.sprintf "%s[%s]" (expr_to_string a) (expr_to_string i)
  | EField (a, f) -> Printf.sprintf "%s.%s" (expr_to_string a) f
  | ECall (r, m, args) ->
      Printf.sprintf "%s.%s(%s)" (expr_to_string r) m (args_to_string args)
  | ELocalCall (m, _, args) ->
      Printf.sprintf "%s(%s)" m (args_to_string args)
  | ENewArray (t, sizes) ->
      Printf.sprintf "new %s{%s}" (ty_to_string t) (args_to_string sizes)
  | ENewObject (c, args) ->
      Printf.sprintf "new %s(%s)" c (args_to_string args)
  | EArrayLit es -> Printf.sprintf "{ %s }" (args_to_string es)
  | ECast (t, a) ->
      Printf.sprintf "((%s) %s)" (ty_to_string t) (expr_to_string a)
  | EMap (f, arr) ->
      Printf.sprintf "(%s @ %s)" (expr_to_string f) (expr_to_string arr)
  | EReduce (r, arr) ->
      Printf.sprintf "(%s ! %s)" (reducer_to_string r) (expr_to_string arr)
  | ETask tr ->
      let inst =
        match tr.tr_ctor_args with
        | None -> ""
        | Some args -> Printf.sprintf "(%s)" (args_to_string args)
      in
      Printf.sprintf "task %s%s.%s" tr.tr_class inst tr.tr_method
  | EConnect (a, b) ->
      Printf.sprintf "(%s => %s)" (expr_to_string a) (expr_to_string b)

and args_to_string args = String.concat ", " (List.map expr_to_string args)

and reducer_to_string = function
  | RBinop op -> binop_name op
  | RMethod (c, m) -> Printf.sprintf "%s.%s" c m

let rec stmt_to_string ?(ind = 0) st =
  let pad = String.make ind ' ' in
  match st.s with
  | SVarDecl (t, n, init) ->
      let init =
        match init with None -> "" | Some e -> " = " ^ expr_to_string e
      in
      Printf.sprintf "%s%s %s%s;" pad (ty_to_string t) n init
  | SAssign (l, r) ->
      Printf.sprintf "%s%s = %s;" pad (expr_to_string l) (expr_to_string r)
  | SIf (c, a, b) ->
      let els =
        match b with
        | None -> ""
        | Some b -> Printf.sprintf " else %s" (String.trim (stmt_to_string ~ind b))
      in
      Printf.sprintf "%sif (%s) %s%s" pad (expr_to_string c)
        (String.trim (stmt_to_string ~ind a))
        els
  | SWhile (c, b) ->
      Printf.sprintf "%swhile (%s) %s" pad (expr_to_string c)
        (String.trim (stmt_to_string ~ind b))
  | SFor (init, cond, step, body) ->
      let s_of_opt f = function None -> "" | Some x -> f x in
      Printf.sprintf "%sfor (%s %s; %s) %s" pad
        (s_of_opt (fun s -> String.trim (stmt_to_string s)) init)
        (s_of_opt expr_to_string cond)
        (s_of_opt (fun s -> String.trim (stmt_to_string s)) step
        |> fun s -> (try String.sub s 0 (String.length s - 1) with _ -> s))
        (String.trim (stmt_to_string ~ind body))
  | SReturn None -> pad ^ "return;"
  | SReturn (Some e) -> Printf.sprintf "%sreturn %s;" pad (expr_to_string e)
  | SExpr e -> Printf.sprintf "%s%s;" pad (expr_to_string e)
  | SBlock body ->
      let inner =
        List.map (stmt_to_string ~ind:(ind + 2)) body |> String.concat "\n"
      in
      Printf.sprintf "%s{\n%s\n%s}" pad inner pad
  | SBreak -> pad ^ "break;"
  | SContinue -> pad ^ "continue;"

let method_to_string (m : method_decl) =
  let mods = List.map modifier_name m.m_mods |> String.concat " " in
  let params =
    m.m_params
    |> List.map (fun p -> ty_to_string p.p_ty ^ " " ^ p.p_name)
    |> String.concat ", "
  in
  Printf.sprintf "  %s %s %s(%s) {\n%s\n  }"
    (if mods = "" then "" else mods)
    (ty_to_string m.m_ret) m.m_name params
    (List.map (stmt_to_string ~ind:4) m.m_body |> String.concat "\n")

let class_to_string (c : class_decl) =
  let fields =
    c.c_fields
    |> List.map (fun f ->
           let mods =
             List.map modifier_name f.f_mods |> String.concat " "
           in
           let init =
             match f.f_init with
             | None -> ""
             | Some e -> " = " ^ expr_to_string e
           in
           Printf.sprintf "  %s %s %s%s;" mods (ty_to_string f.f_ty) f.f_name
             init)
    |> String.concat "\n"
  in
  let methods = List.map method_to_string c.c_methods |> String.concat "\n\n" in
  Printf.sprintf "%sclass %s {\n%s\n\n%s\n}"
    (if c.c_value then "value " else "")
    c.c_name fields methods

let program_to_string p = List.map class_to_string p |> String.concat "\n\n"
