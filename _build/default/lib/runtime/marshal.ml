(** Value marshaling across the Java ↔ native boundary (paper §4.3, Fig 6).

    The runtime adopts a universal wire format — a byte stream — so that any
    device backend can consume task inputs.  Two marshallers produce the
    *same* bytes:

    - {!encode_generic}: walks the value recursively using runtime type
      information, element by element.  This is the paper's initial
      implementation, where "more than 90% of the time was spent marshaling";
    - {!encode}: uses custom serializers for primitives and (nested) arrays
      of primitives — bulk copies of whole rows.

    Wire format (little endian):
    [tag] then payload, where tags are: 0 unit, 1 int, 2 long, 3 float,
    4 double, 5 array.  An array is [elem-kind rank dim0..dimK data...].

    The module also provides the marshaling *time model* used by the
    communication accounting of Fig 9 — the real byte counts from these
    encoders feed the model. *)

module Ir = Lime_ir.Ir
module Value = Lime_ir.Value

exception Marshal_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Marshal_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let elem_kind_tag = function
  | Ir.SInt -> 0
  | Ir.SFloat -> 1
  | Ir.SDouble -> 2
  | Ir.SByte -> 3
  | Ir.SLong -> 4
  | Ir.SBool -> 5
  | Ir.SChar -> 6

let elem_kind_of_tag = function
  | 0 -> Ir.SInt
  | 1 -> Ir.SFloat
  | 2 -> Ir.SDouble
  | 3 -> Ir.SByte
  | 4 -> Ir.SLong
  | 5 -> Ir.SBool
  | 6 -> Ir.SChar
  | t -> fail "bad element kind tag %d" t

let add_i32 buf v = Buffer.add_int32_le buf (Int32.of_int v)
let add_i64 buf v = Buffer.add_int64_le buf v
let add_f32 buf v = Buffer.add_int32_le buf (Int32.bits_of_float v)
let add_f64 buf v = Buffer.add_int64_le buf (Int64.bits_of_float v)

let add_elem buf (elem : Ir.scalar) (a : Value.arr) k =
  match (a.Value.buf, elem) with
  | Value.BInt b, (Ir.SInt | Ir.SBool) -> add_i32 buf b.(k)
  | Value.BInt b, Ir.SByte -> Buffer.add_int8 buf (b.(k) land 0xFF)
  | Value.BInt b, Ir.SChar -> Buffer.add_int16_le buf (b.(k) land 0xFFFF)
  | Value.BLong b, _ -> add_i64 buf b.(k)
  | Value.BFloat b, Ir.SFloat -> add_f32 buf b.(k)
  | Value.BFloat b, _ -> add_f64 buf b.(k)
  | _ -> fail "corrupt array buffer"

let header buf (a : Value.arr) =
  Buffer.add_int8 buf 5;
  Buffer.add_int8 buf (elem_kind_tag a.Value.elem);
  Buffer.add_int8 buf (Value.rank a);
  Array.iter (fun d -> add_i32 buf d) a.Value.shape

(** Custom serializer: bulk row-wise encoding of primitive arrays. *)
let rec encode_value buf (v : Value.t) : unit =
  match v with
  | Value.VUnit -> Buffer.add_int8 buf 0
  | Value.VInt i ->
      Buffer.add_int8 buf 1;
      add_i32 buf i
  | Value.VLong l ->
      Buffer.add_int8 buf 2;
      add_i64 buf l
  | Value.VFloat f ->
      Buffer.add_int8 buf 3;
      add_f32 buf f
  | Value.VDouble d ->
      Buffer.add_int8 buf 4;
      add_f64 buf d
  | Value.VArr a ->
      header buf a;
      let contiguous = a.Value.strides = Value.strides_of a.Value.shape in
      let n = Value.elem_count a.Value.shape in
      if contiguous then
        (* the fast path: one pass over the flat buffer *)
        for k = a.Value.offset to a.Value.offset + n - 1 do
          add_elem buf a.Value.elem a k
        done
      else begin
        (* strided view: row-recursive copy *)
        let rec rows (a : Value.arr) =
          if Value.rank a <= 1 then
            for i = 0 to a.Value.shape.(0) - 1 do
              add_elem buf a.Value.elem a (Value.flat_index a [| i |])
            done
          else
            for i = 0 to a.Value.shape.(0) - 1 do
              rows (Value.view a i)
            done
        in
        rows a
      end
  | Value.VObj o -> fail "cannot marshal object of class %s" o.Value.cls
  | Value.VGraph _ -> fail "cannot marshal a task graph"

and encode (v : Value.t) : bytes =
  let buf = Buffer.create 256 in
  encode_value buf v;
  Buffer.to_bytes buf

(** Generic serializer: the element-at-a-time reference implementation
    driven by runtime type information.  Produces identical bytes; exists to
    (a) differential-test the custom one and (b) model the paper's 90%
    marshaling-overhead anecdote in the ablation benchmark. *)
let encode_generic (v : Value.t) : bytes =
  let buf = Buffer.create 256 in
  let rec go (v : Value.t) ~top =
    match v with
    | Value.VArr a when Value.rank a > 0 ->
        if top then header buf a
        else ();
        if Value.rank a = 1 then
          for i = 0 to a.Value.shape.(0) - 1 do
            (* boxes every element through the generic Value.t view *)
            match Value.index a [ i ] with
            | Value.VInt x -> (
                match a.Value.elem with
                | Ir.SByte -> Buffer.add_int8 buf (x land 0xFF)
                | Ir.SChar -> Buffer.add_int16_le buf (x land 0xFFFF)
                | _ -> add_i32 buf x)
            | Value.VLong x -> add_i64 buf x
            | Value.VFloat x -> add_f32 buf x
            | Value.VDouble x -> add_f64 buf x
            | _ -> fail "generic: non-scalar element"
          done
        else
          for i = 0 to a.Value.shape.(0) - 1 do
            go (Value.VArr (Value.view a i)) ~top:false
          done
    | v ->
        if top then encode_value buf v
        else fail "generic: unexpected nested value"
  in
  go v ~top:true;
  Buffer.to_bytes buf

(* ------------------------------------------------------------------ *)
(* Decoding ("the C side" and the return path)                         *)
(* ------------------------------------------------------------------ *)

type reader = { data : bytes; mutable pos : int }

let rd_i8 r =
  let v = Char.code (Bytes.get r.data r.pos) in
  r.pos <- r.pos + 1;
  v

let rd_i32 r =
  let v = Bytes.get_int32_le r.data r.pos in
  r.pos <- r.pos + 4;
  Int32.to_int v

let rd_i32_signed r =
  let v = Bytes.get_int32_le r.data r.pos in
  r.pos <- r.pos + 4;
  Int32.to_int v

let rd_i64 r =
  let v = Bytes.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  v

let decode (b : bytes) : Value.t =
  let r = { data = b; pos = 0 } in
  let go () =
    match rd_i8 r with
    | 0 -> Value.VUnit
    | 1 -> Value.VInt (rd_i32_signed r)
    | 2 -> Value.VLong (rd_i64 r)
    | 3 -> Value.VFloat (Int32.float_of_bits (Int32.of_int (rd_i32 r)))
    | 4 -> Value.VDouble (Int64.float_of_bits (rd_i64 r))
    | 5 ->
        let elem = elem_kind_of_tag (rd_i8 r) in
        let rank = rd_i8 r in
        let shape = Array.init rank (fun _ -> rd_i32 r) in
        let a = Value.make_arr ~is_value:true elem shape in
        let n = Value.elem_count shape in
        (match a.Value.buf with
        | Value.BInt dst ->
            for k = 0 to n - 1 do
              dst.(k) <-
                (match elem with
                | Ir.SByte ->
                    let v = rd_i8 r in
                    if v land 0x80 <> 0 then v - 0x100 else v
                | Ir.SChar ->
                    let lo = rd_i8 r in
                    let hi = rd_i8 r in
                    lo lor (hi lsl 8)
                | _ -> rd_i32_signed r)
            done
        | Value.BLong dst ->
            for k = 0 to n - 1 do
              dst.(k) <- rd_i64 r
            done
        | Value.BFloat dst ->
            for k = 0 to n - 1 do
              dst.(k) <-
                (match elem with
                | Ir.SFloat ->
                    Int32.float_of_bits (Int32.of_int (rd_i32 r))
                | _ -> Int64.float_of_bits (rd_i64 r))
            done);
        Value.VArr a
    | t -> fail "bad value tag %d" t
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Size and time model                                                 *)
(* ------------------------------------------------------------------ *)

(** Wire size in bytes of a value (without encoding it). *)
let wire_size (v : Value.t) : int =
  match v with
  | Value.VUnit -> 1
  | Value.VInt _ | Value.VFloat _ -> 5
  | Value.VLong _ | Value.VDouble _ -> 9
  | Value.VArr a ->
      3
      + (4 * Value.rank a)
      + (Value.elem_count a.Value.shape * Ir.scalar_size_bytes a.Value.elem)
  | Value.VObj _ | Value.VGraph _ -> 0

let _ = wire_size

type serializer =
  | Custom  (** wire format via custom bulk serializers (the paper's §4.3) *)
  | Generic  (** wire format via runtime type information (the slow first
                 implementation) *)
  | Direct
      (** device-layout marshaling — the paper's future work: "marshal
          directly to a format as required for device memory. This would
          approximately halve the marshaling overhead."  Skips the wire
          header and the C-side conversion: the Java side emits the dense
          row-major bytes the device consumes. *)

(** Java-side marshaling rate model: custom serializers move whole rows at
    memory-copy speed but pay array bounds checks and allocation; the
    generic marshaller boxes every element through runtime type
    information — an order of magnitude slower (the paper's "more than 90%
    of the time was spent marshaling" before custom serializers). *)
let java_marshal_seconds ?(serializer = Custom) ?(elem_bytes = 4)
    (bytes : int) : float =
  (* the cost is per *element*, not per byte: bounds check + store per
     element, so byte arrays marshal at a quarter the byte-rate of float
     arrays (the paper: "the cost of byte-array accesses in Lime are more
     expensive") *)
  let elems = float_of_int bytes /. float_of_int (max 1 elem_bytes) in
  let per_elem =
    match serializer with
    | Custom -> 1.8e-9 (* bulk row copy with bounds checks *)
    | Generic -> 24.0e-9 (* per-element boxing through runtime type info *)
    | Direct -> 1.8e-9 (* same copy, but straight into the device layout *)
  in
  1.5e-6 +. (elems *. per_elem)

(** Does this serializer still need the C-side wire→device conversion? *)
let needs_c_marshal = function Custom | Generic -> true | Direct -> false

(** The C-side (de)serializer is a specialized dense copy. *)
let c_marshal_seconds (bytes : int) : float =
  0.5e-6 +. (float_of_int bytes *. 0.12e-9)

(** Crossing the JNI boundary. *)
let jni_seconds : float = 4.0e-6


(* ------------------------------------------------------------------ *)
(* Direct-to-device layout (the §5.3 future-work serializer)           *)
(* ------------------------------------------------------------------ *)

(** Dense row-major device layout: raw element bytes, no header.  The
    receiving side must know the element kind and shape (the kernel
    signature and the bookkeeping struct carry them in the real system). *)
let encode_direct (v : Value.t) : bytes =
  match v with
  | Value.VArr a ->
      let buf = Buffer.create (Value.elem_count a.Value.shape * 4) in
      let contiguous = a.Value.strides = Value.strides_of a.Value.shape in
      let n = Value.elem_count a.Value.shape in
      if contiguous then
        for k = a.Value.offset to a.Value.offset + n - 1 do
          add_elem buf a.Value.elem a k
        done
      else begin
        let rec rows (a : Value.arr) =
          if Value.rank a <= 1 then
            for i = 0 to a.Value.shape.(0) - 1 do
              add_elem buf a.Value.elem a (Value.flat_index a [| i |])
            done
          else
            for i = 0 to a.Value.shape.(0) - 1 do
              rows (Value.view a i)
            done
        in
        rows a
      end;
      Buffer.to_bytes buf
  | v ->
      (* scalars keep the wire format: they ride in the args struct *)
      encode v

(** Rebuild a value from device-layout bytes given its type and shape. *)
let decode_direct ~(elem : Ir.scalar) ~(shape : int array) (b : bytes) :
    Value.t =
  let a = Value.make_arr ~is_value:true elem shape in
  let n = Value.elem_count shape in
  let expect = n * Ir.scalar_size_bytes elem in
  if Bytes.length b <> expect then
    fail "direct decode: %d bytes but shape needs %d" (Bytes.length b) expect;
  let r = { data = b; pos = 0 } in
  (match a.Value.buf with
  | Value.BInt dst ->
      for k = 0 to n - 1 do
        dst.(k) <-
          (match elem with
          | Ir.SByte ->
              let v = rd_i8 r in
              if v land 0x80 <> 0 then v - 0x100 else v
          | Ir.SChar ->
              let lo = rd_i8 r in
              let hi = rd_i8 r in
              lo lor (hi lsl 8)
          | _ -> rd_i32_signed r)
      done
  | Value.BLong dst ->
      for k = 0 to n - 1 do
        dst.(k) <- rd_i64 r
      done
  | Value.BFloat dst ->
      for k = 0 to n - 1 do
        dst.(k) <-
          (match elem with
          | Ir.SFloat -> Int32.float_of_bits (Int32.of_int (rd_i32 r))
          | _ -> Int64.float_of_bits (rd_i64 r))
      done);
  Value.VArr a

(** Device-layout size of a value. *)
let direct_size (v : Value.t) : int =
  match v with
  | Value.VArr a ->
      Value.elem_count a.Value.shape * Ir.scalar_size_bytes a.Value.elem
  | v -> wire_size v
