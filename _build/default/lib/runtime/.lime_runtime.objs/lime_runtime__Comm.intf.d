lib/runtime/comm.mli: Format Gpusim Marshal
