lib/runtime/engine.ml: Array Bytes Comm Gpusim Int64 Lime_gpu Lime_ir List Logs Marshal Option
