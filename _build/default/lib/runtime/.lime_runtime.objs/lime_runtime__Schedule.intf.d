lib/runtime/schedule.mli: Comm
