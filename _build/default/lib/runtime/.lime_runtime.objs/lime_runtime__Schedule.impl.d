lib/runtime/schedule.ml: Comm Float
