lib/runtime/marshal.ml: Array Buffer Bytes Char Int32 Int64 Lime_ir Printf
