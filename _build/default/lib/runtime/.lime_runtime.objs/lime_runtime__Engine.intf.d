lib/runtime/engine.mli: Comm Gpusim Lime_gpu Lime_ir Marshal
