lib/runtime/comm.ml: Fmt Gpusim Marshal
