lib/runtime/marshal.mli: Lime_ir
