(** Pipelined (double-buffered) firing schedule — the paper's future work.

    §5.3: "the communication costs can be hidden by well-known pipelining
    techniques that overlap communication and computation; these techniques
    lie beyond the scope of this paper."  This module implements them for
    the linear task pipelines the engine runs.

    With double buffering, firing [i]'s device kernel overlaps firing
    [i+1]'s host-side work (Java marshal + JNI + C marshal) and its PCIe
    upload, and firing [i-1]'s download/return path.  The steady-state
    period of the pipeline is the maximum of three stage times instead of
    their sum:

      serial   total = n * (host_up + up + kernel + down + host_down)
      pipelined total ≈ fill + n * max(host, up + down, kernel)

    where [fill] is one serial pass through the stages.  The host stage is
    not overlappable with itself (one JVM marshaling thread), PCIe is
    full-duplex on the paper's hardware only for small degrees, so we
    conservatively serialize up+down on the link.

    The schedule is computed from the same {!Comm.phases} the serial
    engine accounts, so the ablation benchmark can report serial vs
    pipelined end-to-end time per benchmark. *)

type stages = {
  st_host_s : float;  (** Java marshal + JNI + C marshal + setup, per firing *)
  st_link_s : float;  (** PCIe up + down, per firing *)
  st_kernel_s : float;  (** device execution, per firing *)
  st_source_sink_s : float;  (** host-resident task work, per firing *)
}

(** Decompose per-firing phase totals into pipeline stages. *)
let stages_of_phases ~(firings : int) (p : Comm.phases) : stages =
  let n = float_of_int (max 1 firings) in
  {
    st_host_s =
      (p.Comm.java_marshal_s +. p.Comm.jni_s +. p.Comm.c_marshal_s
      +. p.Comm.setup_s)
      /. n;
    st_link_s = p.Comm.pcie_s /. n;
    st_kernel_s = p.Comm.kernel_s /. n;
    st_source_sink_s = p.Comm.host_s /. n;
  }

(** Wall-clock of [n] firings executed serially (the baseline engine). *)
let serial_time ~(firings : int) (st : stages) : float =
  float_of_int firings
  *. (st.st_host_s +. st.st_link_s +. st.st_kernel_s +. st.st_source_sink_s)

(** Wall-clock of [n] firings with double-buffered overlap.

    The pipeline has three overlappable resources: the host thread
    (marshaling plus the source/sink work), the PCIe link, and the device.
    Steady state advances one firing per [max] of the three; filling and
    draining cost one pass through the remaining stages. *)
let pipelined_time ~(firings : int) (st : stages) : float =
  if firings <= 0 then 0.0
  else
    let host = st.st_host_s +. st.st_source_sink_s in
    let period = Float.max host (Float.max st.st_link_s st.st_kernel_s) in
    let fill = host +. st.st_link_s +. st.st_kernel_s in
    fill +. (float_of_int (firings - 1) *. period)

(** Speedup of pipelining for a given per-firing profile. *)
let overlap_speedup ~(firings : int) (st : stages) : float =
  serial_time ~firings st /. pipelined_time ~firings st

(** The pipeline is only worth its buffers when communication is a
    significant share; the runtime enables it when the projected gain
    exceeds [threshold] (default 10%). *)
let worthwhile ?(threshold = 1.1) ~(firings : int) (st : stages) : bool =
  overlap_speedup ~firings st >= threshold
