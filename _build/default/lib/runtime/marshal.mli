(** Value marshaling across the Java ↔ native boundary (paper §4.3, Fig 6):
    a universal byte-stream wire format with three serializers — the custom
    bulk one, the slow generic (runtime-type-information) one, and the
    §5.3 future-work direct-to-device-layout one — plus the marshaling time
    model used by the Fig 9 accounting. *)

exception Marshal_error of string

type serializer =
  | Custom  (** wire format via custom bulk serializers (§4.3) *)
  | Generic  (** wire format via runtime type information (the slow first
                 implementation: "more than 90% of the time...") *)
  | Direct
      (** §5.3 future work: dense device-layout bytes, skipping the wire
          header and the C-side conversion *)

val encode : Lime_ir.Value.t -> bytes
(** Custom serializer: bulk row-wise encoding. *)

val encode_generic : Lime_ir.Value.t -> bytes
(** Generic serializer; produces bytes identical to {!encode}
    (property-tested), an order of magnitude slower in the cost model. *)

val decode : bytes -> Lime_ir.Value.t

val encode_direct : Lime_ir.Value.t -> bytes
(** Dense row-major device layout, no header; scalars fall back to the
    wire format (they ride in the args struct). *)

val decode_direct :
  elem:Lime_ir.Ir.scalar -> shape:int array -> bytes -> Lime_ir.Value.t

val wire_size : Lime_ir.Value.t -> int
(** Wire size in bytes, without encoding ({!encode} produces exactly this
    many bytes). *)

val direct_size : Lime_ir.Value.t -> int

(** {2 Time model} *)

val java_marshal_seconds : ?serializer:serializer -> ?elem_bytes:int -> int -> float
(** Java-side marshaling time for a payload; priced per *element*
    ([elem_bytes] defaults to 4), so byte arrays cost more per byte —
    matching the paper's Crypt interop observation. *)

val needs_c_marshal : serializer -> bool
(** Does the serializer still require the C-side wire→device conversion? *)

val c_marshal_seconds : int -> float
val jni_seconds : float
