(** Type checker for the Lime subset.

    Beyond ordinary Java-style typing, this pass enforces the invariants that
    the paper's compiler exploits (§3, §4.1):

    - [value] types are deeply immutable: elements of value arrays cannot be
      assigned, value arrays must be initialized at construction (array
      literals, map results, [Lime.range], or a copying [Lime.toValue]
      conversion), and fields of [value] classes are final.
    - [local] methods may only call other [local] methods (including the
      [Math.*] builtins) and may not read non-final static fields nor write
      any static field.  Instance field access inside a [local] method is
      restricted to the method's own receiver (task-private state).
    - A task is *isolated* (a filter) iff its worker is [local] and its
      input/output port types are value types; the kernel identifier
      additionally requires a static worker for offload.
    - [f @ arr] is provably data-parallel iff [f] is static and [local] and
      its parameters are value types; this fact is recorded on the typed
      node so later passes never re-derive it.

    The checker produces a {!Tast.tprogram} in which every call is resolved
    and every expression carries its type. *)

open Lime_support
open Lime_frontend.Ast
open Tast

let err ~loc fmt = Diag.error ~phase:Diag.Typecheck ~loc fmt

(* ------------------------------------------------------------------ *)
(* Class table                                                         *)
(* ------------------------------------------------------------------ *)

type class_table = (string, class_decl) Hashtbl.t

let build_class_table (p : program) : class_table =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun c ->
      if Hashtbl.mem tbl c.c_name then
        err ~loc:c.c_loc "duplicate class '%s'" c.c_name;
      if c.c_name = "Math" || c.c_name = "Lime" then
        err ~loc:c.c_loc "'%s' is a reserved builtin class name" c.c_name;
      Hashtbl.add tbl c.c_name c)
    p;
  tbl

let lookup_class tbl name = Hashtbl.find_opt tbl name

let lookup_method tbl cls name =
  match lookup_class tbl cls with
  | None -> None
  | Some c -> List.find_opt (fun m -> m.m_name = name) c.c_methods

let lookup_field tbl cls name =
  match lookup_class tbl cls with
  | None -> None
  | Some c -> List.find_opt (fun f -> f.f_name = name) c.c_fields

(* ------------------------------------------------------------------ *)
(* Type predicates                                                     *)
(* ------------------------------------------------------------------ *)

let is_numeric = function
  | TPrim (PInt | PFloat | PDouble | PByte | PLong | PChar) -> true
  | _ -> false

let is_integer = function
  | TPrim (PInt | PByte | PLong | PChar) -> true
  | _ -> false

let is_boolean = function TPrim PBoolean -> true | _ -> false

(** Numeric promotion rank (Java-style widening). *)
let rank_of = function
  | TPrim PByte -> 1
  | TPrim PChar -> 2
  | TPrim PInt -> 3
  | TPrim PLong -> 4
  | TPrim PFloat -> 5
  | TPrim PDouble -> 6
  | _ -> 0

(** Result type of arithmetic on [a] and [b] (both numeric). *)
let promote a b =
  let r = max (rank_of a) (rank_of b) in
  if r <= 3 then TPrim PInt (* byte/char/int arithmetic yields int *)
  else if r = 4 then TPrim PLong
  else if r = 5 then TPrim PFloat
  else TPrim PDouble

(** Can a value of type [src] be used where [dst] is expected without an
    explicit cast?  Numeric widening, plus bounded→unbounded value-array
    dimensions (covariant: a [float[[4]]] is a [float[[]]]). *)
let rec assignable ~(dst : ty) ~(src : ty) =
  if ty_equal dst src then true
  else
    match (dst, src) with
    | TPrim _, TPrim _ ->
        is_numeric dst && is_numeric src && rank_of dst >= rank_of src
    | TArray (d, dd), TArray (s, sd) ->
        let dim_ok =
          match (dd, sd) with
          | a, b when a = b -> true
          | DimValUnbounded, DimValBounded _ -> true
          | _ -> false
        in
        dim_ok && assignable ~dst:d ~src:s
    | _ -> false

(** Deep value-type check: primitives, value arrays of value element types,
    and [value] classes. *)
let rec is_value_ty tbl = function
  | TPrim _ -> true
  | TVoid | TTask _ -> false
  | TArray (_, DimDyn) -> false
  | TArray (t, _) -> is_value_ty tbl t
  | TNamed n -> (
      match lookup_class tbl n with Some c -> c.c_value | None -> false)

(** Validate that a syntactic type refers only to known classes. *)
let rec validate_ty tbl ~loc = function
  | TPrim _ | TVoid -> ()
  | TTask _ -> err ~loc "task types cannot be written in source"
  | TArray (t, _) -> validate_ty tbl ~loc t
  | TNamed n ->
      if lookup_class tbl n = None then err ~loc "unknown class '%s'" n

(* ------------------------------------------------------------------ *)
(* Builtins                                                            *)
(* ------------------------------------------------------------------ *)

let float_or_double t =
  match t with TPrim PFloat | TPrim PDouble -> true | _ -> false

(** Resolve a [Math.*] / [Lime.*] builtin call; returns the builtin and the
    result type, or raises. *)
let resolve_builtin ~loc cls name (arg_tys : ty list) : builtin * ty =
  let unary_fp b =
    match arg_tys with
    | [ t ] when float_or_double t -> (b, t)
    | [ TPrim PInt ] -> (b, TPrim PDouble)
    | _ -> err ~loc "Math.%s expects one floating-point argument" name
  in
  let binary_fp b =
    match arg_tys with
    | [ a; b' ] when float_or_double a && float_or_double b' ->
        (b, promote a b')
    | _ -> err ~loc "Math.%s expects two floating-point arguments" name
  in
  let binary_num b =
    match arg_tys with
    | [ a; b' ] when is_numeric a && is_numeric b' -> (b, promote a b')
    | _ -> err ~loc "Math.%s expects two numeric arguments" name
  in
  match (cls, name) with
  | "Math", "sqrt" -> unary_fp BSqrt
  | "Math", "sin" -> unary_fp BSin
  | "Math", "cos" -> unary_fp BCos
  | "Math", "tan" -> unary_fp BTan
  | "Math", "exp" -> unary_fp BExp
  | "Math", "log" -> unary_fp BLog
  | "Math", "floor" -> unary_fp BFloor
  | "Math", "ceil" -> unary_fp BCeil
  | "Math", "rsqrt" -> unary_fp BRsqrt
  | "Math", "pow" -> binary_fp BPow
  | "Math", "atan2" -> binary_fp BAtan2
  | "Math", "min" -> binary_num BMin
  | "Math", "max" -> binary_num BMax
  | "Math", "abs" -> (
      match arg_tys with
      | [ t ] when is_numeric t -> (BAbs, t)
      | _ -> err ~loc "Math.abs expects one numeric argument")
  | "Lime", "range" -> (
      match arg_tys with
      | [ TPrim (PInt | PByte | PChar) ] ->
          (* the caller refines the dimension when the bound is a
             compile-time constant *)
          (BRange, TArray (TPrim PInt, DimValUnbounded))
      | _ -> err ~loc "Lime.range expects one int argument")
  | "Lime", "print" -> (
      match arg_tys with
      | [ _ ] -> (BPrint, TVoid)
      | _ -> err ~loc "Lime.print expects one argument")
  | _ -> err ~loc "unknown builtin %s.%s" cls name

(** [Lime.toValue] — copying conversion from a mutable array of primitives to
    the corresponding value array (models Lime's Java interop conversion). *)
let to_value_result ~loc = function
  | [ src ] ->
      let rec conv = function
        | TArray (t, DimDyn) -> TArray (conv t, DimValUnbounded)
        | TPrim p -> TPrim p
        | _ -> err ~loc "Lime.toValue expects a mutable array of primitives"
      in
      (match src with
      | TArray (_, DimDyn) -> conv src
      | _ -> err ~loc "Lime.toValue expects a mutable array of primitives")
  | _ -> err ~loc "Lime.toValue expects one argument"

(* ------------------------------------------------------------------ *)
(* Checking context                                                    *)
(* ------------------------------------------------------------------ *)

type ctx = {
  tbl : class_table;
  cls : string;  (** enclosing class *)
  in_static : bool;
  in_local : bool;
  in_ctor : bool;
  ret : ty;
  mutable vars : (string * ty) list list;  (** scope stack *)
}

let push_scope ctx = ctx.vars <- [] :: ctx.vars
let pop_scope ctx = ctx.vars <- List.tl ctx.vars

let declare ctx ~loc name ty =
  (match ctx.vars with
  | scope :: _ when List.mem_assoc name scope ->
      err ~loc "variable '%s' is already declared in this scope" name
  | _ -> ());
  match ctx.vars with
  | scope :: rest -> ctx.vars <- ((name, ty) :: scope) :: rest
  | [] -> ctx.vars <- [ [ (name, ty) ] ]

let lookup_var ctx name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
        match List.assoc_opt name scope with
        | Some t -> Some t
        | None -> go rest)
  in
  go ctx.vars

(* ------------------------------------------------------------------ *)
(* Expression checking                                                 *)
(* ------------------------------------------------------------------ *)

let require_assignable ~loc ~what ~dst ~src =
  if not (assignable ~dst ~src) then
    err ~loc "%s: expected %s but found %s" what (ty_to_string dst)
      (ty_to_string src)

(** Insert an implicit widening cast if [src]'s type differs from [dst].
    Arrays keep their precise type (e.g. a bounded [float[[512]]] assigned
    to a [float[[]]] variable stays bounded): later passes exploit the
    static bound. *)
let coerce ~dst (e : texpr) =
  if ty_equal dst e.ety then e
  else
    match (dst, e.ety) with
    | TPrim _, TPrim _ -> { te = TCast (dst, e); ety = dst; tloc = e.tloc }
    | _ -> e

let rec check_expr ctx (e : expr) : texpr =
  let loc = e.eloc in
  let mk te ety = { te; ety; tloc = loc } in
  match e.e with
  | ELit l ->
      let ty =
        match l with
        | LInt i ->
            if
              Int64.compare i (Int64.of_int32 Int32.max_int) > 0
              || Int64.compare i (Int64.of_int32 Int32.min_int) < 0
            then TPrim PLong
            else TPrim PInt
        | LFloat _ -> TPrim PFloat
        | LDouble _ -> TPrim PDouble
        | LBool _ -> TPrim PBoolean
        | LChar _ -> TPrim PChar
        | LString _ -> TNamed "String"
        | LNull -> TNamed "null"
      in
      mk (TLit l) ty
  | EVar name -> (
      match lookup_var ctx name with
      | Some ty -> mk (TLocal name) ty
      | None -> (
          (* implicit this.field or Class.field of the enclosing class *)
          match lookup_field ctx.tbl ctx.cls name with
          | Some f when is_static f.f_mods ->
              check_static_field_read ctx ~loc ctx.cls f;
              mk (TFieldStatic (ctx.cls, name)) f.f_ty
          | Some f ->
              if ctx.in_static then
                err ~loc "instance field '%s' referenced from a static method"
                  name;
              mk
                (TFieldInstance (mk TThis (TNamed ctx.cls), name))
                f.f_ty
          | None -> err ~loc "unknown variable '%s'" name))
  | EBinop (op, a, b) -> check_binop ctx ~loc op a b
  | EUnop (op, a) -> (
      let ta = check_expr ctx a in
      match op with
      | Neg ->
          if not (is_numeric ta.ety) then
            err ~loc "operand of unary '-' must be numeric";
          let ty = promote ta.ety ta.ety in
          mk (TUnop (Neg, coerce ~dst:ty ta)) ty
      | Not ->
          if not (is_boolean ta.ety) then
            err ~loc "operand of '!' must be boolean";
          mk (TUnop (Not, ta)) (TPrim PBoolean)
      | BitNot ->
          if not (is_integer ta.ety) then
            err ~loc "operand of '~' must be an integer type";
          let ty = promote ta.ety ta.ety in
          mk (TUnop (BitNot, coerce ~dst:ty ta)) ty)
  | ECond (c, a, b) ->
      let tc = check_expr ctx c in
      if not (is_boolean tc.ety) then
        err ~loc "condition of '?:' must be boolean";
      let ta = check_expr ctx a and tb = check_expr ctx b in
      let ty =
        if ty_equal ta.ety tb.ety then ta.ety
        else if is_numeric ta.ety && is_numeric tb.ety then
          promote ta.ety tb.ety
        else if assignable ~dst:ta.ety ~src:tb.ety then ta.ety
        else if assignable ~dst:tb.ety ~src:ta.ety then tb.ety
        else
          err ~loc "branches of '?:' have incompatible types %s and %s"
            (ty_to_string ta.ety) (ty_to_string tb.ety)
      in
      mk (TCond (tc, coerce ~dst:ty ta, coerce ~dst:ty tb)) ty
  | EIndex (a, i) -> (
      let ta = check_expr ctx a in
      let ti = check_expr ctx i in
      if not (is_integer ti.ety) then err ~loc "array index must be an integer";
      match ta.ety with
      | TArray (elem, _) ->
          mk (TIndex (ta, coerce ~dst:(TPrim PInt) ti)) elem
      | t -> err ~loc "cannot index a value of type %s" (ty_to_string t))
  | EField (a, "length") when field_receiver_is_array ctx a ->
      let ta = check_expr ctx a in
      mk (TArrayLen ta) (TPrim PInt)
  | EField (a, fname) -> check_field ctx ~loc a fname
  | ECall (recv, m, args) -> check_call ctx ~loc recv m args
  | ELocalCall _ -> err ~loc "internal: ELocalCall in source"
  | ENewArray (ty, sizes) ->
      validate_ty ctx.tbl ~loc ty;
      let rec has_value_dim = function
        | TArray (_, (DimValUnbounded | DimValBounded _)) -> true
        | TArray (t, _) -> has_value_dim t
        | _ -> false
      in
      if has_value_dim ty then
        err ~loc
          "value arrays must be initialized at construction; use an array \
           literal, a map over Lime.range, or Lime.toValue";
      let tsizes =
        List.map
          (fun s ->
            let ts = check_expr ctx s in
            if not (is_integer ts.ety) then
              err ~loc "array dimension size must be an integer";
            coerce ~dst:(TPrim PInt) ts)
          sizes
      in
      if tsizes = [] then
        err ~loc "array creation requires at least one dimension size";
      mk (TNewArray (ty, tsizes)) ty
  | ENewObject (cname, args) ->
      let targs = List.map (check_expr ctx) args in
      check_ctor ctx ~loc cname targs;
      mk (TNewObject (cname, targs)) (TNamed cname)
  | EArrayLit es ->
      if es = [] then err ~loc "empty array literals are not supported";
      let tes = List.map (check_expr ctx) es in
      let ty =
        List.fold_left
          (fun acc (t : texpr) ->
            if ty_equal acc t.ety then acc
            else if is_numeric acc && is_numeric t.ety then promote acc t.ety
            else if assignable ~dst:acc ~src:t.ety then acc
            else if assignable ~dst:t.ety ~src:acc then t.ety
            else
              err ~loc "array literal elements have incompatible types %s/%s"
                (ty_to_string acc) (ty_to_string t.ety))
          (List.hd tes).ety tes
      in
      let tes = List.map (coerce ~dst:ty) tes in
      mk (TArrayLit tes) (TArray (ty, DimValBounded (List.length tes)))
  | ECast (ty, a) ->
      let ta = check_expr ctx a in
      (match (ty, ta.ety) with
      | TPrim _, TPrim _ when is_numeric ty && is_numeric ta.ety -> ()
      | _ ->
          err ~loc "only numeric primitive casts are supported (%s from %s)"
            (ty_to_string ty) (ty_to_string ta.ety));
      mk (TCast (ty, ta)) ty
  | EMap (fn, arr) -> check_map ctx ~loc fn arr
  | EReduce (r, arr) -> check_reduce ctx ~loc r arr
  | ETask tr -> check_task ctx ~loc tr
  | EConnect (a, b) -> (
      let ta = check_expr ctx a and tb = check_expr ctx b in
      match (ta.ety, tb.ety) with
      | TTask (i, o1), TTask (i2, o) ->
          if ty_equal o1 i2 then mk (TConnect (ta, tb)) (TTask (i, o))
          else
            err ~loc
              "connected tasks have mismatched port types: upstream produces \
               %s but downstream consumes %s"
              (ty_to_string o1) (ty_to_string i2)
      | _ ->
          err ~loc "'=>' expects task operands, found %s and %s"
            (ty_to_string ta.ety) (ty_to_string tb.ety))

(** Small constant evaluator over typed expressions: integer literals,
    [static final] int fields with literal-ish initializers, and the basic
    arithmetic over them.  Used to refine [Lime.range] bounds. *)
and const_int_of ctx (e : texpr) : int option =
  match e.te with
  | TLit (LInt i) -> Some (Int64.to_int i)
  | TFieldStatic (cls, f) -> (
      match lookup_field ctx.tbl cls f with
      | Some fd when is_static fd.f_mods && is_final fd.f_mods -> (
          match fd.f_init with
          | Some init -> const_int_of_expr ctx init
          | None -> None)
      | _ -> None)
  | TBinop (op, a, b) -> (
      match (const_int_of ctx a, const_int_of ctx b) with
      | Some x, Some y -> (
          match op with
          | Add -> Some (x + y)
          | Sub -> Some (x - y)
          | Mul -> Some (x * y)
          | Div when y <> 0 -> Some (x / y)
          | _ -> None)
      | _ -> None)
  | TCast (TPrim PInt, a) -> const_int_of ctx a
  | _ -> None

and const_int_of_expr ctx (e : expr) : int option =
  match e.e with
  | ELit (LInt i) -> Some (Int64.to_int i)
  | EBinop (op, a, b) -> (
      match (const_int_of_expr ctx a, const_int_of_expr ctx b) with
      | Some x, Some y -> (
          match op with
          | Add -> Some (x + y)
          | Sub -> Some (x - y)
          | Mul -> Some (x * y)
          | Div when y <> 0 -> Some (x / y)
          | _ -> None)
      | _ -> None)
  | _ -> None

and field_receiver_is_array ctx (a : expr) =
  match Diag.protect (fun () -> (check_expr { ctx with vars = ctx.vars } a).ety) with
  | Ok (TArray _) -> true
  | _ -> false

and check_static_field_read ctx ~loc cls (f : field_decl) =
  if ctx.in_local && not (is_final f.f_mods) then
    err ~loc
      "local method cannot read non-final static field '%s.%s' (isolation)"
      cls f.f_name

and check_field ctx ~loc (a : expr) fname : texpr =
  let mk te ety = { te; ety; tloc = loc } in
  match a.e with
  | EVar name when lookup_var ctx name = None && lookup_class ctx.tbl name <> None
    -> (
      (* Class.field — static access *)
      match lookup_field ctx.tbl name fname with
      | Some f when is_static f.f_mods ->
          check_static_field_read ctx ~loc name f;
          mk (TFieldStatic (name, fname)) f.f_ty
      | Some _ -> err ~loc "field '%s.%s' is not static" name fname
      | None -> err ~loc "unknown field '%s.%s'" name fname)
  | _ -> (
      let ta = check_expr ctx a in
      match ta.ety with
      | TNamed cname -> (
          match lookup_field ctx.tbl cname fname with
          | Some f when not (is_static f.f_mods) ->
              if ctx.in_local && ta.te <> TThis then
                err ~loc
                  "local method may only access fields of its own receiver \
                   (isolation)";
              mk (TFieldInstance (ta, fname)) f.f_ty
          | Some _ ->
              err ~loc "static field '%s.%s' accessed via an instance" cname
                fname
          | None -> err ~loc "unknown field '%s.%s'" cname fname)
      | t -> err ~loc "cannot access field of type %s" (ty_to_string t))

and check_binop ctx ~loc op a b : texpr =
  let mk te ety = { te; ety; tloc = loc } in
  let ta = check_expr ctx a and tb = check_expr ctx b in
  match op with
  | Add | Sub | Mul | Div | Mod ->
      if not (is_numeric ta.ety && is_numeric tb.ety) then
        err ~loc "operands of '%s' must be numeric (found %s, %s)"
          (binop_name op) (ty_to_string ta.ety) (ty_to_string tb.ety);
      let ty = promote ta.ety tb.ety in
      mk (TBinop (op, coerce ~dst:ty ta, coerce ~dst:ty tb)) ty
  | Lt | Le | Gt | Ge ->
      if not (is_numeric ta.ety && is_numeric tb.ety) then
        err ~loc "operands of '%s' must be numeric" (binop_name op);
      let ty = promote ta.ety tb.ety in
      mk (TBinop (op, coerce ~dst:ty ta, coerce ~dst:ty tb)) (TPrim PBoolean)
  | Eq | Ne ->
      let ty =
        if is_numeric ta.ety && is_numeric tb.ety then promote ta.ety tb.ety
        else if ty_equal ta.ety tb.ety then ta.ety
        else
          err ~loc "cannot compare %s with %s" (ty_to_string ta.ety)
            (ty_to_string tb.ety)
      in
      mk (TBinop (op, coerce ~dst:ty ta, coerce ~dst:ty tb)) (TPrim PBoolean)
  | And | Or ->
      if not (is_boolean ta.ety && is_boolean tb.ety) then
        err ~loc "operands of '%s' must be boolean" (binop_name op);
      mk (TBinop (op, ta, tb)) (TPrim PBoolean)
  | BitAnd | BitOr | BitXor ->
      if not (is_integer ta.ety && is_integer tb.ety) then
        err ~loc "operands of '%s' must be integers" (binop_name op);
      let ty = promote ta.ety tb.ety in
      mk (TBinop (op, coerce ~dst:ty ta, coerce ~dst:ty tb)) ty
  | Shl | Shr | Ushr ->
      if not (is_integer ta.ety && is_integer tb.ety) then
        err ~loc "operands of '%s' must be integers" (binop_name op);
      let ty = promote ta.ety ta.ety in
      mk (TBinop (op, coerce ~dst:ty ta, coerce ~dst:(TPrim PInt) tb)) ty

and check_ctor ctx ~loc cname (targs : texpr list) =
  match lookup_class ctx.tbl cname with
  | None -> err ~loc "unknown class '%s'" cname
  | Some c -> (
      match List.find_opt (fun m -> m.m_name = "<init>") c.c_methods with
      | None ->
          if targs <> [] then
            err ~loc "class '%s' has no constructor taking %d argument(s)"
              cname (List.length targs)
      | Some ctor ->
          if List.length ctor.m_params <> List.length targs then
            err ~loc "constructor '%s' expects %d argument(s), got %d" cname
              (List.length ctor.m_params)
              (List.length targs);
          List.iter2
            (fun (p : param) (a : texpr) ->
              require_assignable ~loc ~what:"constructor argument"
                ~dst:p.p_ty ~src:a.ety)
            ctor.m_params targs)

and check_call ctx ~loc (recv : expr) mname (args : expr list) : texpr =
  let mk te ety = { te; ety; tloc = loc } in
  let targs () = List.map (check_expr ctx) args in
  let static_call cls =
    match lookup_method ctx.tbl cls mname with
    | None -> err ~loc "unknown method '%s.%s'" cls mname
    | Some m ->
        if not (is_static m.m_mods) then
          err ~loc "method '%s.%s' is not static" cls mname;
        if ctx.in_local && not (is_local m.m_mods) then
          err ~loc
            "local method cannot call non-local method '%s.%s' (isolation)"
            cls mname;
        let ta = targs () in
        check_args ~loc cls mname m.m_params ta;
        mk
          (TCallStatic (cls, mname, coerce_args m.m_params ta))
          m.m_ret
  in
  let instance_call (tr : texpr) cname =
    match lookup_method ctx.tbl cname mname with
    | None -> err ~loc "unknown method '%s.%s'" cname mname
    | Some m ->
        if is_static m.m_mods then
          err ~loc "static method '%s.%s' called via an instance" cname mname;
        if ctx.in_local && not (is_local m.m_mods) then
          err ~loc
            "local method cannot call non-local method '%s.%s' (isolation)"
            cname mname;
        if ctx.in_local && tr.te <> TThis then
          err ~loc
            "local method may only invoke methods on its own receiver \
             (isolation)";
        let ta = targs () in
        check_args ~loc cname mname m.m_params ta;
        mk (TCallInstance (tr, mname, coerce_args m.m_params ta)) m.m_ret
  in
  match recv.e with
  | EVar "<this-class>" -> (
      (* unqualified call *)
      match lookup_method ctx.tbl ctx.cls mname with
      | Some m when is_static m.m_mods -> static_call ctx.cls
      | Some _ ->
          if ctx.in_static then
            err ~loc "instance method '%s' called from a static context" mname;
          instance_call (mk TThis (TNamed ctx.cls)) ctx.cls
      | None -> err ~loc "unknown method '%s' in class '%s'" mname ctx.cls)
  | EVar ("Math" as cls) | EVar ("Lime" as cls) when lookup_var ctx cls = None
    -> (
      if cls = "Lime" && mname = "toValue" then begin
        let ta = targs () in
        let ret = to_value_result ~loc (List.map (fun (t : texpr) -> t.ety) ta) in
        (* toValue is host-only: it reads a mutable array *)
        if ctx.in_local then
          err ~loc "Lime.toValue cannot be used inside a local method";
        mk (TCallBuiltin (BToValue, ta)) ret
      end
      else begin
        let ta = targs () in
        let b, ret =
          resolve_builtin ~loc cls mname (List.map (fun (t : texpr) -> t.ety) ta)
        in
        if ctx.in_local && not (builtin_is_local b) then
          err ~loc "builtin %s.%s cannot be used inside a local method" cls
            mname;
        (* Lime.range with a compile-time-constant bound has a *bounded*
           value-array type, so maps over it build bounded rows — the only
           way to construct e.g. an int[[64]] procedurally. *)
        let ret =
          match (b, ta) with
          | BRange, [ n ] -> (
              match const_int_of ctx n with
              | Some k when k > 0 -> TArray (TPrim PInt, DimValBounded k)
              | _ -> ret)
          | _ -> ret
        in
        mk (TCallBuiltin (b, ta)) ret
      end)
  | EVar name when lookup_var ctx name = None && lookup_class ctx.tbl name <> None
    ->
      static_call name
  | _ -> (
      let tr = check_expr ctx recv in
      match tr.ety with
      | TNamed cname -> instance_call tr cname
      | TTask (i, o) when mname = "finish" -> (
          if not (ty_equal i TVoid && ty_equal o TVoid) then
            err ~loc
              "finish() requires a complete task graph (source through sink); \
               this graph has ports %s => %s"
              (ty_to_string i) (ty_to_string o);
          match args with
          | [] -> mk (TFinish (tr, None)) TVoid
          | [ n ] ->
              let tn = check_expr ctx n in
              if not (is_integer tn.ety) then
                err ~loc "finish(n) expects an integer iteration count";
              mk (TFinish (tr, Some (coerce ~dst:(TPrim PInt) tn))) TVoid
          | _ -> err ~loc "finish takes at most one argument")
      | t -> err ~loc "cannot call method on a value of type %s" (ty_to_string t)
      )

and check_args ~loc cls mname (params : param list) (targs : texpr list) =
  if List.length params <> List.length targs then
    err ~loc "method '%s.%s' expects %d argument(s), got %d" cls mname
      (List.length params) (List.length targs);
  List.iter2
    (fun (p : param) (a : texpr) ->
      require_assignable ~loc ~what:(Printf.sprintf "argument '%s'" p.p_name)
        ~dst:p.p_ty ~src:a.ety)
    params targs

and coerce_args params targs =
  List.map2 (fun (p : param) a -> coerce ~dst:p.p_ty a) params targs

and check_map ctx ~loc (fn : expr) (arr : expr) : texpr =
  let mk te ety = { te; ety; tloc = loc } in
  (* The mapped function: Class.m(captured...) or Class.m (method ref). *)
  let cls, mname, captured_exprs =
    match fn.e with
    | ECall ({ e = EVar "<this-class>"; _ }, m, args) -> (ctx.cls, m, args)
    | ECall ({ e = EVar c; _ }, m, args) when lookup_class ctx.tbl c <> None ->
        (c, m, args)
    | EField ({ e = EVar c; _ }, m) when lookup_class ctx.tbl c <> None ->
        (c, m, [])
    | _ ->
        err ~loc:fn.eloc
          "the left operand of '@' must be a static method reference or a \
           partial application Class.method(captured...)"
  in
  let m =
    match lookup_method ctx.tbl cls mname with
    | Some m -> m
    | None -> err ~loc "unknown map function '%s.%s'" cls mname
  in
  if not (is_static m.m_mods) then
    err ~loc "map function '%s.%s' must be static" cls mname;
  if ctx.in_local && not (is_local m.m_mods) then
    err ~loc "local method cannot map a non-local function (isolation)";
  if m.m_params = [] then
    err ~loc "map function '%s.%s' must take at least one parameter" cls mname;
  if ty_equal m.m_ret TVoid then
    err ~loc "map function '%s.%s' must return a value" cls mname;
  let n = List.length m.m_params in
  let k = List.length captured_exprs in
  if k <> n - 1 then
    err ~loc
      "map partial application of '%s.%s' binds %d of %d parameters; exactly \
       the final parameter must remain free"
      cls mname k n;
  let captured = List.map (check_expr ctx) captured_exprs in
  let leading = List.filteri (fun i _ -> i < n - 1) m.m_params in
  check_args ~loc cls mname leading captured;
  let captured = coerce_args leading captured in
  let elem_param = (List.nth m.m_params (n - 1)).p_ty in
  let tarr = check_expr ctx arr in
  let outer_dim, arr_elem =
    match tarr.ety with
    | TArray (elem, d) -> (d, elem)
    | t -> err ~loc "'@' expects an array operand, found %s" (ty_to_string t)
  in
  (match outer_dim with
  | DimDyn ->
      err ~loc
        "'@' requires a value array (immutable); found a mutable array — use \
         Lime.toValue first"
  | _ -> ());
  if not (assignable ~dst:elem_param ~src:arr_elem) then
    err ~loc "map function parameter has type %s but array elements are %s"
      (ty_to_string elem_param) (ty_to_string arr_elem);
  let parallel =
    is_local m.m_mods
    && List.for_all (fun (p : param) -> is_value_ty ctx.tbl p.p_ty) m.m_params
    && is_value_ty ctx.tbl m.m_ret
  in
  let info =
    {
      mi_class = cls;
      mi_method = mname;
      mi_elem_ty = elem_param;
      mi_ret_ty = m.m_ret;
      mi_parallel = parallel;
    }
  in
  mk (TMap (info, captured, tarr)) (TArray (m.m_ret, outer_dim))

and check_reduce ctx ~loc (r : reducer) (arr : expr) : texpr =
  let mk te ety = { te; ety; tloc = loc } in
  let tarr = check_expr ctx arr in
  let elem =
    match tarr.ety with
    | TArray (elem, (DimValBounded _ | DimValUnbounded)) -> elem
    | TArray (_, DimDyn) ->
        err ~loc "'!' (reduce) requires a value array (immutable)"
    | t -> err ~loc "'!' expects an array operand, found %s" (ty_to_string t)
  in
  let op =
    match r with
    | RBinop op ->
        (match op with
        | Add | Mul ->
            if not (is_numeric elem) then
              err ~loc "reduction '%s!' requires numeric elements"
                (binop_name op)
        | BitAnd | BitOr | BitXor ->
            if not (is_integer elem) then
              err ~loc "reduction '%s!' requires integer elements"
                (binop_name op)
        | _ -> err ~loc "operator '%s' cannot be used as a reduction"
                 (binop_name op));
        RO_Binop op
    | RMethod ("Math", "min") -> RO_Builtin BMin
    | RMethod ("Math", "max") -> RO_Builtin BMax
    | RMethod (cls, mname) -> (
        match lookup_method ctx.tbl cls mname with
        | None -> err ~loc "unknown reduction method '%s.%s'" cls mname
        | Some m ->
            if not (is_static m.m_mods && is_local m.m_mods) then
              err ~loc "reduction method '%s.%s' must be static and local" cls
                mname;
            (match m.m_params with
            | [ p1; p2 ]
              when ty_equal p1.p_ty p2.p_ty && ty_equal m.m_ret p1.p_ty ->
                if not (ty_equal p1.p_ty elem) then
                  err ~loc
                    "reduction method combines %s but array elements are %s"
                    (ty_to_string p1.p_ty) (ty_to_string elem)
            | _ ->
                err ~loc
                  "a reduction method must have signature (t, t) -> t");
            RO_Method (cls, mname))
  in
  mk (TReduce ({ ri_op = op; ri_elem_ty = elem }, tarr)) elem

and check_task ctx ~loc (tr : task_ref) : texpr =
  let mk te ety = { te; ety; tloc = loc } in
  let m =
    match lookup_method ctx.tbl tr.tr_class tr.tr_method with
    | Some m -> m
    | None -> err ~loc "unknown worker method '%s.%s'" tr.tr_class tr.tr_method
  in
  if m.m_name = "<init>" then err ~loc "a constructor cannot be a worker";
  let ctor_args =
    match tr.tr_ctor_args with
    | None ->
        if not (is_static m.m_mods) then
          err ~loc
            "worker '%s.%s' is an instance method; use task %s(...).%s to \
             create the worker instance"
            tr.tr_class tr.tr_method tr.tr_class tr.tr_method;
        None
    | Some args ->
        if is_static m.m_mods then
          err ~loc
            "worker '%s.%s' is static; instance creation arguments are not \
             allowed"
            tr.tr_class tr.tr_method;
        let targs = List.map (check_expr ctx) args in
        check_ctor ctx ~loc tr.tr_class targs;
        Some targs
  in
  let input =
    match m.m_params with
    | [] -> TVoid
    | [ p ] -> p.p_ty
    | _ ->
        err ~loc "worker '%s.%s' must take at most one input parameter"
          tr.tr_class tr.tr_method
  in
  let output = m.m_ret in
  let port_ok t = ty_equal t TVoid || is_value_ty ctx.tbl t in
  let isolated = is_local m.m_mods && port_ok input && port_ok output in
  mk
    (TTaskE
       {
         tt_class = tr.tr_class;
         tt_ctor_args = ctor_args;
         tt_method = tr.tr_method;
         tt_input = input;
         tt_output = output;
         tt_isolated = isolated;
       })
    (TTask (input, output))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec check_lvalue ctx (e : expr) : tlvalue =
  let loc = e.eloc in
  match e.e with
  | EVar name -> (
      match lookup_var ctx name with
      | Some ty -> LVar (name, ty)
      | None -> (
          match lookup_field ctx.tbl ctx.cls name with
          | Some f when is_static f.f_mods ->
              check_static_field_write ctx ~loc ctx.cls f;
              LFieldStatic (ctx.cls, name, f.f_ty)
          | Some f ->
              if ctx.in_static then
                err ~loc "instance field '%s' assigned from a static method"
                  name;
              check_instance_field_write ctx ~loc ctx.cls f;
              LFieldInstance
                ({ te = TThis; ety = TNamed ctx.cls; tloc = loc }, name, f.f_ty)
          | None -> err ~loc "unknown variable '%s'" name))
  | EIndex (a, i) -> (
      let ta = check_expr ctx a in
      let ti = check_expr ctx i in
      if not (is_integer ti.ety) then err ~loc "array index must be an integer";
      match ta.ety with
      | TArray (elem, DimDyn) ->
          LIndex (ta, coerce ~dst:(TPrim PInt) ti, elem)
      | TArray (_, (DimValBounded _ | DimValUnbounded)) ->
          err ~loc "value arrays are deeply immutable; elements cannot be \
                    assigned"
      | t -> err ~loc "cannot index a value of type %s" (ty_to_string t))
  | EField ({ e = EVar cname; _ }, fname)
    when lookup_var ctx cname = None && lookup_class ctx.tbl cname <> None -> (
      match lookup_field ctx.tbl cname fname with
      | Some f when is_static f.f_mods ->
          check_static_field_write ctx ~loc cname f;
          LFieldStatic (cname, fname, f.f_ty)
      | Some _ -> err ~loc "field '%s.%s' is not static" cname fname
      | None -> err ~loc "unknown field '%s.%s'" cname fname)
  | EField (a, fname) -> (
      let ta = check_expr ctx a in
      match ta.ety with
      | TNamed cname -> (
          match lookup_field ctx.tbl cname fname with
          | Some f when not (is_static f.f_mods) ->
              if ctx.in_local && ta.te <> TThis then
                err ~loc
                  "local method may only assign fields of its own receiver \
                   (isolation)";
              check_instance_field_write ctx ~loc cname f;
              LFieldInstance (ta, fname, f.f_ty)
          | Some _ ->
              err ~loc "static field '%s.%s' assigned via an instance" cname
                fname
          | None -> err ~loc "unknown field '%s.%s'" cname fname)
      | t -> err ~loc "cannot assign a field of type %s" (ty_to_string t))
  | _ -> err ~loc "invalid assignment target"

and check_static_field_write ctx ~loc cls (f : field_decl) =
  if ctx.in_local then
    err ~loc "local method cannot write static field '%s.%s' (isolation)" cls
      f.f_name;
  if is_final f.f_mods then
    err ~loc "cannot assign final field '%s.%s'" cls f.f_name

and check_instance_field_write ctx ~loc cls (f : field_decl) =
  let c = Option.get (lookup_class ctx.tbl cls) in
  if c.c_value then
    err ~loc "fields of value class '%s' are immutable" cls;
  if is_final f.f_mods && not ctx.in_ctor then
    err ~loc "final field '%s.%s' can only be assigned in a constructor" cls
      f.f_name

let lvalue_ty = function
  | LVar (_, t) | LIndex (_, _, t) | LFieldStatic (_, _, t)
  | LFieldInstance (_, _, t) ->
      t

let rec check_stmt ctx (st : stmt) : tstmt =
  let loc = st.sloc in
  let mks ts = { ts; tsloc = loc } in
  match st.s with
  | SVarDecl (ty, name, init) ->
      validate_ty ctx.tbl ~loc ty;
      if ty_equal ty TVoid then err ~loc "variables cannot have type void";
      let tinit =
        match init with
        | None -> None
        | Some e ->
            let te = check_expr ctx e in
            (* Allow 'var'-free inference for task graphs is not needed:
               task-typed variables are declared with a class placeholder.
               Instead, permit declarations whose declared type is a task
               placeholder class named "Task". *)
            require_assignable ~loc
              ~what:(Printf.sprintf "initializer of '%s'" name)
              ~dst:ty ~src:te.ety;
            Some (coerce ~dst:ty te)
      in
      declare ctx ~loc name ty;
      mks (TSVarDecl (ty, name, tinit))
  | SAssign (l, r) ->
      let tl = check_lvalue ctx l in
      let tr = check_expr ctx r in
      require_assignable ~loc ~what:"assignment" ~dst:(lvalue_ty tl)
        ~src:tr.ety;
      mks (TSAssign (tl, coerce ~dst:(lvalue_ty tl) tr))
  | SIf (c, a, b) ->
      let tc = check_expr ctx c in
      if not (is_boolean tc.ety) then err ~loc "if condition must be boolean";
      let ta = check_in_scope ctx a in
      let tb = Option.map (check_in_scope ctx) b in
      mks (TSIf (tc, ta, tb))
  | SWhile (c, b) ->
      let tc = check_expr ctx c in
      if not (is_boolean tc.ety) then
        err ~loc "while condition must be boolean";
      mks (TSWhile (tc, check_in_scope ctx b))
  | SFor (init, cond, step, body) ->
      push_scope ctx;
      let tinit = Option.map (check_stmt ctx) init in
      let tcond =
        Option.map
          (fun c ->
            let tc = check_expr ctx c in
            if not (is_boolean tc.ety) then
              err ~loc "for condition must be boolean";
            tc)
          cond
      in
      let tstep = Option.map (check_stmt ctx) step in
      let tbody = check_in_scope ctx body in
      pop_scope ctx;
      mks (TSFor (tinit, tcond, tstep, tbody))
  | SReturn None ->
      if not (ty_equal ctx.ret TVoid) then
        err ~loc "non-void method must return a value of type %s"
          (ty_to_string ctx.ret);
      mks (TSReturn None)
  | SReturn (Some e) ->
      if ty_equal ctx.ret TVoid then
        err ~loc "void method cannot return a value";
      let te = check_expr ctx e in
      require_assignable ~loc ~what:"return value" ~dst:ctx.ret ~src:te.ety;
      mks (TSReturn (Some (coerce ~dst:ctx.ret te)))
  | SExpr e -> mks (TSExpr (check_expr ctx e))
  | SBlock body ->
      push_scope ctx;
      let tbody = List.map (check_stmt ctx) body in
      pop_scope ctx;
      mks (TSBlock tbody)
  | SBreak -> mks TSBreak
  | SContinue -> mks TSContinue

and check_in_scope ctx st =
  push_scope ctx;
  let t = check_stmt ctx st in
  pop_scope ctx;
  t

(* ------------------------------------------------------------------ *)
(* Return-path analysis                                                *)
(* ------------------------------------------------------------------ *)

(** Conservative: does execution of [st] always return? *)
let rec always_returns (st : tstmt) =
  match st.ts with
  | TSReturn _ -> true
  | TSBlock body -> List.exists always_returns body
  | TSIf (_, a, Some b) -> always_returns a && always_returns b
  | TSWhile ({ te = TLit (LBool true); _ }, _) -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let check_method tbl (c : class_decl) (m : method_decl) : tmethod =
  let loc = m.m_loc in
  List.iter (fun (p : param) -> validate_ty tbl ~loc:p.p_loc p.p_ty) m.m_params;
  (match m.m_ret with TVoid -> () | t -> validate_ty tbl ~loc t);
  if is_local m.m_mods && not (is_static m.m_mods) && c.c_value then
    err ~loc "value classes cannot declare instance workers";
  let ctx =
    {
      tbl;
      cls = c.c_name;
      in_static = is_static m.m_mods;
      in_local = is_local m.m_mods;
      in_ctor = m.m_name = "<init>";
      ret = m.m_ret;
      vars = [ [] ];
    }
  in
  (* Parameters of local methods must be value types (paper §3.1): data
     exchanged with an isolated worker cannot mutate in flight. *)
  List.iter
    (fun (p : param) ->
      if ty_equal p.p_ty TVoid then
        err ~loc:p.p_loc "parameter '%s' cannot have type void" p.p_name;
      if List.mem_assoc p.p_name (List.hd ctx.vars) then
        err ~loc:p.p_loc "duplicate parameter '%s'" p.p_name;
      if ctx.in_local && not (is_value_ty tbl p.p_ty) then
        err ~loc:p.p_loc
          "parameter '%s' of local method '%s.%s' must be a value type"
          p.p_name c.c_name m.m_name;
      declare ctx ~loc:p.p_loc p.p_name p.p_ty)
    m.m_params;
  if ctx.in_local && not (ty_equal m.m_ret TVoid) && not (is_value_ty tbl m.m_ret)
  then
    err ~loc "local method '%s.%s' must return a value type" c.c_name m.m_name;
  let body = List.map (check_stmt ctx) m.m_body in
  if (not (ty_equal m.m_ret TVoid)) && not (List.exists always_returns body)
  then
    err ~loc "method '%s.%s' may complete without returning a value" c.c_name
      m.m_name;
  {
    tm_class = c.c_name;
    tm_name = m.m_name;
    tm_mods = m.m_mods;
    tm_params = List.map (fun (p : param) -> (p.p_name, p.p_ty)) m.m_params;
    tm_ret = m.m_ret;
    tm_body = body;
    tm_loc = loc;
  }

let check_field_decl tbl (c : class_decl) (f : field_decl) : tfield =
  let loc = f.f_loc in
  validate_ty tbl ~loc f.f_ty;
  if ty_equal f.f_ty TVoid then err ~loc "fields cannot have type void";
  if c.c_value && not (is_final f.f_mods) then
    err ~loc "field '%s' of value class '%s' must be final" f.f_name c.c_name;
  if c.c_value && not (is_value_ty tbl f.f_ty) then
    err ~loc "field '%s' of value class '%s' must have a value type" f.f_name
      c.c_name;
  let ctx =
    {
      tbl;
      cls = c.c_name;
      in_static = is_static f.f_mods;
      in_local = false;
      in_ctor = false;
      ret = TVoid;
      vars = [ [] ];
    }
  in
  let tinit =
    match f.f_init with
    | None ->
        if is_final f.f_mods && is_static f.f_mods then
          err ~loc "static final field '%s.%s' requires an initializer"
            c.c_name f.f_name;
        None
    | Some e ->
        let te = check_expr ctx e in
        require_assignable ~loc
          ~what:(Printf.sprintf "initializer of field '%s'" f.f_name)
          ~dst:f.f_ty ~src:te.ety;
        Some (coerce ~dst:f.f_ty te)
  in
  {
    tf_class = c.c_name;
    tf_name = f.f_name;
    tf_mods = f.f_mods;
    tf_ty = f.f_ty;
    tf_init = tinit;
    tf_loc = loc;
  }

let check_class tbl (c : class_decl) : tclass =
  (* duplicate member detection *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (f : field_decl) ->
      if Hashtbl.mem seen f.f_name then
        err ~loc:f.f_loc "duplicate field '%s.%s'" c.c_name f.f_name;
      Hashtbl.add seen f.f_name ())
    c.c_fields;
  let seen_m = Hashtbl.create 8 in
  List.iter
    (fun (m : method_decl) ->
      if Hashtbl.mem seen_m m.m_name then
        err ~loc:m.m_loc "duplicate method '%s.%s' (no overloading)" c.c_name
          m.m_name;
      Hashtbl.add seen_m m.m_name ())
    c.c_methods;
  (match List.find_opt (fun m -> m.m_name = "<init>") c.c_methods with
  | Some ctor when is_static ctor.m_mods ->
      err ~loc:ctor.m_loc "constructors cannot be static"
  | _ -> ());
  {
    tc_name = c.c_name;
    tc_value = c.c_value;
    tc_fields = List.map (check_field_decl tbl c) c.c_fields;
    tc_methods = List.map (check_method tbl c) c.c_methods;
  }

(** Type check a whole program. *)
let check_program (p : program) : tprogram =
  let tbl = build_class_table p in
  { tp_classes = List.map (check_class tbl) p }

(** Convenience: parse and check a source string. *)
let check_string ?name src =
  check_program (Lime_frontend.Parser.program_of_string ?name src)
