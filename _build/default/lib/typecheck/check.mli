(** Type checker for the Lime subset.

    Enforces the invariants the paper's compiler exploits (§3, §4.1): deep
    immutability of [value] types, [local]-method isolation, task/connect
    port typing, and the map/reduce rules — recording on each typed node
    whether a map is provably data-parallel and whether a task is an
    isolated filter.  See the implementation header for the full rule
    list; every rule has accept/reject tests. *)

val check_program : Lime_frontend.Ast.program -> Tast.tprogram
(** Raises {!Lime_support.Diag.Error_exn} on the first type error. *)

val check_string : ?name:string -> string -> Tast.tprogram
(** Parse and check a source string. *)
