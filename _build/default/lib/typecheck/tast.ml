(** Typed abstract syntax, produced by the {!Check} pass.

    Every expression carries its resolved type; calls are resolved to static,
    instance or builtin targets; map and reduce carry the information the
    kernel identifier (lib/core) needs: whether the mapped function is a
    static [local] method over value arguments, making the map provably
    data-parallel without alias analysis (paper §4.1). *)

open Lime_support
open Lime_frontend.Ast

(** Built-in methods.  [Math.*] and [Lime.range] are [local] (callable from
    kernels); [Lime.print]/[Lime.printString] are host-only. *)
type builtin =
  | BSqrt | BSin | BCos | BTan | BExp | BLog | BPow | BAtan2
  | BAbs | BMin | BMax | BFloor | BCeil | BRsqrt
  | BRange  (** [Lime.range n : int[[]]] = [{0, 1, ..., n-1}] *)
  | BToValue
      (** [Lime.toValue arr]: copying conversion from a mutable array of
          primitives to the corresponding value array (Java interop) *)
  | BPrint  (** host-only debug printing *)

let builtin_is_local = function BPrint | BToValue -> false | _ -> true

let builtin_name = function
  | BSqrt -> "sqrt" | BSin -> "sin" | BCos -> "cos" | BTan -> "tan"
  | BExp -> "exp" | BLog -> "log" | BPow -> "pow" | BAtan2 -> "atan2"
  | BAbs -> "abs" | BMin -> "min" | BMax -> "max"
  | BFloor -> "floor" | BCeil -> "ceil" | BRsqrt -> "rsqrt"
  | BRange -> "range" | BToValue -> "toValue" | BPrint -> "print"

(** Resolved task reference. *)
type ttask_ref = {
  tt_class : string;
  tt_ctor_args : texpr list option;  (** [Some] = stateful instance worker *)
  tt_method : string;
  tt_input : ty;  (** [TVoid] for sources *)
  tt_output : ty;  (** [TVoid] for sinks *)
  tt_isolated : bool;
      (** true iff the worker is [local] with value-typed ports — a
          *filter*, eligible for offload (paper §4.1) *)
}

and texpr = { te : tekind; ety : ty; tloc : Loc.t }

and tekind =
  | TLit of lit
  | TLocal of string  (** local variable or parameter *)
  | TThis
  | TBinop of binop * texpr * texpr
  | TUnop of unop * texpr
  | TCond of texpr * texpr * texpr
  | TIndex of texpr * texpr
  | TArrayLen of texpr  (** [arr.length] *)
  | TFieldStatic of string * string
  | TFieldInstance of texpr * string
  | TCallStatic of string * string * texpr list
  | TCallInstance of texpr * string * texpr list
  | TCallBuiltin of builtin * texpr list
  | TNewArray of ty * texpr list  (** sizes of the leading dimensions *)
  | TNewObject of string * texpr list
  | TArrayLit of texpr list
  | TCast of ty * texpr
  | TMap of map_info * texpr list * texpr
      (** [TMap (info, captured, arr)]: apply [info] to each element of
          [arr] with [captured] bound to the leading parameters *)
  | TReduce of red_info * texpr
  | TTaskE of ttask_ref
  | TConnect of texpr * texpr
  | TFinish of texpr * texpr option  (** [graph.finish()] / [finish(n)] *)

and map_info = {
  mi_class : string;
  mi_method : string;
  mi_elem_ty : ty;  (** type of the element parameter (the last one) *)
  mi_ret_ty : ty;
  mi_parallel : bool;
      (** the invariants of §4.1 hold: static, local, value-typed args *)
}

and red_info = { ri_op : red_op; ri_elem_ty : ty }

and red_op =
  | RO_Binop of binop
  | RO_Method of string * string  (** class, method — e.g. Math.max *)
  | RO_Builtin of builtin  (** Math.min / Math.max as combinators *)

type tstmt = { ts : tskind; tsloc : Loc.t }

and tskind =
  | TSVarDecl of ty * string * texpr option
  | TSAssign of tlvalue * texpr
  | TSIf of texpr * tstmt * tstmt option
  | TSWhile of texpr * tstmt
  | TSFor of tstmt option * texpr option * tstmt option * tstmt
  | TSReturn of texpr option
  | TSExpr of texpr
  | TSBlock of tstmt list
  | TSBreak
  | TSContinue

and tlvalue =
  | LVar of string * ty
  | LIndex of texpr * texpr * ty  (** array, index, element type *)
  | LFieldStatic of string * string * ty
  | LFieldInstance of texpr * string * ty

type tmethod = {
  tm_class : string;
  tm_name : string;
  tm_mods : modifier list;
  tm_params : (string * ty) list;
  tm_ret : ty;
  tm_body : tstmt list;
  tm_loc : Loc.t;
}

type tfield = {
  tf_class : string;
  tf_name : string;
  tf_mods : modifier list;
  tf_ty : ty;
  tf_init : texpr option;
  tf_loc : Loc.t;
}

type tclass = {
  tc_name : string;
  tc_value : bool;
  tc_fields : tfield list;
  tc_methods : tmethod list;
}

type tprogram = {
  tp_classes : tclass list;
}

(* ------------------------------------------------------------------ *)
(* Lookup helpers                                                      *)
(* ------------------------------------------------------------------ *)

let find_class p name = List.find_opt (fun c -> c.tc_name = name) p.tp_classes

let find_method p cls name =
  match find_class p cls with
  | None -> None
  | Some c -> List.find_opt (fun m -> m.tm_name = name) c.tc_methods

let find_field p cls name =
  match find_class p cls with
  | None -> None
  | Some c -> List.find_opt (fun f -> f.tf_name = name) c.tc_fields

let method_is_local (m : tmethod) = is_local m.tm_mods
let method_is_static (m : tmethod) = is_static m.tm_mods

(* ------------------------------------------------------------------ *)
(* Traversal helpers used by later passes                              *)
(* ------------------------------------------------------------------ *)

(** Fold over all sub-expressions of [e], including [e] itself. *)
let rec fold_expr f acc e =
  let acc = f acc e in
  match e.te with
  | TLit _ | TLocal _ | TThis | TFieldStatic _ -> acc
  | TBinop (_, a, b) | TConnect (a, b) -> fold_expr f (fold_expr f acc a) b
  | TUnop (_, a) | TCast (_, a) | TArrayLen a | TFieldInstance (a, _) ->
      fold_expr f acc a
  | TCond (a, b, c) -> fold_expr f (fold_expr f (fold_expr f acc a) b) c
  | TIndex (a, i) -> fold_expr f (fold_expr f acc a) i
  | TCallStatic (_, _, args) | TCallBuiltin (_, args) | TNewObject (_, args)
  | TNewArray (_, args) | TArrayLit args ->
      List.fold_left (fold_expr f) acc args
  | TCallInstance (r, _, args) ->
      List.fold_left (fold_expr f) (fold_expr f acc r) args
  | TMap (_, captured, arr) ->
      fold_expr f (List.fold_left (fold_expr f) acc captured) arr
  | TReduce (_, arr) -> fold_expr f acc arr
  | TTaskE tr -> (
      match tr.tt_ctor_args with
      | None -> acc
      | Some args -> List.fold_left (fold_expr f) acc args)
  | TFinish (g, n) -> (
      let acc = fold_expr f acc g in
      match n with None -> acc | Some n -> fold_expr f acc n)

(** Fold over all statements and expressions of a statement tree. *)
let rec fold_stmt ~stmt ~expr acc st =
  let acc = stmt acc st in
  let fe = fold_expr expr in
  match st.ts with
  | TSVarDecl (_, _, None) | TSBreak | TSContinue | TSReturn None -> acc
  | TSVarDecl (_, _, Some e) | TSReturn (Some e) | TSExpr e -> fe acc e
  | TSAssign (lv, e) ->
      let acc =
        match lv with
        | LVar _ -> acc
        | LIndex (a, i, _) -> fe (fe acc a) i
        | LFieldStatic _ -> acc
        | LFieldInstance (r, _, _) -> fe acc r
      in
      fe acc e
  | TSIf (c, a, b) -> (
      let acc = fold_stmt ~stmt ~expr (fe acc c) a in
      match b with None -> acc | Some b -> fold_stmt ~stmt ~expr acc b)
  | TSWhile (c, b) -> fold_stmt ~stmt ~expr (fe acc c) b
  | TSFor (i, c, s, b) ->
      let acc = match i with None -> acc | Some i -> fold_stmt ~stmt ~expr acc i in
      let acc = match c with None -> acc | Some c -> fe acc c in
      let acc = match s with None -> acc | Some s -> fold_stmt ~stmt ~expr acc s in
      fold_stmt ~stmt ~expr acc b
  | TSBlock body -> List.fold_left (fold_stmt ~stmt ~expr) acc body
