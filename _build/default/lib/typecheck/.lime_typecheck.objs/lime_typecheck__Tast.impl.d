lib/typecheck/tast.ml: Lime_frontend Lime_support List Loc
