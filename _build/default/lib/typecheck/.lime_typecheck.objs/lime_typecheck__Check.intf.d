lib/typecheck/check.mli: Lime_frontend Tast
