lib/typecheck/check.ml: Diag Hashtbl Int32 Int64 Lime_frontend Lime_support List Option Printf Tast
