(** Bounded LRU cache of compiled artifacts, with accounting.

    The service keeps {!Lime_gpu.Pipeline.compiled} values in one of these,
    keyed by {!Digest.t}; the container itself is polymorphic so it can be
    unit-tested without running the compiler.  Every lookup is counted
    (hit/miss/eviction/coalesced) so cache effectiveness is observable
    rather than inferred from timing.

    {!find_or_add_many} is the request-coalescing entry point: a batch of N
    in-flight requests for the same key performs the expensive computation
    once — the duplicates are counted as [coalesced], not as hits. *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable coalesced : int;  (** duplicate in-flight requests served by one computation *)
}

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** An empty cache holding at most [capacity] entries (default 64;
    [capacity] is clamped to at least 1). *)

val capacity : 'a t -> int
val length : 'a t -> int
val stats : 'a t -> stats
val mem : 'a t -> string -> bool
(** Membership test; does not touch recency or counters. *)

val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a
(** [find_or_add t key f] returns the cached value for [key] (a hit,
    refreshing its recency) or computes it with [f], inserts it, and evicts
    the least-recently-used entry if the cache is over capacity (a miss).
    If [f] raises, nothing is inserted and the miss is still counted. *)

val find_or_add_many : 'a t -> (string * (unit -> 'a)) list -> 'a list
(** Serve a batch of in-flight requests, coalescing duplicates: the first
    occurrence of each key goes through {!find_or_add}; subsequent
    occurrences in the same batch reuse its result and count as
    [coalesced].  Results are returned in request order. *)

val keys_by_recency : 'a t -> string list
(** Cached keys, most recently used first (for tests and introspection). *)

val clear : 'a t -> unit
(** Drop all entries; counters are preserved. *)
