lib/service/kcache.ml: Hashtbl List
