lib/service/metrics.mli:
