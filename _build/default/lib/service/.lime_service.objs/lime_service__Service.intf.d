lib/service/service.mli: Digest Gpusim Kcache Lime_gpu Metrics Tunestore
