lib/service/digest.mli: Lime_gpu
