lib/service/tunestore.ml: Digest Filename Gpusim In_channel Lime_gpu List Out_channel Printf String Sys
