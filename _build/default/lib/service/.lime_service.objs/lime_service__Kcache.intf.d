lib/service/kcache.mli:
