lib/service/tunestore.mli: Digest Gpusim Lime_gpu
