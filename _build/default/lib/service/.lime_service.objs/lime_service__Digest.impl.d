lib/service/digest.ml: Buffer Lime_gpu List Stdlib String
