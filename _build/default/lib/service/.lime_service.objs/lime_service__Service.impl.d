lib/service/service.ml: Digest Filename Gpusim In_channel Kcache Lime_gpu Lime_runtime List Metrics Option Out_channel Stdlib String Sys Tunestore
