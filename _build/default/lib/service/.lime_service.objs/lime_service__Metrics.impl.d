lib/service/metrics.ml: Array Buffer Hashtbl List Printf String
