(** Kernel identification and extraction (paper §4.1).

    The compiler treats each *filter* — an isolated task whose worker is a
    static [local] method with value-typed ports — as the unit of offload.
    No alias or dependence analysis is needed: the type system already
    guarantees the worker is pure.

    Extraction turns a worker function into a self-contained kernel:

    - every static call to a [local] function is inlined (OpenCL-style whole
      -kernel inlining; recursion is rejected);
    - reads of [static final] fields are constant-folded;
    - the data-parallel structure is the {!Ir.SParFor} produced by lowering
      a map, and reductions are {!Ir.SReduce} nodes.

    The result contains no calls, no statics, no objects — only parameters,
    locals, loops and arithmetic — which is what both the OpenCL code
    generator and the GPU simulator consume. *)

open Lime_support
module Ir = Lime_ir.Ir
module Value = Lime_ir.Value

let err fmt = Diag.error ~phase:Diag.Kernel ~loc:Loc.dummy fmt

type kernel = {
  k_name : string;  (** qualified worker name, e.g. ["NBody.computeForces"] *)
  k_params : (string * Ir.ty) list;
  k_ret : Ir.ty;
  k_body : Ir.stmt list;
  k_parallel : bool;  (** contains a data-parallel map or reduce *)
  k_uses_double : bool;
}

(** Why a task cannot be offloaded (used for diagnostics and tests). *)
type offload_verdict =
  | Offloadable
  | Not_isolated  (** worker is not [local] with value ports *)
  | Stateful  (** instance worker: task-private mutable state stays on host *)
  | No_parallelism  (** no map/reduce inside: offload would not pay *)

let verdict_name = function
  | Offloadable -> "offloadable"
  | Not_isolated -> "not-isolated"
  | Stateful -> "stateful"
  | No_parallelism -> "no-parallelism"

(* ------------------------------------------------------------------ *)
(* Constant folding of static finals                                   *)
(* ------------------------------------------------------------------ *)

(** Evaluate the initializer expressions of static final fields to constants.
    Initializers are restricted to simple expressions by the lowering pass;
    anything non-constant simply stays unfolded (and later blocks offload if
    the kernel reads it). *)
let static_consts (md : Ir.modul) : (string * string, Ir.const) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  let rec eval (e : Ir.expr) : Ir.const option =
    match e with
    | Ir.Const c -> Some c
    | Ir.StaticGet (c, f) -> Hashtbl.find_opt tbl (c, f)
    | Ir.Cast (dst, _, a) -> (
        match eval a with
        | Some (Ir.CInt i) -> (
            match dst with
            | Ir.SFloat -> Some (Ir.CFloat (float_of_int i))
            | Ir.SDouble -> Some (Ir.CDouble (float_of_int i))
            | Ir.SLong -> Some (Ir.CLong (Int64.of_int i))
            | _ -> Some (Ir.CInt i))
        | Some (Ir.CFloat f) -> (
            match dst with
            | Ir.SInt -> Some (Ir.CInt (int_of_float f))
            | Ir.SDouble -> Some (Ir.CDouble f)
            | _ -> Some (Ir.CFloat f))
        | Some (Ir.CDouble f) -> (
            match dst with
            | Ir.SInt -> Some (Ir.CInt (int_of_float f))
            | Ir.SFloat -> Some (Ir.CFloat (Value.f32 f))
            | _ -> Some (Ir.CDouble f))
        | c -> c)
    | Ir.Bin (op, s, a, b) -> (
        match (eval a, eval b) with
        | Some ca, Some cb -> fold_bin op s ca cb
        | _ -> None)
    | Ir.Un (Lime_frontend.Ast.Neg, _, a) -> (
        match eval a with
        | Some (Ir.CInt i) -> Some (Ir.CInt (-i))
        | Some (Ir.CFloat f) -> Some (Ir.CFloat (-.f))
        | Some (Ir.CDouble f) -> Some (Ir.CDouble (-.f))
        | Some (Ir.CLong l) -> Some (Ir.CLong (Int64.neg l))
        | _ -> None)
    | _ -> None
  and fold_bin op _s ca cb =
    let open Lime_frontend.Ast in
    match (ca, cb, op) with
    | Ir.CInt a, Ir.CInt b, Add -> Some (Ir.CInt (Value.i32 (a + b)))
    | Ir.CInt a, Ir.CInt b, Sub -> Some (Ir.CInt (Value.i32 (a - b)))
    | Ir.CInt a, Ir.CInt b, Mul -> Some (Ir.CInt (Value.i32 (a * b)))
    | Ir.CInt a, Ir.CInt b, Div when b <> 0 -> Some (Ir.CInt (a / b))
    | Ir.CFloat a, Ir.CFloat b, Add -> Some (Ir.CFloat (Value.f32 (a +. b)))
    | Ir.CFloat a, Ir.CFloat b, Sub -> Some (Ir.CFloat (Value.f32 (a -. b)))
    | Ir.CFloat a, Ir.CFloat b, Mul -> Some (Ir.CFloat (Value.f32 (a *. b)))
    | Ir.CFloat a, Ir.CFloat b, Div -> Some (Ir.CFloat (Value.f32 (a /. b)))
    | Ir.CDouble a, Ir.CDouble b, Add -> Some (Ir.CDouble (a +. b))
    | Ir.CDouble a, Ir.CDouble b, Sub -> Some (Ir.CDouble (a -. b))
    | Ir.CDouble a, Ir.CDouble b, Mul -> Some (Ir.CDouble (a *. b))
    | Ir.CDouble a, Ir.CDouble b, Div -> Some (Ir.CDouble (a /. b))
    | _ -> None
  in
  List.iter
    (fun (c, f, e) ->
      match eval e with
      | Some k -> Hashtbl.replace tbl (c, f) k
      | None -> ())
    md.Ir.md_static_inits;
  tbl

(* ------------------------------------------------------------------ *)
(* Expression rewriting: fold statics, inline calls                    *)
(* ------------------------------------------------------------------ *)

type extract_ctx = {
  md : Ir.modul;
  consts : (string * string, Ir.const) Hashtbl.t;
  mutable counter : int;
  mutable depth : int;
  mutable stack : string list;  (** inline stack, for recursion detection *)
}

let fresh ctx prefix =
  ctx.counter <- ctx.counter + 1;
  Printf.sprintf "%%k%s%d" prefix ctx.counter

(** Rewrite an expression, hoisting inlined calls as statements onto [acc]
    (reversed). *)
let rec rw_expr ctx (acc : Ir.stmt list ref) (e : Ir.expr) : Ir.expr =
  let r = rw_expr ctx acc in
  match e with
  | Ir.Const _ | Ir.Var _ -> e
  | Ir.This -> err "kernel extraction: 'this' cannot appear in a filter"
  | Ir.Bin (op, s, a, b) -> Ir.Bin (op, s, r a, r b)
  | Ir.Un (op, s, a) -> Ir.Un (op, s, r a)
  | Ir.Cast (d, s, a) -> Ir.Cast (d, s, r a)
  | Ir.Load (b, idx) -> Ir.Load (r b, List.map r idx)
  | Ir.Len (a, d) -> Ir.Len (r a, d)
  | Ir.Intrinsic (b, s, args) ->
      (match b with
      | Lime_typecheck.Tast.BPrint ->
          err "kernel extraction: Lime.print cannot appear in a filter"
      | _ -> ());
      Ir.Intrinsic (b, s, List.map r args)
  | Ir.CallF (name, args) -> inline_call ctx acc name (List.map r args)
  | Ir.CallM (name, _, _) ->
      err "kernel extraction: instance call '%s' in a filter" name
  | Ir.FieldGet _ ->
      err "kernel extraction: instance field access in a filter"
  | Ir.StaticGet (c, f) -> (
      match Hashtbl.find_opt ctx.consts (c, f) with
      | Some k -> Ir.Const k
      | None ->
          err
            "kernel extraction: static field %s.%s is not a compile-time \
             constant"
            c f)
  | Ir.NewArr (a, sizes) -> Ir.NewArr (a, List.map r sizes)
  | Ir.ArrLit (a, es) -> Ir.ArrLit (a, List.map r es)
  | Ir.NewObj (c, _) ->
      err "kernel extraction: object allocation of '%s' in a filter" c
  | Ir.RangeE n -> Ir.RangeE (r n)
  | Ir.ToValueE _ ->
      err "kernel extraction: Lime.toValue cannot appear in a filter"
  | Ir.TaskE _ | Ir.ConnectE _ ->
      err "kernel extraction: nested task graphs are not supported in filters"

and inline_call ctx acc name (args : Ir.expr list) : Ir.expr =
  if List.mem name ctx.stack then
    err "kernel extraction: recursive call to '%s' in a filter" name;
  if ctx.depth > 32 then err "kernel extraction: call inlining too deep";
  let f =
    match Ir.find_func ctx.md name with
    | Some f -> f
    | None -> err "kernel extraction: unknown function '%s'" name
  in
  if not f.Ir.fn_local then
    err "kernel extraction: call to non-local function '%s'" name;
  (* bind arguments to fresh temporaries *)
  let renames =
    List.map2
      (fun (p, t) a ->
        let v = fresh ctx "arg" in
        acc := Ir.SDecl (v, t, Some a) :: !acc;
        (p, v))
      f.Ir.fn_params args
  in
  let res = fresh ctx "ret" in
  acc := Ir.SDecl (res, f.Ir.fn_ret, None) :: !acc;
  ctx.depth <- ctx.depth + 1;
  ctx.stack <- name :: ctx.stack;
  let body = rw_stmts ctx (rename_stmts (subst_of renames) f.Ir.fn_body) in
  ctx.stack <- List.tl ctx.stack;
  ctx.depth <- ctx.depth - 1;
  acc := Ir.SInlineBlock (res, body) :: !acc;
  Ir.Var res

and subst_of (renames : (string * string) list) (v : string) : string =
  match List.assoc_opt v renames with Some v' -> v' | None -> v

(** Alpha-rename variables bound by declarations inside an inlined body so
    repeated inlining of the same function cannot collide.  Parameters are
    renamed per [subst]; locally declared names get a unique suffix. *)
and rename_stmts (subst : string -> string) (body : Ir.stmt list) :
    Ir.stmt list =
  let uid = string_of_int (Hashtbl.hash body land 0xFFFF) in
  let declared = Hashtbl.create 16 in
  let rec collect s =
    (match s with
    | Ir.SDecl (v, _, _) -> Hashtbl.replace declared v ()
    | Ir.SFor (v, _, _, _) -> Hashtbl.replace declared v ()
    | Ir.SParFor p -> Hashtbl.replace declared p.Ir.pf_var ()
    | _ -> ());
    match s with
    | Ir.SIf (_, a, b) ->
        List.iter collect a;
        List.iter collect b
    | Ir.SWhile (_, b) | Ir.SFor (_, _, _, b) | Ir.SInlineBlock (_, b) ->
        List.iter collect b
    | Ir.SParFor p -> List.iter collect p.Ir.pf_body
    | _ -> ()
  in
  List.iter collect body;
  let rn v =
    if Hashtbl.mem declared v then v ^ "$" ^ uid else subst v
  in
  let rec re (e : Ir.expr) : Ir.expr =
    match e with
    | Ir.Var v -> Ir.Var (rn v)
    | Ir.Const _ | Ir.This | Ir.StaticGet _ -> e
    | Ir.Bin (op, s, a, b) -> Ir.Bin (op, s, re a, re b)
    | Ir.Un (op, s, a) -> Ir.Un (op, s, re a)
    | Ir.Cast (d, s, a) -> Ir.Cast (d, s, re a)
    | Ir.Load (b, idx) -> Ir.Load (re b, List.map re idx)
    | Ir.Len (a, d) -> Ir.Len (re a, d)
    | Ir.Intrinsic (b, s, args) -> Ir.Intrinsic (b, s, List.map re args)
    | Ir.CallF (n, args) -> Ir.CallF (n, List.map re args)
    | Ir.CallM (n, r, args) -> Ir.CallM (n, re r, List.map re args)
    | Ir.FieldGet (r, f) -> Ir.FieldGet (re r, f)
    | Ir.NewArr (a, sizes) -> Ir.NewArr (a, List.map re sizes)
    | Ir.ArrLit (a, es) -> Ir.ArrLit (a, List.map re es)
    | Ir.NewObj (c, args) -> Ir.NewObj (c, List.map re args)
    | Ir.RangeE n -> Ir.RangeE (re n)
    | Ir.ToValueE a -> Ir.ToValueE (re a)
    | Ir.TaskE _ | Ir.ConnectE _ -> e
  in
  let rec rs (s : Ir.stmt) : Ir.stmt =
    match s with
    | Ir.SDecl (v, t, init) -> Ir.SDecl (rn v, t, Option.map re init)
    | Ir.SAssign (Ir.LVar v, e) -> Ir.SAssign (Ir.LVar (rn v), re e)
    | Ir.SAssign (lv, e) -> Ir.SAssign (lv, re e)
    | Ir.SArrStore (b, idx, v) -> Ir.SArrStore (re b, List.map re idx, re v)
    | Ir.SIf (c, a, b) -> Ir.SIf (re c, List.map rs a, List.map rs b)
    | Ir.SWhile (c, b) -> Ir.SWhile (re c, List.map rs b)
    | Ir.SFor (v, lo, hi, b) -> Ir.SFor (rn v, re lo, re hi, List.map rs b)
    | Ir.SParFor p ->
        Ir.SParFor
          {
            Ir.pf_var = rn p.Ir.pf_var;
            pf_count = re p.Ir.pf_count;
            pf_body = List.map rs p.Ir.pf_body;
            pf_out = Option.map rn p.Ir.pf_out;
          }
    | Ir.SReduce rd ->
        Ir.SReduce
          {
            rd with
            Ir.rd_dst = rn rd.Ir.rd_dst;
            rd_arr = re rd.Ir.rd_arr;
          }
    | Ir.SInlineBlock (res, b) -> Ir.SInlineBlock (rn res, List.map rs b)
    | Ir.SReturn e -> Ir.SReturn (Option.map re e)
    | Ir.SExpr e -> Ir.SExpr (re e)
    | Ir.SBreak | Ir.SContinue -> s
    | Ir.SFinish (g, n) -> Ir.SFinish (re g, Option.map re n)
  in
  List.map rs body

and rw_stmts ctx (body : Ir.stmt list) : Ir.stmt list =
  List.concat_map (rw_stmt ctx) body

and rw_stmt ctx (s : Ir.stmt) : Ir.stmt list =
  let acc = ref [] in
  let out =
    match s with
    | Ir.SDecl (v, t, init) ->
        Ir.SDecl (v, t, Option.map (rw_expr ctx acc) init)
    | Ir.SAssign (lv, e) -> Ir.SAssign (lv, rw_expr ctx acc e)
    | Ir.SArrStore (b, idx, v) ->
        Ir.SArrStore
          (rw_expr ctx acc b, List.map (rw_expr ctx acc) idx,
           rw_expr ctx acc v)
    | Ir.SIf (c, a, b) ->
        Ir.SIf (rw_expr ctx acc c, rw_stmts ctx a, rw_stmts ctx b)
    | Ir.SWhile (c, b) ->
        (* a call inside the condition must be re-evaluated per iteration:
           rewrite to while(true) { c'; if (!c') break; body } *)
        let cacc = ref [] in
        let c' = rw_expr ctx cacc c in
        if !cacc = [] then Ir.SWhile (c', rw_stmts ctx b)
        else
          Ir.SWhile
            ( Ir.Const (Ir.CBool true),
              List.rev !cacc
              @ [
                  Ir.SIf
                    ( Ir.Un (Lime_frontend.Ast.Not, Ir.SBool, c'),
                      [ Ir.SBreak ],
                      [] );
                ]
              @ rw_stmts ctx b )
    | Ir.SFor (v, lo, hi, b) ->
        Ir.SFor (v, rw_expr ctx acc lo, rw_expr ctx acc hi, rw_stmts ctx b)
    | Ir.SParFor p ->
        Ir.SParFor
          {
            p with
            Ir.pf_count = rw_expr ctx acc p.Ir.pf_count;
            pf_body = rw_stmts ctx p.Ir.pf_body;
          }
    | Ir.SReduce rd -> Ir.SReduce { rd with Ir.rd_arr = rw_expr ctx acc rd.Ir.rd_arr }
    | Ir.SInlineBlock (res, b) -> Ir.SInlineBlock (res, rw_stmts ctx b)
    | Ir.SReturn e -> Ir.SReturn (Option.map (rw_expr ctx acc) e)
    | Ir.SExpr e -> Ir.SExpr (rw_expr ctx acc e)
    | Ir.SBreak -> Ir.SBreak
    | Ir.SContinue -> Ir.SContinue
    | Ir.SFinish _ ->
        err "kernel extraction: finish() cannot appear in a filter"
  in
  List.rev !acc @ [ out ]

(* ------------------------------------------------------------------ *)
(* Nested-map demotion                                                 *)
(* ------------------------------------------------------------------ *)

(** The NDRange parallelizes only the outermost map: any [SParFor] nested
    inside another one becomes an ordinary sequential loop in the kernel.
    This is what exposes the inner scoring loop of a nested map to the
    memory optimizer's reuse patterns (Fig 5c). *)
let rec demote_nested ~inside (body : Ir.stmt list) : Ir.stmt list =
  List.map
    (fun s ->
      match s with
      | Ir.SParFor p when inside ->
          Ir.SFor
            ( p.Ir.pf_var,
              Ir.Const (Ir.CInt 0),
              p.Ir.pf_count,
              demote_nested ~inside:true p.Ir.pf_body )
      | Ir.SParFor p ->
          Ir.SParFor
            { p with Ir.pf_body = demote_nested ~inside:true p.Ir.pf_body }
      | Ir.SIf (c, a, b) ->
          Ir.SIf (c, demote_nested ~inside a, demote_nested ~inside b)
      | Ir.SWhile (c, b) -> Ir.SWhile (c, demote_nested ~inside b)
      | Ir.SFor (v, lo, hi, b) -> Ir.SFor (v, lo, hi, demote_nested ~inside b)
      | Ir.SInlineBlock (r, b) -> Ir.SInlineBlock (r, demote_nested ~inside b)
      | s -> s)
    body

(* ------------------------------------------------------------------ *)
(* Kernel properties                                                   *)
(* ------------------------------------------------------------------ *)

let body_has_parallelism (body : Ir.stmt list) =
  let found = ref false in
  List.iter
    (Ir.iter_stmt
       ~stmt:(fun s ->
         match s with
         | Ir.SParFor _ | Ir.SReduce _ -> found := true
         | _ -> ())
       ~expr:(fun _ -> ()))
    body;
  !found

let body_uses_double (k_params : (string * Ir.ty) list) (body : Ir.stmt list) =
  let found = ref false in
  let check_ty = function
    | Ir.TScalar Ir.SDouble -> found := true
    | Ir.TArr { Ir.elem = Ir.SDouble; _ } -> found := true
    | _ -> ()
  in
  List.iter (fun (_, t) -> check_ty t) k_params;
  List.iter
    (Ir.iter_stmt
       ~stmt:(fun s ->
         match s with Ir.SDecl (_, t, _) -> check_ty t | _ -> ())
       ~expr:(fun e ->
         match e with
         | Ir.Bin (_, Ir.SDouble, _, _)
         | Ir.Un (_, Ir.SDouble, _)
         | Ir.Cast (Ir.SDouble, _, _)
         | Ir.Const (Ir.CDouble _) ->
             found := true
         | _ -> ()))
    body;
  !found

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** Decide whether a task can be offloaded, per the paper's rules. *)
let classify (md : Ir.modul) (td : Ir.task_desc) : offload_verdict =
  match Ir.find_func md (Ir.qualify td.Ir.td_class td.Ir.td_method) with
  | None -> Not_isolated
  | Some f ->
      if not td.Ir.td_isolated then Not_isolated
      else if not f.Ir.fn_static then Stateful
      else if not (body_has_parallelism f.Ir.fn_body) then No_parallelism
      else Offloadable

(** Extract a self-contained kernel from a static local worker. *)
let extract (md : Ir.modul) ~(worker : string) : kernel =
  let f =
    match Ir.find_func md worker with
    | Some f -> f
    | None -> err "unknown worker '%s'" worker
  in
  if not f.Ir.fn_static then err "worker '%s' is not static" worker;
  if not f.Ir.fn_local then err "worker '%s' is not local" worker;
  let ctx =
    { md; consts = static_consts md; counter = 0; depth = 0; stack = [ worker ] }
  in
  let body = demote_nested ~inside:false (rw_stmts ctx f.Ir.fn_body) in
  {
    k_name = f.Ir.fn_name;
    k_params = f.Ir.fn_params;
    k_ret = f.Ir.fn_ret;
    k_body = body;
    k_parallel = body_has_parallelism body;
    k_uses_double = body_uses_double f.Ir.fn_params body;
  }

(** Wrap an extracted kernel back into a callable module so the reference
    interpreter (and the simulator's functional mode) can execute it. *)
let to_module (k : kernel) : Ir.modul =
  let md =
    {
      Ir.md_funcs = Hashtbl.create 1;
      md_classes = Hashtbl.create 1;
      md_static_inits = [];
      md_field_inits = [];
    }
  in
  Hashtbl.add md.Ir.md_funcs k.k_name
    {
      Ir.fn_name = k.k_name;
      fn_class = "";
      fn_method = k.k_name;
      fn_params = k.k_params;
      fn_ret = k.k_ret;
      fn_body = k.k_body;
      fn_static = true;
      fn_local = true;
    };
  md
