(** Kernel IR simplifier: constant folding, exact algebraic identities and
    dead declaration elimination — semantics-preserving under the
    interpreter's Java numerics (differential-tested across the whole
    benchmark suite). *)

val simp_expr : Lime_ir.Ir.expr -> Lime_ir.Ir.expr

val pure : Lime_ir.Ir.expr -> bool
(** Free of side effects: no prints, no possible traps.  Conservative. *)

val stmts : Lime_ir.Ir.stmt list -> Lime_ir.Ir.stmt list
(** Fold and prune one statement list (no dead-code pass). *)

val eliminate_dead : Lime_ir.Ir.stmt list -> Lime_ir.Ir.stmt list
(** Remove declarations and assignments of never-read variables whose
    initializers are pure; iterates to a fixpoint. *)

val kernel : Kernel.kernel -> Kernel.kernel
(** The full pipeline pass: fold, then eliminate dead code. *)
