(** Kernel identification and extraction (paper §4.1).

    A *filter* — an isolated task whose worker is a static [local] method
    with value-typed ports — is the unit of offload; the type system
    guarantees purity, so no alias or dependence analysis is required. *)

type kernel = {
  k_name : string;  (** qualified worker name, e.g. ["NBody.computeForces"] *)
  k_params : (string * Lime_ir.Ir.ty) list;
  k_ret : Lime_ir.Ir.ty;
  k_body : Lime_ir.Ir.stmt list;
      (** self-contained: all local calls inlined, static finals folded,
          nested maps demoted to sequential loops *)
  k_parallel : bool;  (** contains a data-parallel map or reduce *)
  k_uses_double : bool;
}

(** Why a task can or cannot be offloaded. *)
type offload_verdict =
  | Offloadable
  | Not_isolated  (** worker is not [local] with value ports *)
  | Stateful  (** instance worker: task-private mutable state stays on host *)
  | No_parallelism  (** no map/reduce inside: offload would not pay *)

val verdict_name : offload_verdict -> string

val classify : Lime_ir.Ir.modul -> Lime_ir.Ir.task_desc -> offload_verdict
(** Decide whether a task is offloadable, per the paper's rules. *)

val extract : Lime_ir.Ir.modul -> worker:string -> kernel
(** Extract a self-contained kernel from a static local worker: inlines
    every call to a [local] function (rejecting recursion), folds
    [static final] reads to constants, and demotes nested parallel loops.
    Raises {!Lime_support.Diag.Error_exn} when the worker is not a legal
    filter. *)

val to_module : kernel -> Lime_ir.Ir.modul
(** Wrap an extracted kernel as a callable module so the reference
    interpreter (and the simulator's functional mode) can execute it. *)

(**/**)

val static_consts :
  Lime_ir.Ir.modul -> (string * string, Lime_ir.Ir.const) Hashtbl.t

val body_has_parallelism : Lime_ir.Ir.stmt list -> bool
