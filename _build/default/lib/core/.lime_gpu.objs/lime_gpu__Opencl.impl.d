lib/core/opencl.ml: Array Buffer Hashtbl Int64 Kernel Lime_frontend Lime_ir Lime_support Lime_typecheck List Memopt Printf String
