lib/core/clcheck.mli: Format
