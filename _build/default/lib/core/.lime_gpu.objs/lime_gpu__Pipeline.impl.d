lib/core/pipeline.ml: Kernel Lime_ir Lime_typecheck List Memopt Opencl Simplify Sys
