lib/core/pipeline.mli: Kernel Lime_ir Lime_typecheck Memopt
