lib/core/simplify.ml: Hashtbl Int64 Kernel Lime_frontend Lime_ir Lime_typecheck List Option
