lib/core/hostgen.ml: Buffer Kernel Lime_ir Lime_support List Opencl Printf String
