lib/core/hostgen.mli: Kernel
