lib/core/kernel.mli: Hashtbl Lime_ir
