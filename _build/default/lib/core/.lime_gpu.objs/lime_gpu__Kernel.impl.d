lib/core/kernel.ml: Diag Hashtbl Int64 Lime_frontend Lime_ir Lime_support Lime_typecheck List Loc Option Printf
