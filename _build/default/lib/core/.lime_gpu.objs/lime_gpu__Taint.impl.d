lib/core/taint.ml: Hashtbl Lime_ir List
