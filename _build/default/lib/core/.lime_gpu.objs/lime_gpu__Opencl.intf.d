lib/core/opencl.mli: Kernel Lime_ir Memopt
