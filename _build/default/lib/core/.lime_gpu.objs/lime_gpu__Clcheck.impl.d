lib/core/clcheck.ml: Fmt Hashtbl List Printf String
