lib/core/memopt.mli: Kernel Lime_ir
