lib/core/memopt.ml: Hashtbl Kernel Lime_frontend Lime_ir List Option Printf String Taint
