lib/core/simplify.mli: Kernel Lime_ir
