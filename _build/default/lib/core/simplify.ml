(** Kernel IR simplifier: constant folding, algebraic identities and dead
    declaration elimination.

    Runs after kernel extraction (inlining leaves behind folded static
    finals, single-use temporaries and identity arithmetic) and before the
    memory optimizer.  Every rewrite is semantics-preserving under the
    interpreter's Java numerics — single-precision results are rounded with
    {!Lime_ir.Value.f32} exactly as the interpreter would, and integer
    arithmetic wraps at 32 bits — so the differential tests pin the pass
    down.

    Folding float expressions is deliberately conservative: only exact
    identities (x*1, x+0, 0/…) and literal-literal operations are touched,
    never reassociation. *)

module Ir = Lime_ir.Ir
module Value = Lime_ir.Value
open Lime_frontend.Ast

(* ------------------------------------------------------------------ *)
(* Constant folding                                                    *)
(* ------------------------------------------------------------------ *)

let fold_int op a b : int option =
  match op with
  | Add -> Some (Value.i32 (a + b))
  | Sub -> Some (Value.i32 (a - b))
  | Mul -> Some (Value.i32 (a * b))
  | Div when b <> 0 -> Some (Value.i32 (a / b))
  | Mod when b <> 0 -> Some (Value.i32 (a mod b))
  | BitAnd -> Some (a land b)
  | BitOr -> Some (a lor b)
  | BitXor -> Some (a lxor b)
  | Shl -> Some (Value.i32 (a lsl (b land 31)))
  | Shr -> Some (a asr (b land 31))
  | Ushr -> Some (Value.i32 ((a land 0xFFFFFFFF) lsr (b land 31)))
  | _ -> None

let fold_float ~single op a b : float option =
  let r = match op with
    | Add -> Some (a +. b)
    | Sub -> Some (a -. b)
    | Mul -> Some (a *. b)
    | Div -> Some (a /. b)
    | _ -> None
  in
  Option.map (fun x -> if single then Value.f32 x else x) r

let fold_cmp op c : bool option =
  match op with
  | Lt -> Some (c < 0)
  | Le -> Some (c <= 0)
  | Gt -> Some (c > 0)
  | Ge -> Some (c >= 0)
  | Eq -> Some (c = 0)
  | Ne -> Some (c <> 0)
  | _ -> None

let rec simp_expr (e : Ir.expr) : Ir.expr =
  match e with
  | Ir.Const _ | Ir.Var _ | Ir.This | Ir.StaticGet _ -> e
  | Ir.Bin (op, s, a, b) -> (
      let a = simp_expr a and b = simp_expr b in
      match (a, b, op, s) with
      (* literal folding *)
      | Ir.Const (Ir.CInt x), Ir.Const (Ir.CInt y), _, (Ir.SInt | Ir.SByte | Ir.SChar)
        -> (
          match fold_int op x y with
          | Some v -> Ir.Const (Ir.CInt v)
          | None -> (
              match fold_cmp op (compare x y) with
              | Some bl -> Ir.Const (Ir.CBool bl)
              | None -> Ir.Bin (op, s, a, b)))
      | Ir.Const (Ir.CFloat x), Ir.Const (Ir.CFloat y), _, Ir.SFloat -> (
          match fold_float ~single:true op x y with
          | Some v -> Ir.Const (Ir.CFloat v)
          | None -> Ir.Bin (op, s, a, b))
      | Ir.Const (Ir.CDouble x), Ir.Const (Ir.CDouble y), _, Ir.SDouble -> (
          match fold_float ~single:false op x y with
          | Some v -> Ir.Const (Ir.CDouble v)
          | None -> Ir.Bin (op, s, a, b))
      (* exact algebraic identities *)
      | x, Ir.Const (Ir.CInt 0), (Add | Sub | BitOr | BitXor | Shl | Shr | Ushr), _
        ->
          x
      | Ir.Const (Ir.CInt 0), y, (Add | BitOr | BitXor), _ -> y
      | x, Ir.Const (Ir.CInt 1), (Mul | Div), _ -> x
      | Ir.Const (Ir.CInt 1), y, Mul, _ -> y
      | _, Ir.Const (Ir.CInt 0), Mul, (Ir.SInt | Ir.SByte | Ir.SChar)
        when pure a ->
          Ir.Const (Ir.CInt 0)
      | Ir.Const (Ir.CInt 0), _, Mul, (Ir.SInt | Ir.SByte | Ir.SChar)
        when pure b ->
          Ir.Const (Ir.CInt 0)
      | x, Ir.Const (Ir.CFloat 1.0), (Mul | Div), Ir.SFloat -> x
      | Ir.Const (Ir.CFloat 1.0), y, Mul, Ir.SFloat -> y
      | x, Ir.Const (Ir.CFloat 0.0), (Add | Sub), Ir.SFloat -> x
      | x, Ir.Const (Ir.CDouble 1.0), (Mul | Div), Ir.SDouble -> x
      | x, Ir.Const (Ir.CDouble 0.0), (Add | Sub), Ir.SDouble -> x
      (* boolean short circuits on literals *)
      | Ir.Const (Ir.CBool true), y, And, _ -> y
      | Ir.Const (Ir.CBool false), _, And, _ -> Ir.Const (Ir.CBool false)
      | Ir.Const (Ir.CBool false), y, Or, _ -> y
      | Ir.Const (Ir.CBool true), _, Or, _ -> Ir.Const (Ir.CBool true)
      | _ -> Ir.Bin (op, s, a, b))
  | Ir.Un (op, s, a) -> (
      let a = simp_expr a in
      match (op, a) with
      | Neg, Ir.Const (Ir.CInt x) -> Ir.Const (Ir.CInt (Value.i32 (-x)))
      | Neg, Ir.Const (Ir.CFloat x) -> Ir.Const (Ir.CFloat (-.x))
      | Neg, Ir.Const (Ir.CDouble x) -> Ir.Const (Ir.CDouble (-.x))
      | Not, Ir.Const (Ir.CBool b) -> Ir.Const (Ir.CBool (not b))
      | BitNot, Ir.Const (Ir.CInt x) -> Ir.Const (Ir.CInt (Value.i32 (lnot x)))
      | _ -> Ir.Un (op, s, a))
  | Ir.Cast (d, sc, a) -> (
      let a = simp_expr a in
      match (d, a) with
      | Ir.SFloat, Ir.Const (Ir.CInt x) ->
          Ir.Const (Ir.CFloat (Value.f32 (float_of_int x)))
      | Ir.SDouble, Ir.Const (Ir.CInt x) ->
          Ir.Const (Ir.CDouble (float_of_int x))
      | Ir.SInt, Ir.Const (Ir.CInt x) -> Ir.Const (Ir.CInt (Value.i32 x))
      | Ir.SByte, Ir.Const (Ir.CInt x) -> Ir.Const (Ir.CInt (Value.i8 x))
      | Ir.SLong, Ir.Const (Ir.CInt x) -> Ir.Const (Ir.CLong (Int64.of_int x))
      | _ -> Ir.Cast (d, sc, a))
  | Ir.Load (b, idx) -> Ir.Load (simp_expr b, List.map simp_expr idx)
  | Ir.Len (a, d) -> Ir.Len (simp_expr a, d)
  | Ir.Intrinsic (b, s, args) -> Ir.Intrinsic (b, s, List.map simp_expr args)
  | Ir.CallF (n, args) -> Ir.CallF (n, List.map simp_expr args)
  | Ir.CallM (n, r, args) ->
      Ir.CallM (n, simp_expr r, List.map simp_expr args)
  | Ir.FieldGet (r, f) -> Ir.FieldGet (simp_expr r, f)
  | Ir.NewArr (a, sizes) -> Ir.NewArr (a, List.map simp_expr sizes)
  | Ir.ArrLit (a, es) -> Ir.ArrLit (a, List.map simp_expr es)
  | Ir.NewObj (c, args) -> Ir.NewObj (c, List.map simp_expr args)
  | Ir.RangeE n -> Ir.RangeE (simp_expr n)
  | Ir.ToValueE a -> Ir.ToValueE (simp_expr a)
  | Ir.TaskE _ | Ir.ConnectE _ -> e

(** Is the expression free of side effects (calls can print or fail)? *)
and pure (e : Ir.expr) : bool =
  match e with
  | Ir.Const _ | Ir.Var _ | Ir.This | Ir.StaticGet _ | Ir.Len _ -> true
  | Ir.Bin ((Div | Mod), _, _, b) ->
      (* integer division can trap *)
      (match b with Ir.Const (Ir.CInt n) -> n <> 0 | _ -> false) && pure b
  | Ir.Bin (_, _, a, b) -> pure a && pure b
  | Ir.Un (_, _, a) | Ir.Cast (_, _, a) | Ir.FieldGet (a, _) -> pure a
  | Ir.Load (b, idx) -> pure b && List.for_all pure idx
      (* bounds errors: loads are treated as pure only for *removal* of
         unused values when the indices are in-range by construction; we
         keep this conservative and only rely on it for [Var]-rooted loads
         with constant indices below *)
  | Ir.Intrinsic (b, _, args) ->
      b <> Lime_typecheck.Tast.BPrint && List.for_all pure args
  | Ir.ArrLit (_, es) -> List.for_all pure es
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Statement simplification + dead declaration elimination             *)
(* ------------------------------------------------------------------ *)

let rec simp_stmt (s : Ir.stmt) : Ir.stmt list =
  match s with
  | Ir.SDecl (v, t, init) -> [ Ir.SDecl (v, t, Option.map simp_expr init) ]
  | Ir.SAssign (lv, e) -> [ Ir.SAssign (lv, simp_expr e) ]
  | Ir.SArrStore (b, idx, v) ->
      [ Ir.SArrStore (simp_expr b, List.map simp_expr idx, simp_expr v) ]
  | Ir.SIf (c, a, b) -> (
      match simp_expr c with
      | Ir.Const (Ir.CBool true) -> simp_stmts a
      | Ir.Const (Ir.CBool false) -> simp_stmts b
      | c -> [ Ir.SIf (c, simp_stmts a, simp_stmts b) ])
  | Ir.SWhile (c, b) -> (
      match simp_expr c with
      | Ir.Const (Ir.CBool false) -> []
      | c -> [ Ir.SWhile (c, simp_stmts b) ])
  | Ir.SFor (v, lo, hi, b) -> (
      let lo = simp_expr lo and hi = simp_expr hi in
      match (lo, hi) with
      | Ir.Const (Ir.CInt l), Ir.Const (Ir.CInt h) when h <= l -> []
      | _ -> [ Ir.SFor (v, lo, hi, simp_stmts b) ])
  | Ir.SParFor p ->
      [
        Ir.SParFor
          {
            p with
            Ir.pf_count = simp_expr p.Ir.pf_count;
            pf_body = simp_stmts p.Ir.pf_body;
          };
      ]
  | Ir.SReduce r -> [ Ir.SReduce { r with Ir.rd_arr = simp_expr r.Ir.rd_arr } ]
  | Ir.SInlineBlock (res, b) -> (
      (* a block whose body is exactly one trailing return collapses *)
      match simp_stmts b with
      | [ Ir.SReturn (Some e) ] -> [ Ir.SAssign (Ir.LVar res, e) ]
      | b -> [ Ir.SInlineBlock (res, b) ])
  | Ir.SReturn e -> [ Ir.SReturn (Option.map simp_expr e) ]
  | Ir.SExpr e ->
      let e = simp_expr e in
      if pure e then [] else [ Ir.SExpr e ]
  | Ir.SBreak | Ir.SContinue -> [ s ]
  | Ir.SFinish (g, n) ->
      [ Ir.SFinish (simp_expr g, Option.map simp_expr n) ]

and simp_stmts (b : Ir.stmt list) : Ir.stmt list =
  List.concat_map simp_stmt b

(* dead declaration elimination: remove SDecls of variables never read,
   when the initializer is pure.  Iterates to a fixpoint (removing one decl
   can orphan another). *)

let used_vars (body : Ir.stmt list) : (string, int) Hashtbl.t =
  let uses = Hashtbl.create 64 in
  let bump v = Hashtbl.replace uses v (1 + Option.value ~default:0 (Hashtbl.find_opt uses v)) in
  let expr e = Ir.iter_expr (function Ir.Var v -> bump v | _ -> ()) e in
  let stmt (s : Ir.stmt) =
    match s with
    | Ir.SAssign (Ir.LVar _, _) -> () (* the target itself is not a use *)
    | Ir.SReduce r -> bump r.Ir.rd_dst |> ignore
    | _ -> ()
  in
  List.iter (Ir.iter_stmt ~stmt ~expr) body;
  uses

let rec eliminate_dead (body : Ir.stmt list) : Ir.stmt list =
  let uses = used_vars body in
  let changed = ref false in
  let rec clean (stmts : Ir.stmt list) : Ir.stmt list =
    List.filter_map
      (fun (s : Ir.stmt) ->
        match s with
        | Ir.SDecl (v, _, init)
          when (not (Hashtbl.mem uses v))
               && (match init with None -> true | Some e -> pure e) ->
            changed := true;
            None
        | Ir.SAssign (Ir.LVar v, e)
          when (not (Hashtbl.mem uses v)) && pure e ->
            changed := true;
            None
        | Ir.SIf (c, a, b) -> Some (Ir.SIf (c, clean a, clean b))
        | Ir.SWhile (c, b) -> Some (Ir.SWhile (c, clean b))
        | Ir.SFor (v, lo, hi, b) -> Some (Ir.SFor (v, lo, hi, clean b))
        | Ir.SParFor p ->
            Some (Ir.SParFor { p with Ir.pf_body = clean p.Ir.pf_body })
        | Ir.SInlineBlock (r, b) -> Some (Ir.SInlineBlock (r, clean b))
        | s -> Some s)
      stmts
  in
  let body = clean body in
  if !changed then eliminate_dead body else body

(** Simplify a kernel: fold constants, apply identities, prune dead code. *)
let kernel (k : Kernel.kernel) : Kernel.kernel =
  { k with Kernel.k_body = eliminate_dead (simp_stmts k.Kernel.k_body) }

(** Simplify one function body (used by tests and tooling). *)
let stmts = simp_stmts
