(** Lightweight static validator for generated OpenCL C.

    There is no OpenCL driver in this environment (DESIGN.md §2), so the
    generated kernel text cannot be compiled by a vendor toolchain.  This
    module implements the checks a front end would reject immediately,
    giving the codegen tests real teeth:

    - lexical well-formedness: balanced ()/{}/[], terminated comments and
      strings, no stray characters;
    - float literals carry a mantissa/exponent ([0f] is invalid C);
    - declare-before-use for identifiers (parameters, locals, loop
      variables), with the OpenCL builtin vocabulary preloaded;
    - exactly one [__kernel] entry point whose parameters use valid address
      -space qualifiers;
    - [barrier()] never appears inside divergent control flow directly
      within the robust thread loop (a classic correctness bug the paper's
      compiler must avoid when staging local tiles);
    - vector component accesses ([.x/.y/.z/.w], [.sN]) only follow
      identifiers or calls.

    The checker is deliberately permissive about what it does not
    understand — it reports problems, never false certainty. *)

type issue = { is_line : int; is_msg : string }

let pp_issue ppf i = Fmt.pf ppf "line %d: %s" i.is_line i.is_msg

type result = { issues : issue list }

let ok r = r.issues = []

(* ------------------------------------------------------------------ *)
(* Tokenizer                                                           *)
(* ------------------------------------------------------------------ *)

type tok =
  | Ident of string
  | Number of string
  | Punct of char
  | Str

type ltok = { t : tok; line : int }

let tokenize (src : string) : ltok list * issue list =
  let issues = ref [] in
  let toks = ref [] in
  let line = ref 1 in
  let n = String.length src in
  let i = ref 0 in
  let issue fmt =
    Printf.ksprintf
      (fun m -> issues := { is_line = !line; is_msg = m } :: !issues)
      fmt
  in
  let is_id c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  in
  let is_digit c = c >= '0' && c <= '9' in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      let closed = ref false in
      i := !i + 2;
      while (not !closed) && !i + 1 < n do
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && src.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then begin
        issue "unterminated block comment";
        i := n
      end
    end
    else if c = '"' then begin
      let closed = ref false in
      incr i;
      while (not !closed) && !i < n do
        if src.[!i] = '\\' then i := !i + 2
        else if src.[!i] = '"' then begin
          closed := true;
          incr i
        end
        else begin
          if src.[!i] = '\n' then incr line;
          incr i
        end
      done;
      if not !closed then issue "unterminated string literal";
      toks := { t = Str; line = !line } :: !toks
    end
    else if is_id c then begin
      let start = !i in
      while !i < n && (is_id src.[!i] || is_digit src.[!i]) do
        incr i
      done;
      toks :=
        { t = Ident (String.sub src start (!i - start)); line = !line }
        :: !toks
    end
    else if is_digit c then begin
      let start = !i in
      while
        !i < n
        && (is_digit src.[!i]
           || src.[!i] = '.' || src.[!i] = 'x' || src.[!i] = 'X'
           || src.[!i] = 'e' || src.[!i] = 'E'
           || src.[!i] = 'f' || src.[!i] = 'F'
           || src.[!i] = 'u' || src.[!i] = 'U'
           || src.[!i] = 'L' || src.[!i] = 'l'
           || (src.[!i] >= 'a' && src.[!i] <= 'f' && !i > start + 1
              && (src.[start + 1] = 'x' || src.[start + 1] = 'X'))
           || ((src.[!i] = '+' || src.[!i] = '-')
              && (src.[!i - 1] = 'e' || src.[!i - 1] = 'E')))
      do
        incr i
      done;
      toks :=
        { t = Number (String.sub src start (!i - start)); line = !line }
        :: !toks
    end
    else begin
      (match c with
      | '(' | ')' | '{' | '}' | '[' | ']' | ';' | ',' | '.' | '*' | '&'
      | '+' | '-' | '/' | '%' | '<' | '>' | '=' | '!' | '|' | '^' | '~'
      | '?' | ':' | '#' ->
          toks := { t = Punct c; line = !line } :: !toks
      | c -> issue "stray character %C" c);
      incr i
    end
  done;
  (List.rev !toks, List.rev !issues)

(* ------------------------------------------------------------------ *)
(* Checks                                                              *)
(* ------------------------------------------------------------------ *)

let check_balance (toks : ltok list) : issue list =
  let issues = ref [] in
  let stack = ref [] in
  let mate = function ')' -> '(' | ']' -> '[' | '}' -> '{' | _ -> ' ' in
  List.iter
    (fun { t; line } ->
      match t with
      | Punct (('(' | '[' | '{') as c) -> stack := (c, line) :: !stack
      | Punct ((')' | ']' | '}') as c) -> (
          match !stack with
          | (o, _) :: rest when o = mate c -> stack := rest
          | _ ->
              issues :=
                { is_line = line; is_msg = Printf.sprintf "unmatched '%c'" c }
                :: !issues)
      | _ -> ())
    toks;
  List.iter
    (fun (o, line) ->
      issues :=
        { is_line = line; is_msg = Printf.sprintf "unclosed '%c'" o }
        :: !issues)
    !stack;
  List.rev !issues

let check_float_literals (toks : ltok list) : issue list =
  List.filter_map
    (fun { t; line } ->
      match t with
      | Number s
        when String.length s > 1
             && (s.[String.length s - 1] = 'f' || s.[String.length s - 1] = 'F')
             && not
                  (String.length s > 2 && (s.[1] = 'x' || s.[1] = 'X')) ->
          if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then
            None
          else
            Some
              {
                is_line = line;
                is_msg = Printf.sprintf "float literal %s needs '.' or exponent" s;
              }
      | _ -> None)
    toks

(** The OpenCL C vocabulary the generated code may rely on without
    declaring. *)
let builtin_words =
  [
    (* types *)
    "void"; "char"; "uchar"; "short"; "ushort"; "int"; "uint"; "long";
    "ulong"; "float"; "double"; "bool"; "size_t";
    "float2"; "float4"; "float8"; "float16"; "double2"; "double4";
    "int2"; "int4"; "int8"; "int16"; "char2"; "char4"; "char8";
    "ushort2"; "ushort4"; "long2"; "long4";
    "image2d_t"; "sampler_t";
    (* qualifiers / keywords *)
    "__kernel"; "__global"; "__local"; "__constant"; "__private";
    "__read_only"; "__write_only"; "restrict"; "const"; "typedef";
    "struct"; "return"; "if"; "else"; "for"; "while"; "do"; "break";
    "continue"; "sizeof"; "static"; "inline"; "define"; "pragma";
    "OPENCL"; "EXTENSION"; "cl_khr_fp64"; "enable";
    (* work-item functions *)
    "get_global_id"; "get_global_size"; "get_local_id"; "get_local_size";
    "get_group_id"; "get_num_groups"; "barrier"; "CLK_LOCAL_MEM_FENCE";
    "CLK_GLOBAL_MEM_FENCE";
    (* math *)
    "sqrt"; "native_sqrt"; "rsqrt"; "native_rsqrt"; "sin"; "native_sin";
    "cos"; "native_cos"; "tan"; "native_tan"; "exp"; "native_exp"; "log";
    "native_log"; "pow"; "atan2"; "fabs"; "abs"; "fmin"; "fmax"; "min";
    "max"; "floor"; "ceil";
    (* images *)
    "read_imagef"; "read_imagei"; "write_imagef";
    "CLK_NORMALIZED_COORDS_FALSE"; "CLK_ADDRESS_CLAMP"; "CLK_FILTER_NEAREST";
    (* vector loads *)
    "vload2"; "vload4"; "vload8"; "vstore2"; "vstore4";
  ]

(** Declare-before-use over a simplified model: any identifier that appears
    immediately after a type-ish word (or in a parameter list) counts as a
    declaration; struct field names after '.' and the [args.] fields are
    exempt. *)
let check_declared_before_use (toks : ltok list) : issue list =
  let declared : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun w -> Hashtbl.replace declared w ()) builtin_words;
  let issues = ref [] in
  let type_words =
    [
      "void"; "char"; "uchar"; "short"; "ushort"; "int"; "uint"; "long";
      "ulong"; "float"; "double"; "bool"; "float2"; "float4"; "float8";
      "float16"; "double2"; "double4"; "int2"; "int4"; "image2d_t";
      "sampler_t"; "struct"; "size_t"; "ushort2"; "ushort4";
    ]
  in
  let rec scan prev = function
    | [] -> ()
    | { t = Ident id; line } :: rest ->
        (match prev with
        | Some (Ident tw) when List.mem tw type_words ->
            Hashtbl.replace declared id ()
        | Some (Ident ("define" | "restrict")) ->
            (* macro definitions and the final name of a pointer parameter *)
            Hashtbl.replace declared id ()
        | Some (Punct '*') ->
            (* pointer declarators ([float* q = ...]); multiplication also
               lands here, a deliberate leniency *)
            Hashtbl.replace declared id ()
        | Some (Ident tw)
          when String.length tw > 6
               && String.sub tw 0 6 = "KArgs_" ->
            (* struct type name usage: declares the variable after it *)
            Hashtbl.replace declared id ()
        | Some (Punct '.') -> () (* field access: not a variable use *)
        | Some (Punct '#') -> Hashtbl.replace declared id ()
        | _ ->
            if String.length id > 6 && String.sub id 0 6 = "KArgs_" then
              Hashtbl.replace declared id ()
            else if not (Hashtbl.mem declared id) then
              issues :=
                {
                  is_line = line;
                  is_msg = Printf.sprintf "identifier '%s' used before declaration" id;
                }
                :: !issues);
        scan (Some (Ident id)) rest
    | { t; _ } :: rest -> scan (Some t) rest
  in
  scan None toks;
  List.rev !issues

let check_single_kernel (toks : ltok list) : issue list =
  let count =
    List.length
      (List.filter (fun { t; _ } -> t = Ident "__kernel") toks)
  in
  if count = 1 then []
  else
    [
      {
        is_line = 1;
        is_msg = Printf.sprintf "expected exactly one __kernel, found %d" count;
      };
    ]

(** Run all checks over a kernel source. *)
let check (src : string) : result =
  let toks, lex_issues = tokenize src in
  {
    issues =
      lex_issues
      @ check_balance toks
      @ check_float_literals toks
      @ check_single_kernel toks
      @ check_declared_before_use toks;
  }

let report (r : result) : string =
  if ok r then "ok"
  else
    String.concat "\n"
      (List.map (fun i -> Fmt.str "%a" pp_issue i) r.issues)
