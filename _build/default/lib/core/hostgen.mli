(** Host-side OpenCL glue generation (paper §2, Figure 3): device
    discovery, program build, buffer creation, argument binding, enqueues
    and teardown — the boilerplate the paper quantifies as "at least a
    dozen OpenCL procedures" plus "182 lines" of setup. *)

val generate : Kernel.kernel -> string
(** The C host program offloading one kernel. *)

val api_calls_used : string -> string list
(** Distinct OpenCL API procedures referenced by a glue listing. *)
