(** End-to-end compilation pipeline: Lime source → typed AST → IR →
    extracted kernel → memory placements → OpenCL source (Figure 3 of the
    paper).  This is the primary entry point for downstream users. *)

type compiled = {
  cp_program : Lime_typecheck.Tast.tprogram;  (** typed program *)
  cp_module : Lime_ir.Ir.modul;  (** lowered IR, executable by the interpreter *)
  cp_kernel : Kernel.kernel;  (** extracted, self-contained kernel *)
  cp_decisions : Memopt.decision list;  (** memory placements *)
  cp_opencl : string;  (** generated OpenCL kernel source *)
  cp_config : Memopt.config;
}

val compile_observer : (worker:string -> seconds:float -> unit) ref
(** Called once per completed {!compile} with the elapsed CPU seconds.
    No-op by default; the [lime.service] metrics layer installs itself
    here (this library cannot depend on it). *)

val compile :
  ?config:Memopt.config ->
  ?simplify:bool ->
  ?name:string ->
  worker:string ->
  string ->
  compiled
(** [compile ~worker:"Class.method" source] runs the whole pipeline,
    offloading the given filter worker under [config] (default
    {!Memopt.config_all}).  Raises {!Lime_support.Diag.Error_exn} on any
    front-end or kernel-legality error. *)

val reoptimize : compiled -> Memopt.config -> compiled
(** Re-run only the memory optimizer and code generator under a different
    configuration (the Fig 8 sweep / autotuning building block). *)

val sweep : compiled -> (string * compiled) list
(** All eight Fig 8 configurations of an already compiled program. *)
