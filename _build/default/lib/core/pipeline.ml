(** End-to-end compilation pipeline: Lime source → typed AST → IR →
    extracted kernel → memory placements → OpenCL source.

    This is the public entry point a downstream user of the library calls;
    the stages mirror Figure 3 of the paper. *)

module Ir = Lime_ir.Ir

type compiled = {
  cp_program : Lime_typecheck.Tast.tprogram;
  cp_module : Ir.modul;
  cp_kernel : Kernel.kernel;
  cp_decisions : Memopt.decision list;
  cp_opencl : string;
  cp_config : Memopt.config;
}

(** Observation hook for compile-service instrumentation: called once per
    completed {!compile} with the worker name and the elapsed CPU time.
    The service layer ([lime.service]) installs its metrics here; the
    default is a no-op so this library stays dependency-free. *)
let compile_observer : (worker:string -> seconds:float -> unit) ref =
  ref (fun ~worker:_ ~seconds:_ -> ())

(** Compile [source], offloading the filter whose worker is
    ["Class.method"], under the given optimization configuration.
    [simplify] (default on) runs constant folding and dead-code
    elimination over the extracted kernel. *)
let compile ?(config = Memopt.config_all) ?(simplify = true)
    ?(name = "<inline>") ~(worker : string) (source : string) : compiled =
  let t0 = Sys.time () in
  let tp = Lime_typecheck.Check.check_string ~name source in
  let md = Lime_ir.Lower.lower_program tp in
  let kernel = Kernel.extract md ~worker in
  let kernel = if simplify then Simplify.kernel kernel else kernel in
  let decisions = Memopt.optimize config kernel in
  let opencl = Opencl.generate kernel decisions in
  !compile_observer ~worker ~seconds:(Sys.time () -. t0);
  {
    cp_program = tp;
    cp_module = md;
    cp_kernel = kernel;
    cp_decisions = decisions;
    cp_opencl = opencl;
    cp_config = config;
  }

(** Re-optimize an already compiled program under a different memory
    configuration (used by the Fig 8 sweep and the autotuner). *)
let reoptimize (c : compiled) (config : Memopt.config) : compiled =
  let decisions = Memopt.optimize config c.cp_kernel in
  {
    c with
    cp_decisions = decisions;
    cp_opencl = Opencl.generate c.cp_kernel decisions;
    cp_config = config;
  }

(** All Fig 8 variants of a compiled program. *)
let sweep (c : compiled) : (string * compiled) list =
  List.map (fun (n, cfg) -> (n, reoptimize c cfg)) Memopt.fig8_configs
