(** Lightweight static validator for generated OpenCL C (there is no
    OpenCL driver in this environment): lexical well-formedness, balanced
    brackets, float-literal syntax, declare-before-use against the OpenCL
    builtin vocabulary, and a single [__kernel] entry point. *)

type issue = { is_line : int; is_msg : string }

val pp_issue : Format.formatter -> issue -> unit

type result = { issues : issue list }

val ok : result -> bool

val check : string -> result
(** Run all checks over a kernel source. *)

val report : result -> string
