(** Thread-dependence analysis.

    Computes, for a kernel body, the set of variables whose values depend on
    the parallel index — the information the memory optimizer and the
    profiler need to classify an index expression as per-thread versus
    shared across threads.  Pointer-free value semantics make this a small
    forward dataflow to a fixpoint:

    - the parallel index itself is thread-dependent;
    - a scalar is tainted if its initializer or any assignment to it
      mentions a tainted variable;
    - an array *declared inside* the parallel loop holds per-thread data
      (each iteration owns an instance), so its name is tainted and so is
      any scalar loaded from it (loads mention the array's name);
    - the destination of a reduce over a tainted array is tainted;
    - uninitialized declarations inside the parallel loop are conservatively
      tainted (their single assignment may come from an early-returning
      inline block).

    Sequential loop variables ([SFor]) are *not* tainted — they advance
    identically in every thread, which is exactly what makes the Fig 5(c)
    stream pattern shared. *)

module Ir = Lime_ir.Ir

let expr_vars (e : Ir.expr) : string list =
  let acc = ref [] in
  Ir.iter_expr
    (fun e -> match e with Ir.Var v -> acc := v :: !acc | _ -> ())
    e;
  !acc

(** The tainted-variable set of a kernel body.  Includes the parallel index
    variables themselves. *)
let thread_dependent (body : Ir.stmt list) : (string, unit) Hashtbl.t =
  let tainted = Hashtbl.create 32 in
  let changed = ref true in
  let mentions e =
    List.exists (Hashtbl.mem tainted) (expr_vars e)
  in
  let add v =
    if not (Hashtbl.mem tainted v) then begin
      Hashtbl.replace tainted v ();
      changed := true
    end
  in
  let rec walk ~in_par (s : Ir.stmt) =
    match s with
    | Ir.SDecl (v, Ir.TArr _, init) ->
        if in_par then add v;
        (match init with
        | Some e when mentions e -> add v
        | _ -> ())
    | Ir.SDecl (v, _, init) -> (
        match init with
        | Some e -> if mentions e then add v
        | None -> if in_par then add v)
    | Ir.SAssign (Ir.LVar v, e) -> if mentions e then add v
    | Ir.SAssign (_, _) -> ()
    | Ir.SArrStore (_, _, _) -> ()
    | Ir.SIf (_, a, b) ->
        List.iter (walk ~in_par) a;
        List.iter (walk ~in_par) b
    | Ir.SWhile (_, b) -> List.iter (walk ~in_par) b
    | Ir.SFor (_, _, _, b) -> List.iter (walk ~in_par) b
    | Ir.SParFor p ->
        add p.Ir.pf_var;
        List.iter (walk ~in_par:true) p.Ir.pf_body
    | Ir.SReduce r -> if mentions r.Ir.rd_arr then add r.Ir.rd_dst
    | Ir.SInlineBlock (res, b) ->
        List.iter (walk ~in_par) b;
        (* the block's returns feed [res] *)
        let returns_tainted = ref false in
        List.iter
          (Ir.iter_stmt
             ~stmt:(fun s ->
               match s with
               | Ir.SReturn (Some e) when mentions e -> returns_tainted := true
               | _ -> ())
             ~expr:(fun _ -> ()))
          b;
        if !returns_tainted then add res
    | Ir.SReturn _ | Ir.SExpr _ | Ir.SBreak | Ir.SContinue | Ir.SFinish _ ->
        ()
  in
  while !changed do
    changed := false;
    List.iter (walk ~in_par:false) body
  done;
  tainted
