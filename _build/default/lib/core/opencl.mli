(** OpenCL C code generation (paper §4.2, Fig 4/5).

    Emits the kernel source for an extracted kernel under a set of
    placement decisions: the robust thread loop, the bookkeeping struct,
    address-space qualifiers, local staging with barriers, image reads,
    vector types, and private arrays.  Validated by {!Clcheck} and the
    structural tests. *)

val generate : ?group_size:int -> Kernel.kernel -> Memopt.decision list -> string
(** [generate kernel decisions] returns the OpenCL source text.
    [group_size] sets the work-group size baked into the staging tiles
    (default 256). *)

val float_lit : float -> string
(** A C floating literal that always contains a ['.'] or an exponent. *)

val cname : string -> string
(** IR temporary name → valid C identifier. *)

val scratch_buffers : Kernel.kernel -> (string * Lime_ir.Ir.aty) list
(** Dynamically sized kernel intermediates the host must allocate (they
    appear as extra [__global] kernel parameters). *)
