(** Benchmark descriptor shared by the nine Table 3 workloads.

    Each benchmark bundles: the Lime source (compiled by the real pipeline),
    the offloaded worker, deterministic input builders at the paper's input
    size and at a small test size, an independent OCaml reference
    implementation of the kernel (for differential testing), the memory
    configuration the autotuner settles on (used for the end-to-end Fig 7
    runs), and the per-device hand-tuned comparator of Fig 8. *)

module Ir = Lime_ir.Ir
module Value = Lime_ir.Value
module Memopt = Lime_gpu.Memopt
module Prng = Lime_support.Prng

(** Hand-tuned OpenCL comparator for one device: the placement an expert
    chose, plus a factor for hand-specific effects outside the optimizer's
    search space — >1.0 where the expert code is slower (e.g. Mosaic's
    imperfect bank-conflict padding, §5.2), <1.0 where manual tricks beat
    the compiler. *)
type hand_tuned = {
  ht_config : Memopt.config;
  ht_factor : float;
}

type t = {
  name : string;
  description : string;
  source : string;  (** Lime program, paper-scale constants *)
  source_small : string;
      (** same program with test-scale constants (grid sizes etc.); the
          [reference] implementation corresponds to THIS variant *)
  worker : string;  (** qualified filter worker, e.g. ["NBody.computeForces"] *)
  datatype : string;  (** Table 3 data type column *)
  (* input builders; deterministic given the seed *)
  input : ?seed:int -> unit -> Value.t;  (** paper-scale input *)
  input_small : ?seed:int -> unit -> Value.t;  (** test-scale input *)
  reference : Value.t -> Value.t;
      (** independent OCaml implementation of the kernel *)
  best_config : Memopt.config;  (** what the auto-exploration settles on *)
  hand : (string * hand_tuned) list;  (** device name -> comparator *)
  in_fig8 : bool;
  interop_factor : float;
      (** slowdown of the Lime-bytecode baseline vs pure Java caused by
          Java/Lime interop (JG-Crypt is ~2x, §5.1) *)
  uses_double : bool;
}

let mk ?(interop_factor = 1.0) ?(uses_double = false) ?(in_fig8 = false)
    ?(hand = []) ?source_small ~name ~description ~source ~worker ~datatype
    ~input ~input_small ~reference ~best_config () =
  {
    name;
    description;
    source;
    source_small = Option.value source_small ~default:source;
    worker;
    datatype;
    input;
    input_small;
    reference;
    best_config;
    hand;
    in_fig8;
    interop_factor;
    uses_double;
  }

(* ------------------------------------------------------------------ *)
(* Helpers for input builders and references                          *)
(* ------------------------------------------------------------------ *)

let f32 = Value.f32

(** Random float matrix (rows x cols), single precision, values in
    [lo, hi). *)
let rand_matrix ?(elem = Ir.SFloat) ~seed ~rows ~cols ~lo ~hi () : Value.t =
  let rng = Prng.create seed in
  let data =
    Array.init (rows * cols) (fun _ -> Prng.float_range rng lo hi)
  in
  Value.VArr (Value.of_float_matrix ~elem rows cols data)

let rand_floats ?(elem = Ir.SFloat) ~seed ~n ~lo ~hi () : Value.t =
  let rng = Prng.create seed in
  Value.VArr
    (Value.of_float_array ~elem
       (Array.init n (fun _ -> Prng.float_range rng lo hi)))

let rand_ints ~seed ~n ~bound () : Value.t =
  let rng = Prng.create seed in
  Value.VArr (Value.of_int_array (Array.init n (fun _ -> Prng.int rng bound)))

let arr_of (v : Value.t) : Value.arr =
  match v with
  | Value.VArr a -> a
  | _ -> invalid_arg "expected an array value"

(** Read a float element of a rank-2 value. *)
let get2 (a : Value.arr) i j =
  match Value.index a [ i; j ] with
  | Value.VFloat f | Value.VDouble f -> f
  | Value.VInt n -> float_of_int n
  | _ -> invalid_arg "get2"

let get1 (a : Value.arr) i =
  match Value.index a [ i ] with
  | Value.VFloat f | Value.VDouble f -> f
  | Value.VInt n -> float_of_int n
  | _ -> invalid_arg "get1"

let get1i (a : Value.arr) i =
  match Value.index a [ i ] with
  | Value.VInt n -> n
  | _ -> invalid_arg "get1i"

let get2i (a : Value.arr) i j =
  match Value.index a [ i; j ] with
  | Value.VInt n -> n
  | _ -> invalid_arg "get2i"
