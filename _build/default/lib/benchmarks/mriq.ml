(** Parboil-MRIQ: Magnetic Resonance Imaging, Q-matrix computation
    (Table 3).

    For every voxel on a regular 3-D grid, accumulates
    [phi * cos/sin(2*pi * k . x)] over all k-space samples.  The k-space
    array (3072 x 4: kx, ky, kz, phiMag = 48KB) is read identically by every
    thread — the classic constant-memory fit; the paper found the Lime
    compiler's constant-memory version slightly *faster* than the hand-tuned
    kernel.  Sin/cos-dominated, so it shows one of the largest GPU
    speedups. *)

open Bench_def
module Value = Lime_ir.Value
module Memopt = Lime_gpu.Memopt

let n_k = 3072
let n_vox = 32768 (* 32^3 regular grid -> output 32768 x 2 x 4B = 256KB *)
let n_vox_small = 512

let source =
  {|
class MRIQ {
  static final int VOX = 32768;
  static final float PI2 = 6.2831853f;

  static local float[[2]] computeVoxel(float[[][4]] kdata, int v) {
    float x = (float)(v & 31) * 0.098f;
    float y = (float)((v >>> 5) & 31) * 0.098f;
    float z = (float)((v >>> 10) & 31) * 0.098f;
    float qr = 0.0f;
    float qi = 0.0f;
    for (int k = 0; k < kdata.length; k++) {
      float phi = kdata[k][3];
      float arg = PI2 * (kdata[k][0]*x + kdata[k][1]*y + kdata[k][2]*z);
      qr += phi * Math.cos(arg);
      qi += phi * Math.sin(arg);
    }
    return { qr, qi };
  }

  static local float[[][2]] computeQ(float[[][4]] kdata) {
    return MRIQ.computeVoxel(kdata) @ Lime.range(VOX);
  }

  static local float[[4]] genK(int seed, int i) {
    int h = (i * 40503 + seed) ^ (i << 11);
    float kx = (float)(h & 2047) / 2048.0f - 0.5f;
    float ky = (float)((h >>> 11) & 2047) / 2048.0f - 0.5f;
    float kz = (float)((h >>> 22) & 511) / 512.0f - 0.5f;
    float phi = (float)((h & 1023) + 1) / 1024.0f;
    return { kx, ky, kz, phi };
  }
}

class MRIQApp {
  int samples;
  float total;

  MRIQApp(int count) {
    samples = count;
  }

  local float[[][4]] kGen() {
    return MRIQ.genK(90901) @ Lime.range(samples);
  }

  void collect(float[[][2]] q) {
    float t = 0.0f;
    for (int i = 0; i < q.length; i++) {
      t += q[i][0] + q[i][1];
    }
    total = t;
  }

  static void main(int count, int steps) {
    (task MRIQApp(count).kGen
       => task MRIQ.computeQ
       => task MRIQApp(count).collect).finish(steps);
  }
}
|}

let source_small = Str_replace.all ~from:"VOX = 32768" ~into:"VOX = 512" source

let input_of ~n ?(seed = 5) () : Value.t =
  rand_matrix ~seed ~rows:n ~cols:4 ~lo:(-0.5) ~hi:0.5 ()

let reference_of ~vox (input : Value.t) : Value.t =
  let a = arr_of input in
  let nk = a.Value.shape.(0) in
  let out = Value.make_arr ~is_value:true Lime_ir.Ir.SFloat [| vox; 2 |] in
  let pi2 = f32 6.2831853 in
  for v = 0 to vox - 1 do
    let x = f32 (float_of_int (v land 31) *. f32 0.098) in
    let y = f32 (float_of_int ((v lsr 5) land 31) *. f32 0.098) in
    let z = f32 (float_of_int ((v lsr 10) land 31) *. f32 0.098) in
    let qr = ref 0.0 and qi = ref 0.0 in
    for k = 0 to nk - 1 do
      let phi = get2 a k 3 in
      let dot =
        f32
          (f32 (f32 (get2 a k 0 *. x) +. f32 (get2 a k 1 *. y))
          +. f32 (get2 a k 2 *. z))
      in
      let arg = f32 (pi2 *. dot) in
      qr := f32 (!qr +. f32 (phi *. f32 (cos arg)));
      qi := f32 (!qi +. f32 (phi *. f32 (sin arg)))
    done;
    Value.store out [ v; 0 ] (Value.VFloat (f32 !qr));
    Value.store out [ v; 1 ] (Value.VFloat (f32 !qi))
  done;
  Value.VArr out

let bench : Bench_def.t =
  mk ~name:"Parboil-MRIQ" ~description:"Magnetic Resonance Imaging"
    ~source ~source_small ~worker:"MRIQ.computeQ" ~datatype:"Float"
    ~input:(fun ?(seed = 5) () -> input_of ~n:n_k ~seed ())
    ~input_small:(fun ?(seed = 5) () -> input_of ~n:96 ~seed ())
    ~reference:(reference_of ~vox:n_vox_small)
    ~best_config:Memopt.config_constant_vector ~in_fig8:true
    ~hand:
      [
        (* the compiler-generated constant-memory kernel slightly
           outperforms the hand-tuned one (§5.2) *)
        ( "NVidia GeForce GTX 8800",
          { ht_config = Memopt.config_constant; ht_factor = 1.04 } );
        ( "NVidia GeForce GTX 580",
          { ht_config = Memopt.config_constant; ht_factor = 1.03 } );
        ( "AMD Radeon HD 5970",
          { ht_config = Memopt.config_constant; ht_factor = 1.02 } );
      ]
    ()
