(** JG-Crypt: IDEA encryption from the Java Grande suite (Table 3).

    Byte-array workload (3MB in, 3MB out), no floating point — the paper's
    lowest end-to-end GPU speedup, with a particularly low
    computation-per-byte ratio (Fig 9's CPU exception).  Each 8-byte block
    goes through 8 rounds of IDEA-style mixing: 16-bit multiplication
    modulo 65537, addition modulo 65536 and XOR, with the round subkeys
    expanded in-kernel from a seed (LCG key schedule).

    The Lime-bytecode baseline for Crypt runs about half the speed of the
    pure-Java original because of Java↔Lime byte-array conversion at the
    interop boundary (§5.1) — captured by [interop_factor]. *)

open Bench_def
module Value = Lime_ir.Value
module Memopt = Lime_gpu.Memopt
module Prng = Lime_support.Prng

let data_bytes = 3 * 1024 * 1024
let data_bytes_small = 4096

let source =
  {|
class Crypt {
  static final int ROUNDS = 8;
  static final int KEYSEED = 11731;

  static local int mulMod(int a, int b) {
    int x = a & 65535;
    int y = b & 65535;
    if (x == 0) { x = 65536; }
    if (y == 0) { y = 65536; }
    long p = ((long) x * (long) y) % 65537L;
    return (int) (p & 65535L);
  }

  static local byte[[8]] encryptBlock(byte[[]] data, int b) {
    int base = b * 8;
    int x1 = ((int) data[base]     & 255) | (((int) data[base + 1] & 255) << 8);
    int x2 = ((int) data[base + 2] & 255) | (((int) data[base + 3] & 255) << 8);
    int x3 = ((int) data[base + 4] & 255) | (((int) data[base + 5] & 255) << 8);
    int x4 = ((int) data[base + 6] & 255) | (((int) data[base + 7] & 255) << 8);
    int ks = KEYSEED;
    for (int r = 0; r < ROUNDS; r++) {
      ks = ks * 1103515245 + 12345;
      int k1 = (ks >>> 16) & 65535;
      ks = ks * 1103515245 + 12345;
      int k2 = (ks >>> 16) & 65535;
      ks = ks * 1103515245 + 12345;
      int k3 = (ks >>> 16) & 65535;
      ks = ks * 1103515245 + 12345;
      int k4 = (ks >>> 16) & 65535;
      x1 = Crypt.mulMod(x1, k1);
      x2 = (x2 + k2) & 65535;
      x3 = (x3 + k3) & 65535;
      x4 = Crypt.mulMod(x4, k4);
      int t1 = x1 ^ x3;
      int t2 = x2 ^ x4;
      t1 = Crypt.mulMod(t1, k1 ^ 21845);
      t2 = (t1 + t2) & 65535;
      t2 = Crypt.mulMod(t2, k4 ^ 21845);
      t1 = (t1 + t2) & 65535;
      x1 = x1 ^ t2;
      x3 = x3 ^ t2;
      x2 = x2 ^ t1;
      x4 = x4 ^ t1;
    }
    return { (byte) x1, (byte) (x1 >>> 8),
             (byte) x2, (byte) (x2 >>> 8),
             (byte) x3, (byte) (x3 >>> 8),
             (byte) x4, (byte) (x4 >>> 8) };
  }

  static local byte[[][8]] encrypt(byte[[]] data) {
    return Crypt.encryptBlock(data) @ Lime.range(data.length / 8);
  }

  static local byte genByte(int seed, int i) {
    int h = (i * 1664525 + seed) ^ (i >>> 5);
    return (byte) (h >>> 13);
  }
}

class CryptApp {
  int bytes;
  int checksum;

  CryptApp(int count) {
    bytes = count;
  }

  local byte[[]] dataGen() {
    return Crypt.genByte(20011) @ Lime.range(bytes);
  }

  void collect(byte[[][8]] blocks) {
    int c = 0;
    for (int i = 0; i < blocks.length; i++) {
      for (int j = 0; j < 8; j++) {
        c = c + ((int) blocks[i][j] & 255);
      }
    }
    checksum = c;
  }

  static void main(int count, int steps) {
    (task CryptApp(count).dataGen
       => task Crypt.encrypt
       => task CryptApp(count).collect).finish(steps);
  }
}
|}

let input_of ~n ?(seed = 3) () : Value.t =
  let rng = Prng.create seed in
  let a = Value.make_arr ~is_value:true Lime_ir.Ir.SByte [| n |] in
  (match a.Value.buf with
  | Value.BInt b ->
      Array.iteri (fun i _ -> b.(i) <- Value.i8 (Prng.byte rng)) b
  | _ -> assert false);
  Value.VArr a

(* OCaml reference mirrors the kernel exactly (integer arithmetic) *)
let reference (input : Value.t) : Value.t =
  let a = arr_of input in
  let n = a.Value.shape.(0) in
  let blocks = n / 8 in
  let out = Value.make_arr ~is_value:true Lime_ir.Ir.SByte [| blocks; 8 |] in
  let i32 = Value.i32 in
  let mul_mod x y =
    let x = x land 65535 and y = y land 65535 in
    let x = if x = 0 then 65536 else x in
    let y = if y = 0 then 65536 else y in
    Int64.to_int (Int64.rem (Int64.mul (Int64.of_int x) (Int64.of_int y)) 65537L)
    land 65535
  in
  for b = 0 to blocks - 1 do
    let byte_at k = get1i a ((b * 8) + k) land 255 in
    let x = [| byte_at 0 lor (byte_at 1 lsl 8);
               byte_at 2 lor (byte_at 3 lsl 8);
               byte_at 4 lor (byte_at 5 lsl 8);
               byte_at 6 lor (byte_at 7 lsl 8) |] in
    let ks = ref 11731 in
    for _ = 1 to 8 do
      let next () =
        ks := i32 ((!ks * 1103515245) + 12345);
        (!ks land 0xFFFFFFFF) lsr 16 land 65535
      in
      let k1 = next () in
      let k2 = next () in
      let k3 = next () in
      let k4 = next () in
      x.(0) <- mul_mod x.(0) k1;
      x.(1) <- (x.(1) + k2) land 65535;
      x.(2) <- (x.(2) + k3) land 65535;
      x.(3) <- mul_mod x.(3) k4;
      let t1 = ref (x.(0) lxor x.(2)) in
      let t2 = ref (x.(1) lxor x.(3)) in
      t1 := mul_mod !t1 (k1 lxor 21845);
      t2 := (!t1 + !t2) land 65535;
      t2 := mul_mod !t2 (k4 lxor 21845);
      t1 := (!t1 + !t2) land 65535;
      x.(0) <- x.(0) lxor !t2;
      x.(2) <- x.(2) lxor !t2;
      x.(1) <- x.(1) lxor !t1;
      x.(3) <- x.(3) lxor !t1
    done;
    for w = 0 to 3 do
      Value.store out [ b; 2 * w ] (Value.VInt (Value.i8 x.(w)));
      Value.store out
        [ b; (2 * w) + 1 ]
        (Value.VInt (Value.i8 (x.(w) lsr 8)))
    done
  done;
  Value.VArr out

let bench : Bench_def.t =
  mk ~name:"JG-Crypt" ~description:"IDEA encryption"
    ~source ~worker:"Crypt.encrypt" ~datatype:"Byte" ~interop_factor:2.0
    ~input:(fun ?(seed = 3) () -> input_of ~n:data_bytes ~seed ())
    ~input_small:(fun ?(seed = 3) () -> input_of ~n:data_bytes_small ~seed ())
    ~reference
    ~best_config:Memopt.config_global ()
