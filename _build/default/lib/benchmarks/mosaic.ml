(** Mosaic image application (Table 3).

    "A map-and-reduce algorithm to compare tiles from a reference image to
    tiles from an image library to find the best-matched tiles using a
    scoring function" (§5).  Our implementation:

    - the input packs the tile library (first [lib] rows) and the reference
      tiles (remaining rows), each tile 8x8 pixels ([int[[64]]]);
    - for every reference tile, a map computes the SAD score against every
      library tile and a [Math.min !] *reduction* over (score << 32 | index)
      encodings selects the best match — the benchmark's map-and-reduce
      core;
    - a second map renders the output mosaic, upscaling each matched tile
      3x (8x8 → 24x24), which reproduces the paper's output ≫ input ratio
      (600KB in, ~4–5MB out).

    Integer workload, no floating point — one of the paper's lowest
    end-to-end GPU speedups (high communication-to-computation ratio). *)

open Bench_def
module Value = Lime_ir.Value
module Memopt = Lime_gpu.Memopt
module Prng = Lime_support.Prng

let lib_tiles = 512
let ref_tiles = 1836
let tile_px = 64 (* 8x8 *)
let up_px = 576 (* 24x24 *)

let source =
  {|
class Mosaic {
  static final int LIB = 512;
  static final int TPX = 64;
  static final int UP = 576;

  static local long scoreOne(int[[][64]] packed, int refIdx, int t) {
    int s = 0;
    for (int k = 0; k < TPX; k++) {
      s += Math.abs(packed[t][k] - packed[refIdx][k]);
    }
    return ((long) s << 32) | (long) t;
  }

  static local int upscalePix(int[[][64]] packed, int bestT, int k) {
    int px = k % 24;
    int py = k / 24;
    return packed[bestT][(py / 3) * 8 + (px / 3)];
  }

  static local int[[576]] matchTile(int[[][64]] packed, int r) {
    long[[]] scores = Mosaic.scoreOne(packed, LIB + r) @ Lime.range(LIB);
    long best = Math.min ! scores;
    int bestT = (int) (best & 0xFFFFFFFFL);
    return Mosaic.upscalePix(packed, bestT) @ Lime.range(UP);
  }

  static local int[[][576]] computeMosaic(int[[][64]] packed) {
    return Mosaic.matchTile(packed) @ Lime.range(packed.length - LIB);
  }

  static local int genPix(int seed, int t, int k) {
    int h = (t * 8191 + k) * 1103515245 + seed;
    return (h >>> 8) & 255;
  }

  static local int[[64]] genTile(int seed, int t) {
    return Mosaic.genPix(seed, t) @ Lime.range(TPX);
  }
}

class MosaicApp {
  int tiles;
  long checksum;

  MosaicApp(int count) {
    tiles = count;
  }

  local int[[][64]] tileGen() {
    return Mosaic.genTile(7777) @ Lime.range(tiles);
  }

  void collect(int[[][576]] image) {
    long c = 0L;
    for (int i = 0; i < image.length; i++) {
      for (int j = 0; j < 576; j++) {
        c = c + (long) image[i][j];
      }
    }
    checksum = c;
  }

  static void main(int count, int steps) {
    (task MosaicApp(count).tileGen
       => task Mosaic.computeMosaic
       => task MosaicApp(count).collect).finish(steps);
  }
}
|}

(* ------------------------------------------------------------------ *)
(* Inputs and reference                                                *)
(* ------------------------------------------------------------------ *)

let input_of ~lib ~refs ?(seed = 7) () : Value.t =
  let rng = Prng.create seed in
  let rows = lib + refs in
  let a = Value.make_arr ~is_value:true Lime_ir.Ir.SInt [| rows; tile_px |] in
  (match a.Value.buf with
  | Value.BInt b -> Array.iteri (fun i _ -> b.(i) <- Prng.int rng 256) b
  | _ -> assert false);
  Value.VArr a

let reference (input : Value.t) : Value.t =
  let a = arr_of input in
  let rows = a.Value.shape.(0) in
  let lib = lib_tiles in
  let refs = rows - lib in
  let out = Value.make_arr ~is_value:true Lime_ir.Ir.SInt [| refs; up_px |] in
  let best = Array.make refs 0 in
  for r = 0 to refs - 1 do
    let best_enc = ref Int64.max_int in
    for t = 0 to lib - 1 do
      let s = ref 0 in
      for k = 0 to tile_px - 1 do
        s := !s + abs (get2i a t k - get2i a (lib + r) k)
      done;
      let enc =
        Int64.logor
          (Int64.shift_left (Int64.of_int !s) 32)
          (Int64.of_int t)
      in
      if Int64.compare enc !best_enc < 0 then best_enc := enc
    done;
    best.(r) <- Int64.to_int (Int64.logand !best_enc 0xFFFFFFFFL)
  done;
  for r = 0 to refs - 1 do
    for k = 0 to up_px - 1 do
      let px = k mod 24 and py = k / 24 in
      let v = get2i a best.(r) (((py / 3) * 8) + (px / 3)) in
      Value.store out [ r; k ] (Value.VInt v)
    done
  done;
  Value.VArr out

let bench : Bench_def.t =
  mk ~name:"Mosaic" ~description:"Mosaic image application"
    ~source ~worker:"Mosaic.computeMosaic" ~datatype:"Integer"
    ~input:(fun ?(seed = 7) () -> input_of ~lib:lib_tiles ~refs:ref_tiles ~seed ())
    ~input_small:(fun ?(seed = 7) () -> input_of ~lib:lib_tiles ~refs:24 ~seed ())
    ~reference
    ~best_config:Memopt.config_local_noconflict ~in_fig8:true
    ~hand:
      [
        (* the paper found the compiler better at removing bank conflicts
           than the hand-tuned kernel (§5.2): the expert used local memory
           with incomplete padding, costing ~20% residual conflicts *)
        ( "NVidia GeForce GTX 8800",
          { ht_config = Memopt.config_local_noconflict; ht_factor = 1.2 } );
        ( "NVidia GeForce GTX 580",
          { ht_config = Memopt.config_local_noconflict; ht_factor = 1.2 } );
        ( "AMD Radeon HD 5970",
          { ht_config = Memopt.config_local_noconflict; ht_factor = 1.2 } );
      ]
    ()
