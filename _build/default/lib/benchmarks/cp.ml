(** Parboil-CP: Coulombic Potential (Table 3).

    Computes the electrostatic potential on a 2-D grid slice induced by a
    set of point charges.  Every grid point loops over all atoms — the
    atoms array is read identically by every thread at each step, which is
    the canonical constant-memory workload (and fits: 4000 atoms x 16B =
    62.5KB ≤ 64KB, matching the paper's 62KB input).  Output: 512x512
    floats = 1MB. *)

open Bench_def
module Value = Lime_ir.Value
module Memopt = Lime_gpu.Memopt

let n_atoms = 4000
let grid = 512
let grid_small = 32

let source =
  {|
class CP {
  static final int GRID = 512;
  static final float SPACING = 0.05f;
  static final float SOFTEN = 0.0001f;

  static local float potentialAt(float[[][4]] atoms, int g) {
    float x = (float)(g % GRID) * SPACING;
    float y = (float)(g / GRID) * SPACING;
    float en = 0.0f;
    for (int j = 0; j < atoms.length; j++) {
      float dx = atoms[j][0] - x;
      float dy = atoms[j][1] - y;
      float dz = atoms[j][2];
      float r2 = dx*dx + dy*dy + dz*dz + SOFTEN;
      en += atoms[j][3] / Math.sqrt(r2);
    }
    return en;
  }

  static local float[[]] computeGrid(float[[][4]] atoms) {
    return CP.potentialAt(atoms) @ Lime.range(GRID * GRID);
  }

  static local float[[4]] genAtom(int seed, int i) {
    int h = (i * 747796405 + seed) ^ (i << 7);
    float ax = (float)(h & 8191) / 8192.0f * 25.6f;
    float ay = (float)((h >>> 13) & 8191) / 8192.0f * 25.6f;
    float az = (float)((h >>> 26) & 31) / 32.0f * 4.0f;
    float q = (float)((h & 7) - 3);
    return { ax, ay, az, q };
  }
}

class CPApp {
  int atoms;
  float total;

  CPApp(int count) {
    atoms = count;
  }

  local float[[][4]] atomGen() {
    return CP.genAtom(424242) @ Lime.range(atoms);
  }

  void collect(float[[]] grid) {
    float t = 0.0f;
    for (int i = 0; i < grid.length; i++) {
      t += grid[i];
    }
    total = t;
  }

  static void main(int count, int steps) {
    (task CPApp(count).atomGen
       => task CP.computeGrid
       => task CPApp(count).collect).finish(steps);
  }
}
|}

let input_of ~n ?(seed = 11) () : Value.t =
  rand_matrix ~seed ~rows:n ~cols:4 ~lo:0.0 ~hi:12.8 ()

let reference_of ~grid (input : Value.t) : Value.t =
  let a = arr_of input in
  let n = a.Value.shape.(0) in
  let g2 = grid * grid in
  let out = Value.make_arr ~is_value:true Lime_ir.Ir.SFloat [| g2 |] in
  let spacing = f32 0.05 and soften = f32 0.0001 in
  for g = 0 to g2 - 1 do
    let x = f32 (float_of_int (g mod grid) *. spacing) in
    let y = f32 (float_of_int (g / grid) *. spacing) in
    let en = ref 0.0 in
    for j = 0 to n - 1 do
      let dx = f32 (get2 a j 0 -. x) in
      let dy = f32 (get2 a j 1 -. y) in
      let dz = get2 a j 2 in
      let r2 =
        f32 (f32 (f32 (f32 (dx *. dx) +. f32 (dy *. dy)) +. f32 (dz *. dz)) +. soften)
      in
      en := f32 (!en +. f32 (get2 a j 3 /. f32 (sqrt r2)))
    done;
    Value.store out [ g ] (Value.VFloat (f32 !en))
  done;
  Value.VArr out

(* the test-scale variant shrinks the grid so the reference interpreter can
   execute the kernel in milliseconds *)
let source_small =
  Str_replace.all ~from:"GRID = 512" ~into:"GRID = 32" source

let bench : Bench_def.t =
  mk ~name:"Parboil-CP" ~description:"Coulombic Potential"
    ~source ~worker:"CP.computeGrid" ~datatype:"Float"
    ~source_small
    ~input:(fun ?(seed = 11) () -> input_of ~n:n_atoms ~seed ())
    ~input_small:(fun ?(seed = 11) () -> input_of ~n:32 ~seed ())
    ~reference:(reference_of ~grid:grid_small)
    ~best_config:Memopt.config_constant_vector ~in_fig8:true
    ~hand:
      [
        ( "NVidia GeForce GTX 8800",
          { ht_config = Memopt.config_constant_vector; ht_factor = 0.93 } );
        ( "NVidia GeForce GTX 580",
          { ht_config = Memopt.config_constant_vector; ht_factor = 0.95 } );
        ( "AMD Radeon HD 5970",
          { ht_config = Memopt.config_constant_vector; ht_factor = 0.95 } );
      ]
    ()
