lib/benchmarks/series.ml: Array Bench_def Lime_gpu Lime_ir Nbody
