lib/benchmarks/experiments.mli: Bench_def Gpusim Lime_gpu Lime_ir Lime_runtime
