lib/benchmarks/registry.ml: Bench_def Cp Crypt Lime_gpu List Mosaic Mriq Nbody Option Rpes Series
