lib/benchmarks/experiments.ml: Array Bench_def Float Gpusim Lime_gpu Lime_ir Lime_runtime Lime_support List Printf Registry String
