lib/benchmarks/str_replace.ml: Buffer String
