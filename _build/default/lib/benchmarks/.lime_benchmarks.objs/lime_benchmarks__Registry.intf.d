lib/benchmarks/registry.mli: Bench_def Lime_gpu
