lib/benchmarks/bench_def.ml: Array Lime_gpu Lime_ir Lime_support Option
