lib/benchmarks/mriq.ml: Array Bench_def Lime_gpu Lime_ir Str_replace
