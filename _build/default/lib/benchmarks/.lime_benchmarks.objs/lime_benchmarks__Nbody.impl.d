lib/benchmarks/nbody.ml: Array Bench_def Buffer Lime_gpu Lime_ir String
