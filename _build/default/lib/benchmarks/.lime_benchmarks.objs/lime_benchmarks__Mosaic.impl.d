lib/benchmarks/mosaic.ml: Array Bench_def Int64 Lime_gpu Lime_ir Lime_support
