(** Tiny literal string replacement (no Str/Re dependency). *)

let all ~from ~into (s : string) : string =
  let flen = String.length from in
  if flen = 0 then s
  else begin
    let buf = Buffer.create (String.length s) in
    let i = ref 0 in
    let n = String.length s in
    while !i < n do
      if !i + flen <= n && String.sub s !i flen = from then begin
        Buffer.add_string buf into;
        i := !i + flen
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  end
