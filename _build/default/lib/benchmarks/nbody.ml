(** N-Body simulation (paper §2, §3, Table 3).

    The n² force calculation, in single- and double-precision variants.
    Input: [n x 4] particles (position + mass, the paper's float4 layout);
    output: [n x 3] forces.  Paper input sizes: 64KB single (4096
    particles), 128KB double. *)

open Bench_def
module Value = Lime_ir.Value
module Memopt = Lime_gpu.Memopt

(** Substitute [$T] (scalar type) and [$S] (literal suffix) in a template. *)
let subst ~ty ~suf (template : string) : string =
  let buf = Buffer.create (String.length template) in
  let n = String.length template in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && template.[!i] = '$' && template.[!i + 1] = 'T' then begin
      Buffer.add_string buf ty;
      i := !i + 2
    end
    else if !i + 1 < n && template.[!i] = '$' && template.[!i + 1] = 'S' then begin
      Buffer.add_string buf suf;
      i := !i + 2
    end
    else begin
      Buffer.add_char buf template.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let template =
  {|
class NBody {
  static final $T EPS = 1.0e-9$S;

  static local $T[[3]] forceOne($T[[][4]] particles, $T[[4]] p) {
    $T fx = 0.0$S; $T fy = 0.0$S; $T fz = 0.0$S;
    for (int j = 0; j < particles.length; j++) {
      $T[[4]] q = particles[j];
      $T dx = q[0] - p[0];
      $T dy = q[1] - p[1];
      $T dz = q[2] - p[2];
      $T r2 = dx*dx + dy*dy + dz*dz + EPS;
      $T inv = 1.0$S / Math.sqrt(r2*r2*r2);
      $T s = q[3] * inv;
      fx += s * dx; fy += s * dy; fz += s * dz;
    }
    return { fx, fy, fz };
  }

  static local $T[[][3]] computeForces($T[[][4]] particles) {
    return NBody.forceOne(particles) @ particles;
  }

  static local $T[[4]] genOne(int seed, int i) {
    int h = i * 1103515245 + seed;
    h = (h ^ (h >>> 16)) * 65599 + i;
    int hx = h & 1023;
    int hy = (h >>> 10) & 1023;
    int hz = (h >>> 20) & 1023;
    $T x = ($T)hx / 512.0$S - 1.0$S;
    $T y = ($T)hy / 512.0$S - 1.0$S;
    $T z = ($T)hz / 512.0$S - 1.0$S;
    $T m = 1.0$S + ($T)(h & 255) / 256.0$S;
    return { x, y, z, m };
  }
}

class NBodySim {
  int n;
  int seed;
  $T total;

  NBodySim(int count) {
    n = count;
    seed = 12345;
  }

  local $T[[][4]] particleGen() {
    return NBody.genOne(seed) @ Lime.range(n);
  }

  void accumulate($T[[][3]] forces) {
    $T t = 0.0$S;
    for (int i = 0; i < forces.length; i++) {
      t += forces[i][0] + forces[i][1] + forces[i][2];
    }
    total = t;
  }

  static void main(int count, int steps) {
    (task NBodySim(count).particleGen
       => task NBody.computeForces
       => task NBodySim(count).accumulate).finish(steps);
  }
}
|}

let source_for ~ty ~suf = subst ~ty ~suf template

(* reference: plain OCaml n^2 force computation *)
let reference_of ~single (input : Value.t) : Value.t =
  let a = arr_of input in
  let n = a.Value.shape.(0) in
  let round x = if single then f32 x else x in
  let out =
    Value.make_arr ~is_value:true
      (if single then Lime_ir.Ir.SFloat else Lime_ir.Ir.SDouble)
      [| n; 3 |]
  in
  let eps = if single then f32 1.0e-9 else 1.0e-9 in
  for i = 0 to n - 1 do
    let px = get2 a i 0 and py = get2 a i 1 and pz = get2 a i 2 in
    let fx = ref 0.0 and fy = ref 0.0 and fz = ref 0.0 in
    for j = 0 to n - 1 do
      let dx = round (get2 a j 0 -. px) in
      let dy = round (get2 a j 1 -. py) in
      let dz = round (get2 a j 2 -. pz) in
      let r2 =
        round
          (round (round (round (dx *. dx) +. round (dy *. dy)) +. round (dz *. dz))
          +. eps)
      in
      let inv = round (1.0 /. round (sqrt (round (round (r2 *. r2) *. r2)))) in
      let s = round (get2 a j 3 *. inv) in
      fx := round (!fx +. round (s *. dx));
      fy := round (!fy +. round (s *. dy));
      fz := round (!fz +. round (s *. dz))
    done;
    let set c v =
      Value.store out [ i; c ]
        (if single then Value.VFloat (f32 v) else Value.VDouble v)
    in
    set 0 !fx;
    set 1 !fy;
    set 2 !fz
  done;
  Value.VArr out

let input_of ~elem ~n ?(seed = 42) () =
  rand_matrix ~elem ~seed ~rows:n ~cols:4 ~lo:(-1.0) ~hi:1.0 ()

let hand_local factor =
  { ht_config = Memopt.config_local_noconflict_vector; ht_factor = factor }

let single : Bench_def.t =
  mk ~name:"N-Body (Single)" ~description:"N-Body simulation"
    ~source:(source_for ~ty:"float" ~suf:"f")
    ~worker:"NBody.computeForces" ~datatype:"Float"
    ~input:(fun ?(seed = 42) () ->
      input_of ~elem:Lime_ir.Ir.SFloat ~n:4096 ~seed ())
    ~input_small:(fun ?(seed = 42) () ->
      input_of ~elem:Lime_ir.Ir.SFloat ~n:64 ~seed ())
    ~reference:(reference_of ~single:true)
    ~best_config:Memopt.config_local_noconflict_vector ~in_fig8:true
    ~hand:
      [
        ("NVidia GeForce GTX 8800", hand_local 1.0);
        ("NVidia GeForce GTX 580", hand_local 0.92);
        ("AMD Radeon HD 5970", hand_local 0.95);
      ]
    ()

let double : Bench_def.t =
  mk ~name:"N-Body (Double)" ~description:"N-Body simulation"
    ~source:(source_for ~ty:"double" ~suf:"")
    ~worker:"NBody.computeForces" ~datatype:"Double" ~uses_double:true
    ~input:(fun ?(seed = 42) () ->
      input_of ~elem:Lime_ir.Ir.SDouble ~n:4096 ~seed ())
    ~input_small:(fun ?(seed = 42) () ->
      input_of ~elem:Lime_ir.Ir.SDouble ~n:64 ~seed ())
    ~reference:(reference_of ~single:false)
    ~best_config:Memopt.config_local_noconflict_vector
    ~hand:
      [
        ("NVidia GeForce GTX 8800", hand_local 1.0);
        ("NVidia GeForce GTX 580", hand_local 0.92);
        ("AMD Radeon HD 5970", hand_local 0.95);
      ]
    ()
