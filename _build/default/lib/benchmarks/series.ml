(** JG-Series: Fourier coefficient analysis from the Java Grande suite
    (Table 3), in single- and double-precision variants.

    Computes the first N Fourier coefficient pairs of f(x) = (x+1)^x on
    [0,2] by numerical integration; each coefficient evaluates pow, sin and
    cos in the inner loop.  Transcendental-dominated: the paper attributes
    its very large CPU and GPU gains to OpenCL's faster transcendental
    implementations compared to Java's strict [Math.*]. *)

open Bench_def
module Value = Lime_ir.Value
module Memopt = Lime_gpu.Memopt

let n_coeff = 100_000
let n_points = 100
let n_coeff_small = 64

let template =
  {|
class Series {
  static final int POINTS = 100;
  static final $T PI = 3.141592653589793$S;

  static local $T[[2]] coeff($T[[]] seeds, int n) {
    $T range = 2.0$S;
    $T dx = range / ($T) POINTS;
    $T ar = 0.0$S;
    $T ai = 0.0$S;
    for (int j = 0; j < POINTS; j++) {
      $T x = (($T) j + 0.5$S) * dx;
      $T fx = Math.pow(x + 1.0$S, x) + seeds[n] * 0.0$S;
      $T w = ($T) (n + 1) * PI * x;
      ar += fx * Math.cos(w) * dx;
      ai += fx * Math.sin(w) * dx;
    }
    return { ar, ai };
  }

  static local $T[[][2]] computeSeries($T[[]] seeds) {
    return Series.coeff(seeds) @ Lime.range(seeds.length);
  }

  static local $T genSeed(int base, int i) {
    return ($T) ((i * 31 + base) & 1023) / 1024.0$S;
  }
}

class SeriesApp {
  int coeffs;
  $T first;

  SeriesApp(int count) {
    coeffs = count;
  }

  local $T[[]] seedGen() {
    return Series.genSeed(17) @ Lime.range(coeffs);
  }

  void collect($T[[][2]] c) {
    first = c[0][0];
  }

  static void main(int count, int steps) {
    (task SeriesApp(count).seedGen
       => task Series.computeSeries
       => task SeriesApp(count).collect).finish(steps);
  }
}
|}

let source_for ~ty ~suf = Nbody.subst ~ty ~suf template

let input_of ~elem ~n ?(seed = 17) () : Value.t =
  rand_floats ~elem ~seed ~n ~lo:0.0 ~hi:1.0 ()

let reference_of ~single (input : Value.t) : Value.t =
  let a = arr_of input in
  let n = a.Value.shape.(0) in
  let round x = if single then f32 x else x in
  let out =
    Value.make_arr ~is_value:true
      (if single then Lime_ir.Ir.SFloat else Lime_ir.Ir.SDouble)
      [| n; 2 |]
  in
  let pi = round 3.141592653589793 in
  let range = 2.0 in
  let dx = round (range /. float_of_int n_points) in
  for c = 0 to n - 1 do
    let ar = ref 0.0 and ai = ref 0.0 in
    for j = 0 to n_points - 1 do
      let x = round (round (float_of_int j +. round 0.5) *. dx) in
      let fx =
        round
          (round (round (x +. 1.0) ** x)
          +. round (get1 a c *. 0.0))
      in
      let w = round (round (float_of_int (c + 1) *. pi) *. x) in
      ar := round (!ar +. round (round (fx *. round (cos w)) *. dx));
      ai := round (!ai +. round (round (fx *. round (sin w)) *. dx))
    done;
    let set k v =
      Value.store out [ c; k ]
        (if single then Value.VFloat (f32 v) else Value.VDouble v)
    in
    set 0 !ar;
    set 1 !ai
  done;
  Value.VArr out

let hand = []

let single : Bench_def.t =
  mk ~name:"JG-Series (Single)" ~description:"Fourier coefficient analysis"
    ~source:(source_for ~ty:"float" ~suf:"f")
    ~worker:"Series.computeSeries" ~datatype:"Float"
    ~input:(fun ?(seed = 17) () ->
      input_of ~elem:Lime_ir.Ir.SFloat ~n:n_coeff ~seed ())
    ~input_small:(fun ?(seed = 17) () ->
      input_of ~elem:Lime_ir.Ir.SFloat ~n:n_coeff_small ~seed ())
    ~reference:(reference_of ~single:true)
    ~best_config:Memopt.config_global ~hand ()

let double : Bench_def.t =
  mk ~name:"JG-Series (Double)" ~description:"Fourier coefficient analysis"
    ~source:(source_for ~ty:"double" ~suf:"")
    ~worker:"Series.computeSeries" ~datatype:"Double" ~uses_double:true
    ~input:(fun ?(seed = 17) () ->
      input_of ~elem:Lime_ir.Ir.SDouble ~n:n_coeff ~seed ())
    ~input_small:(fun ?(seed = 17) () ->
      input_of ~elem:Lime_ir.Ir.SDouble ~n:n_coeff_small ~seed ())
    ~reference:(reference_of ~single:false)
    ~best_config:Memopt.config_global ~hand ()
