(** Parboil-RPES: Rys Polynomial Equation Solver (Table 3).

    The original benchmark evaluates two-electron repulsion integrals with
    Rys quadrature over shell-pair data.  We reproduce its *computational
    shape*: each output integral reads a sliding window of shell-pair rows
    (float4 records — good 2-D spatial locality across adjacent threads,
    which is why the GTX8800's hardware texture cache gives it a large win,
    §5.2) and evaluates exponential/square-root quadrature terms (heavy
    transcendental use → among the largest end-to-end speedups).

    Input ~12.8MB (819200 x 4 floats), output 4MB (1M floats); the >4MB
    buffers also trigger the OpenCL buffer-registration cost that the paper
    reports as the JG-RPES setup anomaly in Fig 9. *)

open Bench_def
module Value = Lime_ir.Value
module Memopt = Lime_gpu.Memopt

let n_shells = 819200
let n_out = 1048576
let n_shells_small = 512
let n_out_small = 1024

let source =
  {|
class RPES {
  static final int NOUT = 1048576;
  static final int W = 16;

  static final int ITERS = 8;

  static local float rysTerm(float a, float b, float t0) {
    // Rys-quadrature-style root refinement: an iterated exponential map
    float t = t0;
    float p = 0.0f;
    for (int it = 0; it < ITERS; it++) {
      float u = a * t;
      p += Math.exp(-u * u) * Math.rsqrt(b + t + 1.0f);
      t = t * 0.5f + 0.173f * Math.exp(-t);
    }
    return p;
  }

  static local float integralAt(float[[][4]] shells, int q) {
    int span = shells.length - W;
    int base = q % span;
    float acc = 0.0f;
    for (int j = 0; j < W; j++) {
      float alpha = shells[base + j][0];
      float beta  = shells[base + j][1];
      float coef  = shells[base + j][2];
      float dist  = shells[base + j][3];
      float t = dist * 0.125f;
      acc += coef * RPES.rysTerm(alpha, beta, t);
    }
    return acc;
  }

  static local float[[]] solve(float[[][4]] shells) {
    return RPES.integralAt(shells) @ Lime.range(NOUT);
  }

  static local float[[4]] genShell(int seed, int i) {
    int h = (i * 1000193 + seed) ^ (i >>> 3);
    float alpha = (float)((h & 4095) + 1) / 4096.0f;
    float beta  = (float)(((h >>> 12) & 4095) + 1) / 4096.0f;
    float coef  = (float)((h >>> 24) & 127) / 128.0f;
    float dist  = (float)(h & 1023) / 256.0f;
    return { alpha, beta, coef, dist };
  }
}

class RPESApp {
  int shells;
  float total;

  RPESApp(int count) {
    shells = count;
  }

  local float[[][4]] shellGen() {
    return RPES.genShell(31337) @ Lime.range(shells);
  }

  void collect(float[[]] integrals) {
    float t = 0.0f;
    for (int i = 0; i < integrals.length; i++) {
      t += integrals[i];
    }
    total = t;
  }

  static void main(int count, int steps) {
    (task RPESApp(count).shellGen
       => task RPES.solve
       => task RPESApp(count).collect).finish(steps);
  }
}
|}

let source_small =
  Str_replace.all ~from:"NOUT = 1048576" ~into:"NOUT = 1024" source

let input_of ~n ?(seed = 23) () : Value.t =
  rand_matrix ~seed ~rows:n ~cols:4 ~lo:0.01 ~hi:2.0 ()

let window = 16 (* W rows per integral; 8 refinement iterations each *)

let reference_of ~n_out (input : Value.t) : Value.t =
  let a = arr_of input in
  let n = a.Value.shape.(0) in
  let out = Value.make_arr ~is_value:true Lime_ir.Ir.SFloat [| n_out |] in
  let span = n - window in
  for q = 0 to n_out - 1 do
    let base = q mod span in
    let acc = ref 0.0 in
    for j = 0 to window - 1 do
      let alpha = get2 a (base + j) 0 in
      let beta = get2 a (base + j) 1 in
      let coef = get2 a (base + j) 2 in
      let dist = get2 a (base + j) 3 in
      let t = ref (f32 (dist *. f32 0.125)) in
      let p = ref 0.0 in
      for _ = 1 to 8 do
        let u = f32 (alpha *. !t) in
        p :=
          f32
            (!p
            +. f32
                 (f32 (exp (f32 (-.f32 (u *. u))))
                 *. f32 (1.0 /. sqrt (f32 (f32 (beta +. !t) +. 1.0)))));
        t :=
          f32
            (f32 (!t *. f32 0.5) +. f32 (f32 0.173 *. f32 (exp (f32 (-. !t)))))
      done;
      acc := f32 (!acc +. f32 (coef *. !p))
    done;
    Value.store out [ q ] (Value.VFloat (f32 !acc))
  done;
  Value.VArr out

let bench : Bench_def.t =
  mk ~name:"Parboil-RPES" ~description:"Rys Polynomial Equation Solver"
    ~source ~source_small ~worker:"RPES.solve" ~datatype:"Float"
    ~input:(fun ?(seed = 23) () -> input_of ~n:n_shells ~seed ())
    ~input_small:(fun ?(seed = 23) () -> input_of ~n:n_shells_small ~seed ())
    ~reference:(reference_of ~n_out:n_out_small)
    ~best_config:Memopt.config_image ~in_fig8:true
    ~hand:
      [
        (* hand-tuned for the GTX8800 by the Parboil authors (texture
           memory); those settings transfer less well to the newer cards *)
        ( "NVidia GeForce GTX 8800",
          { ht_config = Memopt.config_image; ht_factor = 0.95 } );
        ( "NVidia GeForce GTX 580",
          { ht_config = Memopt.config_image; ht_factor = 1.05 } );
        ( "AMD Radeon HD 5970",
          { ht_config = Memopt.config_image; ht_factor = 1.0 } );
      ]
    ()
