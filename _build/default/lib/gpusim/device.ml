(** Device models for the platforms of Table 2.

    The paper evaluates on four platforms; since this environment has no GPU
    (see DESIGN.md §2), each platform is modelled by the architectural
    parameters that explain the paper's results: SM/core counts, FP
    throughput (single and double), the memory spaces with their latencies
    and bank structure, caches (the GTX580's L1/L2 are what flatten Fig 8b),
    and the PCIe link used by the communication cost model. *)

type kind = Gpu | Cpu

type t = {
  name : string;
  kind : kind;
  (* compute *)
  sms : int;  (** streaming multiprocessors (GPU) or cores (CPU) *)
  fp32_lanes : int;  (** single-precision FP units per SM/core *)
  fp64_ratio : float;  (** double throughput / single throughput *)
  clock_ghz : float;
  warp : int;  (** SIMT width (GPU) or SIMD float lanes (CPU) *)
  threads_per_core : int;  (** hyperthreading factor (CPU) *)
  (* per-op costs, in issue slots per lane *)
  alu_cost : float;
  div_cost : float;
  sqrt_cost : float;
  trans_cost : float;  (** sin/cos/exp/log/pow via SFU or native_ *)
  (* memory system *)
  local_banks : int;
  local_cost : float;  (** cycles per conflict-free local access *)
  const_cost : float;  (** cycles per broadcast constant access *)
  tex_cost : float;  (** cycles per texture-cache hit *)
  tex_hit_rate : float;  (** for 2D-local access patterns *)
  global_bw_gbs : float;  (** device memory bandwidth *)
  global_lat_cycles : float;
  inflight_warps : int;
      (** warps an SM can keep in flight to hide memory latency *)
  has_l1 : bool;
  has_l2 : bool;
  l2_bytes : int;  (** unified L2 capacity (0 when absent) *)
  cache_hit_shared : float;
      (** L1/L2 hit rate for data re-read across threads (stream/broadcast
          patterns); 0 on cache-less GPUs *)
  (* host link *)
  pcie_gbs : float;
  launch_overhead_us : float;
  (* Table 2 informational fields *)
  info_const_mem : string;
  info_local_mem : string;
  info_l1 : string;
  info_l2 : string;
  info_l3 : string;
}

(* ------------------------------------------------------------------ *)
(* The four platforms of Table 2                                       *)
(* ------------------------------------------------------------------ *)

(** NVidia GeForce GTX 8800 (2006, G80): 16 SMs x 8 single-precision units,
    16 local banks, no double precision, no general-purpose caches — only
    the texture cache.  Uncoalesced or re-read global traffic is punishing,
    which is why memory placement matters up to 10x here (Fig 8a). *)
let gtx8800 =
  {
    name = "NVidia GeForce GTX 8800";
    kind = Gpu;
    sms = 16;
    fp32_lanes = 8;
    fp64_ratio = 0.1;  (* no fp64 hardware: software emulation *)
    clock_ghz = 1.35;
    warp = 32;
    threads_per_core = 1;
    alu_cost = 1.0;
    div_cost = 12.0;
    sqrt_cost = 16.0;
    trans_cost = 40.0;
    local_banks = 16;
    local_cost = 1.0;
    const_cost = 1.0;
    tex_cost = 2.0;
    tex_hit_rate = 0.90;
    global_bw_gbs = 86.4;
    inflight_warps = 16;
    global_lat_cycles = 500.0;
    has_l1 = false;
    has_l2 = false;
    cache_hit_shared = 0.0;
    l2_bytes = 0;
    pcie_gbs = 3.0;
    launch_overhead_us = 12.0;
    info_const_mem = "64KB";
    info_local_mem = "16x16KB";
    info_l1 = "-";
    info_l2 = "-";
    info_l3 = "-";
  }

(** NVidia GeForce GTX 580 (Fermi): 16 SMs x 32 single (16 double) units,
    configurable L1 plus a 768KB L2.  The caches soak up re-read global
    traffic, so performance is "less sensitive to memory optimizations"
    (Fig 8b) — modelled by [cache_hit_shared]. *)
let gtx580 =
  {
    name = "NVidia GeForce GTX 580";
    kind = Gpu;
    sms = 16;
    fp32_lanes = 32;
    fp64_ratio = 0.5;
    clock_ghz = 1.544;
    warp = 32;
    threads_per_core = 1;
    alu_cost = 1.0;
    div_cost = 8.0;
    sqrt_cost = 8.0;
    trans_cost = 24.0;
    local_banks = 32;
    local_cost = 1.0;
    const_cost = 1.0;
    tex_cost = 2.0;
    tex_hit_rate = 0.90;
    global_bw_gbs = 192.4;
    inflight_warps = 48;
    global_lat_cycles = 400.0;
    has_l1 = true;
    has_l2 = true;
    cache_hit_shared = 0.93;
    l2_bytes = 786432;
    pcie_gbs = 5.5;
    launch_overhead_us = 8.0;
    info_const_mem = "64KB";
    info_local_mem = "16x48KB";
    info_l1 = "16x16KB";
    info_l2 = "768KB";
    info_l3 = "-";
  }

(** AMD Radeon HD 5970 (Cypress x2): 20 SIMD engines x 80 single-precision
    lanes (VLIW5), strong raw throughput but VLIW packing inefficiency;
    texture cache but no general L1/L2 for compute. *)
let hd5970 =
  {
    name = "AMD Radeon HD 5970";
    kind = Gpu;
    sms = 20;
    fp32_lanes = 80;
    fp64_ratio = 0.67;  (* paper measures doubles ~1.5x slower *)
    clock_ghz = 0.725;
    warp = 64;  (* wavefront *)
    threads_per_core = 1;
    alu_cost = 2.2;  (* VLIW5 packing efficiency ~45% on scalar-ish code *)
    div_cost = 12.0;
    sqrt_cost = 14.0;
    trans_cost = 32.0;
    local_banks = 32;
    local_cost = 1.0;
    const_cost = 1.0;
    tex_cost = 2.0;
    tex_hit_rate = 0.88;
    global_bw_gbs = 256.0;
    inflight_warps = 24;
    global_lat_cycles = 500.0;
    has_l1 = false;
    has_l2 = false;
    cache_hit_shared = 0.35;  (* read-only texture path caches some reuse *)
    l2_bytes = 0;
    pcie_gbs = 5.0;
    launch_overhead_us = 10.0;
    info_const_mem = "64KB";
    info_local_mem = "20x32KB";
    info_l1 = "-";
    info_l2 = "-";
    info_l3 = "-";
  }

(** Intel Core i7-990X: 6 cores x 4-wide SSE, hyperthreaded, large caches.
    Used both as the multicore OpenCL target (Fig 7a) and, with
    [threads = 1], to model the single-core OpenCL run. *)
let core_i7 =
  {
    name = "Intel Core i7-990X";
    kind = Cpu;
    sms = 6;
    fp32_lanes = 4;  (* SSE single-precision lanes *)
    fp64_ratio = 0.5;
    clock_ghz = 3.46;
    warp = 4;
    threads_per_core = 2;
    alu_cost = 1.0;
    div_cost = 7.0;
    sqrt_cost = 7.0;
    trans_cost = 15.0;
    local_banks = 1;
    local_cost = 1.0;  (* local memory is just cached RAM on a CPU *)
    const_cost = 1.0;
    tex_cost = 1.0;
    tex_hit_rate = 1.0;
    global_bw_gbs = 25.6;
    inflight_warps = 64;
    global_lat_cycles = 200.0;
    has_l1 = true;
    has_l2 = true;
    cache_hit_shared = 0.98;
    l2_bytes = 12582912;
    pcie_gbs = 0.0;  (* shared memory: no transfer *)
    launch_overhead_us = 2.0;
    info_const_mem = "-";
    info_local_mem = "-";
    info_l1 = "6x64KB";
    info_l2 = "6x256KB";
    info_l3 = "12MB";
  }

let all = [ core_i7; gtx8800; gtx580; hd5970 ]

(** Peak single-precision throughput, operations per second. *)
let peak_flops d =
  float_of_int (d.sms * d.fp32_lanes) *. d.clock_ghz *. 1e9

(* ------------------------------------------------------------------ *)
(* The JVM "device": Lime compiled to bytecode, running on one core     *)
(* ------------------------------------------------------------------ *)

(** Cost weights for JIT-compiled bytecode on one i7 core.  Near native for
    plain arithmetic, but: no SIMD vectorization, array accesses pay bounds
    checks, [Math.*] transcendentals are strict double-precision software
    routines (the paper attributes the biggest OpenCL gains to "a faster
    implementation of the transcendental functions in OpenCL compared to
    Java"), and allocation pressure costs GC time. *)
type jvm_model = {
  jvm_clock_ghz : float;
  jvm_alu : float;
  jvm_div : float;
  jvm_sqrt : float;
  jvm_trans : float;  (** strict double transcendental *)
  jvm_mem : float;  (** array element access incl. bounds check *)
  jvm_field : float;
  jvm_branch : float;
  jvm_call : float;
  jvm_alloc_per_byte : float;
}

let jvm_default =
  {
    jvm_clock_ghz = 3.46;
    jvm_alu = 1.0;
    jvm_div = 8.0;
    jvm_sqrt = 8.0;
    jvm_trans = 60.0;
    jvm_mem = 1.4;
    jvm_field = 1.5;
    jvm_branch = 1.2;
    jvm_call = 5.0;
    jvm_alloc_per_byte = 0.4;
  }

(** Seconds for an operation-count profile executed as bytecode. *)
let jvm_time ?(m = jvm_default) (c : Lime_ir.Interp.counters) : float =
  let f = float_of_int in
  let cycles =
    (f c.Lime_ir.Interp.alu *. m.jvm_alu)
    +. (f c.divs *. m.jvm_div)
    +. (f c.sqrts *. m.jvm_sqrt)
    +. (f c.transcendentals *. m.jvm_trans)
    +. (f (c.mem_reads + c.mem_writes) *. m.jvm_mem)
    +. (f c.bounds_checks *. 0.8)
    +. (f c.field_accesses *. m.jvm_field)
    +. (f c.branches *. m.jvm_branch)
    +. (f c.calls *. m.jvm_call)
    +. (f c.alloc_bytes *. m.jvm_alloc_per_byte)
  in
  cycles /. (m.jvm_clock_ghz *. 1e9)
