(** Device models for the platforms of Table 2.

    Each platform is modelled by the architectural parameters that explain
    the paper's results: SM/core counts, FP throughput, memory spaces with
    banks and caches, and the PCIe link.  See DESIGN.md §2 for the
    substitution rationale. *)

type kind = Gpu | Cpu

type t = {
  name : string;
  kind : kind;
  sms : int;  (** streaming multiprocessors (GPU) or cores (CPU) *)
  fp32_lanes : int;  (** single-precision FP units per SM/core *)
  fp64_ratio : float;  (** double throughput / single throughput *)
  clock_ghz : float;
  warp : int;  (** SIMT width (GPU) or SIMD float lanes (CPU) *)
  threads_per_core : int;  (** hyperthreading factor (CPU) *)
  alu_cost : float;  (** issue slots per lane per op *)
  div_cost : float;
  sqrt_cost : float;
  trans_cost : float;  (** sin/cos/exp/log/pow via SFU or native_ *)
  local_banks : int;
  local_cost : float;
  const_cost : float;
  tex_cost : float;
  tex_hit_rate : float;
  global_bw_gbs : float;
  global_lat_cycles : float;
  inflight_warps : int;
      (** warps an SM can keep in flight to hide memory latency *)
  has_l1 : bool;
  has_l2 : bool;
  l2_bytes : int;  (** unified L2 capacity (0 when absent) *)
  cache_hit_shared : float;
      (** hit rate for data re-read across threads; 0 on cache-less GPUs *)
  pcie_gbs : float;
  launch_overhead_us : float;
  info_const_mem : string;
  info_local_mem : string;
  info_l1 : string;
  info_l2 : string;
  info_l3 : string;
}

val gtx8800 : t
(** NVidia GeForce GTX 8800 (G80): cache-less, 16 banks — placement
    matters up to ~10x here (Fig 8a). *)

val gtx580 : t
(** NVidia GeForce GTX 580 (Fermi): L1 + 768KB L2 flatten Fig 8b. *)

val hd5970 : t
(** AMD Radeon HD 5970 (Cypress x2): VLIW5, wavefront 64. *)

val core_i7 : t
(** Intel Core i7-990X, also the multicore OpenCL target of Fig 7a. *)

val all : t list

val peak_flops : t -> float
(** Peak single-precision throughput, operations per second. *)

(** Cost weights for JIT-compiled bytecode on one i7 core — the Fig 7
    baseline ("Lime compiled to bytecode"). *)
type jvm_model = {
  jvm_clock_ghz : float;
  jvm_alu : float;
  jvm_div : float;
  jvm_sqrt : float;
  jvm_trans : float;  (** strict double transcendental *)
  jvm_mem : float;  (** array element access incl. bounds check *)
  jvm_field : float;
  jvm_branch : float;
  jvm_call : float;
  jvm_alloc_per_byte : float;
}

val jvm_default : jvm_model

val jvm_time : ?m:jvm_model -> Lime_ir.Interp.counters -> float
(** Seconds for an operation-count profile executed as bytecode. *)
