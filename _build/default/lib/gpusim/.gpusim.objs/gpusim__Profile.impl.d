lib/gpusim/profile.ml: Array Buffer Float Hashtbl Int64 Lime_frontend Lime_gpu Lime_ir Lime_typecheck List Option Printf
