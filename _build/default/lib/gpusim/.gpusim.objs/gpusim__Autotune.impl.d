lib/gpusim/autotune.ml: Array Device Float Lime_gpu Lime_ir List Model Printf Profile String
