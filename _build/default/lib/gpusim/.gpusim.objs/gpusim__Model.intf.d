lib/gpusim/model.mli: Device Format Lime_ir Profile
