lib/gpusim/model.ml: Array Device Float Fmt Lime_ir Lime_support List Profile
