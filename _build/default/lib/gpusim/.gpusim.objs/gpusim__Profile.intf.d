lib/gpusim/profile.mli: Lime_gpu
