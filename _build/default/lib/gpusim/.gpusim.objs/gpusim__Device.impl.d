lib/gpusim/device.ml: Lime_ir
