lib/gpusim/autotune.mli: Device Lime_gpu Model
