lib/gpusim/device.mli: Lime_ir
