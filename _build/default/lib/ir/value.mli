(** Runtime values for the IR interpreter and the GPU simulator.

    Arrays are rectangular, flat and strided: indexing yields O(1) views
    sharing the buffer.  Single-precision [float]s are kept rounded to 32
    bits ({!f32}) so Lime [float] arithmetic agrees bit-for-bit with the
    simulated OpenCL device. *)

type buffer =
  | BInt of int array  (** int / byte / char / bool storage *)
  | BLong of int64 array
  | BFloat of float array  (** float and double storage *)

type arr = {
  elem : Ir.scalar;
  shape : int array;
  strides : int array;  (** in elements, row-major *)
  offset : int;
  buf : buffer;
  is_value : bool;
}

type obj = { cls : string; fields : (string, t) Hashtbl.t }

and task_node = {
  tk_desc : Ir.task_desc;
  tk_instance : obj option;  (** state of an instance worker *)
}

and t =
  | VUnit
  | VInt of int  (** int, byte, char and boolean (0/1), 32-bit semantics *)
  | VLong of int64
  | VFloat of float  (** single precision, kept rounded *)
  | VDouble of float
  | VArr of arr
  | VObj of obj
  | VGraph of task_node list  (** a (linear) task pipeline *)

(** {2 Numeric semantics} *)

val f32 : float -> float
(** Round to IEEE-754 single precision. *)

val i32 : int -> int
(** Normalize to Java 32-bit int semantics (wraparound). *)

val i8 : int -> int
(** Narrow to signed 8-bit (Java byte). *)

val u16 : int -> int
(** Narrow to unsigned 16-bit (Java char). *)

(** {2 Arrays} *)

exception Bounds of string

val elem_count : int array -> int
val strides_of : int array -> int array
val make_arr : ?is_value:bool -> Ir.scalar -> int array -> arr
val rank : arr -> int
val length : arr -> int
(** Outer dimension length. *)

val total_bytes : arr -> int

val check_bounds : arr -> int -> int -> unit
val flat_index : arr -> int array -> int
val get_scalar : arr -> int array -> t
val set_scalar : arr -> int array -> t -> unit

val view : arr -> int -> arr
(** Row view: drops the outermost dimension; O(1), shares storage. *)

val index : arr -> int list -> t
(** Partial indexing yields a view, full indexing a scalar; every index is
    bounds-checked (raises {!Bounds}). *)

val store : arr -> int list -> t -> unit
(** Scalar store at a full index, or a copying row store when [t] is an
    array and the index is partial. *)

val copy_into : dst:arr -> src:arr -> unit
val deep_copy : ?is_value:bool -> arr -> arr

(** {2 Conversions} *)

val of_float_array : ?is_value:bool -> ?elem:Ir.scalar -> float array -> arr
val of_int_array : ?is_value:bool -> ?elem:Ir.scalar -> int array -> arr

val of_float_matrix :
  ?is_value:bool -> ?elem:Ir.scalar -> int -> int -> float array -> arr
(** [of_float_matrix rows cols data] with [data] row-major. *)

val to_float_array : arr -> float array
val to_int_array : arr -> int array

(** {2 Display and comparison} *)

val to_string : t -> string

val approx_equal : ?rtol:float -> ?atol:float -> t -> t -> bool
(** Structural equality with float tolerance; [rtol = atol = 0.0] is exact
    (including shapes). *)
