(** Mid-level intermediate representation.

    Every Lime method body is lowered to this structured IR.  It serves three
    consumers:

    - the reference interpreter ({!Interp}) — the "bytecode" execution of the
      paper's baseline, also used for differential testing;
    - the kernel pipeline (lib/core) — kernel extraction, the memory
      optimizer's pattern matching (Fig 5) and OpenCL code generation;
    - the GPU simulator (lib/gpusim) — functional execution plus the
      device-timing model.

    Design notes.  Map ([@]) lowers to {!SParFor} with the map function
    inlined inside an {!SInlineBlock} (a lexically scoped early-return
    region).  Reduce ([!]) lowers to {!SReduce}.  Memory-space placement is
    *not* part of the IR: the optimizer produces a side table of
    {!placement}s keyed by array name, so the same IR executes identically
    under every placement — which is exactly the property the differential
    tests check. *)

type scalar = SInt | SFloat | SDouble | SByte | SLong | SBool | SChar

(** Dimension of an array type: compile-time bounded or dynamic. *)
type dimk = DFixed of int | DDyn

type aty = {
  elem : scalar;
  dims : dimk list;  (** outermost first; never empty *)
  value : bool;  (** deeply immutable (Lime value array) *)
}

type ty =
  | TScalar of scalar
  | TArr of aty
  | TObj of string
  | TTaskTy of ty * ty
  | TUnit

(** OpenCL memory spaces (paper §2, §4.2.1) plus the host heap. *)
type mem_space =
  | MGlobal
  | MLocal
  | MPrivate
  | MConstant
  | MImage
  | MHost

let mem_space_name = function
  | MGlobal -> "global"
  | MLocal -> "local"
  | MPrivate -> "private"
  | MConstant -> "constant"
  | MImage -> "image"
  | MHost -> "host"

(** Placement decision for one array, produced by the optimizer. *)
type placement = {
  space : mem_space;
  padded : bool;  (** bank-conflict padding applied (local memory) *)
  vector_width : int;  (** 1 = scalar accesses; 2/4/8/16 = vectorized *)
}

let default_placement = { space = MGlobal; padded = false; vector_width = 1 }

type const =
  | CInt of int
  | CLong of int64
  | CFloat of float  (** single precision; rounded at evaluation *)
  | CDouble of float
  | CBool of bool

type expr =
  | Const of const
  | Var of string
  | Bin of Lime_frontend.Ast.binop * scalar * expr * expr
      (** operand type after promotion; comparisons yield [SBool] *)
  | Un of Lime_frontend.Ast.unop * scalar * expr
  | Cast of scalar * scalar * expr  (** [(to, from, e)] *)
  | Load of expr * expr list
      (** base, indices; fewer indices than dimensions yields a view *)
  | Len of expr * int  (** array length of dimension [i] *)
  | Intrinsic of Lime_typecheck.Tast.builtin * scalar * expr list
  | CallF of string * expr list  (** static call, name ["Class.method"] *)
  | CallM of string * expr * expr list  (** instance call: name, receiver *)
  | FieldGet of expr * string
  | StaticGet of string * string  (** class, field *)
  | NewArr of aty * expr list  (** sizes of the leading dynamic dims *)
  | ArrLit of aty * expr list
  | NewObj of string * expr list
  | This
  | RangeE of expr  (** [Lime.range n] *)
  | ToValueE of expr  (** copying mutable→value conversion *)
  | TaskE of task_desc
  | ConnectE of expr * expr

and task_desc = {
  td_class : string;
  td_method : string;
  td_ctor : expr list option;
  td_isolated : bool;
  td_in : ty;
  td_out : ty;
}

type lval =
  | LVar of string
  | LField of expr * string
  | LStatic of string * string

type stmt =
  | SDecl of string * ty * expr option
  | SAssign of lval * expr
  | SArrStore of expr * expr list * expr  (** base, indices, value *)
  | SIf of expr * stmt list * stmt list
  | SWhile of expr * stmt list
  | SFor of string * expr * expr * stmt list
      (** canonical counted loop: [for (v = lo; v < hi; v++)] *)
  | SParFor of parfor
  | SReduce of reduce
  | SInlineBlock of string * stmt list
      (** early-return region: [SReturn e] inside assigns the named result
          variable and exits the region *)
  | SReturn of expr option
  | SExpr of expr
  | SBreak
  | SContinue
  | SFinish of expr * expr option  (** task graph, optional iteration count *)

and parfor = {
  pf_var : string;  (** parallel index variable *)
  pf_count : expr;
  pf_body : stmt list;
  pf_out : string option;  (** array collecting per-index results, if a map *)
}

and reduce = {
  rd_dst : string;  (** scalar destination variable (declared before) *)
  rd_op : Lime_typecheck.Tast.red_op;
  rd_scalar : scalar;
  rd_arr : expr;
}

type func = {
  fn_name : string;  (** qualified ["Class.method"] *)
  fn_class : string;
  fn_method : string;
  fn_params : (string * ty) list;
  fn_ret : ty;
  fn_body : stmt list;
  fn_static : bool;
  fn_local : bool;
}

type class_meta = {
  cm_name : string;
  cm_value : bool;
  cm_instance_fields : (string * ty) list;
  cm_static_fields : (string * ty * bool (* final *)) list;
}

type modul = {
  md_funcs : (string, func) Hashtbl.t;
  md_classes : (string, class_meta) Hashtbl.t;
  md_static_inits : (string * string * expr) list;
      (** class, field, initializer — evaluated at module load *)
  md_field_inits : (string * (string * expr) list) list;
      (** per-class instance field initializers, run before the constructor *)
}

let find_func md name = Hashtbl.find_opt md.md_funcs name
let qualify cls m = cls ^ "." ^ m

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let scalar_name = function
  | SInt -> "int"
  | SFloat -> "float"
  | SDouble -> "double"
  | SByte -> "byte"
  | SLong -> "long"
  | SBool -> "bool"
  | SChar -> "char"

let scalar_size_bytes = function
  | SByte | SBool -> 1
  | SChar -> 2
  | SInt | SFloat -> 4
  | SLong | SDouble -> 8

let rec ty_name = function
  | TScalar s -> scalar_name s
  | TArr a ->
      Printf.sprintf "%s%s%s" (scalar_name a.elem)
        (String.concat ""
           (List.map
              (function DFixed n -> Printf.sprintf "[%d]" n | DDyn -> "[]")
              a.dims))
        (if a.value then "v" else "")
  | TObj c -> c
  | TTaskTy (a, b) -> Printf.sprintf "task(%s=>%s)" (ty_name a) (ty_name b)
  | TUnit -> "void"

(** Number of elements of a fully fixed-shape array type, if known. *)
let static_elem_count (a : aty) =
  List.fold_left
    (fun acc d ->
      match (acc, d) with
      | Some n, DFixed k -> Some (n * k)
      | _ -> None)
    (Some 1) a.dims

(** Innermost dimension, if fixed. *)
let innermost_fixed (a : aty) =
  match List.rev a.dims with DFixed n :: _ -> Some n | _ -> None

(* ------------------------------------------------------------------ *)
(* Traversals                                                          *)
(* ------------------------------------------------------------------ *)

let rec iter_expr f (e : expr) =
  f e;
  match e with
  | Const _ | Var _ | This -> ()
  | Bin (_, _, a, b) | ConnectE (a, b) ->
      iter_expr f a;
      iter_expr f b
  | Un (_, _, a) | Cast (_, _, a) | Len (a, _) | FieldGet (a, _)
  | RangeE a | ToValueE a ->
      iter_expr f a
  | Load (b, idx) ->
      iter_expr f b;
      List.iter (iter_expr f) idx
  | Intrinsic (_, _, args) | CallF (_, args) | NewArr (_, args)
  | ArrLit (_, args) | NewObj (_, args) ->
      List.iter (iter_expr f) args
  | CallM (_, r, args) ->
      iter_expr f r;
      List.iter (iter_expr f) args
  | StaticGet _ -> ()
  | TaskE td -> (
      match td.td_ctor with
      | None -> ()
      | Some args -> List.iter (iter_expr f) args)

let rec iter_stmt ~(stmt : stmt -> unit) ~(expr : expr -> unit) (s : stmt) =
  stmt s;
  let fe = iter_expr expr in
  let fs = iter_stmt ~stmt ~expr in
  match s with
  | SDecl (_, _, None) | SBreak | SContinue | SReturn None -> ()
  | SDecl (_, _, Some e) | SReturn (Some e) | SExpr e -> fe e
  | SAssign (lv, e) ->
      (match lv with
      | LVar _ | LStatic _ -> ()
      | LField (r, _) -> fe r);
      fe e
  | SArrStore (b, idx, v) ->
      fe b;
      List.iter fe idx;
      fe v
  | SIf (c, a, b) ->
      fe c;
      List.iter fs a;
      List.iter fs b
  | SWhile (c, b) ->
      fe c;
      List.iter fs b
  | SFor (_, lo, hi, b) ->
      fe lo;
      fe hi;
      List.iter fs b
  | SParFor p ->
      fe p.pf_count;
      List.iter fs p.pf_body
  | SReduce r -> fe r.rd_arr
  | SInlineBlock (_, b) -> List.iter fs b
  | SFinish (g, n) ->
      fe g;
      Option.iter fe n

(* ------------------------------------------------------------------ *)
(* Pretty printing (for tests and --dump-ir)                           *)
(* ------------------------------------------------------------------ *)

let const_str = function
  | CInt i -> string_of_int i
  | CLong l -> Int64.to_string l ^ "L"
  | CFloat f -> Printf.sprintf "%gf" f
  | CDouble d -> Printf.sprintf "%g" d
  | CBool b -> string_of_bool b

let rec expr_str = function
  | Const c -> const_str c
  | Var v -> v
  | Bin (op, _, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_str a)
        (Lime_frontend.Ast.binop_name op)
        (expr_str b)
  | Un (op, _, a) ->
      Printf.sprintf "(%s%s)" (Lime_frontend.Ast.unop_name op) (expr_str a)
  | Cast (t, _, a) -> Printf.sprintf "(%s)%s" (scalar_name t) (expr_str a)
  | Load (b, idx) ->
      Printf.sprintf "%s%s" (expr_str b)
        (String.concat ""
           (List.map (fun i -> "[" ^ expr_str i ^ "]") idx))
  | Len (a, i) -> Printf.sprintf "len(%s,%d)" (expr_str a) i
  | Intrinsic (b, _, args) ->
      Printf.sprintf "%s(%s)"
        (Lime_typecheck.Tast.builtin_name b)
        (String.concat ", " (List.map expr_str args))
  | CallF (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_str args))
  | CallM (f, r, args) ->
      Printf.sprintf "%s.%s(%s)" (expr_str r) f
        (String.concat ", " (List.map expr_str args))
  | FieldGet (r, f) -> Printf.sprintf "%s.%s" (expr_str r) f
  | StaticGet (c, f) -> Printf.sprintf "%s::%s" c f
  | NewArr (a, sizes) ->
      Printf.sprintf "new %s(%s)" (ty_name (TArr a))
        (String.concat ", " (List.map expr_str sizes))
  | ArrLit (_, es) ->
      Printf.sprintf "{%s}" (String.concat ", " (List.map expr_str es))
  | NewObj (c, args) ->
      Printf.sprintf "new %s(%s)" c
        (String.concat ", " (List.map expr_str args))
  | This -> "this"
  | RangeE e -> Printf.sprintf "range(%s)" (expr_str e)
  | ToValueE e -> Printf.sprintf "toValue(%s)" (expr_str e)
  | TaskE td -> Printf.sprintf "task %s.%s" td.td_class td.td_method
  | ConnectE (a, b) -> Printf.sprintf "(%s => %s)" (expr_str a) (expr_str b)

let lval_str = function
  | LVar v -> v
  | LField (r, f) -> Printf.sprintf "%s.%s" (expr_str r) f
  | LStatic (c, f) -> Printf.sprintf "%s::%s" c f

let rec stmt_str ?(ind = 0) s =
  let pad = String.make ind ' ' in
  let block b = String.concat "\n" (List.map (stmt_str ~ind:(ind + 2)) b) in
  match s with
  | SDecl (v, t, None) -> Printf.sprintf "%s%s %s;" pad (ty_name t) v
  | SDecl (v, t, Some e) ->
      Printf.sprintf "%s%s %s = %s;" pad (ty_name t) v (expr_str e)
  | SAssign (lv, e) -> Printf.sprintf "%s%s = %s;" pad (lval_str lv) (expr_str e)
  | SArrStore (b, idx, v) ->
      Printf.sprintf "%s%s%s = %s;" pad (expr_str b)
        (String.concat "" (List.map (fun i -> "[" ^ expr_str i ^ "]") idx))
        (expr_str v)
  | SIf (c, a, []) ->
      Printf.sprintf "%sif %s {\n%s\n%s}" pad (expr_str c) (block a) pad
  | SIf (c, a, b) ->
      Printf.sprintf "%sif %s {\n%s\n%s} else {\n%s\n%s}" pad (expr_str c)
        (block a) pad (block b) pad
  | SWhile (c, b) ->
      Printf.sprintf "%swhile %s {\n%s\n%s}" pad (expr_str c) (block b) pad
  | SFor (v, lo, hi, b) ->
      Printf.sprintf "%sfor %s in [%s, %s) {\n%s\n%s}" pad v (expr_str lo)
        (expr_str hi) (block b) pad
  | SParFor p ->
      Printf.sprintf "%sparfor %s in [0, %s)%s {\n%s\n%s}" pad p.pf_var
        (expr_str p.pf_count)
        (match p.pf_out with None -> "" | Some o -> " -> " ^ o)
        (block p.pf_body) pad
  | SReduce r ->
      Printf.sprintf "%s%s = reduce[%s](%s);" pad r.rd_dst
        (match r.rd_op with
        | Lime_typecheck.Tast.RO_Binop op -> Lime_frontend.Ast.binop_name op
        | Lime_typecheck.Tast.RO_Method (c, m) -> c ^ "." ^ m
        | Lime_typecheck.Tast.RO_Builtin b -> Lime_typecheck.Tast.builtin_name b)
        (expr_str r.rd_arr)
  | SInlineBlock (res, b) ->
      Printf.sprintf "%sinline -> %s {\n%s\n%s}" pad res (block b) pad
  | SReturn None -> pad ^ "return;"
  | SReturn (Some e) -> Printf.sprintf "%sreturn %s;" pad (expr_str e)
  | SExpr e -> Printf.sprintf "%s%s;" pad (expr_str e)
  | SBreak -> pad ^ "break;"
  | SContinue -> pad ^ "continue;"
  | SFinish (g, None) -> Printf.sprintf "%sfinish %s;" pad (expr_str g)
  | SFinish (g, Some n) ->
      Printf.sprintf "%sfinish %s x %s;" pad (expr_str g) (expr_str n)

let func_str (f : func) =
  Printf.sprintf "%s %s(%s) {\n%s\n}" (ty_name f.fn_ret) f.fn_name
    (String.concat ", "
       (List.map (fun (v, t) -> ty_name t ^ " " ^ v) f.fn_params))
    (String.concat "\n" (List.map (stmt_str ~ind:2) f.fn_body))
