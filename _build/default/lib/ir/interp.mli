(** Reference interpreter for the IR — the "bytecode" execution engine of
    the reproduction (the JVM of the paper's evaluation), with operation
    counters that feed the Java cost model. *)

exception Runtime_error of string

type counters = {
  mutable alu : int;
  mutable divs : int;
  mutable sqrts : int;
  mutable transcendentals : int;
  mutable mem_reads : int;
  mutable mem_writes : int;
  mutable bounds_checks : int;
  mutable field_accesses : int;
  mutable branches : int;
  mutable calls : int;
  mutable alloc_bytes : int;
  mutable double_ops : int;
}

val fresh_counters : unit -> counters
val add_counters : counters -> counters -> unit

type state = {
  md : Ir.modul;
  statics : (string * string, Value.t ref) Hashtbl.t;
  counters : counters;
  mutable finish_hook : state -> Value.task_node list -> int option -> unit;
      (** invoked by [graph.finish(n)]; the task-graph runtime installs
          itself here (see [Lime_runtime.Engine.attach]) *)
  mutable print_hook : string -> unit;
}

type frame = { vars : (string, Value.t) Hashtbl.t; this : Value.obj option }

exception Return_exn of Value.t
exception Break_exn
exception Continue_exn

val default_value : Ir.ty -> Value.t

val eval : state -> frame -> Ir.expr -> Value.t
val exec : state -> frame -> Ir.stmt -> unit
val exec_list : state -> frame -> Ir.stmt list -> unit

val instantiate : state -> string -> Value.t list -> Value.obj
(** Allocate an object, run field initializers and the constructor. *)

val call_function :
  state -> string -> Value.obj option -> Value.t list -> Value.t
(** Invoke a function by qualified name (["Class.method"]). *)

val invoke : state -> Ir.func -> Value.obj option -> Value.t list -> Value.t

val create : Ir.modul -> state
(** Load a module: registers statics and runs their initializers. *)

val run : state -> cls:string -> meth:string -> Value.t list -> Value.t

val run_instance :
  state -> cls:string -> ctor_args:Value.t list -> meth:string ->
  Value.t list -> Value.t
(** Call an instance method on a freshly constructed instance. *)
