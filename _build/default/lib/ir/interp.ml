(** Reference interpreter for the IR — the "bytecode" execution engine.

    Plays the role of the JVM in the paper's evaluation: the end-to-end
    baseline runs whole programs here, and the differential test suite
    compares kernel results from the GPU simulator against this engine.

    The interpreter accumulates {!Counters} modelling the dynamic operation
    mix (ALU ops, memory traffic, transcendental calls, bounds checks,
    allocations).  A host cost model (lib/gpusim) converts the counters into
    a wall-clock estimate with Java-like weights — e.g. strict
    double-precision transcendentals are expensive, array accesses pay a
    bounds check — which is what gives Fig 7 its "faster OpenCL
    transcendentals" shape. *)

open Lime_frontend.Ast
module B = Lime_typecheck.Tast

exception Runtime_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Operation counters                                                  *)
(* ------------------------------------------------------------------ *)

type counters = {
  mutable alu : int;  (** add/sub/mul/compare/bit ops *)
  mutable divs : int;
  mutable sqrts : int;
  mutable transcendentals : int;  (** sin/cos/tan/exp/log/pow/atan2 *)
  mutable mem_reads : int;
  mutable mem_writes : int;
  mutable bounds_checks : int;
  mutable field_accesses : int;
  mutable branches : int;
  mutable calls : int;
  mutable alloc_bytes : int;
  mutable double_ops : int;  (** subset of the above executed in double *)
}

let fresh_counters () =
  {
    alu = 0;
    divs = 0;
    sqrts = 0;
    transcendentals = 0;
    mem_reads = 0;
    mem_writes = 0;
    bounds_checks = 0;
    field_accesses = 0;
    branches = 0;
    calls = 0;
    alloc_bytes = 0;
    double_ops = 0;
  }

let add_counters a b =
  a.alu <- a.alu + b.alu;
  a.divs <- a.divs + b.divs;
  a.sqrts <- a.sqrts + b.sqrts;
  a.transcendentals <- a.transcendentals + b.transcendentals;
  a.mem_reads <- a.mem_reads + b.mem_reads;
  a.mem_writes <- a.mem_writes + b.mem_writes;
  a.bounds_checks <- a.bounds_checks + b.bounds_checks;
  a.field_accesses <- a.field_accesses + b.field_accesses;
  a.branches <- a.branches + b.branches;
  a.calls <- a.calls + b.calls;
  a.alloc_bytes <- a.alloc_bytes + b.alloc_bytes;
  a.double_ops <- a.double_ops + b.double_ops

(* ------------------------------------------------------------------ *)
(* Interpreter state                                                   *)
(* ------------------------------------------------------------------ *)

type state = {
  md : Ir.modul;
  statics : (string * string, Value.t ref) Hashtbl.t;
  counters : counters;
  mutable finish_hook :
    state -> Value.task_node list -> int option -> unit;
  mutable print_hook : string -> unit;
}

type frame = {
  vars : (string, Value.t) Hashtbl.t;
  this : Value.obj option;
}

exception Return_exn of Value.t
exception Break_exn
exception Continue_exn

let default_value (t : Ir.ty) : Value.t =
  match t with
  | Ir.TScalar (Ir.SFloat) -> Value.VFloat 0.0
  | Ir.TScalar (Ir.SDouble) -> Value.VDouble 0.0
  | Ir.TScalar (Ir.SLong) -> Value.VLong 0L
  | Ir.TScalar _ -> Value.VInt 0
  | _ -> Value.VUnit

(* ------------------------------------------------------------------ *)
(* Scalar operations (with Java / OpenCL numeric semantics)            *)
(* ------------------------------------------------------------------ *)

let as_int = function
  | Value.VInt i -> i
  | Value.VLong l -> Int64.to_int l
  | v -> fail "expected an integer, found %s" (Value.to_string v)

let as_float = function
  | Value.VFloat f | Value.VDouble f -> f
  | Value.VInt i -> float_of_int i
  | Value.VLong l -> Int64.to_float l
  | v -> fail "expected a number, found %s" (Value.to_string v)

let as_bool = function
  | Value.VInt i -> i <> 0
  | v -> fail "expected a boolean, found %s" (Value.to_string v)

let as_arr = function
  | Value.VArr a -> a
  | v -> fail "expected an array, found %s" (Value.to_string v)

let eval_binop (op : binop) (s : Ir.scalar) (a : Value.t) (b : Value.t) :
    Value.t =
  let open Value in
  match s with
  | Ir.SFloat | Ir.SDouble ->
      let x = as_float a and y = as_float b in
      let wrap r = if s = Ir.SFloat then VFloat (f32 r) else VDouble r in
      (match op with
      | Add -> wrap (x +. y)
      | Sub -> wrap (x -. y)
      | Mul -> wrap (x *. y)
      | Div -> wrap (x /. y)
      | Mod -> wrap (Float.rem x y)
      | Lt -> VInt (if x < y then 1 else 0)
      | Le -> VInt (if x <= y then 1 else 0)
      | Gt -> VInt (if x > y then 1 else 0)
      | Ge -> VInt (if x >= y then 1 else 0)
      | Eq -> VInt (if x = y then 1 else 0)
      | Ne -> VInt (if x <> y then 1 else 0)
      | _ -> fail "invalid float operation %s" (binop_name op))
  | Ir.SLong ->
      let x =
        match a with VLong l -> l | VInt i -> Int64.of_int i | _ -> fail "long"
      and y =
        match b with VLong l -> l | VInt i -> Int64.of_int i | _ -> fail "long"
      in
      let open Int64 in
      (match op with
      | Add -> VLong (add x y)
      | Sub -> VLong (sub x y)
      | Mul -> VLong (mul x y)
      | Div ->
          if equal y 0L then fail "division by zero" else VLong (div x y)
      | Mod ->
          if equal y 0L then fail "division by zero" else VLong (rem x y)
      | Lt -> VInt (if compare x y < 0 then 1 else 0)
      | Le -> VInt (if compare x y <= 0 then 1 else 0)
      | Gt -> VInt (if compare x y > 0 then 1 else 0)
      | Ge -> VInt (if compare x y >= 0 then 1 else 0)
      | Eq -> VInt (if equal x y then 1 else 0)
      | Ne -> VInt (if equal x y then 0 else 1)
      | BitAnd -> VLong (logand x y)
      | BitOr -> VLong (logor x y)
      | BitXor -> VLong (logxor x y)
      | Shl -> VLong (shift_left x (to_int y land 63))
      | Shr -> VLong (shift_right x (to_int y land 63))
      | Ushr -> VLong (shift_right_logical x (to_int y land 63))
      | And | Or -> fail "logical op on long")
  | Ir.SBool ->
      let x = as_bool a and y = as_bool b in
      (match op with
      | And -> VInt (if x && y then 1 else 0)
      | Or -> VInt (if x || y then 1 else 0)
      | Eq -> VInt (if x = y then 1 else 0)
      | Ne -> VInt (if x <> y then 1 else 0)
      | _ -> fail "invalid boolean operation %s" (binop_name op))
  | Ir.SInt | Ir.SByte | Ir.SChar ->
      let x = as_int a and y = as_int b in
      (match op with
      | Add -> VInt (i32 (x + y))
      | Sub -> VInt (i32 (x - y))
      | Mul -> VInt (i32 (x * y))
      | Div -> if y = 0 then fail "division by zero" else VInt (i32 (x / y))
      | Mod -> if y = 0 then fail "division by zero" else VInt (i32 (x mod y))
      | Lt -> VInt (if x < y then 1 else 0)
      | Le -> VInt (if x <= y then 1 else 0)
      | Gt -> VInt (if x > y then 1 else 0)
      | Ge -> VInt (if x >= y then 1 else 0)
      | Eq -> VInt (if x = y then 1 else 0)
      | Ne -> VInt (if x <> y then 1 else 0)
      | BitAnd -> VInt (x land y)
      | BitOr -> VInt (x lor y)
      | BitXor -> VInt (x lxor y)
      | Shl -> VInt (i32 (x lsl (y land 31)))
      | Shr -> VInt (x asr (y land 31))
      | Ushr -> VInt (i32 ((x land 0xFFFFFFFF) lsr (y land 31)))
      | And | Or -> fail "logical op on int")

let eval_unop (op : unop) (s : Ir.scalar) (a : Value.t) : Value.t =
  let open Value in
  match (op, s) with
  | Neg, Ir.SFloat -> VFloat (f32 (-.as_float a))
  | Neg, Ir.SDouble -> VDouble (-.as_float a)
  | Neg, Ir.SLong ->
      VLong (Int64.neg (match a with VLong l -> l | _ -> fail "long"))
  | Neg, _ -> VInt (i32 (-as_int a))
  | Not, _ -> VInt (if as_bool a then 0 else 1)
  | BitNot, Ir.SLong ->
      VLong (Int64.lognot (match a with VLong l -> l | _ -> fail "long"))
  | BitNot, _ -> VInt (i32 (lnot (as_int a)))

let eval_cast (dst : Ir.scalar) (_src : Ir.scalar) (v : Value.t) : Value.t =
  let open Value in
  match dst with
  | Ir.SFloat -> VFloat (f32 (as_float v))
  | Ir.SDouble -> VDouble (as_float v)
  | Ir.SLong -> (
      match v with
      | VLong l -> VLong l
      | VInt i -> VLong (Int64.of_int i)
      | VFloat f | VDouble f -> VLong (Int64.of_float f)
      | _ -> fail "cast to long")
  | Ir.SInt -> (
      match v with
      | VInt i -> VInt (i32 i)
      | VLong l -> VInt (i32 (Int64.to_int l))
      | VFloat f | VDouble f ->
          VInt (i32 (int_of_float (Float.of_int (int_of_float f))))
      | _ -> fail "cast to int")
  | Ir.SByte -> VInt (i8 (as_int v))
  | Ir.SChar -> VInt (u16 (as_int v))
  | Ir.SBool -> VInt (if as_bool v then 1 else 0)

let eval_intrinsic (b : B.builtin) (s : Ir.scalar) (args : Value.t list)
    (st : state) : Value.t =
  let open Value in
  let wrap r = if s = Ir.SFloat then VFloat (f32 r) else VDouble r in
  let f1 g = match args with [ a ] -> wrap (g (as_float a)) | _ -> fail "arity" in
  let f2 g =
    match args with
    | [ a; b ] -> wrap (g (as_float a) (as_float b))
    | _ -> fail "arity"
  in
  match b with
  | B.BSqrt -> f1 sqrt
  | B.BSin -> f1 sin
  | B.BCos -> f1 cos
  | B.BTan -> f1 tan
  | B.BExp -> f1 exp
  | B.BLog -> f1 log
  | B.BFloor -> f1 Float.floor
  | B.BCeil -> f1 Float.ceil
  | B.BRsqrt -> f1 (fun x -> 1.0 /. sqrt x)
  | B.BPow -> f2 ( ** )
  | B.BAtan2 -> f2 atan2
  | B.BAbs -> (
      match (args, s) with
      | [ VInt i ], _ -> VInt (abs i)
      | [ VLong l ], _ -> VLong (Int64.abs l)
      | [ v ], Ir.SFloat -> VFloat (f32 (Float.abs (as_float v)))
      | [ v ], _ -> VDouble (Float.abs (as_float v))
      | _ -> fail "arity")
  | B.BMin -> (
      match (args, s) with
      | [ VInt a; VInt b ], _ -> VInt (min a b)
      | [ VLong a; VLong b ], _ -> VLong (if Int64.compare a b <= 0 then a else b)
      | [ a; b ], Ir.SFloat -> VFloat (f32 (Float.min (as_float a) (as_float b)))
      | [ a; b ], _ -> VDouble (Float.min (as_float a) (as_float b))
      | _ -> fail "arity")
  | B.BMax -> (
      match (args, s) with
      | [ VInt a; VInt b ], _ -> VInt (max a b)
      | [ VLong a; VLong b ], _ -> VLong (if Int64.compare a b >= 0 then a else b)
      | [ a; b ], Ir.SFloat -> VFloat (f32 (Float.max (as_float a) (as_float b)))
      | [ a; b ], _ -> VDouble (Float.max (as_float a) (as_float b))
      | _ -> fail "arity")
  | B.BPrint ->
      (match args with
      | [ v ] -> st.print_hook (Value.to_string v)
      | _ -> fail "arity");
      VUnit
  | B.BRange | B.BToValue -> fail "internal: range/toValue as intrinsic"

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

let is_double_scalar = function Ir.SDouble -> true | _ -> false

let rec eval st (fr : frame) (e : Ir.expr) : Value.t =
  let c = st.counters in
  match e with
  | Ir.Const (Ir.CInt i) -> Value.VInt i
  | Ir.Const (Ir.CLong l) -> Value.VLong l
  | Ir.Const (Ir.CFloat f) -> Value.VFloat (Value.f32 f)
  | Ir.Const (Ir.CDouble d) -> Value.VDouble d
  | Ir.Const (Ir.CBool b) -> Value.VInt (if b then 1 else 0)
  | Ir.Var v -> (
      match Hashtbl.find_opt fr.vars v with
      | Some x -> x
      | None -> fail "unbound variable '%s'" v)
  | Ir.Bin (op, s, a, b) ->
      c.alu <- c.alu + 1;
      if is_double_scalar s then c.double_ops <- c.double_ops + 1;
      (match op with Div | Mod -> c.divs <- c.divs + 1 | _ -> ());
      eval_binop op s (eval st fr a) (eval st fr b)
  | Ir.Un (op, s, a) ->
      c.alu <- c.alu + 1;
      eval_unop op s (eval st fr a)
  | Ir.Cast (dst, src, a) ->
      c.alu <- c.alu + 1;
      eval_cast dst src (eval st fr a)
  | Ir.Load (b, idx) ->
      let base = as_arr (eval st fr b) in
      let is = List.map (fun i -> as_int (eval st fr i)) idx in
      c.mem_reads <- c.mem_reads + 1;
      c.bounds_checks <- c.bounds_checks + List.length is;
      (try Value.index base is
       with Value.Bounds m -> fail "array access: %s" m)
  | Ir.Len (a, d) ->
      let arr = as_arr (eval st fr a) in
      if d >= Value.rank arr then fail "length of missing dimension %d" d;
      Value.VInt arr.Value.shape.(d)
  | Ir.Intrinsic (b, s, args) ->
      (match b with
      | B.BSin | B.BCos | B.BTan | B.BExp | B.BLog | B.BPow | B.BAtan2 ->
          c.transcendentals <- c.transcendentals + 1
      | B.BSqrt | B.BRsqrt -> c.sqrts <- c.sqrts + 1
      | _ -> c.alu <- c.alu + 1);
      if is_double_scalar s then c.double_ops <- c.double_ops + 1;
      eval_intrinsic b s (List.map (eval st fr) args) st
  | Ir.CallF (name, args) ->
      c.calls <- c.calls + 1;
      let vargs = List.map (eval st fr) args in
      call_function st name None vargs
  | Ir.CallM (name, recv, args) ->
      c.calls <- c.calls + 1;
      let vrecv = eval st fr recv in
      let obj =
        match vrecv with
        | Value.VObj o -> o
        | v -> fail "instance call on %s" (Value.to_string v)
      in
      let vargs = List.map (eval st fr) args in
      call_function st name (Some obj) vargs
  | Ir.FieldGet (r, f) -> (
      c.field_accesses <- c.field_accesses + 1;
      let obj =
        match eval st fr r with
        | Value.VObj o -> o
        | Value.VUnit -> (
            match fr.this with
            | Some o -> o
            | None -> fail "field access without receiver")
        | v -> fail "field access on %s" (Value.to_string v)
      in
      match Hashtbl.find_opt obj.Value.fields f with
      | Some v -> v
      | None -> fail "unknown field '%s' of %s" f obj.Value.cls)
  | Ir.StaticGet (cls, f) -> (
      c.field_accesses <- c.field_accesses + 1;
      match Hashtbl.find_opt st.statics (cls, f) with
      | Some r -> !r
      | None -> fail "unknown static field %s.%s" cls f)
  | Ir.NewArr (aty, sizes) ->
      let svals = List.map (fun s -> as_int (eval st fr s)) sizes in
      let shape = resolve_shape aty svals in
      let a = Value.make_arr ~is_value:aty.Ir.value aty.Ir.elem shape in
      c.alloc_bytes <- c.alloc_bytes + Value.total_bytes a;
      Value.VArr a
  | Ir.ArrLit (aty, es) ->
      let vs = List.map (eval st fr) es in
      let n = List.length vs in
      (match vs with
      | Value.VArr first :: _ ->
          let shape = Array.append [| n |] first.Value.shape in
          let a = Value.make_arr ~is_value:aty.Ir.value aty.Ir.elem shape in
          c.alloc_bytes <- c.alloc_bytes + Value.total_bytes a;
          List.iteri (fun i v -> Value.store a [ i ] v) vs;
          Value.VArr a
      | _ ->
          let a = Value.make_arr ~is_value:aty.Ir.value aty.Ir.elem [| n |] in
          c.alloc_bytes <- c.alloc_bytes + Value.total_bytes a;
          List.iteri
            (fun i v ->
              c.mem_writes <- c.mem_writes + 1;
              Value.store a [ i ] v)
            vs;
          Value.VArr a)
  | Ir.NewObj (cls, args) ->
      let vargs = List.map (eval st fr) args in
      Value.VObj (instantiate st cls vargs)
  | Ir.This -> (
      match fr.this with
      | Some o -> Value.VObj o
      | None -> fail "'this' outside an instance method")
  | Ir.RangeE n ->
      let n = as_int (eval st fr n) in
      if n < 0 then fail "Lime.range: negative size %d" n;
      let a = Value.make_arr ~is_value:true Ir.SInt [| n |] in
      (match a.Value.buf with
      | Value.BInt b -> Array.iteri (fun i _ -> b.(i) <- i) b
      | _ -> assert false);
      c.alloc_bytes <- c.alloc_bytes + Value.total_bytes a;
      Value.VArr a
  | Ir.ToValueE a ->
      let arr = as_arr (eval st fr a) in
      let n = Value.elem_count arr.Value.shape in
      c.mem_reads <- c.mem_reads + n;
      c.mem_writes <- c.mem_writes + n;
      c.alloc_bytes <- c.alloc_bytes + Value.total_bytes arr;
      Value.VArr (Value.deep_copy ~is_value:true arr)
  | Ir.TaskE td ->
      let instance =
        match td.Ir.td_ctor with
        | None -> None
        | Some args ->
            let vargs = List.map (eval st fr) args in
            Some (instantiate st td.Ir.td_class vargs)
      in
      Value.VGraph [ { Value.tk_desc = td; tk_instance = instance } ]
  | Ir.ConnectE (a, b) -> (
      match (eval st fr a, eval st fr b) with
      | Value.VGraph x, Value.VGraph y -> Value.VGraph (x @ y)
      | _ -> fail "'=>' on non-task values")

and resolve_shape (aty : Ir.aty) (sizes : int list) : int array =
  let sizes = ref sizes in
  let dim = function
    | Ir.DFixed n -> n
    | Ir.DDyn -> (
        match !sizes with
        | s :: rest ->
            sizes := rest;
            s
        | [] -> fail "missing dimension size in array creation")
  in
  let shape = Array.of_list (List.map dim aty.Ir.dims) in
  Array.iter (fun s -> if s < 0 then fail "negative array size %d" s) shape;
  shape

and instantiate st cls (args : Value.t list) : Value.obj =
  let meta =
    match Hashtbl.find_opt st.md.Ir.md_classes cls with
    | Some m -> m
    | None -> fail "unknown class %s" cls
  in
  let obj = { Value.cls; fields = Hashtbl.create 8 } in
  List.iter
    (fun (f, t) -> Hashtbl.replace obj.Value.fields f (default_value t))
    meta.Ir.cm_instance_fields;
  (* field initializers run with [this] bound, before the constructor *)
  (match List.assoc_opt cls st.md.Ir.md_field_inits with
  | None -> ()
  | Some inits ->
      let fr = { vars = Hashtbl.create 4; this = Some obj } in
      List.iter
        (fun (f, e) -> Hashtbl.replace obj.Value.fields f (eval st fr e))
        inits);
  (match Ir.find_func st.md (Ir.qualify cls "<init>") with
  | Some ctor -> ignore (invoke st ctor (Some obj) args)
  | None ->
      if args <> [] then fail "class %s has no constructor" cls);
  obj

and call_function st name (this : Value.obj option) (args : Value.t list) :
    Value.t =
  match Ir.find_func st.md name with
  | None -> fail "unknown function %s" name
  | Some f -> invoke st f this args

and invoke st (f : Ir.func) (this : Value.obj option) (args : Value.t list) :
    Value.t =
  if List.length args <> List.length f.Ir.fn_params then
    fail "%s: arity mismatch" f.Ir.fn_name;
  let fr = { vars = Hashtbl.create 16; this } in
  List.iter2
    (fun (p, _) v -> Hashtbl.replace fr.vars p v)
    f.Ir.fn_params args;
  try
    exec_list st fr f.Ir.fn_body;
    Value.VUnit
  with Return_exn v -> v

(* ------------------------------------------------------------------ *)
(* Statement execution                                                 *)
(* ------------------------------------------------------------------ *)

and exec_list st fr stmts = List.iter (exec st fr) stmts

and exec st (fr : frame) (s : Ir.stmt) : unit =
  let c = st.counters in
  match s with
  | Ir.SDecl (v, t, init) ->
      let value =
        match init with Some e -> eval st fr e | None -> default_value t
      in
      Hashtbl.replace fr.vars v value
  | Ir.SAssign (Ir.LVar v, e) -> Hashtbl.replace fr.vars v (eval st fr e)
  | Ir.SAssign (Ir.LField (r, f), e) ->
      c.field_accesses <- c.field_accesses + 1;
      let obj =
        match eval st fr r with
        | Value.VObj o -> o
        | v -> fail "field store on %s" (Value.to_string v)
      in
      Hashtbl.replace obj.Value.fields f (eval st fr e)
  | Ir.SAssign (Ir.LStatic (cls, f), e) -> (
      c.field_accesses <- c.field_accesses + 1;
      match Hashtbl.find_opt st.statics (cls, f) with
      | Some r -> r := eval st fr e
      | None -> fail "unknown static field %s.%s" cls f)
  | Ir.SArrStore (b, idx, v) ->
      let base = as_arr (eval st fr b) in
      let is = List.map (fun i -> as_int (eval st fr i)) idx in
      let value = eval st fr v in
      c.mem_writes <- c.mem_writes + 1;
      c.bounds_checks <- c.bounds_checks + List.length is;
      (try Value.store base is value
       with Value.Bounds m -> fail "array store: %s" m)
  | Ir.SIf (cond, a, b) ->
      c.branches <- c.branches + 1;
      if as_bool (eval st fr cond) then exec_list st fr a
      else exec_list st fr b
  | Ir.SWhile (cond, body) -> (
      try
        while as_bool (eval st fr cond) do
          c.branches <- c.branches + 1;
          try exec_list st fr body with Continue_exn -> ()
        done
      with Break_exn -> ())
  | Ir.SFor (v, lo, hi, body) -> (
      let lo = as_int (eval st fr lo) and hi = as_int (eval st fr hi) in
      try
        for i = lo to hi - 1 do
          c.branches <- c.branches + 1;
          Hashtbl.replace fr.vars v (Value.VInt i);
          try exec_list st fr body with Continue_exn -> ()
        done
      with Break_exn -> ())
  | Ir.SParFor p ->
      (* sequential reference semantics for the data-parallel loop *)
      let n = as_int (eval st fr p.Ir.pf_count) in
      for i = 0 to n - 1 do
        c.branches <- c.branches + 1;
        Hashtbl.replace fr.vars p.Ir.pf_var (Value.VInt i);
        exec_list st fr p.Ir.pf_body
      done
  | Ir.SReduce r ->
      let arr = as_arr (eval st fr r.Ir.rd_arr) in
      let n = Value.length arr in
      if n = 0 then fail "reduction over an empty array";
      c.mem_reads <- c.mem_reads + n;
      c.alu <- c.alu + n;
      let combine acc v =
        match r.Ir.rd_op with
        | B.RO_Binop op -> eval_binop op r.Ir.rd_scalar acc v
        | B.RO_Builtin b -> eval_intrinsic b r.Ir.rd_scalar [ acc; v ] st
        | B.RO_Method (cls, m) ->
            call_function st (Ir.qualify cls m) None [ acc; v ]
      in
      let acc = ref (Value.index arr [ 0 ]) in
      for i = 1 to n - 1 do
        acc := combine !acc (Value.index arr [ i ])
      done;
      Hashtbl.replace fr.vars r.Ir.rd_dst !acc
  | Ir.SInlineBlock (res, body) -> (
      try exec_list st fr body
      with Return_exn v -> Hashtbl.replace fr.vars res v)
  | Ir.SReturn None -> raise (Return_exn Value.VUnit)
  | Ir.SReturn (Some e) -> raise (Return_exn (eval st fr e))
  | Ir.SExpr e -> ignore (eval st fr e)
  | Ir.SBreak -> raise Break_exn
  | Ir.SContinue -> raise Continue_exn
  | Ir.SFinish (g, n) -> (
      let graph =
        match eval st fr g with
        | Value.VGraph ts -> ts
        | v -> fail "finish on %s" (Value.to_string v)
      in
      let iters = Option.map (fun e -> as_int (eval st fr e)) n in
      st.finish_hook st graph iters)

(* ------------------------------------------------------------------ *)
(* State construction and entry points                                 *)
(* ------------------------------------------------------------------ *)

let create (md : Ir.modul) : state =
  let st =
    {
      md;
      statics = Hashtbl.create 16;
      counters = fresh_counters ();
      finish_hook =
        (fun _ _ _ ->
          fail "finish(): no task-graph runtime attached (use Lime_runtime)");
      print_hook = print_endline;
    }
  in
  (* register every static field with its default, then run initializers *)
  Hashtbl.iter
    (fun _ (cm : Ir.class_meta) ->
      List.iter
        (fun (f, t, _) ->
          Hashtbl.replace st.statics (cm.Ir.cm_name, f) (ref (default_value t)))
        cm.Ir.cm_static_fields)
    md.Ir.md_classes;
  let fr = { vars = Hashtbl.create 4; this = None } in
  List.iter
    (fun (cls, f, e) ->
      match Hashtbl.find_opt st.statics (cls, f) with
      | Some r -> r := eval st fr e
      | None -> fail "internal: missing static %s.%s" cls f)
    md.Ir.md_static_inits;
  st

(** Call [Class.method] with the given values. *)
let run st ~cls ~meth (args : Value.t list) : Value.t =
  call_function st (Ir.qualify cls meth) None args

(** Call an instance method on a fresh instance. *)
let run_instance st ~cls ~ctor_args ~meth (args : Value.t list) : Value.t =
  let obj = instantiate st cls ctor_args in
  call_function st (Ir.qualify cls meth) (Some obj) args
