(** Lowering from the typed AST to the mid-level IR.

    Key transformations:

    - [f(captured...) @ arr] → {!Ir.SParFor} over the array with the body of
      [f] inlined inside an {!Ir.SInlineBlock} (captured arguments are
      evaluated once, before the loop);
    - [g ! arr] → {!Ir.SReduce};
    - canonical counted loops ([for (int i = a; i < b; i++)]) are recognized
      and become {!Ir.SFor}, which is what the memory optimizer's loop
      patterns (Fig 5) match on; other [for] forms desugar to [while];
    - compound expressions with effects are flattened: [lower_expr] appends
      prelude statements to an accumulator and returns a pure expression.

    Lowering is semantics-preserving by construction; the differential tests
    (interpreter vs simulator vs reference implementations) rely on it. *)

open Lime_support
open Lime_frontend.Ast
open Lime_typecheck.Tast
module T = Lime_typecheck.Tast

let err ~loc fmt = Diag.error ~phase:Diag.Lowering ~loc fmt

let scalar_of_prim = function
  | PInt -> Ir.SInt
  | PFloat -> Ir.SFloat
  | PDouble -> Ir.SDouble
  | PByte -> Ir.SByte
  | PLong -> Ir.SLong
  | PBoolean -> Ir.SBool
  | PChar -> Ir.SChar

let dimk_of_dim = function
  | DimDyn -> Ir.DDyn
  | DimValUnbounded -> Ir.DDyn
  | DimValBounded n -> Ir.DFixed n

let rec lower_ty (t : ty) : Ir.ty =
  match t with
  | TPrim p -> Ir.TScalar (scalar_of_prim p)
  | TVoid -> Ir.TUnit
  | TNamed c -> Ir.TObj c
  | TTask (a, b) -> Ir.TTaskTy (lower_ty a, lower_ty b)
  | TArray _ -> (
      let base = base_ty t and dims = dims_of t in
      match base with
      | TPrim p ->
          let value =
            List.for_all (function DimDyn -> false | _ -> true) dims
          in
          Ir.TArr
            {
              elem = scalar_of_prim p;
              dims = List.map dimk_of_dim dims;
              value;
            }
      | _ -> failwith "arrays of objects are not supported")

let aty_of_ty ~loc (t : ty) : Ir.aty =
  match lower_ty t with
  | Ir.TArr a -> a
  | _ -> err ~loc "expected an array type, found %s" (ty_to_string t)

let scalar_of_ty ~loc (t : ty) : Ir.scalar =
  match lower_ty t with
  | Ir.TScalar s -> s
  | _ -> err ~loc "expected a scalar type, found %s" (ty_to_string t)

(* ------------------------------------------------------------------ *)
(* Lowering environment                                                *)
(* ------------------------------------------------------------------ *)

type env = {
  prog : T.tprogram;
  mutable acc : Ir.stmt list;  (** reversed prelude statements *)
  mutable rename : (string * string) list;
      (** source variable → IR variable (supports hygienic inlining) *)
  mutable counter : int;
  this_expr : Ir.expr option;  (** receiver of the method being lowered *)
  mutable inline_depth : int;
}

let fresh env prefix =
  env.counter <- env.counter + 1;
  Printf.sprintf "%%%s%d" prefix env.counter

let emit env s = env.acc <- s :: env.acc

(** Run [f] collecting its emitted statements separately. *)
let collect env f =
  let saved = env.acc in
  env.acc <- [];
  let result = f () in
  let stmts = List.rev env.acc in
  env.acc <- saved;
  (stmts, result)

let rename_var env v =
  match List.assoc_opt v env.rename with Some v' -> v' | None -> v

let with_renames env pairs f =
  let saved = env.rename in
  env.rename <- pairs @ env.rename;
  let r = f () in
  env.rename <- saved;
  r

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let lower_const (l : lit) : Ir.const =
  match l with
  | LInt i -> Ir.CInt (Int64.to_int i)
  | LFloat f -> Ir.CFloat f
  | LDouble d -> Ir.CDouble d
  | LBool b -> Ir.CBool b
  | LChar c -> Ir.CInt (Char.code c)
  | LString _ -> Ir.CInt 0 (* strings only appear in Lime.print on the host *)
  | LNull -> Ir.CInt 0

let rec lower_expr env (e : texpr) : Ir.expr =
  let loc = e.tloc in
  match e.te with
  | TLit l -> Ir.Const (lower_const l)
  | TLocal v -> Ir.Var (rename_var env v)
  | TThis -> (
      match env.this_expr with Some t -> t | None -> Ir.This)
  | TBinop (((And | Or) as op), a, b) ->
      (* Java short-circuit semantics: the right operand must not evaluate
         when the left decides the result *)
      let v = fresh env "sc" in
      emit env (Ir.SDecl (v, Ir.TScalar Ir.SBool, None));
      let ea = lower_expr env a in
      let sb, eb = collect env (fun () -> lower_expr env b) in
      let assign e = [ Ir.SAssign (Ir.LVar v, e) ] in
      (match op with
      | And ->
          emit env
            (Ir.SIf (ea, sb @ assign eb, assign (Ir.Const (Ir.CBool false))))
      | Or ->
          emit env
            (Ir.SIf (ea, assign (Ir.Const (Ir.CBool true)), sb @ assign eb))
      | _ -> assert false);
      Ir.Var v
  | TBinop (op, a, b) ->
      let s =
        match (op, a.ety) with
        | (Lt | Le | Gt | Ge | Eq | Ne), t -> scalar_of_operand ~loc t
        | _, t -> scalar_of_operand ~loc t
      in
      Ir.Bin (op, s, lower_expr env a, lower_expr env b)
  | TUnop (op, a) ->
      Ir.Un (op, scalar_of_operand ~loc a.ety, lower_expr env a)
  | TCond (c, a, b) ->
      (* lower via if-statement so both arms stay lazily evaluated *)
      let v = fresh env "cond" in
      let tv = lower_ty a.ety in
      emit env (Ir.SDecl (v, tv, None));
      let cE = lower_expr env c in
      let sa, ea = collect env (fun () -> lower_expr env a) in
      let sb, eb = collect env (fun () -> lower_expr env b) in
      emit env
        (Ir.SIf
           ( cE,
             sa @ [ Ir.SAssign (Ir.LVar v, ea) ],
             sb @ [ Ir.SAssign (Ir.LVar v, eb) ] ));
      Ir.Var v
  | TIndex (a, i) -> (
      let ea = lower_expr env a in
      let ei = lower_expr env i in
      (* merge chained loads into one multi-index load *)
      match ea with
      | Ir.Load (b, idx) -> Ir.Load (b, idx @ [ ei ])
      | _ -> Ir.Load (ea, [ ei ]))
  | TArrayLen a -> (
      let ea = lower_expr env a in
      match ea with
      | Ir.Load (b, idx) -> Ir.Len (Ir.Load (b, idx), 0)
      | _ -> Ir.Len (ea, 0))
  | TFieldStatic (c, f) -> Ir.StaticGet (c, f)
  | TFieldInstance (r, f) -> Ir.FieldGet (lower_expr env r, f)
  | TCallStatic (c, m, args) ->
      Ir.CallF (Ir.qualify c m, List.map (lower_expr env) args)
  | TCallInstance (r, m, args) ->
      let er = lower_expr env r in
      let cls =
        match r.ety with
        | TNamed c -> c
        | _ -> err ~loc "instance call on non-object"
      in
      Ir.CallM (Ir.qualify cls m, er, List.map (lower_expr env) args)
  | TCallBuiltin (BRange, [ n ]) -> Ir.RangeE (lower_expr env n)
  | TCallBuiltin (BToValue, [ a ]) -> Ir.ToValueE (lower_expr env a)
  | TCallBuiltin (b, args) ->
      let s =
        match e.ety with
        | TVoid -> Ir.SInt
        | t -> scalar_of_operand ~loc t
      in
      Ir.Intrinsic (b, s, List.map (lower_expr env) args)
  | TNewArray (t, sizes) ->
      Ir.NewArr (aty_of_ty ~loc t, List.map (lower_expr env) sizes)
  | TNewObject (c, args) -> Ir.NewObj (c, List.map (lower_expr env) args)
  | TArrayLit es ->
      Ir.ArrLit (aty_of_ty ~loc e.ety, List.map (lower_expr env) es)
  | TCast (t, a) ->
      Ir.Cast
        (scalar_of_ty ~loc t, scalar_of_operand ~loc:a.tloc a.ety,
         lower_expr env a)
  | TMap (info, captured, arr) -> lower_map env ~loc info captured arr e.ety
  | TReduce (info, arr) -> lower_reduce env ~loc info arr
  | TTaskE tr -> lower_task env ~loc tr
  | TConnect (a, b) -> Ir.ConnectE (lower_expr env a, lower_expr env b)
  | TFinish _ -> err ~loc "finish() can only be used as a statement"

and scalar_of_operand ~loc (t : ty) : Ir.scalar =
  match t with
  | TPrim p -> scalar_of_prim p
  | _ -> err ~loc "expected a scalar operand, found %s" (ty_to_string t)

(** Lower [f(captured) @ arr].  The result is a fresh array [out]; the loop
    body inlines [f] hygienically. *)
and lower_map env ~loc (info : map_info) captured (arr : texpr) (result_ty : ty)
    : Ir.expr =
  if env.inline_depth > 8 then
    err ~loc "map nesting too deep (recursive map function?)";
  let m =
    match T.find_method env.prog info.mi_class info.mi_method with
    | Some m -> m
    | None -> err ~loc "internal: unknown map function"
  in
  (* evaluate the array operand and captured arguments once.  Mapping over
     [Lime.range n] is special-cased: no index array is materialized and the
     element is the parallel index itself — the idiomatic way to build value
     arrays procedurally. *)
  let arr_e = lower_expr env arr in
  let over_range, arr_v =
    match arr_e with
    | Ir.RangeE n ->
        let n_v = fresh env "n" in
        emit env (Ir.SDecl (n_v, Ir.TScalar Ir.SInt, Some n));
        (Some n_v, "")
    | _ ->
        let arr_v = fresh env "maparr" in
        emit env (Ir.SDecl (arr_v, lower_ty arr.ety, Some arr_e));
        (None, arr_v)
  in
  let cap_vars =
    List.map
      (fun (c : texpr) ->
        let v = fresh env "cap" in
        emit env (Ir.SDecl (v, lower_ty c.ety, Some (lower_expr env c)));
        v)
      captured
  in
  let n_v =
    match over_range with
    | Some n_v -> n_v
    | None ->
        let n_v = fresh env "n" in
        emit env
          (Ir.SDecl (n_v, Ir.TScalar Ir.SInt, Some (Ir.Len (Ir.Var arr_v, 0))));
        n_v
  in
  (* output array: out[i] holds f(arr[i]).  The outer dimension is static
     when mapping over a constant-bound range — independent of any widening
     applied to the expression's declared type. *)
  let out_aty =
    let declared = aty_of_ty ~loc result_ty in
    let outer =
      match List.hd declared.Ir.dims with
      | Ir.DFixed k -> Ir.DFixed k
      | Ir.DDyn -> (
          match over_range with
          | Some n_v -> (
              (* recover the constant if the range bound was a literal *)
              let bound = ref Ir.DDyn in
              List.iter
                (fun s ->
                  match s with
                  | Ir.SDecl (v, _, Some (Ir.Const (Ir.CInt k))) when v = n_v
                    ->
                      bound := Ir.DFixed k
                  | _ -> ())
                (List.rev env.acc);
              !bound)
          | None -> Ir.DDyn)
    in
    let inner =
      match lower_ty m.tm_ret with
      | Ir.TScalar _ -> []
      | Ir.TArr a -> a.Ir.dims
      | _ -> err ~loc "map function must return a value type"
    in
    { declared with Ir.dims = outer :: inner }
  in
  let out_v = fresh env "mapout" in
  (* rows with inner dimensions unknown at this point (the map function
     returns an unbounded array) defer allocation to the first iteration,
     when the first row's lengths are observable *)
  let inner_dyn_dims =
    match out_aty.Ir.dims with
    | _ :: inner ->
        List.filteri (fun _ d -> d = Ir.DDyn) inner |> List.length
    | [] -> 0
  in
  let deferred_alloc = inner_dyn_dims > 0 in
  if deferred_alloc then emit env (Ir.SDecl (out_v, Ir.TArr out_aty, None))
  else
    emit env
      (Ir.SDecl
         ( out_v,
           Ir.TArr out_aty,
           Some (Ir.NewArr (out_aty, [ Ir.Var n_v ])) ));
  let idx_v = fresh env "pi" in
  let body, _ =
    collect env (fun () ->
        let elem_v =
          match over_range with
          | Some _ -> idx_v (* the element *is* the parallel index *)
          | None ->
              let elem_v = fresh env "elem" in
              emit env
                (Ir.SDecl
                   ( elem_v,
                     lower_ty info.mi_elem_ty,
                     Some (Ir.Load (Ir.Var arr_v, [ Ir.Var idx_v ])) ));
              elem_v
        in
        (* bind parameters: leading = captured, last = element *)
        let param_names = List.map fst m.tm_params in
        let leading, last =
          let rec split = function
            | [ x ] -> ([], x)
            | x :: rest ->
                let l, z = split rest in
                (x :: l, z)
            | [] -> assert false
          in
          split param_names
        in
        let renames =
          List.combine leading cap_vars @ [ (last, elem_v) ]
        in
        let res_v = fresh env "res" in
        emit env (Ir.SDecl (res_v, lower_ty m.tm_ret, None));
        let inlined, _ =
          collect env (fun () ->
              env.inline_depth <- env.inline_depth + 1;
              (* the inlined body must not see the caller's renames: only
                 the parameter bindings *)
              let saved = env.rename in
              env.rename <- renames;
              List.iter (lower_stmt env) m.tm_body;
              env.rename <- saved;
              env.inline_depth <- env.inline_depth - 1)
        in
        emit env (Ir.SInlineBlock (res_v, inlined));
        if deferred_alloc then begin
          (* size the output from the first row: rectangular by the value
             semantics (every row of a map has the same shape) *)
          let inner_sizes =
            match out_aty.Ir.dims with
            | _ :: inner ->
                List.filteri (fun _ d -> d = Ir.DDyn) inner
                |> List.mapi (fun i _ -> Ir.Len (Ir.Var res_v, i))
            | [] -> []
          in
          emit env
            (Ir.SIf
               ( Ir.Bin (Eq, Ir.SInt, Ir.Var idx_v, Ir.Const (Ir.CInt 0)),
                 [
                   Ir.SAssign
                     ( Ir.LVar out_v,
                       Ir.NewArr (out_aty, Ir.Var n_v :: inner_sizes) );
                 ],
                 [] ))
        end;
        emit env (Ir.SArrStore (Ir.Var out_v, [ Ir.Var idx_v ], Ir.Var res_v)))
  in
  emit env
    (Ir.SParFor
       { pf_var = idx_v; pf_count = Ir.Var n_v; pf_body = body; pf_out = Some out_v });
  Ir.Var out_v

and lower_reduce env ~loc (info : red_info) (arr : texpr) : Ir.expr =
  let s = scalar_of_operand ~loc info.ri_elem_ty in
  let arr_e = lower_expr env arr in
  let dst = fresh env "red" in
  emit env (Ir.SDecl (dst, Ir.TScalar s, None));
  emit env
    (Ir.SReduce { rd_dst = dst; rd_op = info.ri_op; rd_scalar = s; rd_arr = arr_e });
  Ir.Var dst

and lower_task env ~loc (tr : ttask_ref) : Ir.expr =
  ignore loc;
  Ir.TaskE
    {
      td_class = tr.tt_class;
      td_method = tr.tt_method;
      td_ctor = Option.map (List.map (lower_expr env)) tr.tt_ctor_args;
      td_isolated = tr.tt_isolated;
      td_in = lower_ty tr.tt_input;
      td_out = lower_ty tr.tt_output;
    }

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

and lower_lvalue env (lv : tlvalue) : [ `Simple of Ir.lval | `Store of Ir.expr * Ir.expr list ] =
  match lv with
  | LVar (v, _) -> `Simple (Ir.LVar (rename_var env v))
  | LFieldStatic (c, f, _) -> `Simple (Ir.LStatic (c, f))
  | LFieldInstance (r, f, _) -> `Simple (Ir.LField (lower_expr env r, f))
  | LIndex (a, i, _) -> (
      let ea = lower_expr env a in
      let ei = lower_expr env i in
      match ea with
      | Ir.Load (b, idx) -> `Store (b, idx @ [ ei ])
      | _ -> `Store (ea, [ ei ]))

and lower_stmt env (st : tstmt) : unit =
  let loc = st.tsloc in
  match st.ts with
  | TSVarDecl (t, name, init) ->
      let v = fresh env (String.map (fun c -> if c = '%' then '_' else c) name) in
      env.rename <- (name, v) :: env.rename;
      let e = Option.map (lower_expr env) init in
      emit env (Ir.SDecl (v, lower_ty t, e))
  | TSAssign (lv, e) -> (
      let rhs = lower_expr env e in
      match lower_lvalue env lv with
      | `Simple l -> emit env (Ir.SAssign (l, rhs))
      | `Store (b, idx) -> emit env (Ir.SArrStore (b, idx, rhs)))
  | TSIf (c, a, b) ->
      let ce = lower_expr env c in
      let sa, () = collect env (fun () -> lower_block env a) in
      let sb, () =
        collect env (fun () -> Option.iter (lower_block env) b)
      in
      emit env (Ir.SIf (ce, sa, sb))
  | TSWhile (c, body) ->
      (* the condition may have a prelude (e.g. method calls); re-evaluate it
         each iteration by placing the prelude inside the loop *)
      let cs, ce = collect env (fun () -> lower_expr env c) in
      if cs = [] then begin
        let sb, () = collect env (fun () -> lower_block env body) in
        emit env (Ir.SWhile (ce, sb))
      end
      else begin
        let sb, () = collect env (fun () -> lower_block env body) in
        emit env
          (Ir.SWhile
             ( Ir.Const (Ir.CBool true),
               cs
               @ [ Ir.SIf (Ir.Un (Not, Ir.SBool, ce), [ Ir.SBreak ], []) ]
               @ sb ))
      end
  | TSFor (init, cond, step, body) -> lower_for env ~loc init cond step body
  | TSReturn None -> emit env (Ir.SReturn None)
  | TSReturn (Some e) ->
      let ee = lower_expr env e in
      emit env (Ir.SReturn (Some ee))
  | TSExpr { te = TFinish (g, n); _ } ->
      let ge = lower_expr env g in
      let ne = Option.map (lower_expr env) n in
      emit env (Ir.SFinish (ge, ne))
  | TSExpr e -> emit env (Ir.SExpr (lower_expr env e))
  | TSBlock body ->
      (* scoping is handled by renaming: names shadow via the assoc list *)
      lower_block_list env body
  | TSBreak -> emit env Ir.SBreak
  | TSContinue -> emit env Ir.SContinue

and lower_block env (body : tstmt) : unit =
  match body.ts with
  | TSBlock stmts ->
      let saved = env.rename in
      List.iter (lower_stmt env) stmts;
      env.rename <- saved
  | _ -> lower_stmt env body

and lower_block_list env (body : tstmt list) : unit =
  let saved = env.rename in
  List.iter (lower_stmt env) body;
  env.rename <- saved

(** Recognize the canonical counted loop
    [for (int i = lo; i < hi; i++) body] and produce {!Ir.SFor}. *)
and lower_for env ~loc init cond step body =
  let canonical =
    match (init, cond, step) with
    | ( Some { ts = TSVarDecl (TPrim PInt, iv, Some lo); _ },
        Some
          {
            te = TBinop (Lt, { te = TLocal cv; _ }, hi);
            _;
          },
        Some
          {
            ts =
              TSAssign
                ( LVar (sv, _),
                  {
                    te =
                      TBinop
                        ( Add,
                          { te = TLocal sv2; _ },
                          { te = TLit (LInt 1L); _ } );
                    _;
                  } );
            _;
          } )
      when iv = cv && iv = sv && iv = sv2 ->
        Some (iv, lo, hi)
    | _ -> None
  in
  match canonical with
  | Some (iv, lo, hi) ->
      let lo_e = lower_expr env lo in
      let v = fresh env iv in
      let hi_s, hi_e =
        collect env (fun () ->
            with_renames env [ (iv, v) ] (fun () -> lower_expr env hi))
      in
      (* hi is evaluated once, before the loop *)
      List.iter (emit env) hi_s;
      let sb, () =
        collect env (fun () ->
            with_renames env [ (iv, v) ] (fun () -> lower_block env body))
      in
      emit env (Ir.SFor (v, lo_e, hi_e, sb))
  | None ->
      (* general for: desugar to while *)
      let saved = env.rename in
      Option.iter (lower_stmt env) init;
      let cs, ce =
        collect env (fun () ->
            match cond with
            | None -> ((), Ir.Const (Ir.CBool true)) |> snd
            | Some c -> lower_expr env c)
      in
      let sb, () =
        collect env (fun () ->
            lower_block env body;
            Option.iter (lower_stmt env) step)
      in
      (* reject 'continue' in desugared loops: it would skip the step *)
      List.iter
        (Ir.iter_stmt
           ~stmt:(fun s ->
             match s with
             | Ir.SContinue ->
                 err ~loc
                   "'continue' is only supported in canonical counted for \
                    loops"
             | _ -> ())
           ~expr:(fun _ -> ()))
        sb;
      emit env
        (Ir.SWhile
           ( Ir.Const (Ir.CBool true),
             cs
             @ [ Ir.SIf (Ir.Un (Not, Ir.SBool, ce), [ Ir.SBreak ], []) ]
             @ sb ));
      env.rename <- saved

(* ------------------------------------------------------------------ *)
(* Declarations → module                                               *)
(* ------------------------------------------------------------------ *)

let lower_method (prog : T.tprogram) (m : T.tmethod) : Ir.func =
  let env =
    {
      prog;
      acc = [];
      rename = [];
      counter = 0;
      this_expr = None;
      inline_depth = 0;
    }
  in
  lower_block_list env m.tm_body;
  {
    Ir.fn_name = Ir.qualify m.tm_class m.tm_name;
    fn_class = m.tm_class;
    fn_method = m.tm_name;
    fn_params = List.map (fun (n, t) -> (n, lower_ty t)) m.tm_params;
    fn_ret = lower_ty m.tm_ret;
    fn_body = List.rev env.acc;
    fn_static = T.method_is_static m;
    fn_local = T.method_is_local m;
  }

let lower_program (prog : T.tprogram) : Ir.modul =
  let md =
    {
      Ir.md_funcs = Hashtbl.create 32;
      md_classes = Hashtbl.create 16;
      md_static_inits = [];
      md_field_inits = [];
    }
  in
  let static_inits = ref [] in
  let field_inits = ref [] in
  List.iter
    (fun (c : T.tclass) ->
      let instance_fields = ref [] and static_fields = ref [] in
      List.iter
        (fun (f : T.tfield) ->
          let t = lower_ty f.tf_ty in
          if is_static f.tf_mods then begin
            static_fields :=
              (f.tf_name, t, is_final f.tf_mods) :: !static_fields;
            match f.tf_init with
            | Some init ->
                let env =
                  {
                    prog;
                    acc = [];
                    rename = [];
                    counter = 0;
                    this_expr = None;
                    inline_depth = 0;
                  }
                in
                let e = lower_expr env init in
                if env.acc <> [] then
                  err ~loc:f.tf_loc
                    "static field initializers must be simple expressions";
                static_inits := (c.tc_name, f.tf_name, e) :: !static_inits
            | None -> ()
          end
          else begin
            instance_fields := (f.tf_name, t) :: !instance_fields;
            match f.tf_init with
            | Some init ->
                let env =
                  {
                    prog;
                    acc = [];
                    rename = [];
                    counter = 0;
                    this_expr = None;
                    inline_depth = 0;
                  }
                in
                let e = lower_expr env init in
                if env.acc <> [] then
                  err ~loc:f.tf_loc
                    "instance field initializers must be simple expressions";
                let existing =
                  try List.assoc c.tc_name !field_inits with Not_found -> []
                in
                field_inits :=
                  (c.tc_name, existing @ [ (f.tf_name, e) ])
                  :: List.remove_assoc c.tc_name !field_inits
            | None -> ()
          end)
        c.tc_fields;
      Hashtbl.add md.Ir.md_classes c.tc_name
        {
          Ir.cm_name = c.tc_name;
          cm_value = c.tc_value;
          cm_instance_fields = List.rev !instance_fields;
          cm_static_fields = List.rev !static_fields;
        };
      List.iter
        (fun (m : T.tmethod) ->
          Hashtbl.add md.Ir.md_funcs
            (Ir.qualify m.tm_class m.tm_name)
            (lower_method prog m))
        c.tc_methods)
    prog.tp_classes;
  {
    md with
    Ir.md_static_inits = List.rev !static_inits;
    md_field_inits = !field_inits;
  }
