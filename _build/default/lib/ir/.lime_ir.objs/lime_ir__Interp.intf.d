lib/ir/interp.mli: Hashtbl Ir Value
