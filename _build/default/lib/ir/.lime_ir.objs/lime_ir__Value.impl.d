lib/ir/value.ml: Array Float Hashtbl Int32 Int64 Ir List Option Printf String
