lib/ir/value.mli: Hashtbl Ir
