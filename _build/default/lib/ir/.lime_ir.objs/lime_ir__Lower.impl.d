lib/ir/lower.ml: Char Diag Hashtbl Int64 Ir Lime_frontend Lime_support Lime_typecheck List Option Printf String
