lib/ir/ir.ml: Hashtbl Int64 Lime_frontend Lime_typecheck List Option Printf String
