lib/ir/interp.ml: Array Float Hashtbl Int64 Ir Lime_frontend Lime_typecheck List Option Printf Value
