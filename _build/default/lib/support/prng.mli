(** Deterministic splitmix64 pseudo-random generator.

    Used by workload generators and the test suite so that every benchmark
    input and property-test corpus is reproducible across machines. *)

type t

val create : int -> t
val copy : t -> t

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]; [bound] must be positive. *)

val float01 : t -> float
(** Uniform in [\[0, 1)]. *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool

val gaussian : t -> float
(** Standard normal via Box-Muller. *)

val byte : t -> int
(** Uniform in [\[0, 256)]. *)

val shuffle_in_place : t -> 'a array -> unit
