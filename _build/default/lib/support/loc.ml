(** Source locations for the Lime front end.

    A {!t} is a half-open span [\[start, stop)] within a named source (a file
    or an inline snippet).  Positions are tracked as (line, column) pairs with
    1-based lines and 0-based columns, matching most editors. *)

type pos = {
  line : int;  (** 1-based line number *)
  col : int;  (** 0-based column *)
  offset : int;  (** byte offset from the start of the source *)
}

type t = {
  source : string;  (** source name, e.g. a file name or ["<inline>"] *)
  start_pos : pos;
  end_pos : pos;
}

let start_pos_of t = t.start_pos
let end_pos_of t = t.end_pos

let dummy_pos = { line = 0; col = 0; offset = 0 }
let dummy = { source = "<none>"; start_pos = dummy_pos; end_pos = dummy_pos }

let is_dummy t = t.source = "<none>"

let make ~source ~start_pos ~end_pos = { source; start_pos; end_pos }

let of_positions source (l1, c1, o1) (l2, c2, o2) =
  {
    source;
    start_pos = { line = l1; col = c1; offset = o1 };
    end_pos = { line = l2; col = c2; offset = o2 };
  }

(** [merge a b] spans from the start of [a] to the end of [b]. *)
let merge a b =
  if is_dummy a then b
  else if is_dummy b then a
  else { a with end_pos = b.end_pos }

let pp_pos ppf p = Fmt.pf ppf "%d:%d" p.line p.col

let pp ppf t =
  if is_dummy t then Fmt.string ppf "<unknown location>"
  else if t.start_pos.line = t.end_pos.line then
    Fmt.pf ppf "%s:%d:%d-%d" t.source t.start_pos.line t.start_pos.col
      t.end_pos.col
  else
    Fmt.pf ppf "%s:%a-%a" t.source pp_pos t.start_pos pp_pos t.end_pos

let to_string t = Fmt.str "%a" pp t
