(** Source locations for the Lime front end. *)

type pos = {
  line : int;  (** 1-based line number *)
  col : int;  (** 0-based column *)
  offset : int;  (** byte offset from the start of the source *)
}

type t = {
  source : string;  (** source name, e.g. a file name or ["<inline>"] *)
  start_pos : pos;
  end_pos : pos;
}

val start_pos_of : t -> pos
val end_pos_of : t -> pos

val dummy_pos : pos

val dummy : t
(** The unknown location; {!is_dummy} recognizes it. *)

val is_dummy : t -> bool
val make : source:string -> start_pos:pos -> end_pos:pos -> t

val of_positions : string -> int * int * int -> int * int * int -> t
(** [of_positions source (l1,c1,o1) (l2,c2,o2)] builds a span. *)

val merge : t -> t -> t
(** [merge a b] spans from the start of [a] to the end of [b]; dummy
    locations are absorbed. *)

val pp_pos : Format.formatter -> pos -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
