lib/support/util.ml: Float Fmt List String
