lib/support/prng.mli:
