(** Compiler diagnostics.

    Every user-facing error in the pipeline (lexing, parsing, typing, kernel
    identification) is reported as a {!t} carrying a location, a severity, a
    phase tag and a message.  Fatal conditions raise {!Error}; non-fatal
    warnings accumulate in a {!collector}. *)

type severity = Error | Warning | Note

type phase =
  | Lexer
  | Parser
  | Typecheck
  | Lowering
  | Kernel  (** kernel identification / offload legality *)
  | Optimizer
  | Codegen
  | Runtime

type t = {
  severity : severity;
  phase : phase;
  loc : Loc.t;
  message : string;
}

exception Error_exn of t

let phase_name = function
  | Lexer -> "lexer"
  | Parser -> "parser"
  | Typecheck -> "typecheck"
  | Lowering -> "lowering"
  | Kernel -> "kernel"
  | Optimizer -> "optimizer"
  | Codegen -> "codegen"
  | Runtime -> "runtime"

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let make ?(severity = Error) ~phase ~loc fmt =
  Format.kasprintf (fun message -> { severity; phase; loc; message }) fmt

let pp ppf d =
  Fmt.pf ppf "%a: %s: [%s] %s" Loc.pp d.loc (severity_name d.severity)
    (phase_name d.phase) d.message

let to_string d = Fmt.str "%a" pp d

(** [error ~phase ~loc fmt ...] raises {!Error_exn} with a formatted message. *)
let error ~phase ~loc fmt =
  Format.kasprintf
    (fun message ->
      raise (Error_exn { severity = Error; phase; loc; message }))
    fmt

(** Collector for non-fatal diagnostics (warnings / notes). *)
type collector = { mutable items : t list }

let collector () = { items = [] }
let add c d = c.items <- d :: c.items
let items c = List.rev c.items

let warn c ~phase ~loc fmt =
  Format.kasprintf
    (fun message ->
      add c { severity = Warning; phase; loc; message })
    fmt

(** Run [f ()]; return [Ok result] or [Error diag] if it raised. *)
let protect f = try Ok (f ()) with Error_exn d -> Error d

let () =
  Printexc.register_printer (function
    | Error_exn d -> Some (to_string d)
    | _ -> None)
