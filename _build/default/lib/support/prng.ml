(** Deterministic splitmix64 pseudo-random generator.

    Used by workload generators and the test suite so that every benchmark
    input and every property-test corpus is reproducible across runs and
    machines, independent of the OCaml stdlib [Random] state. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** Uniform int in [\[0, bound)]. [bound] must be positive. *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

(** Uniform float in [\[0, 1)]. *)
let float01 t =
  let r = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float r /. 9007199254740992.0 (* 2^53 *)

(** Uniform float in [\[lo, hi)]. *)
let float_range t lo hi = lo +. (float01 t *. (hi -. lo))

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** Gaussian via Box-Muller (one sample per call; simple, deterministic). *)
let gaussian t =
  let u1 = max 1e-12 (float01 t) in
  let u2 = float01 t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let byte t = int t 256

let shuffle_in_place t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
