(** Small utilities shared across the compiler and runtime. *)

(** [round_up n k] rounds [n] up to the next multiple of [k]. *)
let round_up n k = if k <= 0 then n else (n + k - 1) / k * k

(** [ceil_div n k] is ⌈n / k⌉ for positive [k]. *)
let ceil_div n k = (n + k - 1) / k

let is_pow2 n = n > 0 && n land (n - 1) = 0

(** Next power of two ≥ [n] (for [n ≥ 1]). *)
let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let clamp lo hi v = max lo (min hi v)
let clampf lo hi v = Float.max lo (Float.min hi v)

(** List helpers --------------------------------------------------------- *)

let rec last = function
  | [] -> invalid_arg "Util.last: empty list"
  | [ x ] -> x
  | _ :: tl -> last tl

let sum_floats l = List.fold_left ( +. ) 0.0 l
let sum_ints l = List.fold_left ( + ) 0 l

let max_float_of l = List.fold_left Float.max neg_infinity l

(** [tabulate n f] = [[f 0; f 1; ...; f (n-1)]]. *)
let tabulate n f = List.init n f

(** String helpers ------------------------------------------------------- *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let contains_substring ~sub s =
  let n = String.length s and m = String.length sub in
  if m = 0 then true
  else
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0

(** Count the number of lines in a string (number of ['\n'] + 1 if nonempty). *)
let count_lines s =
  if String.length s = 0 then 0
  else String.fold_left (fun acc c -> if c = '\n' then acc + 1 else acc) 1 s

(** Indent every line of [s] by [n] spaces. *)
let indent n s =
  let pad = String.make n ' ' in
  String.split_on_char '\n' s
  |> List.map (fun line -> if line = "" then line else pad ^ line)
  |> String.concat "\n"

(** Formatting helpers --------------------------------------------------- *)

(** Human-readable byte sizes, matching the paper's Table 3 style. *)
let pp_bytes ppf n =
  if n >= 1_048_576 then Fmt.pf ppf "%.0fMB" (float_of_int n /. 1_048_576.)
  else if n >= 1_024 then Fmt.pf ppf "%.0fKB" (float_of_int n /. 1_024.)
  else Fmt.pf ppf "%dB" n

let bytes_to_string n = Fmt.str "%a" pp_bytes n

(** Geometric mean of a nonempty list of positive floats. *)
let geomean = function
  | [] -> invalid_arg "Util.geomean: empty"
  | l ->
      let n = float_of_int (List.length l) in
      exp (List.fold_left (fun acc x -> acc +. log x) 0.0 l /. n)
