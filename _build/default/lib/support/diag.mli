(** Compiler diagnostics: located, phase-tagged errors and warnings. *)

type severity = Error | Warning | Note

type phase =
  | Lexer
  | Parser
  | Typecheck
  | Lowering
  | Kernel  (** kernel identification / offload legality *)
  | Optimizer
  | Codegen
  | Runtime

type t = {
  severity : severity;
  phase : phase;
  loc : Loc.t;
  message : string;
}

exception Error_exn of t
(** Raised by {!error}; rendered by the registered exception printer. *)

val phase_name : phase -> string
val severity_name : severity -> string

val make :
  ?severity:severity ->
  phase:phase ->
  loc:Loc.t ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val error : phase:phase -> loc:Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Format a message and raise {!Error_exn}. *)

(** Collector for non-fatal diagnostics. *)
type collector

val collector : unit -> collector
val add : collector -> t -> unit
val items : collector -> t list

val warn :
  collector -> phase:phase -> loc:Loc.t -> ('a, Format.formatter, unit, unit) format4 -> 'a

val protect : (unit -> 'a) -> ('a, t) result
(** Run a pipeline stage, catching {!Error_exn}. *)
