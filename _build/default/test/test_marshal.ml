(* Tests for the wire-format marshaling (Fig 6): round trips, generic ≡
   custom serializer, views, and the time model. *)

module Ir = Lime_ir.Ir
module V = Lime_ir.Value
module M = Lime_runtime.Marshal

let roundtrip v = M.decode (M.encode v)

let check_roundtrip name v =
  Alcotest.(check bool) name true (V.approx_equal ~rtol:0.0 ~atol:0.0 v (roundtrip v))

let test_scalars () =
  check_roundtrip "int" (V.VInt 42);
  check_roundtrip "negative int" (V.VInt (-7));
  check_roundtrip "long" (V.VLong 0x1234_5678_9ABC_DEFL);
  check_roundtrip "float" (V.VFloat (V.f32 3.14));
  check_roundtrip "double" (V.VDouble 2.718281828459045);
  check_roundtrip "unit" V.VUnit

let test_arrays () =
  check_roundtrip "float 1d" (V.VArr (V.of_float_array [| 1.0; 2.0; 3.5 |]));
  check_roundtrip "float 2d"
    (V.VArr (V.of_float_matrix 3 4 (Array.init 12 float_of_int)));
  check_roundtrip "int 1d" (V.VArr (V.of_int_array [| -1; 0; 255; 65536 |]));
  check_roundtrip "double 1d"
    (V.VArr (V.of_float_array ~elem:Ir.SDouble [| 1.0e-300; 1.0e300 |]));
  (* byte array with negative values *)
  let b = V.make_arr Ir.SByte [| 4 |] in
  V.store b [ 0 ] (V.VInt (-128));
  V.store b [ 1 ] (V.VInt 127);
  V.store b [ 2 ] (V.VInt (-1));
  V.store b [ 3 ] (V.VInt 0);
  check_roundtrip "byte range" (V.VArr b);
  (* long array *)
  let l = V.make_arr Ir.SLong [| 2 |] in
  V.store l [ 0 ] (V.VLong Int64.min_int);
  V.store l [ 1 ] (V.VLong Int64.max_int);
  check_roundtrip "long extremes" (V.VArr l)

let test_view_encoding () =
  (* encoding a non-contiguous view equals encoding its copy *)
  let m = V.of_float_matrix 4 3 (Array.init 12 float_of_int) in
  let row = V.view m 2 in
  let copy = V.deep_copy row in
  Alcotest.(check bytes) "view encodes as its contents" (M.encode (V.VArr copy))
    (M.encode (V.VArr row))

let test_generic_equals_custom () =
  let cases =
    [
      V.VArr (V.of_float_array (Array.init 100 (fun i -> float_of_int i *. 0.5)));
      V.VArr (V.of_float_matrix 8 4 (Array.init 32 float_of_int));
      V.VArr (V.of_int_array (Array.init 50 (fun i -> i * i)));
      V.VInt 7;
      V.VFloat 1.5;
    ]
  in
  List.iteri
    (fun i v ->
      Alcotest.(check bytes)
        (Printf.sprintf "case %d identical bytes" i)
        (M.encode v) (M.encode_generic v))
    cases

let test_wire_size () =
  let v = V.VArr (V.of_float_matrix 10 4 (Array.make 40 0.0)) in
  Alcotest.(check int) "predicted size matches encoding"
    (Bytes.length (M.encode v))
    (M.wire_size v)

let test_time_model () =
  (* generic must be much slower than custom; bigger is slower *)
  let c1 = M.java_marshal_seconds ~serializer:M.Custom 1_000_000 in
  let g1 = M.java_marshal_seconds ~serializer:M.Generic 1_000_000 in
  Alcotest.(check bool) "generic ~10x slower" true (g1 > c1 *. 8.0);
  let c2 = M.java_marshal_seconds ~serializer:M.Custom 2_000_000 in
  Alcotest.(check bool) "monotone in size" true (c2 > c1);
  (* byte arrays pay per element: 1-byte elements cost ~4x more per byte *)
  let bytes_arr = M.java_marshal_seconds ~elem_bytes:1 1_000_000 in
  Alcotest.(check bool) "byte arrays dearer per byte" true (bytes_arr > c1 *. 2.0)

let test_decode_errors () =
  match M.decode (Bytes.of_string "\xFFgarbage") with
  | exception M.Marshal_error _ -> ()
  | _ -> Alcotest.fail "expected a marshal error"

let test_objects_rejected () =
  let obj = V.VObj { V.cls = "C"; fields = Hashtbl.create 1 } in
  match M.encode obj with
  | exception M.Marshal_error _ -> ()
  | _ -> Alcotest.fail "objects must not marshal"

let () =
  Alcotest.run "marshal"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "scalars" `Quick test_scalars;
          Alcotest.test_case "arrays" `Quick test_arrays;
          Alcotest.test_case "views" `Quick test_view_encoding;
        ] );
      ( "serializers",
        [
          Alcotest.test_case "generic = custom" `Quick test_generic_equals_custom;
          Alcotest.test_case "wire size" `Quick test_wire_size;
          Alcotest.test_case "time model" `Quick test_time_model;
        ] );
      ( "errors",
        [
          Alcotest.test_case "bad tag" `Quick test_decode_errors;
          Alcotest.test_case "objects rejected" `Quick test_objects_rejected;
        ] );
    ]
