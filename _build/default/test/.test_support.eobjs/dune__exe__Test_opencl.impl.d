test/test_opencl.ml: Alcotest Lime_benchmarks Lime_gpu Lime_support List Printf String
