test/test_lime_examples.ml: Alcotest Array Filename In_channel Lime_gpu Lime_ir Lime_runtime List Sys
