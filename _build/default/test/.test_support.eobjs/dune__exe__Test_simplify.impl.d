test/test_simplify.ml: Alcotest Gpusim Lime_benchmarks Lime_gpu Lime_ir Lime_runtime Lime_typecheck List
