test/test_fuzz_kernels.mli:
