test/test_taint.ml: Alcotest Hashtbl Lime_gpu Lime_ir Lime_support Lime_typecheck List
