test/test_typecheck.ml: Alcotest Check Lime_support Lime_typecheck List Option Printf Tast
