test/test_gpusim.ml: Alcotest Float Gpusim Lime_benchmarks Lime_gpu Lime_ir Lime_runtime Lime_typecheck List Printf
