test/test_marshal.mli:
