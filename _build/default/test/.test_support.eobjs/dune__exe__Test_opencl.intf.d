test/test_opencl.mli:
