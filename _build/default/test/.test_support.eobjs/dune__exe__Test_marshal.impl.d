test/test_marshal.ml: Alcotest Array Bytes Hashtbl Int64 Lime_ir Lime_runtime List Printf
