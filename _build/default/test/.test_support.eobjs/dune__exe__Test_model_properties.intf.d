test/test_model_properties.mli:
