test/test_schedule.ml: Alcotest Array Bytes Gpusim Lime_benchmarks Lime_gpu Lime_ir Lime_runtime List
