test/test_clcheck.ml: Alcotest Lime_benchmarks Lime_gpu Lime_support List
