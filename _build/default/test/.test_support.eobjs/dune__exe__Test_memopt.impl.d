test/test_memopt.ml: Alcotest Lime_gpu Lime_ir Lime_typecheck List
