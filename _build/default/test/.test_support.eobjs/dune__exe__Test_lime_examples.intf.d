test/test_lime_examples.mli:
