test/test_hostgen.mli:
