test/test_interp.ml: Alcotest Array Int32 Int64 Lime_ir Lime_support Lime_typecheck
