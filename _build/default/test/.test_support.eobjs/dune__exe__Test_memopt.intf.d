test/test_memopt.mli:
