test/test_properties.ml: Alcotest Array Bytes Float Gen Gpusim Int32 Lazy Lime_benchmarks Lime_frontend Lime_gpu Lime_ir Lime_runtime Lime_support List Printf QCheck QCheck_alcotest
