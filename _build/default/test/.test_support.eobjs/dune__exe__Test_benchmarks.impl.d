test/test_benchmarks.ml: Alcotest Lime_benchmarks Lime_gpu Lime_ir Lime_support List Option Printf String
