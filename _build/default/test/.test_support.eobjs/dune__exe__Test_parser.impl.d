test/test_parser.ml: Alcotest Lime_frontend Lime_support List Parser
