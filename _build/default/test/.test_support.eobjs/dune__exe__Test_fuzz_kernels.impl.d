test/test_fuzz_kernels.ml: Alcotest Array Float Lime_gpu Lime_ir Lime_support List Printf
