test/test_support.ml: Alcotest Array Diag Fun Lime_support List Loc Prng Util
