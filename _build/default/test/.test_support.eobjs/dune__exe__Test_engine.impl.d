test/test_engine.ml: Alcotest Array Gpusim Hashtbl Lime_benchmarks Lime_gpu Lime_ir Lime_runtime List String
