test/test_clcheck.mli:
