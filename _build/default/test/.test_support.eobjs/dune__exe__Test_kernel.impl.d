test/test_kernel.ml: Alcotest Lime_gpu Lime_ir Lime_support Lime_typecheck List Option
