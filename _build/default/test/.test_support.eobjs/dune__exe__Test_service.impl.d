test/test_service.ml: Alcotest Array Filename Fun Gpusim Lime_benchmarks Lime_gpu Lime_ir Lime_runtime Lime_service Lime_support List Out_channel Sys
