test/test_ir.ml: Alcotest Lime_ir Lime_support Lime_typecheck List Option
