test/test_hostgen.ml: Alcotest Lime_benchmarks Lime_gpu Lime_support List Printf
