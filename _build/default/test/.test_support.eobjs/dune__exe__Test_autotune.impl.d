test/test_autotune.ml: Alcotest Gpusim Lime_benchmarks Lime_gpu Lime_runtime Lime_support List
