test/test_cli.ml: Alcotest Filename In_channel Lime_support List Option Out_channel Printf Sys
