test/test_cli.ml: Alcotest Array Filename In_channel Lime_support List Option Out_channel Printf Sys
