test/test_model_properties.ml: Alcotest Array Gpusim Lazy Lime_benchmarks Lime_gpu Lime_ir Lime_runtime Lime_typecheck List Printf Unix
