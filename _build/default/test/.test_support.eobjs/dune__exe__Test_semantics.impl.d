test/test_semantics.ml: Alcotest Int32 Int64 Lime_ir Lime_typecheck List Printf String
