test/test_lexer.ml: Alcotest Fmt Int64 Lexer Lime_frontend Lime_support List Token
