test/test_experiments.ml: Alcotest Float Gpusim Lazy Lime_benchmarks Lime_runtime Lime_support List Printf
