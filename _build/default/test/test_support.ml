(* Unit tests for lib/support: locations, diagnostics, PRNG, utilities. *)

open Lime_support

let test_loc_merge () =
  let a = Loc.of_positions "f.lime" (1, 0, 0) (1, 5, 5) in
  let b = Loc.of_positions "f.lime" (2, 3, 10) (2, 8, 15) in
  let m = Loc.merge a b in
  Alcotest.(check int) "start line" 1 (Loc.start_pos_of m).Loc.line;
  Alcotest.(check int) "end line" 2 (Loc.end_pos_of m).Loc.line;
  Alcotest.(check bool) "dummy merge keeps other" true
    (Loc.merge Loc.dummy b = b)

let test_loc_pp () =
  let a = Loc.of_positions "f.lime" (3, 2, 12) (3, 7, 17) in
  Alcotest.(check string) "single-line span" "f.lime:3:2-7" (Loc.to_string a);
  Alcotest.(check bool) "dummy prints" true
    (Loc.to_string Loc.dummy = "<unknown location>")

let test_diag_error () =
  match
    Diag.protect (fun () ->
        Diag.error ~phase:Diag.Typecheck ~loc:Loc.dummy "bad %s" "thing")
  with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error d ->
      Alcotest.(check string) "message" "bad thing" d.Diag.message;
      Alcotest.(check bool) "phase in rendering" true
        (Util.contains_substring ~sub:"[typecheck]" (Diag.to_string d))

let test_diag_collector () =
  let c = Diag.collector () in
  Diag.warn c ~phase:Diag.Parser ~loc:Loc.dummy "w1";
  Diag.warn c ~phase:Diag.Parser ~loc:Loc.dummy "w2";
  Alcotest.(check int) "two warnings" 2 (List.length (Diag.items c));
  Alcotest.(check string) "order preserved" "w1"
    (List.hd (Diag.items c)).Diag.message

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  let xs = List.init 100 (fun _ -> Prng.int a 1000) in
  let ys = List.init 100 (fun _ -> Prng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys

let test_prng_ranges () =
  let r = Prng.create 7 in
  for _ = 1 to 1000 do
    let x = Prng.int r 17 in
    Alcotest.(check bool) "int in range" true (x >= 0 && x < 17);
    let f = Prng.float01 r in
    Alcotest.(check bool) "float01 in range" true (f >= 0.0 && f < 1.0);
    let g = Prng.float_range r (-2.0) 3.0 in
    Alcotest.(check bool) "float_range in range" true (g >= -2.0 && g < 3.0)
  done

let test_prng_copy () =
  let a = Prng.create 9 in
  ignore (Prng.int a 100);
  let b = Prng.copy a in
  Alcotest.(check int) "copy continues identically" (Prng.int a 1000)
    (Prng.int b 1000)

let test_prng_shuffle () =
  let r = Prng.create 3 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle_in_place r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_util_arith () =
  Alcotest.(check int) "round_up" 12 (Util.round_up 9 4);
  Alcotest.(check int) "round_up exact" 8 (Util.round_up 8 4);
  Alcotest.(check int) "ceil_div" 3 (Util.ceil_div 9 4);
  Alcotest.(check bool) "is_pow2" true (Util.is_pow2 64);
  Alcotest.(check bool) "is_pow2 false" false (Util.is_pow2 48);
  Alcotest.(check int) "next_pow2" 64 (Util.next_pow2 33);
  Alcotest.(check int) "clamp" 5 (Util.clamp 0 5 9)

let test_util_strings () =
  Alcotest.(check bool) "starts_with" true
    (Util.starts_with ~prefix:"__kernel" "__kernel void f()");
  Alcotest.(check bool) "contains" true
    (Util.contains_substring ~sub:"float4" "__global float4* p");
  Alcotest.(check bool) "not contains" false
    (Util.contains_substring ~sub:"double" "float");
  Alcotest.(check int) "count_lines" 3 (Util.count_lines "a\nb\nc");
  Alcotest.(check int) "count_lines empty" 0 (Util.count_lines "")

let test_util_bytes () =
  Alcotest.(check string) "KB" "64KB" (Util.bytes_to_string 65536);
  Alcotest.(check string) "MB" "3MB" (Util.bytes_to_string (3 * 1024 * 1024));
  Alcotest.(check string) "B" "100B" (Util.bytes_to_string 100)

let test_util_geomean () =
  let g = Util.geomean [ 1.0; 4.0 ] in
  Alcotest.(check (float 1e-9)) "geomean" 2.0 g

let () =
  Alcotest.run "support"
    [
      ( "loc",
        [
          Alcotest.test_case "merge" `Quick test_loc_merge;
          Alcotest.test_case "pp" `Quick test_loc_pp;
        ] );
      ( "diag",
        [
          Alcotest.test_case "error" `Quick test_diag_error;
          Alcotest.test_case "collector" `Quick test_diag_collector;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "shuffle" `Quick test_prng_shuffle;
        ] );
      ( "util",
        [
          Alcotest.test_case "arith" `Quick test_util_arith;
          Alcotest.test_case "strings" `Quick test_util_strings;
          Alcotest.test_case "bytes" `Quick test_util_bytes;
          Alcotest.test_case "geomean" `Quick test_util_geomean;
        ] );
    ]
