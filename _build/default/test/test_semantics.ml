(* Table-driven semantics tests: every binary/unary operator and cast, for
   every scalar type, executed through the FULL pipeline (parse → check →
   lower → interpret) and compared against independently computed Java
   semantics.  This pins down the numeric model the differential tests and
   the simulator rely on. *)

module V = Lime_ir.Value

let run ~ret ~ty ~expr args =
  let params =
    args
    |> List.mapi (fun i _ -> Printf.sprintf "%s p%d" ty i)
    |> String.concat ", "
  in
  let src =
    Printf.sprintf "class T { static %s f(%s) { return %s; } }" ret params
      expr
  in
  let md =
    Lime_ir.Lower.lower_program (Lime_typecheck.Check.check_string src)
  in
  let st = Lime_ir.Interp.create md in
  Lime_ir.Interp.run st ~cls:"T" ~meth:"f" args

let int_case name expr args expected =
  Alcotest.test_case name `Quick (fun () ->
      match run ~ret:"int" ~ty:"int" ~expr (List.map (fun i -> V.VInt i) args) with
      | V.VInt got -> Alcotest.(check int) name expected got
      | v -> Alcotest.failf "expected int, got %s" (V.to_string v))

let bool_case name expr args expected =
  Alcotest.test_case name `Quick (fun () ->
      match
        run ~ret:"boolean" ~ty:"int" ~expr (List.map (fun i -> V.VInt i) args)
      with
      | V.VInt got -> Alcotest.(check int) name (if expected then 1 else 0) got
      | v -> Alcotest.failf "expected bool, got %s" (V.to_string v))

let long_case name expr args expected =
  Alcotest.test_case name `Quick (fun () ->
      match
        run ~ret:"long" ~ty:"long" ~expr (List.map (fun i -> V.VLong i) args)
      with
      | V.VLong got ->
          Alcotest.(check int64) name expected got
      | v -> Alcotest.failf "expected long, got %s" (V.to_string v))

let float_case name expr args expected =
  Alcotest.test_case name `Quick (fun () ->
      match
        run ~ret:"float" ~ty:"float" ~expr
          (List.map (fun f -> V.VFloat (V.f32 f)) args)
      with
      | V.VFloat got -> Alcotest.(check (float 0.0)) name (V.f32 expected) got
      | v -> Alcotest.failf "expected float, got %s" (V.to_string v))

let double_case name expr args expected =
  Alcotest.test_case name `Quick (fun () ->
      match
        run ~ret:"double" ~ty:"double" ~expr
          (List.map (fun f -> V.VDouble f) args)
      with
      | V.VDouble got -> Alcotest.(check (float 1e-15)) name expected got
      | v -> Alcotest.failf "expected double, got %s" (V.to_string v))

(* Java reference semantics via Int32 *)
let j op a b = Int32.to_int (op (Int32.of_int a) (Int32.of_int b))

let int_arith =
  [
    int_case "add wrap" "p0 + p1" [ 2147483647; 1 ] (j Int32.add 2147483647 1);
    int_case "sub wrap" "p0 - p1" [ -2147483648; 1 ] (j Int32.sub (-2147483648) 1);
    int_case "mul wrap" "p0 * p1" [ 123456789; 987654321 ]
      (j Int32.mul 123456789 987654321);
    int_case "div trunc toward zero" "p0 / p1" [ -7; 2 ] (-3);
    int_case "mod sign follows dividend" "p0 % p1" [ -7; 2 ] (-1);
    int_case "neg" "-p0" [ 5 ] (-5);
    int_case "neg min wraps" "-p0" [ -2147483648 ] (-2147483648);
    int_case "bitand" "p0 & p1" [ 0b1100; 0b1010 ] 0b1000;
    int_case "bitor" "p0 | p1" [ 0b1100; 0b1010 ] 0b1110;
    int_case "bitxor" "p0 ^ p1" [ 0b1100; 0b1010 ] 0b0110;
    int_case "bitnot" "~p0" [ 0 ] (-1);
    int_case "shl wraps" "p0 << p1" [ 1; 31 ] (-2147483648);
    int_case "shl shift masked" "p0 << p1" [ 1; 33 ] 2;
    int_case "shr sign extends" "p0 >> p1" [ -8; 1 ] (-4);
    int_case "ushr zero fills" "p0 >>> p1" [ -1; 28 ] 15;
    int_case "precedence" "p0 + p1 * 3" [ 1; 2 ] 7;
    int_case "ternary" "p0 > p1 ? p0 : p1" [ 3; 9 ] 9;
  ]

let comparisons =
  [
    bool_case "lt" "p0 < p1" [ 1; 2 ] true;
    bool_case "le eq" "p0 <= p1" [ 2; 2 ] true;
    bool_case "gt" "p0 > p1" [ 1; 2 ] false;
    bool_case "ge" "p0 >= p1" [ 3; 2 ] true;
    bool_case "eq" "p0 == p1" [ 4; 4 ] true;
    bool_case "ne" "p0 != p1" [ 4; 4 ] false;
    bool_case "and short" "p0 != 0 && 10 / p0 > 1" [ 0 ] false;
    bool_case "or" "p0 == 0 || p0 > 5" [ 7 ] true;
    bool_case "not" "!(p0 == 1)" [ 2 ] true;
  ]

let long_arith =
  [
    long_case "add" "p0 + p1" [ 0x7FFF_FFFF_FFFF_FFFFL; 1L ] Int64.min_int;
    long_case "mul" "p0 * p1" [ 3_000_000_000L; 3L ] 9_000_000_000L;
    long_case "shl" "p0 << 32" [ 5L ] (Int64.shift_left 5L 32);
    long_case "ushr" "p0 >>> 60" [ -1L ] 15L;
    long_case "and" "p0 & p1" [ 0xFF00L; 0x0FF0L ] 0x0F00L;
    long_case "div" "p0 / p1" [ -9L; 2L ] (-4L);
  ]

let float_arith =
  [
    float_case "add rounds" "p0 + p1" [ 0.1; 0.2 ] (V.f32 0.1 +. V.f32 0.2);
    float_case "mul" "p0 * p1" [ 1.5; 2.0 ] 3.0;
    float_case "div" "p0 / p1" [ 1.0; 3.0 ] (1.0 /. 3.0);
    float_case "chain rounds each step" "p0 * p1 * p1" [ 1.0000001; 3.1415927 ]
      (V.f32 (V.f32 (V.f32 1.0000001 *. V.f32 3.1415927) *. V.f32 3.1415927));
    float_case "sub" "p0 - p1" [ 10.5; 0.25 ] 10.25;
  ]

let double_arith =
  [
    double_case "add exact" "p0 + p1" [ 0.1; 0.2 ] (0.1 +. 0.2);
    double_case "no f32 rounding" "p0 * p1" [ 1.0000001; 3.1415927 ]
      (1.0000001 *. 3.1415927);
    double_case "sqrt" "Math.sqrt(p0)" [ 2.0 ] (sqrt 2.0);
    double_case "pow" "Math.pow(p0, p1)" [ 2.0; 10.0 ] 1024.0;
    double_case "atan2" "Math.atan2(p0, p1)" [ 1.0; 1.0 ] (atan2 1.0 1.0);
  ]

let casts =
  [
    Alcotest.test_case "double->int truncates" `Quick (fun () ->
        match
          run ~ret:"int" ~ty:"double" ~expr:"(int) p0" [ V.VDouble 3.99 ]
        with
        | V.VInt 3 -> ()
        | v -> Alcotest.failf "got %s" (V.to_string v));
    Alcotest.test_case "negative double->int toward zero" `Quick (fun () ->
        match
          run ~ret:"int" ~ty:"double" ~expr:"(int) p0" [ V.VDouble (-3.99) ]
        with
        | V.VInt -3 -> ()
        | v -> Alcotest.failf "got %s" (V.to_string v));
    Alcotest.test_case "int->byte truncates" `Quick (fun () ->
        match run ~ret:"byte" ~ty:"int" ~expr:"(byte) p0" [ V.VInt 0x1FF ] with
        | V.VInt (-1) -> ()
        | v -> Alcotest.failf "got %s" (V.to_string v));
    Alcotest.test_case "int->char wraps unsigned" `Quick (fun () ->
        match run ~ret:"char" ~ty:"int" ~expr:"(char) p0" [ V.VInt (-1) ] with
        | V.VInt 65535 -> ()
        | v -> Alcotest.failf "got %s" (V.to_string v));
    Alcotest.test_case "float widening is implicit" `Quick (fun () ->
        match
          run ~ret:"double" ~ty:"float" ~expr:"p0 + 1.0" [ V.VFloat 0.5 ]
        with
        | V.VDouble 1.5 -> ()
        | v -> Alcotest.failf "got %s" (V.to_string v));
    Alcotest.test_case "int literal to float ctx" `Quick (fun () ->
        match run ~ret:"float" ~ty:"int" ~expr:"(float) p0 / 4.0f" [ V.VInt 10 ] with
        | V.VFloat f -> Alcotest.(check (float 0.0)) "2.5" 2.5 f
        | v -> Alcotest.failf "got %s" (V.to_string v));
  ]

(* byte/char arithmetic promotes to int, like Java *)
let promotion =
  [
    Alcotest.test_case "byte + byte = int" `Quick (fun () ->
        let src =
          "class T { static int f(byte a, byte b) { return a + b; } }"
        in
        let md =
          Lime_ir.Lower.lower_program (Lime_typecheck.Check.check_string src)
        in
        let st = Lime_ir.Interp.create md in
        match
          Lime_ir.Interp.run st ~cls:"T" ~meth:"f" [ V.VInt 100; V.VInt 100 ]
        with
        | V.VInt 200 -> () (* no byte wraparound: promoted to int first *)
        | v -> Alcotest.failf "got %s" (V.to_string v));
    Alcotest.test_case "byte sum narrowed back" `Quick (fun () ->
        let src =
          "class T { static byte f(byte a, byte b) { return (byte)(a + b); } }"
        in
        let md =
          Lime_ir.Lower.lower_program (Lime_typecheck.Check.check_string src)
        in
        let st = Lime_ir.Interp.create md in
        match
          Lime_ir.Interp.run st ~cls:"T" ~meth:"f" [ V.VInt 100; V.VInt 100 ]
        with
        | V.VInt (-56) -> ()
        | v -> Alcotest.failf "got %s" (V.to_string v));
  ]

let () =
  Alcotest.run "semantics"
    [
      ("int", int_arith);
      ("comparisons", comparisons);
      ("long", long_arith);
      ("float", float_arith);
      ("double", double_arith);
      ("casts", casts);
      ("promotion", promotion);
    ]
