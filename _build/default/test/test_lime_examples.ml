(* The shipped .lime example programs must compile through the full
   pipeline, produce validator-clean OpenCL, and (where meaningful) execute
   correctly through the interpreter. *)

module V = Lime_ir.Value

let dir =
  (* dune copies the examples next to the workspace root inside _build *)
  let candidates =
    [ "../examples/lime"; "examples/lime"; "../../examples/lime" ]
  in
  List.find Sys.file_exists candidates

let read name =
  In_channel.with_open_text (Filename.concat dir name) In_channel.input_all

let compile name worker =
  Lime_gpu.Pipeline.compile ~name ~worker (read name)

let test_compiles name worker () =
  let c = compile name worker in
  let r = Lime_gpu.Clcheck.check c.Lime_gpu.Pipeline.cp_opencl in
  if not (Lime_gpu.Clcheck.ok r) then
    Alcotest.failf "%s: invalid OpenCL:\n%s" name (Lime_gpu.Clcheck.report r)

let test_histogram_executes () =
  let c = compile "histogram.lime" "Hist.maxBinCount" in
  let st = Lime_ir.Interp.create c.Lime_gpu.Pipeline.cp_module in
  (* all samples in bin 0 -> the max bin count equals the array length *)
  let data = V.of_float_array (Array.make 10 0.01) in
  let v =
    Lime_ir.Interp.run st ~cls:"Hist" ~meth:"maxBinCount" [ V.VArr data ]
  in
  Alcotest.(check bool) "max bin count" true (v = V.VInt 10)

let test_saxpy_executes () =
  let c = compile "saxpy.lime" "Saxpy.run" in
  let st = Lime_ir.Interp.create c.Lime_gpu.Pipeline.cp_module in
  let xs = V.of_float_array [| 1.0; 2.0; 4.0 |] in
  let v = Lime_ir.Interp.run st ~cls:"Saxpy" ~meth:"run" [ V.VArr xs ] in
  (* y = 0.5 x, result = 2x + y = 2.5x *)
  let want = V.of_float_array [| 2.5; 5.0; 10.0 |] in
  Alcotest.(check bool) "saxpy values" true
    (V.approx_equal ~rtol:1e-6 ~atol:0.0 v (V.VArr want))

let test_matmul_executes () =
  (* run the matmul task graph end-to-end and validate against a direct
     OCaml multiply *)
  let c = compile "matmul.lime" "MatMul.multiply" in
  let n = 6 in
  let _, r =
    Lime_runtime.Engine.run_program Lime_runtime.Engine.default_config
      c.Lime_gpu.Pipeline.cp_module ~cls:"MatMulApp" ~meth:"main"
      [ V.VInt n; V.VInt 1 ]
  in
  (* rebuild the generated matrices and multiply directly *)
  let st = Lime_ir.Interp.create c.Lime_gpu.Pipeline.cp_module in
  let packed =
    Lime_ir.Interp.run_instance st ~cls:"MatMulApp" ~ctor_args:[ V.VInt n ]
      ~meth:"matrixGen" []
  in
  let pa = match packed with V.VArr a -> a | _ -> assert false in
  let get i k =
    match V.index pa [ i; k ] with
    | V.VFloat f -> f
    | _ -> assert false
  in
  let want = V.make_arr ~is_value:true Lime_ir.Ir.SFloat [| n; n |] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for k = 0 to 31 do
        acc := V.f32 (!acc +. V.f32 (get i k *. get (n + j) k))
      done;
      V.store want [ i; j ] (V.VFloat (V.f32 !acc))
    done
  done;
  Alcotest.(check bool) "matmul values" true
    (V.approx_equal ~rtol:1e-5 ~atol:1e-6 r.Lime_runtime.Engine.last_value
       (V.VArr want))

let test_matmul_uses_local_memory () =
  (* under the local configuration the streamed operand is staged in local
     memory (under config_all, constant memory wins the priority order) *)
  let c =
    Lime_gpu.Pipeline.compile ~config:Lime_gpu.Memopt.config_local_noconflict
      ~name:"matmul.lime" ~worker:"MatMul.multiply" (read "matmul.lime")
  in
  let space =
    (Lime_gpu.Memopt.placement_for c.Lime_gpu.Pipeline.cp_decisions "packed")
      .Lime_ir.Ir.space
  in
  Alcotest.(check string) "B^T stream staged in local" "local"
    (Lime_ir.Ir.mem_space_name space)

let test_histogram_uses_constant_memory () =
  let c = compile "histogram.lime" "Hist.maxBinCount" in
  let space =
    (Lime_gpu.Memopt.placement_for c.Lime_gpu.Pipeline.cp_decisions "data")
      .Lime_ir.Ir.space
  in
  Alcotest.(check string) "broadcast data in constant" "constant"
    (Lime_ir.Ir.mem_space_name space)

let () =
  Alcotest.run "lime-examples"
    [
      ( "compile",
        [
          Alcotest.test_case "nbody.lime" `Quick
            (test_compiles "nbody.lime" "NBody.computeForces");
          Alcotest.test_case "saxpy.lime" `Quick
            (test_compiles "saxpy.lime" "Saxpy.run");
          Alcotest.test_case "histogram.lime" `Quick
            (test_compiles "histogram.lime" "Hist.maxBinCount");
          Alcotest.test_case "matmul.lime" `Quick
            (test_compiles "matmul.lime" "MatMul.multiply");
        ] );
      ( "execute",
        [
          Alcotest.test_case "histogram" `Quick test_histogram_executes;
          Alcotest.test_case "saxpy" `Quick test_saxpy_executes;
          Alcotest.test_case "histogram placement" `Quick
            test_histogram_uses_constant_memory;
          Alcotest.test_case "matmul" `Quick test_matmul_executes;
          Alcotest.test_case "matmul placement" `Quick
            test_matmul_uses_local_memory;
        ] );
    ]
