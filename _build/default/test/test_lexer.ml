(* Unit tests for the Lime lexer. *)

open Lime_frontend

let toks src = List.map (fun l -> l.Lexer.tok) (Lexer.tokenize src)

let tok = Alcotest.testable (Fmt.of_to_string Token.to_string) ( = )

let check_toks name src expected =
  Alcotest.(check (list tok)) name (expected @ [ Token.EOF ]) (toks src)

let test_idents_keywords () =
  check_toks "keywords vs identifiers" "class value foo task taskx"
    Token.[ KW_CLASS; KW_VALUE; IDENT "foo"; KW_TASK; IDENT "taskx" ]

let test_numbers () =
  check_toks "ints and floats" "0 42 1.5f 2.5 1e3 7L 0x1F 2.0d"
    Token.
      [
        INT 0L; INT 42L; FLOAT 1.5; DOUBLE 2.5; DOUBLE 1000.0; INT 7L;
        INT 31L; DOUBLE 2.0;
      ]

let test_hex_long () =
  check_toks "hex with long suffix" "0xFFL" Token.[ INT 255L ];
  check_toks "big hex" "0x7FFFFFFFFFFFFFFF"
    Token.[ INT Int64.max_int ]

let test_operators () =
  check_toks "compound operators" "== != <= >= && || << >> >>> => ++ -- += @ !"
    Token.
      [
        EQ; NE; LE; GE; ANDAND; OROR; SHL; SHR; USHR; CONNECT; PLUSPLUS;
        MINUSMINUS; PLUS_ASSIGN; AT; BANG;
      ]

let test_brackets () =
  (* adjacent brackets fuse; separated ones do not *)
  check_toks "fused" "[[ ]]" Token.[ DLBRACKET; DRBRACKET ];
  check_toks "split" "[ [ ] ]"
    Token.[ LBRACKET; LBRACKET; RBRACKET; RBRACKET ];
  check_toks "value array type" "float[[][4]]"
    Token.
      [
        KW_FLOAT; DLBRACKET; RBRACKET; LBRACKET; INT 4L; DRBRACKET;
      ]

let test_nested_index () =
  (* a[b[i]] ends with a fused ]] the parser re-splits *)
  check_toks "nested index" "a[b[i]]"
    Token.
      [
        IDENT "a"; LBRACKET; IDENT "b"; LBRACKET; IDENT "i"; DRBRACKET;
      ]

let test_comments () =
  check_toks "line comment" "a // comment here\n b"
    Token.[ IDENT "a"; IDENT "b" ];
  check_toks "block comment" "a /* x\n y */ b" Token.[ IDENT "a"; IDENT "b" ]

let test_strings_chars () =
  check_toks "char and string" {|'x' "hi\n"|}
    Token.[ CHARLIT 'x'; STRINGLIT "hi\n" ];
  check_toks "escaped char" {|'\n'|} Token.[ CHARLIT '\n' ]

let test_positions () =
  let ls = Lexer.tokenize ~name:"t" "ab\n  cd" in
  let second = List.nth ls 1 in
  Alcotest.(check int) "line" 2
    (Lime_support.Loc.start_pos_of second.Lexer.loc).Lime_support.Loc.line;
  Alcotest.(check int) "col" 2
    (Lime_support.Loc.start_pos_of second.Lexer.loc).Lime_support.Loc.col

let expect_lex_error src =
  match Lime_support.Diag.protect (fun () -> Lexer.tokenize src) with
  | Ok _ -> Alcotest.fail ("expected lex error for: " ^ src)
  | Error d ->
      Alcotest.(check bool) "lexer phase" true (d.Lime_support.Diag.phase = Lime_support.Diag.Lexer)

let test_errors () =
  expect_lex_error "a $ b";
  expect_lex_error "\"unterminated";
  expect_lex_error "'a";
  expect_lex_error "/* unterminated"

let () =
  Alcotest.run "lexer"
    [
      ( "tokens",
        [
          Alcotest.test_case "idents/keywords" `Quick test_idents_keywords;
          Alcotest.test_case "numbers" `Quick test_numbers;
          Alcotest.test_case "hex/long" `Quick test_hex_long;
          Alcotest.test_case "operators" `Quick test_operators;
          Alcotest.test_case "brackets" `Quick test_brackets;
          Alcotest.test_case "nested index" `Quick test_nested_index;
          Alcotest.test_case "comments" `Quick test_comments;
          Alcotest.test_case "strings/chars" `Quick test_strings_chars;
          Alcotest.test_case "positions" `Quick test_positions;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
    ]
