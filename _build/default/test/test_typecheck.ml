(* Unit tests for the type checker: every acceptance and rejection rule the
   paper's compiler relies on (§3): value immutability, local-method
   isolation, map/reduce typing, task/connect typing, numeric promotion. *)

open Lime_typecheck
module D = Lime_support.Diag

let ok name src =
  Alcotest.test_case name `Quick (fun () ->
      match D.protect (fun () -> Check.check_string src) with
      | Ok _ -> ()
      | Error d -> Alcotest.fail (D.to_string d))

(* [reject name fragment src]: type checking must fail with a message
   containing [fragment]. *)
let reject name fragment src =
  Alcotest.test_case name `Quick (fun () ->
      match D.protect (fun () -> Check.check_string src) with
      | Ok _ -> Alcotest.fail "expected a type error"
      | Error d ->
          if
            not
              (Lime_support.Util.contains_substring ~sub:fragment
                 d.D.message)
          then
            Alcotest.fail
              (Printf.sprintf "expected error mentioning %S, got: %s" fragment
                 d.D.message))

let wrap body = Printf.sprintf "class C { %s }" body

(* ------------------------------------------------------------------ *)
(* Basic typing                                                        *)
(* ------------------------------------------------------------------ *)

let basics =
  [
    ok "arithmetic promotion"
      (wrap "double f(int a, float b) { return a + b * 2.0f; }");
    ok "widening assignment" (wrap "double f(int x) { double d = x; return d; }");
    reject "narrowing needs cast" "expected int"
      (wrap "int f(double d) { int x = d; return x; }");
    ok "explicit cast" (wrap "int f(double d) { return (int) d; }");
    reject "boolean arithmetic" "must be numeric"
      (wrap "int f(boolean b) { return b + 1; }");
    reject "if condition type" "must be boolean"
      (wrap "void f(int x) { if (x) { } }");
    reject "unknown variable" "unknown variable"
      (wrap "int f() { return y; }");
    reject "duplicate variable" "already declared"
      (wrap "void f() { int x = 1; int x = 2; }");
    ok "shadowing in inner scope"
      (wrap "void f() { int x = 1; if (x > 0) { int y = x; x = y; } }");
    reject "unknown class" "unknown class"
      (wrap "void f(Foo x) { }");
    reject "void parameter" "void"
      (wrap "void f(void v) { }");
    reject "missing return" "without returning"
      (wrap "int f(boolean b) { if (b) return 1; }");
    ok "return on both branches"
      (wrap "int f(boolean b) { if (b) return 1; else return 2; }");
    reject "duplicate method" "duplicate method"
      "class C { void f() { } void f() { } }";
    reject "duplicate class" "duplicate class" "class C { } class C { }";
    reject "reserved class name" "reserved" "class Math { }";
    ok "string in print" (wrap {|void f() { Lime.print("hello"); }|});
  ]

(* ------------------------------------------------------------------ *)
(* Value types and immutability                                        *)
(* ------------------------------------------------------------------ *)

let values =
  [
    reject "value array element assignment" "immutable"
      (wrap "void f(float[[]] xs) { xs[0] = 1.0f; }");
    reject "2d value array element assignment" "immutable"
      (wrap "void f(float[[][4]] xs) { xs[0][1] = 1.0f; }");
    ok "mutable array element assignment"
      (wrap "void f(float[] xs) { xs[0] = 1.0f; }");
    ok "value array rebinding"
      (wrap "void f(float[[]] xs, float[[]] ys) { xs = ys; }");
    reject "new value array" "initialized at construction"
      (wrap "void f() { float[[]] xs = new float[[10]]; }");
    ok "array literal builds bounded value array"
      (wrap "float[[3]] f(float x) { return { x, x, x }; }");
    ok "bounded to unbounded widening"
      (wrap "float[[]] f(float x) { return { x, x }; }");
    reject "unbounded to bounded" "expected float[[2]]"
      (wrap "float[[2]] f(float[[]] xs) { return xs; }");
    ok "toValue conversion"
      (wrap
         "float[[]] f(int n) { float[] a = new float[n]; return \
          Lime.toValue(a); }");
    reject "toValue of value array" "mutable array"
      (wrap "float[[]] f(float[[]] a) { return Lime.toValue(a); }");
    reject "value class mutable field" "must be final"
      "value class V { int x; }";
    reject "assign final field" "final field"
      "class C { static final int N = 1; void f() { C.N = 2; } }";
    ok "final instance field assigned in constructor"
      "class C { final int n; C(int m) { n = m; } }";
    reject "final instance field assigned elsewhere" "constructor"
      "class C { final int n; void f() { n = 3; } }";
  ]

(* ------------------------------------------------------------------ *)
(* Local methods (isolation)                                           *)
(* ------------------------------------------------------------------ *)

let locals =
  [
    ok "local calls local"
      (wrap
         "static local int g(int x) { return x; } static local int f(int x) \
          { return C.g(x); }");
    reject "local calls non-local" "isolation"
      (wrap
         "static int g(int x) { return x; } static local int f(int x) { \
          return C.g(x); }");
    ok "local calls Math"
      (wrap "static local float f(float x) { return Math.sqrt(x); }");
    reject "local uses print" "cannot be used inside a local method"
      (wrap "static local int f(int x) { Lime.print(x); return x; }");
    reject "local reads mutable static" "isolation"
      (wrap
         "static int counter; static local int f(int x) { return counter; }");
    ok "local reads final static"
      (wrap
         "static final int N = 10; static local int f(int x) { return x + N; \
          }");
    reject "local writes static" "isolation"
      (wrap
         "static final int N = 1; static int m; static local int f(int x) { \
          m = x; return x; }");
    reject "local param must be value" "value type"
      (wrap "static local int f(int[] xs) { return xs[0]; }");
    reject "local return must be value" "value type"
      (wrap "static local int[] f(int x) { return new int[x]; }");
    ok "local instance method reads own field"
      "class C { int n; C(int m) { n = m; } local int f(int x) { return n + \
       x; } }";
    reject "local uses toValue" "local method"
      (wrap
         "static local float[[]] f(int n) { return Lime.toValue(new \
          float[n]); }");
  ]

(* ------------------------------------------------------------------ *)
(* Map and reduce                                                      *)
(* ------------------------------------------------------------------ *)

let mapreduce_src body =
  Printf.sprintf
    {|class M {
  static local float sq(float x) { return x * x; }
  static local float addc(float c, float x) { return x + c; }
  float inst(float x) { return x; }
  %s
}|}
    body

let mapreduce =
  [
    ok "simple map"
      (mapreduce_src
         "static local float[[]] f(float[[]] xs) { return M.sq @ xs; }");
    ok "map with captured arg"
      (mapreduce_src
         "static local float[[]] f(float[[]] xs) { return M.addc(1.0f) @ xs; \
          }");
    ok "map over range"
      (mapreduce_src
         "static local float[[]] f(int n) { return M.ofint @ Lime.range(n); \
          } static local float ofint(int i) { return (float) i; }");
    reject "map function must be static" "must be static"
      (mapreduce_src
         "static local float[[]] f(float[[]] xs) { return M.inst @ xs; }");
    reject "map over mutable array" "value array"
      (mapreduce_src
         "static float[[]] f(float[] xs) { return M.sq @ xs; }");
    reject "map wrong arity" "binds"
      (mapreduce_src
         "static local float[[]] f(float[[]] xs) { return M.addc @ xs; }");
    reject "map elem type mismatch" "array elements"
      (mapreduce_src
         "static local float[[]] g(double[[]] xs) { return M.sq @ xs; }");
    ok "reduce plus"
      (mapreduce_src "static local float f(float[[]] xs) { return + ! xs; }");
    ok "reduce max"
      (mapreduce_src
         "static local float f(float[[]] xs) { return Math.max ! xs; }");
    ok "reduce custom combinator"
      (mapreduce_src
         "static local float comb(float a, float b) { return a + b; } static \
          local float f(float[[]] xs) { return M.comb ! xs; }");
    reject "reduce combinator signature" "signature"
      (mapreduce_src
         "static local float bad(float a, int b) { return a; } static local \
          float f(float[[]] xs) { return M.bad ! xs; }");
    reject "reduce over mutable" "value array"
      (mapreduce_src "static float f(float[] xs) { return + ! xs; }");
    reject "bitwise reduce needs ints" "integer elements"
      (mapreduce_src "static local float f(float[[]] xs) { return ^ ! xs; }");
    ok "bounded range has bounded type"
      (mapreduce_src
         "static local float[[8]] g() { return M.ofint2 @ Lime.range(8); } \
          static local float ofint2(int i) { return (float) i; }");
  ]

(* ------------------------------------------------------------------ *)
(* Tasks and connect                                                   *)
(* ------------------------------------------------------------------ *)

let task_src body =
  Printf.sprintf
    {|class T {
  int n;
  T(int m) { n = m; }
  local float[[]] src() { return T.gen @ Lime.range(n); }
  static local float gen(int i) { return (float) i; }
  static local float[[]] work(float[[]] xs) { return T.gen @ Lime.range(xs.length); }
  void sink(float[[]] xs) { }
  int[[]] intsrc() { return Lime.range(n); }
  %s
}|}
    body

let tasks =
  [
    ok "full graph with finish"
      (task_src
         "static void main(int n) { (task T(n).src => task T.work => task \
          T(n).sink).finish(3); }");
    reject "connect type mismatch" "mismatched port types"
      (task_src
         "static void main(int n) { (task T(n).intsrc => task \
          T.work).finish(); }");
    reject "finish on incomplete graph" "complete task graph"
      (task_src
         "static void main(int n) { (task T(n).src => task T.work).finish(); \
          }");
    reject "instance worker without instance" "instance method"
      (task_src "static void main(int n) { (task T.src).finish(); }");
    reject "static worker with ctor args" "is static"
      (task_src "static void main(int n) { (task T(n).work).finish(); }");
    reject "unknown worker" "unknown worker"
      (task_src "static void main(int n) { (task T.missing).finish(); }");
    reject "ctor arity" "expects 1 argument"
      (task_src "static void main(int n) { (task T(n, n).src).finish(); }");
  ]

(* ------------------------------------------------------------------ *)
(* Isolation verdicts recorded on typed tasks                          *)
(* ------------------------------------------------------------------ *)

let test_isolation_flag () =
  let tp =
    Check.check_string
      {|class T {
  int n;
  T(int m) { n = m; }
  local float[[]] src() { return T.gen @ Lime.range(n); }
  static local float gen(int i) { return (float) i; }
  static local float[[]] work(float[[]] xs) { return T.gen @ Lime.range(xs.length); }
  static float[[]] notlocal(float[[]] xs) { return xs; }
  void sink(float[[]] xs) { }
  static void main(int n) {
    (task T(n).src => task T.work => task T(n).sink).finish(1);
    (task T(n).src => task T.notlocal => task T(n).sink).finish(1);
  }
}|}
  in
  let main = Option.get (Tast.find_method tp "T" "main") in
  let flags = ref [] in
  List.iter
    (Tast.fold_stmt
       ~stmt:(fun () _ -> ())
       ~expr:(fun () e ->
         match e.Tast.te with
         | Tast.TTaskE tr ->
             flags := (tr.Tast.tt_method, tr.Tast.tt_isolated) :: !flags
         | _ -> ())
       ())
    main.Tast.tm_body;
  let get m = List.assoc m !flags in
  Alcotest.(check bool) "work is isolated" true (get "work");
  Alcotest.(check bool) "src is isolated (local instance)" true (get "src");
  Alcotest.(check bool) "notlocal not isolated" false (get "notlocal");
  Alcotest.(check bool) "sink not isolated" false (get "sink")

let test_map_parallel_flag () =
  let tp =
    Check.check_string
      (mapreduce_src
         "static local float[[]] f(float[[]] xs) { return M.sq @ xs; }")
  in
  let f = Option.get (Tast.find_method tp "M" "f") in
  let found = ref false in
  List.iter
    (Tast.fold_stmt
       ~stmt:(fun () _ -> ())
       ~expr:(fun () e ->
         match e.Tast.te with
         | Tast.TMap (mi, _, _) ->
             found := true;
             Alcotest.(check bool) "map is provably parallel" true
               mi.Tast.mi_parallel
         | _ -> ())
       ())
    f.Tast.tm_body;
  Alcotest.(check bool) "map found" true !found

let () =
  Alcotest.run "typecheck"
    [
      ("basics", basics);
      ("values", values);
      ("locals", locals);
      ("mapreduce", mapreduce);
      ("tasks", tasks);
      ( "flags",
        [
          Alcotest.test_case "isolation" `Quick test_isolation_flag;
          Alcotest.test_case "map parallel" `Quick test_map_parallel_flag;
        ] );
    ]
