(* Unit tests for the reference interpreter: Java numeric semantics (32-bit
   wraparound, unsigned shift, byte narrowing, single-precision rounding),
   arrays and views, objects, counters. *)

module Ir = Lime_ir.Ir
module V = Lime_ir.Value
module Interp = Lime_ir.Interp
module Check = Lime_typecheck.Check
module Lower = Lime_ir.Lower

let run_fn src ~meth args =
  let md = Lower.lower_program (Check.check_string src) in
  let st = Interp.create md in
  (Interp.run st ~cls:"C" ~meth args, st)

let run1 src ~meth args = fst (run_fn src ~meth args)

let vint = function
  | V.VInt i -> i
  | v -> Alcotest.failf "expected int, got %s" (V.to_string v)

let vfloat = function
  | V.VFloat f | V.VDouble f -> f
  | v -> Alcotest.failf "expected float, got %s" (V.to_string v)

let test_int32_wraparound () =
  let v =
    run1 "class C { static int f(int x) { return x * 1103515245 + 12345; } }"
      ~meth:"f" [ V.VInt 987654321 ]
  in
  (* Java semantics: (987654321 * 1103515245 + 12345) as int32 *)
  let expected =
    Int32.to_int
      (Int32.add
         (Int32.mul (Int32.of_int 987654321) (Int32.of_int 1103515245))
         (Int32.of_int 12345))
  in
  Alcotest.(check int) "wraps like Java" expected (vint v)

let test_ushr () =
  let v =
    run1 "class C { static int f(int x) { return x >>> 16; } }" ~meth:"f"
      [ V.VInt (-1) ]
  in
  Alcotest.(check int) "-1 >>> 16" 65535 (vint v)

let test_byte_narrowing () =
  let v =
    run1 "class C { static byte f(int x) { return (byte) x; } }" ~meth:"f"
      [ V.VInt 200 ]
  in
  Alcotest.(check int) "200 narrows to -56" (-56) (vint v)

let test_single_precision () =
  (* float arithmetic rounds to 32 bits after each op *)
  let v =
    run1 "class C { static float f(float a, float b) { return a + b; } }"
      ~meth:"f"
      [ V.VFloat (V.f32 0.1); V.VFloat (V.f32 0.2) ]
  in
  Alcotest.(check (float 0.0)) "f32 rounding" (V.f32 (V.f32 0.1 +. V.f32 0.2))
    (vfloat v)

let test_integer_division () =
  let v = run1 "class C { static int f(int a, int b) { return a / b; } }"
      ~meth:"f" [ V.VInt 7; V.VInt 2 ] in
  Alcotest.(check int) "7/2" 3 (vint v);
  match
    Lime_support.Diag.protect (fun () ->
        run1 "class C { static int f(int a) { return a / 0; } }" ~meth:"f"
          [ V.VInt 1 ])
  with
  | Ok _ -> Alcotest.fail "expected division by zero"
  | Error _ -> ()
  | exception Interp.Runtime_error _ -> ()

let test_long_ops () =
  let v =
    run1
      "class C { static long f(int a) { return ((long) a << 32) | (long) a; \
       } }"
      ~meth:"f" [ V.VInt 3 ]
  in
  Alcotest.(check bool) "long shift/or" true
    (v = V.VLong (Int64.logor (Int64.shift_left 3L 32) 3L))

let test_math_builtins () =
  let v =
    run1 "class C { static double f(double x) { return Math.sqrt(x); } }"
      ~meth:"f" [ V.VDouble 9.0 ]
  in
  Alcotest.(check (float 1e-12)) "sqrt" 3.0 (vfloat v);
  let v =
    run1 "class C { static int f(int a, int b) { return Math.max(a, b); } }"
      ~meth:"f" [ V.VInt 2; V.VInt 5 ]
  in
  Alcotest.(check int) "max" 5 (vint v)

let test_arrays_views () =
  let src =
    {|class C {
  static float f(float[[][4]] m) {
    float[[4]] row = m[1];
    return row[2];
  }
}|}
  in
  let m = V.of_float_matrix 3 4 (Array.init 12 float_of_int) in
  let v = run1 src ~meth:"f" [ V.VArr m ] in
  Alcotest.(check (float 0.0)) "view element" 6.0 (vfloat v)

let test_bounds_check () =
  let src = "class C { static float f(float[[]] xs) { return xs[10]; } }" in
  let xs = V.of_float_array [| 1.0; 2.0 |] in
  match
    Lime_support.Diag.protect (fun () -> run1 src ~meth:"f" [ V.VArr xs ])
  with
  | Ok _ -> Alcotest.fail "expected bounds error"
  | Error _ -> ()
  | exception Interp.Runtime_error m ->
      Alcotest.(check bool) "message mentions bounds" true
        (Lime_support.Util.contains_substring ~sub:"out of bounds" m)

let test_mutable_array_roundtrip () =
  let src =
    {|class C {
  static int f(int n) {
    int[] a = new int[n];
    for (int i = 0; i < n; i++) { a[i] = i * i; }
    int s = 0;
    for (int i = 0; i < n; i++) { s += a[i]; }
    return s;
  }
}|}
  in
  Alcotest.(check int) "sum of squares" 285 (vint (run1 src ~meth:"f" [ V.VInt 10 ]))

let test_objects () =
  let src =
    {|class C {
  int acc;
  C(int start) { acc = start; }
  void bump(int k) { acc = acc + k; }
  int get() { return acc; }
  static int f() {
    C c = new C(5);
    c.bump(3);
    c.bump(2);
    return c.get();
  }
}|}
  in
  Alcotest.(check int) "stateful object" 10 (vint (run1 src ~meth:"f" []))

let test_static_state () =
  let src =
    {|class C {
  static int counter = 100;
  static int f() { counter = counter + 1; return counter; }
}|}
  in
  let md = Lower.lower_program (Check.check_string src) in
  let st = Interp.create md in
  ignore (Interp.run st ~cls:"C" ~meth:"f" []);
  let v = Interp.run st ~cls:"C" ~meth:"f" [] in
  Alcotest.(check int) "static persists" 102 (vint v)

let test_counters () =
  let src =
    {|class C {
  static float f(float[[]] xs) {
    float s = 0.0f;
    for (int i = 0; i < xs.length; i++) { s += Math.sqrt(xs[i]); }
    return s;
  }
}|}
  in
  let xs = V.of_float_array (Array.make 8 4.0) in
  let _, st = run_fn src ~meth:"f" [ V.VArr xs ] in
  let c = st.Interp.counters in
  Alcotest.(check int) "8 sqrts" 8 c.Interp.sqrts;
  Alcotest.(check bool) "memory reads counted" true (c.Interp.mem_reads >= 8);
  Alcotest.(check bool) "branches counted" true (c.Interp.branches >= 8)

let test_range_and_tovalue () =
  let src =
    {|class C {
  static int f(int n) {
    int[[]] r = Lime.range(n);
    return r[n - 1];
  }
  static float g(int n) {
    float[] a = new float[n];
    a[2] = 7.5f;
    float[[]] v = Lime.toValue(a);
    a[2] = 0.0f;
    return v[2];
  }
}|}
  in
  Alcotest.(check int) "range last" 9 (vint (run1 src ~meth:"f" [ V.VInt 10 ]));
  (* toValue is a *copy*: later mutation of the source is invisible *)
  Alcotest.(check (float 0.0)) "toValue copies" 7.5
    (vfloat (run1 src ~meth:"g" [ V.VInt 5 ]))

let test_break_continue () =
  let src =
    {|class C {
  static int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
      if (i == 3) { continue; }
      if (i == 7) { break; }
      s += i;
    }
    return s;
  }
}|}
  in
  (* 0+1+2+4+5+6 = 18 *)
  Alcotest.(check int) "break/continue" 18 (vint (run1 src ~meth:"f" [ V.VInt 100 ]))

let () =
  Alcotest.run "interp"
    [
      ( "numerics",
        [
          Alcotest.test_case "int32 wraparound" `Quick test_int32_wraparound;
          Alcotest.test_case "ushr" `Quick test_ushr;
          Alcotest.test_case "byte narrowing" `Quick test_byte_narrowing;
          Alcotest.test_case "single precision" `Quick test_single_precision;
          Alcotest.test_case "integer division" `Quick test_integer_division;
          Alcotest.test_case "long ops" `Quick test_long_ops;
          Alcotest.test_case "math builtins" `Quick test_math_builtins;
        ] );
      ( "arrays",
        [
          Alcotest.test_case "views" `Quick test_arrays_views;
          Alcotest.test_case "bounds" `Quick test_bounds_check;
          Alcotest.test_case "mutable roundtrip" `Quick
            test_mutable_array_roundtrip;
          Alcotest.test_case "range/toValue" `Quick test_range_and_tovalue;
        ] );
      ( "objects/state",
        [
          Alcotest.test_case "objects" `Quick test_objects;
          Alcotest.test_case "statics" `Quick test_static_state;
        ] );
      ( "control",
        [ Alcotest.test_case "break/continue" `Quick test_break_continue ] );
      ( "counters", [ Alcotest.test_case "counts" `Quick test_counters ] );
    ]
