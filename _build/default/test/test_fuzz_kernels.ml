(* Differential fuzzing of the whole compiler: generate random well-typed
   map kernels as Lime source, compile them through the full pipeline, run
   them in the interpreter, and compare against direct OCaml evaluation of
   the same expression tree.  Every mismatch is a real compiler bug
   (parser, type checker, lowering, inlining or interpreter semantics). *)

module V = Lime_ir.Value
module Prng = Lime_support.Prng

(* ------------------------------------------------------------------ *)
(* Random float expressions over: x (the element), c (captured scalar), a
   constant pool, and a second array read ys[i & mask].                 *)
(* ------------------------------------------------------------------ *)

type fexpr =
  | X
  | C
  | Lit of float
  | Add of fexpr * fexpr
  | Sub of fexpr * fexpr
  | Mul of fexpr * fexpr
  | Neg of fexpr
  | Sqrt of fexpr  (** applied to e*e + 1 to stay in domain *)
  | MinE of fexpr * fexpr
  | MaxE of fexpr * fexpr
  | AbsE of fexpr
  | Cond of fexpr * fexpr * fexpr  (** if a < b then t else e *)

let rec gen_expr rng depth : fexpr =
  if depth = 0 then
    match Prng.int rng 3 with
    | 0 -> X
    | 1 -> C
    | _ -> Lit (Float.of_int (Prng.int rng 9) *. 0.25)
  else
    let sub () = gen_expr rng (depth - 1) in
    match Prng.int rng 10 with
    | 0 -> Add (sub (), sub ())
    | 1 -> Sub (sub (), sub ())
    | 2 -> Mul (sub (), sub ())
    | 3 -> Neg (sub ())
    | 4 -> Sqrt (sub ())
    | 5 -> MinE (sub (), sub ())
    | 6 -> MaxE (sub (), sub ())
    | 7 -> AbsE (sub ())
    | 8 -> Cond (sub (), sub (), sub ())
    | _ -> X

let rec to_lime (e : fexpr) : string =
  match e with
  | X -> "x"
  | C -> "c"
  | Lit f -> Printf.sprintf "%.2ff" f
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (to_lime a) (to_lime b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (to_lime a) (to_lime b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (to_lime a) (to_lime b)
  | Neg a -> Printf.sprintf "(-%s)" (to_lime a)
  | Sqrt a -> Printf.sprintf "Math.sqrt(%s * %s + 1.0f)" (to_lime a) (to_lime a)
  | MinE (a, b) -> Printf.sprintf "Math.min(%s, %s)" (to_lime a) (to_lime b)
  | MaxE (a, b) -> Printf.sprintf "Math.max(%s, %s)" (to_lime a) (to_lime b)
  | AbsE a -> Printf.sprintf "Math.abs(%s)" (to_lime a)
  | Cond (a, b, t) ->
      Printf.sprintf "(%s < %s ? %s : %s)" (to_lime a) (to_lime b) (to_lime t)
        (to_lime a)

(* direct evaluation with the interpreter's single-precision semantics:
   round after every operation, like Java/OpenCL float *)
let rec eval (e : fexpr) ~x ~c : float =
  let f32 = V.f32 in
  match e with
  | X -> x
  | C -> c
  | Lit f -> f32 f
  | Add (a, b) -> f32 (eval a ~x ~c +. eval b ~x ~c)
  | Sub (a, b) -> f32 (eval a ~x ~c -. eval b ~x ~c)
  | Mul (a, b) -> f32 (eval a ~x ~c *. eval b ~x ~c)
  | Neg a -> f32 (-.eval a ~x ~c)
  | Sqrt a ->
      let v = eval a ~x ~c in
      f32 (sqrt (f32 (f32 (v *. v) +. 1.0)))
  | MinE (a, b) -> f32 (Float.min (eval a ~x ~c) (eval b ~x ~c))
  | MaxE (a, b) -> f32 (Float.max (eval a ~x ~c) (eval b ~x ~c))
  | AbsE a -> f32 (Float.abs (eval a ~x ~c))
  | Cond (a, b, t) ->
      let va = eval a ~x ~c and vb = eval b ~x ~c in
      if va < vb then eval t ~x ~c else va

let program_of (e : fexpr) : string =
  Printf.sprintf
    {|class Fuzz {
  static local float f(float c, float x) {
    return %s;
  }
  static local float[[]] work(float c, float[[]] xs) {
    return Fuzz.f(c) @ xs;
  }
}|}
    (to_lime e)

(* ------------------------------------------------------------------ *)
(* The differential property                                            *)
(* ------------------------------------------------------------------ *)

let run_case rng : bool =
  let e = gen_expr rng 4 in
  let src = program_of e in
  match
    Lime_support.Diag.protect (fun () ->
        Lime_gpu.Pipeline.compile ~worker:"Fuzz.work" src)
  with
  | Error d ->
      Alcotest.failf "generated program rejected:\n%s\n---\n%s"
        (Lime_support.Diag.to_string d)
        src
  | Ok compiled ->
      let n = 8 + Prng.int rng 24 in
      let xs = Array.init n (fun _ -> V.f32 (Prng.float_range rng (-4.0) 4.0)) in
      let c = V.f32 (Prng.float_range rng (-2.0) 2.0) in
      (* run the extracted, simplified kernel (the full pipeline output) *)
      let st =
        Lime_ir.Interp.create
          (Lime_gpu.Kernel.to_module compiled.Lime_gpu.Pipeline.cp_kernel)
      in
      let got =
        Lime_ir.Interp.call_function st "Fuzz.work" None
          [ V.VFloat c; V.VArr (V.of_float_array xs) ]
      in
      let want = Array.map (fun x -> eval e ~x ~c) xs in
      let ok =
        V.approx_equal ~rtol:0.0 ~atol:0.0 got (V.VArr (V.of_float_array want))
      in
      if not ok then
        Alcotest.failf "kernel result differs from direct evaluation for:\n%s"
          src;
      (* and the generated OpenCL must be validator-clean *)
      let r = Lime_gpu.Clcheck.check compiled.cp_opencl in
      if not (Lime_gpu.Clcheck.ok r) then
        Alcotest.failf "invalid OpenCL for:\n%s\n---\n%s" src
          (Lime_gpu.Clcheck.report r);
      true

let test_fuzz_differential () =
  let rng = Prng.create 20120611 (* the paper's conference date *) in
  for _ = 1 to 150 do
    ignore (run_case rng)
  done

let test_fuzz_placement_independent () =
  (* random kernels produce identical results under every memory config *)
  let rng = Prng.create 99 in
  for _ = 1 to 20 do
    let e = gen_expr rng 3 in
    let src = program_of e in
    let n = 8 in
    let xs = V.of_float_array (Array.init n (fun i -> float_of_int i *. 0.3)) in
    let run cfg =
      let c = Lime_gpu.Pipeline.compile ~config:cfg ~worker:"Fuzz.work" src in
      let st =
        Lime_ir.Interp.create
          (Lime_gpu.Kernel.to_module c.Lime_gpu.Pipeline.cp_kernel)
      in
      Lime_ir.Interp.call_function st "Fuzz.work" None
        [ V.VFloat 1.5; V.VArr xs ]
    in
    let base = run Lime_gpu.Memopt.config_global in
    List.iter
      (fun (_, cfg) ->
        if not (V.approx_equal ~rtol:0.0 ~atol:0.0 base (run cfg)) then
          Alcotest.failf "config changed results for:\n%s" src)
      Lime_gpu.Memopt.fig8_configs
  done

let () =
  Alcotest.run "fuzz-kernels"
    [
      ( "differential",
        [
          Alcotest.test_case "150 random kernels vs direct eval" `Slow
            test_fuzz_differential;
          Alcotest.test_case "placement independence" `Slow
            test_fuzz_placement_independent;
        ] );
    ]
