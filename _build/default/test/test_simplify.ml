(* Tests for the kernel IR simplifier: folding rules, algebraic identities,
   dead-code elimination, and — most importantly — differential testing
   that simplification never changes results on any benchmark. *)

module Ir = Lime_ir.Ir
module V = Lime_ir.Value
module S = Lime_gpu.Simplify
module Kernel = Lime_gpu.Kernel
module B = Lime_benchmarks.Bench_def

let kernel_of src ~worker =
  Kernel.extract
    (Lime_ir.Lower.lower_program (Lime_typecheck.Check.check_string src))
    ~worker

let count pred (body : Ir.stmt list) =
  let n = ref 0 in
  List.iter
    (Ir.iter_stmt
       ~stmt:(fun s -> if pred (`S s) then incr n)
       ~expr:(fun e -> if pred (`E e) then incr n))
    body;
  !n

let test_constant_folding () =
  (* EPS and SCALE arithmetic folds: after simplification no Bin over two
     constants remains *)
  let k =
    kernel_of
      {|class K {
  static final float A = 2.0f;
  static final float B = 3.0f;
  static local float f(float x) { return x * (A * B) + (1.0f + 2.0f); }
  static local float[[]] work(float[[]] xs) { return K.f @ xs; }
}|}
      ~worker:"K.work"
  in
  let k' = S.kernel k in
  let const_pairs body =
    count
      (function
        | `E (Ir.Bin (_, _, Ir.Const _, Ir.Const _)) -> true
        | _ -> false)
      body
  in
  Alcotest.(check bool) "pairs existed before" true
    (const_pairs k.Kernel.k_body > 0);
  Alcotest.(check int) "no constant pairs after" 0
    (const_pairs k'.Kernel.k_body);
  (* and 6.0f appears folded *)
  Alcotest.(check bool) "6.0 present" true
    (count
       (function `E (Ir.Const (Ir.CFloat 6.0)) -> true | _ -> false)
       k'.Kernel.k_body
    > 0)

let test_identities () =
  let k =
    kernel_of
      {|class K {
  static local float f(float x) { return (x * 1.0f + 0.0f) / 1.0f; }
  static local float[[]] work(float[[]] xs) { return K.f @ xs; }
}|}
      ~worker:"K.work"
  in
  let k' = S.kernel k in
  (* f(x) should reduce to the bare element variable: no arithmetic left *)
  let arith body =
    count
      (function
        | `E (Ir.Bin ((Add | Sub | Mul | Div), (Ir.SFloat | Ir.SDouble), _, _))
          ->
            true
        | _ -> false)
      body
  in
  Alcotest.(check int) "no float arithmetic left" 0 (arith k'.Kernel.k_body)

let test_dead_code_removed () =
  let k =
    kernel_of
      {|class K {
  static local float f(float x) {
    float unused = Math.sqrt(x) + 42.0f;
    float alsoUnused = unused * 2.0f;
    return x;
  }
  static local float[[]] work(float[[]] xs) { return K.f @ xs; }
}|}
      ~worker:"K.work"
  in
  let k' = S.kernel k in
  let sqrts body =
    count
      (function
        | `E (Ir.Intrinsic (Lime_typecheck.Tast.BSqrt, _, _)) -> true
        | _ -> false)
      body
  in
  Alcotest.(check bool) "sqrt before" true (sqrts k.Kernel.k_body > 0);
  Alcotest.(check int) "dead sqrt removed" 0 (sqrts k'.Kernel.k_body)

let test_branch_pruning () =
  let k =
    kernel_of
      {|class K {
  static final boolean DEBUG = false;
  static local float f(float x) {
    if (DEBUG) { x = x * 100.0f; }
    return x;
  }
  static local float[[]] work(float[[]] xs) { return K.f @ xs; }
}|}
      ~worker:"K.work"
  in
  let k' = S.kernel k in
  Alcotest.(check int) "constant-false branch pruned" 0
    (count (function `S (Ir.SIf _) -> true | _ -> false) k'.Kernel.k_body)

let test_division_by_zero_preserved () =
  (* x / 0 must NOT be folded away or treated as pure *)
  let k =
    kernel_of
      {|class K {
  static local int f(int x) {
    int trap = x / (x - x);
    return trap;
  }
  static local int[[]] work(int[[]] xs) { return K.f @ xs; }
}|}
      ~worker:"K.work"
  in
  let k' = S.kernel k in
  let st = Lime_ir.Interp.create (Kernel.to_module k') in
  match
    Lime_ir.Interp.call_function st "K.work" None
      [ V.VArr (V.of_int_array [| 5 |]) ]
  with
  | exception Lime_ir.Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "division by zero must survive simplification"

let differential (b : B.t) () =
  (* simplified and unsimplified kernels produce identical results *)
  let cfg = b.B.best_config in
  let plain =
    Lime_gpu.Pipeline.compile ~config:cfg ~simplify:false ~worker:b.B.worker
      b.B.source_small
  in
  let simp =
    Lime_gpu.Pipeline.compile ~config:cfg ~simplify:true ~worker:b.B.worker
      b.B.source_small
  in
  let input = b.B.input_small () in
  let run (c : Lime_gpu.Pipeline.compiled) =
    let st = Lime_ir.Interp.create (Kernel.to_module c.Lime_gpu.Pipeline.cp_kernel) in
    Lime_ir.Interp.call_function st c.cp_kernel.Kernel.k_name None [ input ]
  in
  Alcotest.(check bool) "identical results" true
    (V.approx_equal ~rtol:0.0 ~atol:0.0 (run plain) (run simp))

let test_simplify_shrinks_profiles () =
  (* the simplifier should not *increase* the modelled work *)
  List.iter
    (fun (b : B.t) ->
      let work simplify =
        let c =
          Lime_gpu.Pipeline.compile ~simplify ~worker:b.B.worker b.B.source
        in
        let input = b.B.input () in
        let k = c.Lime_gpu.Pipeline.cp_kernel in
        let shapes, scalars = Lime_runtime.Engine.shapes_of_args k [ input ] in
        let p = Gpusim.Profile.profile k c.cp_decisions ~shapes ~scalars in
        p.Gpusim.Profile.p_alu
      in
      Alcotest.(check bool)
        (b.B.name ^ ": alu(simplified) <= alu(plain)")
        true
        (work true <= work false +. 0.001))
    [ Lime_benchmarks.Nbody.single; Lime_benchmarks.Series.single ]

let () =
  Alcotest.run "simplify"
    [
      ( "rules",
        [
          Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "identities" `Quick test_identities;
          Alcotest.test_case "dead code" `Quick test_dead_code_removed;
          Alcotest.test_case "branch pruning" `Quick test_branch_pruning;
          Alcotest.test_case "div-by-zero preserved" `Quick
            test_division_by_zero_preserved;
        ] );
      ( "differential",
        List.map
          (fun (b : B.t) -> Alcotest.test_case b.B.name `Quick (differential b))
          Lime_benchmarks.Registry.all );
      ( "profiles",
        [ Alcotest.test_case "never more work" `Quick test_simplify_shrinks_profiles ] );
    ]
