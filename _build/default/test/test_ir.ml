(* Unit tests for IR lowering: canonical loop recognition, map inlining,
   reduce lowering, conditional laziness, renaming hygiene. *)

module Ir = Lime_ir.Ir
module Lower = Lime_ir.Lower
module Check = Lime_typecheck.Check

let lower src = Lower.lower_program (Check.check_string src)

let func md name = Option.get (Ir.find_func md name)

let count_stmts pred (f : Ir.func) =
  let n = ref 0 in
  List.iter
    (Ir.iter_stmt
       ~stmt:(fun s -> if pred s then incr n)
       ~expr:(fun _ -> ()))
    f.Ir.fn_body;
  !n

let test_canonical_for () =
  let md =
    lower
      "class C { static int f(int n) { int s = 0; for (int i = 0; i < n; \
       i++) { s += i; } return s; } }"
  in
  let f = func md "C.f" in
  Alcotest.(check int) "one SFor" 1
    (count_stmts (function Ir.SFor _ -> true | _ -> false) f);
  Alcotest.(check int) "no SWhile" 0
    (count_stmts (function Ir.SWhile _ -> true | _ -> false) f)

let test_noncanonical_for () =
  let md =
    lower
      "class C { static int f(int n) { int s = 0; for (int i = 0; i < n; i \
       += 2) { s += i; } return s; } }"
  in
  let f = func md "C.f" in
  Alcotest.(check int) "desugars to while" 1
    (count_stmts (function Ir.SWhile _ -> true | _ -> false) f)

let test_continue_rejected_in_noncanonical () =
  match
    Lime_support.Diag.protect (fun () ->
        lower
          "class C { static void f(int n) { for (int i = 0; i < n; i += 2) \
           { continue; } } }")
  with
  | Ok _ -> Alcotest.fail "expected lowering error"
  | Error d ->
      Alcotest.(check bool) "mentions continue" true
        (Lime_support.Util.contains_substring ~sub:"continue"
           d.Lime_support.Diag.message)

let map_src =
  {|class C {
  static local float sq(float x) { return x * x; }
  static local float[[]] f(float[[]] xs) { return C.sq @ xs; }
  static local float[[]] g(int n) { return C.ofi @ Lime.range(n); }
  static local float ofi(int i) { return (float) i; }
  static local float r(float[[]] xs) { return + ! xs; }
}|}

let test_map_lowering () =
  let md = lower map_src in
  let f = func md "C.f" in
  Alcotest.(check int) "parfor generated" 1
    (count_stmts (function Ir.SParFor _ -> true | _ -> false) f);
  Alcotest.(check int) "inline block generated" 1
    (count_stmts (function Ir.SInlineBlock _ -> true | _ -> false) f);
  (* the map output is declared and returned *)
  match List.rev f.Ir.fn_body with
  | Ir.SReturn (Some (Ir.Var _)) :: _ -> ()
  | _ -> Alcotest.fail "map result returned"

let test_map_over_range_binds_index () =
  let md = lower map_src in
  let g = func md "C.g" in
  (* no materialized range array: no RangeE left in the body *)
  let ranges = ref 0 in
  List.iter
    (Ir.iter_stmt
       ~stmt:(fun _ -> ())
       ~expr:(fun e -> match e with Ir.RangeE _ -> incr ranges | _ -> ()))
    g.Ir.fn_body;
  Alcotest.(check int) "range not materialized" 0 !ranges;
  Alcotest.(check int) "parfor present" 1
    (count_stmts (function Ir.SParFor _ -> true | _ -> false) g)

let test_reduce_lowering () =
  let md = lower map_src in
  let r = func md "C.r" in
  Alcotest.(check int) "reduce node" 1
    (count_stmts (function Ir.SReduce _ -> true | _ -> false) r)

let test_cond_lowered_lazily () =
  let md =
    lower
      "class C { static int f(boolean b, int x) { return b ? x / 0 : 1; } }"
  in
  let f = func md "C.f" in
  (* the division must live inside an SIf branch, not be pre-evaluated *)
  Alcotest.(check int) "if emitted" 1
    (count_stmts (function Ir.SIf _ -> true | _ -> false) f);
  (* executing with b=false must not divide by zero *)
  let st = Lime_ir.Interp.create md in
  let v =
    Lime_ir.Interp.run st ~cls:"C" ~meth:"f"
      [ Lime_ir.Value.VInt 0; Lime_ir.Value.VInt 5 ]
  in
  Alcotest.(check bool) "lazy branch" true (v = Lime_ir.Value.VInt 1)

let test_field_inits_and_statics () =
  let md =
    lower
      "class C { static final int N = 2 + 3; int state = 7; static int g() \
       { return C.N; } }"
  in
  Alcotest.(check int) "one static init" 1 (List.length md.Ir.md_static_inits);
  let inits = List.assoc "C" md.Ir.md_field_inits in
  Alcotest.(check int) "one field init" 1 (List.length inits)

let test_shadowing_renamed () =
  (* two variables named x in different scopes become distinct IR names *)
  let md =
    lower
      "class C { static int f() { int x = 1; if (x > 0) { int y = x + 1; x \
       = y; } return x; } }"
  in
  let st = Lime_ir.Interp.create md in
  let v = Lime_ir.Interp.run st ~cls:"C" ~meth:"f" [] in
  Alcotest.(check bool) "result 2" true (v = Lime_ir.Value.VInt 2)

let () =
  Alcotest.run "ir-lowering"
    [
      ( "loops",
        [
          Alcotest.test_case "canonical for" `Quick test_canonical_for;
          Alcotest.test_case "non-canonical for" `Quick test_noncanonical_for;
          Alcotest.test_case "continue rejected" `Quick
            test_continue_rejected_in_noncanonical;
        ] );
      ( "map/reduce",
        [
          Alcotest.test_case "map lowering" `Quick test_map_lowering;
          Alcotest.test_case "map over range" `Quick
            test_map_over_range_binds_index;
          Alcotest.test_case "reduce lowering" `Quick test_reduce_lowering;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "lazy conditional" `Quick test_cond_lowered_lazily;
          Alcotest.test_case "inits" `Quick test_field_inits_and_statics;
          Alcotest.test_case "shadowing" `Quick test_shadowing_renamed;
        ] );
    ]
