(* Unit tests for the Lime parser: expression shapes, precedence, types,
   declarations, and error reporting. *)

open Lime_frontend
open Lime_frontend.Ast

let e src = Parser.expr_of_string src
let s src = Parser.stmt_of_string src
let p src = Parser.program_of_string src

let estr src = expr_to_string (e src)

let check name expected src = Alcotest.(check string) name expected (estr src)

let test_precedence () =
  check "mul over add" "(1 + (2 * 3))" "1 + 2 * 3";
  check "parens" "((1 + 2) * 3)" "(1 + 2) * 3";
  check "comparison" "((a + b) < (c * d))" "a + b < c * d";
  check "logical" "((a < b) && (c > d))" "a < b && c > d";
  check "bitwise vs logical" "((a & b) != 0)" "(a & b) != 0";
  check "shift" "((x << 2) + y)" "(x << 2) + y";
  check "ternary" "((a < b) ? a : b)" "a < b ? a : b";
  check "unary minus" "((-a) * b)" "-a * b";
  check "not" "((!a) || b)" "!a || b"

let test_postfix () =
  check "index chain" "a[i][j]" "a[i][j]";
  check "nested index fused brackets" "a[b[i]]" "a[b[i]]";
  check "field" "a.length" "a.length";
  check "call" "Math.sqrt(x)" "Math.sqrt(x)";
  check "call on result" "f.g(x)[1]" "f.g(x)[1]"

let test_map_reduce () =
  check "map" "(NBody.forceOne(particles) @ particles)"
    "NBody.forceOne(particles) @ particles";
  check "map method ref" "(NBody.f @ xs)" "NBody.f @ xs";
  check "reduce op" "(+ ! xs)" "+ ! xs";
  check "reduce method" "(Math.max ! xs)" "Math.max ! xs";
  check "map binds tighter than add" "(y + (F.f @ xs))" "y + F.f @ xs";
  (* '!' in prefix position is still logical not *)
  check "prefix not" "(!flag)" "!flag"

let test_task_connect () =
  check "static task" "task NBody.computeForces" "task NBody.computeForces";
  check "instance task" "task NBody(n).particleGen" "task NBody(n).particleGen";
  check "connect chain" "((task A.src => task B.f) => task C.sink)"
    "task A.src => task B.f => task C.sink";
  check "finish call" "(task A.src => task C.sink).finish(10)"
    "(task A.src => task C.sink).finish(10)"

let test_new_exprs () =
  check "new object" "new Foo(1, 2)" "new Foo(1, 2)";
  check "array literal" "{ 1, 2, 3 }" "{1, 2, 3}";
  (* mutable array creation *)
  (match (e "new float[10]").e with
  | ENewArray (TArray (TPrim PFloat, DimDyn), [ _ ]) -> ()
  | _ -> Alcotest.fail "new float[10] shape");
  (match (e "new int[n][m]").e with
  | ENewArray (TArray (TArray (TPrim PInt, DimDyn), DimDyn), [ _; _ ]) -> ()
  | _ -> Alcotest.fail "new int[n][m] shape")

let test_cast () =
  check "primitive cast" "((float) x)" "(float) x";
  check "cast in expr" "(((int) f) + 1)" "(int) f + 1";
  (* parenthesized variable is not a cast *)
  check "paren var" "(x + 1)" "(x) + 1"

let parse_ty src =
  (* parse through a declaration *)
  match (s (src ^ " v;")).s with
  | SVarDecl (t, _, _) -> t
  | _ -> Alcotest.fail "expected a declaration"

let test_types () =
  Alcotest.(check string) "value 2d" "float[[][4]]"
    (ty_to_string (parse_ty "float[[][4]]"));
  Alcotest.(check string) "bounded" "int[[64]]"
    (ty_to_string (parse_ty "int[[64]]"));
  Alcotest.(check string) "mutable" "byte[]" (ty_to_string (parse_ty "byte[]"));
  Alcotest.(check string) "mixed dims" "int[][[4]]"
    (ty_to_string (parse_ty "int[][[4]]"));
  Alcotest.(check string) "3d value" "float[[][][2]]"
    (ty_to_string (parse_ty "float[[][][2]]"))

let test_stmts () =
  (match (s "int x = 1;").s with
  | SVarDecl (TPrim PInt, "x", Some _) -> ()
  | _ -> Alcotest.fail "vardecl");
  (match (s "x += 2;").s with
  | SAssign (_, { e = EBinop (Add, _, _); _ }) -> ()
  | _ -> Alcotest.fail "compound assign desugars");
  (match (s "i++;").s with
  | SAssign (_, { e = EBinop (Add, _, _); _ }) -> ()
  | _ -> Alcotest.fail "increment desugars");
  (match (s "if (a < b) { x = 1; } else y = 2;").s with
  | SIf (_, _, Some _) -> ()
  | _ -> Alcotest.fail "if/else");
  (match (s "for (int i = 0; i < n; i++) sum += i;").s with
  | SFor (Some _, Some _, Some _, _) -> ()
  | _ -> Alcotest.fail "for");
  (match (s "while (x < 10) { x++; }").s with
  | SWhile (_, _) -> ()
  | _ -> Alcotest.fail "while");
  (match (s "return { a, b };").s with
  | SReturn (Some { e = EArrayLit _; _ }) -> ()
  | _ -> Alcotest.fail "return literal")

let test_class_decl () =
  let prog =
    p
      {|
value class Pt {
  final float x;
}
class C {
  static final int N = 4;
  int state;
  C(int n) { state = n; }
  static local float f(float a) { return a; }
  void g() { }
}
|}
  in
  Alcotest.(check int) "two classes" 2 (List.length prog);
  let pt = List.hd prog in
  Alcotest.(check bool) "value class" true pt.c_value;
  let c = List.nth prog 1 in
  Alcotest.(check int) "fields" 2 (List.length c.c_fields);
  Alcotest.(check int) "methods (incl ctor)" 3 (List.length c.c_methods);
  let ctor = List.find (fun m -> m.m_name = "<init>") c.c_methods in
  Alcotest.(check int) "ctor params" 1 (List.length ctor.m_params);
  let f = List.find (fun m -> m.m_name = "f") c.c_methods in
  Alcotest.(check bool) "static local" true
    (is_static f.m_mods && is_local f.m_mods)

let expect_parse_error src =
  match Lime_support.Diag.protect (fun () -> p src) with
  | Ok _ -> Alcotest.fail ("expected parse error: " ^ src)
  | Error d ->
      Alcotest.(check bool) "parser phase" true
        (d.Lime_support.Diag.phase = Lime_support.Diag.Parser)

let test_errors () =
  expect_parse_error "class { }";
  expect_parse_error "class C { int }";
  expect_parse_error "class C { void f() { return 1 } }";
  expect_parse_error "class C { void f() { 1 + ; } }";
  (* reduce with non-method-ref left operand *)
  expect_parse_error "class C { void f() { int x = (1+2) ! xs; } }"

let test_print_parse_stable () =
  (* printing then reparsing then printing is a fixpoint *)
  let srcs =
    [
      "a + b * c - d / e % f";
      "x < y && y <= z || !w";
      "a[i][j] + m.length";
      "Math.pow(x, 2.0f) @ xs";
      "(a ^ b) | (c & d) << 2 >>> 3";
      "cond ? x + 1 : y - 1";
    ]
  in
  List.iter
    (fun src ->
      let once = estr src in
      let twice = expr_to_string (e once) in
      Alcotest.(check string) ("fixpoint: " ^ src) once twice)
    srcs

let () =
  Alcotest.run "parser"
    [
      ( "expressions",
        [
          Alcotest.test_case "precedence" `Quick test_precedence;
          Alcotest.test_case "postfix" `Quick test_postfix;
          Alcotest.test_case "map/reduce" `Quick test_map_reduce;
          Alcotest.test_case "task/connect" `Quick test_task_connect;
          Alcotest.test_case "new" `Quick test_new_exprs;
          Alcotest.test_case "cast" `Quick test_cast;
        ] );
      ( "types",
        [ Alcotest.test_case "dimension syntax" `Quick test_types ] );
      ( "statements", [ Alcotest.test_case "forms" `Quick test_stmts ] );
      ( "declarations",
        [ Alcotest.test_case "classes" `Quick test_class_decl ] );
      ( "errors", [ Alcotest.test_case "rejects" `Quick test_errors ] );
      ( "stability",
        [ Alcotest.test_case "print-parse fixpoint" `Quick test_print_parse_stable ] );
    ]
