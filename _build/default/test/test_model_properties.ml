(* Additional qualitative properties of the device/communication models:
   monotonicity and sanity constraints that any recalibration must keep. *)

module Device = Gpusim.Device
module Profile = Gpusim.Profile
module Model = Gpusim.Model
module Comm = Lime_runtime.Comm
module M = Lime_runtime.Marshal
module E = Lime_benchmarks.Experiments
module B = Lime_benchmarks.Bench_def

let prep = lazy (E.prepare Lime_benchmarks.Nbody.single)

let test_kernel_time_scales_with_input () =
  (* 2x particles => ~4x kernel work (n^2) *)
  let time n =
    let b = Lime_benchmarks.Nbody.single in
    let c = Lime_benchmarks.Registry.compile b in
    let k = c.Lime_gpu.Pipeline.cp_kernel in
    let ds = c.cp_decisions in
    let prof = Profile.profile k ds ~shapes:[ ("particles", [| n; 4 |]) ] ~scalars:[] in
    let bindings =
      [
        Model.binding_of_shape ~name:"particles" ~elem:Lime_ir.Ir.SFloat
          ~shape:[| n; 4 |]
          (Lime_gpu.Memopt.placement_for ds "particles");
      ]
    in
    (Model.kernel_time Device.gtx580 prof bindings).Model.bd_total_s
  in
  let r = time 8192 /. time 4096 in
  Alcotest.(check bool)
    (Printf.sprintf "quadratic scaling (got %.2f)" r)
    true
    (r > 3.0 && r < 5.0)

let test_devices_ordered_by_throughput () =
  let p = Lazy.force prep in
  let cfg = Lime_gpu.Memopt.config_local_noconflict_vector in
  let t d = E.kernel_time_under p d cfg in
  Alcotest.(check bool) "GTX580 faster than GTX8800" true
    (t Device.gtx580 < t Device.gtx8800);
  Alcotest.(check bool) "GPUs faster than the CPU" true
    (t Device.gtx580 < t Device.core_i7)

let test_comm_monotone_in_bytes () =
  let ph b =
    Comm.total
      (Comm.offload_phases Device.gtx580 ~in_bytes:b ~out_bytes:b ())
  in
  Alcotest.(check bool) "more bytes, more time" true
    (ph 1_000_000 < ph 4_000_000 && ph 4_000_000 < ph 16_000_000)

let test_setup_anomaly_threshold () =
  let small = Comm.setup_seconds (4 * 1024 * 1024) in
  let large = Comm.setup_seconds (16 * 1024 * 1024) in
  Alcotest.(check bool) "registration penalty kicks in" true
    (large > 6.0 *. small)

let test_cpu_has_no_pcie () =
  Alcotest.(check (float 0.0)) "shared memory"
    0.0
    (Comm.pcie_seconds Device.core_i7 1_000_000)

let test_profile_flags_nonaffine () =
  (* a data-dependent while loop must set p_approx *)
  let k =
    Lime_gpu.Kernel.extract
      (Lime_ir.Lower.lower_program
         (Lime_typecheck.Check.check_string
            {|class K {
  static local float f(float x) {
    float v = x;
    while (v > 1.0f) { v = v * 0.5f; }
    return v;
  }
  static local float[[]] work(float[[]] xs) { return K.f @ xs; }
}|}))
      ~worker:"K.work"
  in
  let ds = Lime_gpu.Memopt.optimize Lime_gpu.Memopt.config_global k in
  let prof = Profile.profile k ds ~shapes:[ ("xs", [| 100 |]) ] ~scalars:[] in
  Alcotest.(check bool) "approximate profile flagged" true prof.Profile.p_approx

let test_affine_profiles_exact () =
  List.iter
    (fun (b : B.t) ->
      let p = E.prepare b in
      let prof = E.profile_of p p.E.p_compiled.Lime_gpu.Pipeline.cp_decisions in
      Alcotest.(check bool) (b.B.name ^ " profile exact") false
        prof.Profile.p_approx)
    Lime_benchmarks.Registry.all

let test_marshal_model_vs_reality () =
  (* the cost model's ordering must match real measured encoders *)
  let v =
    Lime_ir.Value.VArr
      (Lime_ir.Value.of_float_matrix 512 4 (Array.init 2048 float_of_int))
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to 200 do
      ignore (f v)
    done;
    Unix.gettimeofday () -. t0
  in
  let custom = time M.encode in
  let generic = time M.encode_generic in
  let direct = time M.encode_direct in
  Alcotest.(check bool) "generic really slower than custom" true
    (generic > custom);
  Alcotest.(check bool) "direct no slower than custom" true
    (direct < custom *. 1.5)

let () =
  Alcotest.run "model-properties"
    [
      ( "device model",
        [
          Alcotest.test_case "quadratic scaling" `Quick
            test_kernel_time_scales_with_input;
          Alcotest.test_case "device ordering" `Quick
            test_devices_ordered_by_throughput;
        ] );
      ( "communication model",
        [
          Alcotest.test_case "monotone in bytes" `Quick
            test_comm_monotone_in_bytes;
          Alcotest.test_case "setup anomaly" `Quick test_setup_anomaly_threshold;
          Alcotest.test_case "CPU no PCIe" `Quick test_cpu_has_no_pcie;
          Alcotest.test_case "marshal model vs reality" `Quick
            test_marshal_model_vs_reality;
        ] );
      ( "profiler",
        [
          Alcotest.test_case "non-affine flagged" `Quick
            test_profile_flags_nonaffine;
          Alcotest.test_case "benchmarks exact" `Slow test_affine_profiles_exact;
        ] );
    ]
