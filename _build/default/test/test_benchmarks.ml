(* Integration tests over the nine Table 3 benchmarks: compilation through
   the full pipeline, differential testing against independent OCaml
   reference implementations, placement expectations, and placement
   independence of results. *)

module Ir = Lime_ir.Ir
module V = Lime_ir.Value
module B = Lime_benchmarks.Bench_def
module R = Lime_benchmarks.Registry
module Memopt = Lime_gpu.Memopt

let split_worker (b : B.t) =
  match String.split_on_char '.' b.B.worker with
  | [ c; m ] -> (c, m)
  | _ -> assert false

let run_kernel (b : B.t) input =
  let c = R.compile_small b in
  let st = Lime_ir.Interp.create c.Lime_gpu.Pipeline.cp_module in
  let cls, meth = split_worker b in
  Lime_ir.Interp.run st ~cls ~meth [ input ]

let test_suite_complete () =
  Alcotest.(check int) "nine benchmarks" 9 (List.length R.all);
  Alcotest.(check int) "five in Fig 8" 5 (List.length R.fig8);
  (* the Table 3 names *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " present") true (R.find name <> None))
    [
      "N-Body (Single)"; "N-Body (Double)"; "Mosaic"; "Parboil-CP";
      "Parboil-MRIQ"; "Parboil-RPES"; "JG-Crypt"; "JG-Series (Single)";
      "JG-Series (Double)";
    ]

let differential (b : B.t) () =
  let input = b.B.input_small () in
  let got = run_kernel b input in
  let want = b.B.reference input in
  if not (V.approx_equal ~rtol:2e-4 ~atol:1e-5 got want) then
    Alcotest.failf "%s: kernel result differs from the reference" b.B.name

let compiles_at_paper_scale (b : B.t) () =
  let c = R.compile b in
  Alcotest.(check bool) "kernel is parallel" true
    c.Lime_gpu.Pipeline.cp_kernel.Lime_gpu.Kernel.k_parallel;
  Alcotest.(check bool) "OpenCL generated" true
    (Lime_support.Util.contains_substring ~sub:"__kernel"
       c.Lime_gpu.Pipeline.cp_opencl)

let test_input_determinism () =
  List.iter
    (fun (b : B.t) ->
      let a = b.B.input_small ~seed:9 () in
      let c = b.B.input_small ~seed:9 () in
      Alcotest.(check bool) (b.B.name ^ " inputs deterministic") true
        (V.approx_equal ~rtol:0.0 ~atol:0.0 a c))
    R.all

let test_placement_expectations () =
  let placement (b : B.t) array =
    let c = R.compile b in
    (Memopt.placement_for c.Lime_gpu.Pipeline.cp_decisions array).Ir.space
  in
  (* the best configs reproduce the paper's per-benchmark winners *)
  Alcotest.(check string) "N-Body particles in local" "local"
    (Ir.mem_space_name (placement Lime_benchmarks.Nbody.single "particles"));
  Alcotest.(check string) "CP atoms in constant" "constant"
    (Ir.mem_space_name (placement Lime_benchmarks.Cp.bench "atoms"));
  Alcotest.(check string) "MRIQ k-data in constant" "constant"
    (Ir.mem_space_name (placement Lime_benchmarks.Mriq.bench "kdata"));
  Alcotest.(check string) "RPES shells in image" "image"
    (Ir.mem_space_name (placement Lime_benchmarks.Rpes.bench "shells"));
  Alcotest.(check string) "Mosaic tiles in local" "local"
    (Ir.mem_space_name (placement Lime_benchmarks.Mosaic.bench "packed"))

let test_cp_constant_fits () =
  (* the CP atoms array must actually fit the 64KB constant budget, like
     the real Parboil-CP dataset (62KB) *)
  let input = Lime_benchmarks.Cp.bench.B.input () in
  match input with
  | V.VArr a ->
      let bytes = V.total_bytes a in
      Alcotest.(check bool)
        (Printf.sprintf "atoms %dB <= 64KB" bytes)
        true (bytes <= 65536)
  | _ -> Alcotest.fail "expected array"

let test_placement_independence (b : B.t) () =
  (* results cannot depend on the memory configuration: the optimizer only
     annotates placements *)
  let input = b.B.input_small () in
  let base = run_kernel b input in
  List.iter
    (fun (_, cfg) ->
      let c = R.compile_small ~config:cfg b in
      let st = Lime_ir.Interp.create c.Lime_gpu.Pipeline.cp_module in
      let cls, meth = split_worker b in
      let got = Lime_ir.Interp.run st ~cls ~meth [ input ] in
      Alcotest.(check bool) "identical across configs" true
        (V.approx_equal ~rtol:0.0 ~atol:0.0 base got))
    Memopt.fig8_configs

let test_uses_reduce () =
  (* Mosaic's kernel must contain a real reduction (map-and-reduce) *)
  let c = R.compile Lime_benchmarks.Mosaic.bench in
  let reduces = ref 0 in
  List.iter
    (Ir.iter_stmt
       ~stmt:(fun s -> match s with Ir.SReduce _ -> incr reduces | _ -> ())
       ~expr:(fun _ -> ()))
    c.Lime_gpu.Pipeline.cp_kernel.Lime_gpu.Kernel.k_body;
  Alcotest.(check bool) "reduce present" true (!reduces >= 1)

let test_doubles_flagged () =
  let check (b : B.t) expected =
    let c = R.compile b in
    Alcotest.(check bool)
      (b.B.name ^ " double flag")
      expected c.Lime_gpu.Pipeline.cp_kernel.Lime_gpu.Kernel.k_uses_double
  in
  check Lime_benchmarks.Nbody.single false;
  check Lime_benchmarks.Nbody.double true;
  check Lime_benchmarks.Series.double true;
  check Lime_benchmarks.Crypt.bench false

let test_table3_datatypes () =
  let dt name =
    (Option.get (R.find name)).B.datatype
  in
  Alcotest.(check string) "crypt bytes" "Byte" (dt "JG-Crypt");
  Alcotest.(check string) "mosaic ints" "Integer" (dt "Mosaic");
  Alcotest.(check string) "nbody double" "Double" (dt "N-Body (Double)")

let () =
  Alcotest.run "benchmarks"
    [
      ("suite", [ Alcotest.test_case "complete" `Quick test_suite_complete ]);
      ( "differential",
        List.map
          (fun (b : B.t) ->
            Alcotest.test_case b.B.name `Quick (differential b))
          R.all );
      ( "compilation",
        List.map
          (fun (b : B.t) ->
            Alcotest.test_case b.B.name `Quick (compiles_at_paper_scale b))
          R.all );
      ( "inputs",
        [ Alcotest.test_case "deterministic" `Quick test_input_determinism ] );
      ( "placements",
        [
          Alcotest.test_case "paper winners" `Quick test_placement_expectations;
          Alcotest.test_case "CP fits constant" `Quick test_cp_constant_fits;
        ] );
      ( "placement independence",
        List.map
          (fun (b : B.t) ->
            Alcotest.test_case b.B.name `Slow (test_placement_independence b))
          [ Lime_benchmarks.Nbody.single; Lime_benchmarks.Crypt.bench ] );
      ( "structure",
        [
          Alcotest.test_case "mosaic reduces" `Quick test_uses_reduce;
          Alcotest.test_case "double flags" `Quick test_doubles_flagged;
          Alcotest.test_case "datatypes" `Quick test_table3_datatypes;
        ] );
    ]
