(* Tests for the memory-mapping autotuner (§4.2.1 "automated exploration"). *)

module A = Gpusim.Autotune
module Device = Gpusim.Device
module Memopt = Lime_gpu.Memopt
module B = Lime_benchmarks.Bench_def

let kernel_of (b : B.t) =
  (Lime_benchmarks.Registry.compile b).Lime_gpu.Pipeline.cp_kernel

let shapes_for (b : B.t) =
  let input = b.B.input () in
  let k = kernel_of b in
  fst (Lime_runtime.Engine.shapes_of_args k [ input ])

let test_sweep_sorted () =
  let b = Lime_benchmarks.Nbody.single in
  let entries =
    A.sweep Device.gtx8800 (kernel_of b) ~shapes:(shapes_for b) ~scalars:[]
  in
  Alcotest.(check int) "eight entries" 8 (List.length entries);
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        a.A.at_time_s <= b.A.at_time_s +. 1e-12 && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "ascending" true (sorted entries)

let test_best_is_minimum () =
  let b = Lime_benchmarks.Mosaic.bench in
  let k = kernel_of b in
  let shapes = shapes_for b in
  let best = A.best Device.gtx8800 k ~shapes ~scalars:[] in
  List.iter
    (fun (_, cfg) ->
      let t = (A.time_config Device.gtx8800 k cfg ~shapes ~scalars:[]).Gpusim.Model.bd_total_s in
      Alcotest.(check bool) "best <= every config" true
        (best.A.at_time_s <= t +. 1e-12))
    Memopt.fig8_configs

let test_winners_match_paper () =
  (* on the cache-less GTX8800 the winners reproduce §5.2's structure *)
  let winner (b : B.t) =
    (A.best Device.gtx8800 (kernel_of b) ~shapes:(shapes_for b) ~scalars:[])
      .A.at_name
  in
  let mosaic = winner Lime_benchmarks.Mosaic.bench in
  Alcotest.(check bool)
    ("Mosaic wins with conflict-free local, got " ^ mosaic)
    true
    (Lime_support.Util.starts_with ~prefix:"Local+Conflicts removed" mosaic);
  let rpes = winner Lime_benchmarks.Rpes.bench in
  Alcotest.(check string) "RPES wins with texture on G80" "Texture" rpes

let test_fermi_winner_margin_small () =
  (* on Fermi the spread between best and worst non-mosaic config is small *)
  let b = Lime_benchmarks.Cp.bench in
  let entries =
    A.sweep Device.gtx580 (kernel_of b) ~shapes:(shapes_for b) ~scalars:[]
  in
  let best = (List.hd entries).A.at_time_s in
  let worst = (List.nth entries 7).A.at_time_s in
  Alcotest.(check bool) "CP spread < 1.3x on Fermi" true (worst /. best < 1.3)

let () =
  Alcotest.run "autotune"
    [
      ( "sweep",
        [
          Alcotest.test_case "sorted" `Quick test_sweep_sorted;
          Alcotest.test_case "best is min" `Quick test_best_is_minimum;
          Alcotest.test_case "winners match paper" `Quick
            test_winners_match_paper;
          Alcotest.test_case "Fermi margins" `Quick
            test_fermi_winner_margin_small;
        ] );
    ]
