(* Tests for the OpenCL static validator, and validation of every kernel the
   compiler generates (9 benchmarks x 8 memory configurations). *)

module C = Lime_gpu.Clcheck

let check_ok name src =
  let r = C.check src in
  if not (C.ok r) then
    Alcotest.failf "%s: expected clean, got:\n%s" name (C.report r)

let check_bad name sub src =
  let r = C.check src in
  if C.ok r then Alcotest.failf "%s: expected issues" name
  else if
    not
      (Lime_support.Util.contains_substring ~sub (C.report r))
  then Alcotest.failf "%s: wanted %S in:\n%s" name sub (C.report r)

let minimal_kernel =
  {|__kernel void f(__global const float* restrict xs,
                  __global float* restrict _out)
{
  for (int i = get_global_id(0); i < 10; i += get_global_size(0)) {
    float v = xs[i] * 2.0f;
    _out[i] = v;
  }
}
|}

let test_accepts_valid () = check_ok "minimal kernel" minimal_kernel

let test_rejects_unbalanced () =
  check_bad "missing brace" "unclosed"
    "__kernel void f(__global float* restrict a) { if (1) { a[0] = 1.0f; }";
  check_bad "stray close" "unmatched"
    "__kernel void f(__global float* restrict a) { } }"

let test_rejects_bad_float () =
  check_bad "0f literal" "needs '.'"
    "__kernel void f(__global float* restrict a) { a[0] = 0f; }"

let test_rejects_undeclared () =
  check_bad "undeclared identifier" "before declaration"
    "__kernel void f(__global float* restrict a) { a[0] = mystery; }"

let test_rejects_no_kernel () =
  check_bad "no kernel" "exactly one __kernel" "void f(void) { }"

let test_rejects_unterminated_comment () =
  check_bad "unterminated comment" "unterminated"
    "__kernel void f(__global float* restrict a) { /* oops }"

let test_all_generated_kernels_valid () =
  List.iter
    (fun (b : Lime_benchmarks.Bench_def.t) ->
      List.iter
        (fun (cname, cfg) ->
          let c =
            Lime_gpu.Pipeline.compile ~config:cfg
              ~worker:b.Lime_benchmarks.Bench_def.worker
              b.Lime_benchmarks.Bench_def.source
          in
          let r = C.check c.Lime_gpu.Pipeline.cp_opencl in
          if not (C.ok r) then
            Alcotest.failf "%s under %s:\n%s" b.Lime_benchmarks.Bench_def.name
              cname (C.report r))
        Lime_gpu.Memopt.fig8_configs)
    Lime_benchmarks.Registry.all

let () =
  Alcotest.run "clcheck"
    [
      ( "validator",
        [
          Alcotest.test_case "accepts valid" `Quick test_accepts_valid;
          Alcotest.test_case "unbalanced" `Quick test_rejects_unbalanced;
          Alcotest.test_case "bad float literal" `Quick test_rejects_bad_float;
          Alcotest.test_case "undeclared id" `Quick test_rejects_undeclared;
          Alcotest.test_case "kernel count" `Quick test_rejects_no_kernel;
          Alcotest.test_case "unterminated comment" `Quick
            test_rejects_unterminated_comment;
        ] );
      ( "generated",
        [
          Alcotest.test_case "all 72 kernels validate" `Slow
            test_all_generated_kernels_valid;
        ] );
    ]
