(* Unit tests for the thread-dependence dataflow (Lime_gpu.Taint): the
   classification backbone of the memory optimizer and the profiler. *)

module Ir = Lime_ir.Ir
module Taint = Lime_gpu.Taint

let body_of src ~worker =
  (Lime_gpu.Kernel.extract
     (Lime_ir.Lower.lower_program (Lime_typecheck.Check.check_string src))
     ~worker)
    .Lime_gpu.Kernel.k_body

(* find the IR name a source variable was renamed to (first match) *)
let ir_name_of body src_name =
  let found = ref None in
  List.iter
    (Ir.iter_stmt
       ~stmt:(fun s ->
         match s with
         | Ir.SDecl (v, _, _)
           when !found = None
                && Lime_support.Util.contains_substring
                     ~sub:("%" ^ src_name) v ->
             found := Some v
         | _ -> ())
       ~expr:(fun _ -> ()))
    body;
  !found

let src =
  {|class K {
  static local float f(float[[]] shared, int n, int i) {
    int untainted = n * 2;
    int derived = i * 3;
    float acc = 0.0f;
    for (int j = 0; j < n; j++) {
      acc += shared[untainted + j];
    }
    float viaAcc = acc + (float) derived;
    return viaAcc;
  }
  static local float[[]] work(float[[]] shared, int n) {
    return K.f(shared, n) @ Lime.range(n);
  }
}|}

let test_flow () =
  let body = body_of src ~worker:"K.work" in
  let t = Taint.thread_dependent body in
  let tainted name =
    match ir_name_of body name with
    | Some v -> Hashtbl.mem t v
    | None -> Alcotest.failf "variable %s not found in IR" name
  in
  Alcotest.(check bool) "n-derived scalar untainted" false
    (tainted "untainted");
  Alcotest.(check bool) "index-derived scalar tainted" true
    (tainted "derived");
  Alcotest.(check bool) "accumulator fed by shared loads untainted" false
    (tainted "acc");
  Alcotest.(check bool) "value through tainted operand tainted" true
    (tainted "viaAcc")

let test_reduce_dst_tainted () =
  let src =
    {|class K {
  static local long score(int[[]] data, int refIdx, int t) {
    return ((long) data[t] << 32) | (long) t;
  }
  static local int f(int[[]] data, int r) {
    long[[]] scores = K.score(data, r) @ Lime.range(8);
    long best = Math.min ! scores;
    return (int) (best & 0xFFFFFFFFL);
  }
  static local int[[]] work(int[[]] data) {
    return K.f(data) @ Lime.range(data.length);
  }
}|}
  in
  let body = body_of src ~worker:"K.work" in
  let t = Taint.thread_dependent body in
  (* the per-thread scores array and the reduce destination are tainted *)
  let any_tainted prefix =
    Hashtbl.fold
      (fun v () acc ->
        acc || Lime_support.Util.contains_substring ~sub:prefix v)
      t false
  in
  Alcotest.(check bool) "per-thread map output tainted" true
    (any_tainted "mapout");
  Alcotest.(check bool) "reduce destination tainted" true (any_tainted "red")

let test_seq_loop_vars_not_tainted () =
  let body = body_of src ~worker:"K.work" in
  let t = Taint.thread_dependent body in
  (* sequential loop counters stay shared *)
  List.iter
    (Ir.iter_stmt
       ~stmt:(fun s ->
         match s with
         | Ir.SFor (v, _, _, _) ->
             Alcotest.(check bool)
               (v ^ " seq loop var untainted")
               false (Hashtbl.mem t v)
         | _ -> ())
       ~expr:(fun _ -> ()))
    body

let test_parallel_index_tainted () =
  let body = body_of src ~worker:"K.work" in
  let t = Taint.thread_dependent body in
  List.iter
    (Ir.iter_stmt
       ~stmt:(fun s ->
         match s with
         | Ir.SParFor p ->
             Alcotest.(check bool) "pf var tainted" true
               (Hashtbl.mem t p.Ir.pf_var)
         | _ -> ())
       ~expr:(fun _ -> ()))
    body

let () =
  Alcotest.run "taint"
    [
      ( "dataflow",
        [
          Alcotest.test_case "flow rules" `Quick test_flow;
          Alcotest.test_case "reduce destination" `Quick
            test_reduce_dst_tainted;
          Alcotest.test_case "seq loop vars" `Quick
            test_seq_loop_vars_not_tainted;
          Alcotest.test_case "parallel index" `Quick
            test_parallel_index_tainted;
        ] );
    ]
