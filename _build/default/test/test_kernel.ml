(* Unit tests for kernel identification and extraction (paper §4.1). *)

module Ir = Lime_ir.Ir
module Kernel = Lime_gpu.Kernel
module Check = Lime_typecheck.Check
module Lower = Lime_ir.Lower

let lower src = Lower.lower_program (Check.check_string src)

let base_src =
  {|class K {
  static final float SCALE = 2.0f * 3.0f;
  static local float helper(float x) { return x * SCALE; }
  static local float sq(float x) { return K.helper(x) * x; }
  static local float[[]] work(float[[]] xs) { return K.sq @ xs; }
  static local float plain(float x) { return x + 1.0f; }
  int state;
  local float[[]] instWork(float[[]] xs) { return xs; }
  static float nonLocal(float[[]] xs) { return xs[0]; }
}|}

let test_extract_inlines_calls () =
  let md = lower base_src in
  let k = Kernel.extract md ~worker:"K.work" in
  (* no CallF left after extraction *)
  let calls = ref 0 in
  List.iter
    (Ir.iter_stmt
       ~stmt:(fun _ -> ())
       ~expr:(fun e -> match e with Ir.CallF _ -> incr calls | _ -> ()))
    k.Kernel.k_body;
  Alcotest.(check int) "no residual calls" 0 !calls;
  Alcotest.(check bool) "parallel" true k.Kernel.k_parallel;
  Alcotest.(check bool) "no doubles" false k.Kernel.k_uses_double

let test_extract_folds_statics () =
  let md = lower base_src in
  let k = Kernel.extract md ~worker:"K.work" in
  let statics = ref 0 and const6 = ref 0 in
  List.iter
    (Ir.iter_stmt
       ~stmt:(fun _ -> ())
       ~expr:(fun e ->
         match e with
         | Ir.StaticGet _ -> incr statics
         | Ir.Const (Ir.CFloat 6.0) -> incr const6
         | _ -> ()))
    k.Kernel.k_body;
  Alcotest.(check int) "no static reads" 0 !statics;
  Alcotest.(check bool) "folded constant appears" true (!const6 >= 1)

let test_recursion_rejected () =
  let src =
    {|class K {
  static local float rec(float x) { return K.rec(x); }
  static local float[[]] work(float[[]] xs) { return K.rec @ xs; }
}|}
  in
  let md = lower src in
  match Lime_support.Diag.protect (fun () -> Kernel.extract md ~worker:"K.work") with
  | Ok _ -> Alcotest.fail "expected recursion rejection"
  | Error d ->
      Alcotest.(check bool) "mentions recursion" true
        (Lime_support.Util.contains_substring ~sub:"recursive"
           d.Lime_support.Diag.message)

let task_desc md cls meth : Ir.task_desc =
  (* build a task descriptor the way the engine sees it *)
  let f = Option.get (Ir.find_func md (Ir.qualify cls meth)) in
  let isolated =
    f.Ir.fn_local
    && List.for_all
         (fun (_, t) ->
           match t with
           | Ir.TScalar _ -> true
           | Ir.TArr a -> a.Ir.value
           | _ -> false)
         f.Ir.fn_params
  in
  {
    Ir.td_class = cls;
    td_method = meth;
    td_ctor = (if f.Ir.fn_static then None else Some []);
    td_isolated = isolated;
    td_in =
      (match f.Ir.fn_params with [] -> Ir.TUnit | (_, t) :: _ -> t);
    td_out = f.Ir.fn_ret;
  }

let test_classification () =
  let md = lower base_src in
  let check name meth expected =
    Alcotest.(check string) name
      (Kernel.verdict_name expected)
      (Kernel.verdict_name (Kernel.classify md (task_desc md "K" meth)))
  in
  check "map worker offloadable" "work" Kernel.Offloadable;
  check "instance worker stateful" "instWork" Kernel.Stateful;
  check "scalar fn has no parallelism" "plain" Kernel.No_parallelism

let test_not_isolated () =
  let md = lower base_src in
  let td = { (task_desc md "K" "nonLocal") with Ir.td_isolated = false } in
  Alcotest.(check string) "non-local not isolated"
    (Kernel.verdict_name Kernel.Not_isolated)
    (Kernel.verdict_name (Kernel.classify md td))

let test_nested_parfor_demoted () =
  let src =
    {|class K {
  static local float inner(int j) { return (float) j; }
  static local float[[]] row(int m, int i) { float[[]] r = K.inner @ Lime.range(m); return r; }
  static local float[[][]] work(int[[]] dims) {
    return K.row(dims[0]) @ Lime.range(dims.length);
  }
}|}
  in
  let md = lower src in
  let k = Kernel.extract md ~worker:"K.work" in
  (* exactly one parallel loop survives; the inner one became SFor *)
  let parfors = ref 0 and fors = ref 0 in
  List.iter
    (Ir.iter_stmt
       ~stmt:(fun s ->
         match s with
         | Ir.SParFor _ -> incr parfors
         | Ir.SFor _ -> incr fors
         | _ -> ())
       ~expr:(fun _ -> ()))
    k.Kernel.k_body;
  Alcotest.(check int) "one parfor" 1 !parfors;
  Alcotest.(check bool) "inner demoted to for" true (!fors >= 1)

let test_extracted_kernel_executes () =
  (* the extracted kernel must compute the same values as the original
     function through the interpreter *)
  let md = lower base_src in
  let k = Kernel.extract md ~worker:"K.work" in
  let xs = Lime_ir.Value.of_float_array [| 1.0; 2.0; 3.0 |] in
  let st0 = Lime_ir.Interp.create md in
  let want =
    Lime_ir.Interp.run st0 ~cls:"K" ~meth:"work" [ Lime_ir.Value.VArr xs ]
  in
  let st1 = Lime_ir.Interp.create (Kernel.to_module k) in
  let got =
    Lime_ir.Interp.call_function st1 "K.work" None [ Lime_ir.Value.VArr xs ]
  in
  Alcotest.(check bool) "identical results" true
    (Lime_ir.Value.approx_equal ~rtol:0.0 ~atol:0.0 want got)

let test_double_detection () =
  let src =
    {|class K {
  static local double sq(double x) { return x * x; }
  static local double[[]] work(double[[]] xs) { return K.sq @ xs; }
}|}
  in
  let md = lower src in
  let k = Kernel.extract md ~worker:"K.work" in
  Alcotest.(check bool) "uses double" true k.Kernel.k_uses_double

let () =
  Alcotest.run "kernel"
    [
      ( "extraction",
        [
          Alcotest.test_case "inlines calls" `Quick test_extract_inlines_calls;
          Alcotest.test_case "folds statics" `Quick test_extract_folds_statics;
          Alcotest.test_case "rejects recursion" `Quick test_recursion_rejected;
          Alcotest.test_case "demotes nested parfor" `Quick
            test_nested_parfor_demoted;
          Alcotest.test_case "executes identically" `Quick
            test_extracted_kernel_executes;
          Alcotest.test_case "double detection" `Quick test_double_detection;
        ] );
      ( "classification",
        [
          Alcotest.test_case "verdicts" `Quick test_classification;
          Alcotest.test_case "not isolated" `Quick test_not_isolated;
        ] );
    ]
