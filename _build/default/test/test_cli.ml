(* End-to-end tests of the limec command-line compiler: drive the real
   binary over the shipped .lime programs and check its outputs. *)

let find candidates = List.find_opt Sys.file_exists candidates

let limec =
  find [ "../bin/limec.exe"; "bin/limec.exe"; "_build/default/bin/limec.exe" ]

let nbody =
  find
    [
      "../examples/lime/nbody.lime"; "examples/lime/nbody.lime";
      "_build/default/examples/lime/nbody.lime";
    ]

let available = limec <> None && nbody <> None
let limec = Option.value limec ~default:"limec"
let nbody = Option.value nbody ~default:"nbody.lime"

let capture args =
  let out = Filename.temp_file "limec" ".out" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>&1" (Filename.quote limec) args
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let text = In_channel.with_open_text out In_channel.input_all in
  Sys.remove out;
  (code, text)

let skip_unless_available () =
  if not available then
    Alcotest.skip ()

let contains sub text = Lime_support.Util.contains_substring ~sub text

let test_default_summary () =
  skip_unless_available ();
  let code, out = capture (nbody ^ " -w NBody.computeForces") in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "kernel named" true
    (contains "NBody.computeForces" out);
  Alcotest.(check bool) "placements shown" true (contains "particles" out)

let test_emit_opencl () =
  skip_unless_available ();
  let code, out =
    capture (nbody ^ " -w NBody.computeForces --emit-opencl -c constant+vec")
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "kernel source" true (contains "__kernel void" out);
  Alcotest.(check bool) "constant float4" true
    (contains "__constant float4" out)

let test_estimate () =
  skip_unless_available ();
  let code, out =
    capture
      (nbody
     ^ " -w NBody.computeForces --estimate gtx580 --shape particles=1024x4")
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "device named" true (contains "GTX 580" out);
  Alcotest.(check bool) "estimate printed" true (contains "estimate: total=" out)

let test_sweep () =
  skip_unless_available ();
  let code, out =
    capture
      (nbody ^ " -w NBody.computeForces --sweep gtx8800 --shape particles=1024x4")
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "eight rows" true (contains "Texture" out);
  Alcotest.(check bool) "exploration banner" true
    (contains "memory-mapping exploration" out)

let test_error_reporting () =
  skip_unless_available ();
  (* a type error must exit 1 with a located diagnostic *)
  let bad = Filename.temp_file "bad" ".lime" in
  Out_channel.with_open_text bad (fun oc ->
      Out_channel.output_string oc
        "class C { static local int f(float[[]] xs) { xs[0] = 1.0f; return \
         0; } }");
  let code, out = capture (bad ^ " -w C.f") in
  Sys.remove bad;
  Alcotest.(check int) "exit 1" 1 code;
  Alcotest.(check bool) "diagnostic shown" true (contains "immutable" out);
  Alcotest.(check bool) "location shown" true (contains ".lime:" out)

let test_unknown_worker () =
  skip_unless_available ();
  let code, _ = capture (nbody ^ " -w NBody.missing") in
  Alcotest.(check int) "exit 1" 1 code

let () =
  Alcotest.run "cli"
    [
      ( "limec",
        [
          Alcotest.test_case "default summary" `Quick test_default_summary;
          Alcotest.test_case "emit-opencl" `Quick test_emit_opencl;
          Alcotest.test_case "estimate" `Quick test_estimate;
          Alcotest.test_case "sweep" `Quick test_sweep;
          Alcotest.test_case "error reporting" `Quick test_error_reporting;
          Alcotest.test_case "unknown worker" `Quick test_unknown_worker;
        ] );
    ]
