(* Tests for the GPU simulator: analytic profile exactness on a known
   kernel, and qualitative properties of the timing model that mirror the
   paper's observations. *)

module Ir = Lime_ir.Ir
module Device = Gpusim.Device
module Profile = Gpusim.Profile
module Model = Gpusim.Model
module Memopt = Lime_gpu.Memopt
module E = Lime_benchmarks.Experiments
module B = Lime_benchmarks.Bench_def

let kernel_of src ~worker =
  Lime_gpu.Kernel.extract
    (Lime_ir.Lower.lower_program (Lime_typecheck.Check.check_string src))
    ~worker

(* ------------------------------------------------------------------ *)
(* Profile exactness                                                   *)
(* ------------------------------------------------------------------ *)

let test_profile_counts_exact () =
  (* kernel: for each of n items, loop m times doing one sqrt *)
  let k =
    kernel_of
      {|class K {
  static local float one(float[[][4]] m, int i) {
    float s = 0.0f;
    for (int j = 0; j < m.length; j++) {
      s += Math.sqrt(m[j][0]);
    }
    return s;
  }
  static local float[[]] work(float[[][4]] m) {
    return K.one(m) @ Lime.range(4 * m.length);
  }
}|}
      ~worker:"K.work"
  in
  let ds = Memopt.optimize Memopt.config_global k in
  let prof =
    Profile.profile k ds ~shapes:[ ("m", [| 100; 4 |]) ] ~scalars:[]
  in
  Alcotest.(check (float 0.0)) "items = 4*100" 400.0 prof.Profile.p_items;
  Alcotest.(check (float 0.0)) "sqrts = items * m" 40000.0 prof.Profile.p_sqrt;
  Alcotest.(check bool) "profile is exact (no approximation)" false
    prof.Profile.p_approx;
  (* m[j][0] loads: one per inner iteration *)
  let m_loads =
    List.fold_left
      (fun acc (a : Profile.access) ->
        if a.Profile.ac_root = "m" && not a.Profile.ac_store then
          acc +. a.Profile.ac_count
        else acc)
      0.0 prof.Profile.p_accesses
  in
  Alcotest.(check (float 0.0)) "m loads" 40000.0 m_loads

let test_profile_matches_interpreter () =
  (* the analytic sqrt count must equal the dynamic count from a real run *)
  let b = Lime_benchmarks.Nbody.single in
  let c = Lime_benchmarks.Registry.compile_small b in
  let k = c.Lime_gpu.Pipeline.cp_kernel in
  let input = b.B.input_small () in
  let shapes, scalars = Lime_runtime.Engine.shapes_of_args k [ input ] in
  let prof = Profile.profile k c.Lime_gpu.Pipeline.cp_decisions ~shapes ~scalars in
  let st = Lime_ir.Interp.create (Lime_gpu.Kernel.to_module k) in
  ignore (Lime_ir.Interp.call_function st k.Lime_gpu.Kernel.k_name None [ input ]);
  Alcotest.(check int) "sqrt counts agree"
    st.Lime_ir.Interp.counters.Lime_ir.Interp.sqrts
    (int_of_float prof.Profile.p_sqrt)

(* ------------------------------------------------------------------ *)
(* Timing-model properties (the paper's qualitative claims)            *)
(* ------------------------------------------------------------------ *)

let nbody_time device cfg =
  let p = E.prepare Lime_benchmarks.Nbody.single in
  E.kernel_time_under p device cfg

let test_global_never_beats_best () =
  (* Fig 8: global-only is never better than the best configuration *)
  List.iter
    (fun d ->
      List.iter
        (fun (b : B.t) ->
          let p = E.prepare b in
          let global = E.kernel_time_under p d Memopt.config_global in
          let best =
            List.fold_left
              (fun acc (_, cfg) -> Float.min acc (E.kernel_time_under p d cfg))
              infinity Memopt.fig8_configs
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s: global >= best" b.B.name d.Device.name)
            true
            (global >= best *. 0.999))
        Lime_benchmarks.Registry.fig8)
    E.gpu_devices

let test_fermi_flatter () =
  (* the GTX580's caches make it less sensitive to memory placement than
     the GTX8800 (paper §5.2) *)
  let spread d =
    List.fold_left
      (fun acc (b : B.t) ->
        let p = E.prepare b in
        let times =
          List.map
            (fun (_, cfg) -> E.kernel_time_under p d cfg)
            Memopt.fig8_configs
        in
        let mx = List.fold_left Float.max 0.0 times in
        let mn = List.fold_left Float.min infinity times in
        acc +. (mx /. mn))
      0.0 Lime_benchmarks.Registry.fig8
  in
  Alcotest.(check bool) "GTX580 flatter than GTX8800" true
    (spread Device.gtx580 < spread Device.gtx8800)

let test_double_slower () =
  let ps = E.prepare Lime_benchmarks.Nbody.single in
  let pd = E.prepare Lime_benchmarks.Nbody.double in
  let cfg = Memopt.config_local_noconflict_vector in
  let ts = E.kernel_time_under ps Device.gtx580 cfg in
  let td = E.kernel_time_under pd Device.gtx580 cfg in
  let ratio = td /. ts in
  Alcotest.(check bool)
    (Printf.sprintf "double 1.3-4x slower on GTX580 (got %.2f)" ratio)
    true
    (ratio > 1.3 && ratio < 4.0);
  (* and the HD5970 penalty is milder (paper: ~1.5x vs 2-3x) *)
  let ts5 = E.kernel_time_under ps Device.hd5970 cfg in
  let td5 = E.kernel_time_under pd Device.hd5970 cfg in
  Alcotest.(check bool) "HD5970 double penalty milder" true
    (td5 /. ts5 < ratio)

let test_padding_removes_conflicts () =
  (* Mosaic's local tiles have a conflict-prone row length (64): padding
     must help on the banked local memories *)
  let p = E.prepare Lime_benchmarks.Mosaic.bench in
  List.iter
    (fun d ->
      let unpadded = E.kernel_time_under p d Memopt.config_local in
      let padded = E.kernel_time_under p d Memopt.config_local_noconflict in
      Alcotest.(check bool)
        (Printf.sprintf "padding helps on %s" d.Device.name)
        true (padded < unpadded))
    E.gpu_devices

let test_vectorization_helps_global () =
  (* on the cache-less GTX8800, float4 vector loads reduce global traffic *)
  let t_scalar = nbody_time Device.gtx8800 Memopt.config_global in
  let t_vec = nbody_time Device.gtx8800 Memopt.config_global_vector in
  Alcotest.(check bool) "vector loads help" true (t_vec < t_scalar)

let test_texture_best_for_rpes_8800 () =
  (* paper §5.2: RPES benefits significantly from texture memory on the
     GTX8800 (hardware texture cache + spatial locality) *)
  let p = E.prepare Lime_benchmarks.Rpes.bench in
  let tex = E.kernel_time_under p Device.gtx8800 Memopt.config_image in
  List.iter
    (fun (name, cfg) ->
      if name <> "Texture" then
        Alcotest.(check bool)
          (Printf.sprintf "texture <= %s" name)
          true
          (tex <= E.kernel_time_under p Device.gtx8800 cfg *. 1.001))
    Memopt.fig8_configs

let test_cpu_device_ignores_placement () =
  (* local/constant are just RAM on a CPU: placement must not matter much *)
  let p = E.prepare Lime_benchmarks.Nbody.single in
  let tg = E.kernel_time_under p Device.core_i7 Memopt.config_global in
  let tl = E.kernel_time_under p Device.core_i7 Memopt.config_local_noconflict in
  Alcotest.(check bool) "CPU within 20%" true
    (Float.abs (tg -. tl) /. tg < 0.2)

let test_jvm_slower_than_multicore () =
  let p = E.prepare Lime_benchmarks.Nbody.single in
  let base = E.baseline_seconds p in
  let six = (E.endtoend p Device.core_i7 Memopt.config_global).E.ee_total_s in
  Alcotest.(check bool) "6 cores beat bytecode" true (six < base)

let test_device_table2_shapes () =
  Alcotest.(check int) "GTX580 SMs" 16 Device.gtx580.Device.sms;
  Alcotest.(check int) "GTX580 FP units" 32 Device.gtx580.Device.fp32_lanes;
  Alcotest.(check int) "GTX8800 FP units" 8 Device.gtx8800.Device.fp32_lanes;
  Alcotest.(check int) "HD5970 SIMDs" 20 Device.hd5970.Device.sms;
  Alcotest.(check int) "i7 cores" 6 Device.core_i7.Device.sms;
  Alcotest.(check bool) "Fermi has L2" true Device.gtx580.Device.has_l2;
  Alcotest.(check bool) "G80 has no L2" false Device.gtx8800.Device.has_l2;
  Alcotest.(check bool) "peak flops ordering" true
    (Device.peak_flops Device.hd5970 > Device.peak_flops Device.gtx580
    && Device.peak_flops Device.gtx580 > Device.peak_flops Device.gtx8800)

let () =
  Alcotest.run "gpusim"
    [
      ( "profile",
        [
          Alcotest.test_case "exact counts" `Quick test_profile_counts_exact;
          Alcotest.test_case "matches interpreter" `Quick
            test_profile_matches_interpreter;
        ] );
      ( "model",
        [
          Alcotest.test_case "global never beats best" `Slow
            test_global_never_beats_best;
          Alcotest.test_case "Fermi flatter" `Slow test_fermi_flatter;
          Alcotest.test_case "double slower" `Quick test_double_slower;
          Alcotest.test_case "padding helps" `Quick
            test_padding_removes_conflicts;
          Alcotest.test_case "vectorization helps" `Quick
            test_vectorization_helps_global;
          Alcotest.test_case "texture best for RPES/8800" `Quick
            test_texture_best_for_rpes_8800;
          Alcotest.test_case "CPU ignores placement" `Quick
            test_cpu_device_ignores_placement;
          Alcotest.test_case "JVM slower than multicore" `Quick
            test_jvm_slower_than_multicore;
        ] );
      ( "devices",
        [ Alcotest.test_case "Table 2 parameters" `Quick test_device_table2_shapes ] );
    ]
