(* Shape tests for the experiment generators: the qualitative claims of the
   paper's evaluation (§5) must hold in our reproduction.  These are the
   "does the figure look right" assertions recorded in EXPERIMENTS.md. *)

module E = Lime_benchmarks.Experiments
module B = Lime_benchmarks.Bench_def
module Device = Gpusim.Device
module Comm = Lime_runtime.Comm

let speedup_of rows bench series =
  let r = List.find (fun (x : E.fig7_row) -> x.E.f7_bench = bench) rows in
  List.assoc series r.E.f7_series

(* ------------------------------------------------------------------ *)
(* Figure 7(a): CPU                                                     *)
(* ------------------------------------------------------------------ *)

let fig7a = lazy (E.fig7a ())

let test_one_core_near_baseline () =
  (* paper: "the 1-core performance is generally the same as the baseline";
     transcendental-heavy benchmarks gain from OpenCL's faster math *)
  let rows = Lazy.force fig7a in
  List.iter
    (fun bench ->
      let s = speedup_of rows bench "1 core" in
      Alcotest.(check bool)
        (Printf.sprintf "%s 1-core %.2f in [0.5, 2.0]" bench s)
        true
        (s >= 0.5 && s <= 2.0))
    [ "N-Body (Single)"; "Mosaic"; "Parboil-CP"; "JG-Crypt" ]

let test_six_core_scaling () =
  let rows = Lazy.force fig7a in
  (* normal benchmarks scale roughly with cores *)
  List.iter
    (fun bench ->
      let s = speedup_of rows bench "6 cores" in
      Alcotest.(check bool)
        (Printf.sprintf "%s 6-core %.1f in [3, 8]" bench s)
        true
        (s >= 3.0 && s <= 8.0))
    [ "N-Body (Single)"; "Mosaic"; "Parboil-CP"; "JG-Crypt" ];
  (* transcendental-heavy ones are super-linear (paper: 13.6x-32.5x) *)
  List.iter
    (fun bench ->
      let s = speedup_of rows bench "6 cores" in
      Alcotest.(check bool)
        (Printf.sprintf "%s 6-core %.1f super-linear" bench s)
        true (s > 8.0 && s < 40.0))
    [ "Parboil-MRIQ"; "Parboil-RPES"; "JG-Series (Single)" ]

(* ------------------------------------------------------------------ *)
(* Figure 7(b): GPU                                                     *)
(* ------------------------------------------------------------------ *)

let fig7b = lazy (E.fig7b ())

let test_gpu_speedup_range () =
  (* paper: 12x to 431x across benchmarks and GPUs *)
  let rows = Lazy.force fig7b in
  List.iter
    (fun (r : E.fig7_row) ->
      List.iter
        (fun (series, s) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s %s %.0fx in [3, 700]" r.E.f7_bench series s)
            true
            (s >= 3.0 && s <= 700.0))
        r.E.f7_series)
    rows

let test_gpu_ordering () =
  (* lowest speedups: the non-FP benchmarks (Crypt, Mosaic); highest: the
     transcendental-heavy ones *)
  let rows = Lazy.force fig7b in
  let g bench = speedup_of rows bench "GTX580" in
  Alcotest.(check bool) "Crypt lowest" true
    (g "JG-Crypt" < g "N-Body (Single)");
  Alcotest.(check bool) "Mosaic low" true
    (g "Mosaic" < g "Parboil-CP");
  Alcotest.(check bool) "MRIQ highest tier" true
    (g "Parboil-MRIQ" > g "N-Body (Single)");
  Alcotest.(check bool) "transcendental beats crypt by >10x" true
    (g "Parboil-MRIQ" > 10.0 *. g "JG-Crypt")

let test_double_vs_single () =
  (* paper: doubles ~2-3x slower on GTX580, ~1.5x on HD5970 *)
  let rows = Lazy.force fig7b in
  let ratio series =
    speedup_of rows "JG-Series (Single)" series
    /. speedup_of rows "JG-Series (Double)" series
  in
  Alcotest.(check bool)
    (Printf.sprintf "GTX580 double penalty %.2f in [1.5, 3.5]" (ratio "GTX580"))
    true
    (ratio "GTX580" >= 1.5 && ratio "GTX580" <= 3.5);
  Alcotest.(check bool) "HD5970 penalty smaller" true
    (ratio "HD5970" < ratio "GTX580")

(* ------------------------------------------------------------------ *)
(* Figure 8                                                             *)
(* ------------------------------------------------------------------ *)

let test_best_config_competitive () =
  (* paper: with the best choices the compiler attains 75%-140% of
     hand-tuned *)
  List.iter
    (fun d ->
      List.iter
        (fun (r : E.fig8_row) ->
          let best =
            List.fold_left
              (fun acc c -> Float.max acc c.E.f8_rel)
              0.0 r.E.f8_cells
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s best %.2f in [0.75, 1.40]" r.E.f8_bench
               d.Device.name best)
            true
            (best >= 0.75 && best <= 1.40))
        (E.fig8_for d))
    [ Device.gtx8800; Device.gtx580 ]

let test_global_worst () =
  (* global-only is the worst configuration on the cache-less GTX8800 *)
  List.iter
    (fun (r : E.fig8_row) ->
      let cell name = (List.find (fun c -> c.E.f8_config = name) r.E.f8_cells).E.f8_rel in
      let global = cell "Global" in
      List.iter
        (fun c ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: global <= %s" r.E.f8_bench c.E.f8_config)
            true
            (global <= c.E.f8_rel +. 1e-9))
        r.E.f8_cells)
    (E.fig8_for Device.gtx8800)

let test_mosaic_beats_hand_tuned () =
  (* paper: "the compiled code surprisingly outperforms the hand-tuned
     versions for the Mosaic benchmark" (better bank-conflict removal) *)
  List.iter
    (fun d ->
      let rows = E.fig8_for d in
      let r = List.find (fun (x : E.fig8_row) -> x.E.f8_bench = "Mosaic") rows in
      let cell =
        List.find (fun c -> c.E.f8_config = "Local+Conflicts removed") r.E.f8_cells
      in
      Alcotest.(check bool)
        (Printf.sprintf "Mosaic local+pad beats hand on %s" d.Device.name)
        true (cell.E.f8_rel > 1.0))
    E.gpu_devices

let test_mriq_constant_beats_hand () =
  (* paper: MRIQ with constant memory slightly outperforms hand-tuned *)
  let rows = E.fig8_for Device.gtx580 in
  let r = List.find (fun (x : E.fig8_row) -> x.E.f8_bench = "Parboil-MRIQ") rows in
  let cell = List.find (fun c -> c.E.f8_config = "Constant") r.E.f8_cells in
  Alcotest.(check bool) "MRIQ constant > 1.0" true (cell.E.f8_rel > 1.0)

let test_fermi_less_sensitive () =
  (* paper: on the GTX580, global is within ~20% for the cache-resident
     benchmarks *)
  let rows = E.fig8_for Device.gtx580 in
  List.iter
    (fun bench ->
      let r = List.find (fun (x : E.fig8_row) -> x.E.f8_bench = bench) rows in
      let cell n = (List.find (fun c -> c.E.f8_config = n) r.E.f8_cells).E.f8_rel in
      Alcotest.(check bool)
        (Printf.sprintf "%s global within 20%% on Fermi" bench)
        true
        (cell "Global" >= 0.75))
    [ "N-Body (Single)"; "Parboil-CP"; "Parboil-MRIQ" ]

(* ------------------------------------------------------------------ *)
(* Figure 9                                                             *)
(* ------------------------------------------------------------------ *)

let test_cpu_compute_dominates () =
  (* paper: on the multicore, computation dominates — JG-Crypt excepted *)
  let rows = E.fig9 Device.core_i7 in
  List.iter
    (fun (r : E.fig9_row) ->
      let t = Comm.total r.E.f9_phases in
      let kernel_pct = r.E.f9_phases.Comm.kernel_s /. t in
      if r.E.f9_bench = "JG-Crypt" then
        Alcotest.(check bool) "crypt is the exception" true (kernel_pct < 0.8)
      else
        Alcotest.(check bool)
          (Printf.sprintf "%s compute-dominated (%.0f%%)" r.E.f9_bench
             (100.0 *. kernel_pct))
          true (kernel_pct > 0.7))
    rows

let test_rpes_setup_anomaly () =
  (* paper: OpenCL setup is typically ~5%, except RPES (~40%) *)
  let rows = E.fig9 Device.gtx580 in
  let setup_pct name =
    let r = List.find (fun (x : E.fig9_row) -> x.E.f9_bench = name) rows in
    Comm.(r.E.f9_phases.setup_s /. total r.E.f9_phases)
  in
  Alcotest.(check bool) "RPES setup large" true (setup_pct "Parboil-RPES" > 0.2);
  Alcotest.(check bool) "CP setup small" true (setup_pct "Parboil-CP" < 0.05);
  Alcotest.(check bool) "MRIQ setup small" true (setup_pct "Parboil-MRIQ" < 0.05)

let test_gpu_comm_share_substantial () =
  (* paper: communication averages ~40% on the GPU *)
  let rows = E.fig9 Device.gtx580 in
  let shares =
    List.map
      (fun (r : E.fig9_row) ->
        Comm.communication r.E.f9_phases /. Comm.total r.E.f9_phases)
      rows
  in
  let avg = List.fold_left ( +. ) 0.0 shares /. float_of_int (List.length shares) in
  Alcotest.(check bool)
    (Printf.sprintf "average comm share %.0f%% in [10%%, 60%%]" (100.0 *. avg))
    true
    (avg > 0.10 && avg < 0.60)

(* ------------------------------------------------------------------ *)
(* §4.3 ablation and §2 glue                                            *)
(* ------------------------------------------------------------------ *)

let test_marshal_ablation () =
  (* paper: with the generic marshaller, "more than 90% of the time was
     spent marshaling" for communication-bound benchmarks *)
  let rows = E.marshal_ablation Device.gtx580 in
  List.iter
    (fun (r : E.marshal_ablation) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s generic >= custom" r.E.ma_bench)
        true
        (r.E.ma_generic_pct >= r.E.ma_custom_pct))
    rows;
  let crypt = List.find (fun r -> r.E.ma_bench = "JG-Crypt") rows in
  Alcotest.(check bool)
    (Printf.sprintf "crypt generic marshaling dominates (%.0f%%)"
       crypt.E.ma_generic_pct)
    true
    (crypt.E.ma_generic_pct > 75.0)

let test_glue_volume () =
  List.iter
    (fun (name, glue_lines, kernel_lines) ->
      Alcotest.(check bool) (name ^ " glue >100 lines") true (glue_lines > 100);
      Alcotest.(check bool) (name ^ " kernel nonempty") true (kernel_lines > 10))
    (E.glue_volume ())

let test_tables_render () =
  Alcotest.(check bool) "table1" true
    (Lime_support.Util.contains_substring ~sub:"map & reduce" (E.table1 ()));
  Alcotest.(check bool) "table2" true
    (Lime_support.Util.contains_substring ~sub:"GTX 580" (E.table2 ()));
  Alcotest.(check bool) "table3" true
    (Lime_support.Util.contains_substring ~sub:"JG-Crypt" (E.table3 ()))

let () =
  Alcotest.run "experiments"
    [
      ( "fig7a",
        [
          Alcotest.test_case "1-core near baseline" `Quick
            test_one_core_near_baseline;
          Alcotest.test_case "6-core scaling" `Quick test_six_core_scaling;
        ] );
      ( "fig7b",
        [
          Alcotest.test_case "speedup range" `Quick test_gpu_speedup_range;
          Alcotest.test_case "ordering" `Quick test_gpu_ordering;
          Alcotest.test_case "double penalty" `Quick test_double_vs_single;
        ] );
      ( "fig8",
        [
          Alcotest.test_case "best competitive (75-140%)" `Slow
            test_best_config_competitive;
          Alcotest.test_case "global worst on G80" `Slow test_global_worst;
          Alcotest.test_case "Mosaic beats hand" `Quick
            test_mosaic_beats_hand_tuned;
          Alcotest.test_case "MRIQ constant beats hand" `Quick
            test_mriq_constant_beats_hand;
          Alcotest.test_case "Fermi less sensitive" `Quick
            test_fermi_less_sensitive;
        ] );
      ( "fig9",
        [
          Alcotest.test_case "CPU compute dominates" `Quick
            test_cpu_compute_dominates;
          Alcotest.test_case "RPES setup anomaly" `Quick test_rpes_setup_anomaly;
          Alcotest.test_case "GPU comm share" `Quick
            test_gpu_comm_share_substantial;
        ] );
      ( "extras",
        [
          Alcotest.test_case "marshal ablation" `Quick test_marshal_ablation;
          Alcotest.test_case "glue volume" `Quick test_glue_volume;
          Alcotest.test_case "tables render" `Quick test_tables_render;
        ] );
    ]
