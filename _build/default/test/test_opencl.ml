(* Structural tests for the OpenCL code generator: the Fig 4/5 idioms under
   each memory configuration. *)

module Memopt = Lime_gpu.Memopt
module Opencl = Lime_gpu.Opencl
module Kernel = Lime_gpu.Kernel
module Util = Lime_support.Util

let nbody = Lime_benchmarks.Nbody.single

let compile cfg =
  let c =
    Lime_gpu.Pipeline.compile ~config:cfg
      ~worker:nbody.Lime_benchmarks.Bench_def.worker
      nbody.Lime_benchmarks.Bench_def.source
  in
  c.Lime_gpu.Pipeline.cp_opencl

let has sub src = Util.contains_substring ~sub src
let check_has name sub src = Alcotest.(check bool) name true (has sub src)
let check_not name sub src = Alcotest.(check bool) name false (has sub src)

let test_fig4_structure () =
  let src = compile Memopt.config_global in
  check_has "kernel keyword" "__kernel void NBody_computeForces" src;
  check_has "robust thread loop (Fig 4)"
    "= get_global_id(0);" src;
  check_has "thread stride" "+= get_global_size(0)" src;
  check_has "args struct (Fig 4b)" "typedef struct" src;
  check_has "length bookkeeping" "particles_len0" src;
  check_has "output buffer" "__global float* restrict _out" src

let test_global_qualifiers () =
  let src = compile Memopt.config_global in
  check_has "const global input" "__global const float* restrict particles" src;
  check_not "no constant qualifier" "__constant" src;
  check_not "no image" "image2d_t" src

let test_constant_vector () =
  let src = compile Memopt.config_constant_vector in
  check_has "constant float4 input" "__constant float4* restrict particles" src;
  check_has "vector component read" "_q12.x" src;
  check_has "float4 register" "float4 _elem6 = particles[" src

let test_local_staging () =
  let src = compile Memopt.config_local_noconflict in
  check_has "local tile declared" "__local float particles_tile" src;
  check_has "barrier after staging (Fig 5d)" "barrier(CLK_LOCAL_MEM_FENCE)" src;
  check_has "cooperative copy" "get_local_id(0)" src

let test_image () =
  let src = compile Memopt.config_image in
  check_has "image parameter" "__read_only image2d_t particles" src;
  check_has "sampler" "sampler_t particles_smp" src;
  check_has "read_imagef (Fig 5f)" "read_imagef(particles, particles_smp, (int2)(" src

let test_private_array () =
  let src = compile Memopt.config_global in
  check_has "private result array (Fig 5b)" "float _res" src

(* split source into identifier-ish tokens *)
let tokens src =
  String.map
    (fun c ->
      if
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
        || c = '.' || c = '_' || c = '-'
      then c
      else ' ')
    src
  |> String.split_on_char ' '
  |> List.filter (fun t -> t <> "")

let test_float_literals_valid () =
  (* every float literal must contain a '.' or exponent: `0f` would not
     compile in OpenCL C *)
  let src = compile Memopt.config_global in
  check_has "zero literal well-formed" "0.0f" src;
  List.iter
    (fun t ->
      if
        String.length t > 1
        && t.[String.length t - 1] = 'f'
        && t.[0] >= '0'
        && t.[0] <= '9'
      then
        let body = String.sub t 0 (String.length t - 1) in
        match float_of_string_opt body with
        | Some _ ->
            Alcotest.(check bool)
              (Printf.sprintf "literal %s has . or e" t)
              true
              (String.exists (fun c -> c = '.' || c = 'e') body)
        | None -> ())
    (tokens src)

let test_double_pragma () =
  let nbody_d = Lime_benchmarks.Nbody.double in
  let c =
    Lime_gpu.Pipeline.compile
      ~worker:nbody_d.Lime_benchmarks.Bench_def.worker
      nbody_d.Lime_benchmarks.Bench_def.source
  in
  check_has "fp64 pragma" "cl_khr_fp64"
    c.Lime_gpu.Pipeline.cp_opencl

let test_native_transcendentals () =
  let series = Lime_benchmarks.Series.single in
  let c =
    Lime_gpu.Pipeline.compile
      ~worker:series.Lime_benchmarks.Bench_def.worker
      series.Lime_benchmarks.Bench_def.source
  in
  check_has "native sin for float" "native_sin" c.Lime_gpu.Pipeline.cp_opencl;
  check_has "native cos for float" "native_cos" c.Lime_gpu.Pipeline.cp_opencl

let test_parallel_reduction_kernel () =
  (* a worker that IS a reduction compiles to the two-stage tree (§4.1:
     "the compiler may infer a parallel reduction") *)
  let c =
    Lime_gpu.Pipeline.compile ~worker:"Sum.total"
      "class Sum { static local float total(float[[]] xs) { return + ! xs; } }"
  in
  let src = c.Lime_gpu.Pipeline.cp_opencl in
  check_has "local partials" "__local float _partial[TILE]" src;
  check_has "grid-stride accumulate" "for (int _r = get_global_id(0)" src;
  check_has "tree step" "for (int _s = get_local_size(0) / 2" src;
  check_has "barrier between steps" "barrier(CLK_LOCAL_MEM_FENCE)" src;
  check_has "per-group partial" "_out[get_group_id(0)]" src;
  let r = Lime_gpu.Clcheck.check src in
  if not (Lime_gpu.Clcheck.ok r) then
    Alcotest.failf "reduction kernel invalid:
%s" (Lime_gpu.Clcheck.report r)

let test_all_benchmarks_generate () =
  List.iter
    (fun (b : Lime_benchmarks.Bench_def.t) ->
      let c =
        Lime_gpu.Pipeline.compile ~worker:b.Lime_benchmarks.Bench_def.worker
          b.Lime_benchmarks.Bench_def.source
      in
      let src = c.Lime_gpu.Pipeline.cp_opencl in
      Alcotest.(check bool)
        (b.Lime_benchmarks.Bench_def.name ^ " has kernel")
        true (has "__kernel void" src);
      Alcotest.(check bool)
        (b.Lime_benchmarks.Bench_def.name ^ " balanced braces")
        true
        (let opens = String.fold_left (fun a c -> if c = '{' then a + 1 else a) 0 src in
         let closes = String.fold_left (fun a c -> if c = '}' then a + 1 else a) 0 src in
         opens = closes))
    Lime_benchmarks.Registry.all

let () =
  Alcotest.run "opencl"
    [
      ( "structure",
        [
          Alcotest.test_case "Fig 4 kernel shape" `Quick test_fig4_structure;
          Alcotest.test_case "global qualifiers" `Quick test_global_qualifiers;
          Alcotest.test_case "constant + vector" `Quick test_constant_vector;
          Alcotest.test_case "local staging" `Quick test_local_staging;
          Alcotest.test_case "image" `Quick test_image;
          Alcotest.test_case "private arrays" `Quick test_private_array;
          Alcotest.test_case "float literals" `Quick test_float_literals_valid;
          Alcotest.test_case "fp64 pragma" `Quick test_double_pragma;
          Alcotest.test_case "native transcendentals" `Quick
            test_native_transcendentals;
          Alcotest.test_case "parallel reduction" `Quick
            test_parallel_reduction_kernel;
          Alcotest.test_case "all benchmarks generate" `Quick
            test_all_benchmarks_generate;
        ] );
    ]
