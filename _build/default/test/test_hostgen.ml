(* Structural tests for the generated OpenCL host glue (§2: "at least a
   dozen OpenCL procedures", "182 lines of code" for setup). *)

module Hostgen = Lime_gpu.Hostgen
module Util = Lime_support.Util

let glue_for (b : Lime_benchmarks.Bench_def.t) =
  let c =
    Lime_gpu.Pipeline.compile ~worker:b.Lime_benchmarks.Bench_def.worker
      b.Lime_benchmarks.Bench_def.source
  in
  Hostgen.generate c.Lime_gpu.Pipeline.cp_kernel

let test_api_procedure_count () =
  let glue = glue_for Lime_benchmarks.Nbody.single in
  let used = Hostgen.api_calls_used glue in
  Alcotest.(check bool)
    (Printf.sprintf "at least a dozen OpenCL procedures (got %d)"
       (List.length used))
    true
    (List.length used >= 12)

let test_setup_volume () =
  (* the discovery/build prologue alone approaches the paper's "additional
     182 lines" figure *)
  let glue = glue_for Lime_benchmarks.Nbody.single in
  Alcotest.(check bool) "substantial glue" true (Util.count_lines glue > 100)

let test_buffer_per_array_param () =
  let glue = glue_for Lime_benchmarks.Nbody.single in
  Alcotest.(check bool) "input buffer" true
    (Util.contains_substring ~sub:"buf_particles" glue);
  Alcotest.(check bool) "output buffer" true
    (Util.contains_substring ~sub:"buf_out" glue);
  Alcotest.(check bool) "read-only input" true
    (Util.contains_substring ~sub:"CL_MEM_READ_ONLY" glue)

let test_error_checking () =
  let glue = glue_for Lime_benchmarks.Cp.bench in
  Alcotest.(check bool) "build log on failure" true
    (Util.contains_substring ~sub:"CL_PROGRAM_BUILD_LOG" glue);
  Alcotest.(check bool) "status checks" true
    (Util.contains_substring ~sub:"check(st" glue)

let test_cleanup () =
  let glue = glue_for Lime_benchmarks.Mosaic.bench in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (sub ^ " released") true
        (Util.contains_substring ~sub glue))
    [
      "clReleaseMemObject"; "clReleaseKernel"; "clReleaseProgram";
      "clReleaseCommandQueue"; "clReleaseContext";
    ]

let test_all_benchmarks () =
  List.iter
    (fun (b : Lime_benchmarks.Bench_def.t) ->
      let glue = glue_for b in
      Alcotest.(check bool)
        (b.Lime_benchmarks.Bench_def.name ^ " enqueues kernel")
        true
        (Util.contains_substring ~sub:"clEnqueueNDRangeKernel" glue))
    Lime_benchmarks.Registry.all

let () =
  Alcotest.run "hostgen"
    [
      ( "glue",
        [
          Alcotest.test_case "dozen API procedures" `Quick
            test_api_procedure_count;
          Alcotest.test_case "setup volume" `Quick test_setup_volume;
          Alcotest.test_case "buffers per param" `Quick
            test_buffer_per_array_param;
          Alcotest.test_case "error checking" `Quick test_error_checking;
          Alcotest.test_case "cleanup" `Quick test_cleanup;
          Alcotest.test_case "all benchmarks" `Quick test_all_benchmarks;
        ] );
    ]
