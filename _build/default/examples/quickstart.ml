(** Quickstart: compile a small Lime program and offload its filter.

    Run with:  dune exec examples/quickstart.exe

    The program doubles every element of a float array.  We walk the whole
    pipeline: parse → type check → lower → extract the kernel → memory
    optimizer → OpenCL codegen, then execute the task graph on the simulated
    GTX 580. *)

let source =
  {|
class Doubler {
  // The map function: static and local, so the compiler can prove the
  // map is data-parallel without any alias analysis.
  static local float twice(float x) {
    return x * 2.0f;
  }

  // The filter worker: value types in, value types out => isolated.
  static local float[[]] apply(float[[]] xs) {
    return Doubler.twice @ xs;
  }

  static local float gen(int i) {
    return (float) i * 0.5f;
  }
}

class App {
  int n;
  float first;

  App(int count) { n = count; }

  local float[[]] src() { return Doubler.gen @ Lime.range(n); }

  void sink(float[[]] xs) { first = xs[0] + xs[xs.length - 1]; }

  static void main(int count, int steps) {
    (task App(count).src => task Doubler.apply => task App(count).sink)
      .finish(steps);
  }
}
|}

let () =
  print_endline "=== 1. Compile (parse, check, lower, extract, optimize) ===";
  let compiled =
    Lime_gpu.Pipeline.compile ~worker:"Doubler.apply" source
  in
  Printf.printf "kernel: %s (parallel=%b)\n\n"
    compiled.Lime_gpu.Pipeline.cp_kernel.Lime_gpu.Kernel.k_name
    compiled.Lime_gpu.Pipeline.cp_kernel.Lime_gpu.Kernel.k_parallel;

  print_endline "=== 2. Memory placement decisions ===";
  print_endline (Lime_gpu.Memopt.describe compiled.cp_decisions);
  print_newline ();

  print_endline "=== 3. Generated OpenCL ===";
  print_endline compiled.cp_opencl;

  print_endline "=== 4. Run the task graph on the simulated GTX 580 ===";
  let cfg = Lime_runtime.Engine.default_config in
  let _, report =
    Lime_runtime.Engine.run_program cfg compiled.cp_module ~cls:"App"
      ~meth:"main"
      [ Lime_ir.Value.VInt 1024; Lime_ir.Value.VInt 3 ]
  in
  Printf.printf "firings: %d\n" report.Lime_runtime.Engine.firings;
  Printf.printf "offloaded: %s\n"
    (String.concat ", " report.offloaded_tasks);
  Printf.printf "on host:   %s\n" (String.concat ", " report.host_tasks);
  Format.printf "phases: %a@." Lime_runtime.Comm.pp report.phases;
  Printf.printf "sink input (sample): %s\n"
    (Lime_ir.Value.to_string report.last_value)
