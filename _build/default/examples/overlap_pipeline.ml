(** Overlapping communication with computation (paper §5.3 future work).

    Run with:  dune exec examples/overlap_pipeline.exe -- [firings]

    The paper: "the communication costs can be hidden by well-known
    pipelining techniques that overlap communication and computation; these
    techniques lie beyond the scope of this paper."  This reproduction
    implements them (`Lime_runtime.Schedule`): with double buffering,
    firing i's kernel overlaps firing i+1's marshaling and transfers.

    This example runs the whole suite on the simulated GTX 580 and reports
    serial vs pipelined vs pipelined+direct-marshal times — the gains
    concentrate exactly where Fig 9 showed high communication shares. *)

module E = Lime_benchmarks.Experiments

let () =
  let firings =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 32
  in
  Printf.printf
    "Streaming execution of %d firings on the simulated GTX 580\n\n" firings;
  print_endline
    (E.render_overlap ~firings Gpusim.Device.gtx580
       (E.overlap ~firings Gpusim.Device.gtx580));
  print_newline ();
  print_endline
    "Reading the table: pipelining pays where the communication share\n\
     (Fig 9) is high — JG-Series and Mosaic approach the 2x bound set by\n\
     their two comparable stages, while compute-bound Parboil-CP/MRIQ are\n\
     already kernel-limited and gain almost nothing.  The direct-to-device\n\
     serializer (which skips the C-side conversion) adds its margin on\n\
     top, 'approximately halving the marshaling overhead' as the paper\n\
     projected.";
  (* decision rule the runtime could apply automatically *)
  print_newline ();
  print_endline "Runtime decision (enable pipelining when projected gain > 10%):";
  List.iter
    (fun (r : E.overlap_row) ->
      Printf.printf "  %-22s %s\n" r.E.ov_bench
        (if r.E.ov_pipelined_speedup >= 1.1 then "pipeline (double-buffer)"
         else "serial (not worth the buffers)"))
    (E.overlap ~firings Gpusim.Device.gtx580)
