(** N-Body end-to-end (the paper's running example, §2-§3).

    Run with:  dune exec examples/nbody_sim.exe -- [particles] [steps]

    Compiles the Lime N-Body program, runs the task graph
    (particleGen => computeForces => accumulate) for several simulation
    steps on each simulated platform, and reports the end-to-end speedup
    over the Lime-bytecode baseline — a miniature Figure 7. *)

module Engine = Lime_runtime.Engine
module Comm = Lime_runtime.Comm
module V = Lime_ir.Value
module B = Lime_benchmarks.Bench_def

let () =
  let particles =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 96
  in
  let steps =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 3
  in
  let bench = Lime_benchmarks.Nbody.single in
  let compiled =
    Lime_gpu.Pipeline.compile ~config:bench.B.best_config
      ~worker:bench.B.worker bench.B.source
  in
  Printf.printf "N-Body: %d particles, %d simulation steps\n\n" particles steps;

  (* functional run on the simulated GTX 580 (kernels really execute) *)
  let run device =
    let cfg =
      {
        Engine.default_config with
        Engine.device;
        opt_config = bench.B.best_config;
      }
    in
    let _, report =
      Engine.run_program cfg compiled.Lime_gpu.Pipeline.cp_module
        ~cls:"NBodySim" ~meth:"main"
        [ V.VInt particles; V.VInt steps ]
    in
    report
  in

  let baseline = run None in
  let base_t = Comm.total baseline.Engine.phases in
  Printf.printf "%-28s %10.3f ms (all bytecode)\n" "baseline (JVM)"
    (base_t *. 1e3);

  List.iter
    (fun device ->
      let r = run (Some device) in
      let t = Comm.total r.Engine.phases in
      Printf.printf "%-28s %10.3f ms  speedup %6.1fx   kernel %4.0f%%\n"
        device.Gpusim.Device.name (t *. 1e3) (base_t /. t)
        (100.0 *. r.Engine.phases.Comm.kernel_s /. t))
    [ Gpusim.Device.core_i7; Gpusim.Device.gtx8800; Gpusim.Device.gtx580;
      Gpusim.Device.hd5970 ];

  (* validate the physics against the independent reference *)
  let r580 = run (Some Gpusim.Device.gtx580) in
  let input =
    let st = Lime_ir.Interp.create compiled.Lime_gpu.Pipeline.cp_module in
    Lime_ir.Interp.run_instance st ~cls:"NBodySim"
      ~ctor_args:[ V.VInt particles ] ~meth:"particleGen" []
  in
  let ok =
    V.approx_equal ~rtol:2e-4 ~atol:1e-5 r580.Engine.last_value
      (bench.B.reference input)
  in
  Printf.printf "\nforces validated against the OCaml reference: %b\n" ok
