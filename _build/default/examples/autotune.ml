(** Memory-mapping autotuner.

    Run with:  dune exec examples/autotune.exe -- [benchmark]

    The paper notes the compiler "permits any of the optimizations to be
    enabled and disabled so that it is possible to perform an automated
    exploration of the memory mapping and layout" (§4.2.1).  This example
    is that exploration: for every benchmark and device, it sweeps the
    eight Fig 8 configurations on the device model and reports the winner —
    which is how each benchmark's `best_config` was chosen. *)

module E = Lime_benchmarks.Experiments
module B = Lime_benchmarks.Bench_def
module Memopt = Lime_gpu.Memopt

let () =
  let which =
    if Array.length Sys.argv > 1 then
      match Lime_benchmarks.Registry.find Sys.argv.(1) with
      | Some b -> [ b ]
      | None ->
          Printf.eprintf "unknown benchmark %S; available:\n  %s\n"
            Sys.argv.(1)
            (String.concat "\n  "
               (List.map
                  (fun (b : B.t) -> b.B.name)
                  Lime_benchmarks.Registry.all));
          exit 2
    else Lime_benchmarks.Registry.all
  in
  List.iter
    (fun (b : B.t) ->
      Printf.printf "=== %s ===\n" b.B.name;
      let p = E.prepare b in
      List.iter
        (fun d ->
          let timed =
            List.map
              (fun (name, cfg) -> (name, E.kernel_time_under p d cfg))
              Memopt.fig8_configs
          in
          let best_name, best_t =
            List.fold_left
              (fun (bn, bt) (n, t) -> if t < bt then (n, t) else (bn, bt))
              ("", infinity) timed
          in
          let worst_t =
            List.fold_left (fun acc (_, t) -> Float.max acc t) 0.0 timed
          in
          Printf.printf "  %-28s best: %-32s %8.3f ms (worst/best %.1fx)\n"
            d.Gpusim.Device.name best_name (best_t *. 1e3)
            (worst_t /. best_t))
        E.gpu_devices;
      print_newline ())
    which
