examples/overlap_pipeline.ml: Array Gpusim Lime_benchmarks List Printf Sys
