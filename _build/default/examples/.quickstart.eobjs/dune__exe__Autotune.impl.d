examples/autotune.ml: Array Float Gpusim Lime_benchmarks Lime_gpu List Printf String Sys
