examples/autotune.mli:
