examples/quickstart.ml: Format Lime_gpu Lime_ir Lime_runtime Printf String
