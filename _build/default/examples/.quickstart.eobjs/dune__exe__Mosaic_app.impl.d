examples/mosaic_app.ml: Array Gpusim Lime_benchmarks Lime_gpu Lime_ir List Printf
