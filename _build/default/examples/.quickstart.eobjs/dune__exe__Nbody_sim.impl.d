examples/nbody_sim.ml: Array Gpusim Lime_benchmarks Lime_gpu Lime_ir Lime_runtime List Printf Sys
