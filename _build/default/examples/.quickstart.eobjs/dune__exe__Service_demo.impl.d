examples/service_demo.ml: Filename Gpusim Lime_benchmarks Lime_gpu Lime_ir Lime_runtime Lime_service List Printf String Sys
