examples/service_demo.mli:
