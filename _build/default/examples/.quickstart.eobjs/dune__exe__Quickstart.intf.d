examples/quickstart.mli:
