examples/nbody_sim.mli:
