examples/mosaic_app.mli:
