examples/overlap_pipeline.mli:
