(** Mosaic: the paper's map-and-reduce image benchmark.

    Run with:  dune exec examples/mosaic_app.exe

    Builds a tile library and reference tiles, finds the best-matching
    library tile for every reference tile with a [Math.min !] reduction over
    SAD scores, and renders the upscaled mosaic.  Shows the bank-conflict
    padding story of §5.2: the compiled kernel with conflict removal beats
    the (simulated) hand-tuned version. *)

module E = Lime_benchmarks.Experiments
module B = Lime_benchmarks.Bench_def
module Memopt = Lime_gpu.Memopt
module V = Lime_ir.Value

let () =
  let bench = Lime_benchmarks.Mosaic.bench in
  print_endline "=== Mosaic: map-and-reduce tile matching ===\n";

  (* run the kernel functionally on a small input *)
  let compiled = Lime_benchmarks.Registry.compile_small bench in
  let input = bench.B.input_small () in
  let st = Lime_ir.Interp.create compiled.Lime_gpu.Pipeline.cp_module in
  let output =
    Lime_ir.Interp.run st ~cls:"Mosaic" ~meth:"computeMosaic" [ input ]
  in
  (match (input, output) with
  | V.VArr i, V.VArr o ->
      Printf.printf "input tiles: %d (library %d + references %d), 8x8 px\n"
        i.V.shape.(0) Lime_benchmarks.Mosaic.lib_tiles
        (i.V.shape.(0) - Lime_benchmarks.Mosaic.lib_tiles);
      Printf.printf "output mosaic: %d tiles x %d px (3x upscaled)\n"
        o.V.shape.(0) o.V.shape.(1)
  | _ -> ());
  let ok =
    V.approx_equal ~rtol:0.0 ~atol:0.0 output (bench.B.reference input)
  in
  Printf.printf "matches the OCaml reference: %b\n\n" ok;

  (* kernel-quality sweep: the §5.2 padding story *)
  print_endline
    "=== Kernel time by memory configuration (paper-scale input) ===";
  let p = E.prepare bench in
  List.iter
    (fun d ->
      Printf.printf "\n%s:\n" d.Gpusim.Device.name;
      List.iter
        (fun (name, cfg) ->
          Printf.printf "  %-32s %8.3f ms\n" name
            (E.kernel_time_under p d cfg *. 1e3))
        Memopt.fig8_configs)
    E.gpu_devices;
  print_endline
    "\nNote the Local vs Local+Conflicts-removed gap: the 64-element tile\n\
     rows hit the 16/32-bank local memories at a power-of-two stride, and\n\
     the compiler's padding removes the conflicts (paper §5.2: the compiled\n\
     Mosaic kernel beat the hand-tuned one for exactly this reason)."
