(** The compile service: content-addressed caching, request coalescing,
    persistent autotuning, and metrics.

    Run with:  dune exec examples/service_demo.exe

    The demo stands up a service over a temporary cache directory, serves a
    burst of identical compile requests (one compile, the rest coalesced),
    sweeps the N-Body kernel twice on the GTX 8800 (the second sweep is
    answered by the tunestore), and finally prints the metrics
    exposition. *)

module Service = Lime_service.Service
module Kcache = Lime_service.Kcache
module Metrics = Lime_service.Metrics

let nbody = Lime_benchmarks.Nbody.single

let temp_dir () =
  let f = Filename.temp_file "lime_service_demo" "" in
  Sys.remove f;
  Sys.mkdir f 0o755;
  f

let () =
  let dir = temp_dir () in
  Service.instrument ();
  let svc = Service.create ~cache_dir:dir ~capacity:16 () in
  let worker = nbody.Lime_benchmarks.Bench_def.worker in
  let source = nbody.Lime_benchmarks.Bench_def.source in

  print_endline "=== 1. A burst of identical in-flight compile requests ===";
  let burst = List.init 6 (fun _ -> Service.request ~worker source) in
  let compiled =
    match List.hd (Service.compile_many svc burst) with
    | Ok c -> c
    | Error d -> failwith (Lime_support.Diag.to_string d)
  in
  let s = Service.stats svc in
  Printf.printf
    "6 requests -> %d compile (misses), %d coalesced, %d hits\n\n"
    s.Kcache.misses s.Kcache.coalesced s.Kcache.hits;

  print_endline "=== 2. Repeated requests are cache hits ===";
  let _, origin = Service.compile_ex svc ~worker source in
  Printf.printf "second call served from: %s\n\n" (Service.origin_name origin);

  print_endline "=== 3. Autotune sweep, cold then warm (tunestore) ===";
  let d = Gpusim.Device.gtx8800 in
  let digest = Service.request_digest ~device:"gtx8800" ~worker source in
  let shapes = [ ("particles", [| 1024; 4 |]) ] in
  let kernel = compiled.Lime_gpu.Pipeline.cp_kernel in
  let sweep_once label =
    let entries, status =
      Service.sweep svc d ~device_key:"gtx8800" ~digest kernel ~shapes
        ~scalars:[]
    in
    Printf.printf "%s: %s (%d configurations timed)\n" label
      (match status with `Hit _ -> "tunestore hit" | `Miss -> "tunestore miss")
      (List.length entries);
    match entries with
    | best :: _ ->
        Printf.printf "  best: %-32s %.3f ms\n" best.Gpusim.Autotune.at_name
          (best.Gpusim.Autotune.at_time_s *. 1e3)
    | [] -> ()
  in
  sweep_once "cold sweep";
  sweep_once "warm sweep";
  print_newline ();

  print_endline "=== 4. Run the task graph so the comm legs get observed ===";
  let _, report =
    Lime_runtime.Engine.run_program Lime_runtime.Engine.default_config
      compiled.Lime_gpu.Pipeline.cp_module ~cls:"NBodySim" ~meth:"main"
      [ Lime_ir.Value.VInt 256; Lime_ir.Value.VInt 2 ]
  in
  Printf.printf "%d firings; offloaded: %s\n\n"
    report.Lime_runtime.Engine.firings
    (String.concat ", " report.Lime_runtime.Engine.offloaded_tasks);

  print_endline "=== 5. Metrics exposition ===";
  print_string (Service.expose svc);
  Printf.printf "\n(cache artifacts under %s)\n" dir
