(* The tail-sampling flight recorder (lib/server/flight): ring eviction
   order, lazy span materialization, and the JSONL post-mortem dump. *)

module Flight = Lime_server.Flight
module Trace = Lime_service.Trace
module Util = Lime_support.Util

let entry ?(outcome = "ok") ?(trace_id = "") ~id ~dur () =
  {
    Flight.fe_ts = 1000.0 +. float_of_int id;
    fe_id = id;
    fe_worker = "Doubler.apply";
    fe_name = Printf.sprintf "req-%d" id;
    fe_config = "none";
    fe_digest = "abc123";
    fe_trace_id = trace_id;
    fe_deadline_ms = None;
    fe_wait_s = 0.001;
    fe_dur_s = dur;
    fe_outcome = outcome;
    fe_origin = "memory";
    fe_spans = [];
  }

let ids es = List.map (fun e -> e.Flight.fe_id) es

let test_error_ring_fifo () =
  let t = Flight.create ~capacity:3 in
  for i = 1 to 5 do
    Flight.record t (entry ~outcome:"error" ~id:i ~dur:0.01 ())
  done;
  (* oldest evicted, newest first on read *)
  Alcotest.(check (list int)) "newest first, oldest two evicted" [ 5; 4; 3 ]
    (ids (Flight.errors t))

let test_slow_ring_keeps_the_tail () =
  let t = Flight.create ~capacity:3 in
  (* durations 1,5,3,2,4: the three slowest are 5,4,3 *)
  List.iteri
    (fun i dur -> Flight.record t (entry ~id:(i + 1) ~dur ()))
    [ 0.001; 0.005; 0.003; 0.002; 0.004 ];
  let slow = Flight.slowest t in
  Alcotest.(check (list int)) "slowest first" [ 2; 5; 3 ] (ids slow);
  Alcotest.(check int) "occupancy counts both rings" 3 (Flight.occupancy t);
  Alcotest.(check int) "two pushed out" 2 (Flight.evictions t);
  (* a faster request than everything retained is not admitted *)
  Flight.record t (entry ~id:9 ~dur:0.0001 ());
  Alcotest.(check (list int)) "fast request ignored" [ 2; 5; 3 ]
    (ids (Flight.slowest t))

let test_errored_request_lands_in_both_rings () =
  let t = Flight.create ~capacity:2 in
  Flight.record t (entry ~id:1 ~dur:0.01 ());
  Flight.record t (entry ~outcome:"compile-error" ~id:2 ~dur:0.02 ());
  Alcotest.(check (list int)) "error ring has it" [ 2 ] (ids (Flight.errors t));
  Alcotest.(check (list int)) "slow ring has it too" [ 2; 1 ]
    (ids (Flight.slowest t));
  Alcotest.(check int) "counted once per ring" 3 (Flight.occupancy t)

let test_spans_forced_only_when_retained () =
  let t = Flight.create ~capacity:2 in
  let forcings = ref 0 in
  let spans () =
    incr forcings;
    [
      {
        Trace.sp_id = 1; sp_parent = -1; sp_name = "server.request";
        sp_cat = "server"; sp_args = []; sp_begin_us = 0.0; sp_end_us = 10.0;
      };
    ]
  in
  Flight.record t ~spans (entry ~id:1 ~dur:0.010 ());
  Flight.record t ~spans (entry ~id:2 ~dur:0.020 ());
  Alcotest.(check int) "retained entries force the thunk" 2 !forcings;
  (* slower than nothing retained: the steady-state fast path *)
  Flight.record t ~spans (entry ~id:3 ~dur:0.001 ());
  Alcotest.(check int) "dropped entry never builds its tree" 2 !forcings;
  (match Flight.slowest t with
  | e :: _ ->
      Alcotest.(check int) "retained entry carries the spans" 1
        (List.length e.Flight.fe_spans)
  | [] -> Alcotest.fail "slow ring empty");
  (* an error is retained even when too fast for the slow ring *)
  Flight.record t ~spans (entry ~outcome:"error" ~id:4 ~dur:0.0001 ());
  Alcotest.(check int) "errors force the thunk too" 3 !forcings

let test_capacity_validated () =
  Alcotest.check_raises "capacity 0 refused"
    (Invalid_argument "Flight.create: capacity must be at least 1") (fun () ->
      ignore (Flight.create ~capacity:0))

let test_dump_jsonl () =
  let t = Flight.create ~capacity:2 in
  Flight.record t (entry ~outcome:"error" ~trace_id:"tid-err" ~id:1 ~dur:0.01 ());
  Flight.record t
    ~spans:(fun () ->
      [
        {
          Trace.sp_id = 7; sp_parent = -1; sp_name = "server.request";
          sp_cat = "server"; sp_args = [ ("k", "v\"q") ]; sp_begin_us = 0.0;
          sp_end_us = 12.5;
        };
      ])
    (entry ~trace_id:"tid-slow" ~id:2 ~dur:0.02 ());
  let file = Filename.temp_file "flight" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_text file (fun oc -> Flight.dump t oc);
      let lines =
        In_channel.with_open_text file In_channel.input_lines
        |> List.filter (fun l -> String.trim l <> "")
      in
      (* errors ring first, then the slow ring (which holds both) *)
      Alcotest.(check int) "one line per retained entry" 3 (List.length lines);
      List.iter
        (fun l ->
          Alcotest.(check bool) "line is a json object" true
            (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}');
          Alcotest.(check bool) "line names its ring" true
            (Util.contains_substring ~sub:"\"ring\":\"errors\"" l
            || Util.contains_substring ~sub:"\"ring\":\"slow\"" l))
        lines;
      let whole = String.concat "\n" lines in
      Alcotest.(check bool) "trace ids present" true
        (Util.contains_substring ~sub:"tid-err" whole
        && Util.contains_substring ~sub:"tid-slow" whole);
      Alcotest.(check bool) "span tree serialized" true
        (Util.contains_substring ~sub:"\"name\":\"server.request\"" whole);
      Alcotest.(check bool) "span args escaped" true
        (Util.contains_substring ~sub:"\"k\":\"v\\\"q\"" whole))

let () =
  Alcotest.run "flight"
    [
      ( "rings",
        [
          Alcotest.test_case "error ring is FIFO" `Quick test_error_ring_fifo;
          Alcotest.test_case "slow ring keeps the tail" `Quick
            test_slow_ring_keeps_the_tail;
          Alcotest.test_case "errored request in both rings" `Quick
            test_errored_request_lands_in_both_rings;
          Alcotest.test_case "capacity validated" `Quick
            test_capacity_validated;
        ] );
      ( "tail sampling",
        [
          Alcotest.test_case "spans forced only when retained" `Quick
            test_spans_forced_only_when_retained;
          Alcotest.test_case "jsonl dump" `Quick test_dump_jsonl;
        ] );
    ]
