(* Unit tests for the memory optimizer: each Fig 5 pattern, the Fig 8
   configuration toggles, and access-pattern classification. *)

module Ir = Lime_ir.Ir
module Kernel = Lime_gpu.Kernel
module Memopt = Lime_gpu.Memopt

let kernel_of src ~worker =
  Kernel.extract
    (Lime_ir.Lower.lower_program (Lime_typecheck.Check.check_string src))
    ~worker

let space_of decisions name =
  (Memopt.placement_for decisions name).Ir.space

let find_decision decisions pred =
  List.find_opt (fun (d : Memopt.decision) -> pred d) decisions

(* N-Body-like kernel: a streamed array with float4 rows and a private
   result array — exercises local, constant, image, private and vector. *)
let nbody_kernel () =
  kernel_of
    {|class K {
  static local float[[3]] one(float[[][4]] ps, float[[4]] p) {
    float fx = 0.0f;
    for (int j = 0; j < ps.length; j++) {
      fx += ps[j][0] - p[0];
    }
    return { fx, fx, fx };
  }
  static local float[[][3]] work(float[[][4]] ps) { return K.one(ps) @ ps; }
}|}
    ~worker:"K.work"

let test_global_default () =
  let k = nbody_kernel () in
  let ds = Memopt.optimize Memopt.config_global k in
  Alcotest.(check string) "input stays global" "global"
    (Ir.mem_space_name (space_of ds "ps"))

let test_local_pattern () =
  let k = nbody_kernel () in
  let ds = Memopt.optimize Memopt.config_local k in
  Alcotest.(check string) "streamed array goes local" "local"
    (Ir.mem_space_name (space_of ds "ps"));
  Alcotest.(check bool) "unpadded" false (Memopt.placement_for ds "ps").Ir.padded;
  let ds = Memopt.optimize Memopt.config_local_noconflict k in
  Alcotest.(check bool) "padded" true (Memopt.placement_for ds "ps").Ir.padded

let test_constant_pattern () =
  let k = nbody_kernel () in
  let ds = Memopt.optimize Memopt.config_constant k in
  Alcotest.(check string) "streamed array goes constant" "constant"
    (Ir.mem_space_name (space_of ds "ps"))

let test_image_pattern () =
  let k = nbody_kernel () in
  let ds = Memopt.optimize Memopt.config_image k in
  Alcotest.(check string) "float4 rows go to image" "image"
    (Ir.mem_space_name (space_of ds "ps"))

let test_image_needs_small_rows () =
  (* innermost dimension 3 is not a texel size: image must not apply *)
  let k =
    kernel_of
      {|class K {
  static local float one(float[[][3]] ps, int i) {
    float s = 0.0f;
    for (int j = 0; j < ps.length; j++) { s += ps[j][0]; }
    return s;
  }
  static local float[[]] work(float[[][3]] ps) {
    return K.one(ps) @ Lime.range(ps.length);
  }
}|}
      ~worker:"K.work"
  in
  let ds = Memopt.optimize Memopt.config_image k in
  Alcotest.(check string) "rows of 3 stay global" "global"
    (Ir.mem_space_name (space_of ds "ps"))

let test_private_pattern () =
  let k = nbody_kernel () in
  let ds = Memopt.optimize Memopt.config_global k in
  (* the per-thread result row must be private under every config *)
  match
    find_decision ds (fun d -> d.Memopt.d_placement.Ir.space = Ir.MPrivate)
  with
  | Some d ->
      Alcotest.(check bool) "allocated in parfor" true
        d.Memopt.d_info.Memopt.ai_alloc_in_parfor
  | None -> Alcotest.fail "expected a private array"

let test_private_threshold () =
  (* a large per-thread array must NOT go private *)
  let k =
    kernel_of
      {|class K {
  static local float one(int i) {
    float[[]] big = K.gen @ Lime.range(512);
    return big[0];
  }
  static local float gen(int j) { return (float) j; }
  static local float[[]] work(int[[]] xs) {
    return K.one @ Lime.range(xs.length);
  }
}|}
      ~worker:"K.work"
  in
  let ds = Memopt.optimize Memopt.config_all k in
  let big =
    find_decision ds (fun d ->
        d.Memopt.d_info.Memopt.ai_alloc_in_parfor
        && d.Memopt.d_info.Memopt.ai_static_elems = Some 512)
  in
  match big with
  | Some d ->
      Alcotest.(check bool) "spilled out of private" true
        (d.Memopt.d_placement.Ir.space <> Ir.MPrivate)
  | None -> Alcotest.fail "expected the 512-element array in decisions"

let test_written_arrays_stay_global () =
  let k = nbody_kernel () in
  List.iter
    (fun (_, cfg) ->
      let ds = Memopt.optimize cfg k in
      match
        find_decision ds (fun d ->
            (not d.Memopt.d_info.Memopt.ai_read_only)
            && not d.Memopt.d_info.Memopt.ai_alloc_in_parfor)
      with
      | Some d ->
          Alcotest.(check string) "output global" "global"
            (Ir.mem_space_name d.Memopt.d_placement.Ir.space)
      | None -> Alcotest.fail "expected the output array")
    Memopt.fig8_configs

let test_vectorization () =
  let k = nbody_kernel () in
  let ds = Memopt.optimize Memopt.config_constant_vector k in
  Alcotest.(check int) "float4 rows vectorize" 4
    (Memopt.placement_for ds "ps").Ir.vector_width;
  let ds = Memopt.optimize Memopt.config_constant k in
  Alcotest.(check int) "no vectorize without flag" 1
    (Memopt.placement_for ds "ps").Ir.vector_width

let test_no_vector_on_dynamic_rows () =
  let k =
    kernel_of
      {|class K {
  static local float one(float[[][]] ps, int i) {
    float s = 0.0f;
    for (int j = 0; j < ps.length; j++) { s += ps[j][i]; }
    return s;
  }
  static local float[[]] work(float[[][]] ps) {
    return K.one(ps) @ Lime.range(ps.length);
  }
}|}
      ~worker:"K.work"
  in
  let ds = Memopt.optimize Memopt.config_all k in
  Alcotest.(check int) "dynamic rows never vectorize" 1
    (Memopt.placement_for ds "ps").Ir.vector_width

let test_constant_size_budget () =
  (* statically known arrays above 64KB cannot go constant *)
  let k =
    kernel_of
      {|class K {
  static final int N = 32768;
  static local float one(float[[]] big, int i) {
    float s = 0.0f;
    for (int j = 0; j < N; j++) { s += big[j]; }
    return s;
  }
  static local float[[]] work(float[[]] big) {
    return K.one(big) @ Lime.range(N);
  }
}|}
      ~worker:"K.work"
  in
  (* big is dynamic (unbounded) so the budget check is deferred; use the
     analysis info instead to check stream classification *)
  let infos = Memopt.analyze k in
  let big = List.find (fun i -> i.Memopt.ai_name = "big") infos in
  Alcotest.(check bool) "stream access seen" true
    (List.mem Memopt.AStream big.Memopt.ai_classes)

let test_constant_budget_cumulative () =
  (* two broadcast arrays that fit the 64KB constant space individually
     but not together: the first (declaration order) wins the budget, the
     second must fall back instead of overcommitting *)
  let k =
    kernel_of
      {|class K {
  static final int N = 12000;
  static local float one(float[[12000]] a, float[[12000]] b, int i) {
    float s = 0.0f;
    for (int j = 0; j < N; j++) { s += a[j] + b[j]; }
    return s;
  }
  static local float[[]] work(float[[12000]] a, float[[12000]] b) {
    return K.one(a, b) @ Lime.range(64);
  }
}|}
      ~worker:"K.work"
  in
  let ds = Memopt.optimize Memopt.config_constant k in
  Alcotest.(check string) "first broadcast array goes constant" "constant"
    (Ir.mem_space_name (space_of ds "a"));
  Alcotest.(check bool) "second array is pushed out of constant" true
    (Ir.mem_space_name (space_of ds "b") <> "constant");
  (* with local also enabled the loser lands in local, not global *)
  let ds =
    Memopt.optimize { Memopt.config_constant with Memopt.use_local = true } k
  in
  Alcotest.(check string) "loser falls back to the next tier" "local"
    (Ir.mem_space_name (space_of ds "b"))

let test_fig8_configs_distinct () =
  Alcotest.(check int) "eight configurations" 8
    (List.length Memopt.fig8_configs);
  let names = List.map fst Memopt.fig8_configs in
  Alcotest.(check int) "distinct names" 8
    (List.length (List.sort_uniq compare names))

let () =
  Alcotest.run "memopt"
    [
      ( "patterns",
        [
          Alcotest.test_case "global default" `Quick test_global_default;
          Alcotest.test_case "local (Fig 5c-d)" `Quick test_local_pattern;
          Alcotest.test_case "constant (Fig 5g-h)" `Quick test_constant_pattern;
          Alcotest.test_case "image (Fig 5e-f)" `Quick test_image_pattern;
          Alcotest.test_case "image needs texel rows" `Quick
            test_image_needs_small_rows;
          Alcotest.test_case "private (Fig 5a-b)" `Quick test_private_pattern;
          Alcotest.test_case "private threshold" `Quick test_private_threshold;
          Alcotest.test_case "outputs stay global" `Quick
            test_written_arrays_stay_global;
        ] );
      ( "vectorization",
        [
          Alcotest.test_case "float4 rows" `Quick test_vectorization;
          Alcotest.test_case "dynamic rows excluded" `Quick
            test_no_vector_on_dynamic_rows;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "stream classification" `Quick
            test_constant_size_budget;
          Alcotest.test_case "constant budget is cumulative" `Quick
            test_constant_budget_cumulative;
          Alcotest.test_case "fig8 configs" `Quick test_fig8_configs_distinct;
        ] );
    ]
