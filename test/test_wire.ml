(* The daemon's frame codec: every frame round-trips through
   encode/decode and through the incremental reader, and every byte-level
   attack (truncation, hostile length prefix, unknown tag, trailing
   garbage) maps to a total [Error] — never an exception. *)

module Wire = Lime_server.Wire

let u32 = QCheck.Gen.int_range 0 0xFFFF_FFFF
let short_str = QCheck.Gen.(string_size (int_range 0 64))
let long_str = QCheck.Gen.(string_size (int_range 0 2048))

(* propagated trace context: any string travels as the trace id (the
   codec does not validate identity — the tracer does), and the parent
   span is -1 (none, the wire sentinel) or any u32 below the sentinel *)
let gen_trace_ctx =
  QCheck.Gen.(
    map
      (fun (tid, parent) ->
        { Wire.tc_trace_id = tid; tc_parent_span = parent })
      (pair short_str (int_range (-1) 0xFFFF_FFFE)))

let gen_frame =
  QCheck.Gen.(
    oneof
      [
        map (fun v -> Wire.Hello v) (int_range 0 0xFF);
        map (fun v -> Wire.Hello_ack v) (int_range 0 0xFF);
        map
          (fun (id, dl, (name, worker, config, source), (trace, placement)) ->
            Wire.Compile
              {
                cr_id = id;
                cr_deadline_ms = dl;
                cr_name = name;
                cr_worker = worker;
                cr_config = config;
                cr_source = source;
                cr_trace = trace;
                cr_placement = placement;
              })
          (quad u32
             (opt (int_range 0 0xFFFF_FFFE))
             (quad short_str short_str short_str long_str)
             (pair (opt gen_trace_ctx)
                (* a placement SPEC is never empty (the parser rejects
                   ""), and an empty one would not round-trip: the
                   encoder treats it as absent *)
                (opt (map (fun s -> "t=" ^ s) short_str))));
        map
          (fun (id, par, (origin, digest, kernel), (opencl, placements, spans)) ->
            Wire.Result
              {
                ar_id = id;
                ar_origin = origin;
                ar_digest = digest;
                ar_kernel = kernel;
                ar_parallel = par;
                ar_opencl = opencl;
                ar_placements = placements;
                ar_spans = spans;
              })
          (quad u32 bool
             (triple short_str short_str short_str)
             (triple long_str long_str long_str));
        map
          (fun (id, code, retry, msg) ->
            Wire.Err
              {
                er_id = id;
                er_code = code;
                er_retry_after_ms = retry;
                er_msg = msg;
              })
          (quad u32
             (oneofl
                [
                  Wire.Overloaded; Wire.Deadline_exceeded; Wire.Compile_error;
                  Wire.Protocol_error; Wire.Draining;
                ])
             (int_range 0 0xFFFF_FFFF) long_str);
        map (fun id -> Wire.Stats id) u32;
        map (fun (id, text) -> Wire.Stats_reply (id, text)) (pair u32 long_str);
        map (fun id -> Wire.Drain id) u32;
        map
          (fun (id, c, d) ->
            Wire.Drain_ack { da_id = id; da_completed = c; da_dropped = d })
          (triple u32 u32 u32);
      ])

let arb_frame = QCheck.make gen_frame

let payload frame =
  let s = Wire.encode frame in
  String.sub s 4 (String.length s - 4)

let roundtrip =
  QCheck.Test.make ~count:500 ~name:"encode/decode round-trips" arb_frame
    (fun frame -> Wire.decode (payload frame) = Ok frame)

let reader_roundtrip =
  QCheck.Test.make ~count:200 ~name:"reader yields the fed frame" arb_frame
    (fun frame ->
      let r = Wire.reader () in
      Wire.feed_string r (Wire.encode frame);
      Wire.next r = Ok (Some frame) && Wire.next r = Ok None)

(* the reader must assemble frames regardless of how the bytes are
   chopped up by the transport — feed one byte at a time *)
let reader_byte_at_a_time =
  QCheck.Test.make ~count:100 ~name:"reader survives 1-byte reads" arb_frame
    (fun frame ->
      let s = Wire.encode frame in
      let r = Wire.reader () in
      let ok = ref true in
      String.iteri
        (fun i c ->
          Wire.feed_string r (String.make 1 c);
          match Wire.next r with
          | Ok None -> if i = String.length s - 1 then ok := false
          | Ok (Some f) -> if i <> String.length s - 1 || f <> frame then ok := false
          | Error _ -> ok := false)
        s;
      !ok)

(* any truncation of a valid payload is Malformed, never an exception *)
let truncation_total =
  QCheck.Test.make ~count:200 ~name:"truncated payloads are rejected"
    arb_frame (fun frame ->
      let p = payload frame in
      String.length p = 0
      ||
      let cut = String.length p / 2 in
      match Wire.decode (String.sub p 0 cut) with
      | Error _ -> true
      | Ok _ -> false)

let put_u32 b v =
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char b (Char.chr (v land 0xFF))

let test_oversized_length () =
  (* a hostile length prefix is refused before any allocation; the huge
     payload is never waited for *)
  let b = Buffer.create 8 in
  put_u32 b (Wire.max_frame + 1);
  Buffer.add_string b "x";
  let r = Wire.reader () in
  Wire.feed_string r (Buffer.contents b);
  (match Wire.next r with
  | Error (Wire.Oversized n) ->
      Alcotest.(check int) "declared length reported" (Wire.max_frame + 1) n
  | Error e -> Alcotest.failf "wrong error: %s" (Wire.error_to_string e)
  | Ok _ -> Alcotest.fail "oversized frame accepted");
  (* 4 GiB-1, the largest declarable length, same story *)
  let b = Buffer.create 4 in
  put_u32 b 0xFFFF_FFFF;
  let r = Wire.reader () in
  Wire.feed_string r (Buffer.contents b);
  match Wire.next r with
  | Error (Wire.Oversized _) -> ()
  | _ -> Alcotest.fail "4GiB declared length accepted"

let test_unknown_tag () =
  let payload = "\xEE" ^ "rest" in
  (match Wire.decode payload with
  | Error (Wire.Unknown_tag 0xEE) -> ()
  | _ -> Alcotest.fail "unknown tag not reported");
  (* and through the reader *)
  let b = Buffer.create 16 in
  put_u32 b (String.length payload);
  Buffer.add_string b payload;
  let r = Wire.reader () in
  Wire.feed_string r (Buffer.contents b);
  match Wire.next r with
  | Error (Wire.Unknown_tag 0xEE) -> ()
  | _ -> Alcotest.fail "unknown tag not reported incrementally"

let test_trailing_bytes () =
  let p = payload (Wire.Hello Wire.version) ^ "\x00" in
  match Wire.decode p with
  | Error (Wire.Malformed _) -> ()
  | _ -> Alcotest.fail "trailing bytes accepted"

let test_empty_payload () =
  match Wire.decode "" with
  | Error (Wire.Malformed _) -> ()
  | _ -> Alcotest.fail "empty payload accepted"

let test_bad_error_code () =
  (* an Err frame with an out-of-range code byte *)
  let p = payload (Wire.Err { er_id = 7; er_code = Wire.Overloaded;
                              er_retry_after_ms = 0; er_msg = "" }) in
  let b = Bytes.of_string p in
  Bytes.set b 5 '\xFF' (* code byte follows tag + u32 id *);
  match Wire.decode (Bytes.to_string b) with
  | Error (Wire.Malformed _) -> ()
  | _ -> Alcotest.fail "bad error code accepted"

let test_pipelined_frames () =
  (* several frames in one feed come out in order *)
  let frames =
    [ Wire.Hello 1; Wire.Stats 2; Wire.Drain 3; Wire.Hello_ack 1 ]
  in
  let r = Wire.reader () in
  Wire.feed_string r (String.concat "" (List.map Wire.encode frames));
  List.iter
    (fun f ->
      match Wire.next r with
      | Ok (Some g) when g = f -> ()
      | _ -> Alcotest.fail "pipelined frame lost or reordered")
    frames;
  Alcotest.(check bool) "drained" true (Wire.next r = Ok None);
  Alcotest.(check int) "no residue" 0 (Wire.buffered r)

(* version-bump discipline: the traced Compile / span-carrying Result use
   the new tags (10/11) only when the new fields are present, so v2
   traffic without them is byte-identical to what a v1 endpoint emits *)
let sample_compile ?placement trace =
  Wire.Compile
    {
      cr_id = 7;
      cr_deadline_ms = Some 250;
      cr_name = "n";
      cr_worker = "W.m";
      cr_config = "all";
      cr_source = "src";
      cr_trace = trace;
      cr_placement = placement;
    }

let sample_result spans =
  Wire.Result
    {
      ar_id = 7;
      ar_origin = "memory";
      ar_digest = "d";
      ar_kernel = "k";
      ar_parallel = true;
      ar_opencl = "cl";
      ar_placements = "p";
      ar_spans = spans;
    }

let sample_ctx =
  { Wire.tc_trace_id = String.make 32 'a'; tc_parent_span = 42 }

let test_version_tags () =
  Alcotest.(check int) "protocol version" 3 Wire.version;
  Alcotest.(check char) "plain Compile keeps the v1 tag" '\x03'
    (payload (sample_compile None)).[0];
  Alcotest.(check char) "traced Compile uses the v2 tag" '\x0A'
    (payload (sample_compile (Some sample_ctx))).[0];
  Alcotest.(check char) "placed Compile uses the v3 tag" '\x0C'
    (payload (sample_compile ~placement:"W.m=gtx580" None)).[0];
  Alcotest.(check char) "span-free Result keeps the v1 tag" '\x04'
    (payload (sample_result "")).[0];
  Alcotest.(check char) "span-carrying Result uses the v2 tag" '\x0B'
    (payload (sample_result "spans")).[0];
  (* the v1 prefix of the traced frame is exactly the untraced frame: the
     new fields are strictly appended *)
  let plain = payload (sample_compile None) in
  let traced = payload (sample_compile (Some sample_ctx)) in
  Alcotest.(check string) "trace ctx is appended, not interleaved"
    (String.sub plain 1 (String.length plain - 1))
    (String.sub traced 1 (String.length plain - 1))

let test_no_parent_sentinel () =
  (* parent -1 crosses the wire as the u32 sentinel and comes back -1 *)
  let f =
    sample_compile (Some { Wire.tc_trace_id = "t"; tc_parent_span = -1 })
  in
  Alcotest.(check bool) "rootless trace ctx round-trips" true
    (Wire.decode (payload f) = Ok f)

(* adversarial truncation inside the NEW fields specifically: every
   proper prefix of a tag-10/tag-11 payload must be a total Error *)
let test_new_field_truncation () =
  let check_prefixes what p =
    for cut = 1 to String.length p - 1 do
      match Wire.decode (String.sub p 0 cut) with
      | Error _ -> ()
      | Ok _ ->
          Alcotest.failf "%s truncated at %d/%d bytes accepted" what cut
            (String.length p)
    done
  in
  check_prefixes "traced Compile" (payload (sample_compile (Some sample_ctx)));
  check_prefixes "placed Compile"
    (payload (sample_compile ~placement:"W.m=gtx580" (Some sample_ctx)));
  check_prefixes "span-carrying Result" (payload (sample_result "0123456789"))

(* the v3 placement field round-trips in all four trace/placement
   combinations, and the empty placement downgrades to the old tags *)
let test_placement_field () =
  let check what f =
    Alcotest.(check bool) what true (Wire.decode (payload f) = Ok f)
  in
  check "placement alone" (sample_compile ~placement:"A.f=hd5970" None);
  check "placement plus trace"
    (sample_compile ~placement:"A.f=hd5970,B.g=host" (Some sample_ctx));
  (* a trace ctx with an empty id must survive tag 12's presence flag *)
  check "placement plus empty-id trace"
    (sample_compile ~placement:"A.f=corei7"
       (Some { Wire.tc_trace_id = ""; tc_parent_span = -1 }));
  Alcotest.(check char) "empty placement downgrades to the v1 tag" '\x03'
    (payload (sample_compile ~placement:"" None)).[0];
  Alcotest.(check char) "empty placement downgrades to the v2 tag" '\x0A'
    (payload (sample_compile ~placement:"" (Some sample_ctx))).[0]

(* A peer may legally emit the v2 Result tag with a zero-length span
   buffer (our encoder always downgrades to tag 4, but the decoder must
   not assume that): handcraft such a frame by swapping the span field
   of a tag-11 payload for a u32 zero length, and check it decodes to
   the same artifact as the canonical tag-4 form. *)
let test_zero_length_span_buffer () =
  let p1 = payload (sample_result "x") in
  (* trailing field of tag 11 is the span string: u32 length + bytes *)
  let stem = String.sub p1 0 (String.length p1 - 5) in
  let p0 = stem ^ String.make 4 '\x00' in
  Alcotest.(check char) "handcrafted frame keeps tag 11" '\x0B' p0.[0];
  (match Wire.decode p0 with
  | Ok (Wire.Result a) ->
      Alcotest.(check string) "span buffer decodes empty" "" a.Wire.ar_spans;
      Alcotest.(check bool) "artifact otherwise intact" true
        (Wire.Result a = sample_result "")
  | Ok _ -> Alcotest.fail "decoded to a non-Result frame"
  | Error e ->
      Alcotest.failf "zero-length span buffer rejected: %s"
        (Wire.error_to_string e));
  (* and the canonical encoding of that artifact is the v1 tag *)
  Alcotest.(check char) "re-encode downgrades to tag 4" '\x04'
    (payload (sample_result "")).[0]

let qsuite =
  List.map Testutil.to_alcotest
    [ roundtrip; reader_roundtrip; reader_byte_at_a_time; truncation_total ]

let () =
  Alcotest.run "wire"
    [
      ("roundtrip", qsuite);
      ( "adversarial",
        [
          Alcotest.test_case "oversized declared length" `Quick
            test_oversized_length;
          Alcotest.test_case "unknown tag" `Quick test_unknown_tag;
          Alcotest.test_case "trailing bytes" `Quick test_trailing_bytes;
          Alcotest.test_case "empty payload" `Quick test_empty_payload;
          Alcotest.test_case "bad error code" `Quick test_bad_error_code;
          Alcotest.test_case "pipelined frames" `Quick test_pipelined_frames;
        ] );
      ( "trace context",
        [
          Alcotest.test_case "version and tag selection" `Quick
            test_version_tags;
          Alcotest.test_case "no-parent sentinel" `Quick
            test_no_parent_sentinel;
          Alcotest.test_case "truncation in the new fields" `Quick
            test_new_field_truncation;
          Alcotest.test_case "zero-length span buffer in tag 11" `Quick
            test_zero_length_span_buffer;
          Alcotest.test_case "placement provenance in tag 12" `Quick
            test_placement_field;
        ] );
    ]
