(* CI gate for the lime.fuzz generator + differential oracle: a bounded
   fixed-seed budget so every `dune runtest` exercises the generator,
   plus determinism, harness-has-teeth, and counterexample-loadability
   checks.  The long-budget run is the opt-in `dune build @fuzz`. *)

module Gen = Lime_fuzz.Gen
module Oracle = Lime_fuzz.Oracle
module Pipeline = Lime_gpu.Pipeline

let gate_seed = 42
let gate_budget = 25

(* The fixed-seed corpus must clear every oracle layer.  Budget and seed
   are pinned: a failure here is a regression in the compiler stack (or
   the generator), never flakiness. *)
let test_gate () =
  List.iteri
    (fun i p ->
      match Oracle.check ~schedules:1 ~sched_seed:gate_seed p with
      | Ok () -> ()
      | Error d ->
          Alcotest.failf "fixed-seed corpus program %d disagrees: %s\n%s" i
            (Oracle.disagreement_to_string d)
            (Gen.to_source p))
    (Gen.corpus ~seed:gate_seed gate_budget)

let test_corpus_deterministic () =
  let sources seed = List.map Gen.to_source (Gen.corpus ~seed 10) in
  Alcotest.(check (list string))
    "same seed, same corpus" (sources 7) (sources 7);
  Alcotest.(check bool)
    "different seeds differ" true
    (sources 7 <> sources 8)

(* The acceptance-criteria teeth check: run the oracle with the
   reference deliberately nudged; QCheck must fail AND hand back a
   shrunk program that still witnesses the nudge while passing the
   healthy oracle. *)
let test_teeth () =
  let nudged p =
    Oracle.check ~schedules:0 ~perturb_reference:Oracle.nudge p
  in
  let cell =
    QCheck.Test.make_cell ~count:10 ~name:"nudged reference" Gen.arbitrary
      (fun p -> Result.is_ok (nudged p))
  in
  let state =
    QCheck.TestResult.get_state
      (QCheck.Test.check_cell ~rand:(Random.State.make [| 5 |]) cell)
  in
  match state with
  | QCheck.TestResult.Failed { instances = inst :: _ } -> (
      let p = inst.QCheck.TestResult.instance in
      (match Oracle.check ~schedules:0 p with
      | Ok () -> ()
      | Error d ->
          Alcotest.failf "shrunk witness fails the healthy oracle too: %s"
            (Oracle.disagreement_to_string d));
      match nudged p with
      | Error { Oracle.d_layer = "engine"; _ } -> ()
      | Error d ->
          Alcotest.failf "nudge surfaced at layer %s, expected engine"
            d.Oracle.d_layer
      | Ok () -> Alcotest.fail "shrunk program no longer witnesses the nudge")
  | QCheck.TestResult.Success ->
      Alcotest.fail
        "oracle accepted a nudged reference: the harness has no teeth"
  | _ -> Alcotest.fail "teeth run ended without a counterexample"

(* A saved counterexample is a loadable compilation unit: every worker
   of the program recompiles from the file contents alone. *)
let test_counterexample_loadable () =
  let p = List.hd (Gen.corpus ~seed:3 1) in
  let path = Filename.temp_file "limefuzz-ce" ".lime" in
  Oracle.save
    ~disagreement:{ Oracle.d_layer = "engine"; d_detail = "synthetic" }
    ~seed:3 ~path p;
  let source = In_channel.with_open_text path In_channel.input_all in
  Sys.remove path;
  let contains sub text = Lime_support.Util.contains_substring ~sub text in
  Alcotest.(check bool) "header names the layer" true (contains "engine" source);
  Alcotest.(check bool) "header names the seed" true (contains "--seed 3" source);
  List.iter
    (fun w ->
      match
        Lime_support.Diag.protect (fun () -> Pipeline.compile ~worker:w source)
      with
      | Ok _ -> ()
      | Error d ->
          Alcotest.failf "counterexample file not loadable for %s: %s" w
            (Lime_support.Diag.to_string d))
    (Gen.workers p)

(* Every program the generator can emit is frontend-clean, for every
   worker it names — the generator's own well-typedness contract,
   shrunk on failure like any property. *)
let prop_workers_compile =
  QCheck.Test.make ~count:15 ~name:"generated programs always compile"
    Gen.arbitrary (fun p ->
      let source = Gen.to_source p in
      List.for_all
        (fun w ->
          match
            Lime_support.Diag.protect (fun () ->
                Pipeline.compile ~worker:w source)
          with
          | Ok _ -> true
          | Error d ->
              QCheck.Test.fail_reportf "%s rejected: %s\n%s" w
                (Lime_support.Diag.to_string d)
                source)
        (Gen.workers p))

let () =
  Alcotest.run "fuzz"
    [
      ( "oracle",
        [
          Alcotest.test_case "fixed-seed gate" `Quick test_gate;
          Alcotest.test_case "corpus deterministic" `Quick
            test_corpus_deterministic;
          Alcotest.test_case "harness has teeth" `Quick test_teeth;
          Alcotest.test_case "counterexample loadable" `Quick
            test_counterexample_loadable;
        ] );
      Testutil.qsuite "generator" [ prop_workers_compile ];
    ]
