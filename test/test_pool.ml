(* The parallel compile service: the domain pool itself, a multi-domain
   stress of one shared Service.t, a differential check that parallel
   batch compilation is byte-identical to sequential, and QCheck
   properties of the sharded Kcache. *)

module Pool = Lime_service.Pool
module Kcache = Lime_service.Kcache
module Metrics = Lime_service.Metrics
module Service = Lime_service.Service
module Trace = Lime_service.Trace
module Pipeline = Lime_gpu.Pipeline
module Memopt = Lime_gpu.Memopt

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_sequential_inline () =
  (* jobs=1 spawns no domains: every job runs in the caller, in
     submission order — the sequential service path *)
  let p = Pool.create ~jobs:1 () in
  Alcotest.(check int) "jobs clamped" 1 (Pool.jobs p);
  let order = ref [] in
  let futs =
    List.init 5 (fun i ->
        Pool.submit p (fun () ->
            order := i :: !order;
            i * i))
  in
  let results = List.map Pool.await futs in
  Alcotest.(check (list int)) "results in order" [ 0; 1; 4; 9; 16 ] results;
  Alcotest.(check (list int)) "jobs ran FIFO" [ 0; 1; 2; 3; 4 ]
    (List.rev !order);
  Pool.shutdown p

let test_pool_map_order () =
  Pool.with_pool ~jobs:4 (fun p ->
      let xs = List.init 100 Fun.id in
      Alcotest.(check (list int)) "map preserves order"
        (List.map (fun x -> x * 2) xs)
        (Pool.map p (fun x -> x * 2) xs))

let test_pool_exception_propagates () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun p ->
          let fut = Pool.submit p (fun () -> failwith "boom") in
          Alcotest.check_raises
            (Printf.sprintf "await re-raises (jobs %d)" jobs)
            (Failure "boom")
            (fun () -> ignore (Pool.await fut));
          (* one failing job must not poison the pool *)
          Alcotest.(check int) "pool still serves" 7
            (Pool.await (Pool.submit p (fun () -> 7)));
          Alcotest.check_raises "map re-raises first failure"
            (Failure "bad-2")
            (fun () ->
              ignore
                (Pool.map p
                   (fun x -> if x mod 2 = 0 then failwith ("bad-" ^ string_of_int x) else x)
                   [ 1; 2; 3; 4 ]))))
    [ 1; 4 ]

let test_pool_shutdown () =
  let p = Pool.create ~jobs:2 () in
  let futs = List.init 20 (fun i -> Pool.submit p (fun () -> i)) in
  Pool.shutdown p;
  (* queued futures settle during shutdown and stay readable after *)
  Alcotest.(check (list int)) "drained on shutdown" (List.init 20 Fun.id)
    (List.map Pool.await futs);
  Pool.shutdown p (* idempotent *);
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      ignore (Pool.submit p (fun () -> ())))

(* ------------------------------------------------------------------ *)
(* Multi-domain stress of one shared service                           *)
(* ------------------------------------------------------------------ *)

(* Eight distinct one-kernel programs whose generated OpenCL embeds the
   per-variant scale constant — so an artifact can be matched back to the
   request that must have produced it. *)
let variant_source i =
  Printf.sprintf
    {|
class Scale%d {
  static local float app(float x) { return x * %d.0f; }
  static local float[[]] apply(float[[]] xs) { return Scale%d.app @ xs; }
}
|}
    i (i + 2) i

let variants = Array.init 8 (fun i -> (variant_source i, Printf.sprintf "Scale%d.app" i))

let expected_opencl =
  lazy
    (Array.map
       (fun (src, worker) -> (Pipeline.compile ~worker src).Pipeline.cp_opencl)
       variants)

let test_stress_shared_service () =
  let expected = Lazy.force expected_opencl in
  let registry = Metrics.create () in
  Service.instrument ~registry ();
  Fun.protect ~finally:Service.uninstrument (fun () ->
      let svc = Service.create ~capacity:4 ~jobs:4 ~registry () in
      let domains = 4 and rounds = 5 in
      let errors = Atomic.make 0 in
      let hammer d () =
        for r = 0 to rounds - 1 do
          (* stagger the order per domain and round so domains chase each
             other across the stripes *)
          for i = 0 to Array.length variants - 1 do
            let j = (i + d + r) mod Array.length variants in
            let src, worker = variants.(j) in
            let c = Service.compile svc ~worker src in
            if c.Pipeline.cp_opencl <> expected.(j) then Atomic.incr errors
          done
        done
      in
      let spawned = List.init domains (fun d -> Domain.spawn (hammer d)) in
      List.iter Domain.join spawned;
      Service.shutdown svc;
      let total = domains * rounds * Array.length variants in
      let s = Service.stats svc in
      Alcotest.(check int) "every artifact matched its request" 0
        (Atomic.get errors);
      Alcotest.(check int) "hits + misses = requests" total
        (s.Kcache.hits + s.Kcache.misses);
      Alcotest.(check bool) "cache bounded by capacity" true
        (Kcache.length (Service.cache svc) <= Kcache.capacity (Service.cache svc));
      (* with compute-outside-lock every miss runs one compile, so the
         instrumented compile counter equals the miss count exactly *)
      Alcotest.(check int) "compile counter = misses" s.Kcache.misses
        (Metrics.counter_value (Metrics.counter registry "lime_compile_total")))

let test_stress_compile_many () =
  (* same shared-service hammering through the batch entry point *)
  let expected = Lazy.force expected_opencl in
  let svc = Service.create ~capacity:4 ~jobs:4 () in
  let reqs =
    List.concat_map
      (fun round ->
        List.init
          (Array.length variants)
          (fun i ->
            let j = (i + round) mod Array.length variants in
            let src, worker = variants.(j) in
            (j, Service.request ~worker src)))
      [ 0; 1; 2; 3 ]
  in
  let results = Service.compile_many svc (List.map snd reqs) in
  Service.shutdown svc;
  Alcotest.(check int) "all requests answered" (List.length reqs)
    (List.length results);
  List.iter2
    (fun (j, _) r ->
      match r with
      | Ok c ->
          Alcotest.(check bool) "artifact matches request" true
            (c.Pipeline.cp_opencl = expected.(j))
      | Error d -> Alcotest.failf "request failed: %s" (Lime_support.Diag.to_string d))
    reqs results

let test_batch_error_isolation () =
  let svc = Service.create ~jobs:4 () in
  let src, worker = variants.(0) in
  let reqs =
    [
      Service.request ~worker src;
      Service.request ~worker:"No.Such" src;
      Service.request ~worker "class Broken {";
      Service.request ~worker src;
    ]
  in
  (match Service.compile_many svc reqs with
  | [ Ok _; Error _; Error _; Ok _ ] -> ()
  | results ->
      Alcotest.failf "unexpected batch shape: %s"
        (String.concat ","
           (List.map (function Ok _ -> "ok" | Error _ -> "err") results)));
  Service.shutdown svc

(* ------------------------------------------------------------------ *)
(* Differential: parallel batch ≡ sequential, whole suite              *)
(* ------------------------------------------------------------------ *)

let test_differential_parallel_vs_sequential () =
  let suite = Lime_benchmarks.Registry.all in
  let request_of (b : Lime_benchmarks.Bench_def.t) =
    Service.request ~config:b.Lime_benchmarks.Bench_def.best_config
      ~name:b.Lime_benchmarks.Bench_def.name
      ~worker:b.Lime_benchmarks.Bench_def.worker
      b.Lime_benchmarks.Bench_def.source_small
  in
  let compile_suite jobs =
    let svc = Service.create ~jobs () in
    let results = Service.compile_many svc (List.map request_of suite) in
    Service.shutdown svc;
    List.map
      (function
        | Ok c -> c
        | Error d -> Alcotest.failf "compile failed: %s" (Lime_support.Diag.to_string d))
      results
  in
  let seq = compile_suite 1 and par = compile_suite 4 in
  List.iter2
    (fun (b : Lime_benchmarks.Bench_def.t) (s, p) ->
      let name = b.Lime_benchmarks.Bench_def.name in
      Alcotest.(check string)
        (name ^ ": OpenCL byte-identical")
        s.Pipeline.cp_opencl p.Pipeline.cp_opencl;
      Alcotest.(check string)
        (name ^ ": memopt decisions identical")
        (Memopt.describe s.Pipeline.cp_decisions)
        (Memopt.describe p.Pipeline.cp_decisions))
    suite (List.combine seq par)

(* ------------------------------------------------------------------ *)
(* Thread-safe Metrics and Trace                                       *)
(* ------------------------------------------------------------------ *)

let test_metrics_parallel_increments () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "par_total" in
  let h = Metrics.histogram reg "par_seconds" in
  let per_domain = 10_000 and domains = 4 in
  let worker () =
    for _ = 1 to per_domain do
      Metrics.inc c;
      Metrics.observe h 1e-4
    done
  in
  let spawned = List.init domains (fun _ -> Domain.spawn worker) in
  List.iter Domain.join spawned;
  Alcotest.(check int) "no lost counter increments" (per_domain * domains)
    (Metrics.counter_value c);
  Alcotest.(check int) "no lost observations" (per_domain * domains)
    (Metrics.histogram_count h)

let test_trace_per_domain_buffers () =
  let tr = Trace.create () in
  let domains = 4 and per_domain = 50 in
  let worker d () =
    for i = 1 to per_domain do
      Trace.with_span tr ~cat:"stress"
        (Printf.sprintf "d%d.%d" d i)
        (fun () -> ())
    done
  in
  let spawned = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join spawned;
  let spans = Trace.spans tr in
  Alcotest.(check int) "every span recorded" (domains * per_domain)
    (List.length spans);
  Alcotest.(check int) "all spans balanced" 0 (Trace.open_depth tr);
  (* the merged timeline is ordered by the global span-id allocation *)
  let ids = List.map (fun s -> s.Trace.sp_id) spans in
  Alcotest.(check bool) "merged ids strictly increasing" true
    (List.for_all2 ( < ) (List.filteri (fun i _ -> i < List.length ids - 1) ids)
       (List.tl ids));
  (* export still renders a well-formed object after a parallel run *)
  let json = Trace.to_chrome_json tr in
  Alcotest.(check bool) "chrome export well-formed" true
    (String.length json > 2 && json.[0] = '{')

(* ------------------------------------------------------------------ *)
(* QCheck: sharded Kcache invariants                                   *)
(* ------------------------------------------------------------------ *)

let key_gen = QCheck.Gen.map (Printf.sprintf "k%d") (QCheck.Gen.int_bound 30)

let scenario =
  QCheck.make
    ~print:(fun (cap, stripes, ops) ->
      Printf.sprintf "capacity=%d stripes=%d ops=[%s]" cap stripes
        (String.concat ";" ops))
    QCheck.Gen.(
      triple (int_range 1 8) (int_range 1 8) (list_size (int_bound 200) key_gen))

let test_kcache_sharded_invariants =
  Testutil.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"sharded kcache invariants" scenario
       (fun (cap, stripes, ops) ->
         let c = Kcache.create ~capacity:cap ~stripes () in
         List.iter (fun k -> ignore (Kcache.find_or_add c k (fun () -> k))) ops;
         let s = Kcache.stats c in
         let len = Kcache.length c in
         (* global capacity bound survives sharding *)
         len <= cap
         (* every op is exactly one hit or one miss *)
         && s.Kcache.hits + s.Kcache.misses = List.length ops
         (* sequentially, every miss inserts once: what isn't resident
            was evicted *)
         && s.Kcache.evictions = s.Kcache.misses - len
         (* recency order covers exactly the resident keys *)
         && List.length (Kcache.keys_by_recency c) = len))

let test_kcache_stripes_respect_capacity =
  Testutil.to_alcotest
    (QCheck.Test.make ~count:100 ~name:"stripe clamping"
       QCheck.(pair (int_range 1 16) (int_range 1 64))
       (fun (cap, stripes) ->
         let c = Kcache.create ~capacity:cap ~stripes () in
         (* never more stripes than capacity: no stripe may have cap 0 *)
         Kcache.stripes c >= 1 && Kcache.stripes c <= cap))

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "jobs=1 runs inline in order" `Quick
            test_pool_sequential_inline;
          Alcotest.test_case "map preserves order" `Quick test_pool_map_order;
          Alcotest.test_case "exceptions propagate" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "shutdown drains and closes" `Quick
            test_pool_shutdown;
        ] );
      ( "stress",
        [
          Alcotest.test_case "domains hammer one service" `Quick
            test_stress_shared_service;
          Alcotest.test_case "compile_many under contention" `Quick
            test_stress_compile_many;
          Alcotest.test_case "batch isolates failures" `Quick
            test_batch_error_isolation;
        ] );
      ( "differential",
        [
          Alcotest.test_case "parallel ≡ sequential, whole suite" `Slow
            test_differential_parallel_vs_sequential;
        ] );
      ( "shared-state",
        [
          Alcotest.test_case "metrics lose no updates" `Quick
            test_metrics_parallel_increments;
          Alcotest.test_case "trace merges domain buffers" `Quick
            test_trace_per_domain_buffers;
        ] );
      ( "kcache-properties",
        [ test_kcache_sharded_invariants; test_kcache_stripes_respect_capacity ]
      );
    ]
