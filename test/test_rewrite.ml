(* The rewrite engine (lib/rewrite): catalog naming, canned Fig 8
   sequences vs the Fig 8 configurations, beam search vs the sweep on the
   registry workloads, schedule replay, and the format-3 tunestore. *)

module Rewrite = Lime_rewrite.Rewrite
module Search = Lime_rewrite.Search
module Memopt = Lime_gpu.Memopt
module Pipeline = Lime_gpu.Pipeline
module Kernel = Lime_gpu.Kernel
module Device = Gpusim.Device
module Engine = Lime_runtime.Engine
module Registry = Lime_benchmarks.Registry
module E = Lime_benchmarks.Experiments
module Tunestore = Lime_service.Tunestore
module Digest = Lime_service.Digest
module Service = Lime_service.Service
module B = Lime_benchmarks.Bench_def
module V = Lime_ir.Value

let temp_dir prefix =
  let f = Filename.temp_file prefix "" in
  Sys.remove f;
  Sys.mkdir f 0o755;
  f

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

(* A small nested-loop kernel every structural rewrite has a shot at. *)
let nest_source =
  {|
class Nest {
  static final int N = 8;
  static local float[[8]] row(float[[8][8]] a, int i) {
    float[] c = new float[8];
    for (int k = 0; k < N; k++) {
      for (int j = 0; j < N; j++) {
        c[j] = c[j] + (float) (i - k) * a[k][j];
      }
    }
    return { c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7] };
  }
  static local float[[][8]] work(float[[8][8]] a) {
    return Nest.row(a) @ Lime.range(N);
  }
}
|}

let nest_kernel () =
  (Pipeline.compile ~worker:"Nest.work" nest_source).Pipeline.cp_kernel

(* a loop-free kernel: no structural rewrite applies *)
let flat_source =
  {|
class Flat {
  static local float twice(float x) { return x * 2.0f; }
  static local float[[]] work(float[[]] xs) { return Flat.twice @ xs; }
}
|}

let flat_kernel () =
  (Pipeline.compile ~worker:"Flat.work" flat_source).Pipeline.cp_kernel

(* ------------------------------------------------------------------ *)
(* Catalog and names                                                   *)
(* ------------------------------------------------------------------ *)

let test_catalog_names_roundtrip () =
  List.iter
    (fun (s : Rewrite.step) ->
      match Rewrite.of_name s.Rewrite.name with
      | Some s' ->
          Alcotest.(check string) "name round-trips" s.Rewrite.name
            s'.Rewrite.name
      | None -> Alcotest.failf "catalog step %s not found by name" s.name)
    Rewrite.catalog;
  Alcotest.(check bool) "parametric tile parses" true
    (match Rewrite.of_name "tile:16" with
    | Some s -> s.Rewrite.name = "tile:16"
    | None -> false);
  Alcotest.(check bool) "unknown name rejected" true
    (Rewrite.of_name "loopify" = None);
  Alcotest.(check bool) "degenerate tile rejected" true
    (Rewrite.of_name "tile:1" = None)

let test_sequence_string_roundtrip () =
  let seq = [ "local"; "pad"; "tile:4"; "interchange"; "vec" ] in
  Alcotest.(check (list string)) "round trip" seq
    (Rewrite.sequence_of_string (Rewrite.sequence_to_string seq));
  Alcotest.(check (list string)) "empty string is the empty schedule" []
    (Rewrite.sequence_of_string "")

(* ------------------------------------------------------------------ *)
(* Fig 8 sequences are the Fig 8 configurations                        *)
(* ------------------------------------------------------------------ *)

let test_fig8_sequences_match_configs () =
  let k = nest_kernel () in
  Alcotest.(check int) "eight sequences" 8 (List.length Rewrite.fig8_sequences);
  List.iter
    (fun (name, seq) ->
      let cfg =
        match List.assoc_opt name Memopt.fig8_configs with
        | Some c -> c
        | None -> Alcotest.failf "no Fig 8 configuration named %s" name
      in
      match Rewrite.apply_sequence (Rewrite.initial k) seq with
      | Error m -> Alcotest.failf "sequence %s rejected: %s" name m
      | Ok st ->
          Alcotest.(check bool)
            (name ^ " reaches its configuration")
            true
            (st.Rewrite.st_config = cfg);
          Alcotest.(check bool)
            (name ^ " leaves the kernel untouched")
            true
            (st.Rewrite.st_kernel = k))
    Rewrite.fig8_sequences

(* ------------------------------------------------------------------ *)
(* Rejection without miscompilation                                    *)
(* ------------------------------------------------------------------ *)

let test_illegal_applications_rejected () =
  let k = flat_kernel () in
  let st = Rewrite.initial k in
  List.iter
    (fun name ->
      match Rewrite.of_name name with
      | None -> Alcotest.failf "missing catalog step %s" name
      | Some step -> (
          match Rewrite.apply_step step st with
          | Error _ -> ()
          | Ok _ ->
              Alcotest.failf "%s applied to a loop-free kernel" name))
    [ "tile:2"; "interchange"; "unroll"; "fission" ];
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  match Rewrite.apply_sequence st [ "local"; "warp-shuffle" ] with
  | Error m ->
      Alcotest.(check bool) "unknown step named in the error" true
        (contains m "warp-shuffle")
  | Ok _ -> Alcotest.fail "unknown rewrite accepted"

(* ------------------------------------------------------------------ *)
(* Beam search: never worse than the Fig 8 sweep, strictly better on
   TMatMul (the ISSUE acceptance bar, on every Table 2 device)         *)
(* ------------------------------------------------------------------ *)

let test_beam_at_least_fig8_everywhere () =
  let devices = E.gpu_devices @ [ Device.core_i7 ] in
  List.iter
    (fun (d : Device.t) ->
      let rows = E.optimize_rows ~quick:true ~seed:1 d in
      Alcotest.(check int)
        ("all workloads searched on " ^ d.Device.name)
        (List.length Registry.workloads)
        (List.length rows);
      List.iter
        (fun (r : E.optimize_row) ->
          if r.E.op_beam_s > r.E.op_fig8_s +. 1e-15 then
            Alcotest.failf "%s on %s: beam %.3e s worse than fig8 %.3e s"
              r.E.op_bench d.Device.name r.E.op_beam_s r.E.op_fig8_s;
          if r.E.op_bench = "TMatMul" && r.E.op_beam_s >= r.E.op_fig8_s then
            Alcotest.failf
              "TMatMul on %s: beam %.3e s not strictly better than fig8 %.3e s"
              d.Device.name r.E.op_beam_s r.E.op_fig8_s)
        rows)
    devices

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

let tmatmul () =
  match Registry.find "TMatMul" with
  | Some b -> b
  | None -> Alcotest.fail "TMatMul missing from the registry"

let test_replay_reproduces_search_best () =
  let b = tmatmul () in
  let k = (Registry.compile_small b).Pipeline.cp_kernel in
  let shapes, scalars = Engine.shapes_of_args k [ b.B.input_small () ] in
  let d = Device.gtx580 in
  let o = Search.search ~width:4 ~depth:3 d k ~shapes ~scalars in
  Alcotest.(check bool) "search beats the canned sequences" true
    (o.Search.so_best.Search.sc_time_s
    <= (snd o.Search.so_fig8_best).Search.sc_time_s);
  match Search.replay d k o.Search.so_best.Search.sc_sequence ~shapes ~scalars with
  | Error m -> Alcotest.failf "winning schedule failed to replay: %s" m
  | Ok c ->
      Alcotest.(check (float 0.0)) "replay reproduces the searched time"
        o.Search.so_best.Search.sc_time_s c.Search.sc_time_s

let test_replay_rejects_stale_schedule () =
  let b = tmatmul () in
  let k = (Registry.compile_small b).Pipeline.cp_kernel in
  let shapes, scalars = Engine.shapes_of_args k [ b.B.input_small () ] in
  match Search.replay Device.gtx580 k [ "warp-shuffle" ] ~shapes ~scalars with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus stored schedule replayed"

(* ------------------------------------------------------------------ *)
(* The fig8 optimizer strategy is byte-identical to the plain sweep    *)
(* ------------------------------------------------------------------ *)

let test_reoptimize_matches_fresh_compile () =
  let c = Pipeline.compile ~worker:"Nest.work" nest_source in
  List.iter
    (fun (name, cfg) ->
      let rebuilt = Pipeline.reoptimize c cfg in
      let fresh = Pipeline.compile ~config:cfg ~worker:"Nest.work" nest_source in
      Alcotest.(check string)
        (name ^ " reoptimize = fresh compile")
        fresh.Pipeline.cp_opencl rebuilt.Pipeline.cp_opencl;
      Alcotest.(check (list string))
        (name ^ " schedule stays empty")
        [] rebuilt.Pipeline.cp_schedule)
    Memopt.fig8_configs

let test_reschedule_records_schedule () =
  let c = Pipeline.compile ~worker:"Nest.work" nest_source in
  let st = Rewrite.initial c.Pipeline.cp_kernel in
  match Rewrite.apply_sequence st [ "local"; "pad" ] with
  | Error m -> Alcotest.failf "local;pad rejected: %s" m
  | Ok st ->
      let r =
        Pipeline.reschedule c ~schedule:[ "local"; "pad" ]
          st.Rewrite.st_kernel st.Rewrite.st_config
      in
      Alcotest.(check (list string)) "schedule recorded" [ "local"; "pad" ]
        r.Pipeline.cp_schedule;
      Alcotest.(check bool) "config swapped in" true
        (r.Pipeline.cp_config = Memopt.config_local_noconflict)

(* ------------------------------------------------------------------ *)
(* Tunestore format 3                                                  *)
(* ------------------------------------------------------------------ *)

let record ?(sequence = None) () =
  {
    Tunestore.tr_config_name = "beam";
    tr_config = Memopt.config_local_noconflict;
    tr_time_s = 1.25e-4;
    tr_headline = None;
    tr_sequence = sequence;
    tr_placement = None;
  }

let test_tunestore_v3_sequence_roundtrip () =
  let dir = temp_dir "lime_ts_v3" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let ts = Tunestore.open_ dir in
      let digest = Digest.of_request ~worker:"W" "src" in
      let seq = [ "local"; "pad"; "tile:4"; "interchange" ] in
      Tunestore.store ts ~digest ~device:"gtx580.beam"
        (record ~sequence:(Some seq) ());
      (match Tunestore.load ts ~digest ~device:"gtx580.beam" with
      | Some r ->
          Alcotest.(check bool) "sequence round-trips" true
            (r.Tunestore.tr_sequence = Some seq)
      | None -> Alcotest.fail "stored record did not load");
      (* the searched-but-baseline-won marker survives as Some [] *)
      Tunestore.store ts ~digest ~device:"hd5970.beam"
        (record ~sequence:(Some []) ());
      (match Tunestore.load ts ~digest ~device:"hd5970.beam" with
      | Some r ->
          Alcotest.(check bool) "empty schedule distinct from no schedule"
            true
            (r.Tunestore.tr_sequence = Some [])
      | None -> Alcotest.fail "baseline record did not load");
      (* a format-2 file (no sequence line) still loads, as None *)
      Out_channel.with_open_text
        (Tunestore.path ts ~digest ~device:"gtx8800")
        (fun oc ->
          Printf.fprintf oc
            "lime-tunestore 2\nname Local\nconfig %s\ntime_s 2.5e-4\n"
            (Digest.canonical_config Memopt.config_local));
      match Tunestore.load ts ~digest ~device:"gtx8800" with
      | Some r ->
          Alcotest.(check bool) "v2 file loads with no sequence" true
            (r.Tunestore.tr_sequence = None)
      | None -> Alcotest.fail "format-2 file did not load")

(* ------------------------------------------------------------------ *)
(* Service: cold search, warm replay                                   *)
(* ------------------------------------------------------------------ *)

let test_beam_schedule_warm_replay () =
  let dir = temp_dir "lime_beam_svc" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let svc = Service.create ~cache_dir:dir () in
      let b = tmatmul () in
      let k = (Registry.compile_small b).Pipeline.cp_kernel in
      let shapes, scalars = Engine.shapes_of_args k [ b.B.input_small () ] in
      let digest = Digest.of_request ~worker:b.B.worker b.B.source_small in
      let d = Device.gtx580 in
      let run () =
        Service.beam_schedule svc d ~device_key:"gtx580" ~digest ~width:4
          ~depth:3 k ~shapes ~scalars
      in
      let best_cold, prov_cold = run () in
      (match prov_cold with
      | `Searched _ -> ()
      | `Replayed -> Alcotest.fail "cold call claimed a stored schedule");
      let best_warm, prov_warm = run () in
      (match prov_warm with
      | `Replayed -> ()
      | `Searched _ -> Alcotest.fail "warm call re-searched");
      Alcotest.(check (float 0.0)) "warm replay reproduces the cold time"
        best_cold.Search.sc_time_s best_warm.Search.sc_time_s;
      Alcotest.(check bool) "same schedule" true
        (best_cold.Search.sc_sequence = best_warm.Search.sc_sequence);
      Service.shutdown svc)

let () =
  Alcotest.run "rewrite"
    [
      ( "catalog",
        [
          Alcotest.test_case "names round-trip" `Quick
            test_catalog_names_roundtrip;
          Alcotest.test_case "sequence strings" `Quick
            test_sequence_string_roundtrip;
          Alcotest.test_case "illegal applications rejected" `Quick
            test_illegal_applications_rejected;
        ] );
      ( "fig8",
        [
          Alcotest.test_case "sequences = configurations" `Quick
            test_fig8_sequences_match_configs;
          Alcotest.test_case "reoptimize = fresh compile" `Quick
            test_reoptimize_matches_fresh_compile;
          Alcotest.test_case "reschedule records the schedule" `Quick
            test_reschedule_records_schedule;
        ] );
      ( "search",
        [
          Alcotest.test_case "beam >= fig8 on every workload/device" `Slow
            test_beam_at_least_fig8_everywhere;
          Alcotest.test_case "replay reproduces the best" `Quick
            test_replay_reproduces_search_best;
          Alcotest.test_case "stale schedule rejected" `Quick
            test_replay_rejects_stale_schedule;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "tunestore v3 round trip" `Quick
            test_tunestore_v3_sequence_roundtrip;
          Alcotest.test_case "service warm replay" `Quick
            test_beam_schedule_warm_replay;
        ] );
    ]
