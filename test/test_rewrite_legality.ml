(* Differential testing of the rewrite catalog (QCheck): generate random
   well-typed loop-nest kernels, run each catalog step (and short random
   schedules) through the legality-checked replay path, and require that
   every accepted rewrite preserves the interpreter's results while every
   rejected one fails loudly instead of miscompiling.

   Structural rewrites must be exact (same f32 operations in the same
   order); interchange reassociates the accumulation, so schedules that
   include it are compared under a small relative tolerance. *)

module Rewrite = Lime_rewrite.Rewrite
module Pipeline = Lime_gpu.Pipeline
module Kernel = Lime_gpu.Kernel
module Interp = Lime_ir.Interp
module Ir = Lime_ir.Ir
module V = Lime_ir.Value

let qsuite = Testutil.qsuite

(* ------------------------------------------------------------------ *)
(* Random kernel descriptions                                          *)
(* ------------------------------------------------------------------ *)

(** Which template: a perfect 2-deep nest over an array accumulator
    (tile/interchange/unroll sites), a flat reduction loop, a pair of
    independent accumulators (fission/fusion sites), or a constant-indexed
    value array (scalarize site). *)
type kind = Nest | Flat | Indep | Scal

type desc = {
  kind : kind;
  jn : int;  (** outer trip count *)
  kn : int;  (** inner trip count (and accumulator width) *)
  threads : int;  (** parallel range *)
  second_loop : bool;  (** trailing scale loop after the main one *)
  coef : int;  (** small exact coefficient *)
}

let desc_gen =
  QCheck.Gen.(
    map
      (fun ((kind, jn, kn), (threads, second_loop, coef)) ->
        { kind; jn; kn; threads; second_loop; coef })
      (pair
         (triple
            (oneofl [ Nest; Flat; Indep; Scal ])
            (int_range 2 6) (int_range 2 6))
         (triple (int_range 2 4) bool (int_range 1 5))))

(* The nested template is a miniature TMatMul: a per-thread value-array
   accumulator updated in a j/k nest, so tile, interchange, unroll,
   fission/fusion, scalarize and the placement steps all have sites. *)
let nested_source d =
  let ret =
    String.concat ", " (List.init d.kn (fun k -> Printf.sprintf "c[%d]" k))
  in
  let tail =
    if d.second_loop then
      Printf.sprintf
        "    for (int t = 0; t < %d; t++) { c[t] = c[t] * 0.5f; }\n" d.kn
    else ""
  in
  Printf.sprintf
    {|class Gen {
  static local float[[%d]] f(float[[%d][%d]] a, int i) {
    float[] c = new float[%d];
    for (int j = 0; j < %d; j++) {
      for (int k = 0; k < %d; k++) {
        c[k] = c[k] + (float) (i + %d) * a[j][k];
      }
    }
%s    return { %s };
  }
  static local float[[][%d]] work(float[[%d][%d]] a) {
    return Gen.f(a) @ Lime.range(%d);
  }
}|}
    d.kn d.jn d.kn d.kn d.jn d.kn d.coef tail ret d.kn d.jn d.kn d.threads

(* The flat template reduces a row into a scalar: a single sequential
   loop (tile/unroll/fission sites) without the array accumulator. *)
let flat_source d =
  let tail =
    if d.second_loop then
      Printf.sprintf "    for (int t = 0; t < %d; t++) { s = s + 0.25f; }\n"
        d.jn
    else ""
  in
  Printf.sprintf
    {|class Gen {
  static local float f(float[[%d]] a, int i) {
    float s = 0.0f;
    for (int j = 0; j < %d; j++) {
      s = s + a[j] * (float) %d + (float) i;
    }
%s    return s;
  }
  static local float[[]] work(float[[%d]] a) {
    return Gen.f(a) @ Lime.range(%d);
  }
}|}
    d.jn d.jn d.coef tail d.jn d.threads

(* Two accumulators with disjoint footprints: the loop body splits
   (fission), and the two trailing same-bound loops merge (fusion). *)
let indep_source d =
  Printf.sprintf
    {|class Gen {
  static local float f(float[[%d]] a, int i) {
    float s = 0.0f;
    float u = 0.0f;
    for (int j = 0; j < %d; j++) {
      s = s + (float) (j + %d) * 0.5f;
      u = u + (float) (j * 2 - i);
    }
    for (int t = 0; t < %d; t++) {
      s = s + a[t];
    }
    for (int t2 = 0; t2 < %d; t2++) {
      u = u + 0.25f;
    }
    return s + u;
  }
  static local float[[]] work(float[[%d]] a) {
    return Gen.f(a) @ Lime.range(%d);
  }
}|}
    d.jn d.jn d.coef d.jn d.jn d.jn d.threads

(* A small value array accessed only at constant indices: the scalarize
   candidate shape. *)
let scal_source d =
  Printf.sprintf
    {|class Gen {
  static local float f(float[[%d]] a, int i) {
    float[] c = new float[2];
    for (int j = 0; j < %d; j++) {
      c[0] = c[0] + a[j] * (float) %d;
      c[1] = c[1] + a[j] * 0.5f + (float) i;
    }
    return c[0] - c[1];
  }
  static local float[[]] work(float[[%d]] a) {
    return Gen.f(a) @ Lime.range(%d);
  }
}|}
    d.jn d.jn d.coef d.jn d.threads

let source_of d =
  match d.kind with
  | Nest -> nested_source d
  | Flat -> flat_source d
  | Indep -> indep_source d
  | Scal -> scal_source d

let print_desc d = "generated program:\n" ^ source_of d
let desc_arb = QCheck.make ~print:print_desc desc_gen

(* deterministic input: exact small multiples of 0.25, so structural
   rewrites that preserve operation order compare bit-for-bit *)
let input_of d : V.t =
  let fill n = Array.init n (fun i -> float_of_int ((i mod 13) - 6) *. 0.25) in
  match d.kind with
  | Nest ->
      let a = V.make_arr Ir.SFloat [| d.jn; d.kn |] in
      Array.iteri
        (fun i x -> V.store a [ i / d.kn; i mod d.kn ] (V.VFloat x))
        (fill (d.jn * d.kn));
      V.VArr a
  | Flat | Indep | Scal -> V.VArr (V.of_float_array (fill d.jn))

let run_kernel (k : Kernel.kernel) (input : V.t) : V.t =
  let st = Interp.create (Kernel.to_module k) in
  Interp.call_function st k.Kernel.k_name None [ input ]

let compile d : Kernel.kernel =
  match
    Lime_support.Diag.protect (fun () ->
        Pipeline.compile ~worker:"Gen.work" (source_of d))
  with
  | Ok c -> c.Pipeline.cp_kernel
  | Error diag ->
      QCheck.Test.fail_reportf "generated program rejected: %s\n---\n%s"
        (Lime_support.Diag.to_string diag)
        (source_of d)

let equal_under ~exact a b =
  if exact then V.approx_equal ~rtol:0.0 ~atol:0.0 a b
  else V.approx_equal ~rtol:2e-4 ~atol:1e-6 a b

(* interchange (and anything sequenced after it) reassociates the
   accumulation; everything else must be bit-exact *)
let order_preserving name = name <> "interchange"

(* ------------------------------------------------------------------ *)
(* Property 1: every catalog step, applied alone, is sound             *)
(* ------------------------------------------------------------------ *)

let prop_catalog_steps_sound =
  QCheck.Test.make ~name:"each accepted catalog step preserves results"
    ~count:25 desc_arb (fun d ->
      let k = compile d in
      let input = input_of d in
      let want = run_kernel k input in
      let st = Rewrite.initial k in
      List.iter
        (fun (step : Rewrite.step) ->
          match Rewrite.apply_step step st with
          | Error _ -> () (* rejected, which is always sound *)
          | Ok st' ->
              let got = run_kernel st'.Rewrite.st_kernel input in
              if not (equal_under ~exact:(order_preserving step.Rewrite.name)
                        want got)
              then
                QCheck.Test.fail_reportf
                  "%s miscompiled the kernel\n---\n%s" step.Rewrite.name
                  (source_of d))
        Rewrite.catalog;
      true)

(* ------------------------------------------------------------------ *)
(* Property 2: short random schedules compose soundly                  *)
(* ------------------------------------------------------------------ *)

let names = List.map (fun (s : Rewrite.step) -> s.Rewrite.name) Rewrite.catalog

let schedule_gen =
  QCheck.Gen.(list_size (int_range 1 4) (oneofl names))

let prop_random_schedules_sound =
  QCheck.Test.make ~name:"accepted random schedules preserve results"
    ~count:60
    (QCheck.make
       ~print:(fun (d, seq) ->
         print_desc d ^ "\nschedule: " ^ Rewrite.sequence_to_string seq)
       QCheck.Gen.(pair desc_gen schedule_gen))
    (fun (d, seq) ->
      let k = compile d in
      let input = input_of d in
      match Rewrite.apply_sequence (Rewrite.initial k) seq with
      | Error _ -> true (* some prefix was rejected: sound *)
      | Ok st ->
          let want = run_kernel k input in
          let got = run_kernel st.Rewrite.st_kernel input in
          let exact = List.for_all order_preserving seq in
          if not (equal_under ~exact want got) then
            QCheck.Test.fail_reportf
              "schedule %s miscompiled the kernel\n---\n%s"
              (Rewrite.sequence_to_string seq)
              (source_of d)
          else true)

(* ------------------------------------------------------------------ *)
(* Property 3: what the beam would do — legality precedes apply, and a
   step whose legality check fails never returns a kernel              *)
(* ------------------------------------------------------------------ *)

let prop_rejections_are_errors =
  QCheck.Test.make ~name:"illegal applications surface as errors" ~count:25
    desc_arb (fun d ->
      let k = compile d in
      let st = Rewrite.initial k in
      List.iter
        (fun (step : Rewrite.step) ->
          match step.Rewrite.legality_check st with
          | Ok () -> ()
          | Error _ -> (
              (* the replay path must agree with the legality check *)
              match Rewrite.apply_step step st with
              | Error _ -> ()
              | Ok _ ->
                  QCheck.Test.fail_reportf
                    "%s applied despite failing its legality check\n---\n%s"
                    step.Rewrite.name (source_of d)))
        Rewrite.catalog;
      true)

let () =
  Alcotest.run "rewrite-legality"
    [
      qsuite "differential"
        [
          prop_catalog_steps_sound;
          prop_random_schedules_sound;
          prop_rejections_are_errors;
        ];
    ]
