(* End-to-end tests of the compile daemon: an in-process server on a real
   Unix-domain socket, driven by real clients.  Every robustness path —
   overload shedding, deadlines, graceful drain, protocol garbage — is
   exercised without a single sleep-as-synchronization: determinism comes
   from the protocol (a deadline of 0 can never be met; a blocked worker
   pins queued work in place; pipelined frames are admitted in order). *)

module Server = Lime_server.Server
module Client = Lime_server.Client
module Wire = Lime_server.Wire
module Service = Lime_service.Service
module Pool = Lime_service.Pool
module Memopt = Lime_gpu.Memopt
module Pipeline = Lime_gpu.Pipeline
module Registry = Lime_benchmarks.Registry
module Bench_def = Lime_benchmarks.Bench_def

(* either side may write to a peer that already closed (the drain tests
   do it on purpose); that must surface as EPIPE, not kill the process *)
let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let doubler_source =
  {|
class Doubler {
  static local float twice(float x) { return x * 2.0f; }
  static local float[[]] apply(float[[]] xs) { return Doubler.twice @ xs; }
}
|}

let fresh_sock =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "limed-test-%d-%d.sock" (Unix.getpid ()) !n)

(* Run [f sock server] against a live in-process daemon; the server
   domain is always drained and joined, and the socket file must be gone
   once [run] has returned. *)
let with_server ?service ?(reshape = fun c -> c) f =
  let sock = fresh_sock () in
  let cfg = reshape (Server.default_config ~socket:sock) in
  let server = Server.create ?service cfg in
  let dom = Domain.spawn (fun () -> Server.run server) in
  Fun.protect
    ~finally:(fun () ->
      Server.drain server;
      Domain.join dom;
      Alcotest.(check bool) "socket removed after drain" false
        (Sys.file_exists sock))
    (fun () -> f sock server)

let connect_exn sock =
  match Client.connect ~timeout_s:60.0 sock with
  | Ok cl -> cl
  | Error msg -> Alcotest.failf "connect: %s" msg

let compile_exn cl ?deadline_ms ~name ~worker source =
  match Client.compile cl ?deadline_ms ~name ~worker source with
  | Ok a -> a
  | Error f -> Alcotest.failf "%s: %s" name (Client.failure_to_string f)

(* ------------------------------------------------------------------ *)
(* Raw socket access, for speaking garbage the Client refuses to send   *)
(* ------------------------------------------------------------------ *)

let raw_connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  fd

let raw_send fd s = ignore (Unix.write_substring fd s 0 (String.length s))

type raw_reply = Frame of Wire.frame | Eof | Timeout

let raw_next =
  let buf = Bytes.create 4096 in
  fun fd reader ->
    let deadline = Unix.gettimeofday () +. 30.0 in
    let rec go () =
      match Wire.next reader with
      | Ok (Some f) -> Frame f
      | Error e -> Alcotest.failf "client-side framing: %s" (Wire.error_to_string e)
      | Ok None ->
          if Unix.gettimeofday () >= deadline then Timeout
          else begin
            match Unix.select [ fd ] [] [] 1.0 with
            | [], _, _ -> go ()
            | _ -> (
                match Unix.read fd buf 0 (Bytes.length buf) with
                | 0 -> Eof
                | n ->
                    Wire.feed reader buf n;
                    go ()
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          end
    in
    go ()

let expect_protocol_error what fd reader =
  (match raw_next fd reader with
  | Frame (Wire.Err e) ->
      Alcotest.(check bool)
        (what ^ " answered protocol_error")
        true
        (e.Wire.er_code = Wire.Protocol_error)
  | Frame _ -> Alcotest.failf "%s: unexpected frame" what
  | Eof -> Alcotest.failf "%s: server closed without an error frame" what
  | Timeout -> Alcotest.failf "%s: no reply" what);
  (* the offending connection is closed... *)
  match raw_next fd reader with
  | Eof -> ()
  | Frame _ -> Alcotest.failf "%s: traffic after the error" what
  | Timeout -> Alcotest.failf "%s: connection left open" what

(* ------------------------------------------------------------------ *)
(* Round-trip fidelity                                                  *)
(* ------------------------------------------------------------------ *)

(* every program in the benchmark registry must come back from the daemon
   byte-identical to a local compilation *)
let test_registry_roundtrip () =
  let local = Service.create () in
  Fun.protect
    ~finally:(fun () -> Service.shutdown local)
    (fun () ->
      with_server (fun sock _server ->
          let cl = connect_exn sock in
          Fun.protect
            ~finally:(fun () -> Client.close cl)
            (fun () ->
              List.iter
                (fun (b : Bench_def.t) ->
                  let a =
                    compile_exn cl ~name:b.Bench_def.name
                      ~worker:b.Bench_def.worker b.Bench_def.source_small
                  in
                  let c, _ =
                    Service.compile_ex local ~config:Memopt.config_all
                      ~name:b.Bench_def.name ~worker:b.Bench_def.worker
                      b.Bench_def.source_small
                  in
                  let kernel = c.Pipeline.cp_kernel in
                  Alcotest.(check string)
                    (b.Bench_def.name ^ " opencl byte-identical")
                    c.Pipeline.cp_opencl a.Wire.ar_opencl;
                  Alcotest.(check string)
                    (b.Bench_def.name ^ " placements identical")
                    (Memopt.describe c.Pipeline.cp_decisions)
                    a.Wire.ar_placements;
                  Alcotest.(check string)
                    (b.Bench_def.name ^ " kernel name")
                    kernel.Lime_gpu.Kernel.k_name a.Wire.ar_kernel;
                  Alcotest.(check bool)
                    (b.Bench_def.name ^ " parallel flag")
                    kernel.Lime_gpu.Kernel.k_parallel a.Wire.ar_parallel;
                  Alcotest.(check string)
                    (b.Bench_def.name ^ " digest")
                    (Lime_service.Digest.to_hex
                       (Service.request_digest ~config:Memopt.config_all
                          ~worker:b.Bench_def.worker b.Bench_def.source_small))
                    a.Wire.ar_digest)
                Registry.all)))

let test_cache_provenance () =
  with_server (fun sock _server ->
      let cl = connect_exn sock in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          let a1 =
            compile_exn cl ~name:"doubler" ~worker:"Doubler.apply"
              doubler_source
          in
          let a2 =
            compile_exn cl ~name:"doubler" ~worker:"Doubler.apply"
              doubler_source
          in
          Alcotest.(check string) "cold request compiled" "compiled"
            a1.Wire.ar_origin;
          Alcotest.(check string) "warm request served from memory" "memory"
            a2.Wire.ar_origin;
          Alcotest.(check string) "same artifact" a1.Wire.ar_opencl
            a2.Wire.ar_opencl;
          Alcotest.(check string) "same digest" a1.Wire.ar_digest
            a2.Wire.ar_digest))

let test_concurrent_clients () =
  (* several clients, one per domain, all compiling at once; everyone
     gets the right artifact back on their own connection *)
  let progs =
    List.filteri (fun i _ -> i < 3) Registry.all
  in
  with_server (fun sock _server ->
      let doms =
        List.map
          (fun (b : Bench_def.t) ->
            Domain.spawn (fun () ->
                let cl = connect_exn sock in
                Fun.protect
                  ~finally:(fun () -> Client.close cl)
                  (fun () ->
                    (* two requests per client: the repeat must hit *)
                    let a =
                      compile_exn cl ~name:b.Bench_def.name
                        ~worker:b.Bench_def.worker b.Bench_def.source_small
                    in
                    let a' =
                      compile_exn cl ~name:b.Bench_def.name
                        ~worker:b.Bench_def.worker b.Bench_def.source_small
                    in
                    (b, a, a'))))
          progs
      in
      List.iter
        (fun d ->
          let (b : Bench_def.t), a, a' = Domain.join d in
          Alcotest.(check bool)
            (b.Bench_def.name ^ " kernel named after the worker")
            true
            (a.Wire.ar_kernel = b.Bench_def.worker);
          Alcotest.(check string)
            (b.Bench_def.name ^ " repeat identical")
            a.Wire.ar_opencl a'.Wire.ar_opencl;
          Alcotest.(check string)
            (b.Bench_def.name ^ " repeat from memory")
            "memory" a'.Wire.ar_origin)
        doms)

(* ------------------------------------------------------------------ *)
(* Overload, deadlines, drain                                           *)
(* ------------------------------------------------------------------ *)

let test_overload_deadline_drain () =
  (* the test owns the service so it can pin the pool's single worker
     domain: with ~jobs:2 the server never runs pool work itself, so
     while the gate is shut nothing admitted can start *)
  let svc = Service.create ~jobs:2 () in
  let gate = Atomic.make false in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set gate true;
      Service.shutdown svc)
    (fun () ->
      let report = ref None in
      with_server ~service:svc
        ~reshape:(fun c -> { c with Server.sc_max_inflight = 2 })
        (fun sock server ->
          let blocker =
            Pool.submit (Service.pool svc) (fun () ->
                while not (Atomic.get gate) do
                  Domain.cpu_relax ()
                done)
          in
          let cl = connect_exn sock in
          Fun.protect
            ~finally:(fun () -> Client.close cl)
            (fun () ->
              let send frame =
                match Client.send_frame cl frame with
                | Ok () -> ()
                | Error msg -> Alcotest.failf "send: %s" msg
              in
              let recv () =
                match Client.recv_frame cl with
                | Ok f -> f
                | Error msg -> Alcotest.failf "recv: %s" msg
              in
              let compile id deadline_ms =
                Wire.Compile
                  {
                    cr_id = id;
                    cr_deadline_ms = deadline_ms;
                    cr_name = "doubler";
                    cr_worker = "Doubler.apply";
                    cr_config = "all";
                    cr_source = doubler_source;
                  }
              in
              (* pipeline three requests while the worker is pinned:
                 #1 fills a slot, #2 (deadline 0: unmeetable by
                 construction) fills the other, #3 must be shed *)
              send (compile 1 None);
              send (compile 2 (Some 0));
              send (compile 3 None);
              (match recv () with
              | Wire.Err e ->
                  Alcotest.(check int) "the third request is shed" 3
                    e.Wire.er_id;
                  Alcotest.(check bool) "code overloaded" true
                    (e.Wire.er_code = Wire.Overloaded);
                  Alcotest.(check bool) "retry hint present" true
                    (e.Wire.er_retry_after_ms > 0)
              | _ -> Alcotest.fail "expected an overload reply first");
              (* #2 is cancelled in the queue by the deadline scan — the
                 worker never saw it *)
              (match recv () with
              | Wire.Err e ->
                  Alcotest.(check int) "the deadline request answered" 2
                    e.Wire.er_id;
                  Alcotest.(check bool) "code deadline_exceeded" true
                    (e.Wire.er_code = Wire.Deadline_exceeded)
              | _ -> Alcotest.fail "expected a deadline reply second");
              (* open the gate: #1 runs to completion *)
              Atomic.set gate true;
              (match recv () with
              | Wire.Result a ->
                  Alcotest.(check int) "the first request completes" 1
                    a.Wire.ar_id;
                  Alcotest.(check string) "freshly compiled" "compiled"
                    a.Wire.ar_origin
              | _ -> Alcotest.fail "expected the first result last");
              ignore (Pool.await blocker);
              (* graceful drain over the wire: nothing is in flight, the
                 ack reports a clean shutdown *)
              (match Client.drain cl with
              | Ok d ->
                  Alcotest.(check int) "nothing dropped" 0 d.Wire.da_dropped
              | Error f ->
                  Alcotest.failf "drain: %s" (Client.failure_to_string f));
              report := Some (Server.report server)));
      match !report with
      | None -> Alcotest.fail "no report"
      | Some r ->
          Alcotest.(check int) "two admitted" 2 r.Server.rp_requests;
          Alcotest.(check int) "one shed" 1 r.Server.rp_rejected;
          Alcotest.(check int) "one deadline" 1 r.Server.rp_deadline;
          Alcotest.(check int) "one completed" 1 r.Server.rp_completed;
          Alcotest.(check int) "none dropped" 0 r.Server.rp_dropped)

let test_drain_completes_inflight () =
  (* a Drain pipelined after a Compile: the compile still completes, the
     ack counts it, nothing is dropped *)
  with_server (fun sock _server ->
      let cl = connect_exn sock in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          let id = Client.fresh_id cl in
          let did = Client.fresh_id cl in
          (match
             Client.send_frame cl
               (Wire.Compile
                  {
                    cr_id = id;
                    cr_deadline_ms = None;
                    cr_name = "doubler";
                    cr_worker = "Doubler.apply";
                    cr_config = "all";
                    cr_source = doubler_source;
                  })
           with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "send: %s" msg);
          (match Client.send_frame cl (Wire.Drain did) with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "send: %s" msg);
          (match Client.recv_frame cl with
          | Ok (Wire.Result a) ->
              Alcotest.(check int) "the in-flight compile completed" id
                a.Wire.ar_id
          | Ok _ -> Alcotest.fail "expected the compile result first"
          | Error msg -> Alcotest.failf "recv: %s" msg);
          match Client.recv_frame cl with
          | Ok (Wire.Drain_ack d) ->
              Alcotest.(check int) "ack echoes the drain id" did
                d.Wire.da_id;
              Alcotest.(check int) "the compile counted as completed" 1
                d.Wire.da_completed;
              Alcotest.(check int) "nothing dropped" 0 d.Wire.da_dropped
          | Ok _ -> Alcotest.fail "expected the drain ack last"
          | Error msg -> Alcotest.failf "recv: %s" msg))

let test_draining_refuses_new_work () =
  with_server (fun sock _server ->
      let cl = connect_exn sock in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          let did = Client.fresh_id cl in
          (match Client.send_frame cl (Wire.Drain did) with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "send: %s" msg);
          (* pipelined behind the drain: must be refused, not queued *)
          (match
             Client.send_frame cl
               (Wire.Compile
                  {
                    cr_id = 99;
                    cr_deadline_ms = None;
                    cr_name = "doubler";
                    cr_worker = "Doubler.apply";
                    cr_config = "all";
                    cr_source = doubler_source;
                  })
           with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "send: %s" msg);
          match Client.recv_frame cl with
          | Ok (Wire.Err e) ->
              Alcotest.(check int) "refusal names the request" 99
                e.Wire.er_id;
              Alcotest.(check bool) "code draining" true
                (e.Wire.er_code = Wire.Draining)
          | Ok (Wire.Drain_ack _) ->
              (* also acceptable ordering if the refusal raced the ack —
                 but the refusal is sent during frame handling, strictly
                 before the ack, so reaching here is a bug *)
              Alcotest.fail "drain ack arrived before the refusal"
          | Ok _ -> Alcotest.fail "unexpected frame"
          | Error msg -> Alcotest.failf "recv: %s" msg))

(* ------------------------------------------------------------------ *)
(* Protocol robustness                                                  *)
(* ------------------------------------------------------------------ *)

let test_unknown_config () =
  with_server (fun sock _server ->
      let cl = connect_exn sock in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          match
            Client.compile cl ~config:"warp-speed" ~worker:"Doubler.apply"
              doubler_source
          with
          | Error (Client.Server_error e) ->
              Alcotest.(check bool) "compile_error" true
                (e.Wire.er_code = Wire.Compile_error);
              Alcotest.(check bool) "alternatives listed" true
                (Lime_support.Util.contains_substring ~sub:"local+pad+vec"
                   e.Wire.er_msg)
          | Error (Client.Transport msg) ->
              Alcotest.failf "transport failure: %s" msg
          | Ok _ -> Alcotest.fail "unknown config accepted"))

let test_garbage_resilience () =
  with_server (fun sock _server ->
      (* a hostile length prefix: refused, connection dropped, server
         lives on *)
      let fd = raw_connect sock in
      raw_send fd "\xFF\xFF\xFF\xFFgarbage";
      expect_protocol_error "oversized length" fd (Wire.reader ());
      Unix.close fd;
      (* a version the server does not speak *)
      let fd = raw_connect sock in
      raw_send fd (Wire.encode (Wire.Hello 99));
      expect_protocol_error "version mismatch" fd (Wire.reader ());
      Unix.close fd;
      (* a compile before the hello *)
      let fd = raw_connect sock in
      raw_send fd (Wire.encode (Wire.Stats 1));
      expect_protocol_error "missing hello" fd (Wire.reader ());
      Unix.close fd;
      (* a server-to-client frame on the request path *)
      let fd = raw_connect sock in
      let rd = Wire.reader () in
      raw_send fd (Wire.encode (Wire.Hello Wire.version));
      (match raw_next fd rd with
      | Frame (Wire.Hello_ack v) ->
          Alcotest.(check int) "ack version" Wire.version v
      | _ -> Alcotest.fail "no hello ack");
      raw_send fd (Wire.encode (Wire.Hello_ack 1));
      expect_protocol_error "reversed frame" fd rd;
      Unix.close fd;
      (* an unknown tag after a valid handshake *)
      let fd = raw_connect sock in
      let rd = Wire.reader () in
      raw_send fd (Wire.encode (Wire.Hello Wire.version));
      (match raw_next fd rd with
      | Frame (Wire.Hello_ack _) -> ()
      | _ -> Alcotest.fail "no hello ack");
      raw_send fd "\x00\x00\x00\x05\xEEabcd";
      expect_protocol_error "unknown tag" fd rd;
      Unix.close fd;
      (* after all that abuse, an honest client still gets served *)
      let cl = connect_exn sock in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          let a =
            compile_exn cl ~name:"doubler" ~worker:"Doubler.apply"
              doubler_source
          in
          Alcotest.(check bool) "kernel compiled" true
            (a.Wire.ar_kernel = "Doubler.apply")))

let test_stats_over_the_wire () =
  with_server (fun sock _server ->
      let cl = connect_exn sock in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          ignore
            (compile_exn cl ~name:"doubler" ~worker:"Doubler.apply"
               doubler_source);
          match Client.stats cl with
          | Ok text ->
              List.iter
                (fun family ->
                  Alcotest.(check bool) (family ^ " exposed") true
                    (Lime_support.Util.contains_substring ~sub:family text))
                [
                  "lime_server_requests_total";
                  "lime_server_connections_total";
                  "lime_server_queue_depth";
                  "lime_server_request_seconds_bucket";
                  "lime_server_queue_wait_seconds_count";
                  "lime_kcache_entries";
                ]
          | Error f -> Alcotest.failf "stats: %s" (Client.failure_to_string f)))

let () =
  Alcotest.run "server"
    [
      ( "fidelity",
        [
          Alcotest.test_case "registry round-trips byte-identical" `Quick
            test_registry_roundtrip;
          Alcotest.test_case "cache provenance on the wire" `Quick
            test_cache_provenance;
          Alcotest.test_case "concurrent clients" `Quick
            test_concurrent_clients;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "overload, deadline, drain" `Quick
            test_overload_deadline_drain;
          Alcotest.test_case "drain completes in-flight work" `Quick
            test_drain_completes_inflight;
          Alcotest.test_case "draining refuses new work" `Quick
            test_draining_refuses_new_work;
          Alcotest.test_case "unknown config" `Quick test_unknown_config;
          Alcotest.test_case "garbage does not kill the daemon" `Quick
            test_garbage_resilience;
          Alcotest.test_case "stats over the wire" `Quick
            test_stats_over_the_wire;
        ] );
    ]
