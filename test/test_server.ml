(* End-to-end tests of the compile daemon: an in-process server on a real
   Unix-domain socket, driven by real clients.  Every robustness path —
   overload shedding, deadlines, graceful drain, protocol garbage — is
   exercised without a single sleep-as-synchronization: determinism comes
   from the protocol (a deadline of 0 can never be met; a blocked worker
   pins queued work in place; pipelined frames are admitted in order). *)

module Server = Lime_server.Server
module Client = Lime_server.Client
module Wire = Lime_server.Wire
module Service = Lime_service.Service
module Pool = Lime_service.Pool
module Memopt = Lime_gpu.Memopt
module Pipeline = Lime_gpu.Pipeline
module Registry = Lime_benchmarks.Registry
module Bench_def = Lime_benchmarks.Bench_def
module Trace = Lime_service.Trace
module Util = Lime_support.Util

(* either side may write to a peer that already closed (the drain tests
   do it on purpose); that must surface as EPIPE, not kill the process *)
let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let doubler_source =
  {|
class Doubler {
  static local float twice(float x) { return x * 2.0f; }
  static local float[[]] apply(float[[]] xs) { return Doubler.twice @ xs; }
}
|}

let fresh_sock =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "limed-test-%d-%d.sock" (Unix.getpid ()) !n)

(* Run [f sock server] against a live in-process daemon; the server
   domain is always drained and joined, and the socket file must be gone
   once [run] has returned. *)
let with_server ?service ?(reshape = fun c -> c) f =
  let sock = fresh_sock () in
  let cfg = reshape (Server.default_config ~socket:sock) in
  let server = Server.create ?service cfg in
  let dom = Domain.spawn (fun () -> Server.run server) in
  Fun.protect
    ~finally:(fun () ->
      Server.drain server;
      Domain.join dom;
      Alcotest.(check bool) "socket removed after drain" false
        (Sys.file_exists sock))
    (fun () -> f sock server)

let connect_exn sock =
  match Client.connect ~timeout_s:60.0 sock with
  | Ok cl -> cl
  | Error msg -> Alcotest.failf "connect: %s" msg

let compile_exn cl ?deadline_ms ~name ~worker source =
  match Client.compile cl ?deadline_ms ~name ~worker source with
  | Ok a -> a
  | Error f -> Alcotest.failf "%s: %s" name (Client.failure_to_string f)

(* ------------------------------------------------------------------ *)
(* Raw socket access, for speaking garbage the Client refuses to send   *)
(* ------------------------------------------------------------------ *)

let raw_connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  fd

let raw_send fd s = ignore (Unix.write_substring fd s 0 (String.length s))

type raw_reply = Frame of Wire.frame | Eof | Timeout

let raw_next =
  let buf = Bytes.create 4096 in
  fun fd reader ->
    let deadline = Unix.gettimeofday () +. 30.0 in
    let rec go () =
      match Wire.next reader with
      | Ok (Some f) -> Frame f
      | Error e -> Alcotest.failf "client-side framing: %s" (Wire.error_to_string e)
      | Ok None ->
          if Unix.gettimeofday () >= deadline then Timeout
          else begin
            match Unix.select [ fd ] [] [] 1.0 with
            | [], _, _ -> go ()
            | _ -> (
                match Unix.read fd buf 0 (Bytes.length buf) with
                | 0 -> Eof
                | n ->
                    Wire.feed reader buf n;
                    go ()
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          end
    in
    go ()

let expect_protocol_error what fd reader =
  (match raw_next fd reader with
  | Frame (Wire.Err e) ->
      Alcotest.(check bool)
        (what ^ " answered protocol_error")
        true
        (e.Wire.er_code = Wire.Protocol_error)
  | Frame _ -> Alcotest.failf "%s: unexpected frame" what
  | Eof -> Alcotest.failf "%s: server closed without an error frame" what
  | Timeout -> Alcotest.failf "%s: no reply" what);
  (* the offending connection is closed... *)
  match raw_next fd reader with
  | Eof -> ()
  | Frame _ -> Alcotest.failf "%s: traffic after the error" what
  | Timeout -> Alcotest.failf "%s: connection left open" what

(* ------------------------------------------------------------------ *)
(* Round-trip fidelity                                                  *)
(* ------------------------------------------------------------------ *)

(* every program in the benchmark registry must come back from the daemon
   byte-identical to a local compilation *)
let test_registry_roundtrip () =
  let local = Service.create () in
  Fun.protect
    ~finally:(fun () -> Service.shutdown local)
    (fun () ->
      with_server (fun sock _server ->
          let cl = connect_exn sock in
          Fun.protect
            ~finally:(fun () -> Client.close cl)
            (fun () ->
              List.iter
                (fun (b : Bench_def.t) ->
                  let a =
                    compile_exn cl ~name:b.Bench_def.name
                      ~worker:b.Bench_def.worker b.Bench_def.source_small
                  in
                  let c, _ =
                    Service.compile_ex local ~config:Memopt.config_all
                      ~name:b.Bench_def.name ~worker:b.Bench_def.worker
                      b.Bench_def.source_small
                  in
                  let kernel = c.Pipeline.cp_kernel in
                  Alcotest.(check string)
                    (b.Bench_def.name ^ " opencl byte-identical")
                    c.Pipeline.cp_opencl a.Wire.ar_opencl;
                  Alcotest.(check string)
                    (b.Bench_def.name ^ " placements identical")
                    (Memopt.describe c.Pipeline.cp_decisions)
                    a.Wire.ar_placements;
                  Alcotest.(check string)
                    (b.Bench_def.name ^ " kernel name")
                    kernel.Lime_gpu.Kernel.k_name a.Wire.ar_kernel;
                  Alcotest.(check bool)
                    (b.Bench_def.name ^ " parallel flag")
                    kernel.Lime_gpu.Kernel.k_parallel a.Wire.ar_parallel;
                  Alcotest.(check string)
                    (b.Bench_def.name ^ " digest")
                    (Lime_service.Digest.to_hex
                       (Service.request_digest ~config:Memopt.config_all
                          ~worker:b.Bench_def.worker b.Bench_def.source_small))
                    a.Wire.ar_digest)
                Registry.all)))

let test_cache_provenance () =
  with_server (fun sock _server ->
      let cl = connect_exn sock in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          let a1 =
            compile_exn cl ~name:"doubler" ~worker:"Doubler.apply"
              doubler_source
          in
          let a2 =
            compile_exn cl ~name:"doubler" ~worker:"Doubler.apply"
              doubler_source
          in
          Alcotest.(check string) "cold request compiled" "compiled"
            a1.Wire.ar_origin;
          Alcotest.(check string) "warm request served from memory" "memory"
            a2.Wire.ar_origin;
          Alcotest.(check string) "same artifact" a1.Wire.ar_opencl
            a2.Wire.ar_opencl;
          Alcotest.(check string) "same digest" a1.Wire.ar_digest
            a2.Wire.ar_digest))

let test_concurrent_clients () =
  (* several clients, one per domain, all compiling at once; everyone
     gets the right artifact back on their own connection *)
  let progs =
    List.filteri (fun i _ -> i < 3) Registry.all
  in
  with_server (fun sock _server ->
      let doms =
        List.map
          (fun (b : Bench_def.t) ->
            Domain.spawn (fun () ->
                let cl = connect_exn sock in
                Fun.protect
                  ~finally:(fun () -> Client.close cl)
                  (fun () ->
                    (* two requests per client: the repeat must hit *)
                    let a =
                      compile_exn cl ~name:b.Bench_def.name
                        ~worker:b.Bench_def.worker b.Bench_def.source_small
                    in
                    let a' =
                      compile_exn cl ~name:b.Bench_def.name
                        ~worker:b.Bench_def.worker b.Bench_def.source_small
                    in
                    (b, a, a'))))
          progs
      in
      List.iter
        (fun d ->
          let (b : Bench_def.t), a, a' = Domain.join d in
          Alcotest.(check bool)
            (b.Bench_def.name ^ " kernel named after the worker")
            true
            (a.Wire.ar_kernel = b.Bench_def.worker);
          Alcotest.(check string)
            (b.Bench_def.name ^ " repeat identical")
            a.Wire.ar_opencl a'.Wire.ar_opencl;
          Alcotest.(check string)
            (b.Bench_def.name ^ " repeat from memory")
            "memory" a'.Wire.ar_origin)
        doms)

(* ------------------------------------------------------------------ *)
(* Overload, deadlines, drain                                           *)
(* ------------------------------------------------------------------ *)

let test_overload_deadline_drain () =
  (* the test owns the service so it can pin the pool's single worker
     domain: with ~jobs:2 the server never runs pool work itself, so
     while the gate is shut nothing admitted can start *)
  let svc = Service.create ~jobs:2 () in
  let gate = Atomic.make false in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set gate true;
      Service.shutdown svc)
    (fun () ->
      let report = ref None in
      with_server ~service:svc
        ~reshape:(fun c -> { c with Server.sc_max_inflight = 2 })
        (fun sock server ->
          let blocker =
            Pool.submit (Service.pool svc) (fun () ->
                while not (Atomic.get gate) do
                  Domain.cpu_relax ()
                done)
          in
          let cl = connect_exn sock in
          Fun.protect
            ~finally:(fun () -> Client.close cl)
            (fun () ->
              let send frame =
                match Client.send_frame cl frame with
                | Ok () -> ()
                | Error msg -> Alcotest.failf "send: %s" msg
              in
              let recv () =
                match Client.recv_frame cl with
                | Ok f -> f
                | Error msg -> Alcotest.failf "recv: %s" msg
              in
              let compile id deadline_ms =
                Wire.Compile
                  {
                    cr_id = id;
                    cr_deadline_ms = deadline_ms;
                    cr_name = "doubler";
                    cr_worker = "Doubler.apply";
                    cr_config = "all";
                    cr_source = doubler_source;
                    cr_trace = None;
                    cr_placement = None;
                  }
              in
              (* pipeline three requests while the worker is pinned:
                 #1 fills a slot, #2 (deadline 0: unmeetable by
                 construction) fills the other, #3 must be shed *)
              send (compile 1 None);
              send (compile 2 (Some 0));
              send (compile 3 None);
              (match recv () with
              | Wire.Err e ->
                  Alcotest.(check int) "the third request is shed" 3
                    e.Wire.er_id;
                  Alcotest.(check bool) "code overloaded" true
                    (e.Wire.er_code = Wire.Overloaded);
                  Alcotest.(check bool) "retry hint present" true
                    (e.Wire.er_retry_after_ms > 0)
              | _ -> Alcotest.fail "expected an overload reply first");
              (* #2 is cancelled in the queue by the deadline scan — the
                 worker never saw it *)
              (match recv () with
              | Wire.Err e ->
                  Alcotest.(check int) "the deadline request answered" 2
                    e.Wire.er_id;
                  Alcotest.(check bool) "code deadline_exceeded" true
                    (e.Wire.er_code = Wire.Deadline_exceeded)
              | _ -> Alcotest.fail "expected a deadline reply second");
              (* open the gate: #1 runs to completion *)
              Atomic.set gate true;
              (match recv () with
              | Wire.Result a ->
                  Alcotest.(check int) "the first request completes" 1
                    a.Wire.ar_id;
                  Alcotest.(check string) "freshly compiled" "compiled"
                    a.Wire.ar_origin
              | _ -> Alcotest.fail "expected the first result last");
              ignore (Pool.await blocker);
              (* graceful drain over the wire: nothing is in flight, the
                 ack reports a clean shutdown *)
              (match Client.drain cl with
              | Ok d ->
                  Alcotest.(check int) "nothing dropped" 0 d.Wire.da_dropped
              | Error f ->
                  Alcotest.failf "drain: %s" (Client.failure_to_string f));
              report := Some (Server.report server)));
      match !report with
      | None -> Alcotest.fail "no report"
      | Some r ->
          Alcotest.(check int) "two admitted" 2 r.Server.rp_requests;
          Alcotest.(check int) "one shed" 1 r.Server.rp_rejected;
          Alcotest.(check int) "one deadline" 1 r.Server.rp_deadline;
          Alcotest.(check int) "one completed" 1 r.Server.rp_completed;
          Alcotest.(check int) "none dropped" 0 r.Server.rp_dropped)

let test_drain_completes_inflight () =
  (* a Drain pipelined after a Compile: the compile still completes, the
     ack counts it, nothing is dropped.  Both frames go out in ONE write
     so the server provably reads them in one batch — the drain is in
     force before the compile can be reaped. *)
  with_server (fun sock _server ->
      let id = 1 and did = 2 in
      let fd = raw_connect sock in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let rd = Wire.reader () in
          raw_send fd (Wire.encode (Wire.Hello Wire.version));
          (match raw_next fd rd with
          | Frame (Wire.Hello_ack _) -> ()
          | _ -> Alcotest.fail "no hello ack");
          raw_send fd
            (Wire.encode
               (Wire.Compile
                  {
                    cr_id = id;
                    cr_deadline_ms = None;
                    cr_name = "doubler";
                    cr_worker = "Doubler.apply";
                    cr_config = "all";
                    cr_source = doubler_source;
                    cr_trace = None;
                    cr_placement = None;
                  })
            ^ Wire.encode (Wire.Drain did));
          (match raw_next fd rd with
          | Frame (Wire.Result a) ->
              Alcotest.(check int) "the in-flight compile completed" id
                a.Wire.ar_id
          | _ -> Alcotest.fail "expected the compile result first");
          match raw_next fd rd with
          | Frame (Wire.Drain_ack d) ->
              Alcotest.(check int) "ack echoes the drain id" did
                d.Wire.da_id;
              Alcotest.(check int) "the compile counted as completed" 1
                d.Wire.da_completed;
              Alcotest.(check int) "nothing dropped" 0 d.Wire.da_dropped
          | _ -> Alcotest.fail "expected the drain ack last"))

let test_draining_refuses_new_work () =
  with_server (fun sock _server ->
      let fd = raw_connect sock in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let rd = Wire.reader () in
          raw_send fd (Wire.encode (Wire.Hello Wire.version));
          (match raw_next fd rd with
          | Frame (Wire.Hello_ack _) -> ()
          | _ -> Alcotest.fail "no hello ack");
          (* one write: the compile is pipelined behind the drain and must
             be refused, not queued *)
          raw_send fd
            (Wire.encode (Wire.Drain 1)
            ^ Wire.encode
                (Wire.Compile
                   {
                     cr_id = 99;
                     cr_deadline_ms = None;
                     cr_name = "doubler";
                     cr_worker = "Doubler.apply";
                     cr_config = "all";
                     cr_source = doubler_source;
                     cr_trace = None;
                     cr_placement = None;
                   }));
          match raw_next fd rd with
          | Frame (Wire.Err e) ->
              Alcotest.(check int) "refusal names the request" 99
                e.Wire.er_id;
              Alcotest.(check bool) "code draining" true
                (e.Wire.er_code = Wire.Draining)
          | Frame (Wire.Drain_ack _) ->
              (* also acceptable ordering if the refusal raced the ack —
                 but the refusal is sent during frame handling, strictly
                 before the ack, so reaching here is a bug *)
              Alcotest.fail "drain ack arrived before the refusal"
          | Frame _ -> Alcotest.fail "unexpected frame"
          | Eof -> Alcotest.fail "server closed before the refusal"
          | Timeout -> Alcotest.fail "no refusal"))

(* ------------------------------------------------------------------ *)
(* Protocol robustness                                                  *)
(* ------------------------------------------------------------------ *)

let test_unknown_config () =
  with_server (fun sock _server ->
      let cl = connect_exn sock in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          match
            Client.compile cl ~config:"warp-speed" ~worker:"Doubler.apply"
              doubler_source
          with
          | Error (Client.Server_error e) ->
              Alcotest.(check bool) "compile_error" true
                (e.Wire.er_code = Wire.Compile_error);
              Alcotest.(check bool) "alternatives listed" true
                (Lime_support.Util.contains_substring ~sub:"local+pad+vec"
                   e.Wire.er_msg)
          | Error (Client.Transport msg) ->
              Alcotest.failf "transport failure: %s" msg
          | Ok _ -> Alcotest.fail "unknown config accepted"))

let test_garbage_resilience () =
  with_server (fun sock _server ->
      (* a hostile length prefix: refused, connection dropped, server
         lives on *)
      let fd = raw_connect sock in
      raw_send fd "\xFF\xFF\xFF\xFFgarbage";
      expect_protocol_error "oversized length" fd (Wire.reader ());
      Unix.close fd;
      (* a version below the floor (a future version negotiates down
         instead — see the negotiation tests) *)
      let fd = raw_connect sock in
      raw_send fd (Wire.encode (Wire.Hello 0));
      expect_protocol_error "version below the floor" fd (Wire.reader ());
      Unix.close fd;
      (* a compile before the hello *)
      let fd = raw_connect sock in
      raw_send fd (Wire.encode (Wire.Stats 1));
      expect_protocol_error "missing hello" fd (Wire.reader ());
      Unix.close fd;
      (* a server-to-client frame on the request path *)
      let fd = raw_connect sock in
      let rd = Wire.reader () in
      raw_send fd (Wire.encode (Wire.Hello Wire.version));
      (match raw_next fd rd with
      | Frame (Wire.Hello_ack v) ->
          Alcotest.(check int) "ack version" Wire.version v
      | _ -> Alcotest.fail "no hello ack");
      raw_send fd (Wire.encode (Wire.Hello_ack 1));
      expect_protocol_error "reversed frame" fd rd;
      Unix.close fd;
      (* an unknown tag after a valid handshake *)
      let fd = raw_connect sock in
      let rd = Wire.reader () in
      raw_send fd (Wire.encode (Wire.Hello Wire.version));
      (match raw_next fd rd with
      | Frame (Wire.Hello_ack _) -> ()
      | _ -> Alcotest.fail "no hello ack");
      raw_send fd "\x00\x00\x00\x05\xEEabcd";
      expect_protocol_error "unknown tag" fd rd;
      Unix.close fd;
      (* after all that abuse, an honest client still gets served *)
      let cl = connect_exn sock in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          let a =
            compile_exn cl ~name:"doubler" ~worker:"Doubler.apply"
              doubler_source
          in
          Alcotest.(check bool) "kernel compiled" true
            (a.Wire.ar_kernel = "Doubler.apply")))

let test_stats_over_the_wire () =
  with_server (fun sock _server ->
      let cl = connect_exn sock in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          ignore
            (compile_exn cl ~name:"doubler" ~worker:"Doubler.apply"
               doubler_source);
          match Client.stats cl with
          | Ok text ->
              List.iter
                (fun family ->
                  Alcotest.(check bool) (family ^ " exposed") true
                    (Lime_support.Util.contains_substring ~sub:family text))
                [
                  "lime_server_requests_total";
                  "lime_server_connections_total";
                  "lime_server_queue_depth";
                  "lime_server_request_seconds_bucket";
                  "lime_server_queue_wait_seconds_count";
                  "lime_kcache_entries";
                ]
          | Error f -> Alcotest.failf "stats: %s" (Client.failure_to_string f)))

(* ------------------------------------------------------------------ *)
(* Version negotiation                                                  *)
(* ------------------------------------------------------------------ *)

let plain_compile id =
  Wire.Compile
    {
      cr_id = id;
      cr_deadline_ms = None;
      cr_name = "doubler";
      cr_worker = "Doubler.apply";
      cr_config = "all";
      cr_source = doubler_source;
      cr_trace = None;
      cr_placement = None;
    }

(* an old (v1-speaking) client against the new server: the ack negotiates
   down to 1 and the reply is the v1 frame — no span buffer *)
let test_old_client_new_server () =
  with_server (fun sock _server ->
      let fd = raw_connect sock in
      let rd = Wire.reader () in
      raw_send fd (Wire.encode (Wire.Hello 1));
      (match raw_next fd rd with
      | Frame (Wire.Hello_ack v) ->
          Alcotest.(check int) "negotiated down to the client" 1 v
      | _ -> Alcotest.fail "no hello ack");
      raw_send fd (Wire.encode (plain_compile 5));
      (match raw_next fd rd with
      | Frame (Wire.Result a) ->
          Alcotest.(check int) "result id" 5 a.Wire.ar_id;
          Alcotest.(check string) "no span buffer in a v1 conversation" ""
            a.Wire.ar_spans;
          (* the reply must be byte-identical to the v1 encoding: its tag
             is 4, not 11 *)
          Alcotest.(check char) "v1 result tag" '\x04'
            (Wire.encode (Wire.Result a)).[4]
      | _ -> Alcotest.fail "no result");
      Unix.close fd;
      (* a future client (higher version than the server) also negotiates
         down — to the server's version *)
      let fd = raw_connect sock in
      let rd = Wire.reader () in
      raw_send fd (Wire.encode (Wire.Hello 99));
      (match raw_next fd rd with
      | Frame (Wire.Hello_ack v) ->
          Alcotest.(check int) "negotiated down to the server" Wire.version v
      | _ -> Alcotest.fail "no hello ack for the future client");
      Unix.close fd)

(* the new client against an old (pre-negotiation, v1-only) server: the
   version reject triggers one redial speaking v1, and compile silently
   drops the trace context the old peer could not decode *)
let test_new_client_old_server () =
  let sock = fresh_sock () in
  let listen = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen (Unix.ADDR_UNIX sock);
  Unix.listen listen 4;
  let served_trace = ref (Some { Wire.tc_trace_id = "?"; tc_parent_span = 0 }) in
  let dom =
    Domain.spawn (fun () ->
        (* a faithful v1 daemon: rejects any Hello above 1 outright with
           the historical error message, then serves one plain compile *)
        let serve_conn fd =
          let rd = Wire.reader () in
          let rec next () =
            match Wire.next rd with
            | Ok (Some f) -> f
            | Ok None ->
                let buf = Bytes.create 4096 in
                let n = Unix.read fd buf 0 (Bytes.length buf) in
                if n = 0 then failwith "eof";
                Wire.feed rd buf n;
                next ()
            | Error e -> failwith (Wire.error_to_string e)
          in
          (match next () with
          | Wire.Hello 1 -> raw_send fd (Wire.encode (Wire.Hello_ack 1))
          | Wire.Hello v ->
              raw_send fd
                (Wire.encode
                   (Wire.Err
                      {
                        er_id = 0;
                        er_code = Wire.Protocol_error;
                        er_retry_after_ms = 0;
                        er_msg =
                          Printf.sprintf
                            "unsupported protocol version %d (speaking 1)" v;
                      }));
              raise Exit
          | _ -> failwith "expected a hello");
          match next () with
          | Wire.Compile r ->
              served_trace := r.Wire.cr_trace;
              raw_send fd
                (Wire.encode
                   (Wire.Result
                      {
                        ar_id = r.Wire.cr_id;
                        ar_origin = "compiled";
                        ar_digest = "";
                        ar_kernel = r.Wire.cr_worker;
                        ar_parallel = true;
                        ar_opencl = "";
                        ar_placements = "";
                        ar_spans = "";
                      }))
          | _ -> failwith "expected a compile"
        in
        (* first connection: version reject; second: the v1 redial *)
        for _ = 1 to 2 do
          let fd, _ = Unix.accept listen in
          (try serve_conn fd with _ -> ());
          try Unix.close fd with Unix.Unix_error _ -> ()
        done)
  in
  Fun.protect
    ~finally:(fun () ->
      Domain.join dom;
      (try Unix.close listen with Unix.Unix_error _ -> ());
      try Sys.remove sock with Sys_error _ -> ())
    (fun () ->
      let cl = connect_exn sock in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          Alcotest.(check int) "fell back to protocol 1" 1 (Client.version cl);
          let trace =
            { Wire.tc_trace_id = Trace.fresh_trace_id (); tc_parent_span = 3 }
          in
          match
            Client.compile cl ~name:"doubler" ~trace ~worker:"Doubler.apply"
              doubler_source
          with
          | Ok a ->
              Alcotest.(check string) "served by the fake v1 daemon"
                "Doubler.apply" a.Wire.ar_kernel;
              Alcotest.(check bool)
                "trace context dropped from the v1 conversation" true
                (!served_trace = None)
          | Error f -> Alcotest.failf "compile: %s" (Client.failure_to_string f)))

(* ------------------------------------------------------------------ *)
(* Distributed tracing                                                  *)
(* ------------------------------------------------------------------ *)

(* a traced compile returns the server's span buffer: decodable, rooted
   at a single server.request span, well-nested and monotonic *)
let test_merged_trace_well_nested () =
  with_server (fun sock _server ->
      let cl = connect_exn sock in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          let trace =
            { Wire.tc_trace_id = Trace.fresh_trace_id (); tc_parent_span = 7 }
          in
          let a =
            match
              Client.compile cl ~name:"doubler" ~trace ~worker:"Doubler.apply"
                doubler_source
            with
            | Ok a -> a
            | Error f -> Alcotest.failf "compile: %s" (Client.failure_to_string f)
          in
          Alcotest.(check bool) "span buffer returned" true
            (a.Wire.ar_spans <> "");
          let spans =
            match Trace.spans_of_wire a.Wire.ar_spans with
            | Ok spans -> spans
            | Error msg -> Alcotest.failf "span buffer malformed: %s" msg
          in
          let roots =
            List.filter (fun sp -> sp.Trace.sp_parent < 0) spans
          in
          (match roots with
          | [ root ] ->
              Alcotest.(check string) "rooted at server.request"
                "server.request" root.Trace.sp_name;
              Alcotest.(check bool) "root starts the timeline" true
                (root.Trace.sp_begin_us = 0.0)
          | _ -> Alcotest.failf "%d roots, expected 1" (List.length roots));
          Alcotest.(check bool) "queue-wait child present" true
            (List.exists
               (fun sp -> sp.Trace.sp_name = "server.queue_wait")
               spans);
          Alcotest.(check bool) "pipeline spans present" true
            (List.exists
               (fun sp -> sp.Trace.sp_name = "pipeline.compile")
               spans);
          (* well-nested: every child's interval lies inside its parent's;
             monotonic: every span is closed and non-negative *)
          let by_id = Hashtbl.create 64 in
          List.iter
            (fun sp -> Hashtbl.replace by_id sp.Trace.sp_id sp)
            spans;
          List.iter
            (fun sp ->
              Alcotest.(check bool)
                (sp.Trace.sp_name ^ " closed, forward in time") true
                (sp.Trace.sp_begin_us >= 0.0
                && sp.Trace.sp_end_us >= sp.Trace.sp_begin_us);
              if sp.Trace.sp_parent >= 0 then
                match Hashtbl.find_opt by_id sp.Trace.sp_parent with
                | None ->
                    Alcotest.failf "%s has a dangling parent"
                      sp.Trace.sp_name
                | Some parent ->
                    Alcotest.(check bool)
                      (sp.Trace.sp_name ^ " nested inside "
                     ^ parent.Trace.sp_name)
                      true
                      (parent.Trace.sp_begin_us <= sp.Trace.sp_begin_us
                      && sp.Trace.sp_end_us <= parent.Trace.sp_end_us))
            spans;
          (* an untraced request on the same connection stays span-free *)
          let b =
            compile_exn cl ~name:"doubler" ~worker:"Doubler.apply"
              doubler_source
          in
          Alcotest.(check string) "untraced request returns no spans" ""
            b.Wire.ar_spans))

(* ------------------------------------------------------------------ *)
(* The HTTP observability plane                                         *)
(* ------------------------------------------------------------------ *)

let http_get port req =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      raw_send fd req;
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let deadline = Unix.gettimeofday () +. 30.0 in
      let rec go () =
        if Unix.gettimeofday () >= deadline then
          Alcotest.fail "http response never completed";
        match Unix.select [ fd ] [] [] 1.0 with
        | [], _, _ -> go ()
        | _ -> (
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> Buffer.contents buf
            | n ->
                Buffer.add_subbytes buf chunk 0 n;
                go ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
      in
      go ())

let http_port_exn server =
  match Server.http_port server with
  | Some p -> p
  | None -> Alcotest.fail "no http port bound"

let test_http_endpoints () =
  (* an isolated registry: the exposed counter values must be exactly
     this server's, not the process-wide accumulation of other tests *)
  let svc =
    Service.create ~registry:(Lime_service.Metrics.create ()) ()
  in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) @@ fun () ->
  with_server ~service:svc
    ~reshape:(fun c -> { c with Server.sc_http_port = Some 0 })
    (fun sock server ->
      let port = http_port_exn server in
      (* healthy before any drain *)
      let health = http_get port "GET /healthz HTTP/1.0\r\n\r\n" in
      Alcotest.(check bool) "healthz 200" true
        (Util.contains_substring ~sub:"200 OK" health);
      Alcotest.(check bool) "healthz body" true
        (Util.contains_substring ~sub:"ok" health);
      (* drive one compile so the counters move *)
      let cl = connect_exn sock in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          ignore
            (compile_exn cl ~name:"doubler" ~worker:"Doubler.apply"
               doubler_source));
      let metrics = http_get port "GET /metrics HTTP/1.0\r\n\r\n" in
      List.iter
        (fun sub ->
          Alcotest.(check bool) (sub ^ " in /metrics") true
            (Util.contains_substring ~sub metrics))
        [
          "200 OK";
          "text/plain; version=0.0.4";
          "lime_build_info{";
          "protocol=\"3\"";
          "lime_server_requests_total 1";
          "lime_trace_dropped_spans";
        ];
      let status = http_get port "GET /statusz HTTP/1.0\r\n\r\n" in
      List.iter
        (fun sub ->
          Alcotest.(check bool) (sub ^ " in /statusz") true
            (Util.contains_substring ~sub status))
        [
          "200 OK";
          "application/json";
          "\"draining\":false";
          "\"protocol_version\":3";
          "\"admitted\":1";
          "\"trace_id\":\"";
        ];
      (* unknown path and unsupported method *)
      Alcotest.(check bool) "404 for an unknown path" true
        (Util.contains_substring ~sub:"404 Not Found"
           (http_get port "GET /nope HTTP/1.0\r\n\r\n"));
      Alcotest.(check bool) "405 for POST" true
        (Util.contains_substring ~sub:"405 Method Not Allowed"
           (http_get port "POST /metrics HTTP/1.0\r\n\r\n"));
      (* malformed request line *)
      Alcotest.(check bool) "400 for garbage" true
        (Util.contains_substring ~sub:"400 Bad Request"
           (http_get port "????\r\n\r\n")))

let test_healthz_flips_while_draining () =
  (* pin the worker so a drain cannot complete while we probe /healthz *)
  let svc = Service.create ~jobs:2 () in
  let gate = Atomic.make false in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set gate true;
      Service.shutdown svc)
    (fun () ->
      with_server ~service:svc
        ~reshape:(fun c -> { c with Server.sc_http_port = Some 0 })
        (fun sock server ->
          let port = http_port_exn server in
          let blocker =
            Pool.submit (Service.pool svc) (fun () ->
                while not (Atomic.get gate) do
                  Domain.cpu_relax ()
                done)
          in
          let cl = connect_exn sock in
          Fun.protect
            ~finally:(fun () ->
              Atomic.set gate true;
              ignore (Pool.await blocker);
              Client.close cl)
            (fun () ->
              (* a compile pinned behind the blocked worker keeps the
                 drain in flight for as long as we need *)
              (match Client.send_frame cl (plain_compile 1) with
              | Ok () -> ()
              | Error msg -> Alcotest.failf "send: %s" msg);
              (* the drain must come AFTER the compile is admitted, or it
                 would be refused and the drain would finish instantly;
                 /statusz makes admission observable *)
              let deadline = Unix.gettimeofday () +. 30.0 in
              let rec await_admission () =
                let status =
                  try Some (http_get port "GET /statusz HTTP/1.0\r\n\r\n")
                  with Unix.Unix_error _ -> None
                in
                match status with
                | Some s when Util.contains_substring ~sub:"\"in_flight\":1" s
                  ->
                    ()
                | _ when Unix.gettimeofday () >= deadline ->
                    Alcotest.fail "the pinned compile was never admitted"
                | _ -> await_admission ()
              in
              await_admission ();
              Server.drain server;
              (* the reactor notices the drain request at its next wakeup;
                 wait (bounded) for readiness to flip rather than sleeping *)
              let deadline = Unix.gettimeofday () +. 30.0 in
              let rec await_flip () =
                (* rapid connect/close cycles against the one-response
                   listener can surface as a transient reset; retry *)
                let health =
                  try Some (http_get port "GET /healthz HTTP/1.0\r\n\r\n")
                  with Unix.Unix_error _ -> None
                in
                match health with
                | Some health
                  when Util.contains_substring ~sub:"503" health ->
                    health
                | _ when Unix.gettimeofday () >= deadline ->
                    Alcotest.fail "healthz never flipped to 503"
                | _ -> await_flip ()
              in
              let health = await_flip () in
              Alcotest.(check bool) "healthz says draining" true
                (Util.contains_substring ~sub:"draining" health);
              Alcotest.(check bool) "statusz agrees" true
                (Util.contains_substring ~sub:"\"draining\":true"
                   (http_get port "GET /statusz HTTP/1.0\r\n\r\n"));
              (* let the pinned compile finish; the drain then completes
                 and with_server's finally joins the reactor *)
              Atomic.set gate true;
              match Client.recv_frame cl with
              | Ok (Wire.Result _) -> ()
              | Ok _ -> Alcotest.fail "expected the pinned result"
              | Error msg -> Alcotest.failf "recv: %s" msg)))

(* ------------------------------------------------------------------ *)
(* The access log                                                       *)
(* ------------------------------------------------------------------ *)

let test_access_log () =
  let log_file =
    Filename.temp_file "limed-access" ".jsonl"
  in
  let trace =
    { Wire.tc_trace_id = Trace.fresh_trace_id (); tc_parent_span = -1 }
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove log_file with Sys_error _ -> ())
    (fun () ->
      with_server
        ~reshape:(fun c -> { c with Server.sc_access_log = Some log_file })
        (fun sock _server ->
          let cl = connect_exn sock in
          Fun.protect
            ~finally:(fun () -> Client.close cl)
            (fun () ->
              match
                Client.compile cl ~name:"doubler" ~trace
                  ~worker:"Doubler.apply" doubler_source
              with
              | Ok _ -> ()
              | Error f ->
                  Alcotest.failf "compile: %s" (Client.failure_to_string f)));
      (* with_server has drained and joined: the log is complete *)
      let lines =
        In_channel.with_open_text log_file In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter (fun l -> String.trim l <> "")
      in
      match lines with
      | [ line ] ->
          List.iter
            (fun sub ->
              Alcotest.(check bool) (sub ^ " in the access line") true
                (Util.contains_substring ~sub line))
            [
              "\"id\":1";
              "\"name\":\"doubler\"";
              "\"worker\":\"Doubler.apply\"";
              "\"config\":\"all\"";
              "\"outcome\":\"ok\"";
              "\"origin\":\"compiled\"";
              "\"trace_id\":\"" ^ trace.Wire.tc_trace_id ^ "\"";
              "\"deadline_ms\":null";
            ]
      | _ ->
          Alcotest.failf "expected exactly one access-log line, got %d"
            (List.length lines))

(* ------------------------------------------------------------------ *)
(* SLOs, /alertz, and the flight recorder                              *)
(* ------------------------------------------------------------------ *)

(* deadline-0 traffic is the deterministic burn generator: such a request
   can never be answered in time, so every one lands as a bad event in
   both alerting windows and as an entry in the errors ring *)
let test_alertz_flips_under_burn () =
  let svc = Service.create ~registry:(Lime_service.Metrics.create ()) () in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) @@ fun () ->
  with_server ~service:svc
    ~reshape:(fun c -> { c with Server.sc_http_port = Some 0 })
    (fun sock server ->
      let port = http_port_exn server in
      let contains sub s = Util.contains_substring ~sub s in
      (* before any traffic: healthy, with the default objectives named *)
      let alertz () = http_get port "GET /alertz HTTP/1.0\r\n\r\n" in
      let a0 = alertz () in
      List.iter
        (fun sub ->
          Alcotest.(check bool) (sub ^ " in /alertz") true (contains sub a0))
        [
          "200 OK"; "application/json"; "\"healthy\":true";
          "\"name\":\"availability\""; "\"kind\":\"latency\"";
          "\"threshold_s\":"; "\"burn_factor\":14.4"; "\"state\":\"ok\"";
        ];
      let trace =
        { Wire.tc_trace_id = Trace.fresh_trace_id (); tc_parent_span = -1 }
      in
      let cl = connect_exn sock in
      Fun.protect
        ~finally:(fun () -> Client.close cl)
        (fun () ->
          (* one good request, then an all-bad burst: the daemon is
             seconds old, so both alerting windows hold the same burst
             and the availability SLO must fire *)
          (match
             Client.compile cl ~name:"good" ~trace ~worker:"Doubler.apply"
               doubler_source
           with
          | Ok _ -> ()
          | Error f -> Alcotest.failf "good: %s" (Client.failure_to_string f));
          for i = 1 to 6 do
            match
              Client.compile cl ~deadline_ms:0
                ~name:(Printf.sprintf "doomed-%d" i)
                ~worker:"Doubler.apply" doubler_source
            with
            | Ok _ -> Alcotest.fail "a deadline-0 request cannot succeed"
            | Error _ -> ()
          done);
      let a1 = alertz () in
      Alcotest.(check bool) "burn flips /alertz unhealthy" true
        (contains "\"healthy\":false" a1);
      Alcotest.(check bool) "the availability objective fires" true
        (contains "\"state\":\"firing\"" a1);
      Alcotest.(check bool) "bad events tallied" true (contains "\"bad\":6" a1);
      (* the same state machine is exposed as metrics *)
      let metrics = http_get port "GET /metrics HTTP/1.0\r\n\r\n" in
      List.iter
        (fun sub ->
          Alcotest.(check bool) (sub ^ " in /metrics") true
            (contains sub metrics))
        [
          "lime_slo_state{slo=\"availability\"} 2";
          "lime_slo_burn_rate{slo=\"availability\",window=\"fast\"}";
          "lime_slo_events{slo=\"availability\",result=\"bad\"} 6";
          "lime_slo_objective{slo=\"availability\"} 0.99";
          "lime_process_start_time_seconds";
          (* the latency summary saw exactly the answered request *)
          "lime_server_request_seconds_summary_count 1";
          "lime_server_request_seconds_summary{quantile=\"0.5\"}";
          (* the traced request left its id as a histogram exemplar *)
          "# {trace_id=\"" ^ trace.Wire.tc_trace_id ^ "\"}";
        ];
      (* the flight recorder: the good request is among the slowest, the
         doomed ones are errors, each with its grafted span tree *)
      let slow = http_get port "GET /debug/slow HTTP/1.0\r\n\r\n" in
      Alcotest.(check bool) "/debug/slow serves the good request" true
        (contains "\"name\":\"good\"" slow);
      Alcotest.(check bool) "slow entry carries the span tree" true
        (contains "server.request" slow
        && contains "server.queue_wait" slow);
      Alcotest.(check bool) "slow entry keeps the trace id" true
        (contains trace.Wire.tc_trace_id slow);
      let errors = http_get port "GET /debug/errors HTTP/1.0\r\n\r\n" in
      Alcotest.(check bool) "/debug/errors holds the doomed requests" true
        (contains "\"outcome\":\"deadline\"" errors
        && contains "doomed-6" errors);
      (* statusz reports the recorder's occupancy next to the trace
         buffer's drop counter *)
      let status = http_get port "GET /statusz HTTP/1.0\r\n\r\n" in
      List.iter
        (fun sub ->
          Alcotest.(check bool) (sub ^ " in /statusz") true
            (contains sub status))
        [ "\"flight\":{\"capacity\":32,\"occupancy\":"; "\"dropped_spans\":" ])

(* a graceful drain writes the post-mortem file without being asked *)
let test_flight_dump_on_drain () =
  let dump_file = Filename.temp_file "limed-flight" ".jsonl" in
  Sys.remove dump_file;
  let trace =
    { Wire.tc_trace_id = Trace.fresh_trace_id (); tc_parent_span = -1 }
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove dump_file with Sys_error _ -> ())
    (fun () ->
      with_server
        ~reshape:(fun c -> { c with Server.sc_flight_dump = Some dump_file })
        (fun sock _server ->
          let cl = connect_exn sock in
          Fun.protect
            ~finally:(fun () -> Client.close cl)
            (fun () ->
              (match
                 Client.compile cl ~name:"kept" ~trace
                   ~worker:"Doubler.apply" doubler_source
               with
              | Ok _ -> ()
              | Error f ->
                  Alcotest.failf "kept: %s" (Client.failure_to_string f));
              match
                Client.compile cl ~deadline_ms:0 ~name:"lost"
                  ~worker:"Doubler.apply" doubler_source
              with
              | Ok _ -> Alcotest.fail "deadline-0 cannot succeed"
              | Error _ -> ()));
      (* with_server has drained and joined: the dump is complete *)
      let lines =
        In_channel.with_open_text dump_file In_channel.input_lines
        |> List.filter (fun l -> String.trim l <> "")
      in
      Alcotest.(check bool)
        (Printf.sprintf "entries dumped (%d lines)" (List.length lines))
        true
        (List.length lines >= 2);
      List.iter
        (fun l ->
          Alcotest.(check bool) "line is a json object" true
            (String.length l > 2
            && l.[0] = '{'
            && l.[String.length l - 1] = '}');
          Alcotest.(check bool) "line names its ring" true
            (Util.contains_substring ~sub:"\"ring\":\"errors\"" l
            || Util.contains_substring ~sub:"\"ring\":\"slow\"" l))
        lines;
      let whole = String.concat "\n" lines in
      Alcotest.(check bool) "the answered request is in the dump" true
        (Util.contains_substring ~sub:"\"name\":\"kept\"" whole);
      Alcotest.(check bool) "its trace id survives into the post-mortem" true
        (Util.contains_substring ~sub:trace.Wire.tc_trace_id whole);
      Alcotest.(check bool) "the doomed request is in the errors ring" true
        (Util.contains_substring ~sub:"\"outcome\":\"deadline\"" whole);
      Alcotest.(check bool) "span trees survive into the post-mortem" true
        (Util.contains_substring ~sub:"server.request" whole))

let () =
  Alcotest.run "server"
    [
      ( "fidelity",
        [
          Alcotest.test_case "registry round-trips byte-identical" `Quick
            test_registry_roundtrip;
          Alcotest.test_case "cache provenance on the wire" `Quick
            test_cache_provenance;
          Alcotest.test_case "concurrent clients" `Quick
            test_concurrent_clients;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "overload, deadline, drain" `Quick
            test_overload_deadline_drain;
          Alcotest.test_case "drain completes in-flight work" `Quick
            test_drain_completes_inflight;
          Alcotest.test_case "draining refuses new work" `Quick
            test_draining_refuses_new_work;
          Alcotest.test_case "unknown config" `Quick test_unknown_config;
          Alcotest.test_case "garbage does not kill the daemon" `Quick
            test_garbage_resilience;
          Alcotest.test_case "stats over the wire" `Quick
            test_stats_over_the_wire;
        ] );
      ( "negotiation",
        [
          Alcotest.test_case "old client, new server" `Quick
            test_old_client_new_server;
          Alcotest.test_case "new client, old server" `Quick
            test_new_client_old_server;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "merged trace is well-nested" `Quick
            test_merged_trace_well_nested;
        ] );
      ( "observability plane",
        [
          Alcotest.test_case "http endpoints" `Quick test_http_endpoints;
          Alcotest.test_case "healthz flips while draining" `Quick
            test_healthz_flips_while_draining;
          Alcotest.test_case "access log" `Quick test_access_log;
          Alcotest.test_case "alertz flips under deadline-0 burn" `Quick
            test_alertz_flips_under_burn;
          Alcotest.test_case "flight dump on drain" `Quick
            test_flight_dump_on_drain;
        ] );
    ]
