(* Simulated hardware counters: invariants the counter record must keep,
   the 1e-6 consistency between the counters and the timing breakdown
   they were accumulated alongside, the golden report rendering, and the
   BENCH JSON round-trip + regression diff. *)

module Device = Gpusim.Device
module Profile = Gpusim.Profile
module Model = Gpusim.Model
module Counters = Gpusim.Counters
module E = Lime_benchmarks.Experiments
module B = Lime_benchmarks.Bench_def
module J = Lime_benchmarks.Benchjson

let rel_close ?(tol = 1e-6) a b =
  a = b || Float.abs (a -. b) <= tol *. Float.max (Float.abs a) (Float.abs b)

let check_close name a b =
  Alcotest.(check bool)
    (Printf.sprintf "%s (%.12g vs %.12g)" name a b)
    true (rel_close a b)

(* ------------------------------------------------------------------ *)
(* Reconstruction: every second the breakdown charges must be the       *)
(* product of a counter and a device cost parameter.  This recomputes   *)
(* the whole breakdown from the raw counts alone.                       *)
(* ------------------------------------------------------------------ *)

let reconstruct (d : Device.t) (c : Counters.t) =
  let clock = d.Device.clock_ghz *. 1e9 in
  let lanes = float_of_int (d.Device.sms * d.Device.fp32_lanes) in
  let compute =
    match d.Device.kind with
    | Device.Gpu -> c.Counters.ct_issue_cycles /. (lanes *. clock)
    | Device.Cpu ->
        let ht =
          1.0 +. ((float_of_int d.Device.threads_per_core -. 1.0) *. 0.06)
        in
        (c.Counters.ct_issue_cycles +. (c.Counters.ct_access_slots *. 1.2))
        /. (float_of_int d.Device.sms *. 0.85 *. ht *. clock)
  in
  let bw = d.Device.global_bw_gbs *. 1e9 in
  let global =
    (c.Counters.ct_bytes_global /. bw)
    +. (c.Counters.ct_gslot_cycles /. (lanes *. clock))
  in
  let lat =
    c.Counters.ct_lat_tx *. d.Device.global_lat_cycles
    /. (float_of_int (d.Device.sms * d.Device.inflight_warps) *. clock)
  in
  let local =
    (c.Counters.ct_local_accesses +. c.Counters.ct_bank_replays)
    *. d.Device.local_cost /. (lanes *. clock)
  in
  let constant =
    ((c.Counters.ct_const_broadcast *. d.Device.const_cost)
    +. (c.Counters.ct_const_serialized *. float_of_int d.Device.warp *. 0.5))
    /. (lanes *. clock)
  in
  let image =
    c.Counters.ct_tex_fetches *. d.Device.tex_cost /. (lanes *. clock)
  in
  let launch = d.Device.launch_overhead_us *. 1e-6 in
  let reduce =
    if c.Counters.ct_reduce_elems > 0.0 then
      (c.Counters.ct_reduce_elems /. (lanes *. clock)) +. launch
    else 0.0
  in
  let total =
    Float.max compute (global +. local +. constant +. image)
    +. lat +. launch +. reduce
  in
  (compute, global, lat, local, constant, image, total)

let check_counters name (d : Device.t) (bd : Model.breakdown)
    (c : Counters.t) =
  let open Counters in
  let chk label cond =
    Alcotest.(check bool) (Printf.sprintf "%s: %s" name label) true cond
  in
  (* basic invariants *)
  chk "occupancy in (0,1]" (c.ct_occupancy > 0.0 && c.ct_occupancy <= 1.0);
  chk "warps positive" (c.ct_warps > 0.0);
  chk "cache hits nonneg" (c.ct_cache_hits >= 0.0);
  chk "cache misses nonneg" (c.ct_cache_misses >= 0.0);
  chk "tex hits <= fetches"
    (c.ct_tex_hits <= c.ct_tex_fetches +. 1e-9);
  chk "coalesced+uncoalesced = total"
    (rel_close ~tol:1e-9 (c.ct_gtx_coalesced +. c.ct_gtx_uncoalesced)
       c.ct_gtx_total);
  chk "counts nonneg"
    (List.for_all
       (fun v -> v >= 0.0)
       [
         c.ct_gtx_coalesced; c.ct_gtx_uncoalesced; c.ct_bytes_global;
         c.ct_gslot_cycles; c.ct_lat_tx; c.ct_local_accesses;
         c.ct_bank_replays; c.ct_bytes_local; c.ct_const_broadcast;
         c.ct_const_serialized; c.ct_bytes_constant; c.ct_tex_fetches;
         c.ct_bytes_image; c.ct_flops; c.ct_issue_cycles;
       ]);
  (* the seconds the counters carry are the breakdown's, verbatim *)
  check_close (name ^ ": ct_total = bd_total") c.ct_total_s bd.Model.bd_total_s;
  check_close (name ^ ": ct_compute = bd_compute") c.ct_compute_s
    bd.Model.bd_compute_s;
  check_close (name ^ ": global+latency = bd_global")
    (c.ct_global_s +. c.ct_latency_s)
    bd.Model.bd_global_s;
  check_close (name ^ ": ct_local = bd_local") c.ct_local_s bd.Model.bd_local_s;
  (* full reconstruction from the raw counts, 1e-6 relative *)
  let compute, global, lat, local, constant, image, total = reconstruct d c in
  check_close (name ^ ": reconstructed compute") compute bd.Model.bd_compute_s;
  check_close (name ^ ": reconstructed global+lat") (global +. lat)
    bd.Model.bd_global_s;
  check_close (name ^ ": reconstructed local") local bd.Model.bd_local_s;
  check_close (name ^ ": reconstructed constant") constant
    bd.Model.bd_constant_s;
  check_close (name ^ ": reconstructed image") image bd.Model.bd_image_s;
  check_close (name ^ ": reconstructed total") total bd.Model.bd_total_s

(* every registry benchmark x every device, under the shipped best
   config *)
let test_registry_consistency () =
  List.iter
    (fun (b : B.t) ->
      let p = E.prepare ~quick:true b in
      let ds = p.E.p_compiled.Lime_gpu.Pipeline.cp_decisions in
      let prof = E.profile_of p ds in
      let bindings = E.bindings_of p ds in
      List.iter
        (fun (d : Device.t) ->
          let bd, c = Model.kernel_time_ex d prof bindings in
          check_counters
            (Printf.sprintf "%s/%s" b.B.name d.Device.name)
            d bd c)
        Device.all)
    Lime_benchmarks.Registry.all

(* ------------------------------------------------------------------ *)
(* QCheck: the invariants hold across random shapes, devices and        *)
(* memory configurations, not just the shipped best configs.            *)
(* ------------------------------------------------------------------ *)

let nbody_kernel =
  lazy
    (let c = Lime_benchmarks.Registry.compile Lime_benchmarks.Nbody.single in
     c.Lime_gpu.Pipeline.cp_kernel)

let configs =
  [
    Lime_gpu.Memopt.config_global;
    Lime_gpu.Memopt.config_constant;
    Lime_gpu.Memopt.config_local_noconflict_vector;
    Lime_gpu.Memopt.config_image;
  ]

let gen_case =
  QCheck.Gen.(
    triple (int_range 32 16384)
      (int_range 0 (List.length Device.all - 1))
      (int_range 0 (List.length configs - 1)))

let arb_case =
  QCheck.make gen_case ~print:(fun (n, di, ci) ->
      Printf.sprintf "n=%d device=%d config=%d" n di ci)

let qcheck_invariants =
  Testutil.to_alcotest
    (QCheck.Test.make ~count:120 ~name:"counter invariants under random cases"
       arb_case (fun (n, di, ci) ->
         let k = Lazy.force nbody_kernel in
         let d = List.nth Device.all di in
         let cfg = List.nth configs ci in
         let ds = Lime_gpu.Memopt.optimize cfg k in
         let shapes = [ ("particles", [| n; 4 |]) ] in
         let prof = Profile.profile k ds ~shapes ~scalars:[] in
         let bindings =
           [
             Model.binding_of_shape ~name:"particles" ~elem:Lime_ir.Ir.SFloat
               ~shape:[| n; 4 |]
               (Lime_gpu.Memopt.placement_for ds "particles");
           ]
         in
         let bd, c = Model.kernel_time_ex d prof bindings in
         let open Counters in
         let _, _, _, _, _, _, total = reconstruct d c in
         c.ct_occupancy > 0.0
         && c.ct_occupancy <= 1.0
         && rel_close ~tol:1e-9
              (c.ct_gtx_coalesced +. c.ct_gtx_uncoalesced)
              c.ct_gtx_total
         && c.ct_tex_hits <= c.ct_tex_fetches +. 1e-9
         && c.ct_cache_hits >= 0.0
         && c.ct_cache_misses >= 0.0
         && rel_close total bd.Model.bd_total_s
         && rel_close c.ct_total_s bd.Model.bd_total_s))

(* classify/limiter sanity on hand-built extremes *)
let base =
  {
    Counters.ct_device = "test";
    ct_peak_bw = 100e9;
    ct_peak_flops = 1e12;
    ct_items = 1024.0;
    ct_work_groups = 4.0;
    ct_warps = 32.0;
    ct_occupancy = 0.5;
    ct_flops = 1e6;
    ct_issue_cycles = 1e6;
    ct_access_slots = 0.0;
    ct_reduce_elems = 0.0;
    ct_gtx_total = 10.0;
    ct_gtx_coalesced = 10.0;
    ct_gtx_uncoalesced = 0.0;
    ct_bytes_global = 1e5;
    ct_gslot_cycles = 0.0;
    ct_lat_tx = 0.0;
    ct_cache_hits = 0.0;
    ct_cache_misses = 0.0;
    ct_local_accesses = 0.0;
    ct_bank_replays = 0.0;
    ct_bytes_local = 0.0;
    ct_const_broadcast = 0.0;
    ct_const_serialized = 0.0;
    ct_bytes_constant = 0.0;
    ct_tex_fetches = 0.0;
    ct_tex_hits = 0.0;
    ct_tex_misses = 0.0;
    ct_bytes_image = 0.0;
    ct_compute_s = 1e-3;
    ct_global_s = 1e-4;
    ct_local_s = 0.0;
    ct_constant_s = 0.0;
    ct_image_s = 0.0;
    ct_latency_s = 0.0;
    ct_launch_s = 1e-5;
    ct_reduce_s = 0.0;
    ct_total_s = 1.11e-3;
  }

let test_classify () =
  let open Counters in
  Alcotest.(check string)
    "compute-bound" "compute-bound"
    (roofline_name (classify base));
  Alcotest.(check string)
    "memory-bound" "memory-bound"
    (roofline_name (classify { base with ct_global_s = 2e-3 }));
  Alcotest.(check string)
    "latency-bound" "latency-bound"
    (roofline_name (classify { base with ct_latency_s = 5e-3 }));
  Alcotest.(check string) "limiter compute" "compute" (limiter base);
  Alcotest.(check string)
    "limiter local" "local-memory"
    (limiter { base with ct_local_s = 0.5 })

let test_add () =
  let open Counters in
  let a = base in
  let b = { base with ct_warps = 96.0; ct_occupancy = 1.0 } in
  let s = add a b in
  Alcotest.(check (float 1e-9)) "warps sum" 128.0 s.ct_warps;
  Alcotest.(check (float 1e-9))
    "occupancy warp-weighted"
    ((0.5 *. 32.0 +. 1.0 *. 96.0) /. 128.0)
    s.ct_occupancy;
  Alcotest.(check (float 1e-9)) "flops sum" 2e6 s.ct_flops;
  Alcotest.(check string) "device kept" "test" s.ct_device;
  Alcotest.(check string) "mixed devices" "<mixed>"
    (add a { b with ct_device = "other" }).ct_device

(* ------------------------------------------------------------------ *)
(* Golden report                                                        *)
(* ------------------------------------------------------------------ *)

let test_report_golden () =
  let k = Lazy.force nbody_kernel in
  let ds =
    Lime_gpu.Memopt.optimize Lime_benchmarks.Nbody.single.B.best_config k
  in
  let shapes = [ ("particles", [| 1024; 4 |]) ] in
  let prof = Profile.profile k ds ~shapes ~scalars:[] in
  let bindings =
    [
      Model.binding_of_shape ~name:"particles" ~elem:Lime_ir.Ir.SFloat
        ~shape:[| 1024; 4 |]
        (Lime_gpu.Memopt.placement_for ds "particles");
    ]
  in
  let _, c = Model.kernel_time_ex Device.gtx8800 prof bindings in
  let actual = Counters.report c in
  let golden =
    "hardware counters \xe2\x80\x94 NVidia GeForce GTX 8800\n\
    \  work items                           1024\n\
    \  work groups                             4\n\
    \  warps launched                         32\n\
    \  occupancy                            0.12\n\
    \  global memory:\n\
    \    transactions                       2048  (coalesced 2048, uncoalesced 0)\n\
    \    bytes moved                       256KB\n\
    \    cache hits                            0  (0 misses)\n\
    \    latency-exposed tx                    0\n\
    \  local memory:\n\
    \    accesses                    2.88461e+06\n\
    \    bank-conflict replays                 0\n\
    \  constant memory:\n\
    \    broadcast reads                       0  (0 serialized)\n\
    \  image:\n\
    \    texture fetches                       0  (0 hits, 0 misses)\n\
    \  time attribution (s):\n\
    \    compute                       0.0003095   96.3%\n\
    \    global                        3.034e-06    0.9%\n\
    \    local                         1.669e-05    5.2%\n\
    \    constant                              0    0.0%\n\
    \    image                                 0    0.0%\n\
    \    latency                               0    0.0%\n\
    \    launch+reduce                   1.2e-05    3.7%\n\
     roofline: compute-bound (limited by compute)\n\
    \  arithmetic intensity                   80 flop/byte\n\
    \  achieved bandwidth            0.8154 GB/s of 86.4 peak  (0.9%)\n\
    \  achieved compute               65.24 GFLOP/s of 172.8 peak  (37.8%)\n"
  in
  Alcotest.(check string) "nbody/gtx8800 report" golden actual

(* ------------------------------------------------------------------ *)
(* BENCH JSON: round-trip and regression diff                           *)
(* ------------------------------------------------------------------ *)

let quick_run = lazy (J.collect ~quick:true ~seed:1 ~name:"roundtrip" ())

let test_json_roundtrip () =
  let run = Lazy.force quick_run in
  Alcotest.(check bool) "has entries" true (List.length run.J.r_entries > 0);
  match J.of_json (J.to_json run) with
  | Error msg -> Alcotest.failf "round-trip parse failed: %s" msg
  | Ok run' ->
      Alcotest.(check string) "name" run.J.r_name run'.J.r_name;
      Alcotest.(check bool) "quick" run.J.r_quick run'.J.r_quick;
      Alcotest.(check int) "seed" run.J.r_seed run'.J.r_seed;
      Alcotest.(check int) "entry count"
        (List.length run.J.r_entries)
        (List.length run'.J.r_entries);
      List.iter2
        (fun (e : J.entry) (e' : J.entry) ->
          let close l a b =
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s %s" e.J.e_bench e.J.e_device l)
              true
              (rel_close ~tol:1e-8 a b)
          in
          Alcotest.(check string) "bench" e.J.e_bench e'.J.e_bench;
          Alcotest.(check string) "device" e.J.e_device e'.J.e_device;
          Alcotest.(check string) "roofline" e.J.e_roofline e'.J.e_roofline;
          close "time" e.J.e_time_s e'.J.e_time_s;
          close "kernel" e.J.e_kernel_s e'.J.e_kernel_s;
          close "speedup" e.J.e_speedup e'.J.e_speedup;
          close "occupancy" e.J.e_occupancy e'.J.e_occupancy;
          close "bank_replays" e.J.e_bank_replays e'.J.e_bank_replays;
          close "intensity" e.J.e_intensity e'.J.e_intensity)
        run.J.r_entries run'.J.r_entries

let test_json_rejects_bad () =
  (match J.of_json "{ not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted malformed JSON");
  (match
     J.of_json
       {|{"schema": "other", "version": 1, "name": "x", "quick": false, "seed": 1, "results": []}|}
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted wrong schema name");
  match
    J.of_json
      {|{"schema": "lime-bench", "version": 99, "name": "x", "quick": false, "seed": 1, "results": []}|}
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a future schema version"

let entry b d t =
  {
    J.e_bench = b;
    e_device = d;
    e_time_s = t;
    e_kernel_s = t /. 2.0;
    e_speedup = 1.0;
    e_occupancy = 0.5;
    e_bank_replays = 0.0;
    e_intensity = 1.0;
    e_roofline = "memory-bound";
  }

let mkrun entries =
  { J.r_name = "t"; r_quick = true; r_seed = 1; r_entries = entries }

let test_diff_regressions () =
  let baseline = mkrun [ entry "a" "d1" 1.0; entry "b" "d1" 1.0 ] in
  (* identical: clean *)
  Alcotest.(check int) "self-diff clean" 0
    (List.length (J.diff ~baseline ~current:baseline ()));
  (* within threshold: clean *)
  let slight = mkrun [ entry "a" "d1" 1.05; entry "b" "d1" 1.0 ] in
  Alcotest.(check int) "5% within 10% threshold" 0
    (List.length (J.diff ~baseline ~current:slight ()));
  (* injected synthetic regression: one entry 1.5x slower *)
  let slower = mkrun [ entry "a" "d1" 1.5; entry "b" "d1" 1.0 ] in
  (match J.diff ~baseline ~current:slower () with
  | [ { J.rg_bench = "a"; rg_device = "d1"; rg_kind = `Slower r } ] ->
      Alcotest.(check bool) "ratio ~1.5" true (rel_close ~tol:1e-9 r 1.5)
  | regs ->
      Alcotest.failf "expected one Slower regression, got %d"
        (List.length regs));
  (* missing entry *)
  let missing = mkrun [ entry "a" "d1" 1.0 ] in
  (match J.diff ~baseline ~current:missing () with
  | [ { J.rg_bench = "b"; rg_kind = `Missing; _ } ] -> ()
  | _ -> Alcotest.fail "expected one Missing regression");
  (* faster + brand-new entries are not regressions *)
  let better =
    mkrun [ entry "a" "d1" 0.5; entry "b" "d1" 1.0; entry "c" "d1" 9.0 ]
  in
  Alcotest.(check int) "improvements are clean" 0
    (List.length (J.diff ~baseline ~current:better ()));
  (* custom threshold *)
  Alcotest.(check int) "tighter threshold catches 5%" 1
    (List.length (J.diff ~threshold:0.01 ~baseline ~current:slight ()))

(* the CLI: an injected regression must make --baseline exit nonzero *)
let bench_exe =
  List.find_opt Sys.file_exists
    [ "../bench/main.exe"; "bench/main.exe"; "_build/default/bench/main.exe" ]

let test_cli_baseline_regression () =
  match bench_exe with
  | None -> Alcotest.skip ()
  | Some exe ->
      (* doctor a baseline claiming everything used to be 10x faster *)
      let run = Lazy.force quick_run in
      let doctored =
        {
          run with
          J.r_entries =
            List.map
              (fun (e : J.entry) ->
                { e with J.e_time_s = e.J.e_time_s /. 10.0 })
              run.J.r_entries;
        }
      in
      let file = Filename.temp_file "bench_baseline" ".json" in
      J.write_file file doctored;
      let out = Filename.temp_file "bench" ".out" in
      let code =
        Sys.command
          (Printf.sprintf "%s --quick --seed 1 --baseline %s > %s 2>&1"
             (Filename.quote exe) (Filename.quote file) (Filename.quote out))
      in
      let text = In_channel.with_open_text out In_channel.input_all in
      Sys.remove file;
      Sys.remove out;
      Alcotest.(check int) "regression exit code" 1 code;
      Alcotest.(check bool) "regressions reported" true
        (Lime_support.Util.contains_substring ~sub:"regression" text)

let () =
  Alcotest.run "counters"
    [
      ( "consistency",
        [
          Alcotest.test_case "registry x devices, 1e-6" `Quick
            test_registry_consistency;
          qcheck_invariants;
        ] );
      ( "derived",
        [
          Alcotest.test_case "roofline classify + limiter" `Quick test_classify;
          Alcotest.test_case "aggregation" `Quick test_add;
          Alcotest.test_case "golden report" `Quick test_report_golden;
        ] );
      ( "bench json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects bad input" `Quick test_json_rejects_bad;
          Alcotest.test_case "regression diff" `Quick test_diff_regressions;
          Alcotest.test_case "--baseline exits nonzero" `Slow
            test_cli_baseline_regression;
        ] );
    ]
