(** Tests for the span tracer: nesting/ordering invariants, Chrome
    trace-event export well-formedness, and the end-to-end instrumentation
    of the pipeline and the task-graph engine. *)

module Trace = Lime_service.Trace
module Service = Lime_service.Service
module Pipeline = Lime_gpu.Pipeline
module Engine = Lime_runtime.Engine
module Metrics = Lime_service.Metrics

let contains = Lime_support.Util.contains_substring

(* ------------------------------------------------------------------ *)
(* A tiny deterministic clock                                          *)
(* ------------------------------------------------------------------ *)

let ticking ?(step = 1e-3) () =
  let t = ref 0.0 in
  fun () ->
    t := !t +. step;
    !t

(* ------------------------------------------------------------------ *)
(* Span recording invariants                                           *)
(* ------------------------------------------------------------------ *)

let test_nesting () =
  let tr = Trace.create ~clock:(ticking ()) () in
  Trace.begin_span tr ~cat:"a" "outer";
  Trace.begin_span tr ~cat:"b" "inner";
  Trace.end_span tr "inner";
  Trace.end_span tr "outer";
  Alcotest.(check int) "balanced" 0 (Trace.open_depth tr);
  match Trace.spans tr with
  | [ outer; inner ] ->
      Alcotest.(check string) "outer name" "outer" outer.Trace.sp_name;
      Alcotest.(check int) "outer is a root" (-1) outer.Trace.sp_parent;
      Alcotest.(check int) "inner nests under outer" outer.Trace.sp_id
        inner.Trace.sp_parent;
      Alcotest.(check bool) "inner begins after outer" true
        (inner.Trace.sp_begin_us > outer.Trace.sp_begin_us);
      Alcotest.(check bool) "inner ends before outer" true
        (inner.Trace.sp_end_us < outer.Trace.sp_end_us);
      Alcotest.(check bool) "spans have positive duration" true
        (outer.Trace.sp_end_us > outer.Trace.sp_begin_us)
  | spans ->
      Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_end_closes_abandoned_children () =
  let tr = Trace.create ~clock:(ticking ()) () in
  Trace.begin_span tr "outer";
  Trace.begin_span tr "child";
  (* ending the outer span must close the still-open child too *)
  Trace.end_span tr "outer";
  Alcotest.(check int) "balanced" 0 (Trace.open_depth tr);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (s.Trace.sp_name ^ " closed") true
        (s.Trace.sp_end_us >= 0.0))
    (Trace.spans tr)

let test_end_unknown_name_ignored () =
  let tr = Trace.create ~clock:(ticking ()) () in
  Trace.begin_span tr "only";
  Trace.end_span tr "never-opened";
  Alcotest.(check int) "still open" 1 (Trace.open_depth tr);
  Trace.end_span tr "only";
  Alcotest.(check int) "balanced" 0 (Trace.open_depth tr)

let test_disabled_records_nothing () =
  let tr = Trace.create ~clock:(ticking ()) () in
  Trace.set_enabled tr false;
  Trace.with_span tr "invisible" (fun () -> ());
  Trace.complete tr ~dur_us:5.0 "also-invisible";
  Alcotest.(check int) "no spans" 0 (List.length (Trace.spans tr))

let test_with_span_exception_safe () =
  let tr = Trace.create ~clock:(ticking ()) () in
  (try Trace.with_span tr "boom" (fun () -> failwith "x") with _ -> ());
  Alcotest.(check int) "balanced after raise" 0 (Trace.open_depth tr);
  match Trace.spans tr with
  | [ s ] -> Alcotest.(check bool) "closed" true (s.Trace.sp_end_us >= 0.0)
  | _ -> Alcotest.fail "expected one span"

let test_monotonic_now () =
  (* a constant clock still yields strictly increasing timestamps *)
  let tr = Trace.create ~clock:(fun () -> 1.0) () in
  let a = Trace.now_us tr in
  let b = Trace.now_us tr in
  let c = Trace.now_us tr in
  Alcotest.(check bool) "strictly increasing" true (a < b && b < c)

(* ------------------------------------------------------------------ *)
(* Chrome JSON export                                                  *)
(* ------------------------------------------------------------------ *)

(* a micro JSON validator: brackets/braces balance outside of strings,
   strings close, and no raw control characters appear *)
let check_json_well_formed json =
  let depth = ref 0 and in_str = ref false and escaped = ref false in
  String.iter
    (fun ch ->
      if !in_str then
        if !escaped then escaped := false
        else if ch = '\\' then escaped := true
        else if ch = '"' then in_str := false
        else if Char.code ch < 0x20 then
          Alcotest.failf "raw control char %d inside a JSON string"
            (Char.code ch)
        else ()
      else
        match ch with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then Alcotest.fail "unbalanced brackets"
        | _ -> ())
    json;
  Alcotest.(check bool) "string closed" false !in_str;
  Alcotest.(check int) "brackets balanced" 0 !depth

let test_chrome_export_shape () =
  let tr = Trace.create ~clock:(ticking ()) () in
  Trace.with_span tr ~cat:"c" ~args:[ ("k", "v\"quoted\\") ] "root"
    (fun () -> Trace.complete tr ~cat:"m" ~dur_us:3.0 "leaf");
  let json = Trace.to_chrome_json tr in
  check_json_well_formed json;
  Alcotest.(check bool) "has traceEvents" true
    (contains ~sub:"\"traceEvents\"" json);
  Alcotest.(check bool) "complete events" true (contains ~sub:"\"ph\":\"X\"" json);
  Alcotest.(check bool) "args escaped" true
    (contains ~sub:"\\\"quoted\\\\" json);
  Alcotest.(check bool) "names exported" true
    (contains ~sub:"\"root\"" json && contains ~sub:"\"leaf\"" json)

let test_chrome_export_monotonic_ts () =
  let tr = Trace.create ~clock:(ticking ()) () in
  for i = 0 to 4 do
    Trace.with_span tr (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  let json = Trace.to_chrome_json tr in
  (* pull every "ts":N field out and check the export order is sorted *)
  let ts = ref [] in
  let re_prefix = "\"ts\":" in
  let n = String.length json in
  let i = ref 0 in
  while !i < n - String.length re_prefix do
    if String.sub json !i (String.length re_prefix) = re_prefix then begin
      let j = ref (!i + String.length re_prefix) in
      let start = !j in
      while
        !j < n && (json.[!j] = '.' || json.[!j] = '-'
                  || (json.[!j] >= '0' && json.[!j] <= '9'))
      do
        incr j
      done;
      ts := float_of_string (String.sub json start (!j - start)) :: !ts;
      i := !j
    end
    else incr i
  done;
  let ts = List.rev !ts in
  Alcotest.(check bool) "at least 5 events" true (List.length ts >= 5);
  let rec sorted = function
    | a :: (b :: _ as rest) -> a <= b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "timestamps sorted" true (sorted ts)

let test_open_spans_closed_on_export () =
  let tr = Trace.create ~clock:(ticking ()) () in
  Trace.begin_span tr "dangling";
  let json = Trace.to_chrome_json tr in
  check_json_well_formed json;
  Alcotest.(check bool) "open span exported" true
    (contains ~sub:"\"dangling\"" json);
  Alcotest.(check bool) "no negative durations" false
    (contains ~sub:"\"dur\":-" json)

(* ------------------------------------------------------------------ *)
(* End-to-end instrumentation                                          *)
(* ------------------------------------------------------------------ *)

let nbody = Lime_benchmarks.Nbody.single

let traced_run () =
  let tr = Trace.create () in
  Trace.with_observers ~tracer:tr (fun () ->
      let c =
        Pipeline.compile ~worker:nbody.Lime_benchmarks.Bench_def.worker
          nbody.Lime_benchmarks.Bench_def.source
      in
      ignore
        (Engine.run_program Engine.default_config c.Pipeline.cp_module
           ~cls:"NBodySim" ~meth:"main"
           [ Lime_ir.Value.VInt 32; Lime_ir.Value.VInt 1 ]));
  tr

let test_pipeline_phases_traced () =
  let tr = traced_run () in
  let names = List.map (fun s -> s.Trace.sp_name) (Trace.spans tr) in
  List.iter
    (fun phase ->
      Alcotest.(check bool)
        ("pipeline." ^ phase ^ " present")
        true
        (List.mem ("pipeline." ^ phase) names))
    [
      "compile"; "lex"; "parse"; "typecheck"; "lower"; "extract"; "simplify";
      "memopt"; "codegen"; "clcheck";
    ];
  (* phases nest under pipeline.compile *)
  let spans = Trace.spans tr in
  let compile =
    List.find (fun s -> s.Trace.sp_name = "pipeline.compile") spans
  in
  let parse = List.find (fun s -> s.Trace.sp_name = "pipeline.parse") spans in
  Alcotest.(check int) "parse under compile" compile.Trace.sp_id
    parse.Trace.sp_parent

let test_firing_has_all_comm_legs () =
  let tr = traced_run () in
  let spans = Trace.spans tr in
  let device_firing =
    List.find
      (fun s ->
        s.Trace.sp_name = "firing.NBody.computeForces"
        && List.assoc_opt "device" s.Trace.sp_args = Some "true")
      spans
  in
  let legs =
    List.filter
      (fun s -> s.Trace.sp_parent = device_firing.Trace.sp_id)
      spans
    |> List.map (fun s -> s.Trace.sp_name)
  in
  List.iter
    (fun leg ->
      Alcotest.(check bool) ("comm." ^ leg) true (List.mem ("comm." ^ leg) legs))
    [ "java_marshal"; "jni"; "c_marshal"; "setup"; "pcie"; "kernel"; "host" ];
  (* the device kernel leg carries the launch attributes *)
  let kernel =
    List.find
      (fun s ->
        s.Trace.sp_name = "comm.kernel"
        && s.Trace.sp_parent = device_firing.Trace.sp_id)
      spans
  in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " attr present") true
        (List.mem_assoc k kernel.Trace.sp_args))
    [ "device"; "work_items"; "occupancy"; "bank_conflict_degree" ];
  (* legs lie inside the firing on the model timeline *)
  List.iter
    (fun s ->
      if s.Trace.sp_parent = device_firing.Trace.sp_id then begin
        Alcotest.(check bool) "leg starts within firing" true
          (s.Trace.sp_begin_us >= device_firing.Trace.sp_begin_us);
        Alcotest.(check bool) "leg ends within firing" true
          (s.Trace.sp_end_us <= device_firing.Trace.sp_end_us +. 1e-6)
      end)
    spans

let test_observers_uninstalled_after () =
  let tr = traced_run () in
  let before = List.length (Trace.spans tr) in
  ignore
    (Pipeline.compile ~worker:nbody.Lime_benchmarks.Bench_def.worker
       nbody.Lime_benchmarks.Bench_def.source);
  Alcotest.(check int) "no spans recorded after with_observers" before
    (List.length (Trace.spans tr))

let test_metrics_and_trace_compose () =
  (* both observers keyed => enabling tracing must not disable metrics *)
  let reg = Metrics.create () in
  Service.instrument ~registry:reg ();
  let tr = Trace.create () in
  Fun.protect
    ~finally:(fun () -> Service.uninstrument ())
    (fun () ->
      Trace.with_observers ~tracer:tr (fun () ->
          ignore
            (Pipeline.compile ~worker:nbody.Lime_benchmarks.Bench_def.worker
               nbody.Lime_benchmarks.Bench_def.source));
      Alcotest.(check int) "metrics still counted" 1
        (Metrics.counter_value (Metrics.counter reg "lime_compile_total"));
      Alcotest.(check bool) "trace recorded" true
        (List.exists
           (fun s -> s.Trace.sp_name = "pipeline.compile")
           (Trace.spans tr)))

let test_summary_and_flame () =
  let tr = traced_run () in
  let summary = Trace.summary tr in
  Alcotest.(check bool) "summary mentions pipeline.compile" true
    (contains ~sub:"pipeline.compile" summary);
  let flame = Trace.flame tr in
  Alcotest.(check bool) "flame indents phases under compile" true
    (contains ~sub:"\n  pipeline.lex" flame
    || contains ~sub:"\n    pipeline.lex" flame);
  Alcotest.(check bool) "flame shows a firing" true
    (contains ~sub:"firing.NBody.computeForces" flame)

(* ------------------------------------------------------------------ *)
(* Cross-process hand-off: retention, collect, graft, span codec       *)
(* ------------------------------------------------------------------ *)

let test_retention_ring () =
  let tr = Trace.create ~clock:(ticking ()) () in
  Trace.set_retention tr 64;
  Alcotest.(check int) "retention readable" 64 (Trace.retention tr);
  (* an open span predating the flood must survive every eviction — the
     stack still references it *)
  Trace.begin_span tr "long-lived";
  for i = 1 to 200 do
    Trace.complete tr ~dur_us:1.0 (Printf.sprintf "s%d" i)
  done;
  let spans = Trace.spans tr in
  Alcotest.(check bool) "buffer bounded" true (List.length spans <= 65);
  Alcotest.(check bool) "drops counted" true (Trace.dropped_spans tr > 0);
  Alcotest.(check int) "kept + dropped = recorded" 201
    (List.length spans + Trace.dropped_spans tr);
  Alcotest.(check bool) "open span survives eviction" true
    (List.exists (fun s -> s.Trace.sp_name = "long-lived") spans);
  (* the ring drops the oldest closed spans: the newest completion is
     always retained *)
  Alcotest.(check bool) "newest span retained" true
    (List.exists (fun s -> s.Trace.sp_name = "s200") spans);
  Alcotest.(check bool) "oldest closed span evicted" false
    (List.exists (fun s -> s.Trace.sp_name = "s1") spans)

let test_retention_zero_unbounded () =
  let tr = Trace.create ~clock:(ticking ()) () in
  Trace.set_retention tr 0;
  for i = 1 to 300 do
    Trace.complete tr ~dur_us:1.0 (Printf.sprintf "s%d" i)
  done;
  Alcotest.(check int) "nothing evicted" 300 (List.length (Trace.spans tr));
  Alcotest.(check int) "nothing counted dropped" 0 (Trace.dropped_spans tr)

let test_collect_watermark () =
  let tr = Trace.create ~clock:(ticking ()) () in
  Trace.complete tr ~dur_us:1.0 "before";
  let r, got =
    Trace.collect tr (fun () ->
        Trace.with_span tr "during" (fun () ->
            Trace.complete tr ~dur_us:1.0 "child");
        42)
  in
  Alcotest.(check int) "result threaded through" 42 r;
  Alcotest.(check (list string)) "only spans begun inside f, begin order"
    [ "during"; "child" ]
    (List.map (fun s -> s.Trace.sp_name) got);
  (* and the collected spans are still in the tracer's own buffer *)
  Alcotest.(check int) "buffer keeps everything" 3
    (List.length (Trace.spans tr))

let mk_span ?(cat = "r") ?(args = []) id parent b e name =
  {
    Trace.sp_id = id;
    sp_parent = parent;
    sp_name = name;
    sp_cat = cat;
    sp_args = args;
    sp_begin_us = b;
    sp_end_us = e;
  }

let test_graft_remints_and_reparents () =
  let tr = Trace.create ~clock:(ticking ()) () in
  Trace.begin_span tr "local.parent";
  let parent = Trace.current_span_id tr in
  let remote =
    [
      mk_span 5 (-1) 0.0 10.0 "remote.root";
      mk_span 6 5 2.0 8.0 "remote.child";
      mk_span 7 99 3.0 4.0 "remote.dangling";
      (* hostile timestamps: negative begin, end before begin *)
      mk_span 8 (-1) (-5.0) (-6.0) "remote.clamped";
    ]
  in
  let n = Trace.graft tr ~at_us:100.0 ~parent remote in
  Alcotest.(check int) "all spans grafted" 4 n;
  let spans = Trace.spans tr in
  let find name = List.find (fun s -> s.Trace.sp_name = name) spans in
  let root = find "remote.root" in
  let child = find "remote.child" in
  let dangling = find "remote.dangling" in
  let clamped = find "remote.clamped" in
  Alcotest.(check int) "foreign root hangs off the local parent" parent
    root.Trace.sp_parent;
  Alcotest.(check int) "child rewired through the id map" root.Trace.sp_id
    child.Trace.sp_parent;
  Alcotest.(check int) "dangling parent attaches to the local parent"
    parent dangling.Trace.sp_parent;
  (* remote ids are re-minted into the local id space *)
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (s.Trace.sp_name ^ " id re-minted") false
        (List.mem s.Trace.sp_id [ 5; 6; 7; 8 ]))
    [ root; child; dangling; clamped ];
  Alcotest.(check (float 1e-9)) "timestamps offset by at_us" 102.0
    child.Trace.sp_begin_us;
  Alcotest.(check (float 1e-9)) "negative begin clamps to the base" 100.0
    clamped.Trace.sp_begin_us;
  Alcotest.(check bool) "end never precedes begin" true
    (clamped.Trace.sp_end_us >= clamped.Trace.sp_begin_us);
  (* the clock advanced past the last grafted end: new spans come after *)
  Alcotest.(check bool) "clock advanced past the graft" true
    (Trace.now_us tr > 110.0)

(* Grafting an empty span buffer (a daemon reply that recorded nothing,
   or a zero-length ar_spans field) must be a true no-op: nothing
   inserted, the buffer untouched, and the local clock still usable. *)
let test_graft_empty_buffer () =
  let tr = Trace.create ~clock:(ticking ()) () in
  Trace.begin_span tr "local.parent";
  let parent = Trace.current_span_id tr in
  let before = List.length (Trace.spans tr) in
  let n = Trace.graft tr ~at_us:100.0 ~parent [] in
  Alcotest.(check int) "zero spans grafted" 0 n;
  Alcotest.(check int) "buffer untouched" before (List.length (Trace.spans tr));
  (* the tracer keeps working normally afterwards *)
  Trace.complete tr ~dur_us:1.0 "after";
  let spans = Trace.spans tr in
  Alcotest.(check bool) "later spans still record" true
    (List.exists (fun s -> s.Trace.sp_name = "after") spans);
  Alcotest.(check bool) "no foreign spans appeared" true
    (List.for_all
       (fun s -> s.Trace.sp_name = "local.parent" || s.Trace.sp_name = "after")
       spans)

let test_span_codec_roundtrip () =
  let spans =
    [
      mk_span ~cat:"server" 0 (-1) 0.0 12.5 "server.request";
      mk_span ~args:[ ("k", "v"); ("empty", "") ] 1 0 1.25 3.75 "pipeline";
      mk_span ~cat:"" 0xFFFF_FFFE 1 2.0 2.0 "zero-width";
    ]
  in
  (match Trace.spans_of_wire (Trace.spans_to_wire spans) with
  | Ok got -> Alcotest.(check bool) "roundtrip exact" true (got = spans)
  | Error e -> Alcotest.failf "roundtrip rejected: %s" e);
  match Trace.spans_of_wire (Trace.spans_to_wire []) with
  | Ok [] -> ()
  | _ -> Alcotest.fail "empty buffer must roundtrip"

let test_span_codec_total () =
  let buf =
    Trace.spans_to_wire
      [
        mk_span ~args:[ ("k", "v") ] 1 (-1) 0.0 5.0 "a";
        mk_span 2 1 1.0 2.0 "b";
      ]
  in
  (* every proper prefix is a clean Error, never an exception *)
  for cut = 0 to String.length buf - 1 do
    match Trace.spans_of_wire (String.sub buf 0 cut) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "prefix of %d/%d bytes accepted" cut
                (String.length buf)
  done;
  (match Trace.spans_of_wire (buf ^ "\x00") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing bytes accepted");
  (* a foreign format version is refused outright *)
  let bad_version = "\x02" ^ String.sub buf 1 (String.length buf - 1) in
  (match Trace.spans_of_wire bad_version with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown format version accepted");
  (* a hostile span count is refused before any per-span reads *)
  (match Trace.spans_of_wire "\x01\xFF\xFF\xFF\xFF" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "hostile span count accepted");
  (* NaN timestamps do not survive decoding *)
  match
    Trace.spans_of_wire
      (Trace.spans_to_wire [ mk_span 1 (-1) Float.nan 1.0 "nan" ])
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "NaN timestamp accepted"

let () =
  Alcotest.run "trace"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_nesting;
          Alcotest.test_case "end closes abandoned children" `Quick
            test_end_closes_abandoned_children;
          Alcotest.test_case "end of unknown name ignored" `Quick
            test_end_unknown_name_ignored;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "with_span exception-safe" `Quick
            test_with_span_exception_safe;
          Alcotest.test_case "now_us strictly monotonic" `Quick
            test_monotonic_now;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "export shape" `Quick test_chrome_export_shape;
          Alcotest.test_case "timestamps sorted" `Quick
            test_chrome_export_monotonic_ts;
          Alcotest.test_case "open spans closed on export" `Quick
            test_open_spans_closed_on_export;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "pipeline phases traced" `Quick
            test_pipeline_phases_traced;
          Alcotest.test_case "firing has all comm legs" `Quick
            test_firing_has_all_comm_legs;
          Alcotest.test_case "observers uninstalled after" `Quick
            test_observers_uninstalled_after;
          Alcotest.test_case "metrics and trace compose" `Quick
            test_metrics_and_trace_compose;
          Alcotest.test_case "summary and flame" `Quick test_summary_and_flame;
        ] );
      ( "hand-off",
        [
          Alcotest.test_case "retention ring bounds the buffer" `Quick
            test_retention_ring;
          Alcotest.test_case "retention 0 means unbounded" `Quick
            test_retention_zero_unbounded;
          Alcotest.test_case "collect watermark" `Quick test_collect_watermark;
          Alcotest.test_case "graft re-mints and re-parents" `Quick
            test_graft_remints_and_reparents;
          Alcotest.test_case "graft of an empty span buffer" `Quick
            test_graft_empty_buffer;
          Alcotest.test_case "span codec roundtrip" `Quick
            test_span_codec_roundtrip;
          Alcotest.test_case "span codec is total" `Quick
            test_span_codec_total;
        ] );
    ]
