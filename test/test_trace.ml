(** Tests for the span tracer: nesting/ordering invariants, Chrome
    trace-event export well-formedness, and the end-to-end instrumentation
    of the pipeline and the task-graph engine. *)

module Trace = Lime_service.Trace
module Service = Lime_service.Service
module Pipeline = Lime_gpu.Pipeline
module Engine = Lime_runtime.Engine
module Metrics = Lime_service.Metrics

let contains = Lime_support.Util.contains_substring

(* ------------------------------------------------------------------ *)
(* A tiny deterministic clock                                          *)
(* ------------------------------------------------------------------ *)

let ticking ?(step = 1e-3) () =
  let t = ref 0.0 in
  fun () ->
    t := !t +. step;
    !t

(* ------------------------------------------------------------------ *)
(* Span recording invariants                                           *)
(* ------------------------------------------------------------------ *)

let test_nesting () =
  let tr = Trace.create ~clock:(ticking ()) () in
  Trace.begin_span tr ~cat:"a" "outer";
  Trace.begin_span tr ~cat:"b" "inner";
  Trace.end_span tr "inner";
  Trace.end_span tr "outer";
  Alcotest.(check int) "balanced" 0 (Trace.open_depth tr);
  match Trace.spans tr with
  | [ outer; inner ] ->
      Alcotest.(check string) "outer name" "outer" outer.Trace.sp_name;
      Alcotest.(check int) "outer is a root" (-1) outer.Trace.sp_parent;
      Alcotest.(check int) "inner nests under outer" outer.Trace.sp_id
        inner.Trace.sp_parent;
      Alcotest.(check bool) "inner begins after outer" true
        (inner.Trace.sp_begin_us > outer.Trace.sp_begin_us);
      Alcotest.(check bool) "inner ends before outer" true
        (inner.Trace.sp_end_us < outer.Trace.sp_end_us);
      Alcotest.(check bool) "spans have positive duration" true
        (outer.Trace.sp_end_us > outer.Trace.sp_begin_us)
  | spans ->
      Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_end_closes_abandoned_children () =
  let tr = Trace.create ~clock:(ticking ()) () in
  Trace.begin_span tr "outer";
  Trace.begin_span tr "child";
  (* ending the outer span must close the still-open child too *)
  Trace.end_span tr "outer";
  Alcotest.(check int) "balanced" 0 (Trace.open_depth tr);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (s.Trace.sp_name ^ " closed") true
        (s.Trace.sp_end_us >= 0.0))
    (Trace.spans tr)

let test_end_unknown_name_ignored () =
  let tr = Trace.create ~clock:(ticking ()) () in
  Trace.begin_span tr "only";
  Trace.end_span tr "never-opened";
  Alcotest.(check int) "still open" 1 (Trace.open_depth tr);
  Trace.end_span tr "only";
  Alcotest.(check int) "balanced" 0 (Trace.open_depth tr)

let test_disabled_records_nothing () =
  let tr = Trace.create ~clock:(ticking ()) () in
  Trace.set_enabled tr false;
  Trace.with_span tr "invisible" (fun () -> ());
  Trace.complete tr ~dur_us:5.0 "also-invisible";
  Alcotest.(check int) "no spans" 0 (List.length (Trace.spans tr))

let test_with_span_exception_safe () =
  let tr = Trace.create ~clock:(ticking ()) () in
  (try Trace.with_span tr "boom" (fun () -> failwith "x") with _ -> ());
  Alcotest.(check int) "balanced after raise" 0 (Trace.open_depth tr);
  match Trace.spans tr with
  | [ s ] -> Alcotest.(check bool) "closed" true (s.Trace.sp_end_us >= 0.0)
  | _ -> Alcotest.fail "expected one span"

let test_monotonic_now () =
  (* a constant clock still yields strictly increasing timestamps *)
  let tr = Trace.create ~clock:(fun () -> 1.0) () in
  let a = Trace.now_us tr in
  let b = Trace.now_us tr in
  let c = Trace.now_us tr in
  Alcotest.(check bool) "strictly increasing" true (a < b && b < c)

(* ------------------------------------------------------------------ *)
(* Chrome JSON export                                                  *)
(* ------------------------------------------------------------------ *)

(* a micro JSON validator: brackets/braces balance outside of strings,
   strings close, and no raw control characters appear *)
let check_json_well_formed json =
  let depth = ref 0 and in_str = ref false and escaped = ref false in
  String.iter
    (fun ch ->
      if !in_str then
        if !escaped then escaped := false
        else if ch = '\\' then escaped := true
        else if ch = '"' then in_str := false
        else if Char.code ch < 0x20 then
          Alcotest.failf "raw control char %d inside a JSON string"
            (Char.code ch)
        else ()
      else
        match ch with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then Alcotest.fail "unbalanced brackets"
        | _ -> ())
    json;
  Alcotest.(check bool) "string closed" false !in_str;
  Alcotest.(check int) "brackets balanced" 0 !depth

let test_chrome_export_shape () =
  let tr = Trace.create ~clock:(ticking ()) () in
  Trace.with_span tr ~cat:"c" ~args:[ ("k", "v\"quoted\\") ] "root"
    (fun () -> Trace.complete tr ~cat:"m" ~dur_us:3.0 "leaf");
  let json = Trace.to_chrome_json tr in
  check_json_well_formed json;
  Alcotest.(check bool) "has traceEvents" true
    (contains ~sub:"\"traceEvents\"" json);
  Alcotest.(check bool) "complete events" true (contains ~sub:"\"ph\":\"X\"" json);
  Alcotest.(check bool) "args escaped" true
    (contains ~sub:"\\\"quoted\\\\" json);
  Alcotest.(check bool) "names exported" true
    (contains ~sub:"\"root\"" json && contains ~sub:"\"leaf\"" json)

let test_chrome_export_monotonic_ts () =
  let tr = Trace.create ~clock:(ticking ()) () in
  for i = 0 to 4 do
    Trace.with_span tr (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  let json = Trace.to_chrome_json tr in
  (* pull every "ts":N field out and check the export order is sorted *)
  let ts = ref [] in
  let re_prefix = "\"ts\":" in
  let n = String.length json in
  let i = ref 0 in
  while !i < n - String.length re_prefix do
    if String.sub json !i (String.length re_prefix) = re_prefix then begin
      let j = ref (!i + String.length re_prefix) in
      let start = !j in
      while
        !j < n && (json.[!j] = '.' || json.[!j] = '-'
                  || (json.[!j] >= '0' && json.[!j] <= '9'))
      do
        incr j
      done;
      ts := float_of_string (String.sub json start (!j - start)) :: !ts;
      i := !j
    end
    else incr i
  done;
  let ts = List.rev !ts in
  Alcotest.(check bool) "at least 5 events" true (List.length ts >= 5);
  let rec sorted = function
    | a :: (b :: _ as rest) -> a <= b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "timestamps sorted" true (sorted ts)

let test_open_spans_closed_on_export () =
  let tr = Trace.create ~clock:(ticking ()) () in
  Trace.begin_span tr "dangling";
  let json = Trace.to_chrome_json tr in
  check_json_well_formed json;
  Alcotest.(check bool) "open span exported" true
    (contains ~sub:"\"dangling\"" json);
  Alcotest.(check bool) "no negative durations" false
    (contains ~sub:"\"dur\":-" json)

(* ------------------------------------------------------------------ *)
(* End-to-end instrumentation                                          *)
(* ------------------------------------------------------------------ *)

let nbody = Lime_benchmarks.Nbody.single

let traced_run () =
  let tr = Trace.create () in
  Trace.with_observers ~tracer:tr (fun () ->
      let c =
        Pipeline.compile ~worker:nbody.Lime_benchmarks.Bench_def.worker
          nbody.Lime_benchmarks.Bench_def.source
      in
      ignore
        (Engine.run_program Engine.default_config c.Pipeline.cp_module
           ~cls:"NBodySim" ~meth:"main"
           [ Lime_ir.Value.VInt 32; Lime_ir.Value.VInt 1 ]));
  tr

let test_pipeline_phases_traced () =
  let tr = traced_run () in
  let names = List.map (fun s -> s.Trace.sp_name) (Trace.spans tr) in
  List.iter
    (fun phase ->
      Alcotest.(check bool)
        ("pipeline." ^ phase ^ " present")
        true
        (List.mem ("pipeline." ^ phase) names))
    [
      "compile"; "lex"; "parse"; "typecheck"; "lower"; "extract"; "simplify";
      "memopt"; "codegen"; "clcheck";
    ];
  (* phases nest under pipeline.compile *)
  let spans = Trace.spans tr in
  let compile =
    List.find (fun s -> s.Trace.sp_name = "pipeline.compile") spans
  in
  let parse = List.find (fun s -> s.Trace.sp_name = "pipeline.parse") spans in
  Alcotest.(check int) "parse under compile" compile.Trace.sp_id
    parse.Trace.sp_parent

let test_firing_has_all_comm_legs () =
  let tr = traced_run () in
  let spans = Trace.spans tr in
  let device_firing =
    List.find
      (fun s ->
        s.Trace.sp_name = "firing.NBody.computeForces"
        && List.assoc_opt "device" s.Trace.sp_args = Some "true")
      spans
  in
  let legs =
    List.filter
      (fun s -> s.Trace.sp_parent = device_firing.Trace.sp_id)
      spans
    |> List.map (fun s -> s.Trace.sp_name)
  in
  List.iter
    (fun leg ->
      Alcotest.(check bool) ("comm." ^ leg) true (List.mem ("comm." ^ leg) legs))
    [ "java_marshal"; "jni"; "c_marshal"; "setup"; "pcie"; "kernel"; "host" ];
  (* the device kernel leg carries the launch attributes *)
  let kernel =
    List.find
      (fun s ->
        s.Trace.sp_name = "comm.kernel"
        && s.Trace.sp_parent = device_firing.Trace.sp_id)
      spans
  in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " attr present") true
        (List.mem_assoc k kernel.Trace.sp_args))
    [ "device"; "work_items"; "occupancy"; "bank_conflict_degree" ];
  (* legs lie inside the firing on the model timeline *)
  List.iter
    (fun s ->
      if s.Trace.sp_parent = device_firing.Trace.sp_id then begin
        Alcotest.(check bool) "leg starts within firing" true
          (s.Trace.sp_begin_us >= device_firing.Trace.sp_begin_us);
        Alcotest.(check bool) "leg ends within firing" true
          (s.Trace.sp_end_us <= device_firing.Trace.sp_end_us +. 1e-6)
      end)
    spans

let test_observers_uninstalled_after () =
  let tr = traced_run () in
  let before = List.length (Trace.spans tr) in
  ignore
    (Pipeline.compile ~worker:nbody.Lime_benchmarks.Bench_def.worker
       nbody.Lime_benchmarks.Bench_def.source);
  Alcotest.(check int) "no spans recorded after with_observers" before
    (List.length (Trace.spans tr))

let test_metrics_and_trace_compose () =
  (* both observers keyed => enabling tracing must not disable metrics *)
  let reg = Metrics.create () in
  Service.instrument ~registry:reg ();
  let tr = Trace.create () in
  Fun.protect
    ~finally:(fun () -> Service.uninstrument ())
    (fun () ->
      Trace.with_observers ~tracer:tr (fun () ->
          ignore
            (Pipeline.compile ~worker:nbody.Lime_benchmarks.Bench_def.worker
               nbody.Lime_benchmarks.Bench_def.source));
      Alcotest.(check int) "metrics still counted" 1
        (Metrics.counter_value (Metrics.counter reg "lime_compile_total"));
      Alcotest.(check bool) "trace recorded" true
        (List.exists
           (fun s -> s.Trace.sp_name = "pipeline.compile")
           (Trace.spans tr)))

let test_summary_and_flame () =
  let tr = traced_run () in
  let summary = Trace.summary tr in
  Alcotest.(check bool) "summary mentions pipeline.compile" true
    (contains ~sub:"pipeline.compile" summary);
  let flame = Trace.flame tr in
  Alcotest.(check bool) "flame indents phases under compile" true
    (contains ~sub:"\n  pipeline.lex" flame
    || contains ~sub:"\n    pipeline.lex" flame);
  Alcotest.(check bool) "flame shows a firing" true
    (contains ~sub:"firing.NBody.computeForces" flame)

let () =
  Alcotest.run "trace"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_nesting;
          Alcotest.test_case "end closes abandoned children" `Quick
            test_end_closes_abandoned_children;
          Alcotest.test_case "end of unknown name ignored" `Quick
            test_end_unknown_name_ignored;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "with_span exception-safe" `Quick
            test_with_span_exception_safe;
          Alcotest.test_case "now_us strictly monotonic" `Quick
            test_monotonic_now;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "export shape" `Quick test_chrome_export_shape;
          Alcotest.test_case "timestamps sorted" `Quick
            test_chrome_export_monotonic_ts;
          Alcotest.test_case "open spans closed on export" `Quick
            test_open_spans_closed_on_export;
        ] );
      ( "instrumentation",
        [
          Alcotest.test_case "pipeline phases traced" `Quick
            test_pipeline_phases_traced;
          Alcotest.test_case "firing has all comm legs" `Quick
            test_firing_has_all_comm_legs;
          Alcotest.test_case "observers uninstalled after" `Quick
            test_observers_uninstalled_after;
          Alcotest.test_case "metrics and trace compose" `Quick
            test_metrics_and_trace_compose;
          Alcotest.test_case "summary and flame" `Quick test_summary_and_flame;
        ] );
    ]
