(* Tests for lib/sched: placement specs, the pipeline probe, the cost
   model, the placement search, and multi-device execution through the
   engine.  The workhorse workload is the two-kernel N-Body pipeline
   (host gen => forces kernel => smoothing kernel => host accumulate),
   which is exactly the shape multi-device placement exists for. *)

module V = Lime_ir.Value
module Engine = Lime_runtime.Engine
module Comm = Lime_runtime.Comm
module Device = Gpusim.Device
module B = Lime_benchmarks.Bench_def
module P = Lime_sched.Placement
module Probe = Lime_sched.Probe
module Cost = Lime_sched.Cost
module Search = Lime_sched.Search
module Exec = Lime_sched.Exec

let pipe = Lime_benchmarks.Nbody_pipe.bench

let compile_pipe () =
  Lime_gpu.Pipeline.compile ~worker:pipe.B.worker pipe.B.source_small

(* Run the small pipeline through the placement-aware engine; [choose]
   picks the placement from the probed stages. *)
let run_placed ?(steps = 2) choose =
  let c = compile_pipe () in
  let _, report, decisions =
    Exec.run_program Engine.default_config ~choose
      c.Lime_gpu.Pipeline.cp_module ~cls:"NBodyPSim" ~meth:"main"
      [ V.VInt steps ]
  in
  (report, decisions)

let all_host stages ~firings:_ =
  List.map (fun st -> (st.Probe.st_task, P.Host)) stages

(* ------------------------------------------------------------------ *)
(* Placement specs                                                     *)
(* ------------------------------------------------------------------ *)

let test_spec_roundtrip () =
  let spec = "A.f=gtx580,B.g=host,C.h=hd5970" in
  match P.of_spec spec with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok p ->
      Alcotest.(check string) "roundtrip" spec (P.to_spec p);
      Alcotest.(check bool) "self equal" true (P.equal p p)

let test_spec_errors () =
  let fails s =
    match P.of_spec s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected %S to be rejected" s
  in
  fails "";
  fails "A.f";
  fails "A.f=notadevice";
  fails "=gtx580";
  fails "A.f=gtx580,A.f=hd5970"

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_spec_unknown_device_message () =
  match P.of_spec "A.f=gtx680" with
  | Error e ->
      Alcotest.(check bool) "says what it expected" true
        (contains e "unknown device" && contains e "gtx580")
  | Ok _ -> Alcotest.fail "gtx680 is not a device"

(* ------------------------------------------------------------------ *)
(* Probe                                                               *)
(* ------------------------------------------------------------------ *)

let probed = lazy (
  let stages = ref [] in
  let _report, _ =
    run_placed (fun st ~firings ->
        stages := st;
        all_host st ~firings)
  in
  !stages)

let test_probe_shape () =
  let stages = Lazy.force probed in
  Alcotest.(check int) "four stages" 4 (List.length stages);
  Alcotest.(check (list string)) "pipeline order"
    [
      "NBodyPSim.particleGen";
      "NBodyP.computeForces";
      "NBodyP.smooth";
      "NBodyPSim.accumulate";
    ]
    (List.map (fun st -> st.Probe.st_task) stages);
  Alcotest.(check (list bool)) "offloadability"
    [ false; true; true; false ]
    (List.map (fun st -> st.Probe.st_offloadable) stages);
  List.iter
    (fun st ->
      Alcotest.(check bool)
        (st.Probe.st_task ^ " host cost positive")
        true
        (st.Probe.st_host_s > 0.0);
      Alcotest.(check bool)
        (st.Probe.st_task ^ " profile iff offloadable")
        st.Probe.st_offloadable
        (st.Probe.st_profile <> None))
    stages;
  (* the generator's output feeds the force kernel *)
  let gen = List.nth stages 0 and forces = List.nth stages 1 in
  Alcotest.(check int) "edge bytes agree" gen.Probe.st_out_bytes
    forces.Probe.st_in_bytes

let test_probe_does_not_perturb () =
  (* the all-host placed run (which probes first) must deliver the same
     sink value as the legacy bytecode run: probing restored every task
     instance *)
  let c = compile_pipe () in
  let bytecode_cfg = { Engine.default_config with Engine.device = None } in
  let _, legacy =
    Engine.run_program bytecode_cfg c.Lime_gpu.Pipeline.cp_module
      ~cls:"NBodyPSim" ~meth:"main" [ V.VInt 2 ]
  in
  let placed, _ = run_placed all_host in
  Alcotest.(check bool) "sink value identical" true
    (V.approx_equal ~rtol:0.0 ~atol:0.0 legacy.Engine.last_value
       placed.Engine.last_value)

(* ------------------------------------------------------------------ *)
(* Search and cost model                                               *)
(* ------------------------------------------------------------------ *)

let test_search_beats_single_device () =
  (* at test scale the kernels are tiny and one device (or the host CPU
     device) is genuinely optimal; the invariant is only that the search
     never does worse than the best single device *)
  let stages = Lazy.force probed in
  let o = Search.search ~firings:16 stages in
  let _, best_single = o.Search.po_best_single in
  Alcotest.(check bool) "never worse than best single device" true
    (o.Search.po_best.Search.pc_time_s
    <= best_single.Search.pc_time_s +. 1e-12);
  Alcotest.(check bool) "exhaustive for two placeable stages" true
    o.Search.po_exhaustive

(* Probe a mid-scale pipeline without executing it: install a probing
   finish hook and run the program's main. *)
let probe_only ~n =
  let src = Lime_benchmarks.Nbody_pipe.source_for n in
  let c = Lime_gpu.Pipeline.compile ~worker:pipe.B.worker src in
  let stages = ref [] in
  let st = Lime_ir.Interp.create c.Lime_gpu.Pipeline.cp_module in
  st.Lime_ir.Interp.finish_hook <-
    (fun st' graph _iters ->
      stages := Probe.probe st'.Lime_ir.Interp.md graph);
  ignore (Lime_ir.Interp.run st ~cls:"NBodyPSim" ~meth:"main" [ V.VInt 1 ]);
  !stages

let test_search_splits_at_scale () =
  (* at n=1024 the two n² kernels dominate the transfers, and placing
     them on different devices beats the best single device strictly *)
  let stages = probe_only ~n:1024 in
  let o = Search.search ~firings:16 stages in
  let _, best_single = o.Search.po_best_single in
  Alcotest.(check bool) "strictly better than best single device" true
    (o.Search.po_best.Search.pc_time_s < best_single.Search.pc_time_s);
  let dev task =
    match List.assoc task o.Search.po_best.Search.pc_placement with
    | P.On d -> d.Device.name
    | P.Host -> "host"
  in
  let d1 = dev "NBodyP.computeForces" and d2 = dev "NBodyP.smooth" in
  Alcotest.(check bool) "forces on a device" true (d1 <> "host");
  Alcotest.(check bool) "smooth on a device" true (d2 <> "host");
  Alcotest.(check bool) "kernels split across devices" true (d1 <> d2)

let test_search_deterministic () =
  let stages = Lazy.force probed in
  let a = Search.search ~firings:16 stages in
  let b = Search.search ~firings:16 stages in
  Alcotest.(check string) "same best spec"
    (P.to_spec a.Search.po_best.Search.pc_placement)
    (P.to_spec b.Search.po_best.Search.pc_placement);
  Alcotest.(check (float 0.0)) "same best time"
    a.Search.po_best.Search.pc_time_s b.Search.po_best.Search.pc_time_s

let test_replay_validates () =
  let stages = Lazy.force probed in
  (match Search.replay ~firings:4 stages [ ("No.Such", P.Host) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown task accepted");
  (match
     Search.replay ~firings:4 stages
       [ ("NBodyPSim.accumulate", P.On Device.gtx580) ]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "host-only task accepted on a device");
  match
    Search.replay ~firings:4 stages
      [ ("NBodyP.computeForces", P.On Device.gtx580) ]
  with
  | Error e -> Alcotest.failf "valid placement rejected: %s" e
  | Ok c ->
      (* unmentioned tasks default to the host *)
      Alcotest.(check int) "completed to all stages" 4
        (List.length c.Search.pc_placement);
      Alcotest.(check bool) "priced" true (c.Search.pc_time_s > 0.0)

let test_cost_zero_firings () =
  let stages = Lazy.force probed in
  let tb = Cost.table stages in
  let assigns = Array.make 4 P.Host in
  let t, _ = Cost.price ~firings:0 tb assigns in
  Alcotest.(check (float 0.0)) "zero firings cost nothing" 0.0 t

let test_cost_residency_free () =
  (* same-device adjacent kernels pay fewer transfer seconds than
     split ones: the edge between them stays resident *)
  let stages = Lazy.force probed in
  let tb = Cost.table stages in
  let mk a b = [| P.Host; a; b; P.Host |] in
  let bd assigns = snd (Cost.price ~firings:4 tb assigns) in
  let same = bd (mk (P.On Device.gtx580) (P.On Device.gtx580)) in
  let split = bd (mk (P.On Device.gtx580) (P.On Device.hd5970)) in
  Alcotest.(check bool) "resident edge is cheaper" true
    (same.Cost.cb_transfer_s < split.Cost.cb_transfer_s)

(* ------------------------------------------------------------------ *)
(* Multi-device execution                                              *)
(* ------------------------------------------------------------------ *)

let searched stages ~firings =
  (Search.search ~firings stages).Search.po_best.Search.pc_placement

let test_placed_run_bit_exact () =
  (* a multi-device run delivers exactly the single-device sink value *)
  let c = compile_pipe () in
  let _, legacy =
    Engine.run_program Engine.default_config c.Lime_gpu.Pipeline.cp_module
      ~cls:"NBodyPSim" ~meth:"main" [ V.VInt 2 ]
  in
  let placed, decisions = run_placed searched in
  Alcotest.(check bool) "sink bit-exact" true
    (V.approx_equal ~rtol:0.0 ~atol:0.0 legacy.Engine.last_value
       placed.Engine.last_value);
  (* the engine's ground-truth placements match the decision *)
  (match decisions with
  | [ d ] ->
      Alcotest.(check int) "one decision, four stages" 4
        (List.length d.Exec.dc_placement);
      let want = P.to_engine d.Exec.dc_placement in
      List.iter2
        (fun (wt, wd) (gt, gd) ->
          Alcotest.(check string) "task order" wt gt;
          Alcotest.(check (option string)) (wt ^ " device")
            (Option.map (fun d -> d.Device.name) wd)
            (Option.map (fun d -> d.Device.name) gd))
        want placed.Engine.placements
  | ds -> Alcotest.failf "expected one decision, got %d" (List.length ds));
  Alcotest.(check int) "two firings" 2 placed.Engine.firings

let test_placed_run_attributes_devices () =
  (* firing_info carries the per-stage device of a placed run *)
  let seen = Hashtbl.create 8 in
  Engine.on_firing ~key:"test-sched" (fun fi ->
      let dev =
        match fi.Engine.fi_dev with
        | Some d -> d.Device.name
        | None -> "host"
      in
      Hashtbl.replace seen fi.Engine.fi_task dev);
  Fun.protect ~finally:(fun () -> Engine.remove_firing_observer "test-sched")
  @@ fun () ->
  let _, decisions = run_placed searched in
  let d = List.hd decisions in
  List.iter
    (fun (task, a) ->
      let want =
        match a with P.Host -> "host" | P.On d -> d.Device.name
      in
      match Hashtbl.find_opt seen task with
      | None -> Alcotest.failf "no firing observed for %s" task
      | Some got -> Alcotest.(check string) (task ^ " fired on") want got)
    d.Exec.dc_placement

let test_overlapped_clock_matches_model () =
  (* the engine's overlapped wall-clock agrees with the cost model's
     fill + (n-1)*period makespan on a pinned split placement *)
  let fixed stages ~firings:_ =
    List.map
      (fun st ->
        ( st.Probe.st_task,
          match st.Probe.st_task with
          | "NBodyP.computeForces" -> P.On Device.gtx580
          | "NBodyP.smooth" -> P.On Device.hd5970
          | _ -> P.Host ))
      stages
  in
  let report, decisions = run_placed ~steps:6 fixed in
  let d = List.hd decisions in
  let tb = Cost.table d.Exec.dc_stages in
  let assigns =
    Array.of_list (List.map snd d.Exec.dc_placement)
  in
  let model_s, _ = Cost.price ~firings:6 tb assigns in
  let got = report.Engine.overlapped_s in
  Alcotest.(check bool) "overlap clock positive" true (got > 0.0);
  let rel = Float.abs (got -. model_s) /. model_s in
  Alcotest.(check bool)
    (Printf.sprintf "engine %.3e vs model %.3e within 2%% (rel %.4f)" got
       model_s rel)
    true (rel < 0.02);
  Alcotest.(check bool) "overlap no slower than serial clock" true
    (got <= Comm.total report.Engine.phases +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Comm boundary cases                                                 *)
(* ------------------------------------------------------------------ *)

let test_pcie_zero_bytes () =
  (* a zero-byte transfer still pays the DMA latency floor... *)
  Alcotest.(check (float 1e-12)) "latency floor" 8.0e-6
    (Comm.pcie_seconds Device.gtx580 0);
  (* ...except on the host device, whose "link" is the cache *)
  Alcotest.(check (float 0.0)) "host device free" 0.0
    (Comm.pcie_seconds Device.core_i7 0)

let test_pcie_host_only_device () =
  (* corei7 models host execution: no PCIe at any size *)
  List.iter
    (fun bytes ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "corei7 %d bytes" bytes)
        0.0
        (Comm.pcie_seconds Device.core_i7 bytes))
    [ 0; 1; 4096; 64 * 1024 * 1024 ]

let test_pcie_monotone () =
  let d = Device.gtx8800 in
  Alcotest.(check bool) "more bytes, more time" true
    (Comm.pcie_seconds d (1 lsl 20) < Comm.pcie_seconds d (1 lsl 24))

let test_transfer_pair_equals_offload () =
  (* offload_phases is exactly an up-transfer plus a down-transfer, even
     when the two directions are asymmetric *)
  let d = Device.gtx580 in
  let in_bytes = 1 lsl 20 and out_bytes = 3 * 1024 in
  let off = Comm.offload_phases d ~elem_bytes:4 ~in_bytes ~out_bytes () in
  let up = Comm.transfer_phases d ~elem_bytes:4 ~bytes:in_bytes () in
  let down = Comm.transfer_phases d ~elem_bytes:4 ~bytes:out_bytes () in
  Alcotest.(check (float 1e-12)) "totals add" (Comm.total off)
    (Comm.total up +. Comm.total down);
  Alcotest.(check (float 1e-12)) "pcie adds" off.Comm.pcie_s
    (up.Comm.pcie_s +. down.Comm.pcie_s);
  Alcotest.(check bool) "asymmetric directions differ" true
    (Comm.total up > Comm.total down)

let test_transfer_zero_bytes () =
  let d = Device.gtx580 in
  let p = Comm.transfer_phases d ~elem_bytes:4 ~bytes:0 () in
  Alcotest.(check (float 1e-12)) "pcie is the latency floor"
    (Comm.pcie_seconds d 0) p.Comm.pcie_s;
  Alcotest.(check bool) "no kernel, no host work" true
    (p.Comm.kernel_s = 0.0 && p.Comm.host_s = 0.0)

let () =
  Alcotest.run "sched"
    [
      ( "spec",
        [
          Alcotest.test_case "roundtrip" `Quick test_spec_roundtrip;
          Alcotest.test_case "errors" `Quick test_spec_errors;
          Alcotest.test_case "unknown device" `Quick
            test_spec_unknown_device_message;
        ] );
      ( "probe",
        [
          Alcotest.test_case "shape" `Quick test_probe_shape;
          Alcotest.test_case "no perturbation" `Quick
            test_probe_does_not_perturb;
        ] );
      ( "search",
        [
          Alcotest.test_case "beats single device" `Quick
            test_search_beats_single_device;
          Alcotest.test_case "splits at scale" `Slow
            test_search_splits_at_scale;
          Alcotest.test_case "deterministic" `Quick test_search_deterministic;
          Alcotest.test_case "replay validates" `Quick test_replay_validates;
          Alcotest.test_case "zero firings" `Quick test_cost_zero_firings;
          Alcotest.test_case "residency" `Quick test_cost_residency_free;
        ] );
      ( "exec",
        [
          Alcotest.test_case "bit-exact sink" `Quick test_placed_run_bit_exact;
          Alcotest.test_case "per-device attribution" `Quick
            test_placed_run_attributes_devices;
          Alcotest.test_case "overlap clock" `Quick
            test_overlapped_clock_matches_model;
        ] );
      ( "comm",
        [
          Alcotest.test_case "pcie zero bytes" `Quick test_pcie_zero_bytes;
          Alcotest.test_case "host-only device" `Quick
            test_pcie_host_only_device;
          Alcotest.test_case "pcie monotone" `Quick test_pcie_monotone;
          Alcotest.test_case "transfer pair = offload" `Quick
            test_transfer_pair_equals_offload;
          Alcotest.test_case "zero-byte transfer" `Quick
            test_transfer_zero_bytes;
        ] );
    ]
