(* Tests for the §5.3 future-work features: the pipelined schedule and the
   direct-to-device serializer. *)

module S = Lime_runtime.Schedule
module M = Lime_runtime.Marshal
module V = Lime_ir.Value
module Ir = Lime_ir.Ir
module E = Lime_benchmarks.Experiments
module B = Lime_benchmarks.Bench_def

let st ~host ~link ~kernel =
  {
    S.st_host_s = host;
    st_link_s = link;
    st_kernel_s = kernel;
    st_source_sink_s = 0.0;
  }

let test_serial_is_sum () =
  let s = st ~host:1.0 ~link:2.0 ~kernel:3.0 in
  Alcotest.(check (float 1e-9)) "serial" 60.0 (S.serial_time ~firings:10 s)

let test_pipelined_bounded_by_bottleneck () =
  let s = st ~host:1.0 ~link:2.0 ~kernel:3.0 in
  let t = S.pipelined_time ~firings:100 s in
  (* steady state: one firing per max stage = 3.0 *)
  Alcotest.(check bool) "close to n*max" true (t < 100.0 *. 3.0 +. 7.0);
  Alcotest.(check bool) "not faster than bottleneck" true (t >= 100.0 *. 3.0)

let test_pipelining_never_slower () =
  List.iter
    (fun (h, l, k) ->
      let s = st ~host:h ~link:l ~kernel:k in
      Alcotest.(check bool) "pipelined <= serial" true
        (S.pipelined_time ~firings:16 s <= S.serial_time ~firings:16 s +. 1e-12))
    [ (1., 1., 1.); (0.1, 0.2, 5.0); (4.0, 0.1, 0.1); (0.0, 0.0, 1.0) ]

let test_speedup_capped_by_stages () =
  (* with three overlappable resources the gain cannot exceed 3x *)
  let s = st ~host:1.0 ~link:1.0 ~kernel:1.0 in
  let sp = S.overlap_speedup ~firings:1000 s in
  Alcotest.(check bool) "near 3x for balanced stages" true
    (sp > 2.5 && sp <= 3.0)

let test_worthwhile_threshold () =
  let balanced = st ~host:1.0 ~link:1.0 ~kernel:1.0 in
  Alcotest.(check bool) "balanced stages worthwhile" true
    (S.worthwhile ~firings:100 balanced);
  let kernel_bound = st ~host:0.001 ~link:0.001 ~kernel:1.0 in
  Alcotest.(check bool) "kernel-bound not worthwhile" false
    (S.worthwhile ~firings:100 kernel_bound)

let test_direct_roundtrip () =
  let a = V.of_float_matrix 5 4 (Array.init 20 float_of_int) in
  let e = M.encode_direct (V.VArr a) in
  Alcotest.(check int) "dense bytes" (20 * 4) (Bytes.length e);
  let back = M.decode_direct ~elem:Ir.SFloat ~shape:[| 5; 4 |] e in
  Alcotest.(check bool) "roundtrip" true
    (V.approx_equal ~rtol:0.0 ~atol:0.0 (V.VArr a) back)

let test_direct_size_mismatch () =
  let e = Bytes.create 16 in
  match M.decode_direct ~elem:Ir.SFloat ~shape:[| 5 |] e with
  | exception M.Marshal_error _ -> ()
  | _ -> Alcotest.fail "expected size mismatch error"

let test_direct_skips_c_marshal () =
  Alcotest.(check bool) "custom needs C marshal" true
    (M.needs_c_marshal M.Custom);
  Alcotest.(check bool) "direct skips C marshal" false
    (M.needs_c_marshal M.Direct)

let test_engine_direct_results_identical () =
  let b = Lime_benchmarks.Nbody.single in
  let c =
    Lime_gpu.Pipeline.compile ~worker:b.B.worker b.B.source
  in
  let run serializer =
    let cfg = { Lime_runtime.Engine.default_config with serializer } in
    let _, r =
      Lime_runtime.Engine.run_program cfg c.Lime_gpu.Pipeline.cp_module
        ~cls:"NBodySim" ~meth:"main"
        [ V.VInt 24; V.VInt 1 ]
    in
    r.Lime_runtime.Engine.last_value
  in
  Alcotest.(check bool) "direct = custom results" true
    (V.approx_equal ~rtol:0.0 ~atol:0.0 (run M.Custom) (run M.Direct))

(* ------------------------------------------------------------------ *)
(* Properties: overlap never hurts, and never beats the bottleneck      *)
(* ------------------------------------------------------------------ *)

let stages_gen =
  QCheck.map
    (fun (h, l, k, s) ->
      { S.st_host_s = h; st_link_s = l; st_kernel_s = k; st_source_sink_s = s })
    (QCheck.quad
       (QCheck.float_range 0.0 5.0)
       (QCheck.float_range 0.0 5.0)
       (QCheck.float_range 0.0 5.0)
       (QCheck.float_range 0.0 5.0))

let firings_gen = QCheck.int_range 1 64

let prop_pipelined_never_slower =
  QCheck.Test.make ~name:"pipelined <= serial for any stages" ~count:500
    (QCheck.pair firings_gen stages_gen)
    (fun (firings, s) ->
      S.pipelined_time ~firings s <= S.serial_time ~firings s +. 1e-9)

let prop_pipelined_bottleneck_bound =
  QCheck.Test.make ~name:"pipelined >= firings x slowest stage" ~count:500
    (QCheck.pair firings_gen stages_gen)
    (fun (firings, s) ->
      let slowest =
        List.fold_left max 0.0
          [ s.S.st_host_s; s.S.st_link_s; s.S.st_kernel_s; s.S.st_source_sink_s ]
      in
      S.pipelined_time ~firings s >= (float_of_int firings *. slowest) -. 1e-9)

(* random placed pipelines for the generalized simulator: a few stages,
   each a leg sequence over a small resource alphabet *)
let legs_gen =
  let resource =
    QCheck.oneofl [ "host"; "link:a"; "dev:a"; "link:b"; "dev:b" ]
  in
  let leg =
    QCheck.map
      (fun (r, s) -> { S.lg_resource = r; lg_seconds = s })
      (QCheck.pair resource (QCheck.float_range 0.0 3.0))
  in
  QCheck.list_of_size (QCheck.Gen.int_range 1 4)
    (QCheck.list_of_size (QCheck.Gen.int_range 1 5) leg)

let serial_sum ~firings stages =
  float_of_int firings
  *. List.fold_left
       (fun acc legs ->
         List.fold_left (fun a (l : S.leg) -> a +. l.S.lg_seconds) acc legs)
       0.0 stages

let busiest_resource ~firings stages =
  let per = Hashtbl.create 8 in
  List.iter
    (List.iter (fun (l : S.leg) ->
         let prev =
           Option.value ~default:0.0 (Hashtbl.find_opt per l.S.lg_resource)
         in
         Hashtbl.replace per l.S.lg_resource (prev +. l.S.lg_seconds)))
    stages;
  float_of_int firings *. Hashtbl.fold (fun _ v acc -> max v acc) per 0.0

let prop_makespan_between_bounds =
  QCheck.Test.make
    ~name:"busiest-resource bound <= makespan <= serial sum" ~count:300
    (QCheck.pair firings_gen legs_gen)
    (fun (firings, stages) ->
      let t = S.overlapped_makespan ~firings stages in
      t <= serial_sum ~firings stages +. 1e-9
      && t >= busiest_resource ~firings stages -. 1e-9)

let prop_makespan_monotone_in_firings =
  QCheck.Test.make ~name:"makespan is monotone in firings" ~count:300
    (QCheck.pair (QCheck.int_range 1 32) legs_gen)
    (fun (firings, stages) ->
      S.overlapped_makespan ~firings stages
      <= S.overlapped_makespan ~firings:(firings + 1) stages +. 1e-9)

let test_overlap_experiment_shape () =
  (* gains concentrate where communication share is high *)
  let rows = E.overlap ~firings:32 Gpusim.Device.gtx580 in
  List.iter
    (fun (r : E.overlap_row) ->
      Alcotest.(check bool)
        (r.E.ov_bench ^ " pipelined >= 1")
        true
        (r.E.ov_pipelined_speedup >= 0.999);
      Alcotest.(check bool)
        (r.E.ov_bench ^ " direct >= pipelined")
        true
        (r.E.ov_direct_speedup >= r.E.ov_pipelined_speedup -. 1e-9))
    rows;
  let find n = List.find (fun (r : E.overlap_row) -> r.E.ov_bench = n) rows in
  Alcotest.(check bool) "comm-heavy Series gains more than compute-bound CP"
    true
    ((find "JG-Series (Single)").E.ov_pipelined_speedup
    > (find "Parboil-CP").E.ov_pipelined_speedup)

let () =
  Alcotest.run "schedule"
    [
      ( "pipeline",
        [
          Alcotest.test_case "serial sum" `Quick test_serial_is_sum;
          Alcotest.test_case "bottleneck bound" `Quick
            test_pipelined_bounded_by_bottleneck;
          Alcotest.test_case "never slower" `Quick test_pipelining_never_slower;
          Alcotest.test_case "speedup cap" `Quick test_speedup_capped_by_stages;
          Alcotest.test_case "worthwhile" `Quick test_worthwhile_threshold;
        ] );
      ( "direct serializer",
        [
          Alcotest.test_case "roundtrip" `Quick test_direct_roundtrip;
          Alcotest.test_case "size mismatch" `Quick test_direct_size_mismatch;
          Alcotest.test_case "skips C marshal" `Quick
            test_direct_skips_c_marshal;
          Alcotest.test_case "engine results identical" `Quick
            test_engine_direct_results_identical;
        ] );
      ( "experiment",
        [ Alcotest.test_case "overlap shape" `Slow test_overlap_experiment_shape ] );
      Testutil.qsuite "properties"
        [
          prop_pipelined_never_slower;
          prop_pipelined_bottleneck_bound;
          prop_makespan_between_bounds;
          prop_makespan_monotone_in_firings;
        ];
    ]
