(* Property-based tests (QCheck, registered as alcotest cases): invariants
   of the value representation, Java numeric semantics, the wire format,
   the parser, and the optimizer. *)

module Ir = Lime_ir.Ir
module V = Lime_ir.Value
module M = Lime_runtime.Marshal

let qsuite = Testutil.qsuite

(* ------------------------------------------------------------------ *)
(* Java numeric semantics                                               *)
(* ------------------------------------------------------------------ *)

let int32_gen = QCheck.map Int32.to_int QCheck.int32

let prop_i32_matches_int32 =
  QCheck.Test.make ~name:"i32 add/mul/shift match Int32 semantics" ~count:500
    (QCheck.pair int32_gen int32_gen)
    (fun (a, b) ->
      let open Int32 in
      V.i32 (a + b) = to_int (add (of_int a) (of_int b))
      && V.i32 (a * b) = to_int (mul (of_int a) (of_int b))
      && V.i32 (a lsl (b land 31))
         = to_int (shift_left (of_int a) (b land 31)))

let prop_i32_idempotent =
  QCheck.Test.make ~name:"i32 is idempotent" ~count:500 int32_gen (fun a ->
      V.i32 (V.i32 a) = V.i32 a)

let prop_i8_range =
  QCheck.Test.make ~name:"i8 lands in [-128,127] and is idempotent" ~count:500
    QCheck.int (fun a -> let v = V.i8 a in v >= -128 && v <= 127 && V.i8 v = v)

let prop_f32_idempotent =
  QCheck.Test.make ~name:"f32 is idempotent" ~count:500
    (QCheck.float_bound_exclusive 1e30) (fun x -> V.f32 (V.f32 x) = V.f32 x)

(* ------------------------------------------------------------------ *)
(* Value arrays                                                         *)
(* ------------------------------------------------------------------ *)

let shape_gen =
  QCheck.(
    map
      (fun (a, b) -> [| (a mod 7) + 1; (b mod 5) + 1 |])
      (pair small_nat small_nat))

let prop_store_load_roundtrip =
  QCheck.Test.make ~name:"array store/load round trip" ~count:200
    QCheck.(pair shape_gen (small_list (float_bound_exclusive 1e6)))
    (fun (shape, xs) ->
      let a = V.make_arr Ir.SFloat shape in
      let vals =
        List.mapi (fun i x -> ((i / shape.(1) mod shape.(0), i mod shape.(1)), x)) xs
      in
      List.iter
        (fun ((i, j), x) -> V.store a [ i; j ] (V.VFloat (V.f32 x)))
        vals;
      List.for_all
        (fun ((i, j), _) ->
          match V.index a [ i; j ] with V.VFloat _ -> true | _ -> false)
        vals)

let prop_view_shares_storage =
  QCheck.Test.make ~name:"views alias their parent" ~count:200 shape_gen
    (fun shape ->
      let a = V.make_arr Ir.SFloat shape in
      V.store a [ 0; 0 ] (V.VFloat 5.0);
      let row = V.view a 0 in
      V.index row [ 0 ] = V.VFloat 5.0)

let prop_deep_copy_detaches =
  QCheck.Test.make ~name:"deep copy detaches storage" ~count:200 shape_gen
    (fun shape ->
      let a = V.make_arr Ir.SFloat shape in
      let b = V.deep_copy a in
      V.store a [ 0; 0 ] (V.VFloat 9.0);
      V.index b [ 0; 0 ] = V.VFloat 0.0)

(* ------------------------------------------------------------------ *)
(* Wire format                                                          *)
(* ------------------------------------------------------------------ *)

let arr_gen : V.t QCheck.arbitrary =
  let open QCheck in
  let build (kind, (rows, cols), seed) =
    let rows = (rows mod 6) + 1 and cols = (cols mod 6) + 1 in
    let rng = Lime_support.Prng.create seed in
    match kind mod 4 with
    | 0 ->
        let a = V.make_arr ~is_value:true Ir.SFloat [| rows; cols |] in
        (match a.V.buf with
        | V.BFloat b ->
            Array.iteri
              (fun i _ -> b.(i) <- V.f32 (Lime_support.Prng.float_range rng (-10.) 10.))
              b
        | _ -> ());
        V.VArr a
    | 1 ->
        V.VArr
          (V.of_int_array
             (Array.init rows (fun _ -> V.i32 (Lime_support.Prng.int rng 1000000 - 500000))))
    | 2 ->
        let a = V.make_arr ~is_value:true Ir.SByte [| rows * cols |] in
        (match a.V.buf with
        | V.BInt b ->
            Array.iteri (fun i _ -> b.(i) <- V.i8 (Lime_support.Prng.byte rng)) b
        | _ -> ());
        V.VArr a
    | _ ->
        let a = V.make_arr ~is_value:true Ir.SDouble [| rows |] in
        (match a.V.buf with
        | V.BFloat b ->
            Array.iteri
              (fun i _ -> b.(i) <- Lime_support.Prng.gaussian rng)
              b
        | _ -> ());
        V.VArr a
  in
  make
    Gen.(map build (triple small_nat (pair small_nat small_nat) small_nat))

let prop_marshal_roundtrip =
  QCheck.Test.make ~name:"marshal round trip" ~count:300 arr_gen (fun v ->
      V.approx_equal ~rtol:0.0 ~atol:0.0 v (M.decode (M.encode v)))

let prop_generic_equals_custom =
  QCheck.Test.make ~name:"generic marshaller emits identical bytes" ~count:300
    arr_gen (fun v -> Bytes.equal (M.encode v) (M.encode_generic v))

let prop_wire_size_exact =
  QCheck.Test.make ~name:"wire_size predicts encoding length" ~count:300
    arr_gen (fun v -> M.wire_size v = Bytes.length (M.encode v))

(* ------------------------------------------------------------------ *)
(* Parser stability                                                     *)
(* ------------------------------------------------------------------ *)

(* random expression ASTs over a fixed set of variables *)
let expr_gen : string QCheck.arbitrary =
  let open QCheck.Gen in
  let var = oneofl [ "a"; "b"; "c"; "xs" ] in
  let lit = map (fun n -> string_of_int (abs n mod 100)) small_int in
  let rec gen depth =
    if depth = 0 then oneof [ var; lit ]
    else
      frequency
        [
          (2, var);
          (2, lit);
          ( 3,
            map2
              (fun op (l, r) -> Printf.sprintf "(%s %s %s)" l op r)
              (oneofl [ "+"; "-"; "*"; "/"; "<"; "=="; "&"; "^"; "<<" ])
              (pair (gen (depth - 1)) (gen (depth - 1))) );
          (1, map (fun e -> Printf.sprintf "(-%s)" e) (gen (depth - 1)));
          ( 1,
            map2
              (fun l r -> Printf.sprintf "%s[%s]" l r)
              (oneofl [ "xs"; "m" ]) (gen (depth - 1)) );
          ( 1,
            map
              (fun e -> Printf.sprintf "Math.sqrt(%s)" e)
              (gen (depth - 1)) );
        ]
  in
  QCheck.make (gen 4)

let prop_parser_fixpoint =
  QCheck.Test.make ~name:"print(parse(e)) is a fixpoint" ~count:300 expr_gen
    (fun src ->
      match
        Lime_support.Diag.protect (fun () ->
            Lime_frontend.Parser.expr_of_string src)
      with
      | Error _ -> QCheck.assume_fail ()
      | Ok e1 ->
          let p1 = Lime_frontend.Ast.expr_to_string e1 in
          let e2 = Lime_frontend.Parser.expr_of_string p1 in
          Lime_frontend.Ast.expr_to_string e2 = p1)

(* ------------------------------------------------------------------ *)
(* PRNG                                                                 *)
(* ------------------------------------------------------------------ *)

let prop_prng_deterministic =
  QCheck.Test.make ~name:"prng streams equal for equal seeds" ~count:100
    QCheck.small_nat (fun seed ->
      let a = Lime_support.Prng.create seed
      and b = Lime_support.Prng.create seed in
      List.init 20 (fun _ -> Lime_support.Prng.int a 1000)
      = List.init 20 (fun _ -> Lime_support.Prng.int b 1000))

(* ------------------------------------------------------------------ *)
(* Optimizer invariants                                                 *)
(* ------------------------------------------------------------------ *)

let config_gen : Lime_gpu.Memopt.config QCheck.arbitrary =
  let open QCheck.Gen in
  QCheck.make
    (map
       (fun (a, b, c, (d, e, f)) ->
         {
           Lime_gpu.Memopt.use_private = a;
           use_local = b;
           pad_local = c;
           use_image = d;
           use_constant = e;
           vectorize = f;
         })
       (quad bool bool bool (triple bool bool bool)))

let nbody_kernel =
  lazy
    (let b = Lime_benchmarks.Nbody.single in
     (Lime_benchmarks.Registry.compile b).Lime_gpu.Pipeline.cp_kernel)

let prop_optimizer_total =
  QCheck.Test.make ~name:"optimizer decides every array, once" ~count:100
    config_gen (fun cfg ->
      let k = Lazy.force nbody_kernel in
      let ds = Lime_gpu.Memopt.optimize cfg k in
      let names = List.map (fun d -> d.Lime_gpu.Memopt.d_array) ds in
      List.length names = List.length (List.sort_uniq compare names))

let prop_written_arrays_global_or_private =
  QCheck.Test.make ~name:"written arrays never in read-only spaces" ~count:100
    config_gen (fun cfg ->
      let k = Lazy.force nbody_kernel in
      let ds = Lime_gpu.Memopt.optimize cfg k in
      List.for_all
        (fun (d : Lime_gpu.Memopt.decision) ->
          d.Lime_gpu.Memopt.d_info.Lime_gpu.Memopt.ai_read_only
          || d.Lime_gpu.Memopt.d_placement.Ir.space = Ir.MGlobal
          || d.Lime_gpu.Memopt.d_placement.Ir.space = Ir.MPrivate)
        ds)

let prop_kernel_time_positive =
  QCheck.Test.make ~name:"kernel time positive and finite under any config"
    ~count:50 config_gen (fun cfg ->
      let p = Lime_benchmarks.Experiments.prepare Lime_benchmarks.Nbody.single in
      let t =
        Lime_benchmarks.Experiments.kernel_time_under p Gpusim.Device.gtx580
          cfg
      in
      t > 0.0 && Float.is_finite t)

let () =
  Alcotest.run "properties"
    [
      qsuite "numerics"
        [
          prop_i32_matches_int32;
          prop_i32_idempotent;
          prop_i8_range;
          prop_f32_idempotent;
        ];
      qsuite "arrays"
        [
          prop_store_load_roundtrip;
          prop_view_shares_storage;
          prop_deep_copy_detaches;
        ];
      qsuite "marshal"
        [ prop_marshal_roundtrip; prop_generic_equals_custom; prop_wire_size_exact ];
      qsuite "parser" [ prop_parser_fixpoint ];
      qsuite "prng" [ prop_prng_deterministic ];
      qsuite "optimizer"
        [
          prop_optimizer_total;
          prop_written_arrays_global_or_private;
          prop_kernel_time_positive;
        ];
    ]
