(* Integration tests for the task-graph engine: offload decisions, real
   marshaling in the loop, functional vs non-functional firing, bytecode
   mode, phase accounting. *)

module V = Lime_ir.Value
module Engine = Lime_runtime.Engine
module Comm = Lime_runtime.Comm
module Memopt = Lime_gpu.Memopt

let nbody = Lime_benchmarks.Nbody.single

let run_nbody ?(cfg = Engine.default_config) n steps =
  let c =
    Lime_gpu.Pipeline.compile ~worker:nbody.Lime_benchmarks.Bench_def.worker
      nbody.Lime_benchmarks.Bench_def.source
  in
  Engine.run_program cfg c.Lime_gpu.Pipeline.cp_module ~cls:"NBodySim"
    ~meth:"main"
    [ V.VInt n; V.VInt steps ]

let test_offload_placement () =
  let _, r = run_nbody 32 1 in
  Alcotest.(check (list string)) "filter offloaded"
    [ "NBody.computeForces" ] r.Engine.offloaded_tasks;
  Alcotest.(check (list string)) "source and sink on host"
    [ "NBodySim.particleGen"; "NBodySim.accumulate" ]
    r.Engine.host_tasks

let test_firings () =
  let _, r = run_nbody 16 5 in
  Alcotest.(check int) "five firings" 5 r.Engine.firings

let test_phases_accounted () =
  let _, r = run_nbody 64 2 in
  let p = r.Engine.phases in
  Alcotest.(check bool) "kernel time" true (p.Comm.kernel_s > 0.0);
  Alcotest.(check bool) "marshal time" true (p.Comm.java_marshal_s > 0.0);
  Alcotest.(check bool) "pcie time" true (p.Comm.pcie_s > 0.0);
  Alcotest.(check bool) "host time" true (p.Comm.host_s > 0.0);
  Alcotest.(check bool) "total positive" true (Comm.total p > 0.0)

let test_functional_result_matches_reference () =
  (* the value delivered to the sink equals the reference forces *)
  let _, r = run_nbody 24 1 in
  let input_like =
    (* rebuild the same particles the Lime source generates: run the
       generator through the engine-less interpreter *)
    let c =
      Lime_gpu.Pipeline.compile ~worker:nbody.Lime_benchmarks.Bench_def.worker
        nbody.Lime_benchmarks.Bench_def.source
    in
    let st = Lime_ir.Interp.create c.Lime_gpu.Pipeline.cp_module in
    Lime_ir.Interp.run_instance st ~cls:"NBodySim" ~ctor_args:[ V.VInt 24 ]
      ~meth:"particleGen" []
  in
  let want = nbody.Lime_benchmarks.Bench_def.reference input_like in
  Alcotest.(check bool) "sink received real forces" true
    (V.approx_equal ~rtol:2e-4 ~atol:1e-5 r.Engine.last_value want)

let test_nonfunctional_shape () =
  let cfg = { Engine.default_config with Engine.functional = false } in
  let _, r = run_nbody ~cfg 24 1 in
  match r.Engine.last_value with
  | V.VArr a ->
      Alcotest.(check (array int)) "zero result has right shape" [| 24; 3 |]
        a.V.shape
  | v -> Alcotest.failf "expected array, got %s" (V.to_string v)

let test_bytecode_mode () =
  let cfg = { Engine.default_config with Engine.device = None } in
  let _, r = run_nbody ~cfg 16 1 in
  Alcotest.(check (list string)) "nothing offloaded" [] r.Engine.offloaded_tasks;
  Alcotest.(check int) "three host tasks" 3 (List.length r.Engine.host_tasks);
  Alcotest.(check bool) "no kernel time" true
    (r.Engine.phases.Comm.kernel_s = 0.0)

let test_generic_serializer_slower () =
  let run serializer =
    let cfg = { Engine.default_config with Engine.serializer } in
    let _, r = run_nbody ~cfg 64 1 in
    r.Engine.phases.Comm.java_marshal_s
  in
  Alcotest.(check bool) "generic marshal dearer" true
    (run Lime_runtime.Marshal.Generic > run Lime_runtime.Marshal.Custom)

let test_device_choice_changes_kernel_time () =
  let time d =
    let cfg = { Engine.default_config with Engine.device = Some d } in
    let _, r = run_nbody ~cfg 64 1 in
    r.Engine.phases.Comm.kernel_s
  in
  let t8800 = time Gpusim.Device.gtx8800 in
  let t580 = time Gpusim.Device.gtx580 in
  Alcotest.(check bool) "newer GPU faster" true (t580 < t8800)

let test_all_benchmark_graphs_run () =
  (* every benchmark's task-graph main executes end-to-end on the engine *)
  List.iter
    (fun ((b : Lime_benchmarks.Bench_def.t), n) ->
      let c =
        Lime_gpu.Pipeline.compile ~worker:b.Lime_benchmarks.Bench_def.worker
          b.Lime_benchmarks.Bench_def.source_small
      in
      let cls =
        match String.split_on_char '.' b.Lime_benchmarks.Bench_def.worker with
        | [ c; _ ] -> c
        | _ -> assert false
      in
      let app_cls =
        (* app classes are <Name>App or <Name>Sim *)
        let candidates = [ cls ^ "App"; cls ^ "Sim"; "NBodySim" ] in
        List.find
          (fun cand ->
            Hashtbl.fold
              (fun _ (cm : Lime_ir.Ir.class_meta) acc ->
                acc || cm.Lime_ir.Ir.cm_name = cand)
              c.Lime_gpu.Pipeline.cp_module.Lime_ir.Ir.md_classes false)
          candidates
      in
      let _, r =
        Engine.run_program Engine.default_config c.Lime_gpu.Pipeline.cp_module
          ~cls:app_cls ~meth:"main"
          [ V.VInt n; V.VInt 1 ]
      in
      Alcotest.(check bool)
        (b.Lime_benchmarks.Bench_def.name ^ " offloaded its filter")
        true
        (List.length r.Engine.offloaded_tasks = 1))
    [
      (Lime_benchmarks.Nbody.single, 16);
      (Lime_benchmarks.Nbody.double, 16);
      (Lime_benchmarks.Mosaic.bench, 520) (* tiles: LIB + a few refs *);
      (Lime_benchmarks.Cp.bench, 16);
      (Lime_benchmarks.Mriq.bench, 32);
      (Lime_benchmarks.Rpes.bench, 64);
      (Lime_benchmarks.Crypt.bench, 512);
      (Lime_benchmarks.Series.single, 16);
      (Lime_benchmarks.Series.double, 16);
    ]

let multi_filter_src =
  {|class Multi {
  static local float half(float x) { return x * 0.5f; }
  static local float sq(float x) { return x * x; }
  static local float gen(int i) { return (float) i; }
  static local float[[]] scale(float[[]] xs) { return Multi.half @ xs; }
  static local float[[]] square(float[[]] xs) { return Multi.sq @ xs; }
}
class MultiApp {
  int n;
  float sum;
  MultiApp(int c) { n = c; }
  local float[[]] src() { return Multi.gen @ Lime.range(n); }
  void sink(float[[]] xs) {
    float t = 0.0f;
    for (int i = 0; i < xs.length; i++) { t += xs[i]; }
    sum = t;
  }
  static void main(int c, int steps) {
    (task MultiApp(c).src
       => task Multi.scale
       => task Multi.square
       => task MultiApp(c).sink).finish(steps);
  }
}|}

let test_multi_filter_pipeline () =
  (* a pipeline with TWO offloadable filters: both run on the device, and
     the composed value (x/2)^2 reaches the sink *)
  let c = Lime_gpu.Pipeline.compile ~worker:"Multi.scale" multi_filter_src in
  let _, r =
    Engine.run_program Engine.default_config c.Lime_gpu.Pipeline.cp_module
      ~cls:"MultiApp" ~meth:"main"
      [ V.VInt 8; V.VInt 1 ]
  in
  Alcotest.(check (list string)) "both filters offloaded"
    [ "Multi.scale"; "Multi.square" ]
    r.Engine.offloaded_tasks;
  let want =
    V.of_float_array
      (Array.init 8 (fun i ->
           let h = V.f32 (float_of_int i *. 0.5) in
           V.f32 (h *. h)))
  in
  Alcotest.(check bool) "composed values correct" true
    (V.approx_equal ~rtol:0.0 ~atol:0.0 r.Engine.last_value (V.VArr want))

(* The legacy single-slot firing_observer is routed through the keyed
   registry (key "legacy"): it must keep firing, and writing it must not
   clobber keyed observers registered with on_firing. *)
let test_legacy_observer_composes () =
  let legacy_count = ref 0 and keyed_count = ref 0 in
  let saved = !Engine.firing_observer in
  Engine.firing_observer :=
    (fun ~task:_ ~device:_ ~phases:_ -> incr legacy_count);
  Engine.on_firing ~key:"test" (fun _ -> incr keyed_count);
  Fun.protect
    ~finally:(fun () ->
      Engine.firing_observer := saved;
      Engine.remove_firing_observer "test")
    (fun () ->
      let _, r = run_nbody 16 2 in
      (* one notification per task per iteration: source, filter, sink *)
      let tasks =
        List.length r.Engine.offloaded_tasks + List.length r.Engine.host_tasks
      in
      Alcotest.(check int) "legacy slot fires per task firing"
        (r.Engine.firings * tasks)
        !legacy_count;
      Alcotest.(check int) "keyed observer fires per task firing"
        (r.Engine.firings * tasks)
        !keyed_count;
      (* overwriting the legacy slot must not clobber the keyed observer *)
      Engine.firing_observer := (fun ~task:_ ~device:_ ~phases:_ -> ());
      let before = !keyed_count in
      let _, r2 = run_nbody 16 1 in
      Alcotest.(check int) "keyed observer survives slot overwrite"
        (before + (r2.Engine.firings * tasks))
        !keyed_count);
  (* cleanup restored the no-op: further runs touch neither counter *)
  let legacy_after = !legacy_count and keyed_after = !keyed_count in
  let _, _ = run_nbody 16 1 in
  Alcotest.(check int) "legacy restored" legacy_after !legacy_count;
  Alcotest.(check int) "keyed removed" keyed_after !keyed_count

let () =
  Alcotest.run "engine"
    [
      ( "placement",
        [
          Alcotest.test_case "offload decision" `Quick test_offload_placement;
          Alcotest.test_case "firings" `Quick test_firings;
          Alcotest.test_case "bytecode mode" `Quick test_bytecode_mode;
        ] );
      ( "execution",
        [
          Alcotest.test_case "functional result" `Quick
            test_functional_result_matches_reference;
          Alcotest.test_case "non-functional shape" `Quick
            test_nonfunctional_shape;
          Alcotest.test_case "all benchmark graphs" `Slow
            test_all_benchmark_graphs_run;
          Alcotest.test_case "multi-filter pipeline" `Quick
            test_multi_filter_pipeline;
        ] );
      ( "observers",
        [
          Alcotest.test_case "legacy slot routed through keyed registry"
            `Quick test_legacy_observer_composes;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "phases" `Quick test_phases_accounted;
          Alcotest.test_case "generic serializer slower" `Quick
            test_generic_serializer_slower;
          Alcotest.test_case "device choice" `Quick
            test_device_choice_changes_kernel_time;
        ] );
    ]
