(* The compile service layer (lib/service): content-addressed digests,
   the LRU kernel cache with request coalescing, the file-backed tunestore,
   the metrics registry, and the wired-up instrumentation. *)

module Digest = Lime_service.Digest
module Kcache = Lime_service.Kcache
module Tunestore = Lime_service.Tunestore
module Metrics = Lime_service.Metrics
module Sketch = Lime_service.Sketch
module Service = Lime_service.Service
module Memopt = Lime_gpu.Memopt

let doubler_source =
  {|
class Doubler {
  static local float twice(float x) { return x * 2.0f; }
  static local float[[]] apply(float[[]] xs) { return Doubler.twice @ xs; }
}
|}

let temp_dir prefix =
  let f = Filename.temp_file prefix "" in
  Sys.remove f;
  Sys.mkdir f 0o755;
  f

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

(* ------------------------------------------------------------------ *)
(* Digest                                                              *)
(* ------------------------------------------------------------------ *)

let test_digest_field_order () =
  let a = Digest.of_fields [ ("worker", "W"); ("source", "S"); ("device", "d") ]
  and b = Digest.of_fields [ ("device", "d"); ("source", "S"); ("worker", "W") ] in
  Alcotest.(check bool) "field order irrelevant" true (Digest.equal a b);
  let c = Digest.of_fields [ ("worker", "W2"); ("source", "S"); ("device", "d") ] in
  Alcotest.(check bool) "different field -> different digest" false
    (Digest.equal a c);
  (* length framing: moving a character across a field boundary must not
     collide *)
  let d = Digest.of_fields [ ("a", "bc") ] and e = Digest.of_fields [ ("ab", "c") ] in
  Alcotest.(check bool) "length-framed" false (Digest.equal d e)

let test_digest_config_canonical () =
  (* structurally equal configs digest equally however they were built *)
  let via_record =
    {
      Memopt.use_private = true;
      use_local = true;
      pad_local = true;
      use_image = false;
      use_constant = false;
      vectorize = false;
    }
  in
  let via_updates = { Memopt.config_local with pad_local = true } in
  let k1 = Digest.of_request ~config:via_record ~worker:"W" "src"
  and k2 = Digest.of_request ~config:via_updates ~worker:"W" "src" in
  Alcotest.(check string) "canonical config digests" (Digest.to_hex k1)
    (Digest.to_hex k2);
  let k3 = Digest.of_request ~config:Memopt.config_all ~worker:"W" "src" in
  Alcotest.(check bool) "config matters" false (Digest.equal k1 k3)

let test_config_roundtrip () =
  List.iter
    (fun (name, cfg) ->
      match Digest.config_of_canonical (Digest.canonical_config cfg) with
      | Some cfg' ->
          Alcotest.(check bool) (name ^ " round-trips") true (cfg = cfg')
      | None -> Alcotest.failf "%s: canonical form did not parse" name)
    (("All", Memopt.config_all) :: Memopt.fig8_configs);
  Alcotest.(check bool) "garbage rejected" true
    (Digest.config_of_canonical "use_private=yes" = None);
  Alcotest.(check bool) "incomplete rejected" true
    (Digest.config_of_canonical "use_private=true" = None)

(* ------------------------------------------------------------------ *)
(* Kcache                                                              *)
(* ------------------------------------------------------------------ *)

let test_lru_eviction_order () =
  let c = Kcache.create ~capacity:2 () in
  ignore (Kcache.find_or_add c "k1" (fun () -> 1));
  ignore (Kcache.find_or_add c "k2" (fun () -> 2));
  (* touch k1 so k2 becomes the LRU victim *)
  ignore (Kcache.find_or_add c "k1" (fun () -> assert false));
  ignore (Kcache.find_or_add c "k3" (fun () -> 3));
  Alcotest.(check bool) "k2 evicted" false (Kcache.mem c "k2");
  Alcotest.(check bool) "k1 kept" true (Kcache.mem c "k1");
  Alcotest.(check bool) "k3 kept" true (Kcache.mem c "k3");
  Alcotest.(check int) "one eviction" 1 (Kcache.stats c).Kcache.evictions;
  Alcotest.(check (list string)) "recency order" [ "k3"; "k1" ]
    (Kcache.keys_by_recency c)

let test_hit_miss_counters () =
  let c = Kcache.create ~capacity:4 () in
  let compiles = ref 0 in
  let get k = Kcache.find_or_add c k (fun () -> incr compiles; k) in
  ignore (get "a");
  ignore (get "a");
  ignore (get "b");
  ignore (get "a");
  let s = Kcache.stats c in
  Alcotest.(check int) "misses" 2 s.Kcache.misses;
  Alcotest.(check int) "hits" 2 s.Kcache.hits;
  Alcotest.(check int) "compiles" 2 !compiles

let test_coalescing () =
  let c = Kcache.create ~capacity:4 () in
  let compiles = ref 0 in
  let burst =
    List.init 5 (fun _ -> ("same-key", fun () -> incr compiles; 42))
  in
  let results = Kcache.find_or_add_many c burst in
  Alcotest.(check (list int)) "all served" [ 42; 42; 42; 42; 42 ] results;
  Alcotest.(check int) "one compile" 1 !compiles;
  let s = Kcache.stats c in
  Alcotest.(check int) "one miss" 1 s.Kcache.misses;
  Alcotest.(check int) "rest coalesced" 4 s.Kcache.coalesced;
  Alcotest.(check int) "no hits during the burst" 0 s.Kcache.hits

(* ------------------------------------------------------------------ *)
(* Tunestore                                                           *)
(* ------------------------------------------------------------------ *)

let test_tunestore_roundtrip () =
  let dir = temp_dir "lime_tunestore" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let ts = Tunestore.open_ dir in
      let digest = Digest.of_request ~worker:"W" "src" in
      let r =
        {
          Tunestore.tr_config_name = "Local+Conflicts removed";
          tr_config = Memopt.config_local_noconflict;
          tr_time_s = 3.25e-4;
          tr_headline =
            Some
              {
                Tunestore.th_occupancy = 0.87;
                th_bank_replays = 1024.0;
                th_roofline = "memory-bound";
              };
          tr_sequence = None;
          tr_placement = None;
        }
      in
      Alcotest.(check bool) "empty store misses" true
        (Tunestore.load ts ~digest ~device:"gtx8800" = None);
      Tunestore.store ts ~digest ~device:"gtx8800" r;
      (match Tunestore.load ts ~digest ~device:"gtx8800" with
      | Some r' ->
          Alcotest.(check string) "name" r.Tunestore.tr_config_name
            r'.Tunestore.tr_config_name;
          Alcotest.(check bool) "config" true
            (r.Tunestore.tr_config = r'.Tunestore.tr_config);
          Alcotest.(check (float 1e-9)) "time" r.Tunestore.tr_time_s
            r'.Tunestore.tr_time_s;
          (match r'.Tunestore.tr_headline with
          | Some h ->
              Alcotest.(check (float 1e-9)) "occupancy" 0.87
                h.Tunestore.th_occupancy;
              Alcotest.(check (float 1e-9)) "bank replays" 1024.0
                h.Tunestore.th_bank_replays;
              Alcotest.(check string) "roofline" "memory-bound"
                h.Tunestore.th_roofline
          | None -> Alcotest.fail "headline did not round-trip")
      | None -> Alcotest.fail "stored entry did not load");
      Alcotest.(check bool) "other device misses" true
        (Tunestore.load ts ~digest ~device:"gtx580" = None);
      (* a version-1 file (no headline lines) still loads *)
      Out_channel.with_open_text
        (Tunestore.path ts ~digest ~device:"gtx580")
        (fun oc ->
          Printf.fprintf oc "lime-tunestore 1\nname %s\nconfig %s\ntime_s %.9g\n"
            r.Tunestore.tr_config_name
            (Digest.canonical_config r.Tunestore.tr_config)
            r.Tunestore.tr_time_s);
      (match Tunestore.load ts ~digest ~device:"gtx580" with
      | Some r1 ->
          Alcotest.(check string) "v1 name" r.Tunestore.tr_config_name
            r1.Tunestore.tr_config_name;
          Alcotest.(check bool) "v1 has no headline" true
            (r1.Tunestore.tr_headline = None)
      | None -> Alcotest.fail "version-1 file should load");
      (* corrupt file -> miss, not crash *)
      Out_channel.with_open_text
        (Tunestore.path ts ~digest ~device:"gtx8800")
        (fun oc -> Out_channel.output_string oc "garbage\n");
      Alcotest.(check bool) "corrupt file is a miss" true
        (Tunestore.load ts ~digest ~device:"gtx8800" = None))

let test_sweep_consults_tunestore () =
  let dir = temp_dir "lime_svc_sweep" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let svc = Service.create ~cache_dir:dir () in
      let c = Service.compile svc ~worker:"Doubler.apply" doubler_source in
      let digest =
        Service.request_digest ~device:"gtx8800" ~worker:"Doubler.apply"
          doubler_source
      in
      let kernel = c.Lime_gpu.Pipeline.cp_kernel in
      let shapes = [ ("xs", [| 4096 |]) ] in
      let entries1, status1 =
        Service.sweep svc Gpusim.Device.gtx8800 ~device_key:"gtx8800" ~digest
          kernel ~shapes ~scalars:[]
      in
      Alcotest.(check bool) "cold sweep misses" true (status1 = `Miss);
      Alcotest.(check int) "cold sweep times all eight" 8
        (List.length entries1);
      let entries2, status2 =
        Service.sweep svc Gpusim.Device.gtx8800 ~device_key:"gtx8800" ~digest
          kernel ~shapes ~scalars:[]
      in
      (match status2 with
      | `Hit r ->
          Alcotest.(check string) "stored best is the sweep winner"
            (List.hd entries1).Gpusim.Autotune.at_name
            r.Tunestore.tr_config_name
      | `Miss -> Alcotest.fail "warm sweep should hit the tunestore");
      Alcotest.(check int) "warm sweep times only the stored best" 1
        (List.length entries2);
      Alcotest.(check (float 1e-9)) "same winning time"
        (List.hd entries1).Gpusim.Autotune.at_time_s
        (List.hd entries2).Gpusim.Autotune.at_time_s)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_exposition_snapshot () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg ~help:"requests served" "svc_requests_total" in
  Metrics.inc c;
  Metrics.inc ~by:2 c;
  let g = Metrics.gauge reg "svc_queue_depth" in
  Metrics.set g 3.5;
  let h =
    Metrics.histogram reg ~buckets:[ 0.001; 0.1 ] "svc_latency_seconds"
  in
  Metrics.observe h 0.0005;
  Metrics.observe h 0.05;
  Metrics.observe h 7.0;
  let want =
    "# HELP svc_latency_seconds\n\
     # TYPE svc_latency_seconds histogram\n\
     svc_latency_seconds_bucket{le=\"0.001\"} 1\n\
     svc_latency_seconds_bucket{le=\"0.1\"} 2\n\
     svc_latency_seconds_bucket{le=\"+Inf\"} 3\n\
     svc_latency_seconds_sum 7.0505\n\
     svc_latency_seconds_count 3\n\
     # HELP svc_queue_depth\n\
     # TYPE svc_queue_depth gauge\n\
     svc_queue_depth 3.5\n\
     # HELP svc_requests_total requests served\n\
     # TYPE svc_requests_total counter\n\
     svc_requests_total 3\n"
  in
  Alcotest.(check string) "exposition snapshot" want (Metrics.expose reg);
  Metrics.reset reg;
  Alcotest.(check int) "reset zeroes counters" 0 (Metrics.counter_value c);
  Alcotest.(check int) "reset zeroes histograms" 0 (Metrics.histogram_count h)

let test_metric_kind_collision () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg "m");
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Metrics.gauge: m is not a gauge") (fun () ->
      ignore (Metrics.gauge reg "m"))

let test_metrics_labeled_family () =
  (* static labels are baked into the metric's identity: several label
     sets of one family render as adjacent samples sharing one HELP/TYPE
     block, with label values escaped per the text format *)
  let reg = Metrics.create () in
  let g1 =
    Metrics.gauge reg ~help:"build identity"
      ~labels:[ ("version", "1.0.0"); ("proto", "2") ]
      "svc_build_info"
  in
  Metrics.set g1 1.0;
  let g2 =
    Metrics.gauge reg
      ~labels:[ ("version", "0.9\"q\\b\nnl"); ("proto", "1") ]
      "svc_build_info"
  in
  Metrics.set g2 1.0;
  let want =
    "# HELP svc_build_info build identity\n\
     # TYPE svc_build_info gauge\n\
     svc_build_info{version=\"0.9\\\"q\\\\b\\nnl\",proto=\"1\"} 1\n\
     svc_build_info{version=\"1.0.0\",proto=\"2\"} 1\n"
  in
  Alcotest.(check string) "one metadata block, escaped label values" want
    (Metrics.expose reg);
  (* same name + same labels is the same metric, not a new sample *)
  let g1' =
    Metrics.gauge reg
      ~labels:[ ("version", "1.0.0"); ("proto", "2") ]
      "svc_build_info"
  in
  Metrics.set g1' 5.0;
  Alcotest.(check bool) "re-registration returns the existing metric" true
    (Lime_support.Util.contains_substring
       ~sub:"svc_build_info{version=\"1.0.0\",proto=\"2\"} 5"
       (Metrics.expose reg))

let test_metrics_exemplar_exposition () =
  (* an exemplared observation rides its bucket line as an OpenMetrics
     [# {trace_id="…"} value] suffix, with the id escaped; buckets that
     never saw an exemplar render exactly as before *)
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:[ 0.1 ] "ex_latency_seconds" in
  Metrics.observe h 0.05;
  Metrics.observe ~exemplar:"trace\"1" h 0.07;
  Metrics.observe ~exemplar:"big" h 7.0;
  let want =
    "# HELP ex_latency_seconds\n\
     # TYPE ex_latency_seconds histogram\n\
     ex_latency_seconds_bucket{le=\"0.1\"} 2 # {trace_id=\"trace\\\"1\"} 0.07\n\
     ex_latency_seconds_bucket{le=\"+Inf\"} 3 # {trace_id=\"big\"} 7\n\
     ex_latency_seconds_sum 7.12\n\
     ex_latency_seconds_count 3\n"
  in
  Alcotest.(check string) "exemplar suffixes, escaped" want
    (Metrics.expose reg);
  (* an empty exemplar is ignored, and reset clears the stored ones *)
  Metrics.observe ~exemplar:"" h 0.01;
  Metrics.reset reg;
  Metrics.observe h 0.02;
  Alcotest.(check bool) "no exemplars after reset" false
    (Lime_support.Util.contains_substring ~sub:"trace_id"
       (Metrics.expose reg))

let test_metrics_summary_exposition () =
  let reg = Metrics.create () in
  let now = ref 0.0 in
  let s =
    Metrics.summary reg ~help:"request latency"
      ~quantiles:[ 0.5; 0.99 ]
      ~windows:[ ("1m", 60.0) ]
      ~clock:(fun () -> !now)
      "svc_latency_summary"
  in
  (* a fresh summary exposes metadata and totals but no quantile
     samples (never NaN) *)
  let exposed = Metrics.expose reg in
  let contains sub = Lime_support.Util.contains_substring ~sub exposed in
  Alcotest.(check bool) "summary TYPE" true
    (contains "# TYPE svc_latency_summary summary");
  Alcotest.(check bool) "no quantiles while empty" false
    (contains "quantile=");
  Alcotest.(check bool) "zero count while empty" true
    (contains "svc_latency_summary_count 0");
  (* 100 observations of 1ms..100ms: the medians must land within the
     sketch's relative-error bound of the exact rank *)
  for i = 1 to 100 do
    Metrics.observe_summary s (float_of_int i /. 1000.0)
  done;
  let exposed = Metrics.expose reg in
  let contains sub = Lime_support.Util.contains_substring ~sub exposed in
  Alcotest.(check bool) "cumulative quantile line" true
    (contains "svc_latency_summary{quantile=\"0.5\"}");
  Alcotest.(check bool) "windowed quantile line" true
    (contains "svc_latency_summary{window=\"1m\",quantile=\"0.99\"}");
  Alcotest.(check bool) "count line" true
    (contains "svc_latency_summary_count 100");
  (match Metrics.summary_quantile s 0.5 with
  | Some v ->
      Alcotest.(check bool)
        (Printf.sprintf "median %.4f within 1%% of 0.050" v)
        true
        (Float.abs (v -. 0.050) <= 0.050 *. Sketch.default_alpha +. 1e-9)
  | None -> Alcotest.fail "cumulative quantile empty");
  (match Metrics.summary_quantile s ~window_s:60.0 0.99 with
  | Some v ->
      Alcotest.(check bool)
        (Printf.sprintf "windowed p99 %.4f within 1%% of 0.099" v)
        true
        (Float.abs (v -. 0.099) <= 0.099 *. Sketch.default_alpha +. 1e-9)
  | None -> Alcotest.fail "windowed quantile empty");
  (* five minutes later the 1m window has rotated empty: its quantile
     lines vanish while the cumulative ones survive *)
  now := 300.0;
  let exposed = Metrics.expose reg in
  let contains sub = Lime_support.Util.contains_substring ~sub exposed in
  Alcotest.(check bool) "rotated window emits no quantiles" false
    (contains "window=\"1m\"");
  Alcotest.(check bool) "cumulative quantiles survive rotation" true
    (contains "svc_latency_summary{quantile=\"0.5\"}");
  Metrics.reset reg;
  Alcotest.(check int) "reset zeroes the summary" 0 (Metrics.summary_count s)

let test_metrics_help_escaping () =
  let reg = Metrics.create () in
  ignore (Metrics.counter reg ~help:"line one\nback\\slash" "esc_total");
  let want =
    "# HELP esc_total line one\\nback\\\\slash\n\
     # TYPE esc_total counter\n\
     esc_total 0\n"
  in
  Alcotest.(check string) "help escapes newline and backslash" want
    (Metrics.expose reg)

(* ------------------------------------------------------------------ *)
(* Service end-to-end                                                  *)
(* ------------------------------------------------------------------ *)

let test_repeat_compile_served_from_cache () =
  let svc = Service.create () in
  let c1, o1 = Service.compile_ex svc ~worker:"Doubler.apply" doubler_source in
  let c2, o2 = Service.compile_ex svc ~worker:"Doubler.apply" doubler_source in
  Alcotest.(check bool) "first compile is fresh" true (o1 = Service.Compiled);
  Alcotest.(check bool) "second is a memory hit" true (o2 = Service.Memory);
  Alcotest.(check string) "same artifact" c1.Lime_gpu.Pipeline.cp_opencl
    c2.Lime_gpu.Pipeline.cp_opencl;
  let s = Service.stats svc in
  Alcotest.(check int) "one miss" 1 s.Kcache.misses;
  Alcotest.(check int) "one hit" 1 s.Kcache.hits;
  (* a different config is a different artifact, not a hit *)
  ignore
    (Service.compile svc ~config:Memopt.config_global ~worker:"Doubler.apply"
       doubler_source);
  Alcotest.(check int) "different config misses" 2 (Service.stats svc).Kcache.misses

let test_disk_cache_across_services () =
  let dir = temp_dir "lime_svc_disk" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let svc1 = Service.create ~cache_dir:dir () in
      let c1, o1 =
        Service.compile_ex svc1 ~worker:"Doubler.apply" doubler_source
      in
      Alcotest.(check bool) "cold process compiles" true (o1 = Service.Compiled);
      (* a second service over the same directory models a new process *)
      let svc2 = Service.create ~cache_dir:dir () in
      let c2, o2 =
        Service.compile_ex svc2 ~worker:"Doubler.apply" doubler_source
      in
      Alcotest.(check bool) "warm process loads from disk" true
        (o2 = Service.Disk);
      Alcotest.(check string) "identical artifact" c1.Lime_gpu.Pipeline.cp_opencl
        c2.Lime_gpu.Pipeline.cp_opencl;
      (* the artifact is executable, not just storable: run the kernel *)
      let st = Lime_ir.Interp.create (Lime_gpu.Kernel.to_module c2.Lime_gpu.Pipeline.cp_kernel) in
      let xs = Lime_ir.Value.of_float_array [| 1.0; 2.5 |] in
      let v =
        Lime_ir.Interp.call_function st "Doubler.apply" None
          [ Lime_ir.Value.VArr xs ]
      in
      let want = Lime_ir.Value.of_float_array [| 2.0; 5.0 |] in
      Alcotest.(check bool) "cached kernel computes" true
        (Lime_ir.Value.approx_equal ~rtol:0.0 ~atol:0.0 v
           (Lime_ir.Value.VArr want)))

let test_instrumented_engine_run () =
  let reg = Metrics.create () in
  Service.instrument ~registry:reg ();
  Fun.protect
    ~finally:(fun () ->
      (* remove the keyed observers for other tests *)
      Service.uninstrument ())
    (fun () ->
      let b = Lime_benchmarks.Nbody.single in
      let c =
        Lime_gpu.Pipeline.compile ~worker:b.Lime_benchmarks.Bench_def.worker
          b.Lime_benchmarks.Bench_def.source
      in
      let _, report =
        Lime_runtime.Engine.run_program Lime_runtime.Engine.default_config
          c.Lime_gpu.Pipeline.cp_module ~cls:"NBodySim" ~meth:"main"
          [ Lime_ir.Value.VInt 64; Lime_ir.Value.VInt 3 ]
      in
      Alcotest.(check int) "three firings" 3
        report.Lime_runtime.Engine.firings;
      Alcotest.(check int) "compile counted" 1
        (Metrics.counter_value (Metrics.counter reg "lime_compile_total"));
      Alcotest.(check int) "device firings counted" 3
        (Metrics.counter_value
           (Metrics.counter reg "lime_firings_device_total"));
      Alcotest.(check int) "host firings counted" 6
        (Metrics.counter_value (Metrics.counter reg "lime_firings_host_total"));
      let kernel_h = Metrics.histogram reg "lime_comm_kernel_seconds" in
      Alcotest.(check int) "kernel leg observed per device firing" 3
        (Metrics.histogram_count kernel_h);
      Alcotest.(check bool) "kernel leg times are positive" true
        (Metrics.histogram_sum kernel_h > 0.0);
      let exposed = Metrics.expose reg in
      Alcotest.(check bool) "exposition names the comm legs" true
        (Lime_support.Util.contains_substring
           ~sub:"lime_comm_pcie_seconds_count" exposed))

let () =
  Alcotest.run "service"
    [
      ( "digest",
        [
          Alcotest.test_case "field order" `Quick test_digest_field_order;
          Alcotest.test_case "canonical config" `Quick
            test_digest_config_canonical;
          Alcotest.test_case "config round-trip" `Quick test_config_roundtrip;
        ] );
      ( "kcache",
        [
          Alcotest.test_case "lru eviction order" `Quick
            test_lru_eviction_order;
          Alcotest.test_case "hit/miss counters" `Quick test_hit_miss_counters;
          Alcotest.test_case "coalescing" `Quick test_coalescing;
        ] );
      ( "tunestore",
        [
          Alcotest.test_case "round trip" `Quick test_tunestore_roundtrip;
          Alcotest.test_case "sweep consults store" `Quick
            test_sweep_consults_tunestore;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "exposition snapshot" `Quick
            test_metrics_exposition_snapshot;
          Alcotest.test_case "kind collision" `Quick test_metric_kind_collision;
          Alcotest.test_case "help escaping" `Quick test_metrics_help_escaping;
          Alcotest.test_case "labeled family" `Quick
            test_metrics_labeled_family;
          Alcotest.test_case "exemplar exposition" `Quick
            test_metrics_exemplar_exposition;
          Alcotest.test_case "summary exposition" `Quick
            test_metrics_summary_exposition;
        ] );
      ( "service",
        [
          Alcotest.test_case "repeat compile cached" `Quick
            test_repeat_compile_served_from_cache;
          Alcotest.test_case "disk cache across services" `Quick
            test_disk_cache_across_services;
          Alcotest.test_case "instrumented engine run" `Quick
            test_instrumented_engine_run;
        ] );
    ]
