(* Shared QCheck plumbing for the test suites.

   One process-wide seed, taken from QCHECK_SEED when set and drawn
   fresh otherwise, drives every property test through [to_alcotest];
   when a property fails, the seed is printed alongside alcotest's
   report so the exact corpus can be replayed locally with

     QCHECK_SEED=<seed> dune runtest

   Suites should use [qsuite]/[to_alcotest] instead of calling
   QCheck_alcotest directly, so no property failure is ever
   unreproducible. *)

let seed : int =
  match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
  | Some s -> s
  | None ->
      Random.self_init ();
      Random.int 1_000_000_000

let rand_state () = Random.State.make [| seed |]

let to_alcotest (t : QCheck.Test.t) : unit Alcotest.test_case =
  let name, speed, run =
    QCheck_alcotest.to_alcotest ~long:false ~rand:(rand_state ()) t
  in
  ( name,
    speed,
    fun arg ->
      try run arg
      with e ->
        Printf.eprintf
          "\n[testutil] property %S failed; rerun with QCHECK_SEED=%d\n%!"
          name seed;
        raise e )

let qsuite name tests = (name, List.map to_alcotest tests)
