(* The streaming quantile sketch (lib/service/sketch): the documented
   rank-error bound against exact order statistics, lossless merging, and
   rolling-window rotation under a manual clock. *)

module Sketch = Lime_service.Sketch

(* durations spanning six decades, like real request latencies *)
let duration_gen =
  QCheck.Gen.(
    map2
      (fun m e -> m *. (10.0 ** float_of_int e))
      (float_range 0.1 1.0) (int_range (-6) 2))

let durations_arb =
  QCheck.make
    ~print:(fun xs -> String.concat ";" (List.map string_of_float xs))
    QCheck.Gen.(list_size (int_range 1 400) duration_gen)

let quantiles = [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ]

let exact_rank sorted q =
  sorted.(Sketch.rank_of q (Array.length sorted) - 1)

(* the headline guarantee: for any stream and any q, the estimate is
   within [alpha] relative error of the exact sample at the shared rank *)
let prop_rank_error_bound =
  QCheck.Test.make ~name:"quantile within alpha of the exact rank" ~count:200
    durations_arb (fun xs ->
      let sk = Sketch.create () in
      List.iter (Sketch.add sk) xs;
      let sorted = Array.of_list xs in
      Array.sort compare sorted;
      List.for_all
        (fun q ->
          match Sketch.quantile sk q with
          | None -> false
          | Some est ->
              let exact = exact_rank sorted q in
              Float.abs (est -. exact)
              <= (Sketch.alpha sk *. exact) +. 1e-12)
        quantiles)

(* merging two sketches must be indistinguishable from one sketch that
   saw both streams: identical counts and identical bucket answers *)
let prop_merge_lossless =
  QCheck.Test.make ~name:"merge equals the combined stream" ~count:100
    (QCheck.pair durations_arb durations_arb) (fun (xs, ys) ->
      let a = Sketch.create () and b = Sketch.create ()
      and both = Sketch.create () in
      List.iter (Sketch.add a) xs;
      List.iter (Sketch.add b) ys;
      List.iter (Sketch.add both) (xs @ ys);
      Sketch.merge ~into:a b;
      Sketch.count a = Sketch.count both
      && Float.abs (Sketch.sum a -. Sketch.sum both)
         <= 1e-9 *. Float.max 1.0 (Sketch.sum both)
      && List.for_all
           (fun q -> Sketch.quantile a q = Sketch.quantile both q)
           quantiles)

let prop_merge_associative =
  QCheck.Test.make ~name:"merge is associative" ~count:100
    (QCheck.triple durations_arb durations_arb durations_arb)
    (fun (xs, ys, zs) ->
      let feed vs =
        let s = Sketch.create () in
        List.iter (Sketch.add s) vs;
        s
      in
      (* ((a <- b) <- c)  vs  (a <- (b <- c)) *)
      let left = feed xs in
      Sketch.merge ~into:left (feed ys);
      Sketch.merge ~into:left (feed zs);
      let bc = feed ys in
      Sketch.merge ~into:bc (feed zs);
      let right = feed xs in
      Sketch.merge ~into:right bc;
      Sketch.count left = Sketch.count right
      && List.for_all
           (fun q -> Sketch.quantile left q = Sketch.quantile right q)
           quantiles)

let test_edge_cases () =
  let sk = Sketch.create () in
  Alcotest.(check bool) "empty sketch answers None" true
    (Sketch.quantile sk 0.5 = None);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Sketch.quantile: q must be in [0, 1]") (fun () ->
      ignore (Sketch.quantile sk 1.5));
  (* zero and negative values land in the exact zero bucket *)
  Sketch.add sk 0.0;
  Sketch.add sk (-3.0);
  Sketch.add sk 4.0;
  Alcotest.(check int) "all three counted" 3 (Sketch.count sk);
  Alcotest.(check bool) "median is the zero bucket" true
    (Sketch.quantile sk 0.5 = Some 0.0);
  (match Sketch.quantile sk 1.0 with
  | Some v ->
      Alcotest.(check bool) "max within 1%" true (Float.abs (v -. 4.0) < 0.05)
  | None -> Alcotest.fail "non-empty sketch");
  Alcotest.check_raises "mismatched alphas refuse to merge"
    (Invalid_argument "Sketch.merge: sketches have different alpha")
    (fun () ->
      Sketch.merge ~into:sk (Sketch.create ~alpha:0.05 ()))

let test_rank_convention () =
  (* the convention both the bench gate and the exposition rely on *)
  Alcotest.(check int) "q=0 is rank 1" 1 (Sketch.rank_of 0.0 100);
  Alcotest.(check int) "median of 100 is rank 50" 50 (Sketch.rank_of 0.5 100);
  Alcotest.(check int) "p99 of 100 is rank 99" 99 (Sketch.rank_of 0.99 100);
  Alcotest.(check int) "q=1 clamps to n" 100 (Sketch.rank_of 1.0 100);
  Alcotest.(check int) "p99 of 3 is rank 3" 3 (Sketch.rank_of 0.99 3)

(* rotation under a manual clock: a 5-slot ring of one-minute intervals *)
let test_window_rotation () =
  let now = ref 0.0 in
  let w =
    Sketch.window ~interval_s:60.0 ~slots:5 ~clock:(fun () -> !now) ()
  in
  Alcotest.(check (float 1e-9)) "span is slots x interval" 300.0
    (Sketch.window_span_s w);
  Sketch.window_add w 1.0;
  (match Sketch.window_quantile w 60.0 0.5 with
  | Some v ->
      Alcotest.(check bool) "current interval visible" true
        (Float.abs (v -. 1.0) < 0.02)
  | None -> Alcotest.fail "fresh value not visible");
  (* two intervals later: the 1m view covers only ids [e-1, e], so the
     old sample has aged out of it but still sits in the 5m view *)
  now := 120.0;
  Sketch.window_add w 5.0;
  let one_m = Sketch.window_sketch w 60.0 in
  Alcotest.(check int) "1m view holds only the new sample" 1
    (Sketch.count one_m);
  (match Sketch.quantile one_m 0.5 with
  | Some v ->
      Alcotest.(check bool) "and it is the new value" true
        (Float.abs (v -. 5.0) < 0.1)
  | None -> Alcotest.fail "1m view empty");
  Alcotest.(check int) "5m view holds both" 2
    (Sketch.count (Sketch.window_sketch w 300.0));
  (* six intervals later the slot holding the first sample has been
     recycled: the 5m view sees one sample, the all-time totals both *)
  now := 360.0;
  Alcotest.(check int) "rotated-out sample gone from the 5m view" 1
    (Sketch.count (Sketch.window_sketch w 300.0));
  Alcotest.(check int) "all-time count immune to rotation" 2
    (Sketch.window_count w);
  (* twelve intervals: every slot id is stale, the window is empty *)
  now := 720.0;
  Alcotest.(check bool) "fully-rotated window answers None" true
    (Sketch.window_quantile w 300.0 0.5 = None);
  Alcotest.(check int) "all-time count still intact" 2 (Sketch.window_count w);
  Sketch.window_clear w;
  Alcotest.(check int) "clear zeroes the totals" 0 (Sketch.window_count w)

(* a slot is re-zeroed lazily when its interval id comes around again:
   writing into the recycled slot must not resurrect the old samples *)
let test_window_slot_recycling () =
  let now = ref 0.0 in
  let w =
    Sketch.window ~interval_s:1.0 ~slots:3 ~clock:(fun () -> !now) ()
  in
  Sketch.window_add w 10.0;
  (* interval 3 maps onto interval 0's slot *)
  now := 3.0;
  Sketch.window_add w 20.0;
  let sk = Sketch.window_sketch w 3.0 in
  Alcotest.(check int) "recycled slot holds only the new sample" 1
    (Sketch.count sk);
  match Sketch.quantile sk 1.0 with
  | Some v ->
      Alcotest.(check bool) "old sample not resurrected" true (v > 15.0)
  | None -> Alcotest.fail "window empty"

let () =
  Alcotest.run "sketch"
    [
      ( "bounds",
        [
          QCheck_alcotest.to_alcotest prop_rank_error_bound;
          Alcotest.test_case "edge cases" `Quick test_edge_cases;
          Alcotest.test_case "rank convention" `Quick test_rank_convention;
        ] );
      ( "merge",
        [
          QCheck_alcotest.to_alcotest prop_merge_lossless;
          QCheck_alcotest.to_alcotest prop_merge_associative;
        ] );
      ( "windows",
        [
          Alcotest.test_case "rotation" `Quick test_window_rotation;
          Alcotest.test_case "slot recycling" `Quick
            test_window_slot_recycling;
        ] );
    ]
