(* The SLO evaluator (lib/service/slo): spec parsing, burn-rate math, and
   the multi-window alert state machine, all under a manual clock. *)

module Slo = Lime_service.Slo

let def = Alcotest.testable (Fmt.of_to_string Slo.render_spec) ( = )

let parse_ok spec =
  match Slo.parse_spec spec with
  | Ok d -> d
  | Error msg -> Alcotest.failf "%s should parse, got: %s" spec msg

let parse_err spec =
  match Slo.parse_spec spec with
  | Ok d -> Alcotest.failf "%s should be rejected, parsed %s" spec (Slo.render_spec d)
  | Error msg -> msg

let test_parse_spec () =
  Alcotest.check def "availability"
    { Slo.d_name = "availability"; d_kind = Slo.Availability; d_objective = 0.99 }
    (parse_ok "availability:0.99");
  Alcotest.check def "latency with threshold"
    { Slo.d_name = "latency"; d_kind = Slo.Latency 1.0; d_objective = 0.95 }
    (parse_ok "latency:0.95:1.0");
  Alcotest.check def "explicit name"
    { Slo.d_name = "compile"; d_kind = Slo.Latency 0.25; d_objective = 0.999 }
    (parse_ok "compile=latency:0.999:0.25");
  (* every rejection names what is wrong *)
  let contains sub s = Lime_support.Util.contains_substring ~sub s in
  Alcotest.(check bool) "unknown kind named" true
    (contains "kind" (parse_err "throughput:0.9"));
  Alcotest.(check bool) "objective 0 rejected" true
    (contains "objective" (parse_err "availability:0"));
  Alcotest.(check bool) "objective 1 rejected" true
    (contains "objective" (parse_err "availability:1"));
  Alcotest.(check bool) "latency needs a threshold" true
    (contains "THRESHOLD" (parse_err "latency:0.95"));
  Alcotest.(check bool) "negative threshold rejected" true
    (contains "threshold" (parse_err "latency:0.95:-1"));
  Alcotest.(check bool) "availability takes no threshold" true
    (contains "takes only OBJECTIVE" (parse_err "availability:0.99:1.0"));
  Alcotest.(check bool) "garbage rejected" true ("" <> parse_err "nonsense")

let test_render_roundtrip () =
  List.iter
    (fun spec ->
      Alcotest.check def (spec ^ " round-trips") (parse_ok spec)
        (parse_ok (Slo.render_spec (parse_ok spec))))
    [ "availability:0.99"; "latency:0.95:1.0"; "compile=latency:0.999:0.25" ]

(* drive the evaluator with a manual clock through the full alert
   lifecycle: healthy -> warn (fast window burning) -> firing (slow
   window catches up) -> healthy again as the bad period rotates out *)
let test_alert_lifecycle () =
  let now = ref 0.0 in
  let t =
    Slo.create ~fast_s:300.0 ~slow_s:3600.0 ~burn_factor:14.4
      ~clock:(fun () -> !now)
      [ { Slo.d_name = "avail"; d_kind = Slo.Availability; d_objective = 0.99 } ]
  in
  let status () =
    match Slo.evaluate t with [ s ] -> s | _ -> Alcotest.fail "one status"
  in
  (* an empty window burns nothing *)
  let s = status () in
  Alcotest.(check bool) "empty evaluator is healthy" true
    (s.Slo.st_state = Slo.Healthy);
  Alcotest.(check (float 1e-9)) "empty burn is 0" 0.0 s.Slo.st_fast_burn;
  (* an hour of good traffic, ten per minute *)
  for m = 0 to 59 do
    now := float_of_int m *. 60.0;
    for _ = 1 to 10 do
      Slo.record t ~ok:true ~duration_s:0.01
    done
  done;
  Alcotest.(check bool) "good traffic stays healthy" true
    ((status ()).Slo.st_state = Slo.Healthy);
  (* now every request fails: the fast window saturates within 5
     minutes (burn = 1.0 / 0.01 = 100 >= 14.4) while the slow window,
     still mostly good, lags below the factor -> Warn *)
  for m = 60 to 64 do
    now := float_of_int m *. 60.0;
    for _ = 1 to 10 do
      Slo.record t ~ok:false ~duration_s:0.01
    done
  done;
  let s = status () in
  Alcotest.(check bool)
    (Printf.sprintf "fast burn %.1f over the factor" s.Slo.st_fast_burn)
    true
    (s.Slo.st_fast_burn >= 14.4);
  Alcotest.(check bool)
    (Printf.sprintf "slow burn %.1f still under" s.Slo.st_slow_burn)
    true
    (s.Slo.st_slow_burn < 14.4);
  Alcotest.(check bool) "fast-only burn is a warn" true
    (s.Slo.st_state = Slo.Warn);
  (* keep failing until the slow window crosses too: 14.4% of an hour *)
  for m = 65 to 75 do
    now := float_of_int m *. 60.0;
    for _ = 1 to 10 do
      Slo.record t ~ok:false ~duration_s:0.01
    done
  done;
  let s = status () in
  Alcotest.(check bool) "both windows burning fires" true
    (s.Slo.st_state = Slo.Firing);
  Alcotest.(check int) "good events tallied" 600 s.Slo.st_good;
  Alcotest.(check int) "bad events tallied" 160 s.Slo.st_bad;
  (* silence: two hours later every failure has rotated out of both
     windows, and empty windows burn 0 *)
  now := !now +. 7200.0;
  Alcotest.(check bool) "alert clears after rotation" true
    ((status ()).Slo.st_state = Slo.Healthy)

let test_latency_objective () =
  let now = ref 0.0 in
  let t =
    Slo.create ~clock:(fun () -> !now)
      [ { Slo.d_name = "lat"; d_kind = Slo.Latency 0.5; d_objective = 0.9 } ]
  in
  (* a slow success is bad under a latency objective, good under none *)
  Slo.record t ~ok:true ~duration_s:0.1;
  Slo.record t ~ok:true ~duration_s:2.0;
  Slo.record t ~ok:false ~duration_s:0.1;
  let s = List.hd (Slo.evaluate t) in
  Alcotest.(check int) "fast success is good" 1 s.Slo.st_good;
  Alcotest.(check int) "slow success and failure are bad" 2 s.Slo.st_bad;
  (* bad fraction 2/3 against a 10% budget: burn ~6.7 *)
  Alcotest.(check bool)
    (Printf.sprintf "burn %.2f ~ 6.67" s.Slo.st_fast_burn)
    true
    (Float.abs (s.Slo.st_fast_burn -. (2.0 /. 3.0 /. 0.1)) < 1e-6)

let test_state_names () =
  Alcotest.(check string) "ok" "ok" (Slo.state_name Slo.Healthy);
  Alcotest.(check string) "warn" "warn" (Slo.state_name Slo.Warn);
  Alcotest.(check string) "firing" "firing" (Slo.state_name Slo.Firing)

let () =
  Alcotest.run "slo"
    [
      ( "spec",
        [
          Alcotest.test_case "parse" `Quick test_parse_spec;
          Alcotest.test_case "render round-trip" `Quick test_render_roundtrip;
        ] );
      ( "alerting",
        [
          Alcotest.test_case "lifecycle" `Quick test_alert_lifecycle;
          Alcotest.test_case "latency objective" `Quick test_latency_objective;
          Alcotest.test_case "state names" `Quick test_state_names;
        ] );
    ]
