(* End-to-end tests of the limec command-line compiler: drive the real
   binary over the shipped .lime programs and check its outputs. *)

let find candidates = List.find_opt Sys.file_exists candidates

let limec =
  find [ "../bin/limec.exe"; "bin/limec.exe"; "_build/default/bin/limec.exe" ]

let nbody =
  find
    [
      "../examples/lime/nbody.lime"; "examples/lime/nbody.lime";
      "_build/default/examples/lime/nbody.lime";
    ]

let available = limec <> None && nbody <> None
let limec = Option.value limec ~default:"limec"
let nbody = Option.value nbody ~default:"nbody.lime"

let capture args =
  let out = Filename.temp_file "limec" ".out" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>&1" (Filename.quote limec) args
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let text = In_channel.with_open_text out In_channel.input_all in
  Sys.remove out;
  (code, text)

let skip_unless_available () =
  if not available then
    Alcotest.skip ()

let contains sub text = Lime_support.Util.contains_substring ~sub text

let test_default_summary () =
  skip_unless_available ();
  let code, out = capture (nbody ^ " -w NBody.computeForces") in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "kernel named" true
    (contains "NBody.computeForces" out);
  Alcotest.(check bool) "placements shown" true (contains "particles" out)

let test_emit_opencl () =
  skip_unless_available ();
  let code, out =
    capture (nbody ^ " -w NBody.computeForces --emit-opencl -c constant+vec")
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "kernel source" true (contains "__kernel void" out);
  Alcotest.(check bool) "constant float4" true
    (contains "__constant float4" out)

let test_estimate () =
  skip_unless_available ();
  let code, out =
    capture
      (nbody
     ^ " -w NBody.computeForces --estimate gtx580 --shape particles=1024x4")
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "device named" true (contains "GTX 580" out);
  Alcotest.(check bool) "estimate printed" true (contains "estimate: total=" out)

let test_sweep () =
  skip_unless_available ();
  let code, out =
    capture
      (nbody ^ " -w NBody.computeForces --sweep gtx8800 --shape particles=1024x4")
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "eight rows" true (contains "Texture" out);
  Alcotest.(check bool) "exploration banner" true
    (contains "memory-mapping exploration" out)

let test_error_reporting () =
  skip_unless_available ();
  (* a type error must exit 1 with a located diagnostic *)
  let bad = Filename.temp_file "bad" ".lime" in
  Out_channel.with_open_text bad (fun oc ->
      Out_channel.output_string oc
        "class C { static local int f(float[[]] xs) { xs[0] = 1.0f; return \
         0; } }");
  let code, out = capture (bad ^ " -w C.f") in
  Sys.remove bad;
  Alcotest.(check int) "exit 1" 1 code;
  Alcotest.(check bool) "diagnostic shown" true (contains "immutable" out);
  Alcotest.(check bool) "location shown" true (contains ".lime:" out)

let test_unknown_worker () =
  skip_unless_available ();
  let code, _ = capture (nbody ^ " -w NBody.missing") in
  Alcotest.(check int) "exit 1" 1 code

let test_bad_shape () =
  skip_unless_available ();
  (* a malformed dimension must be a diagnostic, not an uncaught Failure *)
  let code, out =
    capture
      (nbody
     ^ " -w NBody.computeForces --estimate gtx580 --shape particles=4096xK")
  in
  Alcotest.(check int) "exit 2" 2 code;
  Alcotest.(check bool) "names the flag" true (contains "bad --shape" out);
  Alcotest.(check bool) "shows the offending token" true (contains "\"K\"" out);
  Alcotest.(check bool) "no raw exception" false (contains "int_of_string" out);
  let code, out =
    capture
      (nbody ^ " -w NBody.computeForces --estimate gtx580 --shape particles=0")
  in
  Alcotest.(check int) "zero dim exits 2" 2 code;
  Alcotest.(check bool) "positivity stated" true (contains "positive" out)

let test_unknown_device () =
  skip_unless_available ();
  List.iter
    (fun flag ->
      let code, out =
        capture
          (Printf.sprintf "%s -w NBody.computeForces --%s tpu --shape particles=1024x4"
             nbody flag)
      in
      Alcotest.(check int) (flag ^ " exits 2") 2 code;
      Alcotest.(check bool) (flag ^ " names the device") true
        (contains "unknown device tpu" out);
      Alcotest.(check bool) (flag ^ " lists alternatives") true
        (contains "gtx8800, gtx580, hd5970, corei7" out))
    [ "estimate"; "sweep" ]

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let test_cache_dir_warm_sweep () =
  skip_unless_available ();
  let dir = Filename.temp_file "limec_cache" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let args =
    Printf.sprintf
      "%s -w NBody.computeForces --sweep gtx8800 --shape particles=1024x4 \
       --cache-dir %s"
      nbody (Filename.quote dir)
  in
  let code1, out1 = capture args in
  let code2, out2 = capture args in
  rm_rf dir;
  Alcotest.(check int) "cold run exits 0" 0 code1;
  Alcotest.(check int) "warm run exits 0" 0 code2;
  Alcotest.(check bool) "cold run misses the tunestore" true
    (contains "tunestore: miss" out1);
  Alcotest.(check bool) "warm run hits the tunestore" true
    (contains "tunestore: hit" out2);
  Alcotest.(check bool) "warm run loads the kernel from disk" true
    (contains "kernel cache: hit (disk)" out2)

let test_run_with_stats () =
  skip_unless_available ();
  let matmul =
    find
      [
        "../examples/lime/matmul.lime"; "examples/lime/matmul.lime";
        "_build/default/examples/lime/matmul.lime";
      ]
  in
  match matmul with
  | None -> Alcotest.skip ()
  | Some matmul ->
      let code, out =
        capture
          (matmul
         ^ " -w MatMul.multiply --run MatMulApp.main --arg 6 --arg 2 --stats")
      in
      Alcotest.(check int) "exit 0" 0 code;
      Alcotest.(check bool) "firing summary" true
        (contains "run MatMulApp.main: 2 firings" out);
      Alcotest.(check bool) "comm leg histograms exposed" true
        (contains "lime_comm_pcie_seconds_bucket" out);
      Alcotest.(check bool) "kernel leg counted" true
        (contains "lime_comm_kernel_seconds_count 2" out);
      Alcotest.(check bool) "compile histogram exposed" true
        (contains "lime_compile_seconds_count 1" out)

let test_trace_output () =
  skip_unless_available ();
  let tracefile = Filename.temp_file "limec_trace" ".json" in
  let code, _ =
    capture
      (Printf.sprintf
         "%s -w NBody.computeForces --run NBodyApp.main --arg 16 --arg 1 \
          --trace %s"
         nbody (Filename.quote tracefile))
  in
  let json = In_channel.with_open_text tracefile In_channel.input_all in
  Sys.remove tracefile;
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "json object" true
    (String.length json > 2 && json.[0] = '{');
  Alcotest.(check bool) "traceEvents array" true
    (contains "\"traceEvents\"" json);
  (* the full compile nests in the trace... *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " span present") true (contains name json))
    [
      "pipeline.compile"; "pipeline.parse"; "pipeline.codegen";
      "service.compile"; "kcache.lookup";
    ];
  (* ...and so do all seven communication legs of the firings *)
  List.iter
    (fun leg ->
      Alcotest.(check bool) ("comm." ^ leg ^ " present") true
        (contains ("comm." ^ leg) json))
    [ "java_marshal"; "jni"; "c_marshal"; "setup"; "pcie"; "kernel"; "host" ]

let test_trace_summary_flag () =
  skip_unless_available ();
  let code, out =
    capture (nbody ^ " -w NBody.computeForces --trace-summary")
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "summary banner" true (contains "trace summary" out);
  Alcotest.(check bool) "compile span aggregated" true
    (contains "pipeline.compile" out)

let test_profile_report () =
  skip_unless_available ();
  let code, out =
    capture
      (nbody ^ " -w NBody.computeForces --profile --shape particles=1024x4")
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "profile header" true (contains "kernel profile" out);
  Alcotest.(check bool) "flop mix" true (contains "FLOP mix" out);
  Alcotest.(check bool) "access table names the array" true
    (contains "particles" out);
  (* without --shape the report still renders, marked approximate *)
  let code, out = capture (nbody ^ " -w NBody.computeForces --profile") in
  Alcotest.(check int) "approx exit 0" 0 code;
  Alcotest.(check bool) "approximate counts flagged" true
    (contains "approximate" out)

let test_stats_unaffected_by_trace () =
  skip_unless_available ();
  (* tracing must not disturb the metrics: every deterministic sample
     (counters, firing counts, histogram observation counts — everything
     except the wall-clock-dependent sums/buckets) is identical with and
     without --trace *)
  let deterministic_lines out =
    String.split_on_char '\n' out
    |> List.filter (fun l ->
           contains "_count " l || contains "_total " l
           || contains "lime_firings" l)
    |> String.concat "\n"
  in
  let tracefile = Filename.temp_file "limec_trace" ".json" in
  let base = nbody ^ " -w NBody.computeForces --run NBodyApp.main --arg 8 --arg 1 --stats" in
  let code1, out1 = capture base in
  let code2, out2 =
    capture (base ^ " --trace " ^ Filename.quote tracefile)
  in
  Sys.remove tracefile;
  Alcotest.(check int) "plain exit 0" 0 code1;
  Alcotest.(check int) "traced exit 0" 0 code2;
  Alcotest.(check bool) "some samples compared" true
    (deterministic_lines out1 <> "");
  Alcotest.(check string) "identical metric counts" (deterministic_lines out1)
    (deterministic_lines out2)

let test_jobs_roundtrip () =
  skip_unless_available ();
  (* --jobs 1 is the sequential compiler: byte-identical output *)
  let base = nbody ^ " -w NBody.computeForces --emit-opencl" in
  let code0, out0 = capture base in
  let code1, out1 = capture (base ^ " --jobs 1") in
  let code4, out4 = capture (base ^ " --jobs 4") in
  Alcotest.(check int) "plain exit 0" 0 code0;
  Alcotest.(check int) "--jobs 1 exit 0" 0 code1;
  Alcotest.(check int) "--jobs 4 exit 0" 0 code4;
  Alcotest.(check string) "--jobs 1 output identical" out0 out1;
  Alcotest.(check string) "--jobs 4 output identical" out0 out4

let test_jobs_rejected () =
  skip_unless_available ();
  List.iter
    (fun n ->
      let code, out =
        capture (Printf.sprintf "%s -w NBody.computeForces --jobs=%d" nbody n)
      in
      Alcotest.(check int) (Printf.sprintf "--jobs=%d exits 2" n) 2 code;
      Alcotest.(check bool) "names the flag" true (contains "bad --jobs" out))
    [ 0; -3 ]

let test_multi_file_batch () =
  skip_unless_available ();
  let matmul =
    find
      [
        "../examples/lime/matmul.lime"; "examples/lime/matmul.lime";
        "_build/default/examples/lime/matmul.lime";
      ]
  in
  match matmul with
  | None -> Alcotest.skip ()
  | Some matmul ->
      (* several files with one worker: per-file results, one bad file
         fails its own request without aborting the rest *)
      let code, out =
        capture
          (Printf.sprintf "%s %s -w NBody.computeForces --jobs 4" nbody matmul)
      in
      Alcotest.(check int) "one failure -> exit 1" 1 code;
      Alcotest.(check bool) "nbody compiled" true
        (contains "kernel NBody.computeForces" out);
      Alcotest.(check bool) "matmul failed with diagnostic" true
        (contains "unknown worker" out);
      Alcotest.(check bool) "summary line printed" true
        (contains "1 compiled, 1 failed" out);
      (* batch mode refuses per-artifact actions *)
      let code, out =
        capture
          (Printf.sprintf "%s %s -w NBody.computeForces --emit-opencl" nbody
             matmul)
      in
      Alcotest.(check int) "per-artifact flag exits 2" 2 code;
      Alcotest.(check bool) "explains the restriction" true
        (contains "single FILE" out)

let test_counters_report () =
  skip_unless_available ();
  let code, out =
    capture
      (nbody
     ^ " -w NBody.computeForces --counters gtx8800 --shape particles=4096x4")
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "device named" true (contains "GTX 8800" out);
  Alcotest.(check bool) "transactions row" true (contains "transactions" out);
  Alcotest.(check bool) "coalesced split" true (contains "coalesced" out);
  Alcotest.(check bool) "roofline verdict" true
    (contains "roofline: compute-bound" out);
  Alcotest.(check bool) "arithmetic intensity" true
    (contains "arithmetic intensity" out);
  Alcotest.(check bool) "achieved bandwidth" true
    (contains "achieved bandwidth" out)

let test_counters_matmul () =
  skip_unless_available ();
  let matmul =
    find
      [
        "../examples/lime/matmul.lime"; "examples/lime/matmul.lime";
        "_build/default/examples/lime/matmul.lime";
      ]
  in
  match matmul with
  | None -> Alcotest.skip ()
  | Some matmul ->
      let code, out =
        capture
          (matmul
         ^ " -w MatMul.multiply --counters gtx8800 --shape packed=1024x32")
      in
      Alcotest.(check int) "exit 0" 0 code;
      Alcotest.(check bool) "counter table" true
        (contains "hardware counters" out);
      Alcotest.(check bool) "bank-conflict row" true
        (contains "bank-conflict replays" out);
      Alcotest.(check bool) "roofline line" true (contains "roofline:" out)

let test_counters_requires_shape () =
  skip_unless_available ();
  let code, out = capture (nbody ^ " -w NBody.computeForces --counters gtx8800") in
  Alcotest.(check int) "exit 2" 2 code;
  Alcotest.(check bool) "names the missing flag" true
    (contains "--counters requires at least one --shape" out)

let test_batch_rejects_inspection_flags () =
  skip_unless_available ();
  let matmul =
    find
      [
        "../examples/lime/matmul.lime"; "examples/lime/matmul.lime";
        "_build/default/examples/lime/matmul.lime";
      ]
  in
  match matmul with
  | None -> Alcotest.skip ()
  | Some matmul ->
      List.iter
        (fun flags ->
          let code, out =
            capture
              (Printf.sprintf "%s %s -w NBody.computeForces %s" nbody matmul
                 flags)
          in
          Alcotest.(check int) (flags ^ " exits 2") 2 code;
          Alcotest.(check bool) (flags ^ " explains the restriction") true
            (contains "single FILE" out))
        [
          "--counters gtx8800 --shape particles=1024x4";
          "--profile --shape particles=1024x4";
          "--shape particles=1024x4";
        ]

let test_batch_manifest () =
  skip_unless_available ();
  let matmul =
    find
      [
        "../examples/lime/matmul.lime"; "examples/lime/matmul.lime";
        "_build/default/examples/lime/matmul.lime";
      ]
  in
  match matmul with
  | None -> Alcotest.skip ()
  | Some matmul ->
      let manifest = Filename.temp_file "limec_batch" ".manifest" in
      Out_channel.with_open_text manifest (fun oc ->
          Printf.fprintf oc
            "# two programs, the second under an explicit config\n\
             %s NBody.computeForces\n\n\
             %s MatMul.multiply local+pad+vec  # inline comment\n"
            nbody matmul);
      let code, out =
        capture
          (Printf.sprintf "--batch %s --jobs 2" (Filename.quote manifest))
      in
      Sys.remove manifest;
      Alcotest.(check int) "exit 0" 0 code;
      Alcotest.(check bool) "nbody compiled" true
        (contains "kernel NBody.computeForces" out);
      Alcotest.(check bool) "matmul compiled" true
        (contains "kernel MatMul.multiply" out);
      Alcotest.(check bool) "batch summary" true
        (contains "2 compiled, 0 failed" out)

let test_cache_capacity_rejected () =
  skip_unless_available ();
  List.iter
    (fun n ->
      let code, out =
        capture
          (Printf.sprintf "%s -w NBody.computeForces --cache-capacity=%d"
             nbody n)
      in
      Alcotest.(check int) (Printf.sprintf "--cache-capacity=%d exits 2" n) 2
        code;
      Alcotest.(check bool) "names the flag" true
        (contains "bad --cache-capacity" out);
      Alcotest.(check bool) "states the requirement" true
        (contains "positive" out))
    [ 0; -4 ]

let test_cache_capacity_accepted () =
  skip_unless_available ();
  (* an explicit capacity changes nothing about a single compile's output *)
  let base = nbody ^ " -w NBody.computeForces --emit-opencl" in
  let code0, out0 = capture base in
  let code1, out1 = capture (base ^ " --cache-capacity 3") in
  Alcotest.(check int) "plain exit 0" 0 code0;
  Alcotest.(check int) "capped exit 0" 0 code1;
  Alcotest.(check string) "output identical" out0 out1

let test_batch_manifest_malformed () =
  skip_unless_available ();
  (* a bad line must be reported as FILE:LINE, 1-based, before any
     compilation starts *)
  let manifest = Filename.temp_file "limec_batch" ".manifest" in
  Out_channel.with_open_text manifest (fun oc ->
      Printf.fprintf oc
        "# header comment\n%s NBody.computeForces\ntoo many words on this \
         line here\n"
        nbody);
  let code, out = capture (Printf.sprintf "--batch %s" (Filename.quote manifest)) in
  Alcotest.(check int) "exit 2" 2 code;
  Alcotest.(check bool) "names file and line" true
    (contains (Filename.basename manifest ^ ":3") out);
  Alcotest.(check bool) "shows the expected grammar" true
    (contains "expected FILE WORKER [CONFIG]" out);
  Alcotest.(check bool) "quotes the offending line" true
    (contains "too many words" out);
  Alcotest.(check bool) "nothing compiled" false (contains "kernel " out);
  (* an unknown config name is caught at parse time with the same shape *)
  Out_channel.with_open_text manifest (fun oc ->
      Printf.fprintf oc "%s NBody.computeForces warp-speed\n" nbody);
  let code, out = capture (Printf.sprintf "--batch %s" (Filename.quote manifest)) in
  Sys.remove manifest;
  Alcotest.(check int) "unknown config exits 2" 2 code;
  Alcotest.(check bool) "line 1 named" true
    (contains (Filename.basename manifest ^ ":1") out);
  Alcotest.(check bool) "config named" true (contains "warp-speed" out);
  Alcotest.(check bool) "alternatives listed" true
    (contains "local+pad+vec" out)

(* daemon flag validation: every bad value must exit 2 with a usage
   message before the socket is ever bound *)

let dead_sock () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "limed-cli-%d.sock" (Unix.getpid ()))

let test_daemon_bad_http_port () =
  skip_unless_available ();
  List.iter
    (fun p ->
      let code, out =
        capture (Printf.sprintf "--daemon %s --http=%d" (dead_sock ()) p)
      in
      Alcotest.(check int) (Printf.sprintf "--http=%d exits 2" p) 2 code;
      Alcotest.(check bool) "names the flag" true (contains "bad --http" out);
      Alcotest.(check bool) "explains the range" true
        (contains "port" out))
    [ -1; 65536; 100000 ]

let test_daemon_bad_flight_capacity () =
  skip_unless_available ();
  let code, out =
    capture
      (Printf.sprintf "--daemon %s --flight-capacity 0" (dead_sock ()))
  in
  Alcotest.(check int) "--flight-capacity 0 exits 2" 2 code;
  Alcotest.(check bool) "names the flag" true
    (contains "bad --flight-capacity" out);
  Alcotest.(check bool) "states the requirement" true
    (contains "at least 1" out)

let test_daemon_bad_slo_spec () =
  skip_unless_available ();
  List.iter
    (fun spec ->
      let code, out =
        capture
          (Printf.sprintf "--daemon %s --slo %s" (dead_sock ())
             (Filename.quote spec))
      in
      Alcotest.(check int) (spec ^ " exits 2") 2 code;
      Alcotest.(check bool) "names the flag" true (contains "bad --slo" out);
      Alcotest.(check bool) "shows the grammar" true
        (contains "[NAME=]" out))
    [ "throughput:0.9"; "latency:0.95"; "availability:2" ]

let test_daemon_flags_need_daemon () =
  skip_unless_available ();
  List.iter
    (fun flags ->
      let code, out =
        capture
          (Printf.sprintf "%s -w NBody.computeForces %s" nbody flags)
      in
      Alcotest.(check int) (flags ^ " exits 2") 2 code;
      Alcotest.(check bool) (flags ^ " points at --daemon") true
        (contains "--daemon" out))
    [ "--flight-capacity 8"; "--flight-dump /tmp/fr.jsonl";
      "--slo availability:0.99" ]

(* ------------------------------------------------------------------ *)
(* bench/main.exe: workload validation and fuzz-traffic flags          *)
(* ------------------------------------------------------------------ *)

let bench =
  find
    [
      "../bench/main.exe"; "bench/main.exe"; "_build/default/bench/main.exe";
    ]

let bench_available = bench <> None
let bench = Option.value bench ~default:"bench/main.exe"

let capture_bench args =
  let out = Filename.temp_file "bench" ".out" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>&1" (Filename.quote bench) args
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let text = In_channel.with_open_text out In_channel.input_all in
  Sys.remove out;
  (code, text)

let skip_unless_bench () = if not bench_available then Alcotest.skip ()

(* the registry-miss UX: a typo'd workload lists what exists, exit 2 *)
let test_unknown_workload () =
  skip_unless_bench ();
  let code, out = capture_bench "--workload warp-speed validate" in
  Alcotest.(check int) "exit 2" 2 code;
  Alcotest.(check bool) "names the unknown workload" true
    (contains "unknown workload warp-speed" out);
  Alcotest.(check bool) "lists the available names" true
    (contains "available:" out && contains "TMatMul" out
    && contains "Mosaic" out);
  Alcotest.(check bool) "nothing validated" false (contains "Benchmark" out)

let test_workload_filter () =
  skip_unless_bench ();
  let code, out = capture_bench "--workload TMatMul validate" in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "selected workload ran" true (contains "TMatMul" out);
  Alcotest.(check bool) "others filtered out" false (contains "Mosaic" out)

(* a tiny generated-traffic run against the in-process daemon: the
   report must carry the cache and tail-latency lines and exit clean *)
let test_fuzz_traffic_smoke () =
  skip_unless_bench ();
  let code, out = capture_bench "--fuzz 12 --seed 2" in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "names the traffic source" true
    (contains "generated programs" out);
  Alcotest.(check bool) "reports cache provenance" true
    (contains "cache hits:" out);
  Alcotest.(check bool) "reports tail latency" true
    (contains "p99" out && contains "p50" out);
  Alcotest.(check bool) "no request errors" true (contains "errors: 0" out)

let test_devices_table () =
  skip_unless_available ();
  let code, out = capture "--devices" in
  Alcotest.(check int) "exit 0" 0 code;
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " listed") true (contains name out))
    [ "gtx8800"; "gtx580"; "hd5970"; "corei7" ];
  Alcotest.(check bool) "PCIe column" true (contains "PCIe" out)

let test_multi_device_auto_run () =
  skip_unless_available ();
  let code, out =
    capture
      (nbody
     ^ " -w NBody.computeForces --run NBodyApp.main --arg 24 --arg 1 \
        --multi-device auto")
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "placement line" true (contains "placement " out);
  Alcotest.(check bool) "overlap report" true (contains "overlapped: " out)

let test_multi_device_spec_run () =
  skip_unless_available ();
  let code, out =
    capture
      (nbody
     ^ " -w NBody.computeForces --run NBodyApp.main --arg 24 --arg 1 \
        --multi-device NBody.computeForces=gtx580")
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "pinned device honoured" true
    (contains "NBody.computeForces=gtx580" out)

let test_multi_device_needs_run () =
  skip_unless_available ();
  let code, out =
    capture (nbody ^ " -w NBody.computeForces --multi-device auto")
  in
  Alcotest.(check int) "exit 2" 2 code;
  Alcotest.(check bool) "explains the requirement" true
    (contains "--multi-device needs --run" out)

let test_multi_device_bad_spec () =
  skip_unless_available ();
  let code, out =
    capture
      (nbody
     ^ " -w NBody.computeForces --run NBodyApp.main --arg 24 --arg 1 \
        --multi-device NBody.computeForces=nodev")
  in
  Alcotest.(check int) "exit 2" 2 code;
  Alcotest.(check bool) "names the bad device" true
    (contains "bad --multi-device" out)

let test_fuzz_rejects_bad_count () =
  skip_unless_bench ();
  let code, out = capture_bench "--fuzz zero" in
  Alcotest.(check int) "exit 2" 2 code;
  Alcotest.(check bool) "explains the expectation" true
    (contains "expected a positive integer" out)

let () =
  Alcotest.run "cli"
    [
      ( "limec",
        [
          Alcotest.test_case "default summary" `Quick test_default_summary;
          Alcotest.test_case "emit-opencl" `Quick test_emit_opencl;
          Alcotest.test_case "estimate" `Quick test_estimate;
          Alcotest.test_case "sweep" `Quick test_sweep;
          Alcotest.test_case "error reporting" `Quick test_error_reporting;
          Alcotest.test_case "unknown worker" `Quick test_unknown_worker;
          Alcotest.test_case "bad shape" `Quick test_bad_shape;
          Alcotest.test_case "unknown device" `Quick test_unknown_device;
          Alcotest.test_case "cache-dir warm sweep" `Quick
            test_cache_dir_warm_sweep;
          Alcotest.test_case "run with stats" `Quick test_run_with_stats;
          Alcotest.test_case "trace output" `Quick test_trace_output;
          Alcotest.test_case "trace summary flag" `Quick
            test_trace_summary_flag;
          Alcotest.test_case "profile report" `Quick test_profile_report;
          Alcotest.test_case "stats unaffected by trace" `Quick
            test_stats_unaffected_by_trace;
          Alcotest.test_case "--jobs round-trips" `Quick test_jobs_roundtrip;
          Alcotest.test_case "--jobs rejects non-positive" `Quick
            test_jobs_rejected;
          Alcotest.test_case "multi-file batch" `Quick test_multi_file_batch;
          Alcotest.test_case "counters report (nbody)" `Quick
            test_counters_report;
          Alcotest.test_case "counters report (matmul)" `Quick
            test_counters_matmul;
          Alcotest.test_case "counters needs a shape" `Quick
            test_counters_requires_shape;
          Alcotest.test_case "batch rejects inspection flags" `Quick
            test_batch_rejects_inspection_flags;
          Alcotest.test_case "batch manifest" `Quick test_batch_manifest;
          Alcotest.test_case "--cache-capacity rejects non-positive" `Quick
            test_cache_capacity_rejected;
          Alcotest.test_case "--cache-capacity round-trips" `Quick
            test_cache_capacity_accepted;
          Alcotest.test_case "malformed manifest names file:line" `Quick
            test_batch_manifest_malformed;
          Alcotest.test_case "--http rejects bad ports" `Quick
            test_daemon_bad_http_port;
          Alcotest.test_case "--flight-capacity rejects 0" `Quick
            test_daemon_bad_flight_capacity;
          Alcotest.test_case "--slo rejects bad specs" `Quick
            test_daemon_bad_slo_spec;
          Alcotest.test_case "daemon flags need --daemon" `Quick
            test_daemon_flags_need_daemon;
          Alcotest.test_case "--devices table" `Quick test_devices_table;
          Alcotest.test_case "multi-device auto run" `Quick
            test_multi_device_auto_run;
          Alcotest.test_case "multi-device pinned spec" `Quick
            test_multi_device_spec_run;
          Alcotest.test_case "multi-device needs --run" `Quick
            test_multi_device_needs_run;
          Alcotest.test_case "multi-device rejects bad spec" `Quick
            test_multi_device_bad_spec;
        ] );
      ( "bench",
        [
          Alcotest.test_case "unknown workload lists available" `Quick
            test_unknown_workload;
          Alcotest.test_case "workload filter" `Quick test_workload_filter;
          Alcotest.test_case "fuzz traffic smoke" `Quick
            test_fuzz_traffic_smoke;
          Alcotest.test_case "fuzz rejects bad count" `Quick
            test_fuzz_rejects_bad_count;
        ] );
    ]
