(** Versioned machine-readable benchmark results: the `BENCH_<name>.json`
    files emitted by `bench/main.exe --json` and diffed by `--baseline`.

    The schema (documented in [doc/SERVICE.md]) is one object with run
    metadata — schema name, version, run name, quick flag, input seed —
    and one result entry per benchmark × device: modelled end-to-end
    time, kernel-leg time, speedup vs. the JVM bytecode baseline, and the
    headline simulated hardware counters (occupancy, bank-conflict
    replays, arithmetic intensity, roofline class).  Emission and parsing
    are both hand-written here (no JSON dependency); [of_json] accepts any
    file up to the current [schema_version]. *)

val schema_name : string
val schema_version : int

type entry = {
  e_bench : string;
  e_device : string;
  e_time_s : float;  (** modelled end-to-end seconds per firing *)
  e_kernel_s : float;  (** kernel leg only *)
  e_speedup : float;  (** vs the JVM bytecode baseline *)
  e_occupancy : float;
  e_bank_replays : float;
  e_intensity : float;  (** arithmetic intensity flop/byte; -1 when infinite *)
  e_roofline : string;
}

type run = {
  r_name : string;
  r_quick : bool;
  r_seed : int;
  r_entries : entry list;
}

val devices : Gpusim.Device.t list
(** The per-device columns of a run: the three GPUs plus the Core i7. *)

val collect :
  ?quick:bool -> ?seed:int -> ?multidev:bool -> name:string -> unit -> run
(** Run the whole registry on every built-in device and collect one entry
    per pair.  [quick] uses the test-scale programs and inputs; [seed]
    feeds the deterministic input builders (default 1).  [multidev]
    (default false — it probes and searches every pipeline, which costs
    seconds) appends one {!Experiments.multidev_rows} entry per pipelined
    workload under the pseudo-device ["multi-device"]: time is the placed
    makespan per firing, speedup is vs the best single device, and the
    roofline slot records the search mode. *)

val to_json : run -> string
val of_json : string -> (run, string) result
val read_file : string -> (run, string) result
val write_file : string -> run -> unit

type regression = {
  rg_bench : string;
  rg_device : string;
  rg_kind : [ `Slower of float | `Missing ];
      (** [`Slower ratio]: current/baseline time ratio beyond threshold *)
}

val diff :
  ?threshold:float -> baseline:run -> current:run -> unit -> regression list
(** Entries of [baseline] that regressed in [current]: slower than
    [1 + threshold] (default 0.10) times the baseline time, or missing
    from the current run entirely.  Entries new in [current] are not
    regressions. *)

val render_regression : regression -> string
