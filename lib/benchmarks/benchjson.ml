(** Versioned machine-readable benchmark results — see the interface. *)

module Device = Gpusim.Device
module Model = Gpusim.Model
module Counters = Gpusim.Counters
module Memopt = Lime_gpu.Memopt

let schema_name = "lime-bench"
let schema_version = 1

type entry = {
  e_bench : string;
  e_device : string;
  e_time_s : float;  (** modelled end-to-end seconds per firing *)
  e_kernel_s : float;  (** kernel leg only *)
  e_speedup : float;  (** vs the JVM bytecode baseline *)
  e_occupancy : float;
  e_bank_replays : float;
  e_intensity : float;  (** arithmetic intensity, flop/byte *)
  e_roofline : string;
}

type run = {
  r_name : string;
  r_quick : bool;
  r_seed : int;
  r_entries : entry list;
}

(* ------------------------------------------------------------------ *)
(* Collection                                                          *)
(* ------------------------------------------------------------------ *)

let devices =
  [ Device.gtx8800; Device.gtx580; Device.hd5970; Device.core_i7 ]

(* The multi-device placement rows ride along under a pseudo-device so the
   regression diff covers the scheduler too: time is the placed makespan
   per firing, speedup is vs the best single device, and the roofline slot
   records the search mode. *)
let multidev_entries ~quick () : entry list =
  List.map
    (fun (r : Experiments.multidev_row) ->
      {
        e_bench = r.Experiments.md_bench;
        e_device = "multi-device";
        e_time_s = r.Experiments.md_placed_s /. float_of_int r.Experiments.md_firings;
        e_kernel_s = 0.0;
        e_speedup =
          (if r.Experiments.md_placed_s > 0.0 then
             r.Experiments.md_single_s /. r.Experiments.md_placed_s
           else 0.0);
        e_occupancy = 0.0;
        e_bank_replays = 0.0;
        e_intensity = -1.0;
        e_roofline =
          (if r.Experiments.md_exhaustive then "exhaustive" else "beam");
      })
    (Experiments.multidev_rows ~quick ())

let collect ?(quick = false) ?(seed = 1) ?(multidev = false) ~name () : run =
  let entries =
    List.concat_map
      (fun (b : Bench_def.t) ->
        let p = Experiments.prepare ~quick ~seed b in
        let base = Experiments.baseline_seconds p in
        let decisions =
          Memopt.optimize b.Bench_def.best_config
            p.Experiments.p_compiled.Lime_gpu.Pipeline.cp_kernel
        in
        let prof = Experiments.profile_of p decisions in
        let bindings = Experiments.bindings_of p decisions in
        List.map
          (fun (d : Device.t) ->
            let ee = Experiments.endtoend p d b.Bench_def.best_config in
            let _, c = Model.kernel_time_ex d prof bindings in
            {
              e_bench = b.Bench_def.name;
              e_device = d.Device.name;
              e_time_s = ee.Experiments.ee_total_s;
              e_kernel_s = ee.Experiments.ee_kernel_s;
              e_speedup =
                (if ee.Experiments.ee_total_s > 0.0 then
                   base /. ee.Experiments.ee_total_s
                 else 0.0);
              e_occupancy = c.Counters.ct_occupancy;
              e_bank_replays = c.Counters.ct_bank_replays;
              e_intensity =
                (let i = Counters.arithmetic_intensity c in
                 if Float.is_finite i then i else -1.0);
              e_roofline = Counters.roofline_name (Counters.classify c);
            })
          devices)
      Registry.workloads
  in
  let entries =
    if multidev then entries @ multidev_entries ~quick () else entries
  in
  { r_name = name; r_quick = quick; r_seed = seed; r_entries = entries }

(* ------------------------------------------------------------------ *)
(* JSON emission                                                       *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* %.9g survives a float round-trip for every quantity we store. *)
let num v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let to_json (r : run) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\n  \"schema\": \"%s\",\n  \"version\": %d,\n  \"name\": \"%s\",\n\
       \  \"quick\": %b,\n  \"seed\": %d,\n  \"results\": [\n"
       schema_name schema_version (escape r.r_name) r.r_quick r.r_seed);
  List.iteri
    (fun i e ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"bench\": \"%s\", \"device\": \"%s\", \"time_s\": %s, \
            \"kernel_s\": %s, \"speedup\": %s, \"occupancy\": %s, \
            \"bank_replays\": %s, \"intensity\": %s, \"roofline\": \"%s\"}%s\n"
           (escape e.e_bench) (escape e.e_device) (num e.e_time_s)
           (num e.e_kernel_s) (num e.e_speedup) (num e.e_occupancy)
           (num e.e_bank_replays) (num e.e_intensity) (escape e.e_roofline)
           (if i = List.length r.r_entries - 1 then "" else ",")))
    r.r_entries;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* JSON parsing (minimal, no external dependency)                      *)
(* ------------------------------------------------------------------ *)

type json =
  | JNull
  | JBool of bool
  | JNum of float
  | JStr of string
  | JList of json list
  | JObj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit
    then begin
      pos := !pos + String.length lit;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'
               | '\\' -> Buffer.add_char b '\\'
               | '/' -> Buffer.add_char b '/'
               | 'n' -> Buffer.add_char b '\n'
               | 't' -> Buffer.add_char b '\t'
               | 'r' -> Buffer.add_char b '\r'
               | 'b' -> Buffer.add_char b '\b'
               | 'f' -> Buffer.add_char b '\012'
               | 'u' ->
                   if !pos + 4 >= n then fail "bad \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   (match int_of_string_opt ("0x" ^ hex) with
                   | Some code when code < 128 ->
                       Buffer.add_char b (Char.chr code)
                   | Some _ -> Buffer.add_char b '?'
                   | None -> fail "bad \\u escape");
                   pos := !pos + 4
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            advance ();
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> JStr (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          JObj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or } in object"
          in
          members ();
          JObj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          JList []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ] in array"
          in
          elements ();
          JList (List.rev !items)
        end
    | Some 't' -> literal "true" (JBool true)
    | Some 'f' -> literal "false" (JBool false)
    | Some 'n' -> literal "null" JNull
    | Some _ -> JNum (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing content";
  v

let jfield obj key =
  match obj with
  | JObj fields -> List.assoc_opt key fields
  | _ -> None

let jstr = function Some (JStr s) -> Some s | _ -> None
let jnum = function Some (JNum f) -> Some f | _ -> None
let jbool = function Some (JBool b) -> Some b | _ -> None

let of_json (text : string) : (run, string) result =
  match parse_json text with
  | exception Parse_error msg -> Error msg
  | j -> (
      match (jstr (jfield j "schema"), jnum (jfield j "version")) with
      | Some s, _ when s <> schema_name ->
          Error (Printf.sprintf "not a %s file (schema %S)" schema_name s)
      | _, Some v when int_of_float v > schema_version ->
          Error
            (Printf.sprintf "schema version %d is newer than supported %d"
               (int_of_float v) schema_version)
      | Some _, Some _ -> (
          let entry_of e =
            match
              ( jstr (jfield e "bench"),
                jstr (jfield e "device"),
                jnum (jfield e "time_s") )
            with
            | Some e_bench, Some e_device, Some e_time_s ->
                Some
                  {
                    e_bench;
                    e_device;
                    e_time_s;
                    e_kernel_s =
                      Option.value ~default:0.0 (jnum (jfield e "kernel_s"));
                    e_speedup =
                      Option.value ~default:0.0 (jnum (jfield e "speedup"));
                    e_occupancy =
                      Option.value ~default:0.0 (jnum (jfield e "occupancy"));
                    e_bank_replays =
                      Option.value ~default:0.0
                        (jnum (jfield e "bank_replays"));
                    e_intensity =
                      Option.value ~default:(-1.0)
                        (jnum (jfield e "intensity"));
                    e_roofline =
                      Option.value ~default:"" (jstr (jfield e "roofline"));
                  }
            | _ -> None
          in
          match jfield j "results" with
          | Some (JList items) ->
              let entries = List.filter_map entry_of items in
              if List.length entries <> List.length items then
                Error "results contain malformed entries"
              else
                Ok
                  {
                    r_name =
                      Option.value ~default:"" (jstr (jfield j "name"));
                    r_quick =
                      Option.value ~default:false (jbool (jfield j "quick"));
                    r_seed =
                      int_of_float
                        (Option.value ~default:0.0 (jnum (jfield j "seed")));
                    r_entries = entries;
                  }
          | _ -> Error "missing results array")
      | _ -> Error "missing schema/version header")

let read_file file : (run, string) result =
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> of_json text

let write_file file (r : run) =
  Out_channel.with_open_text file (fun oc ->
      Out_channel.output_string oc (to_json r))

(* ------------------------------------------------------------------ *)
(* Regression diff                                                     *)
(* ------------------------------------------------------------------ *)

type regression = {
  rg_bench : string;
  rg_device : string;
  rg_kind : [ `Slower of float | `Missing ];
      (** [`Slower ratio]: current/baseline time ratio beyond threshold *)
}

let diff ?(threshold = 0.10) ~(baseline : run) ~(current : run) () :
    regression list =
  let find bench device (r : run) =
    List.find_opt
      (fun e -> e.e_bench = bench && e.e_device = device)
      r.r_entries
  in
  List.filter_map
    (fun (b : entry) ->
      match find b.e_bench b.e_device current with
      | None ->
          Some
            { rg_bench = b.e_bench; rg_device = b.e_device; rg_kind = `Missing }
      | Some c ->
          if b.e_time_s > 0.0 && c.e_time_s > b.e_time_s *. (1.0 +. threshold)
          then
            Some
              {
                rg_bench = b.e_bench;
                rg_device = b.e_device;
                rg_kind = `Slower (c.e_time_s /. b.e_time_s);
              }
          else None)
    baseline.r_entries

let render_regression (r : regression) : string =
  match r.rg_kind with
  | `Missing ->
      Printf.sprintf "%s on %s: missing from current run" r.rg_bench
        r.rg_device
  | `Slower ratio ->
      Printf.sprintf "%s on %s: %.2fx slower than baseline" r.rg_bench
        r.rg_device ratio
