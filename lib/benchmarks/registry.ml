(** The nine-benchmark suite of Table 3, in the paper's order. *)

let all : Bench_def.t list =
  [
    Nbody.single;
    Nbody.double;
    Mosaic.bench;
    Cp.bench;
    Mriq.bench;
    Rpes.bench;
    Crypt.bench;
    Series.single;
    Series.double;
  ]

(** Everything the harness can run: the paper suite plus workloads added
    for subsystems grown since (the rewrite engine's TMatMul showcase).
    [all] stays the paper's nine so the fidelity tables are unchanged. *)
let workloads : Bench_def.t list = all @ [ Tmatmul.bench; Nbody_pipe.bench ]

let find name =
  List.find_opt (fun (b : Bench_def.t) -> b.Bench_def.name = name) workloads

let names = List.map (fun (b : Bench_def.t) -> b.Bench_def.name) workloads

(* Same miss UX as the CLI's device-name validation: a typo'd workload
   answers with everything it could have been. *)
let find_or_err name =
  match find name with
  | Some b -> Ok b
  | None ->
      Error
        (Printf.sprintf "unknown workload %s; available: %s" name
           (String.concat ", " names))

(** The five benchmarks of the Fig 8 kernel-quality comparison. *)
let fig8 = List.filter (fun (b : Bench_def.t) -> b.Bench_def.in_fig8) all

(** Compile a benchmark (paper-scale constants) under its best config. *)
let compile ?config (b : Bench_def.t) : Lime_gpu.Pipeline.compiled =
  let config = Option.value config ~default:b.Bench_def.best_config in
  Lime_gpu.Pipeline.compile ~config ~worker:b.Bench_def.worker
    b.Bench_def.source

(** Compile the test-scale variant. *)
let compile_small ?config (b : Bench_def.t) : Lime_gpu.Pipeline.compiled =
  let config = Option.value config ~default:b.Bench_def.best_config in
  Lime_gpu.Pipeline.compile ~config ~worker:b.Bench_def.worker
    b.Bench_def.source_small
