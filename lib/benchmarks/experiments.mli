(** Experiment generators: one entry per table/figure of the paper's
    evaluation (§5), plus the §4.3/§5.3 ablations.  `bench/main.exe` drives
    the renderers; `test/test_experiments.ml` asserts the shapes. *)

module Device = Gpusim.Device
module Profile = Gpusim.Profile
module Model = Gpusim.Model
module Memopt = Lime_gpu.Memopt
module Pipeline = Lime_gpu.Pipeline
module Comm = Lime_runtime.Comm
module B = Bench_def

val gpu_devices : Device.t list
(** GTX8800, GTX580, HD5970 — the Fig 8 platforms. *)

val core_i7_1core : Device.t
(** The single-core CPU variant of Fig 7(a). *)

(** {2 Shared machinery} *)

type prepared = {
  p_bench : B.t;
  p_compiled : Pipeline.compiled;
  p_input : Lime_ir.Value.t;  (** paper-scale input *)
  p_in_bytes : int;  (** wire size *)
  p_out_bytes : int;
  p_out_shape : int array option;
}

val prepare : ?config:Memopt.config -> ?quick:bool -> ?seed:int -> B.t -> prepared
(** Compile (under the benchmark's best config by default) and build the
    input — at paper scale by default, at the test scale with
    [~quick:true].  [seed] feeds the deterministic input builders. *)

val profile_of : prepared -> Memopt.decision list -> Profile.t
val bindings_of : prepared -> Memopt.decision list -> Model.array_binding list

val kernel_time_under : prepared -> Device.t -> Memopt.config -> float
(** Kernel-only device time under one memory configuration. *)

val host_task_seconds : prepared -> float
val baseline_seconds : prepared -> float
(** The Fig 7 baseline: the whole program as bytecode on one core. *)

type endtoend = {
  ee_total_s : float;
  ee_kernel_s : float;
  ee_phases : Comm.phases;
}

val elem_bytes_of : prepared -> int
val endtoend : prepared -> Device.t -> Memopt.config -> endtoend

(** {2 Tables} *)

val table1 : unit -> string
val table2 : unit -> string
val table3 : unit -> string

(** {2 Figure 7 — end-to-end speedups} *)

type fig7_row = {
  f7_bench : string;
  f7_series : (string * float) list;  (** platform → speedup over bytecode *)
}

val fig7a : unit -> fig7_row list
(** CPU: 1 core and 6 cores. *)

val fig7b : unit -> fig7_row list
(** GPU: GTX580 and HD5970. *)

val render_fig7 : title:string -> fig7_row list -> string

(** {2 Figure 8 — kernel quality vs hand-tuned} *)

type fig8_cell = {
  f8_config : string;
  f8_rel : float;  (** speedup relative to hand-tuned (>1 = Lime faster) *)
}

type fig8_row = { f8_bench : string; f8_cells : fig8_cell list }

val fig8_for : Device.t -> fig8_row list
val render_fig8 : Device.t -> fig8_row list -> string

(** {2 Figure 9 — computation vs communication} *)

type fig9_row = { f9_bench : string; f9_phases : Comm.phases }

val fig9 : Device.t -> fig9_row list
val render_fig9 : Device.t -> fig9_row list -> string

(** {2 §4.3 marshaling ablation} *)

type marshal_ablation = {
  ma_bench : string;
  ma_custom_pct : float;
  ma_generic_pct : float;
}

val marshal_ablation : Device.t -> marshal_ablation list
val render_marshal_ablation : marshal_ablation list -> string

(** {2 §2 host-glue volume} *)

val glue_volume : unit -> (string * int * int) list
(** benchmark, glue lines, kernel lines. *)

(** {2 §5.3 future work: overlap + direct marshaling} *)

type overlap_row = {
  ov_bench : string;
  ov_serial_ms : float;
  ov_pipelined_speedup : float;
  ov_direct_speedup : float;
  ov_comm_share : float;
}

val overlap : ?firings:int -> Device.t -> overlap_row list
val render_overlap : ?firings:int -> Device.t -> overlap_row list -> string

(** {2 Optimizer — beam-searched rewrite schedules vs the Fig 8 sweep} *)

type optimize_row = {
  op_bench : string;
  op_baseline_s : float;  (** untouched kernel, global placements *)
  op_fig8_name : string;  (** best canned Fig 8 configuration *)
  op_fig8_s : float;
  op_beam_s : float;  (** beam winner; always [<= op_fig8_s] *)
  op_sequence : string list;  (** winning rewrite schedule *)
  op_evals : int;  (** cost-model evaluations spent *)
}

val optimize_rows :
  ?width:int -> ?depth:int -> ?quick:bool -> ?seed:int -> Device.t ->
  optimize_row list
(** One row per {!Registry.workloads} entry on the given device. *)

val render_optimize : Device.t -> optimize_row list -> string

(** {2 Multi-device placement — lib/sched vs the best single device} *)

type multidev_row = {
  md_bench : string;
  md_firings : int;
  md_singles : (string * float) list;
      (** the all-host and all-on-one-device baselines, modeled seconds *)
  md_best_single : string;
  md_single_s : float;
  md_placed_s : float;  (** the searched placement's modeled makespan *)
  md_spec : string;  (** winning [task=device,...] placement *)
  md_evals : int;
  md_exhaustive : bool;
  md_split : bool;  (** kernels spread over more than one device *)
  md_bitexact : bool;
      (** multi-device engine sink equals the single-device engine sink *)
}

val multidev_workloads : B.t list
(** The pipelined registry workloads: everything whose program builds a
    [=>] task graph (the paper's nine plus N-Body Pipe; TMatMul is
    kernel-only and has no pipeline to place). *)

val multidev_rows : ?quick:bool -> unit -> multidev_row list
(** One row per {!multidev_workloads} entry: probe the pipeline, search
    placements ({!Lime_sched.Search.search}), and check the sink value of
    a placed engine run against the single-device engine at test scale.
    The search is seeded with the single-device baselines, so
    [md_placed_s <= md_single_s] always; on N-Body Pipe (two n² kernels)
    the inequality is strict — the workload multi-device placement exists
    for. *)

val render_multidev : multidev_row list -> string
