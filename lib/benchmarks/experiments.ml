(** Experiment generators: one function per table/figure of the paper's
    evaluation (§5).  Each returns structured data plus a plain-text
    rendering; `bench/main.exe` drives them and EXPERIMENTS.md records the
    paper-vs-measured comparison. *)

module Ir = Lime_ir.Ir
module Value = Lime_ir.Value
module Device = Gpusim.Device
module Model = Gpusim.Model
module Profile = Gpusim.Profile
module Memopt = Lime_gpu.Memopt
module Pipeline = Lime_gpu.Pipeline
module Kernel = Lime_gpu.Kernel
module Comm = Lime_runtime.Comm
module Marshal_ = Lime_runtime.Marshal
module B = Bench_def

let gpu_devices = [ Device.gtx8800; Device.gtx580; Device.hd5970 ]
let core_i7_1core = { Device.core_i7 with Device.sms = 1 }

(* ------------------------------------------------------------------ *)
(* Shared machinery                                                    *)
(* ------------------------------------------------------------------ *)

type prepared = {
  p_bench : B.t;
  p_compiled : Pipeline.compiled;
  p_input : Value.t;
  p_in_bytes : int;
  p_out_bytes : int;
  p_out_shape : int array option;
}

(** Compile and build the input — at paper scale by default, at the
    test scale with [~quick:true] (the CI path of the bench JSON
    harness).  [seed] feeds the deterministic input builders. *)
let prepare ?config ?(quick = false) ?seed (b : B.t) : prepared =
  let c =
    if quick then Registry.compile_small ?config b
    else Registry.compile ?config b
  in
  let input = if quick then b.B.input_small ?seed () else b.B.input ?seed () in
  let k = c.Pipeline.cp_kernel in
  (* the output-producing loop's trip count sizes the result buffer *)
  let shapes, scalars = Lime_runtime.Engine.shapes_of_args k [ input ] in
  let prof = Profile.profile k c.Pipeline.cp_decisions ~shapes ~scalars in
  let rows = int_of_float prof.Profile.p_last_parfor_items in
  let out_shape = Lime_runtime.Engine.output_shape ~rows k input in
  let out_bytes =
    match (k.Kernel.k_ret, out_shape) with
    | Ir.TArr aty, Some shape ->
        Array.fold_left ( * ) 1 shape * Ir.scalar_size_bytes aty.Ir.elem
    | _ -> 8
  in
  {
    p_bench = b;
    p_compiled = c;
    p_input = input;
    p_in_bytes = Marshal_.wire_size input;
    p_out_bytes = out_bytes;
    p_out_shape = out_shape;
  }

let profile_of (p : prepared) (decisions : Memopt.decision list) : Profile.t =
  let k = p.p_compiled.Pipeline.cp_kernel in
  let shapes, scalars =
    Lime_runtime.Engine.shapes_of_args k [ p.p_input ]
  in
  Profile.profile k decisions ~shapes ~scalars

let bindings_of (p : prepared) (decisions : Memopt.decision list) :
    Model.array_binding list =
  Lime_runtime.Engine.array_bindings p.p_compiled.Pipeline.cp_kernel decisions
    [ p.p_input ] p.p_out_shape

(** Kernel-only time under a memory configuration. *)
let kernel_time_under (p : prepared) (d : Device.t) (cfg : Memopt.config) :
    float =
  let decisions = Memopt.optimize cfg p.p_compiled.Pipeline.cp_kernel in
  let prof = profile_of p decisions in
  (Model.kernel_time d prof (bindings_of p decisions)).Model.bd_total_s

(** Host-side (source + sink) bytecode work: proportional to the data
    produced and consumed — a few JVM-weighted ops per element. *)
let host_task_seconds (p : prepared) : float =
  let elems = float_of_int (p.p_in_bytes + p.p_out_bytes) /. 4.0 in
  elems *. 10.0 (* gen hash / accumulate ops *) /. 3.46e9

(** The Fig 7 baseline: the whole program as bytecode on one core. *)
let baseline_seconds (p : prepared) : float =
  let decisions =
    Memopt.optimize Memopt.config_global p.p_compiled.Pipeline.cp_kernel
  in
  let prof = profile_of p decisions in
  (Model.jvm_time_profile prof *. p.p_bench.B.interop_factor)
  +. host_task_seconds p

(** End-to-end time on a device, including all communication. *)
type endtoend = {
  ee_total_s : float;
  ee_kernel_s : float;
  ee_phases : Comm.phases;
}

let elem_bytes_of (p : prepared) : int =
  match p.p_input with
  | Value.VArr a -> Ir.scalar_size_bytes a.Value.elem
  | _ -> 4

let endtoend (p : prepared) (d : Device.t) (cfg : Memopt.config) : endtoend =
  let kernel_s = kernel_time_under p d cfg in
  let elem_bytes = elem_bytes_of p in
  let phases =
    if d.Device.kind = Device.Cpu then begin
      (* shared memory: no PCIe transfer and cheap buffer setup, but the
         Java <-> native marshaling remains (Fig 9a) *)
      let ph =
        Comm.offload_phases d ~elem_bytes ~in_bytes:p.p_in_bytes
          ~out_bytes:p.p_out_bytes ()
      in
      ph.Comm.setup_s <- 6.0e-6;
      ph
    end
    else
      Comm.offload_phases d ~elem_bytes ~in_bytes:p.p_in_bytes
        ~out_bytes:p.p_out_bytes ()
  in
  phases.Comm.kernel_s <- kernel_s;
  phases.Comm.host_s <- host_task_seconds p;
  { ee_total_s = Comm.total phases; ee_kernel_s = kernel_s; ee_phases = phases }

(* ------------------------------------------------------------------ *)
(* Table 1: OpenCL vs Lime programming model                           *)
(* ------------------------------------------------------------------ *)

let table1 () : string =
  String.concat "\n"
    [
      "Table 1. GPU programming in OpenCL vs. Lime.";
      "";
      Printf.sprintf "%-18s %-22s %-22s" "" "OpenCL" "Lime";
      Printf.sprintf "%-18s %-22s %-22s" "offload unit" "kernel" "filter";
      Printf.sprintf "%-18s %-22s %-22s" "communication" "API" "=> operator";
      Printf.sprintf "%-18s %-22s %-22s" "data parallelism" "manual"
        "map & reduce";
      Printf.sprintf "%-18s %-22s %-22s" "memory qualifiers" "manual"
        "compiler";
      Printf.sprintf "%-18s %-22s %-22s" "synchronization" "manual" "compiler";
      Printf.sprintf "%-18s %-22s %-22s" "scheduling" "manual" "compiler";
    ]

(* ------------------------------------------------------------------ *)
(* Table 2: evaluation platforms                                       *)
(* ------------------------------------------------------------------ *)

let table2 () : string =
  let row (d : Device.t) =
    Printf.sprintf "%-4s %-26s %5d %9d %8s %9s %8s %7s %6s"
      (match d.Device.kind with Device.Cpu -> "CPU" | Device.Gpu -> "GPU")
      d.Device.name d.Device.sms d.Device.fp32_lanes d.Device.info_const_mem
      d.Device.info_local_mem d.Device.info_l1 d.Device.info_l2
      d.Device.info_l3
  in
  String.concat "\n"
    ([
       "Table 2. Evaluation platforms (simulated device models).";
       "";
       Printf.sprintf "%-4s %-26s %5s %9s %8s %9s %8s %7s %6s" "Type" "Model"
         "Cores" "FP/core" "Const" "Local" "L1" "L2" "L3";
     ]
    @ List.map row Device.all)

(* ------------------------------------------------------------------ *)
(* Table 3: benchmark suite                                            *)
(* ------------------------------------------------------------------ *)

let table3 () : string =
  let row (b : B.t) =
    let p = prepare b in
    Printf.sprintf "%-20s %-34s %10s %10s  %s" b.B.name b.B.description
      (Lime_support.Util.bytes_to_string p.p_in_bytes)
      (Lime_support.Util.bytes_to_string p.p_out_bytes)
      b.B.datatype
  in
  String.concat "\n"
    ([
       "Table 3. Benchmarks used in the evaluation (our input sizes).";
       "";
       Printf.sprintf "%-20s %-34s %10s %10s  %s" "Name" "Description"
         "Input" "Output" "Data type";
     ]
    @ List.map row Registry.all)

(* ------------------------------------------------------------------ *)
(* Figure 7: end-to-end speedups                                       *)
(* ------------------------------------------------------------------ *)

type fig7_row = {
  f7_bench : string;
  f7_series : (string * float) list;  (** platform/config -> speedup *)
}

let fig7a () : fig7_row list =
  Registry.all
  |> List.map (fun b ->
         let p = prepare b in
         let base = baseline_seconds p in
         let one = endtoend p core_i7_1core b.B.best_config in
         let six = endtoend p Device.core_i7 b.B.best_config in
         {
           f7_bench = b.B.name;
           f7_series =
             [
               ("1 core", base /. one.ee_total_s);
               ("6 cores", base /. six.ee_total_s);
             ];
         })

let fig7b () : fig7_row list =
  Registry.all
  |> List.map (fun b ->
         let p = prepare b in
         let base = baseline_seconds p in
         let gtx = endtoend p Device.gtx580 b.B.best_config in
         let amd = endtoend p Device.hd5970 b.B.best_config in
         {
           f7_bench = b.B.name;
           f7_series =
             [
               ("GTX580", base /. gtx.ee_total_s);
               ("HD5970", base /. amd.ee_total_s);
             ];
         })

let render_fig7 ~title (rows : fig7_row list) : string =
  let headers =
    match rows with
    | r :: _ -> List.map fst r.f7_series
    | [] -> []
  in
  let header_line =
    Printf.sprintf "%-22s %s" "Benchmark"
      (String.concat " "
         (List.map (fun h -> Printf.sprintf "%12s" h) headers))
  in
  let lines =
    List.map
      (fun r ->
        Printf.sprintf "%-22s %s" r.f7_bench
          (String.concat " "
             (List.map
                (fun (_, s) -> Printf.sprintf "%11.1fx" s)
                r.f7_series)))
      rows
  in
  String.concat "\n" ((title ^ " (speedup over Lime bytecode)") :: "" :: header_line :: lines)

(* ------------------------------------------------------------------ *)
(* Figure 8: kernel quality vs hand-tuned, 8 memory configurations     *)
(* ------------------------------------------------------------------ *)

type fig8_cell = {
  f8_config : string;
  f8_rel : float;  (** speedup relative to hand-tuned (>1 = Lime faster) *)
}

type fig8_row = { f8_bench : string; f8_cells : fig8_cell list }

let fig8_for (d : Device.t) : fig8_row list =
  Registry.fig8
  |> List.map (fun b ->
         let p = prepare b in
         let hand =
           match List.assoc_opt d.Device.name b.B.hand with
           | Some h -> h
           | None ->
               { B.ht_config = b.B.best_config; ht_factor = 1.0 }
         in
         let hand_s =
           kernel_time_under p d hand.B.ht_config *. hand.B.ht_factor
         in
         let cells =
           List.map
             (fun (cname, cfg) ->
               let lime_s = kernel_time_under p d cfg in
               { f8_config = cname; f8_rel = hand_s /. lime_s })
             Memopt.fig8_configs
         in
         { f8_bench = b.B.name; f8_cells = cells })

let render_fig8 (d : Device.t) (rows : fig8_row list) : string =
  let header =
    Printf.sprintf "%-32s %s" "Configuration"
      (String.concat " "
         (List.map
            (fun r ->
              Printf.sprintf "%13s"
                (if String.length r.f8_bench > 13 then
                   String.sub r.f8_bench 0 13
                 else r.f8_bench))
            rows))
  in
  let config_names = List.map fst Memopt.fig8_configs in
  let lines =
    List.map
      (fun cname ->
        let cells =
          List.map
            (fun r ->
              let c = List.find (fun c -> c.f8_config = cname) r.f8_cells in
              Printf.sprintf "%13.2f" c.f8_rel)
            rows
        in
        Printf.sprintf "%-32s %s" cname (String.concat " " cells))
      config_names
  in
  let best_line =
    let cells =
      List.map
        (fun r ->
          let best =
            List.fold_left (fun acc c -> Float.max acc c.f8_rel) 0.0 r.f8_cells
          in
          Printf.sprintf "%13.2f" best)
        rows
    in
    Printf.sprintf "%-32s %s" "Best (paper: 0.75-1.40)"
      (String.concat " " cells)
  in
  let lines = lines @ [ String.make 32 '-'; best_line ] in
  String.concat "\n"
    (Printf.sprintf
       "Figure 8 (%s): Lime vs hand-tuned kernel times\n(speedup relative to \
        hand-tuned; >1.00 means the generated kernel is faster)\n"
       d.Device.name
    :: header :: lines)

(* ------------------------------------------------------------------ *)
(* Figure 9: computation vs communication                              *)
(* ------------------------------------------------------------------ *)

type fig9_row = {
  f9_bench : string;
  f9_phases : Comm.phases;
}

let fig9 (d : Device.t) : fig9_row list =
  Registry.all
  |> List.map (fun b ->
         let p = prepare b in
         let ee = endtoend p d b.B.best_config in
         { f9_bench = b.B.name; f9_phases = ee.ee_phases })

let render_fig9 (d : Device.t) (rows : fig9_row list) : string =
  let header =
    Printf.sprintf "%-22s %8s %8s %8s %8s %8s %8s %8s" "Benchmark" "kernel%"
      "javaM%" "jni%" "cM%" "setup%" "pcie%" "host%"
  in
  let lines =
    List.map
      (fun r ->
        let t = Comm.total r.f9_phases in
        let pct x = 100.0 *. x /. t in
        Printf.sprintf "%-22s %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f"
          r.f9_bench
          (pct r.f9_phases.Comm.kernel_s)
          (pct r.f9_phases.Comm.java_marshal_s)
          (pct r.f9_phases.Comm.jni_s)
          (pct r.f9_phases.Comm.c_marshal_s)
          (pct r.f9_phases.Comm.setup_s)
          (pct r.f9_phases.Comm.pcie_s)
          (pct r.f9_phases.Comm.host_s))
      rows
  in
  String.concat "\n"
    (Printf.sprintf "Figure 9 (%s): computation and communication costs\n"
       d.Device.name
    :: header :: lines)

(* ------------------------------------------------------------------ *)
(* §4.3 ablation: generic vs custom marshaling                         *)
(* ------------------------------------------------------------------ *)

type marshal_ablation = {
  ma_bench : string;
  ma_custom_pct : float;  (** marshaling share of total, custom serializers *)
  ma_generic_pct : float;  (** same with the generic marshaller *)
}

let marshal_ablation (d : Device.t) : marshal_ablation list =
  Registry.all
  |> List.map (fun b ->
         let p = prepare b in
         let pct serializer =
           let kernel_s = kernel_time_under p d b.B.best_config in
           let ph =
             Comm.offload_phases d ~serializer ~elem_bytes:(elem_bytes_of p)
               ~in_bytes:p.p_in_bytes ~out_bytes:p.p_out_bytes ()
           in
           ph.Comm.kernel_s <- kernel_s;
           100.0 *. ph.Comm.java_marshal_s /. Comm.total ph
         in
         {
           ma_bench = b.B.name;
           ma_custom_pct = pct Marshal_.Custom;
           ma_generic_pct = pct Marshal_.Generic;
         })

let render_marshal_ablation (rows : marshal_ablation list) : string =
  let lines =
    List.map
      (fun r ->
        Printf.sprintf "%-22s %14.1f%% %14.1f%%" r.ma_bench r.ma_custom_pct
          r.ma_generic_pct)
      rows
  in
  String.concat "\n"
    ("Marshaling ablation (§4.3): Java marshaling share of end-to-end time"
    :: Printf.sprintf "%-22s %15s %15s" "Benchmark" "custom" "generic"
    :: lines)

(* ------------------------------------------------------------------ *)
(* §2: host-glue boilerplate volume                                    *)
(* ------------------------------------------------------------------ *)

let glue_volume () : (string * int * int) list =
  Registry.all
  |> List.map (fun b ->
         let c = Registry.compile b in
         let glue = Lime_gpu.Hostgen.generate c.Pipeline.cp_kernel in
         ( b.B.name,
           Lime_support.Util.count_lines glue,
           Lime_support.Util.count_lines c.Pipeline.cp_opencl ))

(* ------------------------------------------------------------------ *)
(* §5.3 future work: overlap + direct marshaling                       *)
(* ------------------------------------------------------------------ *)

type overlap_row = {
  ov_bench : string;
  ov_serial_ms : float;  (** n firings, serial schedule *)
  ov_pipelined_speedup : float;  (** double-buffered overlap *)
  ov_direct_speedup : float;  (** overlap + direct-to-device marshaling *)
  ov_comm_share : float;  (** communication share in the serial schedule *)
}

(** Projected gains of the two §5.3 "future work" optimizations the
    runtime implements: pipelined double buffering and the direct-to-device
    serializer.  [firings] models a streaming execution (e.g. simulation
    steps); the gains grow with the communication share of Fig 9. *)
let overlap ?(firings = 32) (d : Device.t) : overlap_row list =
  Registry.all
  |> List.map (fun b ->
         let p = prepare b in
         let mk serializer =
           let kernel_s = kernel_time_under p d b.B.best_config in
           let ph =
             Comm.offload_phases d ~serializer ~elem_bytes:(elem_bytes_of p)
               ~in_bytes:p.p_in_bytes ~out_bytes:p.p_out_bytes ()
           in
           ph.Comm.kernel_s <- kernel_s;
           ph.Comm.host_s <- host_task_seconds p;
           ph
         in
         let ph = mk Marshal_.Custom in
         let st =
           Lime_runtime.Schedule.stages_of_phases ~firings:1 ph
         in
         let serial = Lime_runtime.Schedule.serial_time ~firings st in
         let piped = Lime_runtime.Schedule.pipelined_time ~firings st in
         let ph_direct = mk Marshal_.Direct in
         let st_direct =
           Lime_runtime.Schedule.stages_of_phases ~firings:1 ph_direct
         in
         let piped_direct =
           Lime_runtime.Schedule.pipelined_time ~firings st_direct
         in
         {
           ov_bench = b.B.name;
           ov_serial_ms = serial *. 1e3;
           ov_pipelined_speedup = serial /. piped;
           ov_direct_speedup = serial /. piped_direct;
           ov_comm_share = Comm.communication ph /. Comm.total ph;
         })

let render_overlap ?(firings = 32) (d : Device.t) (rows : overlap_row list) :
    string =
  let lines =
    List.map
      (fun r ->
        Printf.sprintf "%-22s %10.2f %8.0f%% %12.2fx %12.2fx" r.ov_bench
          r.ov_serial_ms
          (100.0 *. r.ov_comm_share)
          r.ov_pipelined_speedup r.ov_direct_speedup)
      rows
  in
  String.concat "\n"
    (Printf.sprintf
       "§5.3 future work on %s (%d firings): overlap + direct marshaling"
       d.Device.name firings
    :: Printf.sprintf "%-22s %10s %9s %13s %13s" "Benchmark" "serial ms"
         "comm%" "pipelined" "+direct"
    :: lines)

(* ------------------------------------------------------------------ *)
(* Optimizer — beam-searched rewrite schedules vs the Fig 8 sweep      *)
(* ------------------------------------------------------------------ *)

type optimize_row = {
  op_bench : string;
  op_baseline_s : float;
  op_fig8_name : string;
  op_fig8_s : float;
  op_beam_s : float;
  op_sequence : string list;
  op_evals : int;
}

(** One row per registry workload: modeled kernel time of the untouched
    kernel, the best Fig 8 configuration, and the beam-searched rewrite
    schedule on device [d].  Beam seeding guarantees
    [op_beam_s <= op_fig8_s]; on the TMatMul showcase the inequality is
    strict (the point of the rewrite engine). *)
let optimize_rows ?width ?depth ?(quick = false) ?seed (d : Device.t) :
    optimize_row list =
  List.map
    (fun (b : B.t) ->
      let p = prepare ~quick ?seed b in
      let k = p.p_compiled.Pipeline.cp_kernel in
      let shapes, scalars =
        Lime_runtime.Engine.shapes_of_args k [ p.p_input ]
      in
      let o = Lime_rewrite.Search.search ?width ?depth d k ~shapes ~scalars in
      let op_fig8_name, f8 = o.Lime_rewrite.Search.so_fig8_best in
      {
        op_bench = b.B.name;
        op_baseline_s = o.Lime_rewrite.Search.so_baseline.sc_time_s;
        op_fig8_name;
        op_fig8_s = f8.Lime_rewrite.Search.sc_time_s;
        op_beam_s = o.Lime_rewrite.Search.so_best.sc_time_s;
        op_sequence = o.Lime_rewrite.Search.so_best.sc_sequence;
        op_evals = o.Lime_rewrite.Search.so_evals;
      })
    Registry.workloads

(* ------------------------------------------------------------------ *)
(* Multi-device placement (lib/sched) vs the best single device        *)
(* ------------------------------------------------------------------ *)

module SPlacement = Lime_sched.Placement
module SProbe = Lime_sched.Probe
module SSearch = Lime_sched.Search
module SExec = Lime_sched.Exec

type multidev_row = {
  md_bench : string;
  md_firings : int;
  md_singles : (string * float) list;
      (** all-host and all-on-one-device baselines, modeled seconds *)
  md_best_single : string;
  md_single_s : float;
  md_placed_s : float;  (** the searched placement's modeled makespan *)
  md_spec : string;
  md_evals : int;
  md_exhaustive : bool;
  md_split : bool;  (** kernels spread over more than one device *)
  md_bitexact : bool;
      (** multi-device engine sink equals the single-device engine sink *)
}

(** The class holding the program's static pipeline [main], and its
    parameter count (the registry mains are [main(count, steps)] except
    N-Body Pipe's [main(steps)]). *)
let entry_of (md : Ir.modul) : string * int =
  match
    Hashtbl.fold
      (fun _ (f : Ir.func) acc ->
        if f.Ir.fn_method = "main" && f.Ir.fn_static then
          Some (f.Ir.fn_class, List.length f.Ir.fn_params)
        else acc)
      md.Ir.md_funcs None
  with
  | Some e -> e
  | None -> invalid_arg "program has no static main"

(* Mosaic's [count] includes the 512-tile reference library (its kernel
   ranges over [count - LIB]); every other main takes [count] work items
   directly. *)
let multidev_count (b : B.t) ~(base : int) : int =
  if b.B.name = "Mosaic" then Mosaic.lib_tiles + base else base

let main_args ~params ~count ~steps =
  match params with
  | 1 -> [ Value.VInt steps ]
  | _ -> [ Value.VInt count; Value.VInt steps ]

(* Probe a pipeline without firing it: a finish hook that records the
   stages and returns (same trick as test/test_sched.ml). *)
let probe_stages (c : Pipeline.compiled) (args : Value.t list) :
    SProbe.stage list =
  let md = c.Pipeline.cp_module in
  let cls, _ = entry_of md in
  let stages = ref [] in
  let st = Lime_ir.Interp.create md in
  st.Lime_ir.Interp.finish_hook <-
    (fun st' graph _iters -> stages := SProbe.probe st'.Lime_ir.Interp.md graph);
  ignore (Lime_ir.Interp.run st ~cls ~meth:"main" args);
  !stages

(** The pipelined registry workloads: everything with a [=>] graph main
    (the paper's nine plus N-Body Pipe; TMatMul is kernel-only).  Each
    yields the compiled program probed for *scoring* — the single-kernel
    suite scaled by the main's count argument, N-Body Pipe recompiled at
    a count where its two n² kernels dominate the transfers, which is
    where a cross-device split beats any single device. *)
let multidev_workloads : B.t list =
  List.filter (fun (b : B.t) -> b.B.name <> "TMatMul") Registry.workloads

let multidev_scoring ~(quick : bool) (b : B.t) :
    Pipeline.compiled * Value.t list * int =
  let firings = 16 in
  if b.B.name = "N-Body Pipe" then begin
    let n = if quick then 1024 else 2048 in
    let src = Nbody_pipe.source_for n in
    let c = Lime_gpu.Pipeline.compile ~worker:b.B.worker src in
    (c, [ Value.VInt firings ], firings)
  end
  else begin
    let c = Registry.compile_small b in
    let _, params = entry_of c.Pipeline.cp_module in
    let count = multidev_count b ~base:(if quick then 64 else 256) in
    (c, main_args ~params ~count ~steps:firings, firings)
  end

(* Sink agreement at test scale: the placement-aware engine must deliver
   exactly the single-device engine's sink value. *)
let multidev_bitexact (b : B.t) (choose : SProbe.stage list -> firings:int -> SPlacement.t) : bool =
  let c =
    if b.B.name = "N-Body Pipe" then
      Lime_gpu.Pipeline.compile ~worker:b.B.worker (Nbody_pipe.source_for 64)
    else Registry.compile_small b
  in
  let md = c.Pipeline.cp_module in
  let cls, params = entry_of md in
  let args = main_args ~params ~count:(multidev_count b ~base:64) ~steps:2 in
  let _, legacy =
    Lime_runtime.Engine.run_program Lime_runtime.Engine.default_config md
      ~cls ~meth:"main" args
  in
  let _, placed, _ =
    SExec.run_program Lime_runtime.Engine.default_config ~choose md ~cls
      ~meth:"main" args
  in
  Value.approx_equal ~rtol:0.0 ~atol:0.0
    legacy.Lime_runtime.Engine.last_value
    placed.Lime_runtime.Engine.last_value

let multidev_rows ?(quick = false) () : multidev_row list =
  List.map
    (fun (b : B.t) ->
      let c, args, firings = multidev_scoring ~quick b in
      let stages = probe_stages c args in
      let o = SSearch.search ~firings stages in
      let best = o.SSearch.po_best in
      let sname, single = o.SSearch.po_best_single in
      let devices_used =
        List.sort_uniq compare
          (List.filter_map
             (fun (_, a) ->
               match a with
               | SPlacement.On d -> Some d.Device.name
               | SPlacement.Host -> None)
             best.SSearch.pc_placement)
      in
      let bitexact =
        multidev_bitexact b (fun stages ~firings ->
            (SSearch.search ~firings stages).SSearch.po_best
              .SSearch.pc_placement)
      in
      {
        md_bench = b.B.name;
        md_firings = firings;
        md_singles =
          List.map
            (fun (n, (cand : SSearch.candidate)) ->
              (n, cand.SSearch.pc_time_s))
            o.SSearch.po_singles;
        md_best_single = sname;
        md_single_s = single.SSearch.pc_time_s;
        md_placed_s = best.SSearch.pc_time_s;
        md_spec = SPlacement.to_spec best.SSearch.pc_placement;
        md_evals = o.SSearch.po_evals;
        md_exhaustive = o.SSearch.po_exhaustive;
        md_split = List.length devices_used > 1;
        md_bitexact = bitexact;
      })
    multidev_workloads

let render_multidev (rows : multidev_row list) : string =
  let lines =
    List.map
      (fun r ->
        Printf.sprintf "%-22s %11.3e %11.3e %7.2fx %5d %-10s %-5s %s"
          r.md_bench r.md_single_s r.md_placed_s
          (r.md_single_s /. r.md_placed_s)
          r.md_evals
          (if r.md_exhaustive then "exhaustive" else "beam")
          (if r.md_bitexact then "ok" else "DRIFT")
          r.md_spec)
      rows
  in
  String.concat "\n"
    (Printf.sprintf
       "multi-device placement vs best single device (%d firings, modeled)"
       (match rows with r :: _ -> r.md_firings | [] -> 0)
    :: Printf.sprintf "%-22s %11s %11s %8s %5s %-10s %-5s %s" "Benchmark"
         "best single" "placed" "speedup" "evals" "mode" "sink" "placement"
    :: lines)

let render_optimize (d : Device.t) (rows : optimize_row list) : string =
  let lines =
    List.map
      (fun r ->
        Printf.sprintf "%-22s %11.3e %11.3e %11.3e %7.2fx %6d  %s" r.op_bench
          r.op_baseline_s r.op_fig8_s r.op_beam_s
          (r.op_fig8_s /. r.op_beam_s)
          r.op_evals
          (Lime_rewrite.Search.seq_str r.op_sequence))
      rows
  in
  String.concat "\n"
    (Printf.sprintf "beam-searched schedules on %s (seconds, modeled)"
       d.Device.name
    :: Printf.sprintf "%-22s %11s %11s %11s %8s %6s  %s" "Benchmark"
         "baseline" "fig8 best" "beam" "vs fig8" "evals" "sequence"
    :: lines)
