(** Two-kernel N-Body pipeline: force calculation followed by an n²
    force-smoothing pass, with host generation and accumulation around
    them.

    The single-kernel suite pins every pipeline's period to one kernel,
    so a single device is always optimal.  This workload has two
    compute-heavy offloadable stages; placing them on different devices
    halves the steady-state period (period = max of the two kernels
    instead of their sum), which is what the multi-device placement
    search exists to find.  Not part of [Registry.all] — the paper
    tables stay the paper's nine. *)

open Bench_def
module Value = Lime_ir.Value
module Memopt = Lime_gpu.Memopt

let source_for n =
  Printf.sprintf
    {|
class NBodyP {
  static final float EPS = 1.0e-9f;

  static local float[[3]] forceOne(float[[][4]] particles, float[[4]] p) {
    float fx = 0.0f; float fy = 0.0f; float fz = 0.0f;
    for (int j = 0; j < particles.length; j++) {
      float[[4]] q = particles[j];
      float dx = q[0] - p[0];
      float dy = q[1] - p[1];
      float dz = q[2] - p[2];
      float r2 = dx*dx + dy*dy + dz*dz + EPS;
      float inv = 1.0f / Math.sqrt(r2*r2*r2);
      float s = q[3] * inv;
      fx += s * dx; fy += s * dy; fz += s * dz;
    }
    return { fx, fy, fz };
  }

  static local float[[][3]] computeForces(float[[][4]] particles) {
    return NBodyP.forceOne(particles) @ particles;
  }

  static local float[[3]] smoothOne(float[[][3]] forces, float[[3]] f) {
    float sx = 0.0f; float sy = 0.0f; float sz = 0.0f;
    float wsum = 0.0f;
    for (int j = 0; j < forces.length; j++) {
      float[[3]] g = forces[j];
      float dx = g[0] - f[0];
      float dy = g[1] - f[1];
      float dz = g[2] - f[2];
      float w = 1.0f / (1.0f + dx*dx + dy*dy + dz*dz);
      sx += w * g[0]; sy += w * g[1]; sz += w * g[2];
      wsum += w;
    }
    return { sx / wsum, sy / wsum, sz / wsum };
  }

  static local float[[][3]] smooth(float[[][3]] forces) {
    return NBodyP.smoothOne(forces) @ forces;
  }

  static local float[[4]] genOne(int seed, int i) {
    int h = i * 1103515245 + seed;
    h = (h ^ (h >>> 16)) * 65599 + i;
    int hx = h & 1023;
    int hy = (h >>> 10) & 1023;
    int hz = (h >>> 20) & 1023;
    float x = (float)hx / 512.0f - 1.0f;
    float y = (float)hy / 512.0f - 1.0f;
    float z = (float)hz / 512.0f - 1.0f;
    float m = 1.0f + (float)(h & 255) / 256.0f;
    return { x, y, z, m };
  }
}

class NBodyPSim {
  int n;
  int seed;
  float total;

  NBodyPSim(int count) {
    n = count;
    seed = 12345;
  }

  local float[[][4]] particleGen() {
    return NBodyP.genOne(seed) @ Lime.range(n);
  }

  void accumulate(float[[][3]] forces) {
    float t = 0.0f;
    for (int i = 0; i < forces.length; i++) {
      t += forces[i][0] + forces[i][1] + forces[i][2];
    }
    total = t;
  }

  static void main(int steps) {
    (task NBodyPSim(%d).particleGen
       => task NBodyP.computeForces
       => task NBodyP.smooth
       => task NBodyPSim(%d).accumulate).finish(steps);
  }
}
|}
    n n

let bench : Bench_def.t =
  mk ~name:"N-Body Pipe"
    ~description:"Two-kernel N-Body pipeline (forces then smoothing)"
    ~source:(source_for 4096) ~source_small:(source_for 64)
    ~worker:"NBodyP.computeForces" ~datatype:"Float"
    ~input:(fun ?(seed = 42) () ->
      Nbody.input_of ~elem:Lime_ir.Ir.SFloat ~n:4096 ~seed ())
    ~input_small:(fun ?(seed = 42) () ->
      Nbody.input_of ~elem:Lime_ir.Ir.SFloat ~n:64 ~seed ())
    ~reference:(Nbody.reference_of ~single:true)
    ~best_config:Memopt.config_local_noconflict_vector ()
