(** The nine-benchmark suite of Table 3, in the paper's order. *)

val all : Bench_def.t list

val workloads : Bench_def.t list
(** [all] plus non-paper workloads (the rewrite engine's TMatMul
    showcase); what the bench harness and the optimizer experiments
    iterate. *)

val find : string -> Bench_def.t option
(** Looks up by name across {!workloads}. *)

val names : string list
(** The names of {!workloads}, in registry order. *)

val find_or_err : string -> (Bench_def.t, string) result
(** Like {!find}, but a miss reports the available workload names
    (the device-name validation UX): ["unknown workload X; available:
    NBody-single, ..."]. *)

val fig8 : Bench_def.t list
(** The five benchmarks of the Fig 8 kernel-quality comparison. *)

val compile :
  ?config:Lime_gpu.Memopt.config -> Bench_def.t -> Lime_gpu.Pipeline.compiled
(** Compile the paper-scale program (under the benchmark's best
    configuration by default). *)

val compile_small :
  ?config:Lime_gpu.Memopt.config -> Bench_def.t -> Lime_gpu.Pipeline.compiled
(** Compile the test-scale variant (matches [Bench_def.reference]). *)
