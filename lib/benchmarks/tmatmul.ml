(** TMatMul: dense matrix multiply in the classic ikj "spill" form — the
    rewrite engine's showcase workload (not part of the paper's Table 3
    suite).

    Each work item computes one row of [C = A * B]: a per-thread row
    accumulator [c] is updated [c[j] += A(i,k) * b[k][j]] with [k] outer
    and [j] inner, so every accumulator element is read and written
    [N] times from global memory — [A] is procedurally generated (exact
    small-integer values), so the kernel's traffic is dominated by [c] and
    [b].

    No Fig 8 memory configuration helps: [c] is written, so it can never
    move to constant/image memory, and at 160 floats it exceeds the
    private-memory threshold; [b]'s 102400 bytes overflow the constant
    budget, and its dynamic innermost index defeats both the image format
    and the vectorizer.  Loop rewrites do help: interchanging [k] and [j]
    makes [c[j]] innermost-invariant (the backend hoists the load/store
    out of the [k] loop), and tiling [j] then unrolling the tile turns
    [b]'s innermost index into an affine lane [jt*4 + jj] the vectorizer
    accepts.  Beam search finds exactly that chain, which is the strict
    improvement over the Fig 8 sweep the optimizer tests assert. *)

open Bench_def
module Value = Lime_ir.Value
module Memopt = Lime_gpu.Memopt

(* One scale only: at [n <= 128] elements the row accumulator would fit
   the private-memory threshold and the Fig 8 space could already fix it,
   which would defeat the workload's purpose. *)
let n = 160

let source =
  let ret =
    String.concat ", " (List.init n (fun j -> Printf.sprintf "c[%d]" j))
  in
  Printf.sprintf
    {|
class TMatMul {
  static final int N = %d;

  static local float[[%d]] row(float[[%d][%d]] b, int i) {
    float[] c = new float[%d];
    for (int k = 0; k < N; k++) {
      for (int j = 0; j < N; j++) {
        c[j] = c[j] + (float) (i - k) * b[k][j];
      }
    }
    return { %s };
  }

  static local float[[][%d]] multiply(float[[%d][%d]] b) {
    return TMatMul.row(b) @ Lime.range(N);
  }
}
|}
    n n n n n ret n n n

let input_of ?(seed = 7) () : Value.t =
  rand_matrix ~seed ~rows:n ~cols:n ~lo:(-1.0) ~hi:1.0 ()

(* A(i,k): mirrors the kernel's generator expression; exact in f32 *)
let gen i k = float_of_int (i - k)

(* Mirrors the kernel's accumulation order (k outer, j inner) with f32
   rounding at every step, so the unrewritten kernel matches
   bit-for-bit. *)
let reference (input : Value.t) : Value.t =
  let b = arr_of input in
  let out = Value.make_arr ~is_value:true Lime_ir.Ir.SFloat [| n; n |] in
  for i = 0 to n - 1 do
    let c = Array.make n 0.0 in
    for k = 0 to n - 1 do
      let aik = gen i k in
      for j = 0 to n - 1 do
        c.(j) <- f32 (c.(j) +. f32 (aik *. get2 b k j))
      done
    done;
    for j = 0 to n - 1 do
      Value.store out [ i; j ] (Value.VFloat c.(j))
    done
  done;
  Value.VArr out

let bench : Bench_def.t =
  mk ~name:"TMatMul" ~description:"Tiled matrix multiply (rewrite showcase)"
    ~source ~worker:"TMatMul.multiply" ~datatype:"Float"
    ~input:(fun ?(seed = 7) () -> input_of ~seed ())
    ~input_small:(fun ?(seed = 7) () -> input_of ~seed ())
    ~reference ~best_config:Memopt.config_global ()
