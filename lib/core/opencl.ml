(** OpenCL C code generation (paper §4.2, Fig 4).

    Generates the kernel source for an extracted kernel under a given set of
    placement decisions.  The emitted code follows the idioms shown in the
    paper:

    - a robust thread loop [for (int i = get_global_id(0); i < n;
      i += get_global_size(0))] so the kernel "executes correctly independent
      of the number of threads" (Fig 4);
    - a bookkeeping struct passed by value carrying array lengths and scalar
      captures (Fig 4b);
    - address-space qualifiers, [__local] tiles with barriers (Fig 5d),
      [__constant] parameters (Fig 5h), [image2d_t] with [read_imagef]
      (Fig 5f), private arrays (Fig 5b), and [float2/float4] vector types
      for vectorized arrays;
    - a two-stage tree reduction for kernels whose top-level construct is a
      reduce.

    The host cannot run OpenCL in this reproduction (see DESIGN.md), so the
    generated source is validated structurally by the test suite and shown
    by the examples; execution happens on the simulator from the same IR and
    the same placement table. *)

module Ir = Lime_ir.Ir
module B = Lime_typecheck.Tast

let buf_add = Buffer.add_string

type gen = {
  b : Buffer.t;
  mutable indent : int;
  placements : (string * Ir.placement) list;
  kernel : Kernel.kernel;
  (* view variables: name -> (root, prefix index exprs) *)
  views : (string, string * Ir.expr list) Hashtbl.t;
  materialized : (string, unit) Hashtbl.t;
      (** view variables that exist as C registers/pointers *)
  mutable out_var : string option;
      (** IR variable aliased to the [_out] kernel parameter *)
  mutable local_decls : string list;  (** __local declarations to hoist *)
  mutable uses_image_sampler : bool;
  mutable in_parfor : bool;  (** inside the NDRange thread loop *)
}

(** C name of a root array, mapping the map-output variable to [_out]. *)
let root_cname g root =
  match g.out_var with
  | Some v when v = root -> "_out"
  | _ ->
      String.map (fun c -> if c = '%' || c = '$' then '_' else c) root

let placement g name =
  (* resolve views to their root array's placement *)
  let root =
    match Hashtbl.find_opt g.views name with Some (r, _) -> r | None -> name
  in
  match List.assoc_opt root g.placements with
  | Some p -> p
  | None -> Ir.default_placement

let line g fmt =
  Printf.ksprintf
    (fun s ->
      buf_add g.b (String.make (2 * g.indent) ' ');
      buf_add g.b s;
      buf_add g.b "\n")
    fmt

let cname s =
  (* IR temporaries look like %name7; make them C identifiers *)
  String.map (fun c -> if c = '%' || c = '$' then '_' else c) s

let scalar_c = function
  | Ir.SInt -> "int"
  | Ir.SFloat -> "float"
  | Ir.SDouble -> "double"
  | Ir.SByte -> "char"
  | Ir.SLong -> "long"
  | Ir.SBool -> "int"
  | Ir.SChar -> "ushort"

let vec_c s w =
  if w = 1 then scalar_c s else Printf.sprintf "%s%d" (scalar_c s) w

let space_qualifier = function
  | Ir.MGlobal -> "__global"
  | Ir.MLocal -> "__local"
  | Ir.MConstant -> "__constant"
  | Ir.MPrivate -> "__private"
  | Ir.MImage -> "" (* image2d_t carries its own access qualifier *)
  | Ir.MHost -> ""

(* ------------------------------------------------------------------ *)
(* Array layout: flat index computation                                *)
(* ------------------------------------------------------------------ *)

(** The length of dimension [d] of root array [name]: a constant when the
    dimension is fixed, otherwise a field of the args struct. *)
let dim_len_c disp (aty : Ir.aty) d =
  match List.nth aty.Ir.dims d with
  | Ir.DFixed n -> string_of_int n
  | Ir.DDyn -> Printf.sprintf "args.%s_len%d" disp d

(** Row stride (in elements) below dimension [d]; vectorized arrays drop the
    innermost dimension into the element type. *)
let stride_c disp (aty : Ir.aty) ~vector_width d =
  let ndims = List.length aty.Ir.dims in
  let last = if vector_width > 1 then ndims - 1 else ndims in
  let factors = ref [] in
  for k = d + 1 to last - 1 do
    factors := dim_len_c disp aty k :: !factors
  done;
  match !factors with [] -> "1" | fs -> String.concat " * " fs

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let binop_c (op : Lime_frontend.Ast.binop) =
  match op with
  | Ushr -> ">>" (* emitted on unsigned operands *)
  | op -> Lime_frontend.Ast.binop_name op

(** A C floating literal that always contains a '.' or exponent. *)
let float_lit f =
  let s = Printf.sprintf "%.9g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'n' || c = 'i') s then s
  else s ^ ".0"

let intrinsic_c (b : B.builtin) (s : Ir.scalar) =
  let native f = if s = Ir.SFloat then "native_" ^ f else f in
  match b with
  | B.BSqrt -> native "sqrt"
  | B.BSin -> native "sin"
  | B.BCos -> native "cos"
  | B.BTan -> native "tan"
  | B.BExp -> native "exp"
  | B.BLog -> native "log"
  | B.BPow -> "pow"
  | B.BAtan2 -> "atan2"
  | B.BAbs -> (match s with Ir.SFloat | Ir.SDouble -> "fabs" | _ -> "abs")
  | B.BMin -> (match s with Ir.SFloat | Ir.SDouble -> "fmin" | _ -> "min")
  | B.BMax -> (match s with Ir.SFloat | Ir.SDouble -> "fmax" | _ -> "max")
  | B.BFloor -> "floor"
  | B.BCeil -> "ceil"
  | B.BRsqrt -> native "rsqrt"
  | B.BRange | B.BToValue | B.BPrint -> "/*unsupported*/"

(** Resolve an access [base(idx...)] to (root array, full index list). *)
let rec resolve_access g (e : Ir.expr) (suffix : Ir.expr list) :
    (string * Ir.expr list) option =
  match e with
  | Ir.Var v -> (
      match Hashtbl.find_opt g.views v with
      | Some (root, prefix) -> Some (root, prefix @ suffix)
      | None -> Some (v, suffix))
  | Ir.Load (b, idx) -> resolve_access g b (idx @ suffix)
  | _ -> None

let root_aty g root : Ir.aty option =
  match List.assoc_opt root g.kernel.Kernel.k_params with
  | Some (Ir.TArr a) -> Some a
  | _ -> None

let rec expr_c g (e : Ir.expr) : string =
  match e with
  | Ir.Const (Ir.CInt i) -> string_of_int i
  | Ir.Const (Ir.CLong l) -> Int64.to_string l ^ "L"
  | Ir.Const (Ir.CFloat f) -> float_lit f ^ "f"
  | Ir.Const (Ir.CDouble d) -> float_lit d
  | Ir.Const (Ir.CBool b) -> if b then "1" else "0"
  | Ir.Var v -> cname v
  | Ir.Bin (Lime_frontend.Ast.Ushr, s, a, b) ->
      let u = match s with Ir.SLong -> "ulong" | _ -> "uint" in
      Printf.sprintf "((%s)((%s)%s >> %s))" (scalar_c s) u (expr_c g a)
        (expr_c g b)
  | Ir.Bin (op, _, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_c g a) (binop_c op) (expr_c g b)
  | Ir.Un (op, _, a) ->
      Printf.sprintf "(%s%s)" (Lime_frontend.Ast.unop_name op) (expr_c g a)
  | Ir.Cast (d, _, a) -> Printf.sprintf "((%s)%s)" (scalar_c d) (expr_c g a)
  | Ir.Load (Ir.Var v, idx) when Hashtbl.mem g.materialized v ->
      view_access g v idx
  | Ir.Load (b, idx) -> load_c g b idx
  | Ir.Len (a, d) -> (
      match resolve_access g a [] with
      | Some (root, _) -> (
          match root_aty g root with
          | Some aty -> dim_len_c (root_cname g root) aty d
          | None -> (
              (* not a kernel parameter: a body-declared intermediate (whose
                 dynamic lengths are args-struct fields, like the scratch
                 buffers) or the _out alias *)
              match local_array_aty g root with
              | Some aty -> dim_len_c (root_cname g root) aty d
              | None -> Printf.sprintf "args.%s_len%d" (root_cname g root) d))
      | None -> "/*len?*/0")
  | Ir.Intrinsic (b, s, args) ->
      Printf.sprintf "%s(%s)" (intrinsic_c b s)
        (String.concat ", " (List.map (expr_c g) args))
  | Ir.This | Ir.CallF _ | Ir.CallM _ | Ir.FieldGet _ | Ir.StaticGet _
  | Ir.NewObj _ | Ir.RangeE _ | Ir.ToValueE _ | Ir.TaskE _ | Ir.ConnectE _ ->
      "/*non-kernel-expr*/0"
  | Ir.NewArr _ | Ir.ArrLit _ -> "/*array-expr*/0"

(** Emit an array access.  Behaviour depends on the root's placement:
    - vectorized: a full access becomes [.sN] component selection on the
      loaded vector; a row access loads the whole vector;
    - image: [read_imagef(tex, smp, (int2)(x, 0))];
    - otherwise: flat pointer indexing with explicit strides. *)
and load_c g (base : Ir.expr) (idx : Ir.expr list) : string =
  match resolve_access g base idx with
  | None -> "/*load?*/0"
  | Some (root, full) -> access_c g root full

(** Access through a *materialized* view: a vector register ([float4 q])
    gets component selection; a pointer view gets direct indexing.  Deeper
    accesses fall back to the root array. *)
and view_access g v (idx : Ir.expr list) : string =
  let root =
    match Hashtbl.find_opt g.views v with Some (r, _) -> r | None -> v
  in
  let p = placement g root in
  let vector_register = p.Ir.space = Ir.MImage || p.Ir.vector_width > 1 in
  match idx with
  | [] -> cname v
  | [ i ] when vector_register -> (
      match i with
      | Ir.Const (Ir.CInt c) ->
          let comp =
            if p.Ir.vector_width > 4 then Printf.sprintf "s%x" (c land 15)
            else [| "x"; "y"; "z"; "w" |].(c land 3)
          in
          Printf.sprintf "%s.%s" (cname v) comp
      | e -> Printf.sprintf "%s[%s]" (cname v) (expr_c g e))
  | [ i ] -> Printf.sprintf "%s[%s]" (cname v) (expr_c g i)
  | _ -> (
      match resolve_access g (Ir.Var v) idx with
      | Some (root, full) -> access_c g root full
      | None -> "/*view?*/0")

and access_c g root (full : Ir.expr list) : string =
  let p = placement g root in
  let aty =
    match root_aty g root with
    | Some a -> a
    | None -> (
        (* locally declared array: private/local; treat dims as fixed *)
        match local_array_aty g root with
        | Some a -> a
        | None -> { Ir.elem = Ir.SFloat; dims = [ Ir.DDyn ]; value = false })
  in
  let ndims = List.length aty.Ir.dims in
  let nidx = List.length full in
  if p.Ir.space = Ir.MImage then begin
    g.uses_image_sampler <- true;
    (* 1-D image indexing: coordinate x = row index; the texel packs the
       innermost dimension (paper: index x maps to (x, 0)) *)
    let row_idx =
      match full with
      | i :: _ -> expr_c g i
      | [] -> "0"
    in
    let texel =
      Printf.sprintf "read_imagef(%s, %s_smp, (int2)(%s, 0))"
        (root_cname g root) (root_cname g root) row_idx
    in
    if nidx = ndims then
      let comp =
        match List.nth full (nidx - 1) with
        | Ir.Const (Ir.CInt c) -> [| "x"; "y"; "z"; "w" |].(c land 3)
        | e -> Printf.sprintf "[%s]" (expr_c g e)
      in
      Printf.sprintf "%s.%s" texel comp
    else texel
  end
  else if p.Ir.vector_width > 1 then begin
    (* innermost dim folded into the vector element type *)
    let lead = List.filteri (fun i _ -> i < ndims - 1) full in
    let flat = flat_index_c g root aty ~vector_width:p.Ir.vector_width lead in
    if nidx = ndims then
      let comp =
        match List.nth full (nidx - 1) with
        | Ir.Const (Ir.CInt c) ->
            if p.Ir.vector_width <= 4 then [| "x"; "y"; "z"; "w" |].(c land 3)
            else Printf.sprintf "s%x" (c land 15)
        | e -> Printf.sprintf "[%s]" (expr_c g e)
      in
      Printf.sprintf "%s[%s].%s" (root_cname g root) flat comp
    else Printf.sprintf "%s[%s]" (root_cname g root) flat
  end
  else begin
    let flat = flat_index_c g root aty ~vector_width:1 full in
    if nidx = ndims then Printf.sprintf "%s[%s]" (root_cname g root) flat
    else Printf.sprintf "(&%s[%s])" (root_cname g root) flat
  end

and flat_index_c g root (aty : Ir.aty) ~vector_width (idx : Ir.expr list) :
    string =
  let padded = (placement g root).Ir.padded in
  let terms =
    List.mapi
      (fun d i ->
        let stride = stride_c (root_cname g root) aty ~vector_width d in
        let stride =
          (* bank-conflict padding widens the row stride by one element *)
          if padded && stride <> "1" then Printf.sprintf "(%s + 1)" stride
          else stride
        in
        if stride = "1" then expr_c g i
        else Printf.sprintf "%s * %s" (expr_c g i) stride)
      idx
  in
  match terms with [] -> "0" | ts -> String.concat " + " ts

and local_array_aty g name : Ir.aty option =
  (* find a declaration in the kernel body *)
  let found = ref None in
  List.iter
    (Ir.iter_stmt
       ~stmt:(fun s ->
         match s with
         | Ir.SDecl (v, Ir.TArr a, _) when v = name -> found := Some a
         | _ -> ())
       ~expr:(fun _ -> ()))
    g.kernel.Kernel.k_body;
  !found

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec stmt_c g (s : Ir.stmt) : unit =
  match s with
  | Ir.SDecl (v, t, init) -> decl_c g v t init
  | Ir.SAssign (Ir.LVar v, Ir.NewArr _) ->
      line g "/* %s: allocated by the host (deferred sizing) */" (cname v)
  | Ir.SAssign (Ir.LVar v, e) -> assign_c g v e
  | Ir.SAssign (_, e) -> line g "/* non-kernel assign */ (void)(%s);" (expr_c g e)
  | Ir.SArrStore (b, idx, v) -> (
      match resolve_access g b idx with
      | Some (root, full) -> store_c g root full v
      | None -> line g "/* unresolved store */;")
  | Ir.SIf (c, a, []) ->
      line g "if (%s) {" (expr_c g c);
      indented g (fun () -> List.iter (stmt_c g) a);
      line g "}"
  | Ir.SIf (c, a, b) ->
      line g "if (%s) {" (expr_c g c);
      indented g (fun () -> List.iter (stmt_c g) a);
      line g "} else {";
      indented g (fun () -> List.iter (stmt_c g) b);
      line g "}"
  | Ir.SWhile (c, b) ->
      line g "while (%s) {" (expr_c g c);
      indented g (fun () -> List.iter (stmt_c g) b);
      line g "}"
  | Ir.SFor (v, lo, hi, b) ->
      line g "for (int %s = %s; %s < %s; %s++) {" (cname v) (expr_c g lo)
        (cname v) (expr_c g hi) (cname v);
      indented g (fun () -> List.iter (stmt_c g) b);
      line g "}"
  | Ir.SParFor p ->
      (* the robust thread loop of Fig 4 *)
      line g "for (int %s = get_global_id(0); %s < %s; %s += get_global_size(0)) {"
        (cname p.Ir.pf_var) (cname p.Ir.pf_var) (expr_c g p.Ir.pf_count)
        (cname p.Ir.pf_var);
      let saved = g.in_parfor in
      g.in_parfor <- true;
      indented g (fun () -> List.iter (stmt_c g) p.Ir.pf_body);
      g.in_parfor <- saved;
      line g "}"
  | Ir.SReduce r when not g.in_parfor ->
      (* whole-kernel reduction: the paper's compiler "may infer a parallel
         reduction" (§4.1) — emit the classic two-stage tree: grid-stride
         per-thread accumulation, then a local-memory tree per work group;
         the host combines the per-group partials *)
      emit_tree_reduction g r
  | Ir.SReduce r ->
      (* per-thread (nested) reduce: a sequential combine in-thread *)
      let arr = r.Ir.rd_arr in
      let n =
        match resolve_access g arr [] with
        | Some (root, _) -> (
            match root_aty g root with
            | Some aty -> dim_len_c (root_cname g root) aty 0
            | None -> (
                match local_array_aty g root with
                | Some aty -> dim_len_c (root_cname g root) aty 0
                | None -> "/*n*/0"))
        | None -> "/*n*/0"
      in
      line g "%s = %s;" (cname r.Ir.rd_dst)
        (expr_c g (Ir.Load (arr, [ Ir.Const (Ir.CInt 0) ])));
      line g "for (int _r = 1; _r < %s; _r++) {" n;
      indented g (fun () ->
          let elem = expr_c g (Ir.Load (arr, [ Ir.Var "_r" ])) in
          line g "%s = %s;" (cname r.Ir.rd_dst)
            (combine_c () r.Ir.rd_op r.Ir.rd_scalar (cname r.Ir.rd_dst) elem));
      line g "}"
  | Ir.SInlineBlock (res, b) ->
      (* single-exit tail return: emit directly; otherwise do/while(0) *)
      if tail_return_only b then begin
        match List.rev b with
        | Ir.SReturn (Some e) :: rest ->
            List.iter (stmt_c g) (List.rev rest);
            assign_c g res e
        | _ -> emit_dowhile g res b
      end
      else emit_dowhile g res b
  | Ir.SReturn (Some (Ir.Var v)) when g.out_var = Some v ->
      line g "/* result delivered in _out */"
  | Ir.SReturn (Some e) ->
      line g "if (get_global_id(0) == 0) _out[0] = %s;" (expr_c g e)
  | Ir.SReturn None -> line g "return;"
  | Ir.SExpr e -> line g "(void)(%s);" (expr_c g e)
  | Ir.SBreak -> line g "break;"
  | Ir.SContinue -> line g "continue;"
  | Ir.SFinish _ -> line g "/* finish: host-side */;"

and combine_c _g op s a b =
  match op with
  | B.RO_Binop bop -> Printf.sprintf "%s %s %s" a (binop_c bop) b
  | B.RO_Builtin bi -> Printf.sprintf "%s(%s, %s)" (intrinsic_c bi s) a b
  | B.RO_Method (c, m) -> Printf.sprintf "%s_%s(%s, %s)" c m a b

and emit_tree_reduction g (r : Ir.reduce) : unit =
  let arr = r.Ir.rd_arr in
  let n =
    match resolve_access g arr [] with
    | Some (root, _) -> (
        match root_aty g root with
        | Some aty -> dim_len_c (root_cname g root) aty 0
        | None -> (
            match local_array_aty g root with
            | Some aty -> dim_len_c (root_cname g root) aty 0
            | None -> "/*n*/0"))
    | None -> "/*n*/0"
  in
  let ty = scalar_c r.Ir.rd_scalar in
  let dst = cname r.Ir.rd_dst in
  let elem_at i = expr_c g (Ir.Load (arr, [ Ir.Var i ])) in
  line g "/* two-stage parallel reduction (inferred from '!') */";
  line g "__local %s _partial[TILE];" ty;
  line g "__local int _pvalid[TILE];";
  line g "int _lid = get_local_id(0);";
  line g "%s _acc;" ty;
  line g "int _has = 0;";
  line g "for (int _r = get_global_id(0); _r < %s; _r += get_global_size(0)) {"
    n;
  indented g (fun () ->
      line g "_acc = _has ? (%s) : %s;"
        (combine_c () r.Ir.rd_op r.Ir.rd_scalar "_acc" (elem_at "%r"))
        (elem_at "%r");
      line g "_has = 1;");
  line g "}";
  line g "_partial[_lid] = _acc;";
  line g "_pvalid[_lid] = _has;";
  line g "barrier(CLK_LOCAL_MEM_FENCE);";
  line g "for (int _s = get_local_size(0) / 2; _s > 0; _s >>= 1) {";
  indented g (fun () ->
      line g "if (_lid < _s && _pvalid[_lid + _s]) {";
      indented g (fun () ->
          line g "_partial[_lid] = _pvalid[_lid] ? (%s) : _partial[_lid + _s];"
            (combine_c () r.Ir.rd_op r.Ir.rd_scalar "_partial[_lid]"
               "_partial[_lid + _s]");
          line g "_pvalid[_lid] = 1;");
      line g "}";
      line g "barrier(CLK_LOCAL_MEM_FENCE);");
  line g "}";
  line g "/* one partial per work group; the host combines them */";
  line g "%s = _partial[0];" dst;
  line g "if (_lid == 0) { _out[get_group_id(0)] = %s; }" dst

and tail_return_only (b : Ir.stmt list) : bool =
  (* true iff the only SReturn in the block is the final statement *)
  let count = ref 0 in
  List.iter
    (Ir.iter_stmt
       ~stmt:(fun s -> match s with Ir.SReturn _ -> incr count | _ -> ())
       ~expr:(fun _ -> ()))
    b;
  match List.rev b with
  | Ir.SReturn _ :: _ -> !count = 1
  | _ -> !count = 0

and emit_dowhile g res b =
  line g "do {";
  indented g (fun () ->
      List.iter
        (fun s ->
          match s with
          | Ir.SReturn (Some e) ->
              assign_c g res e;
              line g "break;"
          | s -> stmt_c g s)
        b);
  line g "} while (0);"

(** Assign an expression to a named variable; array literals are expanded
    into per-component stores on the (private) destination array, and
    array-to-array assignment aliases the destination to the source (C has
    no array assignment; the IR guarantees single assignment for these). *)
and assign_c g dst (e : Ir.expr) : unit =
  match e with
  | Ir.ArrLit (_, es) ->
      List.iteri
        (fun i x -> line g "%s[%d] = %s;" (cname dst) i (expr_c g x))
        es
  | Ir.Var src when is_array_name g dst || is_array_name g src ->
      (match Hashtbl.find_opt g.views src with
      | Some entry -> Hashtbl.replace g.views dst entry
      | None -> Hashtbl.replace g.views dst (src, []));
      line g "/* %s aliases %s */" (cname dst) (cname src)
  | e -> line g "%s = %s;" (cname dst) (expr_c g e)

and is_array_name g v =
  Hashtbl.mem g.views v || local_array_aty g v <> None

and indented g f =
  g.indent <- g.indent + 1;
  f ();
  g.indent <- g.indent - 1

and store_c g root (full : Ir.expr list) (v : Ir.expr) : unit =
  let aty =
    match root_aty g root with
    | Some a -> a
    | None -> (
        match local_array_aty g root with
        | Some a -> a
        | None -> { Ir.elem = Ir.SFloat; dims = [ Ir.DDyn ]; value = false })
  in
  let ndims = List.length aty.Ir.dims in
  let nidx = List.length full in
  if nidx = ndims then
    let p = placement g root in
    let lhs =
      if p.Ir.vector_width > 1 then
        access_c g root full (* component select works as lvalue *)
      else
        Printf.sprintf "%s[%s]" (root_cname g root)
          (flat_index_c g root aty ~vector_width:1 full)
    in
    line g "%s = %s;" lhs (expr_c g v)
  else begin
    (* row store: copy elementwise (or as one vector when vectorized) *)
    let p = placement g root in
    let inner = List.nth_opt aty.Ir.dims (ndims - 1) in
    match (p.Ir.vector_width > 1 && nidx = ndims - 1, inner) with
    | true, Some (Ir.DFixed n) ->
        let flat =
          flat_index_c g root aty ~vector_width:p.Ir.vector_width full
        in
        line g "%s[%s] = %s;" (root_cname g root) flat (row_as_vector g v n p)
    | _, Some (Ir.DFixed n) when n <= 8 ->
        for c = 0 to n - 1 do
          let fullc = full @ [ Ir.Const (Ir.CInt c) ] in
          let lhs =
            Printf.sprintf "%s[%s]" (root_cname g root)
              (flat_index_c g root aty ~vector_width:1 fullc)
          in
          line g "%s = %s;" lhs (row_component g v c)
        done
    | _, dim ->
        (* wide or dynamic rows copy with a loop rather than unrolling *)
        let bound =
          match dim with
          | Some (Ir.DFixed n) -> string_of_int n
          | _ -> dim_len_c (root_cname g root) aty (ndims - 1)
        in
        let fullc = full @ [ Ir.Var "%row_c" ] in
        let lhs =
          Printf.sprintf "%s[%s]" (root_cname g root)
            (flat_index_c g root aty ~vector_width:1 fullc)
        in
        line g "for (int _row_c = 0; _row_c < %s; _row_c++) {" bound;
        indented g (fun () -> line g "%s = %s;" lhs (row_var_component g v));
        line g "}"
  end

(* row components go through expr_c so view aliases and vector registers
   resolve correctly *)
and row_var_component g (v : Ir.expr) : string =
  expr_c g (Ir.Load (v, [ Ir.Var "%row_c" ]))

(** Component [c] of a row value (a view variable or small private array). *)
and row_component g (v : Ir.expr) c : string =
  match v with
  | Ir.ArrLit (_, es) when c < List.length es -> expr_c g (List.nth es c)
  | v -> expr_c g (Ir.Load (v, [ Ir.Const (Ir.CInt c) ]))

and row_as_vector g (v : Ir.expr) inner (p : Ir.placement) : string =
  let w = p.Ir.vector_width in
  match v with
  | Ir.ArrLit (aty, es) when List.length es = w ->
      Printf.sprintf "(%s)(%s)"
        (vec_c aty.Ir.elem w)
        (String.concat ", " (List.map (expr_c g) es))
  | Ir.Var name ->
      Printf.sprintf "vload%d(0, %s)" w (cname name)
  | e -> Printf.sprintf "vload%d(0, %s)" w (expr_c g e) |> fun s ->
      ignore inner; s

and decl_c g v (t : Ir.ty) (init : Ir.expr option) : unit =
  match (t, init) with
  | Ir.TArr aty, Some (Ir.Load (b, idx)) -> (
      (* view declaration *)
      match resolve_access g b idx with
      | Some (root, prefix) ->
          Hashtbl.replace g.views v (root, prefix);
          Hashtbl.replace g.materialized v ();
          let p = placement g root in
          if p.Ir.space = Ir.MImage then
            (* texel view: load the whole texel into a vector register *)
            line g "float4 %s = %s;" (cname v) (access_c g root prefix)
          else if p.Ir.vector_width > 1 then
            line g "%s %s = %s;" (vec_c aty.Ir.elem p.Ir.vector_width)
              (cname v) (access_c g root prefix)
          else begin
            (* pointer into the row *)
            let q = space_qualifier p.Ir.space in
            line g "%s const %s* %s = %s;" q (scalar_c aty.Ir.elem) (cname v)
              (access_c g root prefix)
          end
      | None -> line g "/* unresolved view %s */" (cname v))
  | Ir.TArr aty, Some (Ir.Var src) ->
      (* alias *)
      (match Hashtbl.find_opt g.views src with
      | Some entry -> Hashtbl.replace g.views v entry
      | None -> Hashtbl.replace g.views v (src, []));
      ignore aty
  | Ir.TArr aty, (Some (Ir.NewArr _) | None) when g.out_var = Some v ->
      ignore aty (* the result array is the _out kernel parameter *)
  | Ir.TArr aty, None -> (
      (* an array variable bound later (e.g. an inline-block result): a
         small private one is a real register array filled by an array
         literal; larger ones alias their single assignment *)
      match ((placement g v).Ir.space, Ir.static_elem_count aty) with
      | Ir.MPrivate, Some n ->
          line g "%s %s[%d];" (scalar_c aty.Ir.elem) (cname v) n
      | _ ->
          line g "/* %s is bound by its single assignment below */" (cname v))
  | Ir.TArr aty, Some (Ir.NewArr _) -> (
      let p = placement g v in
      match (p.Ir.space, Ir.static_elem_count aty) with
      | Ir.MPrivate, Some n ->
          line g "%s %s[%d];" (scalar_c aty.Ir.elem) (cname v) n
      | Ir.MLocal, Some n ->
          let n = if p.Ir.padded then n + List.length aty.Ir.dims else n in
          line g "__local %s %s[%d];" (scalar_c aty.Ir.elem) (cname v) n
      | _, Some n ->
          (* a per-thread buffer that exceeded the private threshold: the
             host would allocate a global scratch; textually a C array *)
          line g "%s %s[%d]; /* per-thread spill buffer */"
            (scalar_c aty.Ir.elem) (cname v) n
      | _ ->
          line g "/* %s: host-allocated scratch buffer (kernel parameter) */"
            (cname v))
  | Ir.TArr aty, Some (Ir.ArrLit (_, es)) ->
      line g "%s %s[%d] = { %s };" (scalar_c aty.Ir.elem) (cname v)
        (List.length es)
        (String.concat ", " (List.map (expr_c g) es))
  | Ir.TScalar s, Some e ->
      line g "%s %s = %s;" (scalar_c s) (cname v) (expr_c g e)
  | Ir.TScalar s, None -> line g "%s %s;" (scalar_c s) (cname v)
  | _, Some e -> line g "/* %s */ int %s = %s;" (Ir.ty_name t) (cname v) (expr_c g e)
  | _, None -> line g "/* %s %s */" (Ir.ty_name t) (cname v)

(* ------------------------------------------------------------------ *)
(* Kernel assembly                                                     *)
(* ------------------------------------------------------------------ *)

(** The IR variable aliased to the [_out] parameter, if any: the returned
    map-output array. *)
let returned_out_var (k : Kernel.kernel) : string option =
  match List.rev k.Kernel.k_body with
  | Ir.SReturn (Some (Ir.Var v)) :: _ -> Some v
  | _ -> None

(** Kernel-local arrays that the host must allocate as scratch buffers:
    dynamically sized intermediates (e.g. the output of a first map feeding
    a second one).  They become extra [__global] kernel parameters, and
    {!Hostgen} creates matching device buffers. *)
let scratch_buffers (k : Kernel.kernel) : (string * Ir.aty) list =
  let out_var = returned_out_var k in
  let acc = ref [] in
  let rec scan (s : Ir.stmt) =
    match s with
    | Ir.SDecl (v, Ir.TArr aty, Some (Ir.NewArr _))
      when out_var <> Some v && Ir.static_elem_count aty = None ->
        acc := (v, aty) :: !acc
    | Ir.SIf (_, a, b) ->
        List.iter scan a;
        List.iter scan b
    | Ir.SInlineBlock (_, b) -> List.iter scan b
    | Ir.SParFor p -> List.iter scan p.Ir.pf_body
    | Ir.SFor (_, _, _, b) | Ir.SWhile (_, b) -> List.iter scan b
    | _ -> ()
  in
  List.iter scan k.Kernel.k_body;
  List.rev !acc

let intermediates g (k : Kernel.kernel) : (string * Ir.aty) list =
  ignore g;
  scratch_buffers k

(** The bookkeeping struct of Fig 4(b): dynamic array lengths plus scalar
    parameters. *)
let args_struct_c ?(extra = []) (k : Kernel.kernel) : string * string list =
  let fields = ref [] in
  List.iter
    (fun (p, t) ->
      match t with
      | Ir.TArr aty ->
          List.iteri
            (fun d dk ->
              match dk with
              | Ir.DDyn -> fields := Printf.sprintf "int %s_len%d;" (cname p) d :: !fields
              | Ir.DFixed _ -> ())
            aty.Ir.dims
      | Ir.TScalar _ -> ()
      | _ -> ())
    k.Kernel.k_params;
  (* scratch-buffer lengths *)
  List.iter
    (fun (p, (aty : Ir.aty)) ->
      List.iteri
        (fun d dk ->
          match dk with
          | Ir.DDyn ->
              fields := Printf.sprintf "int %s_len%d;" (cname p) d :: !fields
          | Ir.DFixed _ -> ())
        aty.Ir.dims)
    extra;
  (* result array lengths *)
  (match k.Kernel.k_ret with
  | Ir.TArr aty ->
      List.iteri
        (fun d dk ->
          match dk with
          | Ir.DDyn -> fields := Printf.sprintf "int _out_len%d;" d :: !fields
          | Ir.DFixed _ -> ())
        aty.Ir.dims
  | _ -> ());
  let name =
    "KArgs_" ^ cname (String.map (fun c -> if c = '.' then '_' else c)
                        k.Kernel.k_name)
  in
  (name, List.rev !fields)

let param_decl_c g (p : string) (t : Ir.ty) : string option =
  match t with
  | Ir.TArr aty -> (
      let pl = placement g p in
      match pl.Ir.space with
      | Ir.MImage -> Some (Printf.sprintf "__read_only image2d_t %s" (cname p))
      | Ir.MConstant ->
          Some
            (Printf.sprintf "__constant %s* restrict %s"
               (vec_c aty.Ir.elem pl.Ir.vector_width)
               (cname p))
      | Ir.MLocal ->
          (* staged through a local tile; the global source still comes in *)
          Some
            (Printf.sprintf "__global const %s* restrict %s"
               (vec_c aty.Ir.elem pl.Ir.vector_width)
               (cname p))
      | _ ->
          let const = if aty.Ir.value then "const " else "" in
          Some
            (Printf.sprintf "__global %s%s* restrict %s" const
               (vec_c aty.Ir.elem pl.Ir.vector_width)
               (cname p)))
  | Ir.TScalar s -> Some (Printf.sprintf "%s %s" (scalar_c s) (cname p))
  | _ -> None

(** Emit the local-memory staging loop of Fig 5(d) for arrays placed in
    local memory: threads of the work group cooperatively copy a tile and
    barrier before use. *)
let local_staging_c g =
  List.iter
    (fun (name, p) ->
      if p.Ir.space = Ir.MLocal then begin
        match List.assoc_opt name g.kernel.Kernel.k_params with
        | Some (Ir.TArr aty) ->
            let rowlen =
              match Ir.innermost_fixed aty with Some n -> n | None -> 1
            in
            let stride = if p.Ir.padded then rowlen + 1 else rowlen in
            line g "/* stage %s through local memory (tile + barrier) */"
              (cname name);
            line g "__local %s %s_tile[TILE * %d];" (scalar_c aty.Ir.elem)
              (cname name) stride;
            line g "const int tile_base = 0; /* tile loop elided: whole-array staging */";
            line g "for (int t = get_local_id(0); t < TILE * %d; t += get_local_size(0)) {"
              rowlen;
            indented g (fun () ->
                if p.Ir.padded then begin
                  line g "int row = t / %d;" rowlen;
                  line g "int col = t %% %d;" rowlen;
                  line g "%s_tile[row * %d + col] = ((__global const %s*)%s)[tile_base * %d + t];"
                    (cname name) stride (scalar_c aty.Ir.elem) (cname name)
                    rowlen
                end
                else
                  line g "%s_tile[t] = ((__global const %s*)%s)[tile_base * %d + t];"
                    (cname name) (scalar_c aty.Ir.elem) (cname name) rowlen);
            line g "}";
            line g "barrier(CLK_LOCAL_MEM_FENCE);"
        | _ -> ()
      end)
    g.placements

(** Generate the OpenCL source of a kernel under the given placements. *)
let generate ?(group_size = 256) (k : Kernel.kernel)
    (decisions : Memopt.decision list) : string =
  let placements = Memopt.placements decisions in
  let g =
    {
      b = Buffer.create 4096;
      indent = 0;
      placements;
      kernel = k;
      views = Hashtbl.create 16;
      materialized = Hashtbl.create 16;
      out_var = None;
      local_decls = [];
      uses_image_sampler = false;
      in_parfor = false;
    }
  in
  (* the returned map-output array becomes the _out kernel parameter *)
  (match List.rev k.Kernel.k_body with
  | Ir.SReturn (Some (Ir.Var v)) :: _ -> g.out_var <- Some v
  | _ -> ());
  let kname =
    String.map (fun c -> if c = '.' then '_' else c) k.Kernel.k_name
  in
  if k.Kernel.k_uses_double then
    buf_add g.b "#pragma OPENCL EXTENSION cl_khr_fp64 : enable\n\n";
  let inter = intermediates g k in
  let sname, fields = args_struct_c ~extra:inter k in
  buf_add g.b (Printf.sprintf "#define TILE %d\n\n" group_size);
  buf_add g.b (Printf.sprintf "typedef struct {\n");
  List.iter (fun f -> buf_add g.b ("  " ^ f ^ "\n")) fields;
  if fields = [] then buf_add g.b "  int _unused;\n";
  buf_add g.b (Printf.sprintf "} %s;\n\n" sname);
  (* sampler for image arrays *)
  let has_image =
    List.exists (fun (_, p) -> p.Ir.space = Ir.MImage) placements
  in
  if has_image then
    List.iter
      (fun (name, p) ->
        if p.Ir.space = Ir.MImage then
          buf_add g.b
            (Printf.sprintf
               "__constant sampler_t %s_smp = CLK_NORMALIZED_COORDS_FALSE | \
                CLK_ADDRESS_CLAMP | CLK_FILTER_NEAREST;\n"
               (cname name)))
      placements;
  if has_image then buf_add g.b "\n";
  (* signature *)
  let out_param =
    match k.Kernel.k_ret with
    | Ir.TArr aty ->
        let pl =
          match
            List.find_opt
              (fun (n, _) -> Lime_support.Util.starts_with ~prefix:"%mapout" n)
              placements
          with
          | Some (_, p) -> p
          | None -> Ir.default_placement
        in
        [ Printf.sprintf "__global %s* restrict _out"
            (vec_c aty.Ir.elem pl.Ir.vector_width) ]
    | Ir.TScalar s -> [ Printf.sprintf "__global %s* restrict _out" (scalar_c s) ]
    | _ -> []
  in
  let inter_params =
    List.map
      (fun (p, (aty : Ir.aty)) ->
        Printf.sprintf
          "__global %s* restrict %s /* scratch (per-work-item slices in a \
           real deployment) */"
          (scalar_c aty.Ir.elem) (cname p))
      inter
  in
  let params =
    List.filter_map (fun (p, t) -> param_decl_c g p t) k.Kernel.k_params
    @ inter_params
    @ out_param
    @ [ Printf.sprintf "%s args" sname ]
  in
  buf_add g.b (Printf.sprintf "__kernel void %s(\n    %s)\n{\n" kname
                 (String.concat ",\n    " params));
  g.indent <- 1;
  local_staging_c g;
  List.iter (stmt_c g) k.Kernel.k_body;
  g.indent <- 0;
  buf_add g.b "}\n";
  Buffer.contents g.b
