(** The memory optimizer (paper §4.2.1) and vectorizer (§4.2.2).

    A pattern-matching optimizer: it scans the kernel IR for the memory
    access idioms of Fig 5 and maps each array onto the OpenCL memory
    hierarchy.  No alias analysis and no dependence analysis are needed —
    value types guarantee read-only-ness and the absence of pointers makes
    index classification exact.

    Patterns recognized (per array):

    - {b private} (Fig 5a-b): allocated inside the innermost parallel loop
      (each thread owns its instance) with a small static size;
    - {b local} (Fig 5c-d): read-only array accessed in a sequential loop
      nested inside the parallel loop — every thread streams through the
      same elements, so tiles are staged in local memory (with optional
      bank-conflict padding);
    - {b image} (Fig 5e-f): read-only array whose innermost dimension is 2
      or 4 and whose last-dimension accesses are static — a fit for the
      4-word texel format of OpenCL 1.0 images;
    - {b constant} (Fig 5g-h): read-only array whose accesses are invariant
      in the parallel loop (a broadcast) and small enough for constant
      memory;
    - {b vectorization}: read-only arrays with a bounded innermost dimension
      of 2/4/8/16 accessed by static indices get vector loads.

    Every optimization can be toggled independently, which is how the Fig 8
    sweep over eight configurations is generated. *)

module Ir = Lime_ir.Ir

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  use_private : bool;
  use_local : bool;
  pad_local : bool;  (** remove bank conflicts by padding rows *)
  use_image : bool;
  use_constant : bool;
  vectorize : bool;
}

let config_global =
  {
    use_private = true;
    use_local = false;
    pad_local = false;
    use_image = false;
    use_constant = false;
    vectorize = false;
  }

let config_global_vector = { config_global with vectorize = true }
let config_local = { config_global with use_local = true }
let config_local_noconflict = { config_local with pad_local = true }

let config_local_noconflict_vector =
  { config_local_noconflict with vectorize = true }

let config_constant = { config_global with use_constant = true }
let config_constant_vector = { config_constant with vectorize = true }
let config_image = { config_global with use_image = true }

(** all optimizations on; image takes priority only where constant/local do
    not apply *)
let config_all =
  {
    use_private = true;
    use_local = true;
    pad_local = true;
    use_image = true;
    use_constant = true;
    vectorize = true;
  }

(** The eight bars of Fig 8, in the paper's order. *)
let fig8_configs : (string * config) list =
  [
    ("Global", config_global);
    ("Global+Vector", config_global_vector);
    ("Local", config_local);
    ("Local+Conflicts removed", config_local_noconflict);
    ("Local+Conflicts removed+Vector", config_local_noconflict_vector);
    ("Constant", config_constant);
    ("Constant+Vector", config_constant_vector);
    ("Texture", config_image);
  ]

let config_name c =
  match
    List.find_opt (fun (_, c') -> c' = c) fig8_configs
  with
  | Some (n, _) -> n
  | None -> if c = config_all then "All" else "Custom"

(** Private memory capacity threshold, in elements (the paper: "arrays whose
    size can be determined statically and does not exceed a certain
    threshold"). *)
let private_threshold_elems = 128

(** Constant memory budget in bytes (64KB on all three GPUs of Table 2). *)
let constant_budget_bytes = 65536

(* ------------------------------------------------------------------ *)
(* Access analysis                                                     *)
(* ------------------------------------------------------------------ *)

type access_class =
  | AThreadLinear  (** leading index = parallel var (+ constant): coalesced *)
  | AThreadStrided  (** depends on the parallel var in a non-unit way *)
  | AStream  (** varies with an inner sequential loop, same across threads *)
  | ABroadcast  (** invariant inside the parallel loop *)

let class_name = function
  | AThreadLinear -> "thread-linear"
  | AThreadStrided -> "thread-strided"
  | AStream -> "stream"
  | ABroadcast -> "broadcast"

type array_info = {
  ai_name : string;
  ai_ty : Ir.aty;
  ai_is_param : bool;
  ai_read_only : bool;
  ai_alloc_in_parfor : bool;
  ai_static_elems : int option;
  ai_classes : access_class list;  (** deduplicated access classes *)
  ai_innermost_static : bool;
      (** true iff every access supplies constant indices for the innermost
          dimension (needed for image + vectorization) *)
  ai_lane_mod : int;
      (** alignment modulus of affine innermost indices ([v*m + c]): the gcd
          of the [m]s observed, 0 when every innermost index is a plain
          constant.  Only populated under [~affine_lanes:true]. *)
  ai_load_sites : int;
  ai_store_sites : int;
}

type loop_ctx = {
  par_vars : string list;
  seq_vars : string list;
  thread_vars : (string, unit) Hashtbl.t;
      (** scalars defined inside the parallel loop: data-dependent on the
          thread, so indices using them cannot be broadcast *)
}

let expr_vars (e : Ir.expr) : string list =
  let acc = ref [] in
  Ir.iter_expr
    (fun e -> match e with Ir.Var v -> acc := v :: !acc | _ -> ())
    e;
  !acc

let classify_index (ctx : loop_ctx) (idx : Ir.expr) : access_class =
  let vars = expr_vars idx in
  let is_par v =
    List.mem v ctx.par_vars || Hashtbl.mem ctx.thread_vars v
  in
  let mentions_par = List.exists is_par vars in
  let mentions_seq = List.exists (fun v -> List.mem v ctx.seq_vars) vars in
  let pure_of rest =
    not (List.exists is_par (expr_vars rest))
  in
  if mentions_par then
    match idx with
    | Ir.Var v when List.mem v ctx.par_vars -> AThreadLinear
    | Ir.Bin ((Lime_frontend.Ast.Add | Lime_frontend.Ast.Sub), _, Ir.Var v, rest)
      when List.mem v ctx.par_vars && pure_of rest ->
        AThreadLinear
    | Ir.Bin (Lime_frontend.Ast.Add, _, rest, Ir.Var v)
      when List.mem v ctx.par_vars && pure_of rest ->
        AThreadLinear
    | _ -> AThreadStrided
  else if mentions_seq then AStream
  else ABroadcast

(* mutable accumulation per array *)
type acc = {
  mutable a_ty : Ir.aty option;
  mutable a_is_param : bool;
  mutable a_alloc_in_parfor : bool;
  mutable a_classes : access_class list;
  mutable a_innermost_static : bool;
  mutable a_lane_mod : int;
  mutable a_loads : int;
  mutable a_stores : int;
  mutable a_rank_full : int;  (** rank of the root array *)
}

(** Recognize an affine innermost index [v*m + c] (either operand order)
    with a compile-time modulus [m >= 2] and offset [0 <= c < m]: the lane
    within an [m]-aligned group is statically known even though the index
    itself is dynamic.  Loop unrolling produces exactly this shape, which
    is what makes rewritten kernels vectorizable. *)
let affine_lane (e : Ir.expr) : (int * int) option =
  let mul = function
    | Ir.Bin (Lime_frontend.Ast.Mul, _, _, Ir.Const (Ir.CInt m))
    | Ir.Bin (Lime_frontend.Ast.Mul, _, Ir.Const (Ir.CInt m), _) ->
        Some m
    | _ -> None
  in
  let check m c = if m >= 2 && c >= 0 && c < m then Some (m, c) else None in
  match e with
  | Ir.Bin (Lime_frontend.Ast.Add, _, a, Ir.Const (Ir.CInt c))
  | Ir.Bin (Lime_frontend.Ast.Add, _, Ir.Const (Ir.CInt c), a) -> (
      match mul a with Some m -> check m c | None -> None)
  | _ -> ( match mul e with Some m -> check m 0 | None -> None)

(** Analyze every array in a kernel.  Views created by partial indexing
    ([float\[\[4\]\] q = particles\[j\]]) are traced back to their root array:
    an access to the view contributes the combined index list. *)
let analyze ?(affine_lanes = false) (k : Kernel.kernel) : array_info list =
  let arrays : (string, acc) Hashtbl.t = Hashtbl.create 16 in
  (* view alias: var -> (root, prefix indices, defining loop ctx) *)
  let views : (string, string * Ir.expr list) Hashtbl.t = Hashtbl.create 16 in
  let order : string list ref = ref [] in
  let get name =
    match Hashtbl.find_opt arrays name with
    | Some a -> a
    | None ->
        let a =
          {
            a_ty = None;
            a_is_param = false;
            a_alloc_in_parfor = false;
            a_classes = [];
            a_innermost_static = true;
            a_lane_mod = 0;
            a_loads = 0;
            a_stores = 0;
            a_rank_full = 0;
          }
        in
        Hashtbl.add arrays name a;
        order := name :: !order;
        a
  in
  (* roots: parameters *)
  List.iter
    (fun (p, t) ->
      match t with
      | Ir.TArr aty ->
          let a = get p in
          a.a_ty <- Some aty;
          a.a_is_param <- true;
          a.a_rank_full <- List.length aty.Ir.dims
      | _ -> ())
    k.Kernel.k_params;
  (* resolve a base expression to (root name, prefix indices) *)
  let rec resolve (e : Ir.expr) (suffix : Ir.expr list) :
      (string * Ir.expr list) option =
    match e with
    | Ir.Var v -> (
        match Hashtbl.find_opt views v with
        | Some (root, prefix) -> Some (root, prefix @ suffix)
        | None ->
            if Hashtbl.mem arrays v then Some (v, suffix) else None)
    | Ir.Load (b, idx) -> resolve b (idx @ suffix)
    | _ -> None
  in
  let is_const_expr = function Ir.Const _ -> true | _ -> false in
  let record_access ctx root (full_idx : Ir.expr list) ~store =
    let a = get root in
    if store then a.a_stores <- a.a_stores + 1 else a.a_loads <- a.a_loads + 1;
    (match full_idx with
    | lead :: _ ->
        let cls = classify_index ctx lead in
        if not (List.mem cls a.a_classes) then
          a.a_classes <- a.a_classes @ [ cls ]
    | [] -> ());
    (* innermost-dimension access: only meaningful when the access reaches
       the innermost dimension of the root *)
    if a.a_rank_full > 1 && List.length full_idx = a.a_rank_full then begin
      let last = List.nth full_idx (List.length full_idx - 1) in
      if not (is_const_expr last) then
        match (if affine_lanes then affine_lane last else None) with
        | Some (m, _) ->
            let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
            a.a_lane_mod <- (if a.a_lane_mod = 0 then m else gcd a.a_lane_mod m)
        | None -> a.a_innermost_static <- false
    end
    else if a.a_rank_full > 1 && List.length full_idx < a.a_rank_full then
      (* a view escapes without reaching the innermost dim: conservative *)
      ()
  in
  let rec walk_expr ctx (e : Ir.expr) =
    (match e with
    | Ir.Load (b, idx) -> (
        match resolve b idx with
        | Some (root, full) -> record_access ctx root full ~store:false
        | None -> ())
    | Ir.Len _ -> ()
    | _ -> ());
    (* recurse, but do not re-resolve inner loads that feed this one: the
       combined access was already recorded via [resolve].  Index
       expressions still need walking for their own loads. *)
    match e with
    | Ir.Load (b, idx) ->
        (match b with Ir.Var _ -> () | _ -> walk_expr ctx b);
        List.iter (walk_expr ctx) idx
    | _ ->
        (* shallow recursion over direct children *)
        shallow_children ctx e
  and shallow_children ctx e =
    match e with
    | Ir.Const _ | Ir.Var _ | Ir.This | Ir.StaticGet _ -> ()
    | Ir.Bin (_, _, a, b) | Ir.ConnectE (a, b) ->
        walk_expr ctx a;
        walk_expr ctx b
    | Ir.Un (_, _, a) | Ir.Cast (_, _, a) | Ir.Len (a, _)
    | Ir.FieldGet (a, _) | Ir.RangeE a | Ir.ToValueE a ->
        walk_expr ctx a
    | Ir.Load (b, idx) ->
        walk_expr ctx b;
        List.iter (walk_expr ctx) idx
    | Ir.Intrinsic (_, _, args) | Ir.CallF (_, args) | Ir.NewArr (_, args)
    | Ir.ArrLit (_, args) | Ir.NewObj (_, args) ->
        List.iter (walk_expr ctx) args
    | Ir.CallM (_, r, args) ->
        walk_expr ctx r;
        List.iter (walk_expr ctx) args
    | Ir.TaskE _ -> ()
  in
  let rec walk_stmt ctx in_parfor (s : Ir.stmt) =
    match s with
    | Ir.SDecl (v, Ir.TArr aty, init) -> (
        match init with
        | Some (Ir.Load (b, idx)) -> (
            (* view definition *)
            match resolve b idx with
            | Some (root, prefix) ->
                Hashtbl.replace views v (root, prefix);
                (* indexing into the root is itself an access pattern hint
                   but not a memory access; do not count it *)
                List.iter (walk_expr ctx) idx
            | None -> Option.iter (walk_expr ctx) init)
        | Some (Ir.NewArr (_, sizes)) ->
            let a = get v in
            a.a_ty <- Some aty;
            a.a_rank_full <- List.length aty.Ir.dims;
            a.a_alloc_in_parfor <- in_parfor;
            List.iter (walk_expr ctx) sizes
        | Some (Ir.ArrLit (_, es)) ->
            let a = get v in
            a.a_ty <- Some aty;
            a.a_rank_full <- List.length aty.Ir.dims;
            a.a_alloc_in_parfor <- in_parfor;
            List.iter (walk_expr ctx) es
        | Some (Ir.Var src) ->
            (* array alias *)
            (match Hashtbl.find_opt views src with
            | Some entry -> Hashtbl.replace views v entry
            | None -> if Hashtbl.mem arrays src then
                Hashtbl.replace views v (src, []))
        | Some e -> walk_expr ctx e
        | None ->
            let a = get v in
            a.a_ty <- Some aty;
            a.a_rank_full <- List.length aty.Ir.dims;
            a.a_alloc_in_parfor <- in_parfor)
    | Ir.SDecl (_, _, init) -> Option.iter (walk_expr ctx) init
    | Ir.SAssign (Ir.LVar v, e) -> (
        (* re-binding a view variable *)
        (match e with
        | Ir.Load (b, idx) when Hashtbl.mem views v || Hashtbl.mem arrays v
          -> (
            match resolve b idx with
            | Some (root, prefix) -> Hashtbl.replace views v (root, prefix)
            | None -> ())
        | _ -> ());
        walk_expr ctx e)
    | Ir.SAssign (_, e) -> walk_expr ctx e
    | Ir.SArrStore (b, idx, v) ->
        (match resolve b idx with
        | Some (root, full) -> record_access ctx root full ~store:true
        | None -> ());
        List.iter (walk_expr ctx) idx;
        walk_expr ctx v
    | Ir.SIf (c, a, b) ->
        walk_expr ctx c;
        List.iter (walk_stmt ctx in_parfor) a;
        List.iter (walk_stmt ctx in_parfor) b
    | Ir.SWhile (c, b) ->
        walk_expr ctx c;
        List.iter (walk_stmt ctx in_parfor) b
    | Ir.SFor (v, lo, hi, b) ->
        walk_expr ctx lo;
        walk_expr ctx hi;
        let ctx' = { ctx with seq_vars = v :: ctx.seq_vars } in
        List.iter (walk_stmt ctx' in_parfor) b
    | Ir.SParFor p ->
        walk_expr ctx p.Ir.pf_count;
        let ctx' = { ctx with par_vars = p.Ir.pf_var :: ctx.par_vars } in
        List.iter (walk_stmt ctx' true) p.Ir.pf_body
    | Ir.SReduce r -> walk_expr ctx r.Ir.rd_arr
    | Ir.SInlineBlock (_, b) -> List.iter (walk_stmt ctx in_parfor) b
    | Ir.SReturn e -> Option.iter (walk_expr ctx) e
    | Ir.SExpr e -> walk_expr ctx e
    | Ir.SBreak | Ir.SContinue -> ()
    | Ir.SFinish (g, n) ->
        walk_expr ctx g;
        Option.iter (walk_expr ctx) n
  in
  let ctx0 =
    (* dataflow-based thread-dependence: a variable is "per-thread" only if
       the parallel index actually flows into it *)
    {
      par_vars = [];
      seq_vars = [];
      thread_vars = Taint.thread_dependent k.Kernel.k_body;
    }
  in
  List.iter (walk_stmt ctx0 false) k.Kernel.k_body;
  !order |> List.rev
  |> List.filter_map (fun name ->
         let a = Hashtbl.find arrays name in
         match a.a_ty with
         | None -> None
         | Some ty ->
             Some
               {
                 ai_name = name;
                 ai_ty = ty;
                 ai_is_param = a.a_is_param;
                 ai_read_only = a.a_stores = 0;
                 ai_alloc_in_parfor = a.a_alloc_in_parfor;
                 ai_static_elems = Ir.static_elem_count ty;
                 ai_classes = a.a_classes;
                 ai_innermost_static =
                   a.a_innermost_static && List.length ty.Ir.dims > 1;
                 ai_lane_mod = a.a_lane_mod;
                 ai_load_sites = a.a_loads;
                 ai_store_sites = a.a_stores;
               })

(* ------------------------------------------------------------------ *)
(* Placement decisions                                                 *)
(* ------------------------------------------------------------------ *)

type decision = {
  d_array : string;
  d_placement : Ir.placement;
  d_reason : string;
  d_info : array_info;
}

let vector_width_for cfg (ai : array_info) =
  if not cfg.vectorize then 1
  else if not ai.ai_read_only then 1
  else if not ai.ai_innermost_static then 1
  else
    match Ir.innermost_fixed ai.ai_ty with
    | Some n when n = 2 || n = 4 || n = 8 || n = 16 -> n
    | Some n
      when (ai.ai_lane_mod = 2 || ai.ai_lane_mod = 4 || ai.ai_lane_mod = 8
           || ai.ai_lane_mod = 16)
           && n mod ai.ai_lane_mod = 0 ->
        (* wide rows accessed through affine lanes: vector groups of
           [lane_mod] consecutive elements are statically aligned *)
        ai.ai_lane_mod
    | _ -> 1

let decide ?(constant_left = constant_budget_bytes) cfg (ai : array_info) :
    decision =
  let mk ?(padded = false) ?(vw = 1) space reason =
    {
      d_array = ai.ai_name;
      d_placement = { Ir.space; padded; vector_width = vw };
      d_reason = reason;
      d_info = ai;
    }
  in
  let vw = vector_width_for cfg ai in
  let streams = List.mem AStream ai.ai_classes in
  let broadcast_only =
    ai.ai_classes <> []
    && List.for_all (fun c -> c = ABroadcast) ai.ai_classes
  in
  let shared_stream = streams || broadcast_only in
  let static_bytes =
    match ai.ai_static_elems with
    | Some n -> Some (n * Ir.scalar_size_bytes ai.ai_ty.Ir.elem)
    | None -> None
  in
  if
    cfg.use_private && ai.ai_alloc_in_parfor
    && (match ai.ai_static_elems with
       | Some n -> n <= private_threshold_elems
       | None -> false)
  then mk Ir.MPrivate "small thread-private array allocated in parallel loop"
  else if not ai.ai_read_only then
    mk Ir.MGlobal ~vw:1 "written by the kernel: global memory"
  else if
    cfg.use_image
    && (match Ir.innermost_fixed ai.ai_ty with
       | Some (2 | 4) -> true
       | _ -> false)
    && ai.ai_innermost_static
  then mk Ir.MImage "read-only with innermost dimension 2/4: image (texture)"
  else if
    cfg.use_constant && shared_stream
    && (match static_bytes with
       | Some b -> b <= constant_left
       | None -> true (* checked against the live size at launch time *))
  then mk Ir.MConstant ~vw "broadcast access in parallel loop: constant memory"
  else if cfg.use_local && shared_stream then
    mk Ir.MLocal ~padded:cfg.pad_local ~vw
      "data reuse across threads in nested loop: local memory tile"
  else mk Ir.MGlobal ~vw "default: global memory"

(** Compute the placement table for a kernel under [cfg].

    The constant-memory budget is accounted cumulatively: each array placed
    in constant memory debits its static size, so a set of broadcast arrays
    that individually fit but together exceed [constant_budget_bytes] does
    not overcommit the space (earlier arrays, in declaration order, win). *)
let optimize ?(affine_lanes = false) cfg (k : Kernel.kernel) : decision list =
  let _, rev =
    List.fold_left
      (fun (left, acc) ai ->
        let d = decide ~constant_left:left cfg ai in
        let left =
          if d.d_placement.Ir.space = Ir.MConstant then
            match ai.ai_static_elems with
            | Some n -> left - (n * Ir.scalar_size_bytes ai.ai_ty.Ir.elem)
            | None -> left
          else left
        in
        (left, d :: acc))
      (constant_budget_bytes, [])
      (analyze ~affine_lanes k)
  in
  List.rev rev

let placements (ds : decision list) : (string * Ir.placement) list =
  List.map (fun d -> (d.d_array, d.d_placement)) ds

let placement_for (ds : decision list) name : Ir.placement =
  match List.find_opt (fun d -> d.d_array = name) ds with
  | Some d -> d.d_placement
  | None -> Ir.default_placement

let describe (ds : decision list) : string =
  ds
  |> List.map (fun d ->
         Printf.sprintf "%-12s -> %-8s%s%s  (%s; %s)" d.d_array
           (Ir.mem_space_name d.d_placement.Ir.space)
           (if d.d_placement.Ir.padded then " padded" else "")
           (if d.d_placement.Ir.vector_width > 1 then
              Printf.sprintf " vec%d" d.d_placement.Ir.vector_width
            else "")
           (String.concat "," (List.map class_name d.d_info.ai_classes))
           d.d_reason)
  |> String.concat "\n"
