(** The memory optimizer (paper §4.2.1) and vectorizer (§4.2.2).

    Pattern-matches the kernel IR for the access idioms of Fig 5 and maps
    each array onto the OpenCL memory hierarchy; every optimization toggles
    independently, which is how the Fig 8 sweep is generated. *)

type config = {
  use_private : bool;
  use_local : bool;
  pad_local : bool;  (** remove bank conflicts by padding rows *)
  use_image : bool;
  use_constant : bool;
  vectorize : bool;
}

val config_global : config
val config_global_vector : config
val config_local : config
val config_local_noconflict : config
val config_local_noconflict_vector : config
val config_constant : config
val config_constant_vector : config
val config_image : config

val config_all : config
(** Every optimization enabled (the compiler's default). *)

val fig8_configs : (string * config) list
(** The eight bars of Fig 8, in the paper's order. *)

val config_name : config -> string

val private_threshold_elems : int
(** Maximum statically sized per-thread array promoted to private memory. *)

val constant_budget_bytes : int
(** Constant-memory capacity (64KB on all Table 2 GPUs). *)

(** Access-pattern class of an array's leading index. *)
type access_class =
  | AThreadLinear  (** leading index = parallel var (+ constant): coalesced *)
  | AThreadStrided  (** depends on the parallel var in a non-unit way *)
  | AStream  (** varies with an inner sequential loop, same across threads *)
  | ABroadcast  (** invariant inside the parallel loop *)

val class_name : access_class -> string

type array_info = {
  ai_name : string;
  ai_ty : Lime_ir.Ir.aty;
  ai_is_param : bool;
  ai_read_only : bool;
  ai_alloc_in_parfor : bool;
  ai_static_elems : int option;
  ai_classes : access_class list;  (** deduplicated observed classes *)
  ai_innermost_static : bool;
      (** all innermost-dimension indices are compile-time constants *)
  ai_lane_mod : int;
      (** alignment modulus of affine innermost indices ([v*m + c]); 0 when
          all innermost indices are plain constants.  Populated only under
          [~affine_lanes:true]. *)
  ai_load_sites : int;
  ai_store_sites : int;
}

val affine_lane : Lime_ir.Ir.expr -> (int * int) option
(** [affine_lane e] recognizes an index of the shape [v*m + c] (with
    [m >= 2], [0 <= c < m]) and returns [(m, c)]: the lane within an
    [m]-aligned group is statically known.  Unrolled tiled loops produce
    exactly these indices. *)

val analyze : ?affine_lanes:bool -> Kernel.kernel -> array_info list
(** Access analysis for every array in a kernel, tracing views created by
    partial indexing back to their root arrays.  [~affine_lanes:true]
    (default false) additionally treats affine [v*m + c] innermost indices
    as statically-known lanes, which lets {!decide} vectorize arrays whose
    rows are wider than a vector — the rewrite engine's scorer turns this
    on; the Fig 8 paper path never does, keeping its output unchanged. *)

type decision = {
  d_array : string;
  d_placement : Lime_ir.Ir.placement;
  d_reason : string;
  d_info : array_info;
}

val decide : ?constant_left:int -> config -> array_info -> decision
(** Placement decision for one array.  [constant_left] (default the full
    {!constant_budget_bytes}) is the constant-memory budget still
    available; {!optimize} threads the cumulative balance through it. *)

val optimize :
  ?affine_lanes:bool -> config -> Kernel.kernel -> decision list
(** Placement table for a kernel under [cfg].  Constant-memory placements
    debit a cumulative budget so multiple broadcast arrays cannot
    overcommit the 64KB space. *)

val placements : decision list -> (string * Lime_ir.Ir.placement) list
val placement_for : decision list -> string -> Lime_ir.Ir.placement
val describe : decision list -> string
