(** End-to-end compilation pipeline: Lime source → typed AST → IR →
    extracted kernel → memory placements → OpenCL source (Figure 3 of the
    paper).  This is the primary entry point for downstream users. *)

type compiled = {
  cp_program : Lime_typecheck.Tast.tprogram;  (** typed program *)
  cp_module : Lime_ir.Ir.modul;  (** lowered IR, executable by the interpreter *)
  cp_kernel : Kernel.kernel;  (** extracted, self-contained kernel *)
  cp_decisions : Memopt.decision list;  (** memory placements *)
  cp_opencl : string;  (** generated OpenCL kernel source *)
  cp_config : Memopt.config;
  cp_schedule : string list;
      (** rewrite-step names applied to [cp_kernel] by the optimizer
          strategy, in application order ([[]] = the plain pipeline) *)
}

type optimizer =
  Kernel.kernel -> Memopt.config -> Kernel.kernel * Memopt.config * string list
(** An optimizer strategy: given the extracted (and simplified) kernel and
    the requested configuration, return the kernel and configuration to
    actually compile plus the names of the rewrite steps applied.  The
    pipeline cannot depend on the rewrite engine, so strategies are
    injected — [lime.rewrite]'s beam search and canned Fig 8 sequences
    both plug in here (see [doc/OPTIMIZER.md]). *)

val compile_observer : (worker:string -> seconds:float -> unit) ref
(** Legacy single-slot hook, called once per completed {!compile} with the
    elapsed CPU seconds.  Routed through the keyed registry under the key
    ["legacy"], so writing it replaces only the previous slot occupant —
    never a keyed observer.  New instrumentation should use {!on_compile},
    which composes. *)

val on_compile :
  key:string -> (worker:string -> seconds:float -> unit) -> unit
(** Register a keyed compile observer.  Observers with distinct keys
    compose (all are called per compile); re-registering the same key
    replaces that observer, making installation idempotent.  The
    [lime.service] metrics layer uses key ["metrics"], the tracer
    ["trace"], the {!compile_observer} slot ["legacy"].  Registration is
    mutex-guarded and may be called from any domain. *)

val remove_compile_observer : string -> unit
(** Remove the compile observer registered under this key (no-op if
    absent). *)

type phase_event = [ `Begin | `End of float ]
(** [`End dt] carries the phase's elapsed CPU seconds. *)

val on_phase : key:string -> (phase:string -> phase_event -> unit) -> unit
(** Register a keyed phase observer: called with [`Begin] and [`End]
    around every pipeline phase of {!compile} ("compile" wrapping "lex",
    "parse", "typecheck", "lower", "extract", "simplify", "rewrite" —
    only when an {!optimizer} is supplied — "memopt", "codegen",
    "clcheck").  Phases nest: "compile" begins before and ends
    after all the others.  The observability-only probe phases ("lex",
    "clcheck") only run while at least one phase observer is installed, so
    the untraced path pays nothing for them. *)

val remove_phase_observer : string -> unit

val compile :
  ?config:Memopt.config ->
  ?simplify:bool ->
  ?optimizer:optimizer ->
  ?name:string ->
  worker:string ->
  string ->
  compiled
(** [compile ~worker:"Class.method" source] runs the whole pipeline,
    offloading the given filter worker under [config] (default
    {!Memopt.config_all}).  [optimizer] (default none) runs between kernel
    simplification and memory placement as its own ["rewrite"] phase; its
    result is recorded in [cp_schedule].  Raises
    {!Lime_support.Diag.Error_exn} on any front-end or kernel-legality
    error. *)

val reoptimize : compiled -> Memopt.config -> compiled
(** Re-run only the memory optimizer and code generator under a different
    configuration (the Fig 8 sweep / autotuning building block).
    [cp_schedule] is preserved: it describes the structural rewrites baked
    into [cp_kernel], which reoptimization does not undo. *)

val reschedule :
  compiled -> schedule:string list -> Kernel.kernel -> Memopt.config -> compiled
(** Swap in an externally rewritten kernel (the output of a
    [lime.rewrite] search or replay), re-running memory placement and code
    generation on it.  [schedule] lands in [cp_schedule]. *)

val sweep : compiled -> (string * compiled) list
(** All eight Fig 8 configurations of an already compiled program. *)
