(** End-to-end compilation pipeline: Lime source → typed AST → IR →
    extracted kernel → memory placements → OpenCL source.

    This is the public entry point a downstream user of the library calls;
    the stages mirror Figure 3 of the paper. *)

module Ir = Lime_ir.Ir

type compiled = {
  cp_program : Lime_typecheck.Tast.tprogram;
  cp_module : Ir.modul;
  cp_kernel : Kernel.kernel;
  cp_decisions : Memopt.decision list;
  cp_opencl : string;
  cp_config : Memopt.config;
  cp_schedule : string list;
}

type optimizer =
  Kernel.kernel -> Memopt.config -> Kernel.kernel * Memopt.config * string list

(* ------------------------------------------------------------------ *)
(* Observation hooks                                                   *)
(* ------------------------------------------------------------------ *)

(* Registrations are read-modify-write on an immutable assoc list, so they
   are guarded by a mutex; notification reads a snapshot without locking
   (a ref holding an immutable list never tears). *)
let hooks_mu = Mutex.create ()

let locked f =
  Mutex.lock hooks_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock hooks_mu) f

(** Legacy single-slot observation hook, kept for backward compatibility.
    Prefer {!on_compile}, which composes: the service metrics layer and the
    tracer can both be installed without clobbering each other.  The slot
    is routed through the keyed registry under the key ["legacy"], so
    overwriting it never clobbers keyed observers (and vice versa). *)
let compile_observer : (worker:string -> seconds:float -> unit) ref =
  ref (fun ~worker:_ ~seconds:_ -> ())

let compile_hooks :
    (string * (worker:string -> seconds:float -> unit)) list ref =
  ref []

let on_compile ~key f =
  locked (fun () ->
      compile_hooks := (key, f) :: List.remove_assoc key !compile_hooks)

let remove_compile_observer key =
  locked (fun () -> compile_hooks := List.remove_assoc key !compile_hooks)

let () =
  on_compile ~key:"legacy" (fun ~worker ~seconds ->
      !compile_observer ~worker ~seconds)

let notify_compile ~worker ~seconds =
  List.iter (fun (_, f) -> f ~worker ~seconds) !compile_hooks

type phase_event = [ `Begin | `End of float ]

let phase_hooks : (string * (phase:string -> phase_event -> unit)) list ref =
  ref []

let on_phase ~key f =
  locked (fun () ->
      phase_hooks := (key, f) :: List.remove_assoc key !phase_hooks)

let remove_phase_observer key =
  locked (fun () -> phase_hooks := List.remove_assoc key !phase_hooks)

(** Run one named pipeline phase, notifying every phase observer of its
    begin and end (exception-safe: a diagnostic raised mid-phase still
    closes the phase).  With no observers installed this is just [f ()]. *)
let run_phase (phase : string) (f : unit -> 'a) : 'a =
  match !phase_hooks with
  | [] -> f ()
  | hooks ->
      List.iter (fun (_, h) -> h ~phase `Begin) hooks;
      let t0 = Sys.time () in
      Fun.protect
        ~finally:(fun () ->
          let dt = Sys.time () -. t0 in
          List.iter (fun (_, h) -> h ~phase (`End dt)) !phase_hooks)
        f

(** Like {!run_phase} for phases that exist purely for observability (the
    standalone lex pass, the OpenCL validator): skipped entirely when no
    phase observer is installed, so the untraced hot path pays nothing. *)
let probe_phase (phase : string) (f : unit -> unit) : unit =
  if !phase_hooks <> [] then run_phase phase f

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

(** Compile [source], offloading the filter whose worker is
    ["Class.method"], under the given optimization configuration.
    [simplify] (default on) runs constant folding and dead-code
    elimination over the extracted kernel. *)
let compile ?(config = Memopt.config_all) ?(simplify = true) ?optimizer
    ?(name = "<inline>") ~(worker : string) (source : string) : compiled =
  let t0 = Sys.time () in
  run_phase "compile" (fun () ->
      probe_phase "lex" (fun () ->
          ignore (Lime_frontend.Lexer.tokenize ~name source));
      let ast =
        run_phase "parse" (fun () ->
            Lime_frontend.Parser.program_of_string ~name source)
      in
      let tp =
        run_phase "typecheck" (fun () ->
            Lime_typecheck.Check.check_program ast)
      in
      let md = run_phase "lower" (fun () -> Lime_ir.Lower.lower_program tp) in
      let kernel = run_phase "extract" (fun () -> Kernel.extract md ~worker) in
      let kernel =
        if simplify then run_phase "simplify" (fun () -> Simplify.kernel kernel)
        else kernel
      in
      let kernel, config, schedule =
        match optimizer with
        | None -> (kernel, config, [])
        | Some strategy ->
            run_phase "rewrite" (fun () -> strategy kernel config)
      in
      (* the rewrite engine prices placements with affine-lane recognition
         on; when a strategy ran, place the same way so the artifact
         matches what the search scored.  The plain path keeps the
         paper's analysis exactly. *)
      let affine_lanes = Option.is_some optimizer in
      let decisions =
        run_phase "memopt" (fun () -> Memopt.optimize ~affine_lanes config kernel)
      in
      let opencl =
        run_phase "codegen" (fun () -> Opencl.generate kernel decisions)
      in
      probe_phase "clcheck" (fun () -> ignore (Clcheck.check opencl));
      notify_compile ~worker ~seconds:(Sys.time () -. t0);
      {
        cp_program = tp;
        cp_module = md;
        cp_kernel = kernel;
        cp_decisions = decisions;
        cp_opencl = opencl;
        cp_config = config;
        cp_schedule = schedule;
      })

(** Re-optimize an already compiled program under a different memory
    configuration (used by the Fig 8 sweep and the autotuner). *)
let reoptimize (c : compiled) (config : Memopt.config) : compiled =
  let decisions = Memopt.optimize config c.cp_kernel in
  {
    c with
    cp_decisions = decisions;
    cp_opencl = Opencl.generate c.cp_kernel decisions;
    cp_config = config;
  }

(** All Fig 8 variants of a compiled program. *)
let sweep (c : compiled) : (string * compiled) list =
  List.map (fun (n, cfg) -> (n, reoptimize c cfg)) Memopt.fig8_configs

(** Swap in an externally rewritten kernel (from the [lime.rewrite]
    engine) and redo placement + codegen for it. *)
let reschedule (c : compiled) ~(schedule : string list)
    (kernel : Kernel.kernel) (config : Memopt.config) : compiled =
  (* affine-lane recognition on: reschedule only ever receives rewritten
     kernels, whose placements the search priced with it enabled *)
  let decisions = Memopt.optimize ~affine_lanes:true config kernel in
  {
    c with
    cp_kernel = kernel;
    cp_decisions = decisions;
    cp_opencl = Opencl.generate kernel decisions;
    cp_config = config;
    cp_schedule = schedule;
  }
