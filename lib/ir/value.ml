(** Runtime values for the IR interpreter and the GPU simulator.

    Arrays are rectangular, flat and strided: a multidimensional array is one
    OCaml buffer plus shape/stride metadata, so indexing [a\[i\]] yields an
    O(1) *view* sharing the buffer.  This mirrors the paper's observation
    that the OpenCL backend "only handles rectangular arrays of primitives"
    and keeps the interpreter fast enough to run the real benchmark inputs.

    Single-precision [float] values are rounded to 32-bit after every
    operation ({!f32}) so that Lime [float] arithmetic agrees bit-for-bit
    with the simulated OpenCL device — the property the differential tests
    depend on. *)

type buffer =
  | BInt of int array  (** int / byte / char / bool storage *)
  | BLong of int64 array
  | BFloat of float array  (** float and double storage *)

type arr = {
  elem : Ir.scalar;
  shape : int array;
  strides : int array;  (** in elements, row-major *)
  offset : int;
  buf : buffer;
  is_value : bool;
}

type obj = { cls : string; fields : (string, t) Hashtbl.t }

and task_node = {
  tk_desc : Ir.task_desc;
  tk_instance : obj option;  (** state of an instance worker *)
}

and t =
  | VUnit
  | VInt of int  (** int, byte, char and boolean (0/1), 32-bit semantics *)
  | VLong of int64
  | VFloat of float  (** single precision, kept rounded *)
  | VDouble of float
  | VArr of arr
  | VObj of obj
  | VGraph of task_node list  (** a (linear) task pipeline *)

(** Round to IEEE-754 single precision. *)
let f32 (x : float) = Int32.float_of_bits (Int32.bits_of_float x)

(** Normalize to Java 32-bit int semantics (wraparound). *)
let i32 (x : int) =
  let v = x land 0xFFFFFFFF in
  if v land 0x80000000 <> 0 then v - 0x1_0000_0000 else v

(** Narrow to signed 8-bit (Java byte). *)
let i8 (x : int) =
  let v = x land 0xFF in
  if v land 0x80 <> 0 then v - 0x100 else v

(** Narrow to unsigned 16-bit (Java char). *)
let u16 (x : int) = x land 0xFFFF

(* ------------------------------------------------------------------ *)
(* Array construction                                                  *)
(* ------------------------------------------------------------------ *)

let elem_count shape = Array.fold_left ( * ) 1 shape

let strides_of shape =
  let n = Array.length shape in
  let s = Array.make n 1 in
  for i = n - 2 downto 0 do
    s.(i) <- s.(i + 1) * shape.(i + 1)
  done;
  s

let buffer_for (elem : Ir.scalar) n : buffer =
  match elem with
  | Ir.SInt | Ir.SByte | Ir.SBool | Ir.SChar -> BInt (Array.make n 0)
  | Ir.SLong -> BLong (Array.make n 0L)
  | Ir.SFloat | Ir.SDouble -> BFloat (Array.make n 0.0)

let make_arr ?(is_value = false) elem shape : arr =
  let n = elem_count shape in
  {
    elem;
    shape;
    strides = strides_of shape;
    offset = 0;
    buf = buffer_for elem n;
    is_value;
  }

let rank a = Array.length a.shape
let length a = if rank a = 0 then 0 else a.shape.(0)
let total_bytes a = elem_count a.shape * Ir.scalar_size_bytes a.elem

(* ------------------------------------------------------------------ *)
(* Element access                                                      *)
(* ------------------------------------------------------------------ *)

exception Bounds of string

let check_bounds a dim i =
  if i < 0 || i >= a.shape.(dim) then
    raise
      (Bounds
         (Printf.sprintf "index %d out of bounds for dimension %d (size %d)" i
            dim a.shape.(dim)))

let flat_index a (idx : int array) =
  let off = ref a.offset in
  Array.iteri (fun d i -> off := !off + (i * a.strides.(d))) idx;
  !off

let get_scalar a (idx : int array) : t =
  let k = flat_index a idx in
  match (a.buf, a.elem) with
  | BInt b, _ -> VInt b.(k)
  | BLong b, _ -> VLong b.(k)
  | BFloat b, Ir.SFloat -> VFloat b.(k)
  | BFloat b, _ -> VDouble b.(k)

let set_scalar a (idx : int array) (v : t) =
  let k = flat_index a idx in
  match (a.buf, v) with
  | BInt b, VInt x -> b.(k) <- x
  | BLong b, VLong x -> b.(k) <- x
  | BFloat b, VFloat x -> b.(k) <- x
  | BFloat b, VDouble x -> b.(k) <- x
  | BInt b, VLong x -> b.(k) <- i32 (Int64.to_int x)
  | _ -> invalid_arg "Value.set_scalar: type mismatch"

(** View of row [i]: drops the outermost dimension. *)
let view a i =
  check_bounds a 0 i;
  {
    a with
    shape = Array.sub a.shape 1 (rank a - 1);
    strides = Array.sub a.strides 1 (rank a - 1);
    offset = a.offset + (i * a.strides.(0));
  }

(** Index with [idx] (length ≤ rank): scalar if full, view otherwise.
    Performs bounds checks on every index. *)
let index a (idx : int list) : t =
  let rec go a = function
    | [] -> VArr a
    | [ i ] when rank a = 1 ->
        check_bounds a 0 i;
        get_scalar a [| i |]
    | i :: rest -> go (view a i) rest
  in
  match idx with
  | [ i ] when rank a = 1 ->
      check_bounds a 0 i;
      get_scalar a [| i |]
  | _ -> go a idx

(** Store into position [idx]; [v] may be a scalar (full index) or an array
    whose contents are copied into the designated sub-view (row store). *)
let rec store a (idx : int list) (v : t) =
  let rec nav a = function
    | [] -> `View a
    | [ i ] when rank a = 1 ->
        check_bounds a 0 i;
        `Cell (a, i)
    | i :: rest -> nav (view a i) rest
  in
  match (nav a idx, v) with
  | `Cell (a, i), v -> set_scalar a [| i |] v
  | `View dst, VArr src -> copy_into ~dst ~src
  | `View _, _ -> invalid_arg "Value.store: scalar into sub-array position"

and copy_into ~dst ~src =
  if dst.shape <> src.shape then
    invalid_arg
      (Printf.sprintf "Value.copy_into: shape mismatch [%s] vs [%s]"
         (String.concat ";" (Array.to_list (Array.map string_of_int dst.shape)))
         (String.concat ";" (Array.to_list (Array.map string_of_int src.shape))));
  (* fast path: both contiguous *)
  let n = elem_count dst.shape in
  let contiguous a = a.strides = strides_of a.shape in
  if contiguous dst && contiguous src then
    match (dst.buf, src.buf) with
    | BInt d, BInt s -> Array.blit s src.offset d dst.offset n
    | BLong d, BLong s -> Array.blit s src.offset d dst.offset n
    | BFloat d, BFloat s -> Array.blit s src.offset d dst.offset n
    | _ -> invalid_arg "Value.copy_into: buffer kind mismatch"
  else
    let rec walk d s =
      if rank d = 0 then ()
      else if rank d = 1 then
        for i = 0 to d.shape.(0) - 1 do
          set_scalar d [| i |] (get_scalar s [| i |])
        done
      else
        for i = 0 to d.shape.(0) - 1 do
          walk (view d i) (view s i)
        done
    in
    walk dst src

(** Deep copy (used by [Lime.toValue] and marshaling). *)
let deep_copy ?is_value a =
  let fresh = make_arr ?is_value a.elem (Array.copy a.shape) in
  copy_into ~dst:fresh ~src:a;
  { fresh with is_value = Option.value is_value ~default:a.is_value }

(* ------------------------------------------------------------------ *)
(* Conversions with OCaml arrays (for tests and benchmarks)            *)
(* ------------------------------------------------------------------ *)

let of_float_array ?(is_value = true) ?(elem = Ir.SFloat) (xs : float array) =
  let a = make_arr ~is_value elem [| Array.length xs |] in
  (match a.buf with
  | BFloat b ->
      Array.iteri
        (fun i x -> b.(i) <- (if elem = Ir.SFloat then f32 x else x))
        xs
  | _ -> assert false);
  a

let of_int_array ?(is_value = true) ?(elem = Ir.SInt) (xs : int array) =
  let a = make_arr ~is_value elem [| Array.length xs |] in
  (match a.buf with
  | BInt b -> Array.blit xs 0 b 0 (Array.length xs)
  | _ -> assert false);
  a

(** Flat 2-D constructor: [of_float_matrix rows cols data]. *)
let of_float_matrix ?(is_value = true) ?(elem = Ir.SFloat) rows cols
    (data : float array) =
  if Array.length data <> rows * cols then
    invalid_arg "of_float_matrix: size mismatch";
  let a = make_arr ~is_value elem [| rows; cols |] in
  (match a.buf with
  | BFloat b ->
      Array.iteri
        (fun i x -> b.(i) <- (if elem = Ir.SFloat then f32 x else x))
        data
  | _ -> assert false);
  a

let to_float_array a : float array =
  let n = elem_count a.shape in
  let out = Array.make n 0.0 in
  let contiguous = a.strides = strides_of a.shape in
  (match (a.buf, contiguous) with
  | BFloat b, true -> Array.blit b a.offset out 0 n
  | BInt b, true -> Array.iteri (fun i _ -> out.(i) <- float_of_int b.(a.offset + i)) out
  | BLong b, true -> Array.iteri (fun i _ -> out.(i) <- Int64.to_float b.(a.offset + i)) out
  | _, false -> failwith "to_float_array: non-contiguous view"
  );
  out

let to_int_array a : int array =
  let n = elem_count a.shape in
  let contiguous = a.strides = strides_of a.shape in
  match (a.buf, contiguous) with
  | BInt b, true -> Array.sub b a.offset n
  | _ -> failwith "to_int_array: unsupported buffer"

(* ------------------------------------------------------------------ *)
(* Display and comparison                                              *)
(* ------------------------------------------------------------------ *)

let rec to_string = function
  | VUnit -> "()"
  | VInt i -> string_of_int i
  | VLong l -> Int64.to_string l ^ "L"
  | VFloat f -> Printf.sprintf "%gf" f
  | VDouble d -> Printf.sprintf "%g" d
  | VArr a ->
      if rank a = 0 then "[]"
      else if rank a = 1 && a.shape.(0) <= 8 then
        "["
        ^ String.concat ", "
            (List.init a.shape.(0) (fun i -> to_string (index a [ i ])))
        ^ "]"
      else
        Printf.sprintf "%s[%s]" (Ir.scalar_name a.elem)
          (String.concat "x" (Array.to_list (Array.map string_of_int a.shape)))
  | VObj o -> Printf.sprintf "<%s>" o.cls
  | VGraph g -> Printf.sprintf "<graph of %d tasks>" (List.length g)

(** Approximate equality for differential testing: exact on integers,
    relative tolerance on floating point. *)
let rec approx_equal ?(rtol = 1e-5) ?(atol = 1e-6) a b =
  match (a, b) with
  | VUnit, VUnit -> true
  | VInt x, VInt y -> x = y
  | VLong x, VLong y -> Int64.equal x y
  | (VFloat x | VDouble x), (VFloat y | VDouble y) ->
      (* identical values first: the tolerance formula yields nan (hence
         false) for inf vs inf, and two nans agree for a differential
         comparison even though [<=] says otherwise *)
      Float.compare x y = 0
      ||
      let d = Float.abs (x -. y) in
      d <= atol || d <= rtol *. Float.max (Float.abs x) (Float.abs y)
  | VArr x, VArr y ->
      x.shape = y.shape
      && (let ok = ref true in
          let n = if rank x = 0 then 0 else x.shape.(0) in
          (try
             for i = 0 to n - 1 do
               if not (approx_equal ~rtol ~atol (index x [ i ]) (index y [ i ]))
               then begin
                 ok := false;
                 raise Exit
               end
             done
           with Exit -> ());
          !ok)
  | _ -> false
