(** Analytic makespan model for a placed pipeline.

    The pipeline's resources are the host thread (marshaling plus
    host-resident task work), one PCIe link per device and one compute
    queue per device.  A candidate placement charges:

    - each host stage's bytecode time to the host thread,
    - each device stage's kernel time (from {!Gpusim.Model.kernel_time_ex}
      over the probe's device-independent profile) to that device,
    - each edge whose ends differ to the crossing's legs: the marshal/JNI/
      setup work to the host thread and the PCIe leg to the producing or
      consuming device's link.  A device→device edge is honestly
      device→host→device: a download on the producer's link plus an upload
      on the consumer's link.  Same-placement edges are free (the value
      stays resident).

    The makespan is the same wavefront simulation the engine's overlap
    clock runs ({!Lime_runtime.Schedule.overlapped_makespan}) over the
    same per-stage resource legs the engine emits, so a candidate's
    modeled time and the engine's [overlapped_s] for that placement agree
    by construction — the closed form [fill + (n-1) * period] undershoots
    when the host thread is touched at both ends of every crossing.  The
    breakdown still reports the busiest resource as the steady-state
    bottleneck. *)

module Device = Gpusim.Device
module Comm = Lime_runtime.Comm
module Marshal_ = Lime_runtime.Marshal
module Schedule = Lime_runtime.Schedule

type breakdown = {
  cb_occupancy : (string * float) list;
      (** per-firing busy seconds per resource ("host", "link:<dev>",
          "dev:<dev>"), in first-use order *)
  cb_fill_s : float;  (** one serial pass through every leg *)
  cb_period_s : float;  (** steady-state period: the busiest resource *)
  cb_bottleneck : string;  (** the resource setting the period *)
  cb_transfer_s : float;  (** edge-crossing share of the fill *)
}

(** Kernel times priced once per (stage, device): the probe's profile and
    bindings are device-independent, so the search never re-profiles. *)
let kernel_seconds (st : Probe.stage) (d : Device.t) : float =
  match st.Probe.st_profile with
  | None -> invalid_arg ("Cost.kernel_seconds: host-only stage " ^ st.Probe.st_task)
  | Some prof ->
      let bd, _ = Gpusim.Model.kernel_time_ex d prof st.Probe.st_bindings in
      bd.Gpusim.Model.bd_total_s

type table = {
  tb_stages : Probe.stage array;
  tb_kernel_s : (string * float) list array;
      (** per stage: device short-name → kernel seconds (offloadable
          stages only) *)
}

let table (stages : Probe.stage list) : table =
  let tb_stages = Array.of_list stages in
  let tb_kernel_s =
    Array.map
      (fun st ->
        if st.Probe.st_offloadable then
          List.map
            (fun (name, d) -> (name, kernel_seconds st d))
            Placement.devices
        else [])
      tb_stages
  in
  { tb_stages; tb_kernel_s }

(** The per-stage resource legs of one firing under [assigns], in the
    engine's execution order: the upload (host marshal then PCIe) when
    the input is not already resident on the stage's device, the kernel,
    the download when the consumer lives elsewhere.  Host stages are one
    host leg.  Mirrors {!Lime_runtime.Engine}'s residency rules, so the
    model prices exactly the legs the engine will emit. *)
let stage_legs ?(serializer = Marshal_.Custom) (tb : table)
    (assigns : Placement.assignment array) :
    Schedule.leg list list * float =
  let n = Array.length tb.tb_stages in
  if Array.length assigns <> n then
    invalid_arg "Cost.price: placement arity mismatch";
  let transfer_s = ref 0.0 in
  let same k k' =
    k >= 0 && k < n && k' >= 0 && k' < n
    &&
    match (assigns.(k), assigns.(k')) with
    | Placement.On a, Placement.On b -> a.Device.name = b.Device.name
    | _ -> false
  in
  let legs =
    List.init n (fun k ->
        let st = tb.tb_stages.(k) in
        match assigns.(k) with
        | Placement.Host ->
            [
              {
                Schedule.lg_resource = "host";
                lg_seconds = st.Probe.st_host_s;
              };
            ]
        | Placement.On d ->
            let link = "link:" ^ d.Device.name
            and dev = "dev:" ^ d.Device.name in
            let crossing bytes =
              let p =
                Comm.transfer_phases d ~serializer
                  ~elem_bytes:st.Probe.st_elem_bytes ~bytes ()
              in
              transfer_s := !transfer_s +. Comm.total p;
              p
            in
            (if same (k - 1) k then []
             else
               let p = crossing st.Probe.st_in_bytes in
               [
                 {
                   Schedule.lg_resource = "host";
                   lg_seconds = Comm.total p -. p.Comm.pcie_s;
                 };
                 { Schedule.lg_resource = link; lg_seconds = p.Comm.pcie_s };
               ])
            @ [
                {
                  Schedule.lg_resource = dev;
                  lg_seconds =
                    List.assoc (Placement.short_name d) tb.tb_kernel_s.(k);
                };
              ]
            @
            if same k (k + 1) then []
            else
              let p = crossing st.Probe.st_out_bytes in
              [
                { Schedule.lg_resource = link; lg_seconds = p.Comm.pcie_s };
                {
                  Schedule.lg_resource = "host";
                  lg_seconds = Comm.total p -. p.Comm.pcie_s;
                };
              ])
  in
  (legs, !transfer_s)

(** Makespan of [firings] firings under [assigns] (one assignment per
    stage), plus the per-resource breakdown. *)
let price ?(serializer = Marshal_.Custom) ~(firings : int) (tb : table)
    (assigns : Placement.assignment array) : float * breakdown =
  let legs, transfer_s = stage_legs ~serializer tb assigns in
  (* occupancy accumulates in an assoc kept in first-use order *)
  let occ : (string * float ref) list ref = ref [] in
  let charge r s =
    match List.assoc_opt r !occ with
    | Some cell -> cell := !cell +. s
    | None -> occ := !occ @ [ (r, ref s) ]
  in
  List.iter
    (List.iter (fun l -> charge l.Schedule.lg_resource l.Schedule.lg_seconds))
    legs;
  let occupancy = List.map (fun (r, c) -> (r, !c)) !occ in
  let fill = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 occupancy in
  let bottleneck, period =
    List.fold_left
      (fun ((_, bs) as best) ((_, s) as cur) ->
        if s > bs then cur else best)
      ("host", 0.0) occupancy
  in
  let makespan = Schedule.overlapped_makespan ~firings legs in
  ( makespan,
    {
      cb_occupancy = occupancy;
      cb_fill_s = fill;
      cb_period_s = period;
      cb_bottleneck = bottleneck;
      cb_transfer_s = transfer_s;
    } )
