(** Glue between the placement layer and the engine: attach a multi-device
    scheduler as an interpreter's [finish] hook.

    The pipeline graph only exists once the program builds it, so the
    placement decision happens inside the hook: probe the stages, ask
    [choose] for a placement (search, tunestore replay, or a user SPEC),
    then prepare and fire the graph under that placement.  The chosen
    placement and the probe both live in the returned report /
    [decisions] cell for the caller to inspect after the run. *)

module Interp = Lime_ir.Interp
module Engine = Lime_runtime.Engine

type decision = {
  dc_stages : Probe.stage list;  (** the probed pipeline *)
  dc_placement : Placement.t;  (** what [choose] picked *)
  dc_firings : int;
}

(** [attach cfg ~choose st] installs a placement-aware engine.  [choose]
    is called once per finished graph with the probed stages and the
    firing count; whatever it returns is executed.  Decisions accumulate
    (in graph order) into the returned cell alongside the engine report. *)
let attach (cfg : Engine.config) ~(choose : Probe.stage list -> firings:int -> Placement.t)
    (st : Interp.state) : Engine.report * decision list ref =
  let report = Engine.fresh_report () in
  let decisions = ref [] in
  st.Interp.finish_hook <-
    (fun st graph iters ->
      let firings = Option.value iters ~default:1 in
      let stages =
        Probe.probe ~config:cfg.Engine.opt_config
          ~serializer:cfg.Engine.serializer st.Interp.md graph
      in
      let placement = choose stages ~firings in
      decisions :=
        !decisions @ [ { dc_stages = stages; dc_placement = placement; dc_firings = firings } ];
      let cfg =
        { cfg with Engine.placement = Some (Placement.to_engine placement) }
      in
      let pipeline = Engine.prepare cfg st.Interp.md report graph in
      Engine.run_prepared cfg st report pipeline ~iters:firings);
  (report, decisions)

(** Convenience: run a whole program's entry point under the placement
    scheduler. *)
let run_program (cfg : Engine.config)
    ~(choose : Probe.stage list -> firings:int -> Placement.t)
    (md : Lime_ir.Ir.modul) ~cls ~meth (args : Lime_ir.Value.t list) :
    Lime_ir.Value.t * Engine.report * decision list =
  let st = Interp.create md in
  let report, decisions = attach cfg ~choose st in
  let v = Interp.run st ~cls ~meth args in
  (v, report, !decisions)
