(** Placement IR: the per-task device assignment the multi-device
    scheduler decides and the engine executes.

    A placement maps every stage of a [=>] pipeline to the host or to one
    of the simulated devices.  The textual form ([SPEC]) is a
    comma-separated list of [task=device] pairs using the same short
    device names the CLI validates everywhere else ([gtx8800], [gtx580],
    [hd5970], [corei7]) plus [host]; it round-trips through the tunestore
    and the [--multi-device] flag. *)

module Device = Gpusim.Device

type assignment = Host | On of Device.t

(** Short CLI names for the simulated devices, in Table 2 order. *)
let devices =
  [
    ("gtx8800", Device.gtx8800);
    ("gtx580", Device.gtx580);
    ("hd5970", Device.hd5970);
    ("corei7", Device.core_i7);
  ]

let device_names = List.map fst devices

let short_name (d : Device.t) : string =
  match
    List.find_opt (fun (_, d') -> d'.Device.name = d.Device.name) devices
  with
  | Some (n, _) -> n
  | None -> d.Device.name

let assignment_name = function Host -> "host" | On d -> short_name d

let assignment_of_name (s : string) : (assignment, string) result =
  if s = "host" then Ok Host
  else
    match List.assoc_opt s devices with
    | Some d -> Ok (On d)
    | None ->
        Error
          (Printf.sprintf "unknown device %s (expected host, %s)" s
             (String.concat ", " device_names))

type t = (string * assignment) list
(** Task name → assignment, in pipeline order. *)

let equal (a : t) (b : t) : bool =
  List.length a = List.length b
  && List.for_all2
       (fun (ta, aa) (tb, ab) ->
         ta = tb
         &&
         match (aa, ab) with
         | Host, Host -> true
         | On da, On db -> da.Device.name = db.Device.name
         | _ -> false)
       a b

(** The assignment list the engine consumes ([None] = host). *)
let to_engine (p : t) : (string * Device.t option) list =
  List.map
    (fun (task, a) -> (task, match a with Host -> None | On d -> Some d))
    p

let to_spec (p : t) : string =
  String.concat ","
    (List.map (fun (task, a) -> task ^ "=" ^ assignment_name a) p)

(** Parse a [task=device,...] SPEC.  Task validity (existence,
    offloadability) is checked later against the probed pipeline; this
    only checks the grammar and device names. *)
let of_spec (s : string) : (t, string) result =
  let parts =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  if parts = [] then Error "empty placement spec (expected task=device,...)"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | part :: rest -> (
          match String.index_opt part '=' with
          | None ->
              Error
                (Printf.sprintf "bad placement %S (expected task=device)" part)
          | Some i -> (
              let task = String.trim (String.sub part 0 i) in
              let dev =
                String.trim
                  (String.sub part (i + 1) (String.length part - i - 1))
              in
              if task = "" then
                Error
                  (Printf.sprintf "bad placement %S (empty task name)" part)
              else if List.mem_assoc task acc then
                Error (Printf.sprintf "task %s placed twice" task)
              else
                match assignment_of_name dev with
                | Error e -> Error e
                | Ok a -> go ((task, a) :: acc) rest))
    in
    go [] parts

let pp ppf (p : t) = Fmt.string ppf (to_spec p)
