(** One instrumented pass through a task graph: the per-stage facts the
    placement search prices candidates with.

    The probe executes each stage once — functionally, in a fresh
    interpreter so the program's own state is untouched — and records what
    the cost model needs: the bytecode cost of running the stage on the
    host, the wire sizes of the values crossing each edge, and for
    offloadable stages the device-independent launch profile and array
    bindings that {!Gpusim.Model.kernel_time_ex} prices per device.
    Stateful task instances are snapshotted and restored around the pass,
    so probing never perturbs the sink values of the real run. *)

module Ir = Lime_ir.Ir
module Value = Lime_ir.Value
module Interp = Lime_ir.Interp
module Kernel = Lime_gpu.Kernel
module Memopt = Lime_gpu.Memopt
module Engine = Lime_runtime.Engine
module Marshal_ = Lime_runtime.Marshal

type stage = {
  st_task : string;  (** qualified task name *)
  st_offloadable : bool;
  st_host_s : float;  (** bytecode cost of one firing on the host *)
  st_in_bytes : int;  (** wire size of the stage's input *)
  st_out_bytes : int;  (** wire size of the stage's output *)
  st_elem_bytes : int;  (** element width of the input array *)
  st_profile : Gpusim.Profile.t option;
      (** device-independent launch profile ([Some] iff offloadable) *)
  st_bindings : Gpusim.Model.array_binding list;
}

let encoded_bytes (serializer : Marshal_.serializer) (v : Value.t) : int =
  match serializer with
  | Marshal_.Custom | Marshal_.Generic -> Marshal_.wire_size v
  | Marshal_.Direct -> Bytes.length (Marshal_.encode_direct v)

let elem_bytes_of = function
  | Value.VArr a -> Ir.scalar_size_bytes a.Value.elem
  | _ -> 4

(* Task instances are mutable objects shared with the program; snapshot
   their fields (deep-copying arrays) and restore them after the pass. *)
let snapshot_instance (o : Value.obj) : (string * Value.t) list =
  Hashtbl.fold
    (fun k v acc ->
      let v' =
        match v with Value.VArr a -> Value.VArr (Value.deep_copy a) | v -> v
      in
      (k, v') :: acc)
    o.Value.fields []

let restore_instance (o : Value.obj) (saved : (string * Value.t) list) : unit
    =
  Hashtbl.reset o.Value.fields;
  List.iter (fun (k, v) -> Hashtbl.replace o.Value.fields k v) saved

(** Probe a graph: one functional pass, per-stage facts.  [config] is the
    memory-optimizer config the engine will execute with (kernel times are
    priced on the same decisions); [serializer] sizes the wire legs. *)
let probe ?(config = Memopt.config_all)
    ?(serializer = Marshal_.Custom) (md : Ir.modul)
    (graph : Value.task_node list) : stage list =
  let st = Interp.create md in
  let saved =
    List.filter_map
      (fun node ->
        Option.map
          (fun o -> (o, snapshot_instance o))
          node.Value.tk_instance)
      graph
  in
  Fun.protect ~finally:(fun () ->
      List.iter (fun (o, s) -> restore_instance o s) saved)
  @@ fun () ->
  let v = ref Value.VUnit in
  List.map
    (fun node ->
      let td = node.Value.tk_desc in
      let name = Ir.qualify td.Ir.td_class td.Ir.td_method in
      let input = !v in
      let in_bytes = encoded_bytes serializer input in
      let elem_bytes = elem_bytes_of input in
      match Kernel.classify md td with
      | Kernel.Offloadable ->
          let kernel = Kernel.extract md ~worker:name in
          let decisions = Memopt.optimize config kernel in
          let args = [ input ] in
          let shapes, scalars = Engine.shapes_of_args kernel args in
          let prof =
            Gpusim.Profile.profile kernel decisions ~shapes ~scalars
          in
          let rows = int_of_float prof.Gpusim.Profile.p_last_parfor_items in
          let bindings =
            Engine.array_bindings kernel decisions args
              (Engine.output_shape ~rows kernel input)
          in
          (* host cost of the same stage: the kernel body interpreted as
             bytecode, in its own module *)
          let kst = Interp.create (Kernel.to_module kernel) in
          let result =
            Interp.call_function kst kernel.Kernel.k_name None args
          in
          let host_s = Gpusim.Device.jvm_time kst.Interp.counters in
          v := result;
          {
            st_task = name;
            st_offloadable = true;
            st_host_s = host_s;
            st_in_bytes = in_bytes;
            st_out_bytes = encoded_bytes serializer result;
            st_elem_bytes = elem_bytes;
            st_profile = Some prof;
            st_bindings = bindings;
          }
      | _ ->
          let args =
            match td.Ir.td_in with Ir.TUnit -> [] | _ -> [ input ]
          in
          let before = { st.Interp.counters with Interp.alu = st.Interp.counters.Interp.alu } in
          let result =
            Interp.call_function st name node.Value.tk_instance args
          in
          let a = st.Interp.counters in
          let delta =
            {
              Interp.alu = a.Interp.alu - before.Interp.alu;
              divs = a.Interp.divs - before.Interp.divs;
              sqrts = a.Interp.sqrts - before.Interp.sqrts;
              transcendentals =
                a.Interp.transcendentals - before.Interp.transcendentals;
              mem_reads = a.Interp.mem_reads - before.Interp.mem_reads;
              mem_writes = a.Interp.mem_writes - before.Interp.mem_writes;
              bounds_checks = a.Interp.bounds_checks - before.Interp.bounds_checks;
              field_accesses =
                a.Interp.field_accesses - before.Interp.field_accesses;
              branches = a.Interp.branches - before.Interp.branches;
              calls = a.Interp.calls - before.Interp.calls;
              alloc_bytes = a.Interp.alloc_bytes - before.Interp.alloc_bytes;
              double_ops = a.Interp.double_ops - before.Interp.double_ops;
            }
          in
          let host_s = Gpusim.Device.jvm_time delta in
          v := result;
          {
            st_task = name;
            st_offloadable = false;
            st_host_s = host_s;
            st_in_bytes = in_bytes;
            st_out_bytes = encoded_bytes serializer result;
            st_elem_bytes = elem_bytes;
            st_profile = None;
            st_bindings = [];
          })
    graph
