(** Placement search: choose a device (or the host) for every stage.

    Non-offloadable stages are pinned to the host; each offloadable stage
    can go to the host or any of the four simulated devices.  With at most
    four placeable stages the space is ≤ 5⁴ = 625 candidates and the
    search is exhaustive; above that a beam advances stage by stage,
    scoring each prefix with the undecided suffix on the host and keeping
    the [width] best — the same discipline as the rewrite engine's beam
    ({!Lime_rewrite.Search}).

    The all-on-one-device placements (and all-host) are always evaluated
    and seed the beam, so the chosen placement is never worse under the
    cost model than the best single device — multi-device search only ever
    improves on the engine's legacy mode.

    Everything is deterministic: candidates order by (modeled time, spec)
    and no randomness enters, so a stored placement replays byte-identically
    on a warm run. *)

module Device = Gpusim.Device
module Marshal_ = Lime_runtime.Marshal

type candidate = {
  pc_placement : Placement.t;
  pc_time_s : float;  (** modeled makespan of the probed firings *)
  pc_breakdown : Cost.breakdown;
}

type outcome = {
  po_best : candidate;
  po_singles : (string * candidate) list;
      (** the all-host and all-on-one-device baselines, by name *)
  po_best_single : string * candidate;
  po_evals : int;  (** cost-model evaluations spent *)
  po_exhaustive : bool;  (** exhaustive enumeration vs beam *)
  po_firings : int;
}

(* ------------------------------------------------------------------ *)
(* Observers (keyed, composing — same discipline as the rewrite search) *)
(* ------------------------------------------------------------------ *)

type event =
  | SBegin of {
      stages : int;
      placeable : int;
      firings : int;
      exhaustive : bool;
    }
  | SEnd of {
      evals : int;
      best_time_s : float;
      best_spec : string;
      improved : bool;  (** beat the best single-device placement *)
    }
  | SReplay of {
      spec : string;
      ok : bool;  (** the stored placement still fits the pipeline *)
    }

let hooks_mu = Mutex.create ()

let locked f =
  Mutex.lock hooks_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock hooks_mu) f

let observers : (string * (event -> unit)) list ref = ref []

let on_search ~key f =
  locked (fun () ->
      observers := (key, f) :: List.remove_assoc key !observers)

let remove_search_observer key =
  locked (fun () -> observers := List.remove_assoc key !observers)

let emit ev = List.iter (fun (_, f) -> f ev) (locked (fun () -> !observers))

(* ------------------------------------------------------------------ *)
(* Search                                                              *)
(* ------------------------------------------------------------------ *)

let default_width = 8
let exhaustive_placeable_limit = 4

let spec_of (tb : Cost.table) (assigns : Placement.assignment array) :
    Placement.t =
  Array.to_list
    (Array.mapi
       (fun k st -> (st.Probe.st_task, assigns.(k)))
       tb.Cost.tb_stages)

let cmp_candidate (a : candidate) (b : candidate) : int =
  compare
    (a.pc_time_s, Placement.to_spec a.pc_placement)
    (b.pc_time_s, Placement.to_spec b.pc_placement)

let evaluate_with (tb : Cost.table) ~serializer ~firings
    (evals : int ref) (assigns : Placement.assignment array) : candidate =
  incr evals;
  let time_s, bd = Cost.price ~serializer ~firings tb assigns in
  { pc_placement = spec_of tb assigns; pc_time_s = time_s; pc_breakdown = bd }

let uniform_assigns (tb : Cost.table) (a : Placement.assignment) :
    Placement.assignment array =
  Array.init (Array.length tb.Cost.tb_stages) (fun k ->
      if tb.Cost.tb_stages.(k).Probe.st_offloadable then a else Placement.Host)

let best_of (singles : (string * candidate) list) : string * candidate =
  List.fold_left
    (fun acc (name, c) ->
      match acc with
      | Some (_, b) when cmp_candidate b c <= 0 -> acc
      | _ -> Some (name, c))
    None singles
  |> Option.get

(** The legacy baselines, priced: all offloadable stages on one device
    (the engine's [config.device] mode) for each device, plus everything
    on the host.  Returns the scored list and the best of them.  Used by
    both the search (as its seed) and warm tunestore replays (so a
    replayed placement prints the same scored table a cold search
    does). *)
let singles ?(serializer = Marshal_.Custom) ~(firings : int)
    (stages : Probe.stage list) :
    (string * candidate) list * (string * candidate) =
  let tb = Cost.table stages in
  let evals = ref 0 in
  let evaluate = evaluate_with tb ~serializer ~firings evals in
  let s =
    ("host", evaluate (uniform_assigns tb Placement.Host))
    :: List.map
         (fun (name, d) ->
           (name, evaluate (uniform_assigns tb (Placement.On d))))
         Placement.devices
  in
  (s, best_of s)

let search ?(width = default_width) ?(serializer = Marshal_.Custom)
    ~(firings : int) (stages : Probe.stage list) : outcome =
  let tb = Cost.table stages in
  let n = Array.length tb.Cost.tb_stages in
  let placeable =
    Array.fold_left
      (fun acc st -> if st.Probe.st_offloadable then acc + 1 else acc)
      0 tb.Cost.tb_stages
  in
  let exhaustive = placeable <= exhaustive_placeable_limit in
  emit (SBegin { stages = n; placeable; firings; exhaustive });
  let evals = ref 0 in
  let evaluate = evaluate_with tb ~serializer ~firings evals in
  let options k =
    if tb.Cost.tb_stages.(k).Probe.st_offloadable then
      Placement.Host :: List.map (fun (_, d) -> Placement.On d) Placement.devices
    else [ Placement.Host ]
  in
  let uniform = uniform_assigns tb in
  (* the legacy single-device baselines: all offloadable stages on one
     device (the engine's config.device mode), plus everything on the
     host *)
  let singles =
    ("host", evaluate (uniform Placement.Host))
    :: List.map
         (fun (name, d) -> (name, evaluate (uniform (Placement.On d))))
         Placement.devices
  in
  let best_single = best_of singles in
  let best_ever = ref (snd best_single) in
  let consider c = if cmp_candidate c !best_ever < 0 then best_ever := c in
  if exhaustive then begin
    (* depth-first product of per-stage options; singles were already
       evaluated but re-pricing them is cheap and keeps the loop simple *)
    let assigns = Array.make n Placement.Host in
    let rec go k =
      if k = n then consider (evaluate (Array.copy assigns))
      else
        List.iter
          (fun a ->
            assigns.(k) <- a;
            go (k + 1))
          (options k)
    in
    go 0
  end
  else begin
    (* beam: decide stages left to right; a prefix is scored as a full
       placement with the undecided suffix on the host.  Seeded with the
       single-device baselines so the result can only improve on them. *)
    let width = max 1 width in
    let prune cands =
      List.filteri (fun i _ -> i < width) (List.sort cmp_candidate cands)
    in
    let seed =
      List.map
        (fun (_, c) ->
          Array.of_list (List.map snd c.pc_placement))
        singles
    in
    let frontier = ref (List.map (fun a -> (a, evaluate a)) seed) in
    for k = 0 to n - 1 do
      if tb.Cost.tb_stages.(k).Probe.st_offloadable then begin
        let children =
          List.concat_map
            (fun (assigns, _) ->
              List.map
                (fun a ->
                  let c = Array.copy assigns in
                  c.(k) <- a;
                  (c, evaluate c))
                (options k))
            !frontier
        in
        List.iter (fun (_, c) -> consider c) children;
        let pruned =
          prune (List.map snd children)
          |> List.map (fun c ->
                 (Array.of_list (List.map snd c.pc_placement), c))
        in
        frontier := pruned
      end
    done;
    List.iter (fun (_, c) -> consider c) !frontier
  end;
  let best = !best_ever in
  emit
    (SEnd
       {
         evals = !evals;
         best_time_s = best.pc_time_s;
         best_spec = Placement.to_spec best.pc_placement;
         improved = best.pc_time_s < (snd best_single).pc_time_s;
       });
  {
    po_best = best;
    po_singles = singles;
    po_best_single = best_single;
    po_evals = !evals;
    po_exhaustive = exhaustive;
    po_firings = firings;
  }

(* ------------------------------------------------------------------ *)
(* Replay and validation                                               *)
(* ------------------------------------------------------------------ *)

(** Validate a placement (stored or user-specified) against a probed
    pipeline and price it: every placed task must exist, only offloadable
    tasks may leave the host, and unmentioned tasks stay on the host.
    Returns the completed (all-stages) placement as a candidate. *)
let replay ?(serializer = Marshal_.Custom) ~(firings : int)
    (stages : Probe.stage list) (p : Placement.t) :
    (candidate, string) result =
  let tb = Cost.table stages in
  let fail msg =
    emit (SReplay { spec = Placement.to_spec p; ok = false });
    Error msg
  in
  let tasks = List.map (fun st -> st.Probe.st_task) stages in
  match
    List.find_opt (fun (task, _) -> not (List.mem task tasks)) p
  with
  | Some (task, _) ->
      fail
        (Printf.sprintf "unknown task %s (pipeline: %s)" task
           (String.concat ", " tasks))
  | None -> (
      match
        List.find_opt
          (fun st ->
            (not st.Probe.st_offloadable)
            && match List.assoc_opt st.Probe.st_task p with
               | Some (Placement.On _) -> true
               | _ -> false)
          stages
      with
      | Some st ->
          fail
            (Printf.sprintf "task %s is not offloadable (host only)"
               st.Probe.st_task)
      | None ->
          let assigns =
            Array.of_list
              (List.map
                 (fun st ->
                   Option.value
                     (List.assoc_opt st.Probe.st_task p)
                     ~default:Placement.Host)
                 stages)
          in
          emit (SReplay { spec = Placement.to_spec p; ok = true });
          let time_s, bd = Cost.price ~serializer ~firings tb assigns in
          Ok
            {
              pc_placement = spec_of tb assigns;
              pc_time_s = time_s;
              pc_breakdown = bd;
            })

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

(** The scored placement table shared by cold searches and warm replays:
    the single-device baselines, the chosen placement with its resource
    breakdown, and the speedup over the best single device.  Provenance
    (searched vs replayed) is the caller's header line, so cold and warm
    runs print byte-identical tables. *)
let explain_table ~(singles : (string * candidate) list)
    ~(best_single : string * candidate) (best : candidate) : string =
  let b = Buffer.create 512 in
  List.iter
    (fun (name, c) ->
      Buffer.add_string b
        (Printf.sprintf "  %-12s %.3e s\n" name c.pc_time_s))
    singles;
  let bd = best.pc_breakdown in
  Buffer.add_string b
    (Printf.sprintf "  %-12s %.3e s  %s\n" "best" best.pc_time_s
       (Placement.to_spec best.pc_placement));
  Buffer.add_string b
    (Printf.sprintf
       "  period %.3e s (bottleneck %s), fill %.3e s, transfers %.3e s\n"
       bd.Cost.cb_period_s bd.Cost.cb_bottleneck bd.Cost.cb_fill_s
       bd.Cost.cb_transfer_s);
  List.iter
    (fun (r, s) ->
      Buffer.add_string b (Printf.sprintf "    %-24s %.3e s/firing\n" r s))
    bd.Cost.cb_occupancy;
  let sname, single = best_single in
  Buffer.add_string b
    (Printf.sprintf "speedup vs best single device (%s): %.2fx\n" sname
       (single.pc_time_s /. best.pc_time_s));
  Buffer.contents b

(** Human-readable scored placement table, for [limec --explain]. *)
let explain (o : outcome) : string =
  Printf.sprintf
    "placement search: %d candidates scored over %d firings (%s)\n%s"
    o.po_evals o.po_firings
    (if o.po_exhaustive then "exhaustive" else "beam")
    (explain_table ~singles:o.po_singles ~best_single:o.po_best_single
       o.po_best)
